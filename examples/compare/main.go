// Compare: run all four allocators over the paper's benchmark suite and
// print a quality/compile-speed comparison — a miniature of the paper's
// whole evaluation.
//
//	go run ./examples/compare [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	regalloc "repro"
	"repro/internal/progs"
)

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale multiplier")
	flag.Parse()

	mach := regalloc.Alpha()
	algos := []regalloc.Algorithm{
		regalloc.SecondChance,
		regalloc.TwoPass,
		regalloc.Coloring,
		regalloc.LinearScan,
	}

	fmt.Printf("%-10s", "benchmark")
	for _, a := range algos {
		fmt.Printf(" %22s", shortName(a))
	}
	fmt.Println()
	fmt.Printf("%-10s", "")
	for range algos {
		fmt.Printf(" %14s %7s", "dyn-instrs", "alloc")
	}
	fmt.Println()

	for _, bench := range progs.Suite() {
		s := int(float64(bench.DefaultScale) * *scale)
		if s < 1 {
			s = 1
		}
		prog := bench.Build(mach, s)
		var input []byte
		if bench.Input != nil {
			input = bench.Input(s)
		}
		fmt.Printf("%-10s", bench.Name)
		for _, algo := range algos {
			opts := regalloc.DefaultOptions()
			opts.Algorithm = algo
			allocated, results, err := regalloc.AllocateProgram(prog, mach, opts)
			if err != nil {
				log.Fatalf("%s under %v: %v", bench.Name, algo, err)
			}
			var allocTime time.Duration
			for _, r := range results {
				allocTime += r.Stats.AllocTime
			}
			out, err := regalloc.ExecuteParanoid(allocated, mach, input)
			if err != nil {
				log.Fatalf("%s under %v: %v", bench.Name, algo, err)
			}
			fmt.Printf(" %14d %7s", out.Counters.Total, allocTime.Round(10*time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("\nalloc = allocator-core wall time; dyn-instrs = executed instructions")
}

func shortName(a regalloc.Algorithm) string {
	switch a {
	case regalloc.SecondChance:
		return "second-chance"
	case regalloc.TwoPass:
		return "two-pass"
	case regalloc.Coloring:
		return "coloring"
	case regalloc.LinearScan:
		return "linear-scan"
	}
	return a.String()
}
