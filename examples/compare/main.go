// Compare: run all four allocators over the paper's benchmark suite and
// print a quality/compile-speed comparison — a miniature of the paper's
// whole evaluation.
//
//	go run ./examples/compare [-scale 0.1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	regalloc "repro"
	"repro/internal/progs"
)

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale multiplier")
	flag.Parse()

	mach := regalloc.Alpha()
	// One engine per registered allocator: the engines are built from
	// the registry, so a custom Register()ed allocator would appear in
	// this comparison automatically.
	algos := regalloc.Algorithms()
	engines := make([]*regalloc.Engine, len(algos))
	for i, name := range algos {
		var err error
		engines[i], err = regalloc.New(mach, regalloc.WithAlgorithm(name))
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%-10s", "benchmark")
	for _, a := range algos {
		fmt.Printf(" %22s", a)
	}
	fmt.Println()
	fmt.Printf("%-10s", "")
	for range algos {
		fmt.Printf(" %14s %7s", "dyn-instrs", "alloc")
	}
	fmt.Println()

	for _, bench := range progs.Suite() {
		s := int(float64(bench.DefaultScale) * *scale)
		if s < 1 {
			s = 1
		}
		prog := bench.Build(mach, s)
		var input []byte
		if bench.Input != nil {
			input = bench.Input(s)
		}
		fmt.Printf("%-10s", bench.Name)
		for i, eng := range engines {
			allocated, report, err := eng.AllocateProgram(context.Background(), prog)
			if err != nil {
				log.Fatalf("%s under %s: %v", bench.Name, algos[i], err)
			}
			out, err := regalloc.ExecuteParanoid(allocated, mach, input)
			if err != nil {
				log.Fatalf("%s under %s: %v", bench.Name, algos[i], err)
			}
			fmt.Printf(" %14d %7s", out.Counters.Total,
				report.Totals.AllocTime.Round(10*time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("\nalloc = allocator-core wall time; dyn-instrs = executed instructions")
}
