// Serving: start the allocation service in-process, post a program to
// it twice over real HTTP, and show the second request coming back from
// the content-addressed cache with zero allocator work, then read the
// service metrics. This is the library-level view of what cmd/lsra-served
// and cmd/lsra-client do across a network.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	regalloc "repro"
	"repro/internal/serve"
)

func main() {
	// A service with a small cache, two workers, and verification on.
	s, err := serve.New(serve.Config{Workers: 2, CacheEntries: 256, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	go func() {
		if err := http.Serve(ln, s); err != nil && !strings.Contains(err.Error(), "closed") {
			log.Print(err)
		}
	}()

	// Build a program with the public API and print it into the wire
	// form the daemon accepts.
	mach := regalloc.Tiny(6, 4)
	b := regalloc.NewBuilder(mach, 16)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	y := pb.IntTemp("y")
	pb.Ldi(x, 21)
	pb.Op2(regalloc.OpAdd, y, regalloc.TempOp(x), regalloc.TempOp(x))
	pb.Call("puti", regalloc.NoTemp, regalloc.TempOp(y))
	pb.Ret(y)
	var text strings.Builder
	(&regalloc.Printer{Mach: mach}).WriteProgram(&text, b.Prog)

	allocate := func() serve.AllocatedProgram {
		body, err := json.Marshal(&serve.AllocateRequest{
			Machine: "tiny:6,4", Algorithm: "binpack", Program: text.String(),
		})
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(base+"/allocate", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("allocate: %s", resp.Status)
		}
		var out serve.AllocateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		return out.Results[0]
	}

	first := allocate()
	fmt.Printf("first request:  cached=%v key=%s...\n", first.Cached, first.Key[:18])
	second := allocate()
	fmt.Printf("second request: cached=%v (served from the content-addressed cache)\n", second.Cached)
	fmt.Println("=== allocated code ===")
	fmt.Print(second.Program)

	// The /metrics endpoint: hit rate and phase totals. The cache hit
	// added no phase time — only the first request ran the pipeline.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("programs served: %d (cached: %d), cache hit rate: %.2f\n",
		m.Programs, m.CachedPrograms, m.Cache.HitRate)
	var phases int64
	for _, p := range m.Phases {
		phases += p.Ns
	}
	fmt.Printf("cumulative pipeline phase time: %v (unchanged by the cache hit)\n",
		time.Duration(phases))

	// Drain like the daemon would on SIGTERM.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	ln.Close()
	fmt.Println("drained cleanly ✓")
}
