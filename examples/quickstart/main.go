// Quickstart: build a small procedure, allocate registers with
// second-chance binpacking, print the allocated code, and execute both
// versions to show they agree.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	regalloc "repro"
)

func main() {
	mach := regalloc.Alpha()
	b := regalloc.NewBuilder(mach, 16)

	// sumsq(n): sum of i*i for i in [0, n), plus a call in the loop so
	// caller-saved registers matter.
	pb := b.NewProc("main")
	n := pb.IntTemp("n")
	i := pb.IntTemp("i")
	sum := pb.IntTemp("sum")
	pb.Ldi(n, 10)
	pb.Ldi(i, 0)
	pb.Ldi(sum, 0)

	head := pb.Block("head")
	body := pb.Block("body")
	exit := pb.Block("exit")
	pb.Jmp(head)

	pb.StartBlock(head)
	c := pb.IntTemp("c")
	pb.Op2(regalloc.OpCmpLT, c, regalloc.TempOp(i), regalloc.TempOp(n))
	pb.Br(regalloc.TempOp(c), body, exit)

	pb.StartBlock(body)
	sq := pb.IntTemp("sq")
	pb.Op2(regalloc.OpMul, sq, regalloc.TempOp(i), regalloc.TempOp(i))
	pb.Op2(regalloc.OpAdd, sum, regalloc.TempOp(sum), regalloc.TempOp(sq))
	pb.Call("puti", regalloc.NoTemp, regalloc.TempOp(sum)) // running total
	pb.Op2(regalloc.OpAdd, i, regalloc.TempOp(i), regalloc.ImmOp(1))
	pb.Jmp(head)

	pb.StartBlock(exit)
	pb.Ret(sum)

	// Reference execution on the unallocated IR ("infinite registers").
	ref, err := regalloc.Execute(b.Prog, mach, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Allocate with the paper's pipeline: DCE → second-chance
	// binpacking → peephole, with verification on — the engine's
	// default configuration.
	eng, err := regalloc.New(mach)
	if err != nil {
		log.Fatal(err)
	}
	allocated, report, err := eng.AllocateProgram(context.Background(), b.Prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== allocated code ===")
	fmt.Print(regalloc.DumpProc(allocated.Proc("main"), mach))
	st := report.Procs[0].Stats
	fmt.Printf("candidates: %d, spilled: %d, inserted spill instructions: %d\n",
		st.Candidates, st.SpilledTemps, st.TotalSpillCode())

	// Execute the allocated code with caller-saved poisoning.
	out, err := regalloc.ExecuteParanoid(allocated, mach, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference output:  %q (ret %d)\n", ref.Output, ref.RetValue)
	fmt.Printf("allocated output:  %q (ret %d)\n", out.Output, out.RetValue)
	fmt.Printf("dynamic instructions: %d (of which spill: %d)\n",
		out.Counters.Total, out.Counters.SpillOverhead())
	if string(ref.Output) != string(out.Output) || ref.RetValue != out.RetValue {
		log.Fatal("outputs differ!")
	}
	fmt.Println("outputs agree ✓")
}
