// Pressure: visualize the concepts of §2.1–§2.2 — lifetimes, lifetime
// holes, and register pressure — for the paper's Figure 1 example, and
// show where the allocator splits lifetimes.
//
//	go run ./examples/pressure
package main

import (
	"fmt"
	"log"
	"strings"

	regalloc "repro"
	"repro/internal/dataflow"
	"repro/internal/lifetime"
)

func main() {
	mach := regalloc.Tiny(4, 2)
	b := regalloc.NewBuilder(mach, 8)

	// The CFG of the paper's Figure 1: four temporaries whose lifetimes
	// interleave so that T3 fits entirely inside T1's hole.
	pb := b.NewProc("main")
	t1 := pb.IntTemp("T1")
	t2 := pb.IntTemp("T2")
	t3 := pb.IntTemp("T3")
	t4 := pb.IntTemp("T4")

	_ = pb.Cur() // entry plays the role of B1
	b2 := pb.Block("B2")
	b3 := pb.Block("B3")
	b4 := pb.Block("B4")

	pb.Ldi(t1, 1) // T1 ← ..
	pb.Ldi(t2, 2) // T2 ← ..
	c := pb.IntTemp("c")
	pb.Op2(regalloc.OpCmpLT, c, regalloc.TempOp(t2), regalloc.ImmOp(5))
	pb.Br(regalloc.TempOp(c), b2, b3)

	pb.StartBlock(b2) // B2: .. ← T1 ; T3 ← T2 ; .. ← T3 ; T4 ← ..
	u := pb.IntTemp("u")
	pb.Op2(regalloc.OpAdd, u, regalloc.TempOp(t1), regalloc.ImmOp(0))
	pb.Mov(t3, regalloc.TempOp(t2))
	pb.Op2(regalloc.OpAdd, u, regalloc.TempOp(t3), regalloc.ImmOp(1))
	pb.Ldi(t4, 4)
	pb.Jmp(b4)

	pb.StartBlock(b3) // B3: T1 ← .. ; T4 ← .. ; .. ← T1
	pb.Ldi(t1, 10)
	pb.Ldi(t4, 40)
	pb.Op2(regalloc.OpAdd, u, regalloc.TempOp(t1), regalloc.ImmOp(2))
	pb.Jmp(b4)

	pb.StartBlock(b4) // B4: .. ← T4 ; T4 ← .. ; .. ← T4
	v := pb.IntTemp("v")
	pb.Op2(regalloc.OpAdd, v, regalloc.TempOp(t4), regalloc.TempOp(u))
	pb.Ldi(t4, 7)
	pb.Op2(regalloc.OpAdd, v, regalloc.TempOp(v), regalloc.TempOp(t4))
	pb.Ret(v)

	p := b.Prog.Proc("main")
	p.Renumber()
	lv := dataflow.Compute(p)
	lt := lifetime.Compute(p, lv)

	fmt.Println("=== lifetimes and holes (positions are linear order) ===")
	npos := p.NumInstrs()
	for _, name := range []string{"T1", "T2", "T3", "T4"} {
		var tmp regalloc.Temp = -1
		for i := 0; i < p.NumTemps(); i++ {
			if p.TempName(regalloc.Temp(i)) == name {
				tmp = regalloc.Temp(i)
			}
		}
		iv := lt.Intervals[tmp]
		row := make([]byte, npos)
		for i := range row {
			row[i] = '.'
		}
		for _, seg := range iv.Segments {
			for pp := seg.Start; pp <= seg.End; pp++ {
				row[pp] = '#'
			}
		}
		if !iv.Empty() {
			for pp := iv.Start(); pp <= iv.End(); pp++ {
				if row[pp] == '.' {
					row[pp] = '-' // a lifetime hole
				}
			}
		}
		fmt.Printf("%-3s %s   %v\n", name, row, iv)
	}
	fmt.Println("    '#' live, '-' lifetime hole, '.' outside lifetime")

	// Per-position register pressure.
	var sb strings.Builder
	for pos := 0; pos < npos; pos++ {
		n := 0
		for i := 0; i < p.NumTemps(); i++ {
			if lt.Intervals[i].LiveAt(int32(pos)) {
				n++
			}
		}
		fmt.Fprintf(&sb, "%d", n)
	}
	fmt.Printf("prs %s   (simultaneously live temporaries)\n\n", sb.String())

	eng, err := regalloc.New(mach)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.AllocateProc(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== allocation on a 4-integer-register machine ===")
	fmt.Print(regalloc.DumpProc(res.Proc, mach))
}
