// JIT: the dynamic-code-generation scenario that motivated linear scan
// (§1 cites `tcc` and adaptive optimizers: allocation must cost "a
// reasonable number of cycles per generated instruction").
//
// A tiny expression "JIT" compiles randomly generated arithmetic
// expression trees to IR at runtime, allocates registers with
// second-chance binpacking, and immediately executes the result. It
// reports compile cycles per generated instruction for both binpacking
// and graph coloring, illustrating why a dynamic code generator prefers
// the linear-scan family.
//
//	go run ./examples/jit [-exprs 200] [-depth 6]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	regalloc "repro"
)

type exprGen struct {
	rng *rand.Rand
	pb  *regalloc.ProcBuilder
}

// gen emits code computing a random expression and returns the temp
// holding the result. Deep trees create many simultaneously live
// temporaries — exactly the pressure a JIT's expression compiler creates.
func (g *exprGen) gen(depth int) regalloc.Temp {
	t := g.pb.IntTemp("")
	if depth == 0 {
		g.pb.Ldi(t, int64(g.rng.Intn(100)))
		return t
	}
	l := g.gen(depth - 1)
	r := g.gen(depth - 1)
	ops := []regalloc.IROp{regalloc.OpAdd, regalloc.OpSub, regalloc.OpMul, regalloc.OpXor}
	g.pb.Op2(ops[g.rng.Intn(len(ops))], t, regalloc.TempOp(l), regalloc.TempOp(r))
	return t
}

func main() {
	exprs := flag.Int("exprs", 200, "number of expressions to JIT")
	depth := flag.Int("depth", 6, "expression tree depth")
	flag.Parse()

	mach := regalloc.Alpha()
	rng := rand.New(rand.NewSource(1))

	type scheme struct {
		name string
		algo string
	}
	for _, s := range []scheme{
		{"second-chance binpacking", "binpack"},
		{"graph coloring", "coloring"},
	} {
		// One engine per scheme, reused across every compilation: the
		// engine pools allocator scratch state, which is exactly what a
		// long-lived JIT wants on its hot path.
		eng, err := regalloc.New(mach,
			regalloc.WithAlgorithm(s.algo),
			regalloc.WithVerify(false), // a JIT trusts its allocator; tests verify
			regalloc.WithParallelism(1))
		if err != nil {
			log.Fatal(err)
		}
		var compile time.Duration
		var instrs, dyn int64
		rng.Seed(1)
		for e := 0; e < *exprs; e++ {
			b := regalloc.NewBuilder(mach, 8)
			pb := b.NewProc("main")
			g := &exprGen{rng: rng, pb: pb}
			res := g.gen(*depth)
			pb.Ret(res)

			start := time.Now()
			allocated, _, err := eng.AllocateProgram(context.Background(), b.Prog)
			if err != nil {
				log.Fatal(err)
			}
			compile += time.Since(start)
			instrs += int64(allocated.Proc("main").NumInstrs())

			out, err := regalloc.Execute(allocated, mach, nil)
			if err != nil {
				log.Fatal(err)
			}
			dyn += out.Counters.Total
		}
		fmt.Printf("%-26s compiled %d exprs (%d instrs) in %v — %.0f ns/instr; executed %d instrs\n",
			s.name, *exprs, instrs, compile.Round(time.Millisecond),
			float64(compile.Nanoseconds())/float64(instrs), dyn)
	}
}
