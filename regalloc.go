// Package regalloc is the public API of this repository: a reproduction
// of "Quality and Speed in Linear-scan Register Allocation" (Traub,
// Holloway, Smith; PLDI 1998).
//
// It exposes the IR and its builder, the machine descriptions, four
// register allocators — the paper's second-chance binpacking, the
// traditional two-pass binpacking it ablates against, George–Appel
// iterated-register-coalescing graph coloring, and Poletto-style linear
// scan — the bracketing optimization passes, a VM that executes both
// unallocated and allocated code while counting dynamic instructions, and
// an allocation verifier.
//
// The pipeline mirrors §3 of the paper: dead-code elimination, register
// allocation, then a peephole pass that deletes collapsed moves.
//
//	mach := regalloc.Alpha()
//	b := regalloc.NewBuilder(mach, 64)
//	... build IR ...
//	allocated, results, err := regalloc.AllocateProgram(b.Prog, mach, regalloc.DefaultOptions())
//	out, err := regalloc.Execute(allocated, mach, input)
package regalloc

import (
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/linearscan"
	"repro/internal/opt"
	"repro/internal/target"
	"repro/internal/verify"
	"repro/internal/vm"
)

// Re-exported IR and machine types. These aliases are the supported way
// to name the internal types from outside the module.
type (
	// Program is a set of procedures plus global memory.
	Program = ir.Program
	// Proc is one procedure.
	Proc = ir.Proc
	// Block is a basic block.
	Block = ir.Block
	// Instr is one instruction.
	Instr = ir.Instr
	// Temp names a register candidate.
	Temp = ir.Temp
	// Operand is one instruction operand.
	Operand = ir.Operand
	// Builder builds programs.
	Builder = ir.Builder
	// ProcBuilder builds one procedure.
	ProcBuilder = ir.ProcBuilder
	// Printer renders IR textually.
	Printer = ir.Printer

	// Machine describes a register target.
	Machine = target.Machine
	// Reg is a physical register.
	Reg = target.Reg
	// Class is a register file.
	Class = target.Class

	// Result is a finished allocation with statistics.
	Result = alloc.Result
	// Stats describes what an allocation did.
	Stats = alloc.Stats
	// Allocator is the common allocator interface.
	Allocator = alloc.Allocator

	// BinpackOptions configures the binpacking allocator (the paper's
	// §2 knobs: move optimization, early second chance, strict-linear
	// consistency, eviction heuristic).
	BinpackOptions = core.Options

	// ExecResult is a VM execution outcome.
	ExecResult = vm.Result
	// ExecConfig configures VM execution.
	ExecConfig = vm.Config
	// Counters are the VM's dynamic instruction counters.
	Counters = vm.Counters
)

// Re-exported constants and constructors.
const (
	ClassInt   = target.ClassInt
	ClassFloat = target.ClassFloat
	NoTemp     = ir.NoTemp
)

// Operand constructors.
var (
	TempOp = ir.TempOp
	RegOp  = ir.RegOp
	ImmOp  = ir.ImmOp
	FImmOp = ir.FImmOp
)

// Alpha returns the Alpha-like machine used by the paper's experiments.
func Alpha() *Machine { return target.Alpha() }

// Tiny returns a small machine (useful to force spilling).
func Tiny(nInt, nFloat int) *Machine { return target.Tiny(nInt, nFloat) }

// NewBuilder returns a program builder for a machine.
func NewBuilder(m *Machine, memWords int) *Builder { return ir.NewBuilder(m, memWords) }

// Algorithm selects a register allocator.
type Algorithm int

const (
	// SecondChance is the paper's contribution: second-chance
	// binpacking (§2).
	SecondChance Algorithm = iota
	// TwoPass is traditional binpacking: whole lifetimes in a register
	// or in memory (§3.1 ablation).
	TwoPass
	// Coloring is George–Appel iterated register coalescing.
	Coloring
	// LinearScan is the Poletto-style allocator (§4 related work).
	LinearScan
)

func (a Algorithm) String() string {
	switch a {
	case SecondChance:
		return "second-chance binpacking"
	case TwoPass:
		return "two-pass binpacking"
	case Coloring:
		return "graph coloring"
	case LinearScan:
		return "linear scan (Poletto)"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configure the allocation pipeline.
type Options struct {
	Algorithm Algorithm
	// Binpack tunes the binpacking allocator; ignored by the others.
	// The zero value is replaced by the paper's defaults.
	Binpack BinpackOptions
	// DCE runs dead-code elimination before allocation (§3 pipeline).
	DCE bool
	// Peephole deletes collapsed moves after allocation (§3 pipeline).
	Peephole bool
	// ForwardStores additionally runs local store-to-load forwarding on
	// the allocated code (the §2.4 follow-on cleanup; off by default).
	ForwardStores bool
	// Verify runs the symbolic allocation verifier on every result.
	Verify bool
}

// DefaultOptions mirrors the paper's experimental pipeline with the
// second-chance allocator and verification enabled.
func DefaultOptions() Options {
	return Options{
		Algorithm: SecondChance,
		Binpack:   core.DefaultOptions(),
		DCE:       true,
		Peephole:  true,
		Verify:    true,
	}
}

// NewAllocator returns the allocator an Options selects.
func NewAllocator(m *Machine, o Options) Allocator {
	switch o.Algorithm {
	case Coloring:
		return coloring.New(m)
	case LinearScan:
		return linearscan.New(m)
	case TwoPass:
		bo := o.Binpack
		bo.SecondChance = false
		return core.New(m, bo)
	default:
		bo := o.Binpack
		if !bo.SecondChance {
			bo = core.DefaultOptions()
		}
		return core.New(m, bo)
	}
}

// AllocateProc runs the full pipeline on one procedure and returns the
// rewritten procedure with statistics. The input is not modified.
func AllocateProc(p *Proc, m *Machine, o Options) (*Result, error) {
	in := p
	if o.DCE {
		in = p.Clone()
		opt.DeadCodeElim(in)
	}
	res, err := NewAllocator(m, o).Allocate(in)
	if err != nil {
		return nil, err
	}
	if o.Verify {
		if err := verify.Verify(res.Proc, m); err != nil {
			return nil, err
		}
	}
	if o.ForwardStores {
		opt.ForwardStores(res.Proc, m)
	}
	if o.Peephole {
		opt.Peephole(res.Proc)
	}
	if err := ir.ValidateAllocated(res.Proc, m); err != nil {
		return nil, fmt.Errorf("regalloc: invalid allocation for %s: %w", p.Name, err)
	}
	return res, nil
}

// AllocateProgram allocates every procedure of prog and returns the
// allocated program plus per-procedure results (in prog.Procs order).
func AllocateProgram(prog *Program, m *Machine, o Options) (*Program, []*Result, error) {
	out := ir.NewProgram(prog.MemWords)
	out.Main = prog.Main
	for addr, v := range prog.MemInit {
		out.SetMem(addr, v)
	}
	var results []*Result
	for _, p := range prog.Procs {
		res, err := AllocateProc(p, m, o)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, res)
		out.AddProc(res.Proc)
	}
	return out, results, nil
}

// Execute runs a program (allocated or not) on the VM.
func Execute(prog *Program, m *Machine, input []byte) (*ExecResult, error) {
	return vm.Run(prog, vm.Config{Mach: m, Input: input})
}

// ExecuteParanoid runs an allocated program with caller-saved registers
// poisoned at every call, which flushes out convention violations.
func ExecuteParanoid(prog *Program, m *Machine, input []byte) (*ExecResult, error) {
	return vm.Run(prog, vm.Config{Mach: m, Input: input, Paranoid: true})
}

// Verify checks an allocated procedure against its Orig annotations.
func Verify(p *Proc, m *Machine) error { return verify.Verify(p, m) }

// ValidateProgram checks the structural invariants of a source program.
func ValidateProgram(prog *Program, m *Machine) error { return ir.ValidateProgram(prog, m) }

// DumpProc renders a procedure with machine register names and spill
// tags, for debugging and examples.
func DumpProc(p *Proc, m *Machine) string {
	return dumpWith(p, m)
}

func dumpWith(p *Proc, m *Machine) string {
	pr := &ir.Printer{Mach: m, Tags: true}
	var sb strings.Builder
	pr.WriteProc(&sb, p)
	return sb.String()
}

// Re-exported opcodes for building IR through the facade.
const (
	OpNop    = ir.Nop
	OpMov    = ir.Mov
	OpLdi    = ir.Ldi
	OpAdd    = ir.Add
	OpSub    = ir.Sub
	OpMul    = ir.Mul
	OpDiv    = ir.Div
	OpRem    = ir.Rem
	OpAnd    = ir.And
	OpOr     = ir.Or
	OpXor    = ir.Xor
	OpShl    = ir.Shl
	OpShr    = ir.Shr
	OpNeg    = ir.Neg
	OpNot    = ir.Not
	OpCmpEQ  = ir.CmpEQ
	OpCmpNE  = ir.CmpNE
	OpCmpLT  = ir.CmpLT
	OpCmpLE  = ir.CmpLE
	OpCmpGT  = ir.CmpGT
	OpCmpGE  = ir.CmpGE
	OpFMov   = ir.FMov
	OpFLdi   = ir.FLdi
	OpFAdd   = ir.FAdd
	OpFSub   = ir.FSub
	OpFMul   = ir.FMul
	OpFDiv   = ir.FDiv
	OpFNeg   = ir.FNeg
	OpFCmpEQ = ir.FCmpEQ
	OpFCmpLT = ir.FCmpLT
	OpFCmpLE = ir.FCmpLE
	OpCvtIF  = ir.CvtIF
	OpCvtFI  = ir.CvtFI
	OpLd     = ir.Ld
	OpSt     = ir.St
	OpFLd    = ir.FLd
	OpFSt    = ir.FSt
)

// IROp is an instruction opcode (re-export for facade users).
type IROp = ir.Op
