// Package regalloc is the public API of this repository: a reproduction
// of "Quality and Speed in Linear-scan Register Allocation" (Traub,
// Holloway, Smith; PLDI 1998).
//
// It exposes the IR and its builder, the machine descriptions, four
// register allocators — the paper's second-chance binpacking, the
// traditional two-pass binpacking it ablates against, George–Appel
// iterated-register-coalescing graph coloring, and Poletto-style linear
// scan — the bracketing optimization passes, a VM that executes both
// unallocated and allocated code while counting dynamic instructions, and
// an allocation verifier.
//
// The pipeline mirrors §3 of the paper: dead-code elimination, register
// allocation, then a peephole pass that deletes collapsed moves. The
// entry point is the Engine, constructed once per machine and reused
// for any number of allocations:
//
//	mach := regalloc.Alpha()
//	eng, err := regalloc.New(mach,
//		regalloc.WithAlgorithm("binpack"),
//		regalloc.WithParallelism(8))
//	b := regalloc.NewBuilder(mach, 64)
//	... build IR ...
//	allocated, report, err := eng.AllocateProgram(ctx, b.Prog)
//	out, err := regalloc.Execute(allocated, mach, input)
//
// Allocators are pluggable: Register adds a named factory and
// WithAlgorithm selects it; Algorithms lists what is available. The
// free functions AllocateProc, AllocateProgram and NewAllocator remain
// as deprecated wrappers over a throwaway Engine.
package regalloc

import (
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/target"
	"repro/internal/verify"
	"repro/internal/vm"

	// Imported for their registry side effects: the built-in allocators
	// self-register under "coloring", "linearscan" and "oracle"
	// ("binpack" and "twopass" ride in with the core import above).
	_ "repro/internal/coloring"
	_ "repro/internal/linearscan"
	_ "repro/internal/oracle"
)

// Re-exported IR and machine types. These aliases are the supported way
// to name the internal types from outside the module.
type (
	// Program is a set of procedures plus global memory.
	Program = ir.Program
	// Proc is one procedure.
	Proc = ir.Proc
	// Block is a basic block.
	Block = ir.Block
	// Instr is one instruction.
	Instr = ir.Instr
	// Temp names a register candidate.
	Temp = ir.Temp
	// Operand is one instruction operand.
	Operand = ir.Operand
	// Builder builds programs.
	Builder = ir.Builder
	// ProcBuilder builds one procedure.
	ProcBuilder = ir.ProcBuilder
	// Printer renders IR textually.
	Printer = ir.Printer

	// Machine describes a register target.
	Machine = target.Machine
	// Reg is a physical register.
	Reg = target.Reg
	// Class is a register file.
	Class = target.Class

	// Result is a finished allocation with statistics.
	Result = alloc.Result
	// Stats describes what an allocation did.
	Stats = alloc.Stats
	// PhaseTimes breaks a pipeline run's cost down by phase; Stats
	// carries one and Report.PhaseStats aggregates them per batch.
	PhaseTimes = alloc.PhaseTimes
	// PhaseSample is one phase's accumulated wall time and (under
	// WithPhaseProfile) heap-allocation counters.
	PhaseSample = alloc.PhaseSample
	// Allocator is the common allocator interface.
	Allocator = alloc.Allocator
	// OwnedAllocator is the optional in-place fast path an Allocator
	// can implement to skip the engine's defensive clone.
	OwnedAllocator = alloc.OwnedAllocator
	// PhaseProfiler is the optional interface through which the engine
	// enables per-phase allocation sampling (WithPhaseProfile).
	PhaseProfiler = alloc.PhaseProfiler

	// BinpackOptions configures the binpacking allocator (the paper's
	// §2 knobs: move optimization, early second chance, strict-linear
	// consistency, eviction heuristic).
	BinpackOptions = core.Options

	// ExecResult is a VM execution outcome.
	ExecResult = vm.Result
	// ExecConfig configures VM execution.
	ExecConfig = vm.Config
	// Counters are the VM's dynamic instruction counters.
	Counters = vm.Counters
)

// Re-exported constants and constructors.
const (
	ClassInt   = target.ClassInt
	ClassFloat = target.ClassFloat
	NoTemp     = ir.NoTemp
)

// Operand constructors.
var (
	TempOp = ir.TempOp
	RegOp  = ir.RegOp
	ImmOp  = ir.ImmOp
	FImmOp = ir.FImmOp
)

// Alpha returns the Alpha-like machine used by the paper's experiments.
func Alpha() *Machine { return target.Alpha() }

// Tiny returns a small machine (useful to force spilling).
func Tiny(nInt, nFloat int) *Machine { return target.Tiny(nInt, nFloat) }

// ParseMachine parses the machine spec the command-line tools share: a
// named preset ("alpha", "x86-8", "risc-16", "wide-64", "int-heavy",
// "scratch-8", "narrow-1", "tiny") or a parameterized
// "tiny:<ints>,<floats>".
func ParseMachine(s string) (*Machine, error) {
	return target.Parse(s)
}

// MachineNames lists the named machine presets ParseMachine accepts.
func MachineNames() []string { return target.PresetNames() }

// NewBuilder returns a program builder for a machine.
func NewBuilder(m *Machine, memWords int) *Builder { return ir.NewBuilder(m, memWords) }

// Algorithm selects a register allocator.
type Algorithm int

const (
	// SecondChance is the paper's contribution: second-chance
	// binpacking (§2).
	SecondChance Algorithm = iota
	// TwoPass is traditional binpacking: whole lifetimes in a register
	// or in memory (§3.1 ablation).
	TwoPass
	// Coloring is George–Appel iterated register coalescing.
	Coloring
	// LinearScan is the Poletto-style allocator (§4 related work).
	LinearScan
)

// Name returns the registry name of the built-in algorithm, as accepted
// by WithAlgorithm ("binpack", "twopass", "coloring", "linearscan").
func (a Algorithm) Name() string {
	switch a {
	case SecondChance:
		return "binpack"
	case TwoPass:
		return "twopass"
	case Coloring:
		return "coloring"
	case LinearScan:
		return "linearscan"
	}
	return fmt.Sprintf("algorithm-%d", int(a))
}

// String returns the algorithm's human-readable description (Name is
// the registry identifier).
func (a Algorithm) String() string {
	switch a {
	case SecondChance:
		return "second-chance binpacking"
	case TwoPass:
		return "two-pass binpacking"
	case Coloring:
		return "graph coloring"
	case LinearScan:
		return "linear scan (Poletto)"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configure the allocation pipeline of the legacy free
// functions.
//
// Deprecated: construct an Engine with New and functional options
// instead; Options remains for the thin compatibility wrappers.
type Options struct {
	Algorithm Algorithm
	// Binpack tunes the binpacking allocator; ignored by the others.
	// The zero value is replaced by the paper's defaults.
	Binpack BinpackOptions
	// DCE runs dead-code elimination before allocation (§3 pipeline).
	DCE bool
	// Peephole deletes collapsed moves after allocation (§3 pipeline).
	Peephole bool
	// ForwardStores additionally runs local store-to-load forwarding on
	// the allocated code (the §2.4 follow-on cleanup; off by default).
	ForwardStores bool
	// Verify runs the symbolic allocation verifier on every result.
	Verify bool
}

// DefaultOptions mirrors the paper's experimental pipeline with the
// second-chance allocator and verification enabled.
//
// Deprecated: an Engine constructed with New and no options is the
// equivalent configuration.
func DefaultOptions() Options {
	return Options{
		Algorithm: SecondChance,
		Binpack:   core.DefaultOptions(),
		DCE:       true,
		Peephole:  true,
		Verify:    true,
	}
}

// engineFromOptions bridges the legacy Options struct onto an Engine.
// Unknown Algorithm values select second-chance binpacking, as the old
// switch did.
func engineFromOptions(m *Machine, o Options) (*Engine, error) {
	algo := o.Algorithm
	switch algo {
	case SecondChance, TwoPass, Coloring, LinearScan:
	default:
		algo = SecondChance
	}
	opts := []Option{
		WithAlgorithm(algo.Name()),
		WithDCE(o.DCE),
		WithPeephole(o.Peephole),
		WithForwardStores(o.ForwardStores),
		WithVerify(o.Verify),
		WithParallelism(1),
	}
	// The legacy rule: a zero Binpack means "the paper's defaults" for
	// second-chance, but is taken literally (a bare two-pass) for the
	// two-pass ablation.
	if algo == TwoPass || (algo == SecondChance && o.Binpack.SecondChance) {
		opts = append(opts, WithBinpack(o.Binpack))
	}
	return New(m, opts...)
}

// NewAllocator returns the allocator an Options selects. The returned
// allocator keeps per-instance scratch buffers: it must not run
// concurrent Allocate calls (use one instance per goroutine, which is
// what the Engine's worker pool does).
//
// Deprecated: use New with WithAlgorithm; the Engine pools allocator
// instances and reuses their scratch state.
func NewAllocator(m *Machine, o Options) Allocator {
	e, err := engineFromOptions(m, o)
	if err != nil {
		// Unreachable: engineFromOptions normalizes the algorithm.
		panic(err)
	}
	return e.factory(m)
}

// AllocateProc runs the full pipeline on one procedure and returns the
// rewritten procedure with statistics. The input is not modified.
//
// Deprecated: construct an Engine with New and call its AllocateProc;
// a fresh Engine per call re-allocates the scratch state this wrapper
// cannot reuse.
func AllocateProc(p *Proc, m *Machine, o Options) (*Result, error) {
	e, err := engineFromOptions(m, o)
	if err != nil {
		return nil, err
	}
	return e.AllocateProc(p)
}

// AllocateProgram allocates every procedure of prog and returns the
// allocated program plus per-procedure results (in prog.Procs order).
//
// Deprecated: construct an Engine with New and call its
// AllocateProgram, which adds bounded parallelism, context
// cancellation and an aggregate Report.
func AllocateProgram(prog *Program, m *Machine, o Options) (*Program, []*Result, error) {
	e, err := engineFromOptions(m, o)
	if err != nil {
		return nil, nil, err
	}
	out := ir.NewProgram(prog.MemWords)
	out.Main = prog.Main
	for addr, v := range prog.MemInit {
		out.SetMem(addr, v)
	}
	var results []*Result
	for _, p := range prog.Procs {
		res, err := e.AllocateProc(p)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, res)
		out.AddProc(res.Proc)
	}
	return out, results, nil
}

// Execute runs a program (allocated or not) on the VM.
func Execute(prog *Program, m *Machine, input []byte) (*ExecResult, error) {
	return vm.Run(prog, vm.Config{Mach: m, Input: input})
}

// ExecuteParanoid runs an allocated program with caller-saved registers
// poisoned at every call, which flushes out convention violations.
func ExecuteParanoid(prog *Program, m *Machine, input []byte) (*ExecResult, error) {
	return vm.Run(prog, vm.Config{Mach: m, Input: input, Paranoid: true})
}

// Verify checks an allocated procedure against its Orig annotations.
func Verify(p *Proc, m *Machine) error { return verify.Verify(p, m) }

// ValidateProgram checks the structural invariants of a source program.
func ValidateProgram(prog *Program, m *Machine) error { return ir.ValidateProgram(prog, m) }

// DumpProc renders a procedure with machine register names and spill
// tags, for debugging and examples.
func DumpProc(p *Proc, m *Machine) string {
	return dumpWith(p, m)
}

func dumpWith(p *Proc, m *Machine) string {
	pr := &ir.Printer{Mach: m, Tags: true}
	var sb strings.Builder
	pr.WriteProc(&sb, p)
	return sb.String()
}

// Re-exported opcodes for building IR through the facade.
const (
	OpNop    = ir.Nop
	OpMov    = ir.Mov
	OpLdi    = ir.Ldi
	OpAdd    = ir.Add
	OpSub    = ir.Sub
	OpMul    = ir.Mul
	OpDiv    = ir.Div
	OpRem    = ir.Rem
	OpAnd    = ir.And
	OpOr     = ir.Or
	OpXor    = ir.Xor
	OpShl    = ir.Shl
	OpShr    = ir.Shr
	OpNeg    = ir.Neg
	OpNot    = ir.Not
	OpCmpEQ  = ir.CmpEQ
	OpCmpNE  = ir.CmpNE
	OpCmpLT  = ir.CmpLT
	OpCmpLE  = ir.CmpLE
	OpCmpGT  = ir.CmpGT
	OpCmpGE  = ir.CmpGE
	OpFMov   = ir.FMov
	OpFLdi   = ir.FLdi
	OpFAdd   = ir.FAdd
	OpFSub   = ir.FSub
	OpFMul   = ir.FMul
	OpFDiv   = ir.FDiv
	OpFNeg   = ir.FNeg
	OpFCmpEQ = ir.FCmpEQ
	OpFCmpLT = ir.FCmpLT
	OpFCmpLE = ir.FCmpLE
	OpCvtIF  = ir.CvtIF
	OpCvtFI  = ir.CvtFI
	OpLd     = ir.Ld
	OpSt     = ir.St
	OpFLd    = ir.FLd
	OpFSt    = ir.FSt
)

// IROp is an instruction opcode (re-export for facade users).
type IROp = ir.Op
