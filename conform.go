package regalloc

import (
	"context"
	"fmt"

	"repro/internal/conform"
	"repro/internal/vm"
)

// Mismatch describes one observable divergence between the unallocated
// and allocated executions of a program (see ConformResult).
type Mismatch = conform.Mismatch

// Conformance mismatch kinds.
const (
	MismatchOutput   = conform.KindOutput
	MismatchRetValue = conform.KindRetValue
	MismatchMemory   = conform.KindMemory
	MismatchCounters = conform.KindCounters
	MismatchExec     = conform.KindExecError
)

// ConformResult is the outcome of Engine.Conform: the allocated program
// with its allocation report, both execution results, and the first
// observed divergence (nil when the allocation conforms).
type ConformResult struct {
	// Allocated is the allocated program; Report its allocation report.
	Allocated *Program
	Report    *Report
	// Ref is the execution of the input program under temp semantics;
	// Run the execution of Allocated with caller-saved registers
	// poisoned at every call (ExecuteParanoid).
	Ref, Run *ExecResult
	// Mismatch is the first divergence between Ref and Run, or nil.
	Mismatch *Mismatch
}

// Conform is the engine-level differential conformance check: it
// allocates prog through the engine's configured pipeline, executes the
// input program and the allocated program on the VM (the latter in
// paranoid mode), and compares all observable behavior — intrinsic
// output, return value, final memory image, and dynamic-counter sanity.
//
// A non-nil error with a populated ConformResult means the allocation
// succeeded but diverged (errors.As recovers the *Mismatch); a nil
// ConformResult means the pipeline itself failed. Tests use it to
// spot-check single programs; the full allocator × machine × profile
// grid lives in cmd/lsra-conform. The engine's observer hook
// (WithObserver) sees the per-procedure allocation events as usual.
func (e *Engine) Conform(ctx context.Context, prog *Program, input []byte) (*ConformResult, error) {
	allocated, rep, err := e.AllocateProgram(ctx, prog)
	if err != nil {
		return nil, err
	}
	res := &ConformResult{Allocated: allocated, Report: rep}
	res.Ref, err = vm.Run(prog, vm.Config{Mach: e.mach, Input: input})
	if err != nil {
		return nil, fmt.Errorf("regalloc: Conform: reference execution: %w", err)
	}
	res.Run, err = vm.Run(allocated, vm.Config{Mach: e.mach, Input: input, Paranoid: true})
	if err != nil {
		res.Mismatch = &Mismatch{Kind: MismatchExec, Detail: err.Error()}
		return res, fmt.Errorf("regalloc: Conform(%s on %s): %w", e.algorithm, e.mach.Name, res.Mismatch)
	}
	if mm := conform.Diff(res.Ref, res.Run); mm != nil {
		res.Mismatch = mm
		return res, fmt.Errorf("regalloc: Conform(%s on %s): %w", e.algorithm, e.mach.Name, mm)
	}
	return res, nil
}
