package regalloc_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	regalloc "repro"
	"repro/internal/progs"
)

// dumpProgram renders every allocated procedure, for byte-for-byte
// determinism comparisons.
func dumpProgram(prog *regalloc.Program, mach *regalloc.Machine) string {
	var sb strings.Builder
	for _, p := range prog.Procs {
		sb.WriteString(regalloc.DumpProc(p, mach))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestRegistryBuiltins(t *testing.T) {
	have := regalloc.Algorithms()
	for _, want := range []string{"binpack", "coloring", "linearscan", "twopass"} {
		found := false
		for _, n := range have {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in %q missing from registry %v", want, have)
		}
	}
}

// countingAllocator wraps a real allocator and counts Allocate calls, to
// prove the engine routes through registered factories.
type countingAllocator struct {
	regalloc.Allocator
	calls *atomic.Int64
}

func (c *countingAllocator) Allocate(p *regalloc.Proc) (*regalloc.Result, error) {
	c.calls.Add(1)
	return c.Allocator.Allocate(p)
}

func TestRegistryRoundTrip(t *testing.T) {
	var calls atomic.Int64
	err := regalloc.Register("test-counting", func(m *regalloc.Machine) regalloc.Allocator {
		return &countingAllocator{
			Allocator: regalloc.NewAllocator(m, regalloc.DefaultOptions()),
			calls:     &calls,
		}
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Lookup via Algorithms.
	found := false
	for _, n := range regalloc.Algorithms() {
		if n == "test-counting" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered name not listed in %v", regalloc.Algorithms())
	}

	// Duplicate registration must fail.
	if err := regalloc.Register("test-counting", func(m *regalloc.Machine) regalloc.Allocator { return nil }); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	// Empty name and nil factory must fail.
	if err := regalloc.Register("", func(m *regalloc.Machine) regalloc.Allocator { return nil }); err == nil {
		t.Fatal("empty-name Register succeeded")
	}
	if err := regalloc.Register("test-nil-factory", nil); err == nil {
		t.Fatal("nil-factory Register succeeded")
	}

	// An engine resolves the custom name and drives the custom allocator.
	mach := regalloc.Alpha()
	eng, err := regalloc.New(mach, regalloc.WithAlgorithm("test-counting"))
	if err != nil {
		t.Fatal(err)
	}
	prog := progs.Named("wc").Build(mach, 1)
	if _, _, err := eng.AllocateProgram(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(prog.Procs)) {
		t.Fatalf("custom allocator saw %d calls, want %d", got, len(prog.Procs))
	}
}

func TestEngineUnknownAlgorithm(t *testing.T) {
	_, err := regalloc.New(regalloc.Alpha(), regalloc.WithAlgorithm("no-such-allocator"))
	if err == nil {
		t.Fatal("New accepted an unknown algorithm")
	}
	if !strings.Contains(err.Error(), "no-such-allocator") {
		t.Fatalf("error %q does not name the algorithm", err)
	}
}

func TestEngineNilMachine(t *testing.T) {
	if _, err := regalloc.New(nil); err == nil {
		t.Fatal("New accepted a nil machine")
	}
}

// TestEngineOptionApplication checks that each functional option changes
// the engine's observable behavior.
func TestEngineOptionApplication(t *testing.T) {
	mach := regalloc.Alpha()
	prog := progs.Named("wc").Build(mach, 1)

	// WithAlgorithm is reflected by Algorithm().
	eng, err := regalloc.New(mach, regalloc.WithAlgorithm("coloring"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Algorithm() != "coloring" {
		t.Fatalf("Algorithm() = %q, want coloring", eng.Algorithm())
	}
	if eng.Machine() != mach {
		t.Fatal("Machine() does not return the construction machine")
	}

	// Defaults match the legacy DefaultOptions pipeline byte for byte.
	defEng, err := regalloc.New(mach, regalloc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	gotProg, _, err := defEng.AllocateProgram(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	wantProg, _, err := regalloc.AllocateProgram(prog, mach, regalloc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if dumpProgram(gotProg, mach) != dumpProgram(wantProg, mach) {
		t.Fatal("default engine and legacy DefaultOptions pipeline disagree")
	}

	// WithPeephole(false) leaves collapsed moves in place: the dump must
	// differ from the default pipeline on a workload with parameter
	// moves.
	noPeep, err := regalloc.New(mach, regalloc.WithPeephole(false), regalloc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	noPeepProg, _, err := noPeep.AllocateProgram(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if dumpProgram(noPeepProg, mach) == dumpProgram(gotProg, mach) {
		t.Fatal("WithPeephole(false) had no effect")
	}

	// WithBinpack is honored: on a spill-heavy workload the strict-linear
	// variant must match the legacy pipeline configured the same way,
	// and differ from the engine's default configuration.
	spilly := progs.Named("fpppp").Build(mach, 1)
	strictOpts := regalloc.DefaultOptions().Binpack
	strictOpts.StrictLinear = true
	strictEng, err := regalloc.New(mach, regalloc.WithBinpack(strictOpts), regalloc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	strictProg, _, err := strictEng.AllocateProgram(context.Background(), spilly)
	if err != nil {
		t.Fatal(err)
	}
	legacyOpts := regalloc.DefaultOptions()
	legacyOpts.Binpack = strictOpts
	legacyStrict, _, err := regalloc.AllocateProgram(spilly, mach, legacyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if dumpProgram(strictProg, mach) != dumpProgram(legacyStrict, mach) {
		t.Fatal("WithBinpack(strict) disagrees with the equivalent legacy Options")
	}
	defSpilly, _, err := defEng.AllocateProgram(context.Background(), spilly)
	if err != nil {
		t.Fatal(err)
	}
	if dumpProgram(strictProg, mach) == dumpProgram(defSpilly, mach) {
		t.Fatal("WithBinpack(strict) had no effect")
	}
}

// TestEngineParallelDeterminism is the acceptance criterion: allocating
// the whole suite with 8 workers must produce byte-identical dumps to
// the serial run. Run under -race this also exercises the engine's
// concurrency safety.
func TestEngineParallelDeterminism(t *testing.T) {
	for _, mach := range []*regalloc.Machine{regalloc.Alpha(), regalloc.Tiny(8, 6)} {
		for _, algo := range []string{"binpack", "twopass", "coloring", "linearscan"} {
			serial, err := regalloc.New(mach, regalloc.WithAlgorithm(algo), regalloc.WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := regalloc.New(mach, regalloc.WithAlgorithm(algo), regalloc.WithParallelism(8))
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range progs.Suite() {
				prog := b.Build(mach, 1)
				sProg, sRep, err := serial.AllocateProgram(context.Background(), prog)
				if err != nil {
					t.Fatalf("%s/%s/%s serial: %v", mach.Name, algo, b.Name, err)
				}
				pProg, pRep, err := parallel.AllocateProgram(context.Background(), prog)
				if err != nil {
					t.Fatalf("%s/%s/%s parallel: %v", mach.Name, algo, b.Name, err)
				}
				if ds, dp := dumpProgram(sProg, mach), dumpProgram(pProg, mach); ds != dp {
					t.Fatalf("%s/%s/%s: parallel dump differs from serial", mach.Name, algo, b.Name)
				}
				if len(sRep.Procs) != len(pRep.Procs) {
					t.Fatalf("%s/%s/%s: report row counts differ", mach.Name, algo, b.Name)
				}
				for i := range sRep.Procs {
					if sRep.Procs[i].Proc != pRep.Procs[i].Proc {
						t.Fatalf("%s/%s/%s: report order differs at %d", mach.Name, algo, b.Name, i)
					}
					if sRep.Procs[i].Stats.SpilledTemps != pRep.Procs[i].Stats.SpilledTemps {
						t.Fatalf("%s/%s/%s: stats differ for %s", mach.Name, algo, b.Name, sRep.Procs[i].Proc)
					}
				}
			}
		}
	}
}

// TestEngineParallelDeterminismRandom stresses many-proc random programs
// through one shared engine from multiple shapes.
func TestEngineParallelDeterminismRandom(t *testing.T) {
	mach := regalloc.Tiny(6, 4)
	serial, err := regalloc.New(mach, regalloc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := regalloc.New(mach, regalloc.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		prog := progs.Random(mach, progs.DefaultGen(seed))
		sProg, _, err := serial.AllocateProgram(context.Background(), prog)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		pProg, _, err := parallel.AllocateProgram(context.Background(), prog)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if dumpProgram(sProg, mach) != dumpProgram(pProg, mach) {
			t.Fatalf("seed %d: parallel dump differs from serial", seed)
		}
	}

	// A many-procedure module actually saturates the worker pool. The
	// verifier runs here too: its zero-initialized-temp rule accepts
	// whole-lifetime allocations of module programs whose defs sit on
	// structurally-skippable paths (formerly a ROADMAP open item that
	// forced WithVerify(false)).
	alpha := regalloc.Alpha()
	mod := progs.BuildModule(alpha, "det-module", 16, 60, 2).Prog
	for _, algo := range []string{"binpack", "coloring"} {
		s, err := regalloc.New(alpha, regalloc.WithAlgorithm(algo),
			regalloc.WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		p, err := regalloc.New(alpha, regalloc.WithAlgorithm(algo),
			regalloc.WithParallelism(8))
		if err != nil {
			t.Fatal(err)
		}
		sProg, _, err := s.AllocateProgram(context.Background(), mod)
		if err != nil {
			t.Fatalf("module serial %s: %v", algo, err)
		}
		pProg, _, err := p.AllocateProgram(context.Background(), mod)
		if err != nil {
			t.Fatalf("module parallel %s: %v", algo, err)
		}
		if dumpProgram(sProg, alpha) != dumpProgram(pProg, alpha) {
			t.Fatalf("module %s: parallel dump differs from serial", algo)
		}
	}
}

// TestVerifierAcceptsWholeLifetimeOnModules pins the fix for the ROADMAP
// open item: module programs place defs on structurally-skippable loop
// paths, and the verifier's zero-initialized-temp rule must accept the
// whole-lifetime allocators (coloring, linearscan, twopass) on them with
// verification enabled.
func TestVerifierAcceptsWholeLifetimeOnModules(t *testing.T) {
	mach := regalloc.Alpha()
	mod := progs.BuildModule(mach, "verify-module", 6, 120, 2).Prog
	for _, algo := range []string{"binpack", "twopass", "coloring", "linearscan"} {
		eng, err := regalloc.New(mach, regalloc.WithAlgorithm(algo), regalloc.WithVerify(true))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.AllocateProgram(context.Background(), mod); err != nil {
			t.Errorf("%s: verified module allocation failed: %v", algo, err)
		}
	}
}

func TestEngineObserver(t *testing.T) {
	mach := regalloc.Alpha()
	prog := progs.Named("li").Build(mach, 1)

	var events atomic.Int64
	seen := make([]atomic.Bool, len(prog.Procs))
	eng, err := regalloc.New(mach,
		regalloc.WithParallelism(4),
		regalloc.WithObserver(func(ev regalloc.Event) {
			events.Add(1)
			if ev.Err != nil {
				t.Errorf("observer saw error for %s: %v", ev.Proc, ev.Err)
			}
			if ev.Index < 0 || ev.Index >= len(prog.Procs) {
				t.Errorf("observer index %d out of range", ev.Index)
				return
			}
			if seen[ev.Index].Swap(true) {
				t.Errorf("observer saw index %d twice", ev.Index)
			}
			if prog.Procs[ev.Index].Name != ev.Proc {
				t.Errorf("observer event %d names %q, want %q", ev.Index, ev.Proc, prog.Procs[ev.Index].Name)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := eng.AllocateProgram(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := events.Load(); got != int64(len(prog.Procs)) {
		t.Fatalf("observer saw %d events, want %d", got, len(prog.Procs))
	}
	if rep.Totals.Candidates == 0 {
		t.Fatal("report totals empty")
	}
	if rep.Algorithm != "binpack" || rep.Machine != mach.Name {
		t.Fatalf("report header %q/%q wrong", rep.Algorithm, rep.Machine)
	}
}

// TestEnginePhaseStats checks the Report's phase breakdown: every run
// reports per-phase timings whose sum matches the totals, and
// WithPhaseProfile annotates phases with allocation counters.
func TestEnginePhaseStats(t *testing.T) {
	mach := regalloc.Alpha()
	prog := progs.Named("fpppp").Build(mach, 1)
	eng, err := regalloc.New(mach, regalloc.WithParallelism(1), regalloc.WithPhaseProfile(true))
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := eng.AllocateProgram(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PhaseStats) == 0 {
		t.Fatal("report has no PhaseStats")
	}
	var sumNs int64
	var share float64
	seen := map[string]bool{}
	for _, ps := range rep.PhaseStats {
		if ps.Ns < 0 {
			t.Errorf("phase %s has negative time", ps.Phase)
		}
		sumNs += ps.Ns
		share += ps.Share
		seen[ps.Phase] = true
	}
	for _, want := range []string{"cfg", "dataflow", "lifetime", "scan", "moves", "opt", "verify", "other"} {
		if !seen[want] {
			t.Errorf("phase %q missing from PhaseStats", want)
		}
	}
	if sumNs != rep.Totals.Phases.TotalNs() || sumNs <= 0 {
		t.Fatalf("phase ns sum %d disagrees with totals %d", sumNs, rep.Totals.Phases.TotalNs())
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("phase shares sum to %v, want ~1", share)
	}
	// fpppp at scale 1 spills: the scan phase must both take time and,
	// under WithPhaseProfile, report allocation traffic somewhere.
	var allocs uint64
	for _, ps := range rep.PhaseStats {
		allocs += ps.Allocs
	}
	if allocs == 0 {
		t.Fatal("WithPhaseProfile(true) reported zero allocations across all phases")
	}
	if rep.HeapAllocs == 0 || rep.HeapBytes == 0 {
		t.Fatal("batch heap counters missing")
	}

	// Registry allocators honor profiling through PhaseProfiler.
	col, err := regalloc.New(mach, regalloc.WithAlgorithm("coloring"),
		regalloc.WithParallelism(1), regalloc.WithPhaseProfile(true))
	if err != nil {
		t.Fatal(err)
	}
	_, colRep, err := col.AllocateProgram(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	var colAllocs uint64
	for _, ps := range colRep.PhaseStats {
		colAllocs += ps.Allocs
	}
	if colAllocs == 0 {
		t.Fatal("coloring under WithPhaseProfile reported zero allocs across phases")
	}

	// Without profiling, timings still arrive but alloc counters are 0.
	plain, err := regalloc.New(mach, regalloc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	_, rep2, err := plain.AllocateProgram(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Totals.Phases.TotalNs() <= 0 {
		t.Fatal("phase timings missing without profiling")
	}
	for _, ps := range rep2.PhaseStats {
		if ps.Allocs != 0 {
			t.Fatalf("phase %s has alloc counters without WithPhaseProfile", ps.Phase)
		}
	}
}

func TestEngineContextCancellation(t *testing.T) {
	mach := regalloc.Alpha()
	prog := progs.Named("li").Build(mach, 2)
	eng, err := regalloc.New(mach, regalloc.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the batch must fail fast
	_, _, err = eng.AllocateProgram(ctx, prog)
	if err == nil {
		t.Fatal("cancelled AllocateProgram succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLegacyWrappersStillWork pins the deprecated free functions to the
// engine results.
func TestLegacyWrappersStillWork(t *testing.T) {
	mach := regalloc.Tiny(8, 4)
	prog := progs.Random(mach, progs.DefaultGen(3))
	for _, algo := range []regalloc.Algorithm{
		regalloc.SecondChance, regalloc.TwoPass, regalloc.Coloring, regalloc.LinearScan,
	} {
		opts := regalloc.DefaultOptions()
		opts.Algorithm = algo
		legacyProg, results, err := regalloc.AllocateProgram(prog, mach, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(results) != len(prog.Procs) {
			t.Fatalf("%v: %d results for %d procs", algo, len(results), len(prog.Procs))
		}
		eng, err := regalloc.New(mach,
			regalloc.WithAlgorithm(algo.Name()), regalloc.WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		engProg, _, err := eng.AllocateProgram(context.Background(), prog)
		if err != nil {
			t.Fatalf("%v engine: %v", algo, err)
		}
		if dumpProgram(legacyProg, mach) != dumpProgram(engProg, mach) {
			t.Fatalf("%v: legacy wrapper and engine disagree", algo)
		}
		if a := regalloc.NewAllocator(mach, opts); a == nil {
			t.Fatalf("%v: NewAllocator returned nil", algo)
		}
		res, err := regalloc.AllocateProc(prog.Procs[0], mach, opts)
		if err != nil || res == nil {
			t.Fatalf("%v: AllocateProc: %v", algo, err)
		}
	}
}

func TestAlgorithmNames(t *testing.T) {
	for _, tc := range []struct {
		a    regalloc.Algorithm
		want string
	}{
		{regalloc.SecondChance, "binpack"},
		{regalloc.TwoPass, "twopass"},
		{regalloc.Coloring, "coloring"},
		{regalloc.LinearScan, "linearscan"},
	} {
		if got := tc.a.Name(); got != tc.want {
			t.Errorf("%v.Name() = %q, want %q", tc.a, got, tc.want)
		}
		if _, err := regalloc.New(regalloc.Alpha(), regalloc.WithAlgorithm(tc.a.Name())); err != nil {
			t.Errorf("engine rejects built-in %q: %v", tc.want, err)
		}
	}
}

func TestParseMachine(t *testing.T) {
	m, err := regalloc.ParseMachine("alpha")
	if err != nil || m.Name != "alpha" {
		t.Fatalf("ParseMachine(alpha) = %v, %v", m, err)
	}
	m, err = regalloc.ParseMachine("tiny:6,4")
	if err != nil || m.Name != "tiny(6,4)" {
		t.Fatalf("ParseMachine(tiny:6,4) = %v, %v", m, err)
	}
	for _, bad := range []string{"", "tiny:", "tiny:x,y", "vax"} {
		if _, err := regalloc.ParseMachine(bad); err == nil {
			t.Errorf("ParseMachine(%q) succeeded", bad)
		}
	}
}

// TestEngineQuickstartShape is an example-style smoke test of the
// documented quickstart flow.
func TestEngineQuickstartShape(t *testing.T) {
	mach := regalloc.Alpha()
	b := regalloc.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Ldi(x, 41)
	pb.Op2(regalloc.OpAdd, x, regalloc.TempOp(x), regalloc.ImmOp(1))
	pb.Ret(x)

	eng, err := regalloc.New(mach)
	if err != nil {
		t.Fatal(err)
	}
	allocated, report, err := eng.AllocateProgram(context.Background(), b.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if report.Totals.Candidates == 0 || len(report.Procs) != 1 {
		t.Fatalf("unexpected report %+v", report)
	}
	out, err := regalloc.Execute(allocated, mach, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.RetValue != 42 {
		t.Fatalf("ret = %d, want 42", out.RetValue)
	}
}
