package regalloc

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/verify"
)

// Engine is a reusable, concurrency-safe allocation pipeline for one
// machine. Construct it once with New and use it for any number of
// procedures or programs: each worker goroutine draws a pooled allocator
// instance whose scratch buffers persist across allocations, so the
// batch hot path stops re-allocating scan state per procedure.
type Engine struct {
	mach *Machine

	algorithm     string
	binpack       BinpackOptions
	binpackSet    bool
	binpackEff    BinpackOptions // effective options (cache fingerprint)
	dce           bool
	peephole      bool
	forwardStores bool
	verify        bool
	parallelism   int
	profilePhases bool
	observer      Observer
	cache         ResultCache

	factory alloc.Factory
	pool    sync.Pool // of Allocator instances, one per concurrent worker
	obsMu   sync.Mutex
}

// Option configures an Engine at construction time.
type Option func(*Engine) error

// WithAlgorithm selects the allocator by registry name (see Algorithms
// for the available set; the built-ins are "binpack", "twopass",
// "coloring" and "linearscan"). The default is "binpack", the paper's
// second-chance allocator.
func WithAlgorithm(name string) Option {
	return func(e *Engine) error {
		e.algorithm = name
		return nil
	}
}

// WithBinpack tunes the binpacking allocator family. It applies only to
// the "binpack" and "twopass" algorithms and is ignored by every other;
// the SecondChance field is forced to match the selected algorithm.
func WithBinpack(o BinpackOptions) Option {
	return func(e *Engine) error {
		e.binpack = o
		e.binpackSet = true
		return nil
	}
}

// WithDCE toggles dead-code elimination before allocation (§3 pipeline;
// on by default).
func WithDCE(on bool) Option {
	return func(e *Engine) error {
		e.dce = on
		return nil
	}
}

// WithPeephole toggles the post-allocation peephole pass that deletes
// collapsed moves (§3 pipeline; on by default).
func WithPeephole(on bool) Option {
	return func(e *Engine) error {
		e.peephole = on
		return nil
	}
}

// WithForwardStores toggles local store-to-load forwarding on the
// allocated code (the §2.4 follow-on cleanup; off by default).
func WithForwardStores(on bool) Option {
	return func(e *Engine) error {
		e.forwardStores = on
		return nil
	}
}

// WithVerify toggles the symbolic allocation verifier on every result
// (on by default).
func WithVerify(on bool) Option {
	return func(e *Engine) error {
		e.verify = on
		return nil
	}
}

// WithParallelism bounds the worker pool AllocateProgram fans
// procedures out over. Values below 1 select runtime.GOMAXPROCS(0),
// which is also the default. Results are deterministic regardless of
// the parallelism level.
func WithParallelism(n int) Option {
	return func(e *Engine) error {
		if n < 1 {
			n = runtime.GOMAXPROCS(0)
		}
		e.parallelism = n
		return nil
	}
}

// WithPhaseProfile annotates the per-phase nanosecond timings every
// Report carries with heap-allocation counters, sampled from
// runtime/metrics at each phase boundary. Sampling is cheap but not
// free, so it is off by default; timings alone are always collected.
// The engine enables sampling on every pooled allocator implementing
// PhaseProfiler (all four built-ins do); other allocators report their
// phases with zero alloc counters. Heap counters are process-global, so
// per-phase allocation figures are only exact under WithParallelism(1).
func WithPhaseProfile(on bool) Option {
	return func(e *Engine) error {
		e.profilePhases = on
		return nil
	}
}

// WithObserver installs a hook that receives one Event per procedure as
// AllocateProgram completes it. Events are delivered serially (the
// engine holds a lock), but under parallelism they may arrive out of
// input order; use Event.Index to correlate. The hook must not call
// back into the engine.
func WithObserver(fn Observer) Option {
	return func(e *Engine) error {
		e.observer = fn
		return nil
	}
}

// Observer receives per-procedure progress events from AllocateProgram.
type Observer func(Event)

// Event describes one allocated (or failed) procedure.
type Event struct {
	// Proc is the procedure name; Index its position in prog.Procs.
	Proc  string
	Index int
	// Stats is the allocation's statistics (zero when Err is set).
	Stats Stats
	// Elapsed is the wall time of this procedure's full pipeline.
	Elapsed time.Duration
	// Err is the pipeline error, if the procedure failed.
	Err error
}

// ProcReport is one procedure's slice of a Report.
type ProcReport struct {
	Proc    string        `json:"proc"`
	Stats   Stats         `json:"stats"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// PhaseStat is one pipeline phase's aggregate cost across a batch:
// summed wall time, its share of the total phase time, and — when the
// engine was built WithPhaseProfile — heap allocations attributed to
// the phase.
type PhaseStat struct {
	Phase  string  `json:"phase"`
	Ns     int64   `json:"ns"`
	Share  float64 `json:"share"`
	Allocs uint64  `json:"allocs,omitempty"`
	Bytes  uint64  `json:"bytes,omitempty"`
}

// Report aggregates one AllocateProgram run: per-procedure statistics in
// input order, their totals, the per-phase cost breakdown, and the batch
// wall time. HeapAllocs/HeapBytes are the process's heap-allocation
// deltas over the batch (approximate: concurrent activity outside the
// engine is included), the coarse steady-state allocs-per-batch figure
// the bench suite regresses on.
type Report struct {
	Algorithm   string        `json:"algorithm"`
	Machine     string        `json:"machine"`
	Parallelism int           `json:"parallelism"`
	Procs       []ProcReport  `json:"procs"`
	Totals      Stats         `json:"totals"`
	PhaseStats  []PhaseStat   `json:"phase_stats,omitempty"`
	HeapAllocs  uint64        `json:"heap_allocs"`
	HeapBytes   uint64        `json:"heap_bytes"`
	WallTime    time.Duration `json:"wall_time_ns"`
	// Cached marks a report returned from the result cache by
	// AllocateCached: the statistics describe the original allocation
	// that populated the entry, and no pipeline phase ran for this
	// request.
	Cached bool `json:"cached,omitempty"`
}

// New constructs an Engine for a machine. With no options it mirrors
// the paper's experimental pipeline: second-chance binpacking with DCE,
// peephole and verification on, fanning batches out over
// runtime.GOMAXPROCS(0) workers.
func New(mach *Machine, opts ...Option) (*Engine, error) {
	if mach == nil {
		return nil, fmt.Errorf("regalloc: New: nil machine")
	}
	e := &Engine{
		mach:        mach,
		algorithm:   SecondChance.Name(),
		dce:         true,
		peephole:    true,
		verify:      true,
		parallelism: runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(e); err != nil {
			return nil, err
		}
	}
	switch e.algorithm {
	case "binpack", "twopass":
		bo := core.DefaultOptions()
		if e.binpackSet {
			bo = e.binpack
		}
		bo.SecondChance = e.algorithm == "binpack"
		e.binpackEff = bo
		e.factory = func(m *Machine) Allocator { return core.New(m, bo) }
	default:
		f, ok := alloc.Lookup(e.algorithm)
		if !ok {
			return nil, fmt.Errorf("regalloc: unknown algorithm %q (have %v)", e.algorithm, Algorithms())
		}
		e.factory = f
	}
	e.pool.New = func() any {
		a := e.factory(e.mach)
		if e.profilePhases {
			if pp, ok := a.(alloc.PhaseProfiler); ok {
				pp.SetPhaseProfile(true)
			}
		}
		return a
	}
	return e, nil
}

// Machine returns the machine the engine allocates for.
func (e *Engine) Machine() *Machine { return e.mach }

// Algorithm returns the registry name of the engine's allocator.
func (e *Engine) Algorithm() string { return e.algorithm }

// AllocateProc runs the configured pipeline on one procedure and
// returns the rewritten procedure with statistics. The input is not
// modified: the engine clones it once and drives the allocator through
// its owned-procedure fast path, so the clone is the only defensive copy
// on the whole pipeline. Safe for concurrent use.
func (e *Engine) AllocateProc(p *Proc) (*Result, error) {
	tm := alloc.NewTimer(e.profilePhases)
	var engineStats Stats // phases the engine itself accounts for

	a := e.pool.Get().(Allocator)
	var res *Result
	var err error
	if oa, ok := a.(alloc.OwnedAllocator); ok {
		in := p.Clone()
		tm.Mark(&engineStats, alloc.PhaseOther)
		if e.dce {
			opt.DeadCodeElim(in)
			tm.Mark(&engineStats, alloc.PhaseOpt)
		}
		res, err = oa.AllocateOwned(in)
	} else {
		in := p
		if e.dce {
			in = p.Clone()
			tm.Mark(&engineStats, alloc.PhaseOther)
			opt.DeadCodeElim(in)
			tm.Mark(&engineStats, alloc.PhaseOpt)
		}
		res, err = a.Allocate(in)
	}
	e.pool.Put(a)
	if err != nil {
		return nil, err
	}
	if res.Stats.Phases.TotalNs() > 0 {
		tm.Skip() // the allocator timed its own phases
	} else {
		// An external allocator with no phase instrumentation of its
		// own: charge its whole span to the scan phase rather than
		// dropping it, so PhaseStats shares stay meaningful.
		tm.Mark(&engineStats, alloc.PhaseScan)
	}
	if e.verify {
		if err := verify.Verify(res.Proc, e.mach); err != nil {
			return nil, err
		}
		tm.Mark(&engineStats, alloc.PhaseVerify)
	}
	if e.forwardStores {
		opt.ForwardStores(res.Proc, e.mach)
	}
	if e.peephole {
		opt.Peephole(res.Proc)
	}
	tm.Mark(&engineStats, alloc.PhaseOpt)
	if err := ir.ValidateAllocated(res.Proc, e.mach); err != nil {
		return nil, fmt.Errorf("regalloc: invalid allocation for %s: %w", p.Name, err)
	}
	tm.Mark(&engineStats, alloc.PhaseOther)
	res.Stats.Phases.Add(engineStats.Phases)
	return res, nil
}

// AllocateProgram allocates every procedure of prog over the engine's
// bounded worker pool and returns the allocated program plus an
// aggregate report. Results are deterministic: procedures, report rows
// and the output program are in prog.Procs order regardless of
// parallelism, and on failure the error of the earliest failing
// procedure is returned. Cancelling ctx stops the batch early with
// ctx's error. The observer hook, if installed, sees every completed
// procedure.
func (e *Engine) AllocateProgram(ctx context.Context, prog *Program) (*Program, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	heapAllocs0, heapBytes0 := alloc.HeapCounters()
	procs := prog.Procs
	results := make([]*Result, len(procs))
	elapsed := make([]time.Duration, len(procs))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIndex = len(procs)
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIndex {
			firstErr, errIndex = err, i
		}
		mu.Unlock()
		cancel()
	}

	workers := e.parallelism
	if workers > len(procs) {
		workers = len(procs)
	}
	if workers < 1 {
		workers = 1
	}
	work := func(i int) {
		if ctx.Err() != nil {
			return // drain: the batch is already failing
		}
		procStart := time.Now()
		res, err := e.AllocateProc(procs[i])
		elapsed[i] = time.Since(procStart)
		ev := Event{Proc: procs[i].Name, Index: i, Elapsed: elapsed[i], Err: err}
		if err == nil {
			results[i] = res
			ev.Stats = res.Stats
		}
		e.observe(ev)
		if err != nil {
			fail(i, err)
		}
	}
	if workers == 1 {
		// Inline fast path: a single worker gains nothing from the pool,
		// and the per-proc channel rendezvous is pure scheduler traffic —
		// measurably so when other goroutines (a decode-ahead stage, the
		// service's accept loop) are runnable on the same core.
		for i := range procs {
			work(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					work(i)
				}
			}()
		}
		for i := range procs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err := context.Cause(ctx); err != nil {
		return nil, nil, err
	}

	out := ir.NewProgram(prog.MemWords)
	out.Main = prog.Main
	for addr, v := range prog.MemInit {
		out.SetMem(addr, v)
	}
	rep := &Report{
		Algorithm:   e.algorithm,
		Machine:     e.mach.Name,
		Parallelism: workers,
		Procs:       make([]ProcReport, 0, len(procs)),
	}
	for i, res := range results {
		out.AddProc(res.Proc)
		rep.Procs = append(rep.Procs, ProcReport{Proc: procs[i].Name, Stats: res.Stats, Elapsed: elapsed[i]})
		rep.Totals.Add(res.Stats)
	}
	rep.PhaseStats = phaseStats(rep.Totals.Phases)
	heapAllocs1, heapBytes1 := alloc.HeapCounters()
	rep.HeapAllocs = heapAllocs1 - heapAllocs0
	rep.HeapBytes = heapBytes1 - heapBytes0
	rep.WallTime = time.Since(start)
	return out, rep, nil
}

// phaseStats renders aggregated phase samples as the Report's PhaseStats
// section, in phase declaration order.
func phaseStats(pt alloc.PhaseTimes) []PhaseStat {
	total := pt.TotalNs()
	stats := make([]PhaseStat, 0, alloc.NumPhases)
	for i := range pt {
		s := PhaseStat{
			Phase:  alloc.Phase(i).String(),
			Ns:     pt[i].Ns,
			Allocs: pt[i].Allocs,
			Bytes:  pt[i].Bytes,
		}
		if total > 0 {
			s.Share = float64(pt[i].Ns) / float64(total)
		}
		stats = append(stats, s)
	}
	return stats
}

// observe delivers one event to the observer hook, serialized so the
// hook needs no locking of its own.
func (e *Engine) observe(ev Event) {
	if e.observer == nil {
		return
	}
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	e.observer(ev)
}
