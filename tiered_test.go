package regalloc

import (
	"fmt"
	"testing"
)

func tieredKV(i int) (CacheKey, *CachedAllocation) {
	return CacheKey(fmt.Sprintf("k%d", i)), &CachedAllocation{}
}

func TestShardedCacheHottest(t *testing.T) {
	c := NewShardedCache(16, 1) // one shard: exact MRU order
	for i := 0; i < 4; i++ {
		k, v := tieredKV(i)
		c.Put(k, v)
	}
	k1, _ := tieredKV(1)
	c.Get(k1) // k1 becomes most recent

	hl, ok := c.(HotLister)
	if !ok {
		t.Fatal("sharded cache does not implement HotLister")
	}
	hot := hl.Hottest(2)
	if len(hot) != 2 {
		t.Fatalf("Hottest(2) returned %d entries", len(hot))
	}
	if hot[0].Key != k1 {
		t.Errorf("hottest entry = %s, want k1", hot[0].Key)
	}
	if got := hl.Hottest(100); len(got) != 4 {
		t.Errorf("Hottest(100) returned %d entries, want all 4", len(got))
	}
	if got := hl.Hottest(0); len(got) != 0 {
		t.Errorf("Hottest(0) returned %d entries", len(got))
	}
}

// declineCache is a slow tier that rejects every Put (an admission bar
// that nothing clears) but records the attempts.
type declineCache struct {
	puts   int
	misses uint64
}

func (d *declineCache) Get(CacheKey) (*CachedAllocation, bool) { d.misses++; return nil, false }
func (d *declineCache) Put(CacheKey, *CachedAllocation)        { d.puts++ }
func (d *declineCache) Stats() CacheStats                      { return CacheStats{Misses: d.misses} }

func TestTieredCachePromoteOnSlowHit(t *testing.T) {
	fast := NewShardedCache(8, 1)
	slow := NewShardedCache(8, 1)
	tc := NewTieredCache(fast, slow)

	k, v := tieredKV(1)
	slow.Put(k, v) // only the slow tier holds it (e.g. after a restart)
	if _, ok := tc.Get(k); !ok {
		t.Fatal("tiered Get missed an entry the slow tier holds")
	}
	// The hit must have promoted the entry into the fast tier.
	if _, ok := fast.Get(k); !ok {
		t.Error("slow-tier hit was not promoted to the fast tier")
	}
	if _, ok := tc.Get(CacheKey("absent")); ok {
		t.Error("tiered Get invented an entry")
	}
	st := tc.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("composite stats = %+v, want 2 hits (1 fast + 1 slow), 1 miss", st)
	}
}

func TestTieredCachePutWritesBothTiers(t *testing.T) {
	fast := NewShardedCache(8, 1)
	decline := &declineCache{}
	tc := NewTieredCache(fast, decline)

	k, v := tieredKV(2)
	tc.Put(k, v)
	if decline.puts != 1 {
		t.Errorf("slow tier saw %d puts, want 1", decline.puts)
	}
	// The slow tier declined, the fast tier must still serve it.
	if _, ok := tc.Get(k); !ok {
		t.Error("entry lost when the slow tier declined the Put")
	}
	fastStats, slowStats := tc.TierStats()
	if fastStats.Hits != 1 {
		t.Errorf("fast tier hits = %d, want 1", fastStats.Hits)
	}
	if slowStats.Misses != 0 {
		t.Errorf("slow tier misses = %d, want 0 (fast tier hit first)", slowStats.Misses)
	}
}

func TestTieredCacheHottestDelegatesToFastTier(t *testing.T) {
	fast := NewShardedCache(8, 1)
	tc := NewTieredCache(fast, &declineCache{})
	k, v := tieredKV(3)
	tc.Put(k, v)
	hot := tc.Hottest(10)
	if len(hot) != 1 || hot[0].Key != k {
		t.Errorf("Hottest = %v, want the one fast-tier entry", hot)
	}
}
