package regalloc_test

import (
	"bytes"
	"testing"

	regalloc "repro"
	"repro/internal/progs"
)

func TestFacadePipelineAllAlgorithms(t *testing.T) {
	mach := regalloc.Alpha()
	prog := progs.Named("espresso").Build(mach, 1)
	want, err := regalloc.Execute(prog, mach, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []regalloc.Algorithm{
		regalloc.SecondChance, regalloc.TwoPass, regalloc.Coloring, regalloc.LinearScan,
	} {
		opts := regalloc.DefaultOptions()
		opts.Algorithm = algo
		allocated, results, err := regalloc.AllocateProgram(prog, mach, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(results) != len(prog.Procs) {
			t.Fatalf("%v: %d results for %d procs", algo, len(results), len(prog.Procs))
		}
		got, err := regalloc.ExecuteParanoid(allocated, mach, nil)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !bytes.Equal(got.Output, want.Output) || got.RetValue != want.RetValue {
			t.Fatalf("%v: output mismatch", algo)
		}
	}
}

func TestFacadeOptionsPlumbing(t *testing.T) {
	mach := regalloc.Tiny(6, 3)
	prog := progs.Random(mach, progs.DefaultGen(99))
	opts := regalloc.DefaultOptions()
	opts.ForwardStores = true
	allocated, _, err := regalloc.AllocateProgram(prog, mach, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := regalloc.Execute(prog, mach, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := regalloc.ExecuteParanoid(allocated, mach, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Output, want.Output) {
		t.Fatal("ForwardStores pipeline broke semantics")
	}
}

func TestFacadeBuilderQuickstartShape(t *testing.T) {
	mach := regalloc.Alpha()
	b := regalloc.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Ldi(x, 21)
	pb.Op2(regalloc.OpAdd, x, regalloc.TempOp(x), regalloc.TempOp(x))
	pb.Ret(x)
	if err := regalloc.ValidateProgram(b.Prog, mach); err != nil {
		t.Fatal(err)
	}
	res, err := regalloc.AllocateProc(pb.P, mach, regalloc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := regalloc.Verify(res.Proc, mach); err != nil {
		t.Fatal(err)
	}
	if s := regalloc.DumpProc(res.Proc, mach); len(s) == 0 {
		t.Fatal("empty dump")
	}
	allocated := regalloc.NewBuilder(mach, 8).Prog
	allocated.AddProc(res.Proc)
	out, err := regalloc.ExecuteParanoid(allocated, mach, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.RetValue != 42 {
		t.Fatalf("ret = %d", out.RetValue)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for algo, want := range map[regalloc.Algorithm]string{
		regalloc.SecondChance: "second-chance binpacking",
		regalloc.TwoPass:      "two-pass binpacking",
		regalloc.Coloring:     "graph coloring",
		regalloc.LinearScan:   "linear scan (Poletto)",
	} {
		if algo.String() != want {
			t.Fatalf("%d.String() = %q", algo, algo.String())
		}
	}
}
