// Command lsra-client scripts against lsra-served daemons: it posts
// textual IR programs for allocation and fetches service metrics.
//
//	lsra-client -addr http://localhost:7421 -machine alpha prog.ir
//	cat prog.ir | lsra-client -machine tiny:6,4 -algo linearscan
//	lsra-client -metrics
//
// -addr accepts a comma-separated node table; with more than one node
// the client becomes cluster-aware (internal/cluster): requests route
// by consistent hashing to the node whose cache owns them, fail over to
// ring successors on node loss, and — with -hedge — race a duplicate to
// the successor when the owner is slow. 429 + Retry-After responses are
// always honored with bounded backoff rather than treated as failures.
// With -topology pointing at a cluster admin endpoint (lsra-cluster
// -admin), the node table tracks the live membership: polled on
// -topology-refresh and immediately after a failover streak, so joins
// and leaves do not require a restart.
//
// By default the allocated program is printed to stdout and a one-line
// summary (serving node, cache status, candidates, spills, wall time)
// to stderr; -json dumps the daemon's full AllocateResponse instead.
// Multiple input files are sent as one batch request.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// shortKey abbreviates a content address for the summary line: the
// hash-scheme prefix plus the first 12 digest characters, tolerating
// keys of any length.
func shortKey(key string) string {
	scheme, digest, ok := strings.Cut(key, ":")
	if !ok || len(digest) <= 12 {
		return key
	}
	return scheme + ":" + digest[:12] + "…"
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:7421", "daemon base URL, or a comma-separated cluster node table")
		machine  = flag.String("machine", "alpha", "machine spec (preset or tiny:<ints>,<floats>)")
		algo     = flag.String("algo", "binpack", "allocator registry name")
		priority = flag.String("priority", "", "scheduling class: interactive (default) or batch")
		jsonOut  = flag.Bool("json", false, "print the full JSON response")
		metrics  = flag.Bool("metrics", false, "fetch /metrics instead of allocating (from every node)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request timeout")

		attempts = flag.Int("attempts", 0, "max distinct nodes to try per request (0 = client default)")
		hedge    = flag.Duration("hedge", 0, "send a duplicate to the next node after this long (0 = no hedging)")
		retries  = flag.Int("retries-429", 0, "re-sends per node after 429 + Retry-After (0 = client default)")

		topology        = flag.String("topology", "", "cluster admin /topology URL; the node table tracks it instead of staying fixed at -addr")
		topologyRefresh = flag.Duration("topology-refresh", 0, "poll period for -topology (0 = client default)")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "lsra-client:", err)
		os.Exit(1)
	}
	nodes := strings.Split(*addr, ",")
	for i := range nodes {
		nodes[i] = strings.TrimSpace(strings.TrimSuffix(nodes[i], "/"))
	}

	if *metrics {
		httpc := &http.Client{Timeout: *timeout}
		for _, node := range nodes {
			resp, err := httpc.Get(node + "/metrics")
			if err != nil {
				die(err)
			}
			if len(nodes) > 1 {
				fmt.Printf("%s:\n", node)
			}
			_, err = io.Copy(os.Stdout, resp.Body)
			resp.Body.Close()
			if err != nil {
				die(err)
			}
			fmt.Println()
		}
		return
	}

	req := serve.AllocateRequest{Machine: *machine, Algorithm: *algo, Priority: *priority}
	if flag.NArg() == 0 {
		text, err := io.ReadAll(os.Stdin)
		if err != nil {
			die(err)
		}
		req.Program = string(text)
	} else {
		for _, path := range flag.Args() {
			text, err := os.ReadFile(path)
			if err != nil {
				die(err)
			}
			req.Programs = append(req.Programs, string(text))
		}
	}

	cl := cluster.NewClient(cluster.ClientConfig{
		Nodes:            nodes,
		MaxAttempts:      *attempts,
		HedgeDelay:       *hedge,
		Max429Retries:    *retries,
		HTTPClient:       &http.Client{Timeout: *timeout},
		TopologyURL:      *topology,
		TopologyInterval: *topologyRefresh,
	})
	defer cl.Close()
	out, node, err := cl.Allocate(context.Background(), req)
	if err != nil {
		die(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			die(err)
		}
		return
	}
	for i, res := range out.Results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(res.Program)
		status := "allocated"
		if res.Cached {
			status = "cache hit"
		}
		rep := res.Report
		fmt.Fprintf(os.Stderr, "lsra-client: %s via %s (%s on %s): %s, %d procs, %d candidates, %d spilled, wall %v\n",
			status, node, out.Algorithm, out.Machine, shortKey(res.Key),
			len(rep.Procs), rep.Totals.Candidates, rep.Totals.SpilledTemps, rep.WallTime)
	}
}
