// Command lsra-client scripts against a running lsra-served daemon: it
// posts textual IR programs for allocation and fetches service metrics.
//
//	lsra-client -addr http://localhost:7421 -machine alpha prog.ir
//	cat prog.ir | lsra-client -machine tiny:6,4 -algo linearscan
//	lsra-client -metrics
//
// By default the allocated program is printed to stdout and a one-line
// summary (cache status, candidates, spills, wall time) to stderr; -json
// dumps the daemon's full AllocateResponse instead. Multiple input files
// are sent as one batch request.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
)

// shortKey abbreviates a content address for the summary line: the
// hash-scheme prefix plus the first 12 digest characters, tolerating
// keys of any length.
func shortKey(key string) string {
	scheme, digest, ok := strings.Cut(key, ":")
	if !ok || len(digest) <= 12 {
		return key
	}
	return scheme + ":" + digest[:12] + "…"
}

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:7421", "daemon base URL")
		machine = flag.String("machine", "alpha", "machine spec (preset or tiny:<ints>,<floats>)")
		algo    = flag.String("algo", "binpack", "allocator registry name")
		jsonOut = flag.Bool("json", false, "print the full JSON response")
		metrics = flag.Bool("metrics", false, "fetch /metrics instead of allocating")
		timeout = flag.Duration("timeout", 60*time.Second, "request timeout")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "lsra-client:", err)
		os.Exit(1)
	}
	client := &http.Client{Timeout: *timeout}

	if *metrics {
		resp, err := client.Get(*addr + "/metrics")
		if err != nil {
			die(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
			die(err)
		}
		return
	}

	req := serve.AllocateRequest{Machine: *machine, Algorithm: *algo}
	if flag.NArg() == 0 {
		text, err := io.ReadAll(os.Stdin)
		if err != nil {
			die(err)
		}
		req.Program = string(text)
	} else {
		for _, path := range flag.Args() {
			text, err := os.ReadFile(path)
			if err != nil {
				die(err)
			}
			req.Programs = append(req.Programs, string(text))
		}
	}

	body, err := json.Marshal(&req)
	if err != nil {
		die(err)
	}
	resp, err := client.Post(*addr+"/allocate", "application/json", bytes.NewReader(body))
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		die(err)
	}
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			die(fmt.Errorf("%s: %s", resp.Status, e.Error))
		}
		die(fmt.Errorf("%s: %s", resp.Status, raw))
	}
	if *jsonOut {
		os.Stdout.Write(raw)
		return
	}
	var out serve.AllocateResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		die(err)
	}
	for i, res := range out.Results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(res.Program)
		status := "allocated"
		if res.Cached {
			status = "cache hit"
		}
		rep := res.Report
		fmt.Fprintf(os.Stderr, "lsra-client: %s (%s on %s): %s, %d procs, %d candidates, %d spilled, wall %v\n",
			status, out.Algorithm, out.Machine, shortKey(res.Key),
			len(rep.Procs), rep.Totals.Candidates, rep.Totals.SpilledTemps, rep.WallTime)
	}
}
