// Command lsra-corpus manages mmap-streamable corpus files of binary IR
// programs (internal/corpus): the input side of the million-program
// throughput ladder.
//
//	lsra-corpus gen -o corpus.lsco -n 100000 -seed 1 -profiles all -shards 16
//	lsra-corpus info corpus.lsco
//	lsra-corpus verify "corpus.*.lsco"
//
// gen writes Count seeded random programs (program i uses seed base+i,
// profiles cycled), so a corpus is fully reproducible from its meta
// string; with -shards N it writes the set corpus.0000.lsco …
// corpus.NNNN.lsco instead of one file. info and verify accept a single
// file, a shard-set base name, or a glob over members. verify decodes
// every frame and runs full semantic validation — the integrity check
// for corpora that crossed machines — with shards verified in parallel
// across -jobs goroutines.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	regalloc "repro"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/irbin"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsra-corpus:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lsra-corpus gen -o <file> -n <count> [-seed N] [-profiles all|a,b,...] [-machine M] [-shards S] [-jobs J]
  lsra-corpus info <file|set-base|glob>
  lsra-corpus verify [-jobs J] <file|set-base|glob>`)
	os.Exit(2)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		out      = fs.String("o", "corpus.lsco", "output file (or shard-set base name with -shards)")
		n        = fs.Int("n", 100000, "number of programs")
		seed     = fs.Int64("seed", 1, "base seed; program i uses seed+i")
		profiles = fs.String("profiles", "all", "comma-separated generator profiles, or all")
		machine  = fs.String("machine", "alpha", "machine the generator shapes programs for")
		shards   = fs.Int("shards", 1, "shard-set member count (1 = single file)")
		jobs     = fs.Int("jobs", runtime.GOMAXPROCS(0), "parallel generator goroutines")
		workers  = fs.Int("workers", 0, "deprecated alias for -jobs")
	)
	fs.Parse(args)
	mach, err := regalloc.ParseMachine(*machine)
	if err != nil {
		return err
	}
	var names []string
	if *profiles != "all" {
		names = strings.Split(*profiles, ",")
	}
	if *workers > 0 {
		*jobs = *workers
	}
	err = corpus.Generate(*out, corpus.GenOptions{
		Count:    *n,
		Seed:     *seed,
		Profiles: names,
		Machine:  mach,
		Workers:  *jobs,
		Shards:   *shards,
	})
	if err != nil {
		return err
	}
	r, err := corpus.OpenSet(*out)
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("wrote %s: %d programs in %d shard(s), %d bytes (%.1f bytes/program)\n",
		*out, r.Count(), r.Shards(), r.Size(), float64(r.Size())/float64(max(r.Count(), 1)))
	return nil
}

func runInfo(args []string) error {
	if len(args) != 1 {
		usage()
	}
	r, err := corpus.OpenSet(args[0])
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("set:      %s\n", args[0])
	fmt.Printf("shards:   %d\n", r.Shards())
	fmt.Printf("programs: %d\n", r.Count())
	fmt.Printf("size:     %d bytes", r.Size())
	if r.Count() > 0 {
		fmt.Printf(" (%.1f bytes/program)", float64(r.Size())/float64(r.Count()))
	}
	fmt.Println()
	fmt.Printf("meta:     %s\n", r.Meta())
	for i := 0; i < r.Shards(); i++ {
		sh := r.Shard(i)
		fmt.Printf("  %s: %d programs, %d bytes\n", r.Path(i), sh.Count(), sh.Size())
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "shards verified concurrently")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	r, err := corpus.OpenSet(fs.Arg(0))
	if err != nil {
		return err
	}
	defer r.Close()

	// Shards are the parallelism unit: each worker owns one arena and
	// verifies whole members, so frames never share decode storage.
	var (
		instrs  atomic.Int64
		wg      sync.WaitGroup
		next    atomic.Int64
		errOnce sync.Once
		vErr    error
	)
	nw := min(max(*jobs, 1), r.Shards())
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := irbin.NewArena()
			for {
				s := int(next.Add(1)) - 1
				if s >= r.Shards() {
					return
				}
				n, err := verifyShard(r.Shard(s), arena)
				if err != nil {
					errOnce.Do(func() { vErr = fmt.Errorf("%s: %w", r.Path(s), err) })
					return
				}
				instrs.Add(n)
			}
		}()
	}
	wg.Wait()
	if vErr != nil {
		return vErr
	}
	fmt.Printf("ok: %d programs in %d shard(s), %d instructions\n", r.Count(), r.Shards(), instrs.Load())
	return nil
}

// verifyShard decodes and semantically validates every frame of one
// member, returning its instruction count.
func verifyShard(sh *corpus.Reader, arena *irbin.Arena) (int64, error) {
	var instrs int64
	for i := 0; i < sh.Count(); i++ {
		prog, err := sh.Decode(i, arena)
		if err != nil {
			return 0, err
		}
		if err := ir.ValidateProgram(prog, nil); err != nil {
			return 0, fmt.Errorf("program %d: %w", i, err)
		}
		for _, p := range prog.Procs {
			instrs += int64(p.NumInstrs())
		}
	}
	return instrs, nil
}
