// Command lsra-corpus manages mmap-streamable corpus files of binary IR
// programs (internal/corpus): the input side of the million-program
// throughput ladder.
//
//	lsra-corpus gen -o corpus.lsco -n 100000 -seed 1 -profiles all
//	lsra-corpus info corpus.lsco
//	lsra-corpus verify corpus.lsco
//
// gen writes Count seeded random programs (program i uses seed base+i,
// profiles cycled), so a corpus is fully reproducible from its meta
// string. verify decodes every frame through one arena and runs full
// semantic validation — the integrity check for corpora that crossed
// machines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	regalloc "repro"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/irbin"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsra-corpus:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lsra-corpus gen -o <file> -n <count> [-seed N] [-profiles all|a,b,...] [-machine M] [-workers W]
  lsra-corpus info <file>
  lsra-corpus verify <file>`)
	os.Exit(2)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		out      = fs.String("o", "corpus.lsco", "output file")
		n        = fs.Int("n", 100000, "number of programs")
		seed     = fs.Int64("seed", 1, "base seed; program i uses seed+i")
		profiles = fs.String("profiles", "all", "comma-separated generator profiles, or all")
		machine  = fs.String("machine", "alpha", "machine the generator shapes programs for")
		workers  = fs.Int("workers", 0, "generator goroutines (0 = GOMAXPROCS)")
	)
	fs.Parse(args)
	mach, err := regalloc.ParseMachine(*machine)
	if err != nil {
		return err
	}
	var names []string
	if *profiles != "all" {
		names = strings.Split(*profiles, ",")
	}
	err = corpus.Generate(*out, corpus.GenOptions{
		Count:    *n,
		Seed:     *seed,
		Profiles: names,
		Machine:  mach,
		Workers:  *workers,
	})
	if err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d programs, %d bytes (%.1f bytes/program)\n",
		*out, *n, st.Size(), float64(st.Size())/float64(*n))
	return nil
}

func runInfo(args []string) error {
	if len(args) != 1 {
		usage()
	}
	r, err := corpus.Open(args[0])
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("file:     %s\n", args[0])
	fmt.Printf("programs: %d\n", r.Count())
	fmt.Printf("size:     %d bytes", r.Size())
	if r.Count() > 0 {
		fmt.Printf(" (%.1f bytes/program)", float64(r.Size())/float64(r.Count()))
	}
	fmt.Println()
	fmt.Printf("meta:     %s\n", r.Meta())
	return nil
}

func runVerify(args []string) error {
	if len(args) != 1 {
		usage()
	}
	r, err := corpus.Open(args[0])
	if err != nil {
		return err
	}
	defer r.Close()
	arena := irbin.NewArena()
	var instrs int
	for i := 0; i < r.Count(); i++ {
		prog, err := r.Decode(i, arena)
		if err != nil {
			return err
		}
		if err := ir.ValidateProgram(prog, nil); err != nil {
			return fmt.Errorf("program %d: %w", i, err)
		}
		for _, p := range prog.Procs {
			instrs += p.NumInstrs()
		}
	}
	fmt.Printf("ok: %d programs, %d instructions\n", r.Count(), instrs)
	return nil
}
