package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, pairs, ok := parseBenchLine(
		"BenchmarkTable3/fpppp.f/binpack-8 \t 3\t  76683398 ns/op\t      6903 candidates\t20824458 B/op\t  156519 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "BenchmarkTable3/fpppp.f/binpack" {
		t.Fatalf("name = %q (GOMAXPROCS suffix must be stripped)", name)
	}
	want := map[string]float64{
		"ns/op": 76683398, "candidates": 6903, "B/op": 20824458, "allocs/op": 156519,
	}
	if len(pairs) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(pairs), len(want))
	}
	for _, p := range pairs {
		if want[p.unit] != p.value {
			t.Errorf("%s = %v, want %v", p.unit, p.value, want[p.unit])
		}
	}

	// A benchmark named with a literal dash segment keeps its name.
	name, _, ok = parseBenchLine("BenchmarkFigure3/doduc-b-8 \t 1\t 123 ns/op")
	if !ok || name != "BenchmarkFigure3/doduc-b" {
		t.Fatalf("dash-named benchmark parsed as %q", name)
	}

	for _, bad := range []string{
		"", "ok  repro 1.2s", "goos: linux", "PASS",
		"BenchmarkX", "BenchmarkX notanint 5 ns/op",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Errorf("parsed non-benchmark line %q", bad)
		}
	}
}

func TestParseBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	content := `goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkA-8   3   100 ns/op   10 allocs/op
BenchmarkA-8   3   110 ns/op   10 allocs/op
BenchmarkB-8   3   50 ns/op
PASS
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, fp, err := parseBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := s[sampleKey{"BenchmarkA", "ns/op"}]; len(got) != 2 || got[0] != 100 || got[1] != 110 {
		t.Fatalf("BenchmarkA ns/op samples = %v", got)
	}
	if got := s[sampleKey{"BenchmarkB", "ns/op"}]; len(got) != 1 || got[0] != 50 {
		t.Fatalf("BenchmarkB ns/op samples = %v", got)
	}
	if want := "linux/amd64/Intel(R) Xeon(R) Processor @ 2.10GHz"; fp != want {
		t.Fatalf("fingerprint = %q, want %q", fp, want)
	}
}

// TestFingerprint pins what identifies a runner class (goos/goarch/cpu —
// never the hostname) and that headerless files yield the empty
// fingerprint so the mismatch demotion cannot trigger on fixtures.
func TestFingerprint(t *testing.T) {
	var fp fingerprint
	if fp.String() != "" {
		t.Fatalf("empty fingerprint renders %q, want \"\"", fp.String())
	}
	for _, line := range []string{
		"goos: linux",
		"goarch: arm64",
		"cpu: Apple M2",
		"pkg: repro",           // ignored
		"BenchmarkX 1 2 ns/op", // ignored
	} {
		fp.observe(line)
	}
	if want := "linux/arm64/Apple M2"; fp.String() != want {
		t.Fatalf("fingerprint = %q, want %q", fp.String(), want)
	}
}

func TestIsTimeMetric(t *testing.T) {
	for unit, want := range map[string]bool{
		"ns/op": true, "sec/op": true,
		"allocs/op": false, "B/op": false, "MB/s": false,
	} {
		if got := isTimeMetric(unit); got != want {
			t.Errorf("isTimeMetric(%q) = %v, want %v", unit, got, want)
		}
	}
}

// The median / Mann-Whitney arithmetic lives in internal/perfdb/stats
// (shared with the perf observatory) and is tested there; here we test
// what benchguard itself owns — parsing and reporting.

// TestViolationMessage pins the actionable violation line: it must name
// the benchmark, the metric, and both sample medians, so a CI log reader
// can act on the failure without scrolling back to the table.
func TestViolationMessage(t *testing.T) {
	k := sampleKey{bench: "BenchmarkTable3/fpppp.f/binpack", metric: "allocs/op"}
	msg := violationMessage(k, 6903, 25000, "+262.2%", 0.002, 0.10)
	for _, want := range []string{
		"BenchmarkTable3/fpppp.f/binpack", "allocs/op", "6903", "25000", "+262.2%", "p=0.002", "threshold +10%",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation message %q missing %q", msg, want)
		}
	}
}
