package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, pairs, ok := parseBenchLine(
		"BenchmarkTable3/fpppp.f/binpack-8 \t 3\t  76683398 ns/op\t      6903 candidates\t20824458 B/op\t  156519 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "BenchmarkTable3/fpppp.f/binpack" {
		t.Fatalf("name = %q (GOMAXPROCS suffix must be stripped)", name)
	}
	want := map[string]float64{
		"ns/op": 76683398, "candidates": 6903, "B/op": 20824458, "allocs/op": 156519,
	}
	if len(pairs) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(pairs), len(want))
	}
	for _, p := range pairs {
		if want[p.unit] != p.value {
			t.Errorf("%s = %v, want %v", p.unit, p.value, want[p.unit])
		}
	}

	// A benchmark named with a literal dash segment keeps its name.
	name, _, ok = parseBenchLine("BenchmarkFigure3/doduc-b-8 \t 1\t 123 ns/op")
	if !ok || name != "BenchmarkFigure3/doduc-b" {
		t.Fatalf("dash-named benchmark parsed as %q", name)
	}

	for _, bad := range []string{
		"", "ok  repro 1.2s", "goos: linux", "PASS",
		"BenchmarkX", "BenchmarkX notanint 5 ns/op",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Errorf("parsed non-benchmark line %q", bad)
		}
	}
}

func TestParseBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	content := `goos: linux
goarch: amd64
BenchmarkA-8   3   100 ns/op   10 allocs/op
BenchmarkA-8   3   110 ns/op   10 allocs/op
BenchmarkB-8   3   50 ns/op
PASS
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := parseBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := s[sampleKey{"BenchmarkA", "ns/op"}]; len(got) != 2 || got[0] != 100 || got[1] != 110 {
		t.Fatalf("BenchmarkA ns/op samples = %v", got)
	}
	if got := s[sampleKey{"BenchmarkB", "ns/op"}]; len(got) != 1 || got[0] != 50 {
		t.Fatalf("BenchmarkB ns/op samples = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
	if !math.IsNaN(median(nil)) {
		t.Fatal("median of empty not NaN")
	}
}

// TestZeroBaselineRegression pins the from-zero rule: a benchmark whose
// baseline hit 0 allocs/op must trip the gate when allocations return,
// even though no relative delta exists.
func TestZeroBaselineRegression(t *testing.T) {
	zero := []float64{0, 0, 0, 0, 0, 0}
	back := []float64{10000, 10001, 9999, 10000, 10002, 9998}
	if p := mannWhitneyP(zero, back); p >= 0.05 {
		t.Fatalf("from-zero jump not significant: p=%v", p)
	}
	// Still-zero stays quiet.
	if p := mannWhitneyP(zero, zero); p < 0.5 {
		t.Fatalf("all-zero vs all-zero p=%v", p)
	}
}

func TestMannWhitney(t *testing.T) {
	// Clearly separated samples: significant.
	a := []float64{100, 101, 99, 100, 102, 98}
	b := []float64{150, 151, 149, 150, 152, 148}
	if p := mannWhitneyP(a, b); p >= 0.05 {
		t.Fatalf("separated samples p = %v, want < 0.05", p)
	}
	// Identical samples: no evidence.
	if p := mannWhitneyP(a, a); p < 0.5 {
		t.Fatalf("identical samples p = %v, want ~1", p)
	}
	// Heavily overlapping samples: not significant.
	c := []float64{100, 103, 97, 101, 99, 102}
	d := []float64{101, 98, 104, 100, 102, 99}
	if p := mannWhitneyP(c, d); p < 0.05 {
		t.Fatalf("overlapping samples p = %v, want >= 0.05", p)
	}
	// Degenerate inputs must not panic or claim significance.
	if p := mannWhitneyP(nil, b); p != 1 {
		t.Fatalf("empty sample p = %v", p)
	}
	if p := mannWhitneyP([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Fatalf("all-ties p = %v", p)
	}
}
