// Command benchguard gates benchmark regressions in CI. It parses two
// `go test -bench` output files — a committed baseline and a fresh run —
// pairs benchmarks by name, and fails (exit 1) when a metric regressed
// both *significantly* (two-sided Mann-Whitney U test over the -count
// repetitions) and *substantially* (median worsened beyond a per-metric
// threshold). Requiring both keeps the gate quiet on noisy runners while
// still catching real regressions; allocs/op is near-deterministic, so
// its threshold can be tight where time/op's must be loose.
//
// benchstat remains the human-readable report (the CI job runs it right
// before this gate); benchguard is the machine-checkable verdict. The
// statistics live in the shared internal/perfdb/stats package, so this
// gate and the perf observatory's changepoint flagging (cmd/lsra-perfd)
// agree on what counts as a regression.
//
// Usage:
//
//	benchguard -old bench/baseline.txt -new bench-new.txt \
//	    [-time-threshold 0.35] [-alloc-threshold 0.10] [-alpha 0.05]
//
// Benchmarks present in only one file are reported but never fail the
// gate (renames should not break CI); missing baselines are a warning.
//
// Both files carry a host fingerprint (the goos/goarch/cpu lines `go
// test -bench` writes). When the baseline's fingerprint does not match
// the fresh run's, time/op violations demote to warnings — comparing
// wall time across runner classes measures the hardware, not the code —
// while allocs/op violations (including the from-zero rule) still fail
// the gate on any host.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/perfdb/stats"
)

// sampleKey identifies one metric series of one benchmark.
type sampleKey struct {
	bench  string
	metric string
}

// parseBenchFile extracts metric samples from `go test -bench` output,
// plus the host fingerprint from its goos/goarch/cpu header lines.
// Benchmark lines look like:
//
//	BenchmarkTable3/fpppp.f/binpack-8  3  76683398 ns/op  20824458 B/op  156519 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so baselines survive
// runner-shape changes. Value/unit pairs follow the iteration count.
func parseBenchFile(path string) (map[sampleKey][]float64, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	samples := make(map[sampleKey][]float64)
	fp := fingerprint{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fp.observe(line)
		name, pairs, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		for _, p := range pairs {
			k := sampleKey{bench: name, metric: p.unit}
			samples[k] = append(samples[k], p.value)
		}
	}
	return samples, fp.String(), sc.Err()
}

// fingerprint identifies the runner class a bench file was produced on.
// `go test -bench` stamps goos/goarch/cpu header lines into its output,
// so a committed baseline carries its own provenance; the hostname is
// deliberately excluded (CI runners are ephemeral, their hardware class
// is not).
type fingerprint struct {
	goos, goarch, cpu string
}

func (fp *fingerprint) observe(line string) {
	if v, ok := strings.CutPrefix(line, "goos: "); ok {
		fp.goos = strings.TrimSpace(v)
	} else if v, ok := strings.CutPrefix(line, "goarch: "); ok {
		fp.goarch = strings.TrimSpace(v)
	} else if v, ok := strings.CutPrefix(line, "cpu: "); ok {
		fp.cpu = strings.TrimSpace(v)
	}
}

// String renders the fingerprint, or "" when the file carried no header
// lines at all (hand-built fixtures, truncated output).
func (fp fingerprint) String() string {
	if fp.goos == "" && fp.goarch == "" && fp.cpu == "" {
		return ""
	}
	return fp.goos + "/" + fp.goarch + "/" + fp.cpu
}

// isTimeMetric reports whether a unit measures wall time. Time metrics
// shift with the hardware underneath them, so a fingerprint mismatch
// demotes their violations to warnings; allocs/op is a property of the
// code, not the machine, and always gates.
func isTimeMetric(unit string) bool {
	return unit == "ns/op" || unit == "sec/op"
}

type metricPair struct {
	value float64
	unit  string
}

func parseBenchLine(line string) (name string, pairs []metricPair, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name = fields[0]
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false // second field must be the iteration count
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		pairs = append(pairs, metricPair{value: v, unit: fields[i+1]})
	}
	return name, pairs, len(pairs) > 0
}

// thresholds maps a metric unit to the maximum tolerated relative median
// regression; metrics not listed are informational only.
func thresholds(timeThresh, allocThresh float64) map[string]float64 {
	return map[string]float64{
		"ns/op":     timeThresh,
		"sec/op":    timeThresh,
		"allocs/op": allocThresh,
	}
}

func main() {
	var (
		oldPath     = flag.String("old", "", "baseline `file` (go test -bench output)")
		newPath     = flag.String("new", "", "candidate `file` (go test -bench output)")
		timeThresh  = flag.Float64("time-threshold", 0.35, "max tolerated relative time/op median regression")
		allocThresh = flag.Float64("alloc-threshold", 0.10, "max tolerated relative allocs/op median regression")
		alpha       = flag.Float64("alpha", 0.05, "significance level for the Mann-Whitney test")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	oldS, oldFP, err := parseBenchFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	newS, newFP, err := parseBenchFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	// A baseline recorded on a different runner class cannot anchor
	// wall-time comparisons: the time/op gate would fire on hardware
	// deltas, not code deltas. Demote time violations to warnings and
	// say so loudly; allocs/op keeps gating regardless.
	hostMismatch := oldFP != "" && newFP != "" && oldFP != newFP
	if hostMismatch {
		fmt.Printf("benchguard: HOST MISMATCH — baseline %q vs this run %q\n", oldFP, newFP)
		fmt.Println("benchguard: time/op regressions are warnings only on this run; regenerate bench/baseline.txt on the current runner class to re-arm the time gate")
	}

	gate := thresholds(*timeThresh, *allocThresh)
	var keys []sampleKey
	for k := range newS {
		if _, watched := gate[k.metric]; watched {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		// No gated series at all means the benchmark run produced no
		// data (crashed, truncated, wrong file): that is a failure, not
		// a pass — the gate must never be green on silence.
		fmt.Fprintln(os.Stderr, "benchguard: no time/op or allocs/op series found in", *newPath)
		os.Exit(1)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		return keys[i].metric < keys[j].metric
	})

	var violations []string
	warnings := 0
	missing := 0
	for _, k := range keys {
		oldV, ok := oldS[k]
		if !ok {
			missing++
			fmt.Printf("NEW      %-60s %-10s (no baseline)\n", k.bench, k.metric)
			continue
		}
		om, nm := stats.Median(oldV), stats.Median(newS[k])
		p := stats.MannWhitneyP(oldV, newS[k])
		verdict := "ok"
		deltaStr := "n/a"
		violated := false
		if om > 0 {
			delta := (nm - om) / om
			deltaStr = fmt.Sprintf("%+.1f%%", 100*delta)
			violated = delta > gate[k.metric] && p < *alpha
		} else if nm > 0 {
			// A zero baseline is a hard-won floor (0 allocs/op is this
			// repo's stated steady-state target): any significant move
			// off it is a regression, relative delta or not.
			deltaStr = "from-zero"
			violated = p < *alpha
		}
		if violated {
			if hostMismatch && isTimeMetric(k.metric) {
				verdict = "WARN"
				warnings++
			} else {
				verdict = "REGRESSION"
				violations = append(violations, violationMessage(k, om, nm, deltaStr, p, gate[k.metric]))
			}
		}
		fmt.Printf("%-8s %-60s %-10s old=%.4g new=%.4g delta=%s p=%.3f\n",
			verdict, k.bench, k.metric, om, nm, deltaStr, p)
	}
	// Baseline series with no counterpart in the fresh run: guarded
	// coverage shrank (a benchmark was deleted or renamed). Reported so
	// the reader sees it, but never a failure — renames must not break
	// CI.
	gone := 0
	var goneKeys []sampleKey
	for k := range oldS {
		if _, watched := gate[k.metric]; !watched {
			continue
		}
		if _, ok := newS[k]; !ok {
			goneKeys = append(goneKeys, k)
		}
	}
	sort.Slice(goneKeys, func(i, j int) bool {
		if goneKeys[i].bench != goneKeys[j].bench {
			return goneKeys[i].bench < goneKeys[j].bench
		}
		return goneKeys[i].metric < goneKeys[j].metric
	})
	for _, k := range goneKeys {
		gone++
		fmt.Printf("GONE     %-60s %-10s (in baseline, missing from this run)\n", k.bench, k.metric)
	}
	if missing > 0 {
		fmt.Printf("benchguard: %d series have no baseline (informational)\n", missing)
	}
	if gone > 0 {
		fmt.Printf("benchguard: %d baseline series disappeared — regenerate bench/baseline.txt if intentional\n", gone)
	}
	if warnings > 0 {
		fmt.Printf("benchguard: %d time/op violation(s) demoted to warnings (host mismatch)\n", warnings)
	}
	if len(violations) > 0 {
		// One self-contained line per violation, on stderr: CI log
		// readers see which benchmark, which metric, and both medians
		// without scrolling back to the table.
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Printf("benchguard: %d significant regression(s) beyond threshold\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("benchguard: no significant regressions")
}

// violationMessage renders one actionable violation line: benchmark,
// metric name, both sample medians, the delta, the significance, and the
// threshold that was exceeded.
func violationMessage(k sampleKey, oldMedian, newMedian float64, deltaStr string, p, threshold float64) string {
	return fmt.Sprintf("benchguard: REGRESSION %s %s: median %s -> %s (%s, p=%.3f, threshold %+.0f%%)",
		k.bench, k.metric,
		strconv.FormatFloat(oldMedian, 'f', -1, 64), strconv.FormatFloat(newMedian, 'f', -1, 64),
		deltaStr, p, 100*threshold)
}
