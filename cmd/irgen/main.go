// Command irgen prints seeded random IR programs — a fuzz corpus
// generator for eyeballing what the property tests feed the allocators.
//
//	irgen -seed 7 -machine tiny:6,4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/target"
)

func main() {
	var (
		seed    = flag.Int64("seed", 0, "generator seed")
		machine = flag.String("machine", "alpha", "alpha | tiny:<ints>,<floats>")
		stmts   = flag.Int("stmts", 60, "approximate statement budget")
		ints    = flag.Int("ints", 12, "integer temporary pool")
		floats  = flag.Int("floats", 6, "float temporary pool")
	)
	flag.Parse()

	var mach *target.Machine
	if *machine == "alpha" {
		mach = target.Alpha()
	} else if rest, ok := strings.CutPrefix(*machine, "tiny:"); ok {
		var ni, nf int
		if _, err := fmt.Sscanf(rest, "%d,%d", &ni, &nf); err != nil {
			fmt.Fprintln(os.Stderr, "irgen: bad -machine")
			os.Exit(2)
		}
		mach = target.Tiny(ni, nf)
	} else {
		fmt.Fprintln(os.Stderr, "irgen: unknown -machine")
		os.Exit(2)
	}

	cfg := progs.DefaultGen(*seed)
	cfg.Stmts = *stmts
	cfg.IntTemps = *ints
	cfg.FloatTemps = *floats
	prog := progs.Random(mach, cfg)
	pr := &ir.Printer{Mach: mach}
	pr.WriteProgram(os.Stdout, prog)
}
