// Command irgen prints seeded random IR programs — a fuzz corpus
// generator for eyeballing what the property tests feed the allocators.
//
//	irgen -seed 7 -machine tiny:6,4
package main

import (
	"flag"
	"fmt"
	"os"

	regalloc "repro"
	"repro/internal/ir"
	"repro/internal/progs"
)

func main() {
	var (
		seed    = flag.Int64("seed", 0, "generator seed")
		machine = flag.String("machine", "alpha", "alpha | tiny:<ints>,<floats>")
		stmts   = flag.Int("stmts", 60, "approximate statement budget")
		ints    = flag.Int("ints", 12, "integer temporary pool")
		floats  = flag.Int("floats", 6, "float temporary pool")
	)
	flag.Parse()

	mach, err := regalloc.ParseMachine(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "irgen:", err)
		os.Exit(2)
	}

	cfg := progs.DefaultGen(*seed)
	cfg.Stmts = *stmts
	cfg.IntTemps = *ints
	cfg.FloatTemps = *floats
	prog := progs.Random(mach, cfg)
	pr := &ir.Printer{Mach: mach}
	pr.WriteProgram(os.Stdout, prog)
}
