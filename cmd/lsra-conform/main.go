// Command lsra-conform runs the differential conformance matrix: every
// selected allocator × machine × workload profile × seed, executing each
// program on the VM before allocation (temp semantics) and after
// allocation (paranoid mode) and diffing all observable behavior. The
// report is JSON on stdout; the exit status is 1 when any cell diverged.
//
//	lsra-conform                                # full default grid
//	lsra-conform -seeds 5 -fail-fast
//	lsra-conform -allocators binpack,coloring -machines x86-8,tiny:4,3
//	lsra-conform -profiles call-heavy,high-pressure -cells
//
// Divergent cells are minimized (the generator's statement budget is
// halved while the divergence reproduces) and reported as the
// (allocator, machine, profile, seed, min_stmts) tuple that reproduces
// them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/alloc"
	"repro/internal/conform"
	"repro/internal/progs"
	"repro/internal/target"
)

func main() {
	var (
		allocators = flag.String("allocators", "", "comma-separated allocator names (default: every registered allocator)")
		machines   = flag.String("machines", "", "comma-separated machine names: presets or tiny:<ints>,<floats> (default: every preset)")
		profiles   = flag.String("profiles", "", "comma-separated generator profiles (default: all)")
		seeds      = flag.String("seeds", "3", "seed count N (seeds 1..N), or an explicit comma-separated seed list")
		cells      = flag.Bool("cells", false, "include every per-cell result in the report, not just divergences")
		failFast   = flag.Bool("fail-fast", false, "stop scheduling cells after the first divergence")
		noShrink   = flag.Bool("no-shrink", false, "skip minimizing divergent cells")
		jobs       = flag.Int("jobs", 0, "parallel workers (0 = all CPUs)")
		maxSteps   = flag.Int64("max-steps", 0, "VM fuel per execution (0 = harness default)")
		list       = flag.Bool("list", false, "print the grid axes and exit")
		quality    = flag.Bool("quality", false, "run the quality grid instead: spill traffic per allocator vs the oracle optimum, with pair envelopes enforced")
	)
	flag.Parse()

	if *quality {
		runQuality(*allocators, *machines, *profiles, *seeds, *cells, *failFast, *noShrink, *jobs, *maxSteps, *list)
		return
	}

	g := conform.Grid{
		Allocators: splitOrDefault(*allocators, alloc.Names()),
		Machines:   splitMachines(*machines),
		Profiles:   splitOrDefault(*profiles, progs.Profiles()),
	}
	var err error
	if g.Seeds, err = parseSeeds(*seeds); err != nil {
		die(err)
	}

	if *list {
		fmt.Printf("allocators: %s\n", strings.Join(g.Allocators, " "))
		fmt.Printf("machines:   %s\n", strings.Join(g.Machines, " "))
		fmt.Printf("profiles:   %s\n", strings.Join(g.Profiles, " "))
		fmt.Printf("seeds:      %v  (%d cells)\n", g.Seeds, len(g.Cells()))
		return
	}

	rep := conform.Run(g, conform.Options{
		FailFast:    *failFast,
		Parallelism: *jobs,
		MaxSteps:    *maxSteps,
		NoShrink:    *noShrink,
	}, *cells)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		die(err)
	}
	if len(rep.Divergences) > 0 {
		fmt.Fprintf(os.Stderr, "lsra-conform: %d of %d cells diverged (%d skipped)\n",
			len(rep.Divergences), rep.Cells, rep.Skipped)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lsra-conform: %d cells conform\n", rep.Cells)
}

func splitOrDefault(s string, def []string) []string {
	if s == "" {
		return def
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitMachines splits the -machines list while keeping the
// "tiny:<ints>,<floats>" form intact: a bare-integer token is glued
// back onto a preceding "tiny:<n>" token, so
// "x86-8,tiny:4,3" → [x86-8 tiny:4,3].
func splitMachines(s string) []string {
	if s == "" {
		return target.PresetNames()
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if n := len(out); n > 0 && isUint(p) && strings.HasPrefix(out[n-1], "tiny:") && isUint(out[n-1][len("tiny:"):]) {
			out[n-1] += "," + p
			continue
		}
		out = append(out, p)
	}
	return out
}

func isUint(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// parseSeeds accepts either a count ("5" → seeds 1..5) or an explicit
// list ("7,19,23").
func parseSeeds(s string) ([]int64, error) {
	if !strings.Contains(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -seeds %q (want a count or a comma-separated list)", s)
		}
		seeds := make([]int64, n)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}
		return seeds, nil
	}
	var seeds []int64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q in -seeds", p)
		}
		seeds = append(seeds, v)
	}
	return seeds, nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "lsra-conform:", err)
	os.Exit(1)
}
