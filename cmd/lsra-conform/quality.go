package main

// The -quality mode: instead of pass/fail semantics, measure each
// allocator's dynamic spill traffic point by point against the oracle's
// proven optimum, and enforce the configured pair envelopes
// (allocator-vs-allocator and allocator-vs-oracle bounds) as grid
// failures with shrink-minimized repros.
//
//	lsra-conform -quality
//	lsra-conform -quality -machines tiny,x86-8 -seeds 5
//	lsra-conform -quality -cells          # include every measured point

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/alloc"
	"repro/internal/conform"
	"repro/internal/progs"
)

func runQuality(allocators, machines, profiles, seeds string, cells, failFast, noShrink bool, jobs int, maxSteps int64, list bool) {
	g := conform.QualityGrid{
		Allocators: splitOrDefault(allocators, alloc.Names()),
		Machines:   splitMachines(machines),
		Profiles:   splitOrDefault(profiles, progs.Profiles()),
	}
	var err error
	if g.Seeds, err = parseSeeds(seeds); err != nil {
		die(err)
	}

	if list {
		fmt.Printf("allocators: %s\n", strings.Join(g.Allocators, " "))
		fmt.Printf("machines:   %s\n", strings.Join(g.Machines, " "))
		fmt.Printf("profiles:   %s\n", strings.Join(g.Profiles, " "))
		fmt.Printf("seeds:      %v  (%d points)\n", g.Seeds, len(g.Points()))
		for _, e := range conform.DefaultEnvelopes() {
			fmt.Printf("envelope:   %s\n", e)
		}
		return
	}

	rep := conform.RunQuality(g, conform.QualityOptions{
		Options: conform.Options{
			FailFast:    failFast,
			Parallelism: jobs,
			MaxSteps:    maxSteps,
			NoShrink:    noShrink,
		},
	}, cells)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		die(err)
	}
	if len(rep.Errors) > 0 || len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "lsra-conform: quality: %d errors, %d envelope violations over %d points (%d oracle-eligible)\n",
			len(rep.Errors), len(rep.Violations), rep.Points, rep.Eligible)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lsra-conform: quality: %d points clean (%d oracle-eligible)\n",
		rep.Points, rep.Eligible)
}
