// Command lsra allocates registers for one of the built-in workloads (or
// a seeded random program) and prints the allocated code, allocation
// statistics, and the dynamic execution profile.
//
//	lsra -prog wc -algo binpack -dump
//	lsra -random 7 -algo coloring -machine tiny:6,4
//	lsra -prog fpppp -algo twopass -scale 2
//	lsra -file prog.ir -algo binpack -dump
//
// Algorithms: binpack (second-chance), twopass, coloring, linearscan.
// -file reads the textual IR form that cmd/irgen emits (see
// internal/ir.ParseProgram for the grammar).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	regalloc "repro"
	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/target"
)

func main() {
	var (
		progName = flag.String("prog", "", "built-in workload (alvinn doduc eqntott espresso fpppp li tomcatv compress m88ksim sort wc)")
		file     = flag.String("file", "", "read a textual IR program from this file instead of -prog")
		random   = flag.Int64("random", -1, "generate a random program with this seed instead of -prog")
		algo     = flag.String("algo", "binpack", "binpack | twopass | coloring | linearscan")
		machine  = flag.String("machine", "alpha", "alpha | tiny:<ints>,<floats>")
		scale    = flag.Int("scale", 1, "workload scale")
		dump     = flag.Bool("dump", false, "print the allocated code")
		run      = flag.Bool("run", true, "execute and report dynamic counts")
	)
	flag.Parse()

	mach, err := parseMachine(*machine)
	if err != nil {
		die(err)
	}

	var prog *regalloc.Program
	var input []byte
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			die(err)
		}
		prog, err = ir.ParseProgram(f, mach)
		f.Close()
		if err != nil {
			die(err)
		}
		if err := ir.ValidateProgram(prog, mach); err != nil {
			die(err)
		}
		input = []byte("file program input stream")
	case *random >= 0:
		prog = progs.Random(mach, progs.DefaultGen(*random))
		input = []byte("lsra random program input stream")
	case *progName != "":
		b := progs.Named(*progName)
		if b == nil {
			die(fmt.Errorf("unknown workload %q", *progName))
		}
		prog = b.Build(mach, *scale)
		if b.Input != nil {
			input = b.Input(*scale)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	opts := regalloc.DefaultOptions()
	switch *algo {
	case "binpack":
		opts.Algorithm = regalloc.SecondChance
	case "twopass":
		opts.Algorithm = regalloc.TwoPass
	case "coloring":
		opts.Algorithm = regalloc.Coloring
	case "linearscan":
		opts.Algorithm = regalloc.LinearScan
	default:
		die(fmt.Errorf("unknown algorithm %q", *algo))
	}

	allocated, results, err := regalloc.AllocateProgram(prog, mach, opts)
	if err != nil {
		die(err)
	}

	fmt.Printf("allocator: %v on %s\n", opts.Algorithm, mach.Name)
	for i, p := range prog.Procs {
		st := results[i].Stats
		fmt.Printf("proc %-12s candidates=%-5d spilled=%-4d callee-saved=%-2d core-time=%v\n",
			p.Name, st.Candidates, st.SpilledTemps, st.UsedCalleeSaved, st.AllocTime)
		fmt.Printf("  inserted:")
		for tag := ir.Tag(1); int(tag) < ir.NumTags; tag++ {
			if n := st.Inserted[tag]; n > 0 {
				fmt.Printf(" %s=%d", tag, n)
			}
		}
		fmt.Println()
	}
	if *dump {
		for _, p := range allocated.Procs {
			fmt.Println()
			fmt.Print(regalloc.DumpProc(p, mach))
		}
	}
	if *run {
		ref, err := regalloc.Execute(prog, mach, input)
		if err != nil {
			die(err)
		}
		out, err := regalloc.ExecuteParanoid(allocated, mach, input)
		if err != nil {
			die(err)
		}
		fmt.Printf("\ndynamic: %d instructions, %d cycles, %d spill ops (%.3f%%), %d save/restore\n",
			out.Counters.Total, out.Counters.Cycles, out.Counters.SpillOverhead(),
			100*float64(out.Counters.SpillOverhead())/float64(out.Counters.Total),
			out.Counters.SaveRestoreOverhead())
		if string(ref.Output) != string(out.Output) || ref.RetValue != out.RetValue {
			die(fmt.Errorf("MISMATCH: allocated output differs from reference"))
		}
		fmt.Printf("output matches reference (%d bytes, ret %d)\n", len(out.Output), out.RetValue)
	}
}

func parseMachine(s string) (*regalloc.Machine, error) {
	if s == "alpha" {
		return regalloc.Alpha(), nil
	}
	if rest, ok := strings.CutPrefix(s, "tiny:"); ok {
		var ni, nf int
		if _, err := fmt.Sscanf(rest, "%d,%d", &ni, &nf); err != nil {
			return nil, fmt.Errorf("bad machine %q (want tiny:<ints>,<floats>)", s)
		}
		return target.Tiny(ni, nf), nil
	}
	return nil, fmt.Errorf("unknown machine %q", s)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "lsra:", err)
	os.Exit(1)
}
