// Command lsra allocates registers for one of the built-in workloads (or
// a seeded random program) and prints the allocated code, allocation
// statistics, and the dynamic execution profile.
//
//	lsra -prog wc -algo binpack -dump
//	lsra -random 7 -algo coloring -machine tiny:6,4
//	lsra -prog fpppp -algo twopass -scale 2
//	lsra -file prog.ir -algo binpack -dump
//
// -algo accepts any registered allocator name (run with -algo help to
// list them); the built-ins are binpack (second-chance), twopass,
// coloring and linearscan. -file reads the textual IR form that
// cmd/irgen emits (see internal/ir.ParseProgram for the grammar).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	regalloc "repro"
	"repro/internal/ir"
	"repro/internal/progs"
)

func main() {
	var (
		progName = flag.String("prog", "", "built-in workload (alvinn doduc eqntott espresso fpppp li tomcatv compress m88ksim sort wc)")
		file     = flag.String("file", "", "read a textual IR program from this file instead of -prog")
		random   = flag.Int64("random", -1, "generate a random program with this seed instead of -prog")
		algo     = flag.String("algo", "binpack", "allocator name ('help' lists the registry)")
		machine  = flag.String("machine", "alpha", "alpha | tiny:<ints>,<floats>")
		scale    = flag.Int("scale", 1, "workload scale")
		dump     = flag.Bool("dump", false, "print the allocated code")
		run      = flag.Bool("run", true, "execute and report dynamic counts")
		jobs     = flag.Int("jobs", 0, "parallel allocation workers (0 = all CPUs)")
	)
	flag.Parse()

	if *algo == "help" {
		fmt.Println("registered allocators:", strings.Join(regalloc.Algorithms(), " "))
		return
	}

	mach, err := regalloc.ParseMachine(*machine)
	if err != nil {
		die(err)
	}

	var prog *regalloc.Program
	var input []byte
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			die(err)
		}
		prog, err = ir.ParseProgram(f, mach)
		f.Close()
		if err != nil {
			die(err)
		}
		if err := ir.ValidateProgram(prog, mach); err != nil {
			die(err)
		}
		input = []byte("file program input stream")
	case *random >= 0:
		prog = progs.Random(mach, progs.DefaultGen(*random))
		input = []byte("lsra random program input stream")
	case *progName != "":
		b := progs.Named(*progName)
		if b == nil {
			die(fmt.Errorf("unknown workload %q", *progName))
		}
		prog = b.Build(mach, *scale)
		if b.Input != nil {
			input = b.Input(*scale)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	eng, err := regalloc.New(mach,
		regalloc.WithAlgorithm(*algo),
		regalloc.WithParallelism(*jobs))
	if err != nil {
		die(err)
	}

	allocated, report, err := eng.AllocateProgram(context.Background(), prog)
	if err != nil {
		die(err)
	}

	fmt.Printf("allocator: %s on %s (%d workers, %v wall)\n",
		eng.Algorithm(), mach.Name, report.Parallelism, report.WallTime.Round(0))
	for _, pr := range report.Procs {
		st := pr.Stats
		fmt.Printf("proc %-12s candidates=%-5d spilled=%-4d callee-saved=%-2d core-time=%v\n",
			pr.Proc, st.Candidates, st.SpilledTemps, st.UsedCalleeSaved, st.AllocTime)
		fmt.Printf("  inserted:")
		for tag := ir.Tag(1); int(tag) < ir.NumTags; tag++ {
			if n := st.Inserted[tag]; n > 0 {
				fmt.Printf(" %s=%d", tag, n)
			}
		}
		fmt.Println()
	}
	if *dump {
		for _, p := range allocated.Procs {
			fmt.Println()
			fmt.Print(regalloc.DumpProc(p, mach))
		}
	}
	if *run {
		ref, err := regalloc.Execute(prog, mach, input)
		if err != nil {
			die(err)
		}
		out, err := regalloc.ExecuteParanoid(allocated, mach, input)
		if err != nil {
			die(err)
		}
		fmt.Printf("\ndynamic: %d instructions, %d cycles, %d spill ops (%.3f%%), %d save/restore\n",
			out.Counters.Total, out.Counters.Cycles, out.Counters.SpillOverhead(),
			100*float64(out.Counters.SpillOverhead())/float64(out.Counters.Total),
			out.Counters.SaveRestoreOverhead())
		if string(ref.Output) != string(out.Output) || ref.RetValue != out.RetValue {
			die(fmt.Errorf("MISMATCH: allocated output differs from reference"))
		}
		fmt.Printf("output matches reference (%d bytes, ret %d)\n", len(out.Output), out.RetValue)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "lsra:", err)
	os.Exit(1)
}
