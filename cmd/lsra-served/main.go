// Command lsra-served runs the allocation service: a long-lived HTTP/JSON
// daemon over the regalloc Engine with a sharded content-addressed result
// cache, bounded admission control (429 + Retry-After under overload), a
// /metrics endpoint, and graceful drain on SIGTERM/SIGINT. With -persist
// the cache gains a disk-backed tier that survives restarts, admitting
// entries cost-aware (allocation time vs. serialization time).
//
//	lsra-served -addr :7421 -cache 4096 -workers 8 -queue 32
//	lsra-served -addr :7421 -persist /var/cache/lsra -persist-entries 65536
//
// Endpoints: POST /allocate, GET /metrics, GET /healthz, GET /config,
// plus the cluster peering pair GET /cache/export and POST /cache/seed —
// see internal/serve for the request and response schemas,
// cmd/lsra-client for a scripting client, and cmd/lsra-cluster for
// running a consistent-hash sharded fleet of these daemons.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":7421", "listen address")
		algos        = flag.String("algos", "", "comma-separated allocators to serve (empty = all registered)")
		cacheEntries = flag.Int("cache", 0, "result cache capacity in entries (0 = default, -1 = disable)")
		cacheShards  = flag.Int("cache-shards", 0, "result cache lock shards (0 = default)")
		workers      = flag.Int("workers", 0, "concurrent allocation requests (0 = all CPUs)")
		queue        = flag.Int("queue", 0, "admission queue depth beyond the workers (0 = 4x workers)")
		jobs         = flag.Int("jobs", 1, "per-request engine parallelism (procedures per program)")
		maxEngines   = flag.Int("max-engines", 0, "bound on distinct machine×algorithm engines kept warm (0 = default)")
		verify       = flag.Bool("verify", true, "run the symbolic verifier on every allocation")
		phases       = flag.Bool("phases", false, "sample per-phase heap allocations (engine WithPhaseProfile)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight requests on shutdown")

		persist        = flag.String("persist", "", "directory for the disk-backed cache tier (empty = memory only)")
		persistEntries = flag.Int("persist-entries", 0, "disk tier capacity in entries (0 = default)")
		persistCost    = flag.Float64("persist-cost-factor", 0, "admission bar: allocation must cost this multiple of serialization (0 = default, negative admits all)")
		persistBinary  = flag.Bool("persist-binary", false, "store disk-tier entries in the binary wire form (reads sniff per entry)")
	)
	flag.Parse()

	cfg := serve.Config{
		CacheEntries: *cacheEntries,
		CacheShards:  *cacheShards,
		Workers:      *workers,
		QueueDepth:   *queue,
		Parallelism:  *jobs,
		Verify:       *verify,
		PhaseProfile: *phases,
		MaxEngines:   *maxEngines,

		PersistDir:        *persist,
		PersistEntries:    *persistEntries,
		PersistCostFactor: *persistCost,
		PersistBinary:     *persistBinary,
	}
	if *algos != "" {
		cfg.Algorithms = strings.Split(*algos, ",")
	}
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsra-served:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(*addr) }()
	log.Printf("lsra-served: listening on %s", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("lsra-served: %v", err)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("lsra-served: signal received, draining (timeout %v)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Shutdown(dctx); err != nil {
			log.Fatalf("lsra-served: drain: %v", err)
		}
		log.Printf("lsra-served: drained cleanly")
	}
}
