// Command lsra-cluster runs a consistent-hash sharded fleet of
// allocation-service nodes in one process: N lsra-served-equivalent
// daemons on consecutive ports, a replication timer that mirrors each
// node's hottest cache entries onto its ring successor (so node loss
// fails over warm), and a small admin endpoint publishing the topology
// that cluster-aware clients (cmd/lsra-client -addr with a node table)
// route against.
//
//	lsra-cluster -nodes 3 -base 127.0.0.1:7431 -admin :7430
//	lsra-cluster -nodes 3 -persist /var/cache/lsra -replicate 15s
//
// Admin endpoints: GET /topology (node names, URLs, and replication
// successors), GET /healthz. Per-node endpoints are the full
// internal/serve surface (POST /allocate, GET /metrics, ...). With
// -persist each node gets its own disk tier under <dir>/node-<i>.
// SIGTERM/SIGINT drains every node: in-flight requests finish and each
// node's hot entries are pushed to its successor before it stops.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	var (
		nodes        = flag.Int("nodes", 3, "node count")
		base         = flag.String("base", "127.0.0.1:7431", "first node's listen address; later nodes take consecutive ports")
		admin        = flag.String("admin", ":7430", "admin listen address (/topology, /healthz); empty disables")
		cacheEntries = flag.Int("cache", 0, "per-node result cache capacity (0 = default, -1 = disable)")
		workers      = flag.Int("workers", 0, "per-node concurrent allocation requests (0 = all CPUs)")
		queue        = flag.Int("queue", 0, "per-node admission queue depth (0 = 4x workers)")
		verify       = flag.Bool("verify", true, "run the symbolic verifier on every allocation")
		persist      = flag.String("persist", "", "root directory for per-node disk cache tiers (empty = memory only)")
		persistCost  = flag.Float64("persist-cost-factor", 0, "disk tier admission bar (0 = default, negative admits all)")
		hotEntries   = flag.Int("hot", 64, "hottest entries replicated per node per sweep")
		replicate    = flag.Duration("replicate", 30*time.Second, "replication sweep interval; 0 disables")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain the fleet on shutdown")
	)
	flag.Parse()
	if *nodes < 1 {
		fmt.Fprintln(os.Stderr, "lsra-cluster: -nodes must be at least 1")
		os.Exit(1)
	}
	host, portStr, err := net.SplitHostPort(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsra-cluster: bad -base:", err)
		os.Exit(1)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsra-cluster: bad -base port:", err)
		os.Exit(1)
	}

	c := cluster.NewCluster(cluster.Options{HotEntries: *hotEntries})
	for i := 0; i < *nodes; i++ {
		cfg := cluster.NodeConfig{
			Name: "node-" + strconv.Itoa(i),
			Addr: net.JoinHostPort(host, strconv.Itoa(port+i)),
			Serve: serve.Config{
				CacheEntries:      *cacheEntries,
				Workers:           *workers,
				QueueDepth:        *queue,
				Verify:            *verify,
				PersistCostFactor: *persistCost,
			},
		}
		if *persist != "" {
			cfg.Serve.PersistDir = filepath.Join(*persist, cfg.Name)
		}
		n, err := c.Join(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsra-cluster:", err)
			os.Exit(1)
		}
		log.Printf("lsra-cluster: %s listening on %s", n.Name, n.URL)
	}
	log.Printf("lsra-cluster: node table: %s", strings.Join(c.URLs(), ","))

	var adminSrv *http.Server
	if *admin != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/topology", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(c.Topology())
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		adminSrv = &http.Server{Addr: *admin, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("lsra-cluster: admin: %v", err)
			}
		}()
		log.Printf("lsra-cluster: admin on %s", *admin)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *replicate > 0 && *nodes > 1 {
		go func() {
			t := time.NewTicker(*replicate)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					n, err := c.Replicate()
					if err != nil {
						log.Printf("lsra-cluster: replicate: %v", err)
					} else if n > 0 {
						log.Printf("lsra-cluster: replicated %d hot entries", n)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	<-ctx.Done()
	stop() // a second signal kills immediately
	log.Printf("lsra-cluster: signal received, draining %d nodes (timeout %v)", *nodes, *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Push every node's working set forward before stopping, so a
	// rolling restart comes back warm even without -persist.
	if *nodes > 1 {
		if _, err := c.Replicate(); err != nil {
			log.Printf("lsra-cluster: final replicate: %v", err)
		}
	}
	if adminSrv != nil {
		_ = adminSrv.Shutdown(dctx)
	}
	if err := c.Shutdown(dctx); err != nil {
		log.Fatalf("lsra-cluster: drain: %v", err)
	}
	log.Printf("lsra-cluster: drained cleanly")
}
