// Command lsra-perfd is the continuous perf observatory daemon: it owns
// an append-only JSONL store of benchmark runs (internal/perfdb),
// ingests `lsra-bench -all -json` documents over HTTP or from files, and
// serves the time-series API plus a self-contained HTML dashboard.
//
//	lsra-perfd                                   serve ./perfdb.jsonl on :8317
//	lsra-perfd -backfill BENCH_*.json            seed the store from committed
//	                                             snapshots, then serve
//	lsra-perfd -once -backfill a.json b.json \
//	           -render dash.html                 CI mode: ingest, render, exit
//
// Endpoints: POST /ingest, GET /series[?metric=NAME], GET /commits,
// GET /regressions[?window=&alpha=&threshold=], GET /healthz, and GET /
// (the dashboard).
//
// Backfilled files that predate the observatory (schema v0: no `meta`
// stamp) get their identity from git — the commit that last touched the
// file and its commit date — falling back to file mtime on trees without
// git, so the committed BENCH_2.json/BENCH_5.json seeds land on the time
// axis where they historically belong and the dashboard is never empty
// on a fresh clone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/perfdb"
)

func main() {
	var (
		addr     = flag.String("addr", ":8317", "listen `address`")
		storeP   = flag.String("store", "perfdb.jsonl", "append-only store `file` (JSONL, created if missing)")
		backfill = flag.Bool("backfill", false, "ingest the positional bench-JSON files before serving")
		once     = flag.Bool("once", false, "exit after -backfill/-render instead of serving")
		render   = flag.String("render", "", "render the dashboard HTML to `file` and continue")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "lsra-perfd:", err)
		os.Exit(1)
	}

	store, repaired, err := perfdb.Open(*storeP)
	if err != nil {
		die(err)
	}
	if repaired > 0 {
		fmt.Fprintf(os.Stderr, "lsra-perfd: %s: repaired torn tail record\n", *storeP)
	}
	fmt.Fprintf(os.Stderr, "lsra-perfd: store %s: %d records\n", *storeP, store.Len())

	if *backfill {
		if flag.NArg() == 0 {
			die(fmt.Errorf("-backfill needs bench JSON files as arguments"))
		}
		for _, path := range flag.Args() {
			if err := backfillFile(store, path); err != nil {
				die(err)
			}
		}
	} else if flag.NArg() > 0 {
		die(fmt.Errorf("positional arguments need -backfill"))
	}

	srv := perfdb.NewServer(store)
	if *render != "" {
		f, err := os.Create(*render)
		if err != nil {
			die(err)
		}
		srv.RenderDashboard(f)
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "lsra-perfd: dashboard rendered to %s\n", *render)
	}
	if *once {
		return
	}

	fmt.Fprintf(os.Stderr, "lsra-perfd: listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		die(err)
	}
}

// backfillFile ingests one bench JSON file, synthesizing v0 identity
// from git (or mtime) when the document carries no meta stamp. The
// fallback (and its mtime warning) is computed only for unstamped
// documents — a stamped file carries its own provenance.
func backfillFile(store *perfdb.Store, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var probe struct {
		Meta *perfdb.Meta `json:"meta"`
	}
	fallback := perfdb.Meta{}
	if json.Unmarshal(data, &probe) != nil || probe.Meta == nil {
		fallback = fallbackMeta(path)
	}
	rec, err := perfdb.Extract(data, fallback)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	rec.Source = filepath.Base(path)
	added, err := store.Append(rec)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	verdict := "already present"
	if added {
		verdict = fmt.Sprintf("%d series", len(rec.Series))
	}
	fmt.Fprintf(os.Stderr, "lsra-perfd: backfill %s (schema v%d, %s, %s): %s\n",
		path, rec.SchemaVersion, orNone(rec.Commit), rec.Time.Format(time.RFC3339), verdict)
	return nil
}

// fallbackMeta builds the v0 identity for an unstamped file: the commit
// that last touched it and that commit's UTC date, from git; file mtime
// only as a last resort (exported tarballs, untracked files), and
// loudly — an mtime is whenever the file was last copied, not when the
// benchmark ran, so records stamped with it can land anywhere on the
// timeline. Note that `git log -- <untracked>` exits 0 with empty
// output, so the empty-output case must fall through here too rather
// than being mistaken for provenance.
func fallbackMeta(path string) perfdb.Meta {
	meta := perfdb.Meta{}
	out, err := exec.Command("git", "-C", filepath.Dir(absOrSelf(path)),
		"log", "-1", "--format=%H %cI", "--", filepath.Base(path)).Output()
	if err == nil {
		if fields := strings.Fields(strings.TrimSpace(string(out))); len(fields) == 2 {
			if t, terr := time.Parse(time.RFC3339, fields[1]); terr == nil {
				meta.Commit = fields[0]
				meta.Time = t.UTC()
				return meta
			}
		}
	}
	if st, serr := os.Stat(path); serr == nil {
		meta.Time = st.ModTime().UTC()
		fmt.Fprintf(os.Stderr,
			"lsra-perfd: WARNING: %s is not git-tracked (or git is unavailable); falling back to file mtime %s — the record's timeline position is unreliable, commit the file or stamp it (schema v1) for real provenance\n",
			path, meta.Time.Format(time.RFC3339))
	} else {
		meta.Time = time.Now().UTC()
		fmt.Fprintf(os.Stderr,
			"lsra-perfd: WARNING: %s has neither git history nor a readable mtime (%v); stamping with the current time\n",
			path, serr)
	}
	return meta
}

func absOrSelf(path string) string {
	if abs, err := filepath.Abs(path); err == nil {
		return abs
	}
	return path
}

func orNone(commit string) string {
	if commit == "" {
		return "no commit"
	}
	if len(commit) > 10 {
		return commit[:10]
	}
	return commit
}
