// Command lsra-bench regenerates the tables and figures of the paper's
// evaluation section on the Alpha-like simulated machine:
//
//	lsra-bench -table1     dynamic instruction counts & simulated cycles
//	lsra-bench -table2     spill code as a percentage of dynamic instructions
//	lsra-bench -figure3    spill-code composition, normalized to binpacking
//	lsra-bench -table3     allocation times vs. candidate counts
//	lsra-bench -ablation   §3.1 two-pass comparison and feature ablations
//	lsra-bench -alloc      per-benchmark engine allocation reports
//	lsra-bench -serve      allocation-service steady state (cold vs. warm cache)
//	lsra-bench -all        everything
//
// Use -scale to shrink or grow the workloads (1.0 reproduces the default
// experiment size). With -json, every selected section is emitted as one
// machine-readable JSON object on stdout (the shape BENCH_*.json files
// track; the CI bench job uploads it as an artifact); -alloc sections
// carry the engine's aggregate Report including its per-phase PhaseStats
// breakdown and batch heap counters. -phases additionally samples heap
// allocations at every phase boundary (engine WithPhaseProfile).
//
// Every -json document is stamped with a `meta` header (schema_version,
// commit SHA — best-effort `git rev-parse HEAD`, overridable with
// -commit — UTC timestamp, go version, host fingerprint) so the perf
// observatory (internal/perfdb, cmd/lsra-perfd) can ingest it as one
// time-series record, and with resource attribution: getrusage max
// RSS + user/system CPU and runtime/metrics GC counters, process-wide
// in `resources` and per benchmark on each -alloc report.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"time"

	regalloc "repro"
	"repro/internal/experiments"
	"repro/internal/perfdb"
	"repro/internal/progs"
	"repro/internal/serve"
)

// benchOutput is the -json document: one field per selected section.
type benchOutput struct {
	// Meta stamps the run for the perf observatory: schema version,
	// commit, UTC time, go version, host fingerprint.
	Meta      *perfdb.Meta              `json:"meta,omitempty"`
	Table1    []experiments.Table1Row   `json:"table1,omitempty"`
	Table2    []experiments.Table2Row   `json:"table2,omitempty"`
	Figure3   []experiments.Figure3Row  `json:"figure3,omitempty"`
	Table3    []experiments.Table3Row   `json:"table3,omitempty"`
	Ablations []experiments.AblationRow `json:"ablations,omitempty"`
	// Sweep is the registers-vs-quality curve: one benchmark across the
	// machine presets and a tiny ladder under every allocator.
	Sweep []experiments.SweepPoint `json:"sweep,omitempty"`
	// Allocation holds one engine Report per suite benchmark.
	Allocation []allocReport `json:"allocation,omitempty"`
	// Serve is the allocation-service steady-state measurement: a fixed
	// workload replayed over HTTP against an in-process lsra-served,
	// cold pass (cache misses) vs. warm passes (cache hits).
	Serve *serveBench `json:"serve,omitempty"`
	// Cluster is the sharded-service measurement: consistent-hash
	// routing over three nodes, the hedged-request tail-latency duel,
	// cost-aware disk admission, and the restart-warm hit rate.
	Cluster *clusterBench `json:"cluster,omitempty"`
	// Corpus is the binary-codec throughput ladder: mmap'd corpus
	// decode rates per rung, decode+allocate rate, and the cold
	// text-vs-binary serve duel. Not part of -all: rung sizes make its
	// runtime an explicit choice.
	Corpus *corpusBench `json:"corpus,omitempty"`
	// Quality is the quality frontier: per-allocator spill-traffic gap
	// vs the oracle optimum over the default quality grid, with pair
	// envelopes enforced.
	Quality *qualityBench `json:"quality,omitempty"`
	// Resources is the process-wide resource delta over all selected
	// sections: getrusage (max RSS, user/system CPU) plus GC counters.
	Resources *perfdb.Resources `json:"resources,omitempty"`
}

// serveBench is the -serve section: service throughput with a cold and
// a warm content-addressed cache.
type serveBench struct {
	Machine   string `json:"machine"`
	Algorithm string `json:"algorithm"`
	// Programs is the workload size; Rounds the number of warm replays
	// measured.
	Programs int `json:"programs"`
	Rounds   int `json:"rounds"`
	// ColdNsPerProgram is the per-program wall time of the miss pass
	// (full pipeline); WarmNsPerProgram of the steady-state hit passes
	// (cache lookup + serialization only).
	ColdNsPerProgram int64 `json:"cold_ns_per_program"`
	WarmNsPerProgram int64 `json:"warm_ns_per_program"`
	// Speedup is cold/warm: what the content-addressed cache buys on
	// repeated programs.
	Speedup      float64 `json:"speedup"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// runServeBench measures the service steady state: one cold pass over
// the workload (every request allocates), then rounds warm passes
// (every request hits the cache), all over real HTTP.
func runServeBench(machine string, rounds int) (*serveBench, error) {
	s, err := serve.New(serve.Config{Workers: 2, QueueDepth: 64, Verify: false})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	mach, err := regalloc.ParseMachine(machine)
	if err != nil {
		return nil, err
	}
	jobs, err := experiments.Workload(mach, []string{"default", "call-heavy", "straightline"}, 100, 2)
	if err != nil {
		return nil, err
	}
	client := ts.Client()
	replay := func() (time.Duration, error) {
		start := time.Now()
		for _, job := range jobs {
			body, err := json.Marshal(&serve.AllocateRequest{Machine: machine, Program: job.Text})
			if err != nil {
				return 0, err
			}
			resp, err := client.Post(ts.URL+"/allocate", "application/json", bytes.NewReader(body))
			if err != nil {
				return 0, err
			}
			_, cerr := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if cerr != nil {
				return 0, cerr
			}
			if resp.StatusCode != 200 {
				return 0, fmt.Errorf("serve bench: status %d", resp.StatusCode)
			}
		}
		return time.Since(start), nil
	}
	cold, err := replay()
	if err != nil {
		return nil, err
	}
	after := s.Cache().Stats() // cold-pass misses end here
	var warm time.Duration
	for r := 0; r < rounds; r++ {
		d, err := replay()
		if err != nil {
			return nil, err
		}
		warm += d
	}
	// Hit rate of the warm passes alone — the steady state the section
	// reports — not the cache's lifetime rate, which would dilute with
	// the deliberate cold misses.
	final := s.Cache().Stats()
	warmHits := final.Hits - after.Hits
	warmTotal := warmHits + (final.Misses - after.Misses)
	n := int64(len(jobs))
	sb := &serveBench{
		Machine:          machine,
		Algorithm:        "binpack",
		Programs:         len(jobs),
		Rounds:           rounds,
		ColdNsPerProgram: cold.Nanoseconds() / n,
		WarmNsPerProgram: warm.Nanoseconds() / (n * int64(rounds)),
	}
	if warmTotal > 0 {
		sb.CacheHitRate = float64(warmHits) / float64(warmTotal)
	}
	if sb.WarmNsPerProgram > 0 {
		sb.Speedup = float64(sb.ColdNsPerProgram) / float64(sb.WarmNsPerProgram)
	}
	return sb, nil
}

// allocReport pairs a benchmark name with its engine Report and the
// resource delta its run cost, so a stored point attributes cost to a
// phase (PhaseStats) and a resource (rusage/GC) at once.
type allocReport struct {
	Benchmark string            `json:"benchmark"`
	Report    *regalloc.Report  `json:"report"`
	Resources *perfdb.Resources `json:"resources,omitempty"`
}

// resolveCommit returns the commit SHA to stamp: the -commit override
// when given, else best-effort `git rev-parse HEAD` (empty outside a
// git tree — the stamp is still valid, just anonymous).
func resolveCommit(override string) string {
	if override != "" {
		return override
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	var (
		t1          = flag.Bool("table1", false, "regenerate Table 1")
		t2          = flag.Bool("table2", false, "regenerate Table 2")
		f3          = flag.Bool("figure3", false, "regenerate Figure 3 data")
		t3          = flag.Bool("table3", false, "regenerate Table 3")
		abl         = flag.Bool("ablation", false, "run the two-pass and feature ablations")
		sweep       = flag.Bool("sweep", false, "registers-vs-quality sweep across machine shapes")
		sweepB      = flag.String("sweep-bench", "eqntott", "benchmark the -sweep runs")
		srv         = flag.Bool("serve", false, "allocation-service steady-state benchmark (cold vs. warm cache)")
		clu         = flag.Bool("cluster", false, "sharded-cluster benchmark (routing, hedging, persistent tier)")
		corpusF     = flag.Bool("corpus", false, "binary-codec throughput ladder over an mmap'd corpus (excluded from -all)")
		corpusFile  = flag.String("corpus-file", "", "existing corpus file, shard-set base, or glob (empty = generate a temporary set)")
		corpusprogs = flag.Int("corpus-programs", 20000, "distinct programs in the generated corpus")
		corpusShard = flag.Int("corpus-shards", 4, "shard-set members when generating a corpus")
		corpusRungs = flag.String("corpus-rungs", "100000,1000000,10000000,100000000", "comma-separated ladder rung sizes")
		corpusWork  = flag.Int("corpus-workers", 0, "ladder decode workers (0 = GOMAXPROCS)")
		pipeWork    = flag.Int("pipeline-workers", 0, "pipeline-duel allocator workers (0 = GOMAXPROCS)")
		decodeAhead = flag.Int("decode-ahead", 0, "pipeline-duel decoded programs in flight (0 = pipeline default)")
		qualityF    = flag.Bool("quality", false, "quality frontier: spill-traffic gap vs the oracle optimum, envelopes enforced")
		allocF      = flag.Bool("alloc", false, "per-benchmark engine allocation reports")
		all         = flag.Bool("all", false, "run everything")
		scale       = flag.Float64("scale", 1.0, "workload scale multiplier")
		jsonOut     = flag.Bool("json", false, "emit the selected sections as JSON")
		algo        = flag.String("algo", "binpack", "allocator for -alloc reports")
		jobs        = flag.Int("jobs", 0, "parallel workers for -alloc (0 = all CPUs)")
		phases      = flag.Bool("phases", false, "sample per-phase heap allocations in -alloc reports")
		commit      = flag.String("commit", "", "commit `sha` to stamp (default: git rev-parse HEAD)")
	)
	flag.Parse()
	if *all {
		*t1, *t2, *f3, *t3, *abl, *sweep, *srv, *clu, *allocF, *qualityF = true, true, true, true, true, true, true, true, true, true
	}
	if !*t1 && !*t2 && !*f3 && !*t3 && !*abl && !*sweep && !*srv && !*clu && !*allocF && !*corpusF && !*qualityF {
		flag.Usage()
		os.Exit(2)
	}
	mach := regalloc.Alpha()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "lsra-bench:", err)
		os.Exit(1)
	}

	var out benchOutput
	var err error
	out.Meta = perfdb.Stamp(resolveCommit(*commit))
	startRes := perfdb.ReadResources()
	if *t1 {
		if out.Table1, err = experiments.Table1(mach, *scale); err != nil {
			die(err)
		}
	}
	if *t2 {
		if out.Table2, err = experiments.Table2(mach, *scale); err != nil {
			die(err)
		}
	}
	if *f3 {
		if out.Figure3, err = experiments.Figure3(mach, *scale); err != nil {
			die(err)
		}
	}
	if *t3 {
		if out.Table3, err = experiments.Table3(mach); err != nil {
			die(err)
		}
	}
	if *abl {
		benches := []string{"wc", "eqntott", "li", "fpppp"}
		if out.Ablations, err = experiments.Ablations(mach, benches, *scale); err != nil {
			die(err)
		}
	}
	if *sweep {
		machines := experiments.SweepMachines()
		allocators := []string{"binpack", "twopass", "coloring", "linearscan"}
		if out.Sweep, err = experiments.RegisterSweep(machines, allocators, *sweepB, *scale); err != nil {
			die(err)
		}
	}
	if *srv {
		if out.Serve, err = runServeBench("x86-8", 3); err != nil {
			die(err)
		}
	}
	if *clu {
		if out.Cluster, err = runClusterBench("x86-8"); err != nil {
			die(err)
		}
	}
	if *corpusF {
		rungs, err := parseRungs(*corpusRungs)
		if err != nil {
			die(err)
		}
		if out.Corpus, err = runCorpusBench(corpusOpts{
			Path:            *corpusFile,
			Programs:        *corpusprogs,
			Shards:          *corpusShard,
			Rungs:           rungs,
			Workers:         *corpusWork,
			PipelineWorkers: *pipeWork,
			DecodeAhead:     *decodeAhead,
		}); err != nil {
			die(err)
		}
	}
	if *qualityF {
		if out.Quality, err = runQualityBench(*scale, *jobs); err != nil {
			die(err)
		}
	}
	if *allocF {
		jobsN := *jobs
		if *phases && jobsN != 1 {
			// Heap counters are process-global: exact per-phase alloc
			// attribution needs a single worker.
			if jobsN != 0 {
				fmt.Fprintf(os.Stderr, "lsra-bench: -phases forces -jobs 1 (was %d); wall times are serial\n", jobsN)
			}
			jobsN = 1
		}
		eng, err := regalloc.New(mach,
			regalloc.WithAlgorithm(*algo),
			regalloc.WithParallelism(jobsN),
			regalloc.WithPhaseProfile(*phases))
		if err != nil {
			die(err)
		}
		for _, b := range progs.Suite() {
			s := int(float64(b.DefaultScale) * *scale)
			if s < 1 {
				s = 1
			}
			prog := b.Build(mach, s)
			before := perfdb.ReadResources()
			_, rep, err := eng.AllocateProgram(context.Background(), prog)
			if err != nil {
				die(fmt.Errorf("%s: %w", b.Name, err))
			}
			delta := perfdb.ReadResources().Sub(before)
			out.Allocation = append(out.Allocation, allocReport{Benchmark: b.Name, Report: rep, Resources: &delta})
		}
	}
	endRes := perfdb.ReadResources().Sub(startRes)
	out.Resources = &endRes

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&out); err != nil {
			die(err)
		}
		return
	}
	printText(&out)
}

func printText(out *benchOutput) {
	if out.Table1 != nil {
		fmt.Println("Table 1: dynamic instruction counts and simulated cycles")
		fmt.Println("(ratio > 1 means poorer binpacking code, as in the paper)")
		fmt.Printf("%-10s %14s %14s %7s %14s %14s %7s\n",
			"benchmark", "binpack", "coloring", "ratio", "bp-cycles", "gc-cycles", "ratio")
		for _, r := range out.Table1 {
			fmt.Printf("%-10s %14d %14d %7.3f %14d %14d %7.3f\n",
				r.Benchmark, r.BinpackInstrs, r.ColoringInstrs, r.InstrRatio,
				r.BinpackCycles, r.ColoringCycles, r.CycleRatio)
		}
		fmt.Println()
	}

	if out.Table2 != nil {
		fmt.Println("Table 2: percentage of dynamic instructions that are spill code")
		fmt.Printf("%-10s %12s %12s\n", "benchmark", "binpack", "coloring")
		for _, r := range out.Table2 {
			fmt.Printf("%-10s %11.3f%% %11.3f%%\n", r.Benchmark, r.BinpackPct, r.ColoringPct)
		}
		fmt.Println()
	}

	if out.Figure3 != nil {
		fmt.Println("Figure 3: spill code composition (dynamic counts; 'norm' is")
		fmt.Println("the bar height: total spill normalized to binpacking's total)")
		fmt.Printf("%-12s %10s %10s %10s %10s %10s %10s %7s\n",
			"bench-scheme", "ev.load", "ev.store", "ev.move", "rs.load", "rs.store", "rs.move", "norm")
		for _, r := range out.Figure3 {
			fmt.Printf("%-12s %10d %10d %10d %10d %10d %10d %7.3f\n",
				r.Benchmark+"-"+r.Scheme,
				r.EvictLoads, r.EvictStores, r.EvictMoves,
				r.ResolveLoads, r.ResolveStores, r.ResolveMoves, r.Normalized)
		}
		fmt.Println()
	}

	if out.Table3 != nil {
		fmt.Println("Table 3: allocation-core time (best of five) vs. candidates")
		fmt.Printf("%-10s %12s %14s %14s %14s\n",
			"module", "candidates", "iedges", "coloring", "binpacking")
		for _, r := range out.Table3 {
			fmt.Printf("%-10s %12d %14d %14s %14s\n",
				r.Module, r.Candidates, r.InterferenceEdges, r.ColoringTime, r.BinpackTime)
		}
		fmt.Println()
	}

	if out.Ablations != nil {
		fmt.Println("Ablations (§3.1 two-pass, §2.5 move optimizations, §2.6 strict")
		fmt.Println("linearity); ratio is relative to the paper configuration")
		fmt.Printf("%-10s %-34s %14s %12s %7s\n", "benchmark", "variant", "instrs", "spill", "ratio")
		for _, r := range out.Ablations {
			fmt.Printf("%-10s %-34s %14d %12d %7.3f\n",
				r.Benchmark, r.Variant, r.Instrs, r.Spill, r.RatioToPaper)
		}
		fmt.Println()
	}

	if out.Sweep != nil {
		fmt.Println("Register sweep: dynamic overhead as the register file narrows")
		fmt.Println("(ratio is instrs relative to the same allocator on the widest machine)")
		fmt.Printf("%-12s %5s %5s  %-12s %12s %10s %8s %7s\n",
			"machine", "ints", "flts", "allocator", "instrs", "spill", "spill%", "ratio")
		for _, p := range out.Sweep {
			fmt.Printf("%-12s %5d %5d  %-12s %12d %10d %7.3f%% %7.3f\n",
				p.Machine, p.IntRegs, p.FloatRegs, p.Allocator, p.Instrs, p.Spill, p.SpillPct, p.RatioToWidest)
		}
		fmt.Println()
	}

	if out.Serve != nil {
		s := out.Serve
		fmt.Println("Serve: allocation-service steady state (in-process lsra-served over HTTP)")
		fmt.Printf("%-10s %-10s %9s %7s %14s %14s %8s %9s\n",
			"machine", "algorithm", "programs", "rounds", "cold-ns/prog", "warm-ns/prog", "speedup", "hit-rate")
		fmt.Printf("%-10s %-10s %9d %7d %14d %14d %7.1fx %8.3f\n",
			s.Machine, s.Algorithm, s.Programs, s.Rounds,
			s.ColdNsPerProgram, s.WarmNsPerProgram, s.Speedup, s.CacheHitRate)
		fmt.Println()
	}

	if out.Cluster != nil {
		cb := out.Cluster
		fmt.Println("Cluster: 3-node consistent-hash fleet (hot/cold stream, per-node disk tiers)")
		fmt.Printf("%-10s %6s %9s %14s %14s %9s %13s\n",
			"machine", "nodes", "requests", "cold-ns/req", "warm-ns/req", "hit-rate", "restart-warm")
		fmt.Printf("%-10s %6d %9d %14d %14d %8.3f %13.3f\n",
			cb.Machine, cb.Nodes, cb.Requests,
			cb.ColdNsPerRequest, cb.WarmNsPerRequest, cb.WarmHitRate, cb.RestartWarmHitRate)
		fmt.Printf("  persist admission (default bar): %d admitted, %d rejected as too cheap\n",
			cb.PersistAdmitted, cb.PersistRejectedCost)
		fmt.Printf("  binary wire form (warm hot set): json %v/req -> binary %v/req (%.2fx, %d binary posts, %d fallbacks)\n",
			time.Duration(cb.JSONNsPerRequest).Round(time.Microsecond),
			time.Duration(cb.BinaryNsPerRequest).Round(time.Microsecond),
			cb.BinarySpeedup, cb.BinaryRequests, cb.JSONFallbacks)
		fmt.Printf("  hedging vs one node stalled %v: p50 %v -> %v, p99 %v -> %v (%.1fx at p99, %d hedge wins)\n",
			time.Duration(cb.StallNs),
			time.Duration(cb.UnhedgedP50Ns).Round(time.Microsecond), time.Duration(cb.HedgedP50Ns).Round(time.Microsecond),
			time.Duration(cb.UnhedgedP99Ns).Round(time.Microsecond), time.Duration(cb.HedgedP99Ns).Round(time.Microsecond),
			cb.TailSpeedupP99, cb.HedgeWins)
		fmt.Println()
	}

	if out.Corpus != nil {
		cb := out.Corpus
		fmt.Println("Corpus: binary-codec throughput ladder (mmap'd corpus, zero-copy decode)")
		fmt.Printf("  corpus: %d distinct programs over %d shards, %.1f MiB (%.0f bytes/program), %d workers\n",
			cb.CorpusPrograms, cb.Shards, float64(cb.CorpusBytes)/(1<<20),
			float64(cb.CorpusBytes)/float64(max(cb.CorpusPrograms, 1)), cb.Workers)
		fmt.Printf("%12s %14s %16s %12s %12s\n",
			"programs", "elapsed", "programs/sec", "MB/sec", "allocs/prog")
		for _, rg := range cb.Rungs {
			fmt.Printf("%12d %14v %16.0f %12.1f %12.4f\n",
				rg.Programs, time.Duration(rg.ElapsedNs).Round(time.Millisecond),
				rg.ProgramsPerSec, rg.MBPerSec, rg.AllocsPerProgram)
		}
		if a := cb.Alloc; a != nil {
			fmt.Printf("  decode+allocate (%s, %s): %d programs, %d ns/program (%.0f programs/sec, decode share %.1f%%)\n",
				a.Machine, a.Algorithm, a.Programs, a.NsPerProgram, a.ProgramsPerSec, 100*a.DecodeShare)
		}
		if p := cb.Pipeline; p != nil {
			fmt.Printf("  pipeline duel (%s, %s, %d programs): lockstep %.0f programs/sec vs pipelined %.0f (%.2fx)\n",
				p.Machine, p.Algorithm, p.Programs,
				p.Lockstep.ProgramsPerSec, p.Pipelined.ProgramsPerSec, p.Speedup)
			fmt.Printf("    pipelined: %d decode + %d alloc workers, decode-ahead %d (batch %d); "+
				"utilization decode %.2f / alloc %.2f, ring occupancy %.1f, bottleneck: %s\n",
				p.Pipelined.DecodeWorkers, p.Pipelined.AllocWorkers,
				p.Pipelined.DecodeAhead, p.Pipelined.Batch,
				p.Pipelined.DecodeUtilization, p.Pipelined.AllocUtilization,
				p.Pipelined.AvgRingOccupancy, p.Bottleneck)
			fmt.Printf("    stalls: decode %v waiting on allocators, alloc %v waiting on decode\n",
				time.Duration(p.Pipelined.DecodeStallNs).Round(time.Millisecond),
				time.Duration(p.Pipelined.AllocStallNs).Round(time.Millisecond))
		}
		if d := cb.ServeDuel; d != nil {
			fmt.Printf("  serve cold duel (%s, %d programs): text %d ns/program vs binary %d ns/program (%.2fx)\n",
				d.Machine, d.Programs, d.ColdTextNsPerProgram, d.ColdBinaryNsPerProgram, d.Speedup)
		}
		fmt.Println()
	}

	if out.Quality != nil {
		printQuality(out.Quality)
	}

	if out.Allocation != nil {
		fmt.Println("Allocation: engine aggregate per benchmark (rss is the process")
		fmt.Println("high-water mark at that point; cpu/gc columns are per-run deltas)")
		fmt.Printf("%-12s %-12s %8s %12s %10s %12s %12s\n",
			"benchmark", "algorithm", "procs", "candidates", "spilled", "wall", "heap-allocs")
		for _, ar := range out.Allocation {
			rep := ar.Report
			fmt.Printf("%-12s %-12s %8d %12d %10d %12v %12d\n",
				ar.Benchmark, rep.Algorithm, len(rep.Procs),
				rep.Totals.Candidates, rep.Totals.SpilledTemps, rep.WallTime.Round(0),
				rep.HeapAllocs)
			if len(rep.PhaseStats) > 0 {
				fmt.Printf("    phases:")
				for _, ps := range rep.PhaseStats {
					if ps.Ns == 0 {
						continue
					}
					fmt.Printf(" %s %v (%.0f%%)", ps.Phase, time.Duration(ps.Ns).Round(time.Microsecond), 100*ps.Share)
					if ps.Allocs > 0 {
						fmt.Printf(" [%d allocs]", ps.Allocs)
					}
				}
				fmt.Println()
			}
			if res := ar.Resources; res != nil {
				fmt.Printf("    resources: rss %.1f MiB, user %v, sys %v, gc %d cycles / %v\n",
					float64(res.MaxRSSBytes)/(1<<20),
					time.Duration(res.UserCPUNs).Round(time.Millisecond),
					time.Duration(res.SysCPUNs).Round(time.Millisecond),
					res.GCCycles, time.Duration(res.GCCPUNs).Round(time.Millisecond))
			}
		}
		fmt.Println()
	}

	if res := out.Resources; res != nil {
		fmt.Println("Resources: process-wide over all selected sections")
		fmt.Printf("%-14s %12s %12s %10s %10s %14s\n",
			"max-rss", "user-cpu", "sys-cpu", "gc-cycles", "gc-cpu", "heap-alloc")
		fmt.Printf("%-14s %12v %12v %10d %10v %14s\n",
			fmt.Sprintf("%.1f MiB", float64(res.MaxRSSBytes)/(1<<20)),
			time.Duration(res.UserCPUNs).Round(time.Millisecond),
			time.Duration(res.SysCPUNs).Round(time.Millisecond),
			res.GCCycles,
			time.Duration(res.GCCPUNs).Round(time.Millisecond),
			fmt.Sprintf("%.1f MiB", float64(res.HeapAllocBytes)/(1<<20)))
	}
}
