// Command lsra-bench regenerates the tables and figures of the paper's
// evaluation section on the Alpha-like simulated machine:
//
//	lsra-bench -table1     dynamic instruction counts & simulated cycles
//	lsra-bench -table2     spill code as a percentage of dynamic instructions
//	lsra-bench -figure3    spill-code composition, normalized to binpacking
//	lsra-bench -table3     allocation times vs. candidate counts
//	lsra-bench -ablation   §3.1 two-pass comparison and feature ablations
//	lsra-bench -all        everything
//
// Use -scale to shrink or grow the workloads (1.0 reproduces the default
// experiment size).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/target"
)

func main() {
	var (
		t1    = flag.Bool("table1", false, "regenerate Table 1")
		t2    = flag.Bool("table2", false, "regenerate Table 2")
		f3    = flag.Bool("figure3", false, "regenerate Figure 3 data")
		t3    = flag.Bool("table3", false, "regenerate Table 3")
		abl   = flag.Bool("ablation", false, "run the two-pass and feature ablations")
		all   = flag.Bool("all", false, "run everything")
		scale = flag.Float64("scale", 1.0, "workload scale multiplier")
	)
	flag.Parse()
	if *all {
		*t1, *t2, *f3, *t3, *abl = true, true, true, true, true
	}
	if !*t1 && !*t2 && !*f3 && !*t3 && !*abl {
		flag.Usage()
		os.Exit(2)
	}
	mach := target.Alpha()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "lsra-bench:", err)
		os.Exit(1)
	}

	if *t1 {
		rows, err := experiments.Table1(mach, *scale)
		if err != nil {
			die(err)
		}
		fmt.Println("Table 1: dynamic instruction counts and simulated cycles")
		fmt.Println("(ratio > 1 means poorer binpacking code, as in the paper)")
		fmt.Printf("%-10s %14s %14s %7s %14s %14s %7s\n",
			"benchmark", "binpack", "coloring", "ratio", "bp-cycles", "gc-cycles", "ratio")
		for _, r := range rows {
			fmt.Printf("%-10s %14d %14d %7.3f %14d %14d %7.3f\n",
				r.Benchmark, r.BinpackInstrs, r.ColoringInstrs, r.InstrRatio,
				r.BinpackCycles, r.ColoringCycles, r.CycleRatio)
		}
		fmt.Println()
	}

	if *t2 {
		rows, err := experiments.Table2(mach, *scale)
		if err != nil {
			die(err)
		}
		fmt.Println("Table 2: percentage of dynamic instructions that are spill code")
		fmt.Printf("%-10s %12s %12s\n", "benchmark", "binpack", "coloring")
		for _, r := range rows {
			fmt.Printf("%-10s %11.3f%% %11.3f%%\n", r.Benchmark, r.BinpackPct, r.ColoringPct)
		}
		fmt.Println()
	}

	if *f3 {
		rows, err := experiments.Figure3(mach, *scale)
		if err != nil {
			die(err)
		}
		fmt.Println("Figure 3: spill code composition (dynamic counts; 'norm' is")
		fmt.Println("the bar height: total spill normalized to binpacking's total)")
		fmt.Printf("%-12s %10s %10s %10s %10s %10s %10s %7s\n",
			"bench-scheme", "ev.load", "ev.store", "ev.move", "rs.load", "rs.store", "rs.move", "norm")
		for _, r := range rows {
			fmt.Printf("%-12s %10d %10d %10d %10d %10d %10d %7.3f\n",
				r.Benchmark+"-"+r.Scheme,
				r.EvictLoads, r.EvictStores, r.EvictMoves,
				r.ResolveLoads, r.ResolveStores, r.ResolveMoves, r.Normalized)
		}
		fmt.Println()
	}

	if *t3 {
		rows, err := experiments.Table3(mach)
		if err != nil {
			die(err)
		}
		fmt.Println("Table 3: allocation-core time (best of five) vs. candidates")
		fmt.Printf("%-10s %12s %14s %14s %14s\n",
			"module", "candidates", "iedges", "coloring", "binpacking")
		for _, r := range rows {
			fmt.Printf("%-10s %12d %14d %14s %14s\n",
				r.Module, r.Candidates, r.InterferenceEdges, r.ColoringTime, r.BinpackTime)
		}
		fmt.Println()
	}

	if *abl {
		rows, err := experiments.Ablations(mach, []string{"wc", "eqntott", "li", "fpppp"}, *scale)
		if err != nil {
			die(err)
		}
		fmt.Println("Ablations (§3.1 two-pass, §2.5 move optimizations, §2.6 strict")
		fmt.Println("linearity); ratio is relative to the paper configuration")
		fmt.Printf("%-10s %-34s %14s %12s %7s\n", "benchmark", "variant", "instrs", "spill", "ratio")
		for _, r := range rows {
			fmt.Printf("%-10s %-34s %14d %12d %7.3f\n",
				r.Benchmark, r.Variant, r.Instrs, r.Spill, r.RatioToPaper)
		}
	}
}
