package main

// The -corpus section: the million-program throughput ladder. The
// paper's speed claim is about allocation, but a service front end can
// only be as fast as its program ingestion — BENCH_5 measured the cold
// serve path dominated by text parsing, not allocation. This section
// quantifies the fix end to end:
//
//   - The ladder decodes N programs (100k → 1M → 10M by default) from
//     an mmap'd corpus at full core saturation, cycling the corpus's
//     distinct programs, and reports programs/second per rung plus a
//     runtime-verified allocation count per decode (zero in steady
//     state — the claim BenchmarkCorpusDecodeSteadyState gates in CI).
//   - A bounded decode+allocate pass reports what ingestion plus the
//     actual linear-scan pipeline sustains per core.
//   - The serve duel replays one workload against two fresh in-process
//     servers — text/JSON vs binary frames — and reports the cold
//     per-program cost of each front end.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	regalloc "repro"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/irbin"
	"repro/internal/serve"
)

// corpusBench is the -corpus section of the -json document.
type corpusBench struct {
	// CorpusPrograms is the number of distinct programs in the corpus
	// file; rungs larger than that cycle it. CorpusBytes is the file
	// size; Workers the decode parallelism of the ladder.
	CorpusPrograms int          `json:"corpus_programs"`
	CorpusBytes    int64        `json:"corpus_bytes"`
	Workers        int          `json:"workers"`
	Rungs          []corpusRung `json:"rungs"`
	// Alloc is the bounded decode+allocate measurement (single engine,
	// full pipeline per program).
	Alloc *corpusAlloc `json:"alloc,omitempty"`
	// ServeDuel is the cold text-vs-binary service front-end duel.
	ServeDuel *serveDuel `json:"serve_duel,omitempty"`
}

// corpusRung is one ladder step.
type corpusRung struct {
	// Programs is the rung size (decodes performed, cycling the corpus).
	Programs       int     `json:"programs"`
	ElapsedNs      int64   `json:"elapsed_ns"`
	ProgramsPerSec float64 `json:"programs_per_sec"`
	MBPerSec       float64 `json:"mb_per_sec"`
	NsPerProgram   int64   `json:"ns_per_program"`
	// AllocsPerProgram is measured with runtime.MemStats around the
	// timed loop (after arena warmup): the zero-copy decode claim,
	// enforced end to end rather than only in a microbenchmark.
	AllocsPerProgram float64 `json:"allocs_per_program"`
}

// corpusAlloc is the decode+allocate measurement.
type corpusAlloc struct {
	Programs       int     `json:"programs"`
	Machine        string  `json:"machine"`
	Algorithm      string  `json:"algorithm"`
	NsPerProgram   int64   `json:"ns_per_program"`
	ProgramsPerSec float64 `json:"programs_per_sec"`
	// DecodeShare is decode's fraction of the combined cost, estimated
	// from the pure-decode rate of the first rung.
	DecodeShare float64 `json:"decode_share"`
}

// serveDuel is the cold-ingestion duel: the same workload against two
// fresh servers, one fed textual IR over JSON, one binary frames.
type serveDuel struct {
	Machine  string `json:"machine"`
	Programs int    `json:"programs"`
	// ColdTextNsPerProgram / ColdBinaryNsPerProgram are per-program
	// request costs with an empty result cache (every request runs the
	// full pipeline); the difference is the front-end (parse vs decode)
	// plus envelope cost.
	ColdTextNsPerProgram   int64 `json:"cold_text_ns_per_program"`
	ColdBinaryNsPerProgram int64 `json:"cold_binary_ns_per_program"`
	// Speedup is text/binary (> 1 means the binary front end wins).
	Speedup float64 `json:"speedup"`
}

// parseRungs reads the -corpus-rungs flag: comma-separated ascending
// rung sizes.
func parseRungs(s string) ([]int, error) {
	var rungs []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad rung %q in -corpus-rungs", part)
		}
		rungs = append(rungs, n)
	}
	if len(rungs) == 0 {
		return nil, fmt.Errorf("-corpus-rungs is empty")
	}
	return rungs, nil
}

// runCorpusBench runs the ladder over corpusPath (generated into a
// temp file when empty, with nDistinct programs), at the given rung
// sizes.
func runCorpusBench(corpusPath string, nDistinct int, rungs []int, workers int) (*corpusBench, error) {
	if corpusPath == "" {
		dir, err := os.MkdirTemp("", "lsra-corpus-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		corpusPath = filepath.Join(dir, "bench.lsco")
		if err := corpus.Generate(corpusPath, corpus.GenOptions{Count: nDistinct, Seed: 1}); err != nil {
			return nil, err
		}
	}
	r, err := corpus.Open(corpusPath)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if r.Count() == 0 {
		return nil, fmt.Errorf("corpus %s is empty", corpusPath)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cb := &corpusBench{
		CorpusPrograms: r.Count(),
		CorpusBytes:    int64(r.Size()),
		Workers:        workers,
	}

	// One arena per worker, warmed over the whole corpus so every
	// arena has reached its high-water capacity before anything is
	// timed — after this, the decode loop allocates nothing.
	arenas := make([]*irbin.Arena, workers)
	for w := range arenas {
		arenas[w] = irbin.NewArena()
		for i := 0; i < r.Count(); i++ {
			if _, err := r.Decode(i, arenas[w]); err != nil {
				return nil, err
			}
		}
	}

	for _, n := range rungs {
		rung, err := runRung(r, arenas, n)
		if err != nil {
			return nil, err
		}
		cb.Rungs = append(cb.Rungs, *rung)
	}

	alloc, err := runCorpusAlloc(r, min(r.Count(), 2000))
	if err != nil {
		return nil, err
	}
	if len(cb.Rungs) > 0 && cb.Rungs[0].NsPerProgram > 0 {
		alloc.DecodeShare = float64(cb.Rungs[0].NsPerProgram) / float64(alloc.NsPerProgram)
	}
	cb.Alloc = alloc

	duel, err := runServeDuel("x86-8")
	if err != nil {
		return nil, err
	}
	cb.ServeDuel = duel
	return cb, nil
}

// runRung decodes n programs across the worker arenas, cycling the
// corpus, and measures wall time plus per-program heap allocations.
func runRung(r *corpus.Reader, arenas []*irbin.Arena, n int) (*corpusRung, error) {
	workers := len(arenas)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			arena := arenas[w]
			for i := lo; i < hi; i++ {
				// Decode mutates the arena, so the loop cannot be
				// optimized away; the program itself is dropped — this
				// rung isolates ingestion.
				if _, err := r.Decode(i%r.Count(), arena); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Bytes decoded = full corpus cycles plus the partial cycle.
	var cycleBytes int64
	for i := 0; i < r.Count(); i++ {
		cycleBytes += int64(len(r.Frame(i)))
	}
	decodedBytes := cycleBytes * int64(n/r.Count())
	for i := 0; i < n%r.Count(); i++ {
		decodedBytes += int64(len(r.Frame(i)))
	}
	rung := &corpusRung{
		Programs:  n,
		ElapsedNs: elapsed.Nanoseconds(),
	}
	if s := elapsed.Seconds(); s > 0 {
		rung.ProgramsPerSec = float64(n) / s
		rung.MBPerSec = float64(decodedBytes) / (1 << 20) / s
	}
	rung.NsPerProgram = elapsed.Nanoseconds() / int64(n)
	rung.AllocsPerProgram = float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
	return rung, nil
}

// runCorpusAlloc measures decode + full allocation pipeline over the
// first n corpus programs on one engine.
func runCorpusAlloc(r *corpus.Reader, n int) (*corpusAlloc, error) {
	const machine = "alpha"
	mach, err := regalloc.ParseMachine(machine)
	if err != nil {
		return nil, err
	}
	eng, err := regalloc.New(mach, regalloc.WithParallelism(1))
	if err != nil {
		return nil, err
	}
	arena := irbin.NewArena()
	// Warm the engine's scratch arenas on one program before timing.
	prog, err := r.Decode(0, arena)
	if err != nil {
		return nil, err
	}
	if _, _, err := eng.AllocateProgram(context.Background(), prog); err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		prog, err := r.Decode(i, arena)
		if err != nil {
			return nil, err
		}
		if _, _, err := eng.AllocateProgram(context.Background(), prog); err != nil {
			return nil, fmt.Errorf("corpus program %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	ca := &corpusAlloc{
		Programs:     n,
		Machine:      machine,
		Algorithm:    eng.Algorithm(),
		NsPerProgram: elapsed.Nanoseconds() / int64(n),
	}
	if s := elapsed.Seconds(); s > 0 {
		ca.ProgramsPerSec = float64(n) / s
	}
	return ca, nil
}

// runServeDuel replays one workload cold against a text-fed and a
// binary-fed server. Fresh servers for each pass: both run with an
// empty result cache, so every request pays the full pipeline and the
// difference isolates the ingestion front end.
func runServeDuel(machine string) (*serveDuel, error) {
	mach, err := regalloc.ParseMachine(machine)
	if err != nil {
		return nil, err
	}
	jobs, err := experiments.Workload(mach, []string{"default", "call-heavy", "straightline"}, 100, 2)
	if err != nil {
		return nil, err
	}
	// Pre-encode both wire forms outside the timed loops.
	texts := make([][]byte, len(jobs))
	frames := make([][]byte, len(jobs))
	for i, job := range jobs {
		body, err := json.Marshal(&serve.AllocateRequest{Machine: machine, Program: job.Text})
		if err != nil {
			return nil, err
		}
		texts[i] = body
		prog, err := ir.ParseProgramString(job.Text, mach)
		if err != nil {
			return nil, err
		}
		frames[i] = irbin.EncodeProgram(prog)
	}

	pass := func(contentType string, bodies [][]byte, url string) (time.Duration, error) {
		s, err := serve.New(serve.Config{Workers: 2, QueueDepth: 64})
		if err != nil {
			return 0, err
		}
		ts := httptest.NewServer(s)
		defer ts.Close()
		client := ts.Client()
		start := time.Now()
		for _, body := range bodies {
			resp, err := client.Post(ts.URL+url, contentType, bytes.NewReader(body))
			if err != nil {
				return 0, err
			}
			_, cerr := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if cerr != nil {
				return 0, cerr
			}
			if resp.StatusCode != 200 {
				return 0, fmt.Errorf("serve duel: status %d", resp.StatusCode)
			}
		}
		return time.Since(start), nil
	}

	coldText, err := pass("application/json", texts, "/allocate")
	if err != nil {
		return nil, err
	}
	coldBin, err := pass(serve.ContentTypeBinaryIR, frames, "/allocate?machine="+machine)
	if err != nil {
		return nil, err
	}
	n := int64(len(jobs))
	d := &serveDuel{
		Machine:                machine,
		Programs:               len(jobs),
		ColdTextNsPerProgram:   coldText.Nanoseconds() / n,
		ColdBinaryNsPerProgram: coldBin.Nanoseconds() / n,
	}
	if d.ColdBinaryNsPerProgram > 0 {
		d.Speedup = float64(d.ColdTextNsPerProgram) / float64(d.ColdBinaryNsPerProgram)
	}
	return d, nil
}
