package main

// The -corpus section: the million-program throughput ladder. The
// paper's speed claim is about allocation, but a service front end can
// only be as fast as its program ingestion — BENCH_5 measured the cold
// serve path dominated by text parsing, not allocation. This section
// quantifies the fix end to end:
//
//   - The ladder decodes N programs (100k → 1M → 10M by default) from
//     an mmap'd corpus at full core saturation, cycling the corpus's
//     distinct programs, and reports programs/second per rung plus a
//     runtime-verified allocation count per decode (zero in steady
//     state — the claim BenchmarkCorpusDecodeSteadyState gates in CI).
//   - A bounded decode+allocate pass reports what ingestion plus the
//     actual linear-scan pipeline sustains per core.
//   - The pipeline duel runs the same decode+allocate workload twice on
//     identical input — the lockstep loop vs the decode-ahead pipeline
//     (internal/pipeline) — and reports programs/sec per runner plus the
//     per-stage utilization counters that name the saturated stage.
//   - The serve duel replays one workload against two fresh in-process
//     servers — text/JSON vs binary frames — and reports the cold
//     per-program cost of each front end.
//
// The corpus itself is a shard set (corpus.OpenSet): -corpus-shards
// controls how many members a generated corpus gets, and -corpus-file
// accepts a single file, a set base name, or a glob.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	regalloc "repro"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/irbin"
	"repro/internal/pipeline"
	"repro/internal/serve"
)

// corpusBench is the -corpus section of the -json document.
type corpusBench struct {
	// CorpusPrograms is the number of distinct programs in the corpus
	// file; rungs larger than that cycle it. CorpusBytes is the file
	// size; Workers the decode parallelism of the ladder.
	CorpusPrograms int   `json:"corpus_programs"`
	CorpusBytes    int64 `json:"corpus_bytes"`
	// Shards is the member count of the corpus shard set (1 for a
	// single-file corpus).
	Shards  int          `json:"shards"`
	Workers int          `json:"workers"`
	Rungs   []corpusRung `json:"rungs"`
	// Alloc is the bounded decode+allocate measurement (single engine,
	// full pipeline per program).
	Alloc *corpusAlloc `json:"alloc,omitempty"`
	// Pipeline is the lockstep-vs-decode-ahead duel on identical input.
	Pipeline *pipelineDuel `json:"pipeline,omitempty"`
	// ServeDuel is the cold text-vs-binary service front-end duel.
	ServeDuel *serveDuel `json:"serve_duel,omitempty"`
}

// pipelineDuel is the decode-ahead measurement: the same programs, the
// same engine, run through the lockstep loop and the pipelined runner.
type pipelineDuel struct {
	Programs  int    `json:"programs"`
	Machine   string `json:"machine"`
	Algorithm string `json:"algorithm"`
	// GCPercent is the GC target both runners measured under (the duel
	// raises it so GC cadence against the pinned decode window doesn't
	// masquerade as pipeline overhead).
	GCPercent int `json:"gc_percent"`
	// Lockstep and Pipelined are each runner's full Stats: programs/sec,
	// busy/stall nanoseconds per stage, utilizations, ring occupancy.
	Lockstep  *pipeline.Stats `json:"lockstep"`
	Pipelined *pipeline.Stats `json:"pipelined"`
	// Speedup is pipelined/lockstep programs-per-second.
	Speedup float64 `json:"speedup"`
	// Bottleneck names the pipelined run's saturated stage.
	Bottleneck string `json:"bottleneck"`
}

// corpusRung is one ladder step.
type corpusRung struct {
	// Programs is the rung size (decodes performed, cycling the corpus).
	Programs       int     `json:"programs"`
	ElapsedNs      int64   `json:"elapsed_ns"`
	ProgramsPerSec float64 `json:"programs_per_sec"`
	MBPerSec       float64 `json:"mb_per_sec"`
	NsPerProgram   int64   `json:"ns_per_program"`
	// AllocsPerProgram is measured with runtime.MemStats around the
	// timed loop (after arena warmup): the zero-copy decode claim,
	// enforced end to end rather than only in a microbenchmark.
	AllocsPerProgram float64 `json:"allocs_per_program"`
}

// corpusAlloc is the decode+allocate measurement.
type corpusAlloc struct {
	Programs       int     `json:"programs"`
	Machine        string  `json:"machine"`
	Algorithm      string  `json:"algorithm"`
	NsPerProgram   int64   `json:"ns_per_program"`
	ProgramsPerSec float64 `json:"programs_per_sec"`
	// DecodeShare is decode's fraction of the combined cost, estimated
	// from the pure-decode rate of the first rung.
	DecodeShare float64 `json:"decode_share"`
}

// serveDuel is the cold-ingestion duel: the same workload against two
// fresh servers, one fed textual IR over JSON, one binary frames.
type serveDuel struct {
	Machine  string `json:"machine"`
	Programs int    `json:"programs"`
	// ColdTextNsPerProgram / ColdBinaryNsPerProgram are per-program
	// request costs with an empty result cache (every request runs the
	// full pipeline); the difference is the front-end (parse vs decode)
	// plus envelope cost.
	ColdTextNsPerProgram   int64 `json:"cold_text_ns_per_program"`
	ColdBinaryNsPerProgram int64 `json:"cold_binary_ns_per_program"`
	// Speedup is text/binary (> 1 means the binary front end wins).
	Speedup float64 `json:"speedup"`
}

// parseRungs reads the -corpus-rungs flag: comma-separated ascending
// rung sizes.
func parseRungs(s string) ([]int, error) {
	var rungs []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad rung %q in -corpus-rungs", part)
		}
		rungs = append(rungs, n)
	}
	if len(rungs) == 0 {
		return nil, fmt.Errorf("-corpus-rungs is empty")
	}
	return rungs, nil
}

// corpusOpts collects the -corpus knobs.
type corpusOpts struct {
	// Path is the corpus argument: a file, a set base name, or a glob;
	// empty generates a temporary Shards-member set of Programs distinct
	// programs.
	Path     string
	Programs int
	Shards   int
	Rungs    []int
	// Workers is the decode ladder's parallelism (0 = GOMAXPROCS).
	Workers int
	// PipelineWorkers and DecodeAhead tune the duel's pipelined runner
	// (0 = the pipeline package defaults).
	PipelineWorkers int
	DecodeAhead     int
}

// runCorpusBench runs the ladder and the pipeline duel over the corpus
// set named by opt.Path (generated into a temp dir when empty).
func runCorpusBench(opt corpusOpts) (*corpusBench, error) {
	if opt.Path == "" {
		dir, err := os.MkdirTemp("", "lsra-corpus-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opt.Path = filepath.Join(dir, "bench.lsco")
		if err := corpus.Generate(opt.Path, corpus.GenOptions{Count: opt.Programs, Seed: 1, Shards: opt.Shards}); err != nil {
			return nil, err
		}
	}
	r, err := corpus.OpenSet(opt.Path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if r.Count() == 0 {
		return nil, fmt.Errorf("corpus %s is empty", opt.Path)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cb := &corpusBench{
		CorpusPrograms: r.Count(),
		CorpusBytes:    r.Size(),
		Shards:         r.Shards(),
		Workers:        workers,
	}

	// One arena per worker, warmed over the whole corpus so every
	// arena has reached its high-water capacity before anything is
	// timed — after this, the decode loop allocates nothing.
	arenas := make([]*irbin.Arena, workers)
	for w := range arenas {
		arenas[w] = irbin.NewArena()
		for i := 0; i < r.Count(); i++ {
			if _, err := r.Decode(i, arenas[w]); err != nil {
				return nil, err
			}
		}
	}

	for _, n := range opt.Rungs {
		rung, err := runRung(r, arenas, n)
		if err != nil {
			return nil, err
		}
		cb.Rungs = append(cb.Rungs, *rung)
	}

	alloc, err := runCorpusAlloc(r, min(r.Count(), 2000))
	if err != nil {
		return nil, err
	}
	if len(cb.Rungs) > 0 && cb.Rungs[0].NsPerProgram > 0 {
		alloc.DecodeShare = float64(cb.Rungs[0].NsPerProgram) / float64(alloc.NsPerProgram)
	}
	cb.Alloc = alloc

	pd, err := runPipelineDuel(r, min(r.Count(), 1000), opt.PipelineWorkers, opt.DecodeAhead)
	if err != nil {
		return nil, err
	}
	cb.Pipeline = pd

	duel, err := runServeDuel("x86-8")
	if err != nil {
		return nil, err
	}
	cb.ServeDuel = duel
	return cb, nil
}

// runPipelineDuel runs n programs through the lockstep loop and the
// decode-ahead pipeline: identical input, identical engine, so the two
// Stats differ only in how the stages overlap.
func runPipelineDuel(r *corpus.Set, n, allocWorkers, decodeAhead int) (*pipelineDuel, error) {
	const machine = "alpha"
	mach, err := regalloc.ParseMachine(machine)
	if err != nil {
		return nil, err
	}
	eng, err := regalloc.New(mach, regalloc.WithParallelism(1))
	if err != nil {
		return nil, err
	}
	// Warm the engine scratch space before either timed run.
	arena := irbin.NewArena()
	prog, err := r.Decode(0, arena)
	if err != nil {
		return nil, err
	}
	if _, _, err := eng.AllocateProgram(context.Background(), prog); err != nil {
		return nil, err
	}
	cfg := pipeline.Config{Programs: n, AllocWorkers: allocWorkers, DecodeAhead: decodeAhead}
	// Both runners measure under a 400% GC target: the decode-ahead ring
	// pins a pointer-rich window of live programs, and at the default
	// target the collector re-scans that window often enough to charge
	// the pipelined runner a GC-cadence tax unrelated to its structure.
	// Raising the target for both sides (disclosed as GCPercent) keeps
	// the duel about stage overlap; the ladder rungs still run at the
	// process default.
	const duelGCPercent = 400
	old := debug.SetGCPercent(duelGCPercent)
	defer debug.SetGCPercent(old)
	// Best of six per runner, strictly alternating, with a GC before
	// each timed pass. Short passes matter more than long ones here:
	// host CPU speed drifts on the scale of seconds, so the duel's
	// fairness comes from both runners sampling the same drift curve,
	// not from any single long measurement.
	const duelRounds = 6
	var ls, pl *pipeline.Stats
	for round := 0; round < duelRounds; round++ {
		runtime.GC()
		l, err := pipeline.RunLockstep(context.Background(), r, eng, cfg)
		if err != nil {
			return nil, err
		}
		if ls == nil || l.ProgramsPerSec > ls.ProgramsPerSec {
			ls = l
		}
		runtime.GC()
		p, err := pipeline.Run(context.Background(), r, eng, cfg, nil)
		if err != nil {
			return nil, err
		}
		if pl == nil || p.ProgramsPerSec > pl.ProgramsPerSec {
			pl = p
		}
	}
	d := &pipelineDuel{
		Programs:   n,
		Machine:    machine,
		Algorithm:  eng.Algorithm(),
		GCPercent:  duelGCPercent,
		Lockstep:   ls,
		Pipelined:  pl,
		Bottleneck: pl.Bottleneck(),
	}
	if ls.ProgramsPerSec > 0 {
		d.Speedup = pl.ProgramsPerSec / ls.ProgramsPerSec
	}
	return d, nil
}

// runRung decodes n programs across the worker arenas, cycling the
// corpus, and measures wall time plus per-program heap allocations.
func runRung(r *corpus.Set, arenas []*irbin.Arena, n int) (*corpusRung, error) {
	workers := len(arenas)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			arena := arenas[w]
			for i := lo; i < hi; i++ {
				// Decode mutates the arena, so the loop cannot be
				// optimized away; the program itself is dropped — this
				// rung isolates ingestion.
				if _, err := r.Decode(i%r.Count(), arena); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Bytes decoded = full corpus cycles plus the partial cycle.
	var cycleBytes int64
	for i := 0; i < r.Count(); i++ {
		cycleBytes += int64(len(r.Frame(i)))
	}
	decodedBytes := cycleBytes * int64(n/r.Count())
	for i := 0; i < n%r.Count(); i++ {
		decodedBytes += int64(len(r.Frame(i)))
	}
	rung := &corpusRung{
		Programs:  n,
		ElapsedNs: elapsed.Nanoseconds(),
	}
	if s := elapsed.Seconds(); s > 0 {
		rung.ProgramsPerSec = float64(n) / s
		rung.MBPerSec = float64(decodedBytes) / (1 << 20) / s
	}
	rung.NsPerProgram = elapsed.Nanoseconds() / int64(n)
	rung.AllocsPerProgram = float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
	return rung, nil
}

// runCorpusAlloc measures decode + full allocation pipeline over the
// first n corpus programs on one engine.
func runCorpusAlloc(r *corpus.Set, n int) (*corpusAlloc, error) {
	const machine = "alpha"
	mach, err := regalloc.ParseMachine(machine)
	if err != nil {
		return nil, err
	}
	eng, err := regalloc.New(mach, regalloc.WithParallelism(1))
	if err != nil {
		return nil, err
	}
	arena := irbin.NewArena()
	// Warm the engine's scratch arenas on one program before timing.
	prog, err := r.Decode(0, arena)
	if err != nil {
		return nil, err
	}
	if _, _, err := eng.AllocateProgram(context.Background(), prog); err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		prog, err := r.Decode(i, arena)
		if err != nil {
			return nil, err
		}
		if _, _, err := eng.AllocateProgram(context.Background(), prog); err != nil {
			return nil, fmt.Errorf("corpus program %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	ca := &corpusAlloc{
		Programs:     n,
		Machine:      machine,
		Algorithm:    eng.Algorithm(),
		NsPerProgram: elapsed.Nanoseconds() / int64(n),
	}
	if s := elapsed.Seconds(); s > 0 {
		ca.ProgramsPerSec = float64(n) / s
	}
	return ca, nil
}

// runServeDuel replays one workload cold against a text-fed and a
// binary-fed server. Fresh servers for each pass: both run with an
// empty result cache, so every request pays the full pipeline and the
// difference isolates the ingestion front end.
func runServeDuel(machine string) (*serveDuel, error) {
	mach, err := regalloc.ParseMachine(machine)
	if err != nil {
		return nil, err
	}
	jobs, err := experiments.Workload(mach, []string{"default", "call-heavy", "straightline"}, 100, 2)
	if err != nil {
		return nil, err
	}
	// Pre-encode both wire forms outside the timed loops.
	texts := make([][]byte, len(jobs))
	frames := make([][]byte, len(jobs))
	for i, job := range jobs {
		body, err := json.Marshal(&serve.AllocateRequest{Machine: machine, Program: job.Text})
		if err != nil {
			return nil, err
		}
		texts[i] = body
		prog, err := ir.ParseProgramString(job.Text, mach)
		if err != nil {
			return nil, err
		}
		frames[i] = irbin.EncodeProgram(prog)
	}

	pass := func(contentType string, bodies [][]byte, url string) (time.Duration, error) {
		s, err := serve.New(serve.Config{Workers: 2, QueueDepth: 64})
		if err != nil {
			return 0, err
		}
		ts := httptest.NewServer(s)
		defer ts.Close()
		client := ts.Client()
		start := time.Now()
		for _, body := range bodies {
			resp, err := client.Post(ts.URL+url, contentType, bytes.NewReader(body))
			if err != nil {
				return 0, err
			}
			_, cerr := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if cerr != nil {
				return 0, cerr
			}
			if resp.StatusCode != 200 {
				return 0, fmt.Errorf("serve duel: status %d", resp.StatusCode)
			}
		}
		return time.Since(start), nil
	}

	coldText, err := pass("application/json", texts, "/allocate")
	if err != nil {
		return nil, err
	}
	coldBin, err := pass(serve.ContentTypeBinaryIR, frames, "/allocate?machine="+machine)
	if err != nil {
		return nil, err
	}
	n := int64(len(jobs))
	d := &serveDuel{
		Machine:                machine,
		Programs:               len(jobs),
		ColdTextNsPerProgram:   coldText.Nanoseconds() / n,
		ColdBinaryNsPerProgram: coldBin.Nanoseconds() / n,
	}
	if d.ColdBinaryNsPerProgram > 0 {
		d.Speedup = float64(d.ColdTextNsPerProgram) / float64(d.ColdBinaryNsPerProgram)
	}
	return d, nil
}
