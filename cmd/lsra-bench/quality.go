package main

// The -quality section: the quality frontier as a benchmark. It runs
// the conformance quality grid (internal/conform/quality.go) — every
// allocator's dynamic spill traffic measured against the oracle's
// proven optimum with the default pair envelopes enforced — and
// reports the per-allocator gap summary as one stamped section, which
// the perf observatory extracts as quality_gap_* series so a quality
// regression shows up on the same dashboard as a speed regression.

import (
	"fmt"
	"sort"

	"repro/internal/conform"
)

// qualityBench is the -quality section of the -json document.
type qualityBench struct {
	Machines []string `json:"machines"`
	Profiles []string `json:"profiles"`
	Seeds    []int64  `json:"seeds"`
	// Points is the grid size; Eligible the subset where the oracle
	// proved its optimum within the default search limits.
	Points   int `json:"points"`
	Eligible int `json:"eligible"`
	// Errors and Violations count measurement failures and broken
	// envelope bounds; both are zero on a healthy run.
	Errors     int `json:"errors"`
	Violations int `json:"violations"`
	// Summary maps allocator name → its aggregated gap statistics.
	Summary map[string]conform.QualitySummary `json:"summary"`
}

// runQualityBench measures the default quality grid, with the seed
// count scaled like every other workload.
func runQualityBench(scale float64, jobs int) (*qualityBench, error) {
	nSeeds := int(3 * scale)
	if nSeeds < 1 {
		nSeeds = 1
	}
	g := conform.DefaultQualityGrid(1, nSeeds)
	rep := conform.RunQuality(g, conform.QualityOptions{
		Options: conform.Options{Parallelism: jobs, NoShrink: true},
	}, false)
	return &qualityBench{
		Machines:   g.Machines,
		Profiles:   g.Profiles,
		Seeds:      g.Seeds,
		Points:     rep.Points,
		Eligible:   rep.Eligible,
		Errors:     len(rep.Errors),
		Violations: len(rep.Violations),
		Summary:    rep.Summary,
	}, nil
}

func printQuality(q *qualityBench) {
	fmt.Println("Quality frontier: dynamic spill traffic vs the oracle optimum")
	fmt.Printf("  grid: %d machines x %d profiles x %d seeds = %d points (%d oracle-eligible); %d errors, %d envelope violations\n",
		len(q.Machines), len(q.Profiles), len(q.Seeds), q.Points, q.Eligible, q.Errors, q.Violations)
	fmt.Printf("%-12s %8s %10s %14s %14s %12s %9s\n",
		"allocator", "points", "eligible", "spill-ops", "optimum", "geomean-gap", "max-gap")
	for _, name := range sortedKeys(q.Summary) {
		s := q.Summary[name]
		fmt.Printf("%-12s %8d %10d %14d %14d %12.3f %9.2f\n",
			name, s.Points, s.EligiblePoints, s.SpillOps, s.OptimumSpill, s.GeomeanGap, s.MaxGap)
	}
	fmt.Println()
}

func sortedKeys(m map[string]conform.QualitySummary) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
