package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	regalloc "repro"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/serve"
)

// clusterBench is the -cluster section: a 3-node consistent-hash
// cluster driven by the deterministic hot/cold workload, measuring the
// sharded steady state, the hedged-request tail-latency win against an
// artificially slow node, cost-aware disk admission, and the
// persistent tier's warm hit rate across a full cluster restart.
type clusterBench struct {
	Machine string `json:"machine"`
	Nodes   int    `json:"nodes"`
	// Requests is the cold-pass stream length (hot×repeats + cold).
	Requests int `json:"requests"`
	// ColdNsPerRequest is the mean over the first full pass (misses and
	// first repeats mixed); WarmNsPerRequest over a replay of the hot
	// set once every owner's cache holds it.
	ColdNsPerRequest int64 `json:"cold_ns_per_request"`
	WarmNsPerRequest int64 `json:"warm_ns_per_request"`
	// WarmHitRate is the hot-set replay's cache-hit fraction.
	WarmHitRate float64 `json:"warm_hit_rate"`

	// Binary wire-form duel: the warm hot set replayed through the
	// default binary client (application/x-lsra-ir bodies, no server-side
	// text parse) and through a JSON-only client, best mean of several
	// alternating rounds. BinarySpeedup = JSONNsPerRequest /
	// BinaryNsPerRequest.
	BinaryNsPerRequest int64   `json:"binary_ns_per_request"`
	JSONNsPerRequest   int64   `json:"json_ns_per_request"`
	BinarySpeedup      float64 `json:"binary_speedup"`
	// BinaryRequests/JSONFallbacks are the binary client's transport
	// counters over the duel (fallbacks must be zero against this fleet).
	BinaryRequests uint64 `json:"binary_requests"`
	JSONFallbacks  uint64 `json:"json_fallbacks"`

	// Tail latency against a cluster with one slow node (fixed injected
	// stall on its allocate path), same warm workload, with and without
	// hedging. The win is UnhedgedP99Ns / HedgedP99Ns.
	StallNs        int64   `json:"stall_ns"`
	UnhedgedP50Ns  int64   `json:"unhedged_p50_ns"`
	UnhedgedP99Ns  int64   `json:"unhedged_p99_ns"`
	HedgedP50Ns    int64   `json:"hedged_p50_ns"`
	HedgedP99Ns    int64   `json:"hedged_p99_ns"`
	HedgeWins      uint64  `json:"hedge_wins"`
	TailSpeedupP99 float64 `json:"tail_speedup_p99"`

	// Cost-aware admission of the disk tier under the default bar,
	// measured on a separate single-node probe fed the same stream (the
	// main fleet admits everything so RestartWarmHitRate isolates the
	// disk tier rather than the admission policy).
	PersistAdmitted     uint64 `json:"persist_admitted"`
	PersistRejectedCost uint64 `json:"persist_rejected_cost"`
	// RestartWarmHitRate is the hot-set hit fraction served by a fresh
	// cluster over the previous run's persist directories (memory tiers
	// cold, disk tiers warm).
	RestartWarmHitRate float64 `json:"restart_warm_hit_rate"`
}

// percentile returns the p-th percentile (0..1) of sorted durations.
func percentile(sorted []time.Duration, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i].Nanoseconds()
}

// replayCluster posts each job through the cluster client, returning
// per-request latencies and the cache-hit count.
func replayCluster(cl *cluster.Client, machine string, jobs []experiments.ClusterJob) ([]time.Duration, int, error) {
	lats := make([]time.Duration, 0, len(jobs))
	hits := 0
	for _, j := range jobs {
		start := time.Now()
		resp, _, err := cl.Allocate(context.Background(), serve.AllocateRequest{
			Machine: machine, Program: j.Text, Priority: j.Priority,
		})
		if err != nil {
			return nil, 0, err
		}
		lats = append(lats, time.Since(start))
		if len(resp.Results) > 0 && resp.Results[0].Cached {
			hits++
		}
	}
	return lats, hits, nil
}

// hotOnce returns one instance of each distinct hot job in the stream.
func hotOnce(stream []experiments.ClusterJob) []experiments.ClusterJob {
	seen := map[string]bool{}
	var out []experiments.ClusterJob
	for _, j := range stream {
		if j.Hot && !seen[j.Text] {
			seen[j.Text] = true
			out = append(out, j)
		}
	}
	return out
}

// runClusterBench measures the sharded service: a 3-node cluster with
// per-node disk tiers, the hot/cold stream, a hedging duel against an
// injected-latency node, and a restart over the same persist
// directories.
func runClusterBench(machine string) (*clusterBench, error) {
	mach, err := regalloc.ParseMachine(machine)
	if err != nil {
		return nil, err
	}
	const hotN, hotRepeats, coldN = 8, 3, 8
	stream, err := experiments.ClusterWorkload(mach, 100, hotN, hotRepeats, coldN)
	if err != nil {
		return nil, err
	}
	hot := hotOnce(stream)

	persistRoot, err := os.MkdirTemp("", "lsra-cluster-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(persistRoot)
	nodeCfg := func(i int, addr string) cluster.NodeConfig {
		return cluster.NodeConfig{
			Name: fmt.Sprintf("node-%d", i),
			Addr: addr,
			Serve: serve.Config{
				Workers: 2, QueueDepth: 64,
				PersistDir: fmt.Sprintf("%s/node-%d", persistRoot, i),
				// Admit everything: the restart pass below measures the
				// disk tier itself; admission policy is probed separately.
				PersistCostFactor: -1,
			},
		}
	}

	const nodes = 3
	c := cluster.NewCluster(cluster.Options{})
	addrs := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		n, err := c.Join(nodeCfg(i, ""))
		if err != nil {
			return nil, err
		}
		// Remember each node's address: ownership is consistent-hashed
		// over the node table, so the restarted fleet must come back on
		// the same addresses (as a real daemon restart does) for each
		// disk tier to hold its own share of the key space.
		addrs[i] = strings.TrimPrefix(n.URL, "http://")
	}
	cl := c.Client(cluster.ClientConfig{MaxAttempts: nodes})

	out := &clusterBench{Machine: machine, Nodes: nodes, Requests: len(stream)}

	coldLats, _, err := replayCluster(cl, machine, stream)
	if err != nil {
		return nil, err
	}
	var coldTotal time.Duration
	for _, d := range coldLats {
		coldTotal += d
	}
	out.ColdNsPerRequest = coldTotal.Nanoseconds() / int64(len(coldLats))

	warmLats, warmHits, err := replayCluster(cl, machine, hot)
	if err != nil {
		return nil, err
	}
	var warmTotal time.Duration
	for _, d := range warmLats {
		warmTotal += d
	}
	out.WarmNsPerRequest = warmTotal.Nanoseconds() / int64(len(warmLats))
	out.WarmHitRate = float64(warmHits) / float64(len(hot))

	// Binary wire duel over the warm hot set: every owner already holds
	// the results, so the two clients differ only in transport — the
	// JSON client makes the server parse program text, the binary client
	// ships pre-parsed irbin frames. Alternating best-of rounds absorb
	// scheduler noise on a small host.
	binCl := c.Client(cluster.ClientConfig{MaxAttempts: nodes})
	jsonCl := c.Client(cluster.ClientConfig{MaxAttempts: nodes, DisableBinary: true})
	bestMean := func(cur int64, lats []time.Duration) int64 {
		var total time.Duration
		for _, d := range lats {
			total += d
		}
		mean := total.Nanoseconds() / int64(len(lats))
		if cur == 0 || mean < cur {
			return mean
		}
		return cur
	}
	const wireRounds = 5
	for r := 0; r < wireRounds; r++ {
		jl, _, err := replayCluster(jsonCl, machine, hot)
		if err != nil {
			return nil, err
		}
		out.JSONNsPerRequest = bestMean(out.JSONNsPerRequest, jl)
		bl, _, err := replayCluster(binCl, machine, hot)
		if err != nil {
			return nil, err
		}
		out.BinaryNsPerRequest = bestMean(out.BinaryNsPerRequest, bl)
	}
	if out.BinaryNsPerRequest > 0 {
		out.BinarySpeedup = float64(out.JSONNsPerRequest) / float64(out.BinaryNsPerRequest)
	}
	bst := binCl.Stats()
	out.BinaryRequests = bst.BinaryRequests
	out.JSONFallbacks = bst.JSONFallbacks

	// Cost-aware admission under the default bar: a single-node probe
	// sees the same distinct programs and decides, per entry, whether
	// the measured allocation time clears the serialization-cost bar.
	probe := cluster.NewCluster(cluster.Options{})
	pn, err := probe.Join(cluster.NodeConfig{
		Name: "admission-probe",
		Serve: serve.Config{
			Workers: 2, QueueDepth: 64,
			PersistDir: fmt.Sprintf("%s/admission-probe", persistRoot),
		},
	})
	if err != nil {
		return nil, err
	}
	pcl := probe.Client(cluster.ClientConfig{})
	if _, _, err := replayCluster(pcl, machine, stream); err != nil {
		return nil, err
	}
	if adm := pn.Server().Metrics().Persist; adm != nil {
		out.PersistAdmitted = adm.Admission.Admitted
		out.PersistRejectedCost = adm.Admission.RejectedCost
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := probe.Shutdown(ctx); err != nil {
		return nil, err
	}
	if err := c.Shutdown(ctx); err != nil {
		return nil, err
	}

	// Restart: fresh daemons over the same persist directories. The
	// memory tiers start cold; every hit is the disk tier's.
	c2 := cluster.NewCluster(cluster.Options{})
	for i := 0; i < nodes; i++ {
		if _, err := c2.Join(nodeCfg(i, addrs[i])); err != nil {
			return nil, err
		}
	}
	cl2 := c2.Client(cluster.ClientConfig{MaxAttempts: nodes})
	_, restartHits, err := replayCluster(cl2, machine, hot)
	if err != nil {
		return nil, err
	}
	out.RestartWarmHitRate = float64(restartHits) / float64(len(hot))
	if err := c2.Shutdown(ctx); err != nil {
		return nil, err
	}

	// Hedging duel: a 2-node cluster whose first node stalls every
	// allocate. Warm both caches first so service time is lookup-bound
	// and the stall dominates the unhedged tail. The stall must sit well
	// above in-process scheduler noise (warm lookups occasionally take
	// 10-15ms wall time when client and both servers share one process),
	// or the tail comparison drowns in that noise.
	const stall = 25 * time.Millisecond
	out.StallNs = stall.Nanoseconds()
	c3 := cluster.NewCluster(cluster.Options{})
	slowCfg := cluster.NodeConfig{Name: "slow", Serve: serve.Config{Workers: 2, QueueDepth: 64},
		Middleware: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/allocate" {
					time.Sleep(stall)
				}
				next.ServeHTTP(w, r)
			})
		}}
	if _, err := c3.Join(slowCfg); err != nil {
		return nil, err
	}
	if _, err := c3.Join(cluster.NodeConfig{Name: "fast", Serve: serve.Config{Workers: 2, QueueDepth: 64}}); err != nil {
		return nil, err
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_ = c3.Shutdown(sctx)
	}()

	warmup := c3.Client(cluster.ClientConfig{MaxAttempts: 2})
	if _, _, err := replayCluster(warmup, machine, hot); err != nil {
		return nil, err
	}
	if _, err := c3.Replicate(); err != nil { // both nodes hold the hot set
		return nil, err
	}

	const rounds = 12
	duel := func(hedge time.Duration) ([]time.Duration, *cluster.Client, error) {
		dcl := c3.Client(cluster.ClientConfig{MaxAttempts: 2, HedgeDelay: hedge})
		var all []time.Duration
		for r := 0; r < rounds; r++ {
			lats, _, err := replayCluster(dcl, machine, hot)
			if err != nil {
				return nil, nil, err
			}
			all = append(all, lats...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		return all, dcl, nil
	}
	unhedged, _, err := duel(0)
	if err != nil {
		return nil, err
	}
	// Hedge just above the healthy warm service time: requests the fast
	// node answers promptly never spawn a duplicate (on a small host the
	// duplicate work would contend with the winner and inflate the very
	// tail being measured), while stalled-node requests hedge early
	// enough to cap the tail well below the stall.
	hedged, hcl, err := duel(8 * time.Millisecond)
	if err != nil {
		return nil, err
	}
	out.UnhedgedP50Ns = percentile(unhedged, 0.50)
	out.UnhedgedP99Ns = percentile(unhedged, 0.99)
	out.HedgedP50Ns = percentile(hedged, 0.50)
	out.HedgedP99Ns = percentile(hedged, 0.99)
	out.HedgeWins = hcl.Stats().HedgeWins
	if out.HedgedP99Ns > 0 {
		out.TailSpeedupP99 = float64(out.UnhedgedP99Ns) / float64(out.HedgedP99Ns)
	}
	return out, nil
}
