// Package dataflow implements iterative bit-vector dataflow over ir CFGs,
// and the liveness analysis both allocators consume.
//
// As in the paper (§3), temporaries that are live only within a single
// basic block are excluded from the bit vectors: "temporaries that are
// live only within a single basic block are excluded from dataflow
// analysis, which greatly reduces bit vector sizes". A temporary can be
// live across an edge only if some block reads it before writing it
// (upward exposure), so the global universe is exactly the set of
// upward-exposed temporaries.
//
// Both entry points come in two forms: the plain functions
// (SolveBackwardUnion, Compute) allocate their working storage fresh, and
// the scratch-based forms (SolverScratch.Solve, Scratch.Compute) reuse a
// caller-owned arena so that repeated analyses on one allocator instance
// — the engine's batch hot path — run allocation-free in steady state.
package dataflow

import (
	"repro/internal/bitset"
	"repro/internal/ir"
	"repro/internal/scratch"
)

// SolverScratch holds the reusable working storage of the backward-union
// solver: one bitset slab for the In/Out vectors plus the worklist. A
// scratch must not be shared between concurrent solves, and the slices a
// solve returns are valid only until the next Solve on the same scratch.
// The zero value is ready to use.
type SolverScratch struct {
	slab   bitset.Slab
	in     []*bitset.Set
	out    []*bitset.Set
	work   []*ir.Block
	inWork []bool
	tmp    bitset.Set
}

// Solve solves the classic backward union problem
//
//	Out(b) = ⋃_{s ∈ succ(b)} In(s)
//	In(b)  = Gen(b) ∪ (Out(b) − Kill(b))
//
// over the given blocks with a worklist, and returns In and Out indexed
// by Block.Order. gen and kill may be nil to mean the empty set. The
// universe size is n. Both liveness and the paper's USED_CONSISTENCY
// consistency-repair analysis (§2.4) are instances of this problem.
func (sc *SolverScratch) Solve(blocks []*ir.Block, n int, gen, kill func(*ir.Block) *bitset.Set) (in, out []*bitset.Set) {
	nb := len(blocks)
	sc.slab.Reset(2*nb, n)
	sc.in = scratch.Grow(sc.in, nb)
	sc.out = scratch.Grow(sc.out, nb)
	for i := 0; i < nb; i++ {
		sc.in[i] = sc.slab.Set(i)
		sc.out[i] = sc.slab.Set(nb + i)
	}
	in, out = sc.in, sc.out

	// Initialize In(b) = Gen(b).
	for _, b := range blocks {
		if gen != nil {
			if g := gen(b); g != nil {
				in[b.Order].Copy(g)
			}
		}
	}
	// Worklist seeded in reverse layout order (approximates reverse
	// topological order, which converges fastest for backward problems).
	work := sc.work[:0]
	sc.inWork = scratch.GrowCleared(sc.inWork, nb)
	inWork := sc.inWork
	for i := nb - 1; i >= 0; i-- {
		work = append(work, blocks[i])
		inWork[blocks[i].Order] = true
	}
	sc.tmp.Reset(n)
	tmp := &sc.tmp
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.Order] = false

		o := out[b.Order]
		for _, s := range b.Succs {
			o.Union(in[s.Order])
		}
		// In(b) = Gen(b) ∪ (Out(b) − Kill(b))
		tmp.Copy(o)
		if kill != nil {
			if k := kill(b); k != nil {
				tmp.Subtract(k)
			}
		}
		if gen != nil {
			if g := gen(b); g != nil {
				tmp.Union(g)
			}
		}
		if !tmp.Equal(in[b.Order]) {
			in[b.Order].Copy(tmp)
			for _, pred := range b.Preds {
				if !inWork[pred.Order] {
					inWork[pred.Order] = true
					work = append(work, pred)
				}
			}
		}
	}
	// Clear the worklist's full capacity before pooling it: the tail
	// holds *ir.Block pointers from this solve that would otherwise pin
	// the procedure until the next one.
	work = work[:cap(work)]
	clear(work)
	sc.work = work[:0]
	return in, out
}

// SolveBackwardUnion is SolverScratch.Solve with throwaway storage; see
// that method for the problem statement.
func SolveBackwardUnion(blocks []*ir.Block, n int, gen, kill func(*ir.Block) *bitset.Set) (in, out []*bitset.Set) {
	return new(SolverScratch).Solve(blocks, n, gen, kill)
}

// Liveness holds the result of liveness analysis over a procedure's
// cross-block ("global") temporaries.
type Liveness struct {
	// Globals maps dense global index → temporary.
	Globals []ir.Temp
	// Index maps temporary → dense global index, or -1 for block-local
	// temporaries (which are never live across an edge).
	Index []int32
	// LiveIn/LiveOut are indexed by Block.Order over the global
	// universe.
	LiveIn  []*bitset.Set
	LiveOut []*bitset.Set
}

// NumGlobals returns the size of the cross-block universe.
func (lv *Liveness) NumGlobals() int { return len(lv.Globals) }

// GlobalIndex returns the dense index of t, or -1 if t is block-local.
func (lv *Liveness) GlobalIndex(t ir.Temp) int { return int(lv.Index[t]) }

// LiveOutTemps appends the temporaries live out of b to buf.
func (lv *Liveness) LiveOutTemps(b *ir.Block, buf []ir.Temp) []ir.Temp {
	lv.LiveOut[b.Order].ForEach(func(i int) { buf = append(buf, lv.Globals[i]) })
	return buf
}

// LiveInTemps appends the temporaries live into b to buf.
func (lv *Liveness) LiveInTemps(b *ir.Block, buf []ir.Temp) []ir.Temp {
	lv.LiveIn[b.Order].ForEach(func(i int) { buf = append(buf, lv.Globals[i]) })
	return buf
}

// Scratch holds the reusable working storage of liveness analysis: the
// Liveness tables themselves, the per-block Gen/Kill slab, and the
// solver. One scratch serves one goroutine; the Liveness a Compute
// returns is owned by the scratch and valid until the next Compute on
// it. The zero value is ready to use.
type Scratch struct {
	lv         Liveness
	defined    []bool
	dirty      []ir.Temp
	ubuf, dbuf []ir.Temp
	genKill    bitset.Slab
	gen, kill  []*bitset.Set
	solver     SolverScratch
}

// Compute runs liveness analysis into the scratch's pooled storage. The
// procedure must have been Renumber()ed so Block.Order indexes the
// layout slice.
func (sc *Scratch) Compute(p *ir.Proc) *Liveness {
	nt := p.NumTemps()
	lv := &sc.lv
	lv.Index = scratch.Grow(lv.Index, nt)
	for i := range lv.Index {
		lv.Index[i] = -1
	}
	lv.Globals = lv.Globals[:0]

	// Pass 1: find upward-exposed temporaries (the global universe).
	sc.defined = scratch.GrowCleared(sc.defined, nt)
	defined := sc.defined
	definedDirty := sc.dirty[:0]
	ubuf, dbuf := sc.ubuf, sc.dbuf
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			ubuf = in.UseTemps(ubuf[:0])
			for _, t := range ubuf {
				if !defined[t] && lv.Index[t] < 0 {
					lv.Index[t] = int32(len(lv.Globals))
					lv.Globals = append(lv.Globals, t)
				}
			}
			dbuf = in.DefTemps(dbuf[:0])
			for _, t := range dbuf {
				if !defined[t] {
					defined[t] = true
					definedDirty = append(definedDirty, t)
				}
			}
		}
		for _, t := range definedDirty {
			defined[t] = false
		}
		definedDirty = definedDirty[:0]
	}
	sc.dirty = definedDirty

	n := len(lv.Globals)

	// Pass 2: per-block UEVar (gen) and VarKill (kill) over globals.
	nb := len(p.Blocks)
	sc.genKill.Reset(2*nb, n)
	sc.gen = scratch.Grow(sc.gen, nb)
	sc.kill = scratch.Grow(sc.kill, nb)
	for _, b := range p.Blocks {
		g := sc.genKill.Set(b.Order)
		k := sc.genKill.Set(nb + b.Order)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			ubuf = in.UseTemps(ubuf[:0])
			for _, t := range ubuf {
				if gi := lv.Index[t]; gi >= 0 && !k.Contains(int(gi)) {
					g.Add(int(gi))
				}
			}
			dbuf = in.DefTemps(dbuf[:0])
			for _, t := range dbuf {
				if gi := lv.Index[t]; gi >= 0 {
					k.Add(int(gi))
				}
			}
		}
		sc.gen[b.Order] = g
		sc.kill[b.Order] = k
	}
	sc.ubuf, sc.dbuf = ubuf, dbuf

	lv.LiveIn, lv.LiveOut = sc.solver.Solve(p.Blocks, n,
		func(b *ir.Block) *bitset.Set { return sc.gen[b.Order] },
		func(b *ir.Block) *bitset.Set { return sc.kill[b.Order] })
	return lv
}

// Compute runs liveness analysis with throwaway storage. The procedure
// must have been Renumber()ed so Block.Order indexes the layout slice.
func Compute(p *ir.Proc) *Liveness {
	return new(Scratch).Compute(p)
}
