// Package dataflow implements iterative bit-vector dataflow over ir CFGs,
// and the liveness analysis both allocators consume.
//
// As in the paper (§3), temporaries that are live only within a single
// basic block are excluded from the bit vectors: "temporaries that are
// live only within a single basic block are excluded from dataflow
// analysis, which greatly reduces bit vector sizes". A temporary can be
// live across an edge only if some block reads it before writing it
// (upward exposure), so the global universe is exactly the set of
// upward-exposed temporaries.
package dataflow

import (
	"repro/internal/bitset"
	"repro/internal/ir"
)

// SolveBackwardUnion solves the classic backward union problem
//
//	Out(b) = ⋃_{s ∈ succ(b)} In(s)
//	In(b)  = Gen(b) ∪ (Out(b) − Kill(b))
//
// over the given blocks with a worklist, and returns In and Out indexed
// by Block.Order. gen and kill may be nil to mean the empty set. The
// universe size is n. Both liveness and the paper's USED_CONSISTENCY
// consistency-repair analysis (§2.4) are instances of this problem.
func SolveBackwardUnion(blocks []*ir.Block, n int, gen, kill func(*ir.Block) *bitset.Set) (in, out []*bitset.Set) {
	nb := len(blocks)
	in = make([]*bitset.Set, nb)
	out = make([]*bitset.Set, nb)
	for i := range blocks {
		in[i] = bitset.New(n)
		out[i] = bitset.New(n)
	}
	// Initialize In(b) = Gen(b).
	for _, b := range blocks {
		if gen != nil {
			if g := gen(b); g != nil {
				in[b.Order].Copy(g)
			}
		}
	}
	// Worklist seeded in reverse layout order (approximates reverse
	// topological order, which converges fastest for backward problems).
	work := make([]*ir.Block, 0, nb)
	inWork := make([]bool, nb)
	for i := nb - 1; i >= 0; i-- {
		work = append(work, blocks[i])
		inWork[blocks[i].Order] = true
	}
	tmp := bitset.New(n)
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.Order] = false

		o := out[b.Order]
		changedOut := false
		for _, s := range b.Succs {
			if o.Union(in[s.Order]) {
				changedOut = true
			}
		}
		_ = changedOut
		// In(b) = Gen(b) ∪ (Out(b) − Kill(b))
		tmp.Copy(o)
		if kill != nil {
			if k := kill(b); k != nil {
				tmp.Subtract(k)
			}
		}
		if gen != nil {
			if g := gen(b); g != nil {
				tmp.Union(g)
			}
		}
		if !tmp.Equal(in[b.Order]) {
			in[b.Order].Copy(tmp)
			for _, pred := range b.Preds {
				if !inWork[pred.Order] {
					inWork[pred.Order] = true
					work = append(work, pred)
				}
			}
		}
	}
	return in, out
}

// Liveness holds the result of liveness analysis over a procedure's
// cross-block ("global") temporaries.
type Liveness struct {
	// Globals maps dense global index → temporary.
	Globals []ir.Temp
	// Index maps temporary → dense global index, or -1 for block-local
	// temporaries (which are never live across an edge).
	Index []int32
	// LiveIn/LiveOut are indexed by Block.Order over the global
	// universe.
	LiveIn  []*bitset.Set
	LiveOut []*bitset.Set
}

// NumGlobals returns the size of the cross-block universe.
func (lv *Liveness) NumGlobals() int { return len(lv.Globals) }

// GlobalIndex returns the dense index of t, or -1 if t is block-local.
func (lv *Liveness) GlobalIndex(t ir.Temp) int { return int(lv.Index[t]) }

// LiveOutTemps appends the temporaries live out of b to buf.
func (lv *Liveness) LiveOutTemps(b *ir.Block, buf []ir.Temp) []ir.Temp {
	lv.LiveOut[b.Order].ForEach(func(i int) { buf = append(buf, lv.Globals[i]) })
	return buf
}

// LiveInTemps appends the temporaries live into b to buf.
func (lv *Liveness) LiveInTemps(b *ir.Block, buf []ir.Temp) []ir.Temp {
	lv.LiveIn[b.Order].ForEach(func(i int) { buf = append(buf, lv.Globals[i]) })
	return buf
}

// Compute runs liveness analysis. The procedure must have been
// Renumber()ed so Block.Order indexes the layout slice.
func Compute(p *ir.Proc) *Liveness {
	nt := p.NumTemps()
	lv := &Liveness{Index: make([]int32, nt)}
	for i := range lv.Index {
		lv.Index[i] = -1
	}

	// Pass 1: find upward-exposed temporaries (the global universe).
	var ubuf, dbuf []ir.Temp
	defined := make([]bool, nt)
	definedDirty := []ir.Temp{}
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			ubuf = in.UseTemps(ubuf[:0])
			for _, t := range ubuf {
				if !defined[t] && lv.Index[t] < 0 {
					lv.Index[t] = int32(len(lv.Globals))
					lv.Globals = append(lv.Globals, t)
				}
			}
			dbuf = in.DefTemps(dbuf[:0])
			for _, t := range dbuf {
				if !defined[t] {
					defined[t] = true
					definedDirty = append(definedDirty, t)
				}
			}
		}
		for _, t := range definedDirty {
			defined[t] = false
		}
		definedDirty = definedDirty[:0]
	}

	n := len(lv.Globals)

	// Pass 2: per-block UEVar (gen) and VarKill (kill) over globals.
	nb := len(p.Blocks)
	gen := make([]*bitset.Set, nb)
	kill := make([]*bitset.Set, nb)
	for _, b := range p.Blocks {
		g := bitset.New(n)
		k := bitset.New(n)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			ubuf = in.UseTemps(ubuf[:0])
			for _, t := range ubuf {
				if gi := lv.Index[t]; gi >= 0 && !k.Contains(int(gi)) {
					g.Add(int(gi))
				}
			}
			dbuf = in.DefTemps(dbuf[:0])
			for _, t := range dbuf {
				if gi := lv.Index[t]; gi >= 0 {
					k.Add(int(gi))
				}
			}
		}
		gen[b.Order] = g
		kill[b.Order] = k
	}

	lv.LiveIn, lv.LiveOut = SolveBackwardUnion(p.Blocks, n,
		func(b *ir.Block) *bitset.Set { return gen[b.Order] },
		func(b *ir.Block) *bitset.Set { return kill[b.Order] })
	return lv
}
