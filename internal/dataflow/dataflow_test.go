package dataflow

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/bitset"
	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/target"
)

// buildLoop constructs a loop where `acc` is live around the back edge,
// `n` is live from entry, and `tmp` is block-local.
func buildLoop(t *testing.T) (*ir.Proc, map[string]ir.Temp) {
	t.Helper()
	b := ir.NewBuilder(target.Tiny(6, 3), 8)
	pb := b.NewProc("main")
	n := pb.IntTemp("n")
	acc := pb.IntTemp("acc")
	i := pb.IntTemp("i")
	pb.Ldi(n, 10)
	pb.Ldi(acc, 0)
	pb.Ldi(i, 0)

	head := pb.Block("head")
	body := pb.Block("body")
	exit := pb.Block("exit")
	pb.Jmp(head)

	pb.StartBlock(head)
	c := pb.IntTemp("c")
	pb.Op2(ir.CmpLT, c, ir.TempOp(i), ir.TempOp(n))
	pb.Br(ir.TempOp(c), body, exit)

	pb.StartBlock(body)
	tmp := pb.IntTemp("tmp")
	pb.Op2(ir.Mul, tmp, ir.TempOp(i), ir.TempOp(i))
	pb.Op2(ir.Add, acc, ir.TempOp(acc), ir.TempOp(tmp))
	pb.Op2(ir.Add, i, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(head)

	pb.StartBlock(exit)
	pb.Ret(acc)

	pb.P.Renumber()
	return pb.P, map[string]ir.Temp{"n": n, "acc": acc, "i": i, "tmp": tmp, "c": c}
}

func blockByName(p *ir.Proc, name string) *ir.Block {
	for _, b := range p.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func TestLivenessLoop(t *testing.T) {
	p, temps := buildLoop(t)
	lv := Compute(p)

	// tmp and c are block-local: excluded from the global universe.
	if lv.GlobalIndex(temps["tmp"]) >= 0 {
		t.Fatal("block-local tmp in global universe")
	}
	if lv.GlobalIndex(temps["c"]) >= 0 {
		t.Fatal("block-local c in global universe")
	}
	// n, acc, i are global.
	for _, name := range []string{"n", "acc", "i"} {
		if lv.GlobalIndex(temps[name]) < 0 {
			t.Fatalf("%s missing from global universe", name)
		}
	}

	head := blockByName(p, "head")
	body := blockByName(p, "body")
	exit := blockByName(p, "exit")

	liveIn := func(b *ir.Block, tmp ir.Temp) bool {
		gi := lv.GlobalIndex(tmp)
		return gi >= 0 && lv.LiveIn[b.Order].Contains(gi)
	}
	liveOut := func(b *ir.Block, tmp ir.Temp) bool {
		gi := lv.GlobalIndex(tmp)
		return gi >= 0 && lv.LiveOut[b.Order].Contains(gi)
	}

	if !liveIn(head, temps["acc"]) || !liveIn(head, temps["n"]) || !liveIn(head, temps["i"]) {
		t.Fatal("loop-carried values must be live into the loop head")
	}
	if !liveOut(body, temps["acc"]) {
		t.Fatal("acc must be live out of the loop body (back edge)")
	}
	if !liveIn(exit, temps["acc"]) {
		t.Fatal("acc must be live into exit (returned)")
	}
	if liveIn(exit, temps["n"]) {
		t.Fatal("n must be dead at exit")
	}
	if liveOut(exit, temps["acc"]) {
		t.Fatal("nothing is live out of a returning block")
	}
}

func TestLiveOutTempsHelpers(t *testing.T) {
	p, temps := buildLoop(t)
	lv := Compute(p)
	body := blockByName(p, "body")
	outs := lv.LiveOutTemps(body, nil)
	found := false
	for _, tt := range outs {
		if tt == temps["acc"] {
			found = true
		}
	}
	if !found {
		t.Fatal("LiveOutTemps missing acc")
	}
	ins := lv.LiveInTemps(body, nil)
	if len(ins) == 0 {
		t.Fatal("LiveInTemps empty for body")
	}
}

// TestSolverFixpoint checks the generic backward solver on a handcrafted
// gen/kill instance against manually computed results.
func TestSolverFixpoint(t *testing.T) {
	p, _ := buildLoop(t)
	n := 2
	gen := make([]*bitset.Set, len(p.Blocks))
	kill := make([]*bitset.Set, len(p.Blocks))
	for _, b := range p.Blocks {
		gen[b.Order] = bitset.New(n)
		kill[b.Order] = bitset.New(n)
	}
	// bit 0 generated in exit; killed in body. bit 1 generated in body.
	gen[blockByName(p, "exit").Order].Add(0)
	kill[blockByName(p, "body").Order].Add(0)
	gen[blockByName(p, "body").Order].Add(1)

	in, out := SolveBackwardUnion(p.Blocks, n,
		func(b *ir.Block) *bitset.Set { return gen[b.Order] },
		func(b *ir.Block) *bitset.Set { return kill[b.Order] })

	head := blockByName(p, "head")
	// head's out = in(body) ∪ in(exit). in(exit) = {0}; in(body) = {1}
	// (bit 0 killed there, bit 1 generated).
	if !out[head.Order].Contains(0) || !out[head.Order].Contains(1) {
		t.Fatalf("out(head) = %v, want {0 1}", out[head.Order])
	}
	// in(body) must not contain bit 0 (killed locally, regenerated
	// nowhere upstream of its use).
	if in[blockByName(p, "body").Order].Contains(0) {
		t.Fatal("kill not applied")
	}
	// Entry's in propagates everything live at head.
	if !in[p.Entry().Order].Contains(0) || !in[p.Entry().Order].Contains(1) {
		t.Fatalf("in(entry) = %v", in[p.Entry().Order])
	}
}

func TestUninitializedUseIsUpwardExposed(t *testing.T) {
	b := ir.NewBuilder(target.Tiny(6, 3), 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x") // never defined
	y := pb.IntTemp("y")
	pb.Op2(ir.Add, y, ir.TempOp(x), ir.ImmOp(1))
	pb.Ret(y)
	pb.P.Renumber()
	lv := Compute(pb.P)
	if lv.GlobalIndex(x) < 0 {
		t.Fatal("use-before-def temp must be in the global universe")
	}
	if !lv.LiveIn[pb.P.Entry().Order].Contains(lv.GlobalIndex(x)) {
		t.Fatal("uninitialized use must be live into entry")
	}
}

// sparseLiveness is a deliberately naive reference implementation: full
// per-block map-based liveness over every temporary, no global-universe
// restriction, no bit vectors — the "old sparse" formulation the dense
// implementation replaced. Equivalence on arbitrary programs is the
// correctness contract of the dense path (the §3 exclusion of
// block-local temporaries must not change any cross-edge fact).
func sparseLiveness(p *ir.Proc) (in, out []map[ir.Temp]bool) {
	nb := len(p.Blocks)
	in = make([]map[ir.Temp]bool, nb)
	out = make([]map[ir.Temp]bool, nb)
	gen := make([]map[ir.Temp]bool, nb)
	kill := make([]map[ir.Temp]bool, nb)
	var ubuf, dbuf []ir.Temp
	for i, b := range p.Blocks {
		in[i] = map[ir.Temp]bool{}
		out[i] = map[ir.Temp]bool{}
		g, k := map[ir.Temp]bool{}, map[ir.Temp]bool{}
		for j := range b.Instrs {
			instr := &b.Instrs[j]
			for _, t := range instr.UseTemps(ubuf[:0]) {
				if !k[t] {
					g[t] = true
				}
			}
			for _, t := range instr.DefTemps(dbuf[:0]) {
				k[t] = true
			}
		}
		gen[i], kill[i] = g, k
	}
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := p.Blocks[i]
			for _, s := range b.Succs {
				for t := range in[s.Order] {
					if !out[i][t] {
						out[i][t] = true
						changed = true
					}
				}
			}
			for t := range out[i] {
				if !kill[i][t] && !in[i][t] {
					in[i][t] = true
					changed = true
				}
			}
			for t := range gen[i] {
				if !in[i][t] {
					in[i][t] = true
					changed = true
				}
			}
		}
	}
	return in, out
}

func sortedTemps(m map[ir.Temp]bool) []ir.Temp {
	ts := make([]ir.Temp, 0, len(m))
	for t := range m {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

func tempsEqual(a, b []ir.Temp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDenseMatchesSparseOnRandomCorpus checks, over the random-program
// corpus, that the dense bitset implementation — including one shared
// Scratch reused across every procedure, the engine's pooling pattern —
// produces exactly the per-block live-in/live-out temp sets of the
// sparse reference.
func TestDenseMatchesSparseOnRandomCorpus(t *testing.T) {
	mach := target.Tiny(6, 4)
	var shared Scratch
	var buf []ir.Temp
	for seed := int64(0); seed < 8; seed++ {
		cfg := progs.DefaultGen(seed)
		if seed%2 == 1 {
			cfg.MaxDepth = 4
			cfg.Stmts = 90
		}
		prog := progs.Random(mach, cfg)
		for _, p := range prog.Procs {
			p := p.Clone()
			p.Renumber()
			sIn, sOut := sparseLiveness(p)
			sortTemps := func(ts []ir.Temp) []ir.Temp {
				sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
				return ts
			}
			for pass, lv := range []*Liveness{Compute(p), shared.Compute(p)} {
				name := fmt.Sprintf("seed %d proc %s pass %d", seed, p.Name, pass)
				for _, b := range p.Blocks {
					if got, want := sortTemps(lv.LiveInTemps(b, buf[:0])), sortedTemps(sIn[b.Order]); !tempsEqual(got, want) {
						t.Fatalf("%s block %s: live-in dense %v sparse %v", name, b.Name, got, want)
					}
					if got, want := sortTemps(lv.LiveOutTemps(b, buf[:0])), sortedTemps(sOut[b.Order]); !tempsEqual(got, want) {
						t.Fatalf("%s block %s: live-out dense %v sparse %v", name, b.Name, got, want)
					}
				}
			}
		}
	}
}
