package progs

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/target"
)

// Benchmark is one entry of the experimental suite. Build constructs the
// program for a machine at a scale factor (1 = the default used by the
// experiment tables; tests use smaller scales). Input produces the byte
// stream consumed via the getc intrinsic, when the workload reads input.
type Benchmark struct {
	Name string
	// Desc summarizes what property of the paper's benchmark the
	// synthetic workload reproduces.
	Desc         string
	Build        func(mach *target.Machine, scale int) *ir.Program
	Input        func(scale int) []byte
	DefaultScale int
	// SpillFree marks benchmarks the paper reports as having no spill
	// code under either allocator (Table 2).
	SpillFree bool
}

// Suite returns the eleven benchmarks in Table 1 order: alvinn, doduc,
// eqntott, espresso, fpppp, li, tomcatv, compress, m88ksim, sort, wc.
func Suite() []*Benchmark {
	return []*Benchmark{
		{Name: "alvinn", Desc: "neural-net training: FP dot products in tight loops, low pressure",
			Build: BuildAlvinn, DefaultScale: 60, SpillFree: true},
		{Name: "doduc", Desc: "Monte-Carlo reactor kernel: branchy FP with many medium lifetimes and calls",
			Build: BuildDoduc, DefaultScale: 40},
		{Name: "eqntott", Desc: "PLA minimization dominated by cmppt(): tiny hot compare loop",
			Build: BuildEqntott, DefaultScale: 120},
		{Name: "espresso", Desc: "two-level logic minimizer: bit-twiddling over cube arrays, branchy integer code",
			Build: BuildEspresso, DefaultScale: 50},
		{Name: "fpppp", Desc: "two-electron integrals: enormous straight-line FP blocks, extreme pressure",
			Build: BuildFpppp, DefaultScale: 30},
		{Name: "li", Desc: "lisp interpreter: call-heavy list walking and dispatch",
			Build: BuildLi, DefaultScale: 40, SpillFree: true},
		{Name: "tomcatv", Desc: "mesh generation: FP stencil over 2-D grids in nested loops",
			Build: BuildTomcatv, DefaultScale: 20, SpillFree: true},
		{Name: "compress", Desc: "LZW compression: hash-table loop over input bytes",
			Build: BuildCompress, Input: textInput, DefaultScale: 60, SpillFree: true},
		{Name: "m88ksim", Desc: "CPU simulator: fetch/decode/execute dispatch loop",
			Build: BuildM88ksim, DefaultScale: 60},
		{Name: "sort", Desc: "UNIX sort: comparison sorting with a partition inner loop",
			Build: BuildSort, DefaultScale: 25},
		{Name: "wc", Desc: "word count: getc loop with many values live across the I/O call",
			Build: BuildWC, Input: textInput, DefaultScale: 60, SpillFree: true},
	}
}

// Named returns the benchmark with the given name, or nil.
func Named(name string) *Benchmark {
	for _, b := range Suite() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// textInput synthesizes deterministic "prose" for the byte-consuming
// benchmarks.
func textInput(scale int) []byte {
	rng := rand.New(rand.NewSource(7))
	n := 64 * scale
	out := make([]byte, 0, n)
	for len(out) < n {
		wl := 1 + rng.Intn(9)
		for i := 0; i < wl; i++ {
			out = append(out, byte('a'+rng.Intn(26)))
		}
		switch rng.Intn(8) {
		case 0:
			out = append(out, '\n')
		default:
			out = append(out, ' ')
		}
	}
	return out[:n]
}

// --- alvinn ---------------------------------------------------------------

// BuildAlvinn models back-propagation training: repeated dot products of
// a weight row against an input activation vector, with a weight update.
// Few FP temporaries are simultaneously live, so no allocator spills.
func BuildAlvinn(mach *target.Machine, scale int) *ir.Program {
	const inputs = 32
	weightsAt, actsAt := int64(0), int64(inputs)
	b := ir.NewBuilder(mach, 2*inputs+8)
	for i := 0; i < inputs; i++ {
		b.Prog.SetMemF(i, 0.01*float64(i%13)+0.1)
		b.Prog.SetMemF(inputs+i, 0.05*float64(i%7)+0.2)
	}
	pb := b.NewProc("main")

	epochs := pb.IntTemp("epochs")
	pb.Ldi(epochs, int64(scale))
	e := pb.IntTemp("e")
	pb.Ldi(e, 0)
	acc := pb.FloatTemp("acc")
	pb.FLdi(acc, 0)

	eHead := pb.Block("epoch_head")
	eBody := pb.Block("epoch_body")
	iHead := pb.Block("dot_head")
	iBody := pb.Block("dot_body")
	iDone := pb.Block("dot_done")
	done := pb.Block("done")

	pb.Jmp(eHead)
	pb.StartBlock(eHead)
	c := pb.IntTemp("")
	pb.Op2(ir.CmpLT, c, ir.TempOp(e), ir.TempOp(epochs))
	pb.Br(ir.TempOp(c), eBody, done)

	pb.StartBlock(eBody)
	i := pb.IntTemp("i")
	sum := pb.FloatTemp("sum")
	pb.Ldi(i, 0)
	pb.FLdi(sum, 0)
	pb.Jmp(iHead)

	pb.StartBlock(iHead)
	ci := pb.IntTemp("")
	pb.Op2(ir.CmpLT, ci, ir.TempOp(i), ir.ImmOp(inputs))
	pb.Br(ir.TempOp(ci), iBody, iDone)

	pb.StartBlock(iBody)
	w := pb.FloatTemp("w")
	a := pb.FloatTemp("a")
	prod := pb.FloatTemp("prod")
	pb.FLd(w, ir.TempOp(i), weightsAt)
	pb.FLd(a, ir.TempOp(i), actsAt)
	pb.Op2(ir.FMul, prod, ir.TempOp(w), ir.TempOp(a))
	pb.Op2(ir.FAdd, sum, ir.TempOp(sum), ir.TempOp(prod))
	// Weight update: w += 0.001 * a (back-propagation step).
	delta := pb.FloatTemp("delta")
	pb.Op2(ir.FMul, delta, ir.TempOp(a), ir.FImmOp(0.001))
	pb.Op2(ir.FAdd, w, ir.TempOp(w), ir.TempOp(delta))
	pb.FSt(ir.TempOp(w), ir.TempOp(i), weightsAt)
	pb.Op2(ir.Add, i, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(iHead)

	pb.StartBlock(iDone)
	pb.Op2(ir.FAdd, acc, ir.TempOp(acc), ir.TempOp(sum))
	pb.Op2(ir.Add, e, ir.TempOp(e), ir.ImmOp(1))
	pb.Jmp(eHead)

	pb.StartBlock(done)
	pb.Call("putf", ir.NoTemp, ir.TempOp(acc))
	ret := pb.IntTemp("ret")
	pb.Op1(ir.CvtFI, ret, ir.TempOp(acc))
	pb.Ret(ret)
	return b.Prog
}

// --- doduc -----------------------------------------------------------------

// BuildDoduc models the Monte-Carlo kernel: a loop with a pseudo-random
// draw, a branchy region with a dozen live FP quantities, and square-root
// calls — enough medium-length lifetimes that both allocators spill a
// little.
func BuildDoduc(mach *target.Machine, scale int) *ir.Program {
	b := ir.NewBuilder(mach, 64)
	pb := b.NewProc("main")

	const nq = 8
	qs := make([]ir.Temp, nq)
	for i := range qs {
		qs[i] = pb.FloatTemp(fmt.Sprintf("q%d", i))
		pb.FLdi(qs[i], 1.0+float64(i)*0.25)
	}
	seed := pb.IntTemp("seed")
	pb.Ldi(seed, 12345)
	n := pb.IntTemp("n")
	pb.Ldi(n, int64(scale*8))
	i := pb.IntTemp("i")
	pb.Ldi(i, 0)

	head := pb.Block("head")
	body := pb.Block("body")
	hot := pb.Block("hot")
	cold := pb.Block("cold")
	join := pb.Block("join")
	done := pb.Block("done")

	pb.Jmp(head)
	pb.StartBlock(head)
	c := pb.IntTemp("")
	pb.Op2(ir.CmpLT, c, ir.TempOp(i), ir.TempOp(n))
	pb.Br(ir.TempOp(c), body, done)

	pb.StartBlock(body)
	// Linear congruential draw.
	pb.Op2(ir.Mul, seed, ir.TempOp(seed), ir.ImmOp(1103515245))
	pb.Op2(ir.Add, seed, ir.TempOp(seed), ir.ImmOp(12345))
	pb.Op2(ir.And, seed, ir.TempOp(seed), ir.ImmOp(0x7fffffff))
	bit := pb.IntTemp("bit")
	pb.Op2(ir.And, bit, ir.TempOp(seed), ir.ImmOp(1))
	pb.Br(ir.TempOp(bit), hot, cold)

	rare := pb.Block("rare")
	pb.StartBlock(hot)
	// Neutron collision: recombine all quantities pairwise.
	for k := 0; k+1 < nq; k += 2 {
		t := pb.FloatTemp("")
		pb.Op2(ir.FMul, t, ir.TempOp(qs[k]), ir.TempOp(qs[k+1]))
		pb.Op2(ir.FAdd, qs[k], ir.TempOp(qs[k]), ir.TempOp(t))
		pb.Op2(ir.FMul, qs[k], ir.TempOp(qs[k]), ir.FImmOp(0.75))
	}
	// A square-root boundary crossing on a small fraction of the
	// iterations, so only light spill traffic arises around the call
	// (the paper reports ≈0.5% spill overhead for doduc).
	rareBit := pb.IntTemp("")
	pb.Op2(ir.And, rareBit, ir.TempOp(seed), ir.ImmOp(7))
	pb.Op2(ir.CmpEQ, rareBit, ir.TempOp(rareBit), ir.ImmOp(0))
	pb.Br(ir.TempOp(rareBit), rare, join)

	pb.StartBlock(rare)
	sq := pb.FloatTemp("sq")
	arg := pb.FloatTemp("")
	pb.Op2(ir.FMul, arg, ir.TempOp(qs[0]), ir.TempOp(qs[0]))
	pb.Call("fsqrt", sq, ir.TempOp(arg))
	pb.Op2(ir.FAdd, qs[1], ir.TempOp(qs[1]), ir.TempOp(sq))
	pb.Jmp(join)

	pb.StartBlock(cold)
	for k := 1; k+1 < nq; k += 2 {
		t := pb.FloatTemp("")
		pb.Op2(ir.FSub, t, ir.TempOp(qs[k]), ir.TempOp(qs[k+1]))
		pb.Op2(ir.FMul, qs[k], ir.TempOp(t), ir.FImmOp(0.5))
		pb.Op2(ir.FAdd, qs[k], ir.TempOp(qs[k]), ir.FImmOp(1.0))
	}
	pb.Jmp(join)

	pb.StartBlock(join)
	// Damp everything so values stay finite.
	for k := 0; k < nq; k++ {
		pb.Op2(ir.FMul, qs[k], ir.TempOp(qs[k]), ir.FImmOp(0.9))
		pb.Op2(ir.FAdd, qs[k], ir.TempOp(qs[k]), ir.FImmOp(0.125))
	}
	pb.Op2(ir.Add, i, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(head)

	pb.StartBlock(done)
	total := pb.FloatTemp("total")
	pb.FLdi(total, 0)
	for k := 0; k < nq; k++ {
		pb.Op2(ir.FAdd, total, ir.TempOp(total), ir.TempOp(qs[k]))
	}
	pb.Call("putf", ir.NoTemp, ir.TempOp(total))
	ret := pb.IntTemp("ret")
	pb.Op1(ir.CvtFI, ret, ir.TempOp(total))
	pb.Ret(ret)
	return b.Prog
}

// --- eqntott ---------------------------------------------------------------

// BuildEqntott models cmppt(): virtually all time in one tiny compare
// loop over two arrays, with very few temporaries — the workload where
// every allocator, including two-pass binpacking, performs identically.
func BuildEqntott(mach *target.Machine, scale int) *ir.Program {
	const width = 64
	b := ir.NewBuilder(mach, 2*width)
	for i := 0; i < width; i++ {
		b.Prog.SetMem(i, int64((i*7)%5))
		b.Prog.SetMem(width+i, int64((i*7+i/9)%5))
	}
	pb := b.NewProc("main")

	reps := pb.IntTemp("reps")
	pb.Ldi(reps, int64(scale*4))
	r := pb.IntTemp("r")
	pb.Ldi(r, 0)
	result := pb.IntTemp("result")
	pb.Ldi(result, 0)

	rHead := pb.Block("rep_head")
	rBody := pb.Block("rep_body")
	cHead := pb.Block("cmp_head")
	cBody := pb.Block("cmp_body")
	neq := pb.Block("neq")
	cNext := pb.Block("cmp_next")
	cDone := pb.Block("cmp_done")
	done := pb.Block("done")

	pb.Jmp(rHead)
	pb.StartBlock(rHead)
	c := pb.IntTemp("")
	pb.Op2(ir.CmpLT, c, ir.TempOp(r), ir.TempOp(reps))
	pb.Br(ir.TempOp(c), rBody, done)

	pb.StartBlock(rBody)
	i := pb.IntTemp("i")
	diff := pb.IntTemp("diff")
	pb.Ldi(i, 0)
	pb.Ldi(diff, 0)
	pb.Jmp(cHead)

	pb.StartBlock(cHead)
	ci := pb.IntTemp("")
	pb.Op2(ir.CmpLT, ci, ir.TempOp(i), ir.ImmOp(width))
	pb.Br(ir.TempOp(ci), cBody, cDone)

	pb.StartBlock(cBody)
	a := pb.IntTemp("a")
	bb := pb.IntTemp("b")
	pb.Ld(a, ir.TempOp(i), 0)
	pb.Ld(bb, ir.TempOp(i), width)
	ne := pb.IntTemp("")
	pb.Op2(ir.CmpNE, ne, ir.TempOp(a), ir.TempOp(bb))
	pb.Br(ir.TempOp(ne), neq, cNext)

	pb.StartBlock(neq)
	d := pb.IntTemp("")
	pb.Op2(ir.Sub, d, ir.TempOp(a), ir.TempOp(bb))
	pb.Op2(ir.Add, diff, ir.TempOp(diff), ir.TempOp(d))
	pb.Jmp(cNext)

	pb.StartBlock(cNext)
	pb.Op2(ir.Add, i, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(cHead)

	pb.StartBlock(cDone)
	pb.Op2(ir.Xor, result, ir.TempOp(result), ir.TempOp(diff))
	pb.Op2(ir.Add, r, ir.TempOp(r), ir.ImmOp(1))
	pb.Jmp(rHead)

	pb.StartBlock(done)
	pb.Call("puti", ir.NoTemp, ir.TempOp(result))
	pb.Ret(result)
	return b.Prog
}

// --- espresso ---------------------------------------------------------------

// BuildEspresso models cube-cover manipulation: integer bit tricks over
// an array with data-dependent branches; enough short integer lifetimes
// that binpacking emits a little resolution code.
func BuildEspresso(mach *target.Machine, scale int) *ir.Program {
	const cubes = 48
	b := ir.NewBuilder(mach, cubes+8)
	for i := 0; i < cubes; i++ {
		b.Prog.SetMem(i, int64(i*2654435761)%1048573)
	}
	pb := b.NewProc("main")

	passes := pb.IntTemp("passes")
	pb.Ldi(passes, int64(scale))
	p := pb.IntTemp("p")
	pb.Ldi(p, 0)
	cover := pb.IntTemp("cover")
	pb.Ldi(cover, 0)
	ones := pb.IntTemp("ones")
	pb.Ldi(ones, 0)

	pHead := pb.Block("pass_head")
	pBody := pb.Block("pass_body")
	iHead := pb.Block("cube_head")
	iBody := pb.Block("cube_body")
	sparse := pb.Block("sparse")
	dense := pb.Block("dense")
	iNext := pb.Block("cube_next")
	iDone := pb.Block("cube_done")
	done := pb.Block("done")

	pb.Jmp(pHead)
	pb.StartBlock(pHead)
	c := pb.IntTemp("")
	pb.Op2(ir.CmpLT, c, ir.TempOp(p), ir.TempOp(passes))
	pb.Br(ir.TempOp(c), pBody, done)

	pb.StartBlock(pBody)
	i := pb.IntTemp("i")
	pb.Ldi(i, 0)
	pb.Jmp(iHead)

	pb.StartBlock(iHead)
	ci := pb.IntTemp("")
	pb.Op2(ir.CmpLT, ci, ir.TempOp(i), ir.ImmOp(cubes))
	pb.Br(ir.TempOp(ci), iBody, iDone)

	pb.StartBlock(iBody)
	cube := pb.IntTemp("cube")
	pb.Ld(cube, ir.TempOp(i), 0)
	// Population-count-flavoured bit mangling.
	t1 := pb.IntTemp("t1")
	t2 := pb.IntTemp("t2")
	t3 := pb.IntTemp("t3")
	pb.Op2(ir.Shr, t1, ir.TempOp(cube), ir.ImmOp(1))
	pb.Op2(ir.And, t1, ir.TempOp(t1), ir.ImmOp(0x55555555))
	pb.Op2(ir.Sub, t2, ir.TempOp(cube), ir.TempOp(t1))
	pb.Op2(ir.And, t3, ir.TempOp(t2), ir.ImmOp(0x33333333))
	pb.Op2(ir.Shr, t2, ir.TempOp(t2), ir.ImmOp(2))
	pb.Op2(ir.And, t2, ir.TempOp(t2), ir.ImmOp(0x33333333))
	pb.Op2(ir.Add, t3, ir.TempOp(t3), ir.TempOp(t2))
	pb.Op2(ir.And, t3, ir.TempOp(t3), ir.ImmOp(63))
	low := pb.IntTemp("")
	pb.Op2(ir.CmpLT, low, ir.TempOp(t3), ir.ImmOp(8))
	pb.Br(ir.TempOp(low), sparse, dense)

	pb.StartBlock(sparse)
	pb.Op2(ir.Or, cover, ir.TempOp(cover), ir.TempOp(cube))
	pb.Op2(ir.Add, ones, ir.TempOp(ones), ir.TempOp(t3))
	pb.Jmp(iNext)

	pb.StartBlock(dense)
	inv := pb.IntTemp("inv")
	pb.Op1(ir.Not, inv, ir.TempOp(cube))
	pb.Op2(ir.And, inv, ir.TempOp(inv), ir.ImmOp(0xffffff))
	pb.Op2(ir.Xor, cover, ir.TempOp(cover), ir.TempOp(inv))
	pb.St(ir.TempOp(inv), ir.TempOp(i), 0)
	pb.Jmp(iNext)

	pb.StartBlock(iNext)
	pb.Op2(ir.Add, i, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(iHead)

	pb.StartBlock(iDone)
	pb.Op2(ir.Add, p, ir.TempOp(p), ir.ImmOp(1))
	pb.Jmp(pHead)

	pb.StartBlock(done)
	pb.Op2(ir.Xor, cover, ir.TempOp(cover), ir.TempOp(ones))
	pb.Call("puti", ir.NoTemp, ir.TempOp(cover))
	pb.Ret(cover)
	return b.Prog
}

// --- fpppp -----------------------------------------------------------------

// BuildFpppp models the two-electron integral kernel: enormous
// straight-line floating-point blocks where dozens of values are live at
// once — far beyond the register file — so both allocators insert a lot
// of spill code (the paper reports 18.6%/13.4% dynamic spill overhead).
// The block is generated pseudo-randomly but deterministically.
func BuildFpppp(mach *target.Machine, scale int) *ir.Program {
	const vals = 56 // simultaneously-live values in the big block
	b := ir.NewBuilder(mach, vals+8)
	for i := 0; i < vals; i++ {
		b.Prog.SetMemF(i, 0.5+float64(i%17)*0.125)
	}
	pb := b.NewProc("main")
	rng := rand.New(rand.NewSource(99))

	n := pb.IntTemp("n")
	pb.Ldi(n, int64(scale))
	it := pb.IntTemp("it")
	pb.Ldi(it, 0)
	acc := pb.FloatTemp("acc")
	pb.FLdi(acc, 0)

	head := pb.Block("head")
	body := pb.Block("body")
	done := pb.Block("done")

	pb.Jmp(head)
	pb.StartBlock(head)
	c := pb.IntTemp("")
	pb.Op2(ir.CmpLT, c, ir.TempOp(it), ir.TempOp(n))
	pb.Br(ir.TempOp(c), body, done)

	pb.StartBlock(body)
	// Load the full window: everything live from here on.
	ts := make([]ir.Temp, vals)
	for i := range ts {
		ts[i] = pb.FloatTemp(fmt.Sprintf("v%d", i))
		pb.FLd(ts[i], ir.ImmOp(int64(i)), 0)
	}
	// A long chain of combinations. References favor a sliding recency
	// window (as the real integral kernels do) with occasional reaches
	// across the whole value set, so whole-lifetime spills of rarely
	// touched values stay comparatively cheap for the coloring
	// allocator while everything remains live to the final fold.
	// The chain is broken by data-dependent diamonds every few dozen
	// statements (the real kernels are sequences of large blocks with
	// branches between them). The branches are where the linear
	// allocator pays: with much of the window spilled, every diamond
	// edge needs resolution code, while coloring's whole-lifetime
	// assignment needs none — the paper's Figure 3 attributes
	// binpacking's extra fpppp spill largely to resolution and eviction
	// stores.
	ops := []ir.Op{ir.FAdd, ir.FSub, ir.FMul}
	pick := func(s int) ir.Temp {
		if rng.Intn(10) < 7 {
			lo := s % vals
			return ts[(lo+rng.Intn(12))%vals]
		}
		return ts[rng.Intn(vals)]
	}
	cond := pb.IntTemp("cond")
	pb.Op2(ir.And, cond, ir.TempOp(it), ir.ImmOp(1))
	for s := 0; s < vals*3; s++ {
		dst := pick(s)
		a := pick(s)
		bo := pick(s)
		pb.Op2(ops[rng.Intn(len(ops))], dst, ir.TempOp(a), ir.TempOp(bo))
		pb.Op2(ir.FMul, dst, ir.TempOp(dst), ir.FImmOp(0.5))
		if s%28 == 27 {
			thenB := pb.Block("")
			elseB := pb.Block("")
			joinB := pb.Block("")
			pb.Br(ir.TempOp(cond), thenB, elseB)
			pb.StartBlock(thenB)
			x := pick(s)
			pb.Op2(ir.FAdd, x, ir.TempOp(x), ir.FImmOp(0.25))
			pb.Jmp(joinB)
			pb.StartBlock(elseB)
			y := pick(s + 1)
			pb.Op2(ir.FMul, y, ir.TempOp(y), ir.FImmOp(0.75))
			pb.Jmp(joinB)
			pb.StartBlock(joinB)
		}
	}
	// Fold the window into the accumulator and store a few results back.
	for i := 0; i < vals; i++ {
		pb.Op2(ir.FAdd, acc, ir.TempOp(acc), ir.TempOp(ts[i]))
	}
	for i := 0; i < 8; i++ {
		pb.FSt(ir.TempOp(ts[i*3%vals]), ir.ImmOp(int64(i)), 0)
	}
	pb.Op2(ir.FMul, acc, ir.TempOp(acc), ir.FImmOp(0.001))
	pb.Op2(ir.Add, it, ir.TempOp(it), ir.ImmOp(1))
	pb.Jmp(head)

	pb.StartBlock(done)
	pb.Call("putf", ir.NoTemp, ir.TempOp(acc))
	ret := pb.IntTemp("ret")
	pb.Op1(ir.CvtFI, ret, ir.TempOp(acc))
	pb.Ret(ret)
	return b.Prog
}

// --- li ---------------------------------------------------------------------

// BuildLi models the Xlisp interpreter: cons-cell list walking with
// per-node dispatch through helper procedures — call-dominated code with
// short lifetimes, where move coalescing on parameter registers matters.
func BuildLi(mach *target.Machine, scale int) *ir.Program {
	const cells = 64 // cons cells: mem[2i]=car, mem[2i+1]=cdr index
	b := ir.NewBuilder(mach, 2*cells+8)
	for i := 0; i < cells; i++ {
		b.Prog.SetMem(2*i, int64((i*31)%97))
		b.Prog.SetMem(2*i+1, int64((i+1)%cells))
	}

	// eval(car, depth): a small pure dispatcher.
	{
		pb := b.NewProc("eval", target.ClassInt, target.ClassInt)
		car, depth := pb.P.Params[0], pb.P.Params[1]
		odd := pb.Block("odd")
		even := pb.Block("even")
		r := pb.IntTemp("r")

		bit := pb.IntTemp("bit")
		pb.Op2(ir.And, bit, ir.TempOp(car), ir.ImmOp(1))
		pb.Br(ir.TempOp(bit), odd, even)

		pb.StartBlock(odd)
		pb.Op2(ir.Mul, r, ir.TempOp(car), ir.ImmOp(3))
		pb.Op2(ir.Add, r, ir.TempOp(r), ir.TempOp(depth))
		pb.Ret(r)

		pb.StartBlock(even)
		pb.Op2(ir.Shr, r, ir.TempOp(car), ir.ImmOp(1))
		pb.Op2(ir.Xor, r, ir.TempOp(r), ir.TempOp(depth))
		pb.Ret(r)
	}

	pb := b.NewProc("main")
	rounds := pb.IntTemp("rounds")
	pb.Ldi(rounds, int64(scale))
	rd := pb.IntTemp("rd")
	pb.Ldi(rd, 0)
	total := pb.IntTemp("total")
	pb.Ldi(total, 0)

	rHead := pb.Block("round_head")
	rBody := pb.Block("round_body")
	wHead := pb.Block("walk_head")
	wBody := pb.Block("walk_body")
	wDone := pb.Block("walk_done")
	done := pb.Block("done")

	pb.Jmp(rHead)
	pb.StartBlock(rHead)
	c := pb.IntTemp("")
	pb.Op2(ir.CmpLT, c, ir.TempOp(rd), ir.TempOp(rounds))
	pb.Br(ir.TempOp(c), rBody, done)

	pb.StartBlock(rBody)
	node := pb.IntTemp("node")
	steps := pb.IntTemp("steps")
	pb.Op2(ir.Rem, node, ir.TempOp(rd), ir.ImmOp(cells))
	pb.Ldi(steps, 0)
	pb.Jmp(wHead)

	pb.StartBlock(wHead)
	cw := pb.IntTemp("")
	pb.Op2(ir.CmpLT, cw, ir.TempOp(steps), ir.ImmOp(cells/2))
	pb.Br(ir.TempOp(cw), wBody, wDone)

	pb.StartBlock(wBody)
	addr := pb.IntTemp("addr")
	car := pb.IntTemp("car")
	val := pb.IntTemp("val")
	pb.Op2(ir.Shl, addr, ir.TempOp(node), ir.ImmOp(1))
	pb.Ld(car, ir.TempOp(addr), 0)
	pb.Call("eval", val, ir.TempOp(car), ir.TempOp(steps))
	pb.Op2(ir.Add, total, ir.TempOp(total), ir.TempOp(val))
	pb.Ld(node, ir.TempOp(addr), 1) // cdr
	pb.Op2(ir.Add, steps, ir.TempOp(steps), ir.ImmOp(1))
	pb.Jmp(wHead)

	pb.StartBlock(wDone)
	pb.Op2(ir.Add, rd, ir.TempOp(rd), ir.ImmOp(1))
	pb.Jmp(rHead)

	pb.StartBlock(done)
	pb.Call("puti", ir.NoTemp, ir.TempOp(total))
	pb.Ret(total)
	return b.Prog
}

// --- tomcatv ----------------------------------------------------------------

// BuildTomcatv models the vectorized mesh generator: a nested loop
// applying a 5-point stencil over a 2-D grid with a handful of FP
// temporaries — regular code that fits comfortably in registers.
func BuildTomcatv(mach *target.Machine, scale int) *ir.Program {
	const dim = 16
	b := ir.NewBuilder(mach, dim*dim+8)
	for i := 0; i < dim*dim; i++ {
		b.Prog.SetMemF(i, float64(i%23)*0.25)
	}
	pb := b.NewProc("main")

	iters := pb.IntTemp("iters")
	pb.Ldi(iters, int64(scale))
	t := pb.IntTemp("t")
	pb.Ldi(t, 0)

	tHead := pb.Block("t_head")
	tBody := pb.Block("t_body")
	yHead := pb.Block("y_head")
	yBody := pb.Block("y_body")
	xHead := pb.Block("x_head")
	xBody := pb.Block("x_body")
	xDone := pb.Block("x_done")
	yDone := pb.Block("y_done")
	done := pb.Block("done")

	pb.Jmp(tHead)
	pb.StartBlock(tHead)
	c := pb.IntTemp("")
	pb.Op2(ir.CmpLT, c, ir.TempOp(t), ir.TempOp(iters))
	pb.Br(ir.TempOp(c), tBody, done)

	pb.StartBlock(tBody)
	y := pb.IntTemp("y")
	pb.Ldi(y, 1)
	pb.Jmp(yHead)

	pb.StartBlock(yHead)
	cy := pb.IntTemp("")
	pb.Op2(ir.CmpLT, cy, ir.TempOp(y), ir.ImmOp(dim-1))
	pb.Br(ir.TempOp(cy), yBody, yDone)

	pb.StartBlock(yBody)
	x := pb.IntTemp("x")
	row := pb.IntTemp("row")
	pb.Ldi(x, 1)
	pb.Op2(ir.Mul, row, ir.TempOp(y), ir.ImmOp(dim))
	pb.Jmp(xHead)

	pb.StartBlock(xHead)
	cx := pb.IntTemp("")
	pb.Op2(ir.CmpLT, cx, ir.TempOp(x), ir.ImmOp(dim-1))
	pb.Br(ir.TempOp(cx), xBody, xDone)

	pb.StartBlock(xBody)
	idx := pb.IntTemp("idx")
	pb.Op2(ir.Add, idx, ir.TempOp(row), ir.TempOp(x))
	ctr := pb.FloatTemp("ctr")
	nb := pb.FloatTemp("nb")
	acc2 := pb.FloatTemp("acc2")
	pb.FLd(ctr, ir.TempOp(idx), 0)
	pb.FLd(nb, ir.TempOp(idx), -1)
	pb.Op2(ir.FAdd, acc2, ir.TempOp(ctr), ir.TempOp(nb))
	pb.FLd(nb, ir.TempOp(idx), 1)
	pb.Op2(ir.FAdd, acc2, ir.TempOp(acc2), ir.TempOp(nb))
	pb.FLd(nb, ir.TempOp(idx), -dim)
	pb.Op2(ir.FAdd, acc2, ir.TempOp(acc2), ir.TempOp(nb))
	pb.FLd(nb, ir.TempOp(idx), dim)
	pb.Op2(ir.FAdd, acc2, ir.TempOp(acc2), ir.TempOp(nb))
	pb.Op2(ir.FMul, acc2, ir.TempOp(acc2), ir.FImmOp(0.2))
	pb.FSt(ir.TempOp(acc2), ir.TempOp(idx), 0)
	pb.Op2(ir.Add, x, ir.TempOp(x), ir.ImmOp(1))
	pb.Jmp(xHead)

	pb.StartBlock(xDone)
	pb.Op2(ir.Add, y, ir.TempOp(y), ir.ImmOp(1))
	pb.Jmp(yHead)

	pb.StartBlock(yDone)
	pb.Op2(ir.Add, t, ir.TempOp(t), ir.ImmOp(1))
	pb.Jmp(tHead)

	pb.StartBlock(done)
	probe := pb.FloatTemp("probe")
	pb.FLd(probe, ir.ImmOp(dim+1), 0)
	pb.Call("putf", ir.NoTemp, ir.TempOp(probe))
	ret := pb.IntTemp("ret")
	pb.Op1(ir.CvtFI, ret, ir.TempOp(probe))
	pb.Ret(ret)
	return b.Prog
}

// --- compress ----------------------------------------------------------------

// BuildCompress models LZW: a getc loop hashing the (prefix, char) pair
// into a table with linear probing — integer code with hot table traffic
// and modest pressure.
func BuildCompress(mach *target.Machine, scale int) *ir.Program {
	const tab = 128
	b := ir.NewBuilder(mach, tab+8)
	pb := b.NewProc("main")

	prefix := pb.IntTemp("prefix")
	codes := pb.IntTemp("codes")
	outsum := pb.IntTemp("outsum")
	pb.Ldi(prefix, 0)
	pb.Ldi(codes, 256)
	pb.Ldi(outsum, 0)

	head := pb.Block("head")
	body := pb.Block("body")
	probe := pb.Block("probe")
	hit := pb.Block("hit")
	miss := pb.Block("miss")
	cont := pb.Block("cont")
	done := pb.Block("done")

	pb.Jmp(head)
	pb.StartBlock(head)
	ch := pb.IntTemp("ch")
	pb.Call("getc", ch)
	eof := pb.IntTemp("")
	pb.Op2(ir.CmpLT, eof, ir.TempOp(ch), ir.ImmOp(0))
	pb.Br(ir.TempOp(eof), done, body)

	pb.StartBlock(body)
	h := pb.IntTemp("h")
	pb.Op2(ir.Shl, h, ir.TempOp(prefix), ir.ImmOp(5))
	pb.Op2(ir.Xor, h, ir.TempOp(h), ir.TempOp(ch))
	pb.Op2(ir.And, h, ir.TempOp(h), ir.ImmOp(tab-1))
	pb.Jmp(probe)

	pb.StartBlock(probe)
	entry := pb.IntTemp("entry")
	pb.Ld(entry, ir.TempOp(h), 0)
	key := pb.IntTemp("key")
	pb.Op2(ir.Shl, key, ir.TempOp(prefix), ir.ImmOp(9))
	pb.Op2(ir.Or, key, ir.TempOp(key), ir.TempOp(ch))
	same := pb.IntTemp("")
	pb.Op2(ir.CmpEQ, same, ir.TempOp(entry), ir.TempOp(key))
	pb.Br(ir.TempOp(same), hit, miss)

	pb.StartBlock(hit)
	pb.Op2(ir.And, prefix, ir.TempOp(key), ir.ImmOp(511))
	pb.Jmp(cont)

	pb.StartBlock(miss)
	pb.St(ir.TempOp(key), ir.TempOp(h), 0)
	pb.Op2(ir.Add, outsum, ir.TempOp(outsum), ir.TempOp(prefix))
	pb.Op2(ir.And, prefix, ir.TempOp(ch), ir.ImmOp(255))
	pb.Op2(ir.Add, codes, ir.TempOp(codes), ir.ImmOp(1))
	pb.Jmp(cont)

	pb.StartBlock(cont)
	pb.Op2(ir.And, codes, ir.TempOp(codes), ir.ImmOp(0xffff))
	pb.Jmp(head)

	pb.StartBlock(done)
	pb.Op2(ir.Xor, outsum, ir.TempOp(outsum), ir.TempOp(codes))
	pb.Call("puti", ir.NoTemp, ir.TempOp(outsum))
	pb.Ret(outsum)
	_ = scale
	return b.Prog
}

// --- m88ksim -----------------------------------------------------------------

// BuildM88ksim models the CPU simulator: a fetch/decode/execute loop over
// an instruction array with a 4-way opcode dispatch updating simulated
// machine state.
func BuildM88ksim(mach *target.Machine, scale int) *ir.Program {
	const prog = 96
	b := ir.NewBuilder(mach, prog+16)
	for i := 0; i < prog; i++ {
		b.Prog.SetMem(i, int64((i*2654435761)>>3)&0xffff)
	}
	pb := b.NewProc("main")

	cycles := pb.IntTemp("cycles")
	pb.Ldi(cycles, int64(scale*16))
	pc := pb.IntTemp("pc")
	pb.Ldi(pc, 0)
	r0 := pb.IntTemp("sim_r0")
	r1 := pb.IntTemp("sim_r1")
	r2 := pb.IntTemp("sim_r2")
	flags := pb.IntTemp("flags")
	pb.Ldi(r0, 1)
	pb.Ldi(r1, 2)
	pb.Ldi(r2, 3)
	pb.Ldi(flags, 0)
	cyc := pb.IntTemp("cyc")
	pb.Ldi(cyc, 0)

	head := pb.Block("head")
	body := pb.Block("body")
	opAdd := pb.Block("op_add")
	opXor := pb.Block("op_xor")
	opShift := pb.Block("op_shift")
	opShl := pb.Block("op_shl")
	opMem := pb.Block("op_mem")
	d1 := pb.Block("d1")
	next := pb.Block("next")
	done := pb.Block("done")

	pb.Jmp(head)
	pb.StartBlock(head)
	c := pb.IntTemp("")
	pb.Op2(ir.CmpLT, c, ir.TempOp(cyc), ir.TempOp(cycles))
	pb.Br(ir.TempOp(c), body, done)

	pb.StartBlock(body)
	insn := pb.IntTemp("insn")
	pb.Ld(insn, ir.TempOp(pc), 0)
	op := pb.IntTemp("op")
	pb.Op2(ir.And, op, ir.TempOp(insn), ir.ImmOp(3))
	isLow := pb.IntTemp("")
	pb.Op2(ir.CmpLT, isLow, ir.TempOp(op), ir.ImmOp(2))
	pb.Br(ir.TempOp(isLow), d1, opShift)

	pb.StartBlock(d1)
	isAdd := pb.IntTemp("")
	pb.Op2(ir.CmpEQ, isAdd, ir.TempOp(op), ir.ImmOp(0))
	pb.Br(ir.TempOp(isAdd), opAdd, opXor)

	pb.StartBlock(opAdd)
	imm := pb.IntTemp("")
	pb.Op2(ir.Shr, imm, ir.TempOp(insn), ir.ImmOp(2))
	pb.Op2(ir.Add, r0, ir.TempOp(r0), ir.TempOp(imm))
	pb.Jmp(next)

	pb.StartBlock(opXor)
	pb.Op2(ir.Xor, r1, ir.TempOp(r1), ir.TempOp(r0))
	pb.Op2(ir.Or, flags, ir.TempOp(flags), ir.ImmOp(1))
	pb.Jmp(next)

	pb.StartBlock(opShift)
	isMem := pb.IntTemp("")
	pb.Op2(ir.CmpEQ, isMem, ir.TempOp(op), ir.ImmOp(3))
	pb.Br(ir.TempOp(isMem), opMem, opShl)

	pb.StartBlock(opShl)
	sh := pb.IntTemp("sh")
	pb.Op2(ir.And, sh, ir.TempOp(insn), ir.ImmOp(7))
	pb.Op2(ir.Shl, r2, ir.TempOp(r2), ir.TempOp(sh))
	pb.Op2(ir.And, r2, ir.TempOp(r2), ir.ImmOp(0xffffff))
	pb.Jmp(next)

	pb.StartBlock(opMem)
	a := pb.IntTemp("a")
	pb.Op2(ir.And, a, ir.TempOp(r2), ir.ImmOp(prog-1))
	v := pb.IntTemp("v")
	pb.Ld(v, ir.TempOp(a), 0)
	pb.Op2(ir.Add, r2, ir.TempOp(r2), ir.TempOp(v))
	pb.Op2(ir.And, r2, ir.TempOp(r2), ir.ImmOp(0xfffff))
	pb.Jmp(next)

	pb.StartBlock(next)
	pb.Op2(ir.Add, pc, ir.TempOp(pc), ir.ImmOp(1))
	keep := pb.IntTemp("")
	pb.Op2(ir.CmpLT, keep, ir.TempOp(pc), ir.ImmOp(prog))
	pb.Op2(ir.Mul, pc, ir.TempOp(pc), ir.TempOp(keep))
	pb.Op2(ir.Add, cyc, ir.TempOp(cyc), ir.ImmOp(1))
	pb.Jmp(head)

	pb.StartBlock(done)
	sum := pb.IntTemp("sum")
	pb.Op2(ir.Add, sum, ir.TempOp(r0), ir.TempOp(r1))
	pb.Op2(ir.Xor, sum, ir.TempOp(sum), ir.TempOp(r2))
	pb.Op2(ir.Add, sum, ir.TempOp(sum), ir.TempOp(flags))
	pb.Call("puti", ir.NoTemp, ir.TempOp(sum))
	pb.Ret(sum)
	return b.Prog
}

// --- sort --------------------------------------------------------------------

// BuildSort models UNIX sort: repeated insertion sort of a shuffled
// array — a partition-style inner loop with moderate integer pressure.
func BuildSort(mach *target.Machine, scale int) *ir.Program {
	const n = 48
	b := ir.NewBuilder(mach, n+8)
	for i := 0; i < n; i++ {
		b.Prog.SetMem(i, int64((i*2654435761+11)%977))
	}
	pb := b.NewProc("main")

	rounds := pb.IntTemp("rounds")
	pb.Ldi(rounds, int64(scale))
	rd := pb.IntTemp("rd")
	pb.Ldi(rd, 0)
	check := pb.IntTemp("check")
	pb.Ldi(check, 0)

	rHead := pb.Block("round_head")
	rBody := pb.Block("round_body")
	iHead := pb.Block("i_head")
	iBody := pb.Block("i_body")
	jHead := pb.Block("j_head")
	jTest := pb.Block("j_test")
	jBody := pb.Block("j_body")
	jDone := pb.Block("j_done")
	iDone := pb.Block("i_done")
	done := pb.Block("done")

	pb.Jmp(rHead)
	pb.StartBlock(rHead)
	c := pb.IntTemp("")
	pb.Op2(ir.CmpLT, c, ir.TempOp(rd), ir.TempOp(rounds))
	pb.Br(ir.TempOp(c), rBody, done)

	pb.StartBlock(rBody)
	// Perturb the array so each round sorts something new.
	p0 := pb.IntTemp("p0")
	pb.Ld(p0, ir.ImmOp(0), 0)
	pb.Op2(ir.Add, p0, ir.TempOp(p0), ir.TempOp(rd))
	pb.Op2(ir.And, p0, ir.TempOp(p0), ir.ImmOp(1023))
	pb.St(ir.TempOp(p0), ir.ImmOp(0), 0)
	i := pb.IntTemp("i")
	pb.Ldi(i, 1)
	pb.Jmp(iHead)

	pb.StartBlock(iHead)
	ci := pb.IntTemp("")
	pb.Op2(ir.CmpLT, ci, ir.TempOp(i), ir.ImmOp(n))
	pb.Br(ir.TempOp(ci), iBody, iDone)

	pb.StartBlock(iBody)
	keyv := pb.IntTemp("key")
	j := pb.IntTemp("j")
	pb.Ld(keyv, ir.TempOp(i), 0)
	pb.Op2(ir.Sub, j, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(jHead)

	pb.StartBlock(jHead)
	nonneg := pb.IntTemp("")
	pb.Op2(ir.CmpGE, nonneg, ir.TempOp(j), ir.ImmOp(0))
	pb.Br(ir.TempOp(nonneg), jTest, jDone)

	pb.StartBlock(jTest)
	cur := pb.IntTemp("cur")
	pb.Ld(cur, ir.TempOp(j), 0)
	gt := pb.IntTemp("")
	pb.Op2(ir.CmpGT, gt, ir.TempOp(cur), ir.TempOp(keyv))
	pb.Br(ir.TempOp(gt), jBody, jDone)

	pb.StartBlock(jBody)
	pb.St(ir.TempOp(cur), ir.TempOp(j), 1)
	pb.Op2(ir.Sub, j, ir.TempOp(j), ir.ImmOp(1))
	pb.Jmp(jHead)

	pb.StartBlock(jDone)
	pb.St(ir.TempOp(keyv), ir.TempOp(j), 1)
	pb.Op2(ir.Add, i, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(iHead)

	pb.StartBlock(iDone)
	mid := pb.IntTemp("mid")
	pb.Ld(mid, ir.ImmOp(n/2), 0)
	pb.Op2(ir.Xor, check, ir.TempOp(check), ir.TempOp(mid))
	pb.Op2(ir.Add, rd, ir.TempOp(rd), ir.ImmOp(1))
	pb.Jmp(rHead)

	pb.StartBlock(done)
	pb.Call("puti", ir.NoTemp, ir.TempOp(check))
	pb.Ret(check)
	return b.Prog
}

// --- wc ----------------------------------------------------------------------

// BuildWC models word count with the structure §3.1 analyses. Two phases:
// a short warm-up getc loop accumulating into six "setup" values that are
// read again only after the main loop, then the main getc loop whose body
// updates a hot working set (counters plus classification bounds) sized
// exactly to the callee-saved file.
//
// The setup values overlap everything, so under whole-lifetime (two-pass)
// binpacking they monopolize callee-saved registers — "there is no hole
// in a caller-saved register large enough" for the hot set, which is
// evicted to memory and pays loads and stores every iteration. Second
// chance splits the setup lifetimes (one store each when the hot set
// arrives, one reload each at the end), and coloring spills them
// wholesale at the same tiny cost, so both stay near zero spill.
func BuildWC(mach *target.Machine, scale int) *ir.Program {
	b := ir.NewBuilder(mach, 16)
	pb := b.NewProc("main")

	const warmup = 16

	// Configuration values ("command-line options"): initialized first,
	// accumulated during the short warm-up loop, folded away just after
	// the hot set is born. Their lifetimes span the warm-up's getc calls,
	// so they can only live in callee-saved registers.
	nCfg := 6
	cfgs := make([]ir.Temp, nCfg)
	for k := range cfgs {
		cfgs[k] = pb.IntTemp(fmt.Sprintf("cfg%d", k))
		pb.Ldi(cfgs[k], int64(1000+k*37))
	}

	wHead := pb.Block("warm_head")
	wBody := pb.Block("warm_body")
	wDone := pb.Block("warm_done")

	wi := pb.IntTemp("wi")
	wsum := pb.IntTemp("wsum")
	pb.Ldi(wi, 0)
	pb.Ldi(wsum, 0)
	pb.Jmp(wHead)

	pb.StartBlock(wHead)
	wc := pb.IntTemp("")
	pb.Op2(ir.CmpLT, wc, ir.TempOp(wi), ir.ImmOp(warmup))
	pb.Br(ir.TempOp(wc), wBody, wDone)

	pb.StartBlock(wBody)
	wch := pb.IntTemp("wch")
	pb.Call("getc", wch)
	// The configuration values are not touched here — they are merely
	// live across these calls (cheap to spill wholesale, expensive to
	// keep in a caller-saved register).
	pb.Op2(ir.Add, wsum, ir.TempOp(wsum), ir.TempOp(wch))
	pb.Op2(ir.Add, wi, ir.TempOp(wi), ir.ImmOp(1))
	pb.Jmp(wHead)

	pb.StartBlock(wDone)
	// The hot working set of the main loop is born here, while the
	// configuration values still hold every callee-saved register: the
	// counters updated each iteration plus read-only classification
	// bounds — eight values live across the main loop's getc call.
	//
	// This overlap is what separates the allocators (§3.1): whole-
	// lifetime binpacking finds no callee-saved hole (the configuration
	// is still live) and no caller-saved hole (the main loop's calls),
	// so it exiles part of the hot set to memory for the whole run.
	// Second-chance binpacking parks the hot set in caller-saved
	// registers, and when the first main-loop call expires those holes —
	// the configuration now being dead — early second chance moves the
	// values into callee-saved registers instead of storing them
	// ("evicting them just before the procedure call but avoiding
	// unnecessary stores"). Coloring spills the cheap configuration
	// values and keeps the hot set in callee-saved registers.
	chars := pb.IntTemp("chars")
	words := pb.IntTemp("words")
	lines := pb.IntTemp("lines")
	vowels := pb.IntTemp("vowels")
	inword := pb.IntTemp("inword")
	wlen := pb.IntTemp("wlen")
	bLowerA := pb.IntTemp("bLowerA")
	bVowelMask := pb.IntTemp("bVowelMask")
	for _, t := range []ir.Temp{chars, words, lines, vowels, inword, wlen} {
		pb.Ldi(t, 0)
	}
	pb.Ldi(bLowerA, 'a')
	pb.Ldi(bVowelMask, (1<<('a'-'a'))|(1<<('e'-'a'))|(1<<('i'-'a'))|(1<<('o'-'a'))|(1<<('u'-'a')))

	// Fold the configuration into one value and report it; the cfg
	// lifetimes end here, freeing the callee-saved file.
	cfgSum := pb.IntTemp("cfgSum")
	pb.Mov(cfgSum, ir.TempOp(wsum))
	for k := range cfgs {
		pb.Op2(ir.Xor, cfgSum, ir.TempOp(cfgSum), ir.TempOp(cfgs[k]))
	}
	pb.Call("puti", ir.NoTemp, ir.TempOp(cfgSum))

	head := pb.Block("head")
	body := pb.Block("body")
	isNl := pb.Block("is_nl")
	notNl := pb.Block("not_nl")
	sep := pb.Block("sep")
	inw := pb.Block("inw")
	vowel := pb.Block("vowel")
	cont := pb.Block("cont")
	done := pb.Block("done")

	pb.Jmp(head)
	pb.StartBlock(head)
	ch := pb.IntTemp("ch")
	pb.Call("getc", ch)
	eof := pb.IntTemp("")
	pb.Op2(ir.CmpLT, eof, ir.TempOp(ch), ir.ImmOp(0))
	pb.Br(ir.TempOp(eof), done, body)

	pb.StartBlock(body)
	pb.Op2(ir.Add, chars, ir.TempOp(chars), ir.ImmOp(1))
	nl := pb.IntTemp("")
	pb.Op2(ir.CmpEQ, nl, ir.TempOp(ch), ir.ImmOp('\n'))
	pb.Br(ir.TempOp(nl), isNl, notNl)

	pb.StartBlock(isNl)
	pb.Op2(ir.Add, lines, ir.TempOp(lines), ir.ImmOp(1))
	pb.Jmp(sep)

	pb.StartBlock(notNl)
	sp := pb.IntTemp("")
	pb.Op2(ir.CmpEQ, sp, ir.TempOp(ch), ir.ImmOp(' '))
	pb.Br(ir.TempOp(sp), sep, inw)

	pb.StartBlock(sep)
	// End of word: count it if one was open.
	pb.Op2(ir.Add, words, ir.TempOp(words), ir.TempOp(inword))
	pb.Ldi(inword, 0)
	pb.Ldi(wlen, 0)
	pb.Jmp(cont)

	pb.StartBlock(inw)
	pb.Ldi(inword, 1)
	pb.Op2(ir.Add, wlen, ir.TempOp(wlen), ir.ImmOp(1))
	// Classify against the read-only bounds (two reads of bLowerA, one
	// of the vowel mask, every non-separator byte).
	geA := pb.IntTemp("")
	pb.Op2(ir.CmpGE, geA, ir.TempOp(ch), ir.TempOp(bLowerA))
	off := pb.IntTemp("")
	pb.Op2(ir.Sub, off, ir.TempOp(ch), ir.TempOp(bLowerA))
	bitp := pb.IntTemp("")
	pb.Op2(ir.Shr, bitp, ir.TempOp(bVowelMask), ir.TempOp(off))
	pb.Op2(ir.And, bitp, ir.TempOp(bitp), ir.ImmOp(1))
	pb.Op2(ir.And, bitp, ir.TempOp(bitp), ir.TempOp(geA))
	pb.Br(ir.TempOp(bitp), vowel, cont)

	pb.StartBlock(vowel)
	pb.Op2(ir.Add, vowels, ir.TempOp(vowels), ir.ImmOp(1))
	pb.Op2(ir.Add, vowels, ir.TempOp(vowels), ir.TempOp(wlen))
	pb.Jmp(cont)

	pb.StartBlock(cont)
	pb.Jmp(head)

	pb.StartBlock(done)
	pb.Op2(ir.Add, words, ir.TempOp(words), ir.TempOp(inword))
	sum := pb.IntTemp("sum")
	pb.Op2(ir.Add, sum, ir.TempOp(chars), ir.TempOp(words))
	pb.Op2(ir.Shl, lines, ir.TempOp(lines), ir.ImmOp(4))
	pb.Op2(ir.Add, sum, ir.TempOp(sum), ir.TempOp(lines))
	pb.Op2(ir.Add, sum, ir.TempOp(sum), ir.TempOp(vowels))
	pb.Call("puti", ir.NoTemp, ir.TempOp(sum))
	pb.Ret(sum)
	_ = scale
	return b.Prog
}
