package progs

import (
	"bytes"
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
	"repro/internal/vm"
)

func TestSuiteBuildsAndRuns(t *testing.T) {
	mach := target.Alpha()
	for _, bench := range Suite() {
		t.Run(bench.Name, func(t *testing.T) {
			prog := bench.Build(mach, 1)
			if err := ir.ValidateProgram(prog, mach); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			var input []byte
			if bench.Input != nil {
				input = bench.Input(1)
			}
			res, err := vm.Run(prog, vm.Config{Mach: mach, Input: input})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Counters.Total == 0 {
				t.Fatal("no instructions executed")
			}
			if len(res.Output) == 0 {
				t.Fatal("no output produced: benchmark results would be unobservable")
			}
		})
	}
}

func TestSuiteDeterministic(t *testing.T) {
	mach := target.Alpha()
	for _, bench := range Suite() {
		prog1 := bench.Build(mach, 2)
		prog2 := bench.Build(mach, 2)
		var input []byte
		if bench.Input != nil {
			input = bench.Input(2)
		}
		r1, err1 := vm.Run(prog1, vm.Config{Mach: mach, Input: input})
		r2, err2 := vm.Run(prog2, vm.Config{Mach: mach, Input: input})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", bench.Name, err1, err2)
		}
		if !bytes.Equal(r1.Output, r2.Output) || r1.RetValue != r2.RetValue {
			t.Fatalf("%s not deterministic", bench.Name)
		}
	}
}

func TestSuiteScales(t *testing.T) {
	mach := target.Alpha()
	b := Named("eqntott")
	small := b.Build(mach, 1)
	big := b.Build(mach, 4)
	rs, _ := vm.Run(small, vm.Config{Mach: mach})
	rb2, _ := vm.Run(big, vm.Config{Mach: mach})
	if rb2.Counters.Total <= rs.Counters.Total {
		t.Fatal("scale does not grow the workload")
	}
}

func TestNamed(t *testing.T) {
	if Named("wc") == nil || Named("fpppp") == nil {
		t.Fatal("Named lookup broken")
	}
	if Named("nosuch") != nil {
		t.Fatal("Named returned a benchmark for a bogus name")
	}
	if len(Suite()) != 11 {
		t.Fatalf("suite has %d benchmarks, want 11 (Table 1)", len(Suite()))
	}
}

func TestRandomProgramsValidAndDeterministic(t *testing.T) {
	for _, m := range []*target.Machine{target.Alpha(), target.Tiny(6, 4)} {
		for seed := int64(0); seed < 12; seed++ {
			cfg := DefaultGen(seed)
			p1 := Random(m, cfg)
			if err := ir.ValidateProgram(p1, m); err != nil {
				t.Fatalf("seed %d on %s: %v", seed, m.Name, err)
			}
			p2 := Random(m, cfg)
			in := []byte("determinism-check")
			r1, err1 := vm.Run(p1, vm.Config{Mach: m, Input: in})
			r2, err2 := vm.Run(p2, vm.Config{Mach: m, Input: in})
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d: %v / %v", seed, err1, err2)
			}
			if !bytes.Equal(r1.Output, r2.Output) {
				t.Fatalf("seed %d not deterministic", seed)
			}
		}
	}
}

func TestProfilesValidAndDistinct(t *testing.T) {
	names := Profiles()
	if len(names) < 7 {
		t.Fatalf("Profiles() = %v, want the 6 named shapes plus default", names)
	}
	mach := target.Alpha()
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			cfg, err := ProfileGen(name, 5)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Profile != name {
				t.Errorf("Profile = %q, want %q", cfg.Profile, name)
			}
			prog := Random(mach, cfg)
			if err := ir.ValidateProgram(prog, mach); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if _, err := vm.Run(prog, vm.Config{Mach: mach, Input: []byte("profile")}); err != nil {
				t.Fatalf("run: %v", err)
			}
		})
	}
	if _, err := ProfileGen("nosuch", 1); err == nil {
		t.Error("ProfileGen accepted a bogus profile")
	}
}

// TestProfileShapes asserts that each profile actually skews the program
// in its advertised direction, so the grid covers distinct shapes rather
// than six names for the same distribution.
func TestProfileShapes(t *testing.T) {
	mach := target.Alpha()
	count := func(name string, pred func(*ir.Instr) bool) int {
		cfg, err := ProfileGen(name, 11)
		if err != nil {
			t.Fatal(err)
		}
		prog := Random(mach, cfg)
		n := 0
		for _, p := range prog.Procs {
			if p.Name != "main" {
				continue
			}
			for _, b := range p.Blocks {
				for i := range b.Instrs {
					if pred(&b.Instrs[i]) {
						n++
					}
				}
			}
		}
		return n
	}
	isCall := func(in *ir.Instr) bool { return in.Op == ir.Call }
	isBlockStart := func(in *ir.Instr) bool { return in.Op == ir.Br }
	isFloat := func(in *ir.Instr) bool {
		switch in.Op {
		case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv, ir.FNeg, ir.FLdi, ir.FMov:
			return true
		}
		return false
	}
	if got, def := count("call-heavy", isCall), count("default", isCall); got <= def {
		t.Errorf("call-heavy has %d calls, default %d", got, def)
	}
	if got, def := count("float-heavy", isFloat), count("default", isFloat); got <= def {
		t.Errorf("float-heavy has %d float ops, default %d", got, def)
	}
	if got, def := count("diamond-dense", isBlockStart), count("straightline", isBlockStart); got <= def {
		t.Errorf("diamond-dense has %d branches, straightline %d", got, def)
	}
	if got := count("straightline", isBlockStart); got != 0 {
		t.Errorf("straightline has %d branches, want 0", got)
	}
	// high-pressure must carry more simultaneous candidates than default.
	cfgHP, _ := ProfileGen("high-pressure", 3)
	cfgDef, _ := ProfileGen("default", 3)
	hp := Random(mach, cfgHP).Proc("main").NumTemps()
	def := Random(mach, cfgDef).Proc("main").NumTemps()
	if hp <= def {
		t.Errorf("high-pressure has %d temps, default %d", hp, def)
	}
}

// TestDefaultGenUnchangedByProfileKnobs pins the zero-weight compat rule:
// the zero-valued knobs of DefaultGen must keep producing the exact
// historical program for a seed (benchmarks and committed baselines
// depend on the shapes).
func TestDefaultGenUnchangedByProfileKnobs(t *testing.T) {
	mach := target.Tiny(8, 4)
	a := Random(mach, DefaultGen(42))
	explicit := DefaultGen(42)
	explicit.IfPct, explicit.LoopPct = 12, 10
	explicit.IntALUPct, explicit.FloatPct, explicit.CrossPct, explicit.MemPct, explicit.CallPct = 45, 15, 6, 10, 12
	b := Random(mach, explicit)
	var pa, pb bytes.Buffer
	(&ir.Printer{Mach: mach}).WriteProgram(&pa, a)
	(&ir.Printer{Mach: mach}).WriteProgram(&pb, b)
	if pa.String() != pb.String() {
		t.Fatal("explicit historical weights diverge from zero-valued defaults")
	}
}

// TestOversubscribedWeightsPanic pins the weight-validation contract:
// weights past 100% would silently starve later statement bands.
func TestOversubscribedWeightsPanic(t *testing.T) {
	mach := target.Tiny(6, 4)
	for name, cfg := range map[string]GenConfig{
		"statements":   {Seed: 1, IntTemps: 4, Stmts: 5, IntALUPct: 60, FloatPct: 50},
		"control-flow": {Seed: 1, IntTemps: 4, Stmts: 5, MaxDepth: 2, IfPct: 70, LoopPct: 40},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: oversubscribed weights did not panic", name)
				}
			}()
			Random(mach, cfg)
		}()
	}
}

func TestTable3ModulesShape(t *testing.T) {
	mach := target.Alpha()
	mods := Table3Modules(mach)
	if len(mods) != 3 {
		t.Fatalf("%d modules", len(mods))
	}
	for _, mod := range mods {
		if err := ir.ValidateProgram(mod.Prog, mach); err != nil {
			t.Fatalf("%s: %v", mod.Name, err)
		}
		nprocs, total := 0, 0
		for _, p := range mod.Prog.Procs {
			if p.Name == "main" {
				continue
			}
			nprocs++
			total += p.NumTemps()
		}
		avg := total / nprocs
		// Within 25% of the design target.
		lo, hi := mod.AvgCandidates*3/4, mod.AvgCandidates*5/4
		if avg < lo || avg > hi {
			t.Fatalf("%s: avg candidates %d outside [%d,%d]", mod.Name, avg, lo, hi)
		}
	}
}
