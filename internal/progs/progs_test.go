package progs

import (
	"bytes"
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
	"repro/internal/vm"
)

func TestSuiteBuildsAndRuns(t *testing.T) {
	mach := target.Alpha()
	for _, bench := range Suite() {
		t.Run(bench.Name, func(t *testing.T) {
			prog := bench.Build(mach, 1)
			if err := ir.ValidateProgram(prog, mach); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			var input []byte
			if bench.Input != nil {
				input = bench.Input(1)
			}
			res, err := vm.Run(prog, vm.Config{Mach: mach, Input: input})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Counters.Total == 0 {
				t.Fatal("no instructions executed")
			}
			if len(res.Output) == 0 {
				t.Fatal("no output produced: benchmark results would be unobservable")
			}
		})
	}
}

func TestSuiteDeterministic(t *testing.T) {
	mach := target.Alpha()
	for _, bench := range Suite() {
		prog1 := bench.Build(mach, 2)
		prog2 := bench.Build(mach, 2)
		var input []byte
		if bench.Input != nil {
			input = bench.Input(2)
		}
		r1, err1 := vm.Run(prog1, vm.Config{Mach: mach, Input: input})
		r2, err2 := vm.Run(prog2, vm.Config{Mach: mach, Input: input})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", bench.Name, err1, err2)
		}
		if !bytes.Equal(r1.Output, r2.Output) || r1.RetValue != r2.RetValue {
			t.Fatalf("%s not deterministic", bench.Name)
		}
	}
}

func TestSuiteScales(t *testing.T) {
	mach := target.Alpha()
	b := Named("eqntott")
	small := b.Build(mach, 1)
	big := b.Build(mach, 4)
	rs, _ := vm.Run(small, vm.Config{Mach: mach})
	rb2, _ := vm.Run(big, vm.Config{Mach: mach})
	if rb2.Counters.Total <= rs.Counters.Total {
		t.Fatal("scale does not grow the workload")
	}
}

func TestNamed(t *testing.T) {
	if Named("wc") == nil || Named("fpppp") == nil {
		t.Fatal("Named lookup broken")
	}
	if Named("nosuch") != nil {
		t.Fatal("Named returned a benchmark for a bogus name")
	}
	if len(Suite()) != 11 {
		t.Fatalf("suite has %d benchmarks, want 11 (Table 1)", len(Suite()))
	}
}

func TestRandomProgramsValidAndDeterministic(t *testing.T) {
	for _, m := range []*target.Machine{target.Alpha(), target.Tiny(6, 4)} {
		for seed := int64(0); seed < 12; seed++ {
			cfg := DefaultGen(seed)
			p1 := Random(m, cfg)
			if err := ir.ValidateProgram(p1, m); err != nil {
				t.Fatalf("seed %d on %s: %v", seed, m.Name, err)
			}
			p2 := Random(m, cfg)
			in := []byte("determinism-check")
			r1, err1 := vm.Run(p1, vm.Config{Mach: m, Input: in})
			r2, err2 := vm.Run(p2, vm.Config{Mach: m, Input: in})
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d: %v / %v", seed, err1, err2)
			}
			if !bytes.Equal(r1.Output, r2.Output) {
				t.Fatalf("seed %d not deterministic", seed)
			}
		}
	}
}

func TestTable3ModulesShape(t *testing.T) {
	mach := target.Alpha()
	mods := Table3Modules(mach)
	if len(mods) != 3 {
		t.Fatalf("%d modules", len(mods))
	}
	for _, mod := range mods {
		if err := ir.ValidateProgram(mod.Prog, mach); err != nil {
			t.Fatalf("%s: %v", mod.Name, err)
		}
		nprocs, total := 0, 0
		for _, p := range mod.Prog.Procs {
			if p.Name == "main" {
				continue
			}
			nprocs++
			total += p.NumTemps()
		}
		avg := total / nprocs
		// Within 25% of the design target.
		lo, hi := mod.AvgCandidates*3/4, mod.AvgCandidates*5/4
		if avg < lo || avg > hi {
			t.Fatalf("%s: avg candidates %d outside [%d,%d]", mod.Name, avg, lo, hi)
		}
	}
}
