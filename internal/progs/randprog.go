// Package progs provides the workloads of the experimental evaluation:
// one synthetic IR program per benchmark in Table 1 of the paper, a
// seeded random-program generator for property-based testing, and the
// synthetic compile-time "modules" of Table 3.
package progs

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ir"
	"repro/internal/target"
)

// GenConfig parameterizes Random. The *Pct fields are statement-mix
// weights in percent; zero selects the historical defaults (noted per
// field), so the zero-extended DefaultGen keeps producing bit-identical
// programs for a given seed. The five statement weights must sum to at
// most 100 (the remainder emits fresh constants), as must If+Loop;
// Random panics on an oversubscribed mix.
type GenConfig struct {
	Seed       int64
	IntTemps   int  // integer accumulator pool (≥ 2)
	FloatTemps int  // float accumulator pool (≥ 0)
	Stmts      int  // approximate statement budget
	MaxDepth   int  // nesting depth of ifs/loops
	Calls      bool // emit intrinsic calls
	Memory     bool // emit loads/stores to a scratch array
	Helper     bool // route some work through a two-argument helper proc

	// Profile names the generator profile this config came from (set by
	// ProfileGen; informational).
	Profile string

	// Control-flow mix, per block-level statement slot (requires
	// MaxDepth > 0 to take effect).
	IfPct   int // diamond probability (default 12)
	LoopPct int // bounded-loop probability (default 10)

	// Straight-line statement mix. Whatever the five weights leave of
	// 100% emits fresh constants (live-range turnover).
	IntALUPct int // integer ALU ops (default 45)
	FloatPct  int // float ALU ops (default 15; needs FloatTemps > 0)
	CrossPct  int // int↔float conversion traffic (default 6; needs FloatTemps > 0)
	MemPct    int // loads/stores (default 10; needs Memory)
	CallPct   int // intrinsic/helper calls (default 12; needs Calls)
}

// DefaultGen returns a medium-sized configuration.
func DefaultGen(seed int64) GenConfig {
	return GenConfig{
		Seed: seed, IntTemps: 12, FloatTemps: 6, Stmts: 60,
		MaxDepth: 3, Calls: true, Memory: true, Helper: true,
	}
}

// profiles are the named workload shapes of the conformance grid. Each
// stresses a different allocator behavior: call-heavy forces values live
// across clobbering calls, loop-nest exercises depth-weighted spill
// heuristics and resolution on back edges, diamond-dense exercises
// split-point resolution, float-heavy skews pressure into the float
// file, high-pressure overflows any register file, and straightline is
// the fpppp-like basic-block giant with no control flow at all.
var profiles = map[string]func(seed int64) GenConfig{
	"default": DefaultGen,
	"call-heavy": func(seed int64) GenConfig {
		c := DefaultGen(seed)
		c.IntALUPct, c.CallPct, c.MemPct = 25, 45, 6
		c.IfPct, c.LoopPct = 10, 8
		return c
	},
	"loop-nest": func(seed int64) GenConfig {
		c := DefaultGen(seed)
		c.MaxDepth, c.Stmts = 4, 50
		c.IfPct, c.LoopPct = 6, 30
		return c
	},
	"diamond-dense": func(seed int64) GenConfig {
		c := DefaultGen(seed)
		c.MaxDepth, c.Stmts = 4, 70
		c.IfPct, c.LoopPct = 35, 4
		return c
	},
	"float-heavy": func(seed int64) GenConfig {
		c := DefaultGen(seed)
		c.IntTemps, c.FloatTemps = 6, 16
		c.IntALUPct, c.FloatPct, c.CrossPct = 20, 45, 12
		return c
	},
	"high-pressure": func(seed int64) GenConfig {
		c := DefaultGen(seed)
		c.IntTemps, c.FloatTemps, c.Stmts = 28, 14, 90
		c.MaxDepth = 2
		return c
	},
	"straightline": func(seed int64) GenConfig {
		c := DefaultGen(seed)
		c.IntTemps, c.FloatTemps, c.Stmts = 16, 8, 80
		c.MaxDepth = 0
		c.Calls = false
		return c
	},
}

// Profiles returns the named generator profile names, sorted.
func Profiles() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProfileGen returns the GenConfig of a named profile for a seed.
func ProfileGen(name string, seed int64) (GenConfig, error) {
	mk, ok := profiles[name]
	if !ok {
		return GenConfig{}, fmt.Errorf("progs: unknown generator profile %q (have %v)", name, Profiles())
	}
	c := mk(seed)
	c.Profile = name
	return c, nil
}

// pctOr returns v, or def when v is zero (the historical weight).
func pctOr(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// Random builds a deterministic random program: structured control flow
// (sequences, if/else diamonds, bounded while loops), integer and float
// arithmetic over a fixed pool of temporaries, optional memory traffic
// and intrinsic/helper calls, ending by printing a checksum of every
// temporary. All programs terminate: loops run a fixed 2–4 iterations.
func Random(mach *target.Machine, cfg GenConfig) *ir.Program {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := ir.NewBuilder(mach, 256)

	// Convention-hostile machines may not fit every generator feature:
	// the two-argument helper needs two integer parameter registers
	// (narrow-1 has a single shared one), so it degrades to intrinsic
	// calls there. The statement mix rolls the same RNG sequence either
	// way, so machines with full conventions are bit-identical to the
	// historical output.
	if cfg.Helper && len(mach.ParamRegs(target.ClassInt)) < 2 {
		cfg.Helper = false
	}

	if cfg.Helper {
		buildHelper(b)
	}

	pb := b.NewProc("main")
	g := &gen{rng: rng, cfg: cfg, b: b, pb: pb}
	g.initWeights()
	for i := 0; i < cfg.IntTemps; i++ {
		t := pb.IntTemp(fmt.Sprintf("x%d", i))
		pb.Ldi(t, int64(rng.Intn(200)-100))
		g.ints = append(g.ints, t)
	}
	for i := 0; i < cfg.FloatTemps; i++ {
		t := pb.FloatTemp(fmt.Sprintf("f%d", i))
		pb.FLdi(t, float64(rng.Intn(64))/4+0.5)
		g.floats = append(g.floats, t)
	}
	g.block(cfg.Stmts, cfg.MaxDepth)

	// Checksum everything so no computation is dead.
	sum := pb.IntTemp("sum")
	pb.Ldi(sum, 0)
	for _, t := range g.ints {
		pb.Op2(ir.Xor, sum, ir.TempOp(sum), ir.TempOp(t))
		pb.Op2(ir.Add, sum, ir.TempOp(sum), ir.TempOp(t))
	}
	for _, t := range g.floats {
		ci := pb.IntTemp("")
		// Clamp floats into a stable integer range first.
		cl := pb.FloatTemp("")
		pb.Op2(ir.FMul, cl, ir.TempOp(t), ir.FImmOp(0.001))
		pb.Op1(ir.CvtFI, ci, ir.TempOp(cl))
		pb.Op2(ir.Xor, sum, ir.TempOp(sum), ir.TempOp(ci))
	}
	pb.Call("puti", ir.NoTemp, ir.TempOp(sum))
	pb.Ret(sum)
	return b.Prog
}

// buildHelper emits a small pure helper procedure main can call.
func buildHelper(b *ir.Builder) {
	pb := b.NewProc("mix", target.ClassInt, target.ClassInt)
	x, y := pb.P.Params[0], pb.P.Params[1]
	r := pb.IntTemp("r")
	t := pb.IntTemp("t")
	pb.Op2(ir.Xor, r, ir.TempOp(x), ir.TempOp(y))
	pb.Op2(ir.Shl, t, ir.TempOp(x), ir.ImmOp(3))
	pb.Op2(ir.Add, r, ir.TempOp(r), ir.TempOp(t))
	pb.Op2(ir.Shr, t, ir.TempOp(y), ir.ImmOp(2))
	pb.Op2(ir.Sub, r, ir.TempOp(r), ir.TempOp(t))
	pb.Ret(r)
}

type gen struct {
	rng *rand.Rand
	cfg GenConfig
	b   *ir.Builder
	pb  *ir.ProcBuilder

	// Cumulative statement-mix and control-flow thresholds over a
	// 100-sided roll, derived from the cfg weights by initWeights.
	intTo, floatTo, crossTo, memTo, callTo int
	ifTo, loopTo                           int

	ints   []ir.Temp
	floats []ir.Temp
	loopID int
}

// initWeights resolves the cfg's weight knobs (zero = historical
// default) into cumulative roll thresholds, panicking when a mix is
// oversubscribed: past 100%, later statement bands would silently
// become unreachable rather than rare.
func (g *gen) initWeights() {
	g.intTo = pctOr(g.cfg.IntALUPct, 45)
	g.floatTo = g.intTo + pctOr(g.cfg.FloatPct, 15)
	g.crossTo = g.floatTo + pctOr(g.cfg.CrossPct, 6)
	g.memTo = g.crossTo + pctOr(g.cfg.MemPct, 10)
	g.callTo = g.memTo + pctOr(g.cfg.CallPct, 12)
	if g.callTo > 100 {
		panic(fmt.Sprintf("progs: statement weights sum to %d%% > 100%% (IntALU+Float+Cross+Mem+Call)", g.callTo))
	}
	g.ifTo = pctOr(g.cfg.IfPct, 12)
	g.loopTo = g.ifTo + pctOr(g.cfg.LoopPct, 10)
	if g.loopTo > 100 {
		panic(fmt.Sprintf("progs: control-flow weights sum to %d%% > 100%% (If+Loop)", g.loopTo))
	}
}

func (g *gen) randInt() ir.Temp   { return g.ints[g.rng.Intn(len(g.ints))] }
func (g *gen) randFloat() ir.Temp { return g.floats[g.rng.Intn(len(g.floats))] }

// operand returns a random integer operand: usually a temp, sometimes an
// immediate.
func (g *gen) operand() ir.Operand {
	if g.rng.Intn(4) == 0 {
		return ir.ImmOp(int64(g.rng.Intn(128) - 64))
	}
	return ir.TempOp(g.randInt())
}

// block emits roughly budget statements at the given remaining nesting
// depth.
func (g *gen) block(budget, depth int) {
	for budget > 0 {
		roll := g.rng.Intn(100)
		switch {
		case depth > 0 && roll < g.ifTo:
			used := g.ifElse(budget/2, depth-1)
			budget -= used + 1
		case depth > 0 && roll < g.loopTo:
			used := g.loop(budget/2, depth-1)
			budget -= used + 2
		default:
			g.stmt()
			budget--
		}
	}
}

// stmt emits one straight-line statement.
func (g *gen) stmt() {
	pb := g.pb
	roll := g.rng.Intn(100)
	switch {
	case roll < g.intTo: // integer ALU
		ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr,
			ir.Div, ir.Rem, ir.CmpLT, ir.CmpEQ, ir.CmpGE}
		op := ops[g.rng.Intn(len(ops))]
		src := g.operand()
		if op == ir.Shl || op == ir.Shr {
			src = ir.ImmOp(int64(g.rng.Intn(8)))
		}
		pb.Op2(op, g.randInt(), ir.TempOp(g.randInt()), src)
	case roll < g.floatTo && len(g.floats) > 0: // float ALU
		ops := []ir.Op{ir.FAdd, ir.FSub, ir.FMul}
		op := ops[g.rng.Intn(len(ops))]
		pb.Op2(op, g.randFloat(), ir.TempOp(g.randFloat()), ir.TempOp(g.randFloat()))
	case roll < g.crossTo && len(g.floats) > 0: // cross-file traffic
		if g.rng.Intn(2) == 0 {
			pb.Op1(ir.CvtIF, g.randFloat(), ir.TempOp(g.randInt()))
		} else {
			f := g.randFloat()
			cl := pb.FloatTemp("")
			pb.Op2(ir.FMul, cl, ir.TempOp(f), ir.FImmOp(0.0001))
			pb.Op1(ir.CvtFI, g.randInt(), ir.TempOp(cl))
		}
	case roll < g.memTo && g.cfg.Memory: // memory traffic in a private window
		addr := int64(g.rng.Intn(64))
		if g.rng.Intn(2) == 0 {
			pb.St(ir.TempOp(g.randInt()), ir.ImmOp(0), addr)
		} else {
			pb.Ld(g.randInt(), ir.ImmOp(0), addr)
		}
	case roll < g.callTo && g.cfg.Calls:
		switch g.rng.Intn(3) {
		case 0:
			pb.Call("getc", g.randInt())
		case 1:
			if g.cfg.Helper {
				pb.Call("mix", g.randInt(), ir.TempOp(g.randInt()), ir.TempOp(g.randInt()))
			} else {
				pb.Call("getc", g.randInt())
			}
		case 2:
			if len(g.floats) > 0 {
				d := g.randFloat()
				a := g.randFloat()
				abs := g.pb.FloatTemp("")
				pb.Op2(ir.FMul, abs, ir.TempOp(a), ir.TempOp(a)) // square: non-negative
				pb.Call("fsqrt", d, ir.TempOp(abs))
			} else {
				pb.Call("getc", g.randInt())
			}
		}
	default: // fresh constants keep live ranges turning over
		pb.Ldi(g.randInt(), int64(g.rng.Intn(1000)))
	}
}

// ifElse emits a diamond.
func (g *gen) ifElse(budget, depth int) int {
	pb := g.pb
	cond := pb.IntTemp("")
	pb.Op2(ir.CmpLT, cond, ir.TempOp(g.randInt()), g.operand())
	thenB := pb.Block("")
	elseB := pb.Block("")
	join := pb.Block("")
	pb.Br(ir.TempOp(cond), thenB, elseB)

	half := budget / 2
	pb.StartBlock(thenB)
	g.block(max(1, half), depth)
	pb.Jmp(join)
	pb.StartBlock(elseB)
	g.block(max(1, budget-half), depth)
	pb.Jmp(join)
	pb.StartBlock(join)
	return budget
}

// loop emits a bounded counting loop (2–4 iterations).
func (g *gen) loop(budget, depth int) int {
	pb := g.pb
	g.loopID++
	i := pb.IntTemp(fmt.Sprintf("lc%d", g.loopID))
	n := int64(2 + g.rng.Intn(3))
	pb.Ldi(i, 0)
	head := pb.Block("")
	body := pb.Block("")
	exit := pb.Block("")
	pb.Jmp(head)

	pb.StartBlock(head)
	c := pb.IntTemp("")
	pb.Op2(ir.CmpLT, c, ir.TempOp(i), ir.ImmOp(n))
	pb.Br(ir.TempOp(c), body, exit)

	pb.StartBlock(body)
	g.block(max(1, budget), depth)
	pb.Op2(ir.Add, i, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(head)

	pb.StartBlock(exit)
	return budget
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
