package progs

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/target"
)

// Module is a compile-time workload for Table 3: a set of procedures
// characterized by their average number of register candidates.
type Module struct {
	Name string
	// Procs are the procedures to allocate (one program, never run).
	Prog *ir.Program
	// AvgCandidates is the design target the generator aimed for.
	AvgCandidates int
}

// Table3Modules returns synthetic stand-ins for the three modules of
// Table 3: cvrin.c from espresso (≈245 candidates per procedure across
// many small procedures), and twldrv.f / fpppp.f from fpppp (≈6218 and
// ≈6697 candidates in enormous straight-line floating-point
// procedures).
func Table3Modules(mach *target.Machine) []*Module {
	return []*Module{
		BuildModule(mach, "cvrin.c", 8, 245, 1),
		BuildModule(mach, "twldrv.f", 1, 6218, 2),
		BuildModule(mach, "fpppp.f", 1, 6697, 3),
	}
}

// BuildModule generates a module of nProcs procedures with roughly
// candsPerProc register candidates each. Candidates are born in long
// overlapping waves (window controls how many stay simultaneously live),
// which is what drives interference-graph size for the coloring
// allocator.
func BuildModule(mach *target.Machine, name string, nProcs, candsPerProc, window int) *Module {
	b := ir.NewBuilder(mach, 64)
	rng := rand.New(rand.NewSource(int64(candsPerProc)*31 + int64(nProcs)))
	for pi := 0; pi < nProcs; pi++ {
		buildPressureProc(b, fmt.Sprintf("p%d", pi), rng, candsPerProc, window)
	}
	// An entry point so the program validates; compile-time experiments
	// never execute it.
	pb := b.NewProc("main")
	z := pb.IntTemp("z")
	pb.Ldi(z, 0)
	pb.Ret(z)
	return &Module{Name: name, Prog: b.Prog, AvgCandidates: candsPerProc}
}

// buildPressureProc emits one procedure with cands temporaries arranged
// in overlapping waves: each wave of `window`×8 values is combined with
// values from earlier waves, inside a couple of loops so lifetimes cross
// block boundaries and loop depths vary.
func buildPressureProc(b *ir.Builder, name string, rng *rand.Rand, cands, window int) {
	pb := b.NewProc(name, target.ClassInt)
	seedParam := pb.P.Params[0]

	waveLen := window * 8
	// Blocks: prologue, a loop head/body per 4 waves, epilogue.
	var liveWindow []ir.Temp
	var floats []ir.Temp
	total := 0

	sum := pb.IntTemp("acc")
	pb.Mov(sum, ir.TempOp(seedParam))
	fsum := pb.FloatTemp("facc")
	pb.FLdi(fsum, 1.0)

	loopCount := 0
	for total < cands {
		// Open a loop every few waves so loop depth matters.
		var head, body, exit *ir.Block
		inLoop := rng.Intn(3) == 0
		var lc ir.Temp
		if inLoop {
			loopCount++
			lc = pb.IntTemp(fmt.Sprintf("lc%d", loopCount))
			pb.Ldi(lc, 0)
			head = pb.Block("")
			body = pb.Block("")
			exit = pb.Block("")
			pb.Jmp(head)
			pb.StartBlock(head)
			cc := pb.IntTemp("")
			pb.Op2(ir.CmpLT, cc, ir.TempOp(lc), ir.ImmOp(2))
			pb.Br(ir.TempOp(cc), body, exit)
			pb.StartBlock(body)
		}
		// Emit one wave of new candidates.
		for w := 0; w < waveLen && total < cands; w++ {
			var t ir.Temp
			if rng.Intn(3) == 0 {
				t = pb.FloatTemp("")
				if len(floats) > 0 && rng.Intn(2) == 0 {
					o := floats[rng.Intn(len(floats))]
					pb.Op2(ir.FAdd, t, ir.TempOp(o), ir.FImmOp(0.5))
				} else {
					pb.FLdi(t, float64(total%7)+0.25)
				}
				floats = append(floats, t)
				if len(floats) > waveLen {
					// Retire the oldest float into the accumulator.
					old := floats[0]
					floats = floats[1:]
					pb.Op2(ir.FAdd, fsum, ir.TempOp(fsum), ir.TempOp(old))
				}
			} else {
				t = pb.IntTemp("")
				if len(liveWindow) > 0 && rng.Intn(2) == 0 {
					o := liveWindow[rng.Intn(len(liveWindow))]
					pb.Op2(ir.Add, t, ir.TempOp(o), ir.ImmOp(int64(total)))
				} else {
					pb.Ldi(t, int64(total*7+1))
				}
				liveWindow = append(liveWindow, t)
				if len(liveWindow) > waveLen {
					old := liveWindow[0]
					liveWindow = liveWindow[1:]
					pb.Op2(ir.Xor, sum, ir.TempOp(sum), ir.TempOp(old))
				}
			}
			total++
		}
		if inLoop {
			pb.Op2(ir.Add, lc, ir.TempOp(lc), ir.ImmOp(1))
			pb.Jmp(head)
			pb.StartBlock(exit)
		}
	}
	// Retire everything still live.
	for _, t := range liveWindow {
		pb.Op2(ir.Xor, sum, ir.TempOp(sum), ir.TempOp(t))
	}
	for _, t := range floats {
		pb.Op2(ir.FAdd, fsum, ir.TempOp(fsum), ir.TempOp(t))
	}
	fi := pb.IntTemp("")
	pb.Op1(ir.CvtFI, fi, ir.TempOp(fsum))
	pb.Op2(ir.Add, sum, ir.TempOp(sum), ir.TempOp(fi))
	pb.Ret(sum)
}
