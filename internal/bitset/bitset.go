// Package bitset provides dense bit vectors sized for dataflow analysis.
//
// The allocators and dataflow solvers in this repository manipulate sets of
// temporaries whose universe size is known up front, so a fixed-width dense
// representation is both the fastest and the simplest choice. The API is
// deliberately small: the operations below are exactly the ones the
// iterative bit-vector dataflow of Traub et al. §2.4 needs (union,
// difference, copy, equality) plus the set operations liveness analysis
// needs.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit vector. The zero value is an empty set of capacity 0;
// use New to create a set with a fixed universe size.
type Set struct {
	words []uint64
	n     int // universe size in bits
}

// New returns an empty set over a universe of n elements (0..n-1).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the universe size the set was created with.
func (s *Set) Len() int { return s.n }

// Reset reshapes s to an empty set over a universe of n elements. The
// backing array is reused whenever its capacity allows, so steady-state
// reuse of one Set across analyses of similar size performs no
// allocation. This is the growth/reuse primitive the pooled dataflow and
// allocator scratch arenas are built on.
func (s *Set) Reset(n int) {
	if n < 0 {
		panic("bitset: negative size")
	}
	nw := (n + wordBits - 1) / wordBits
	if cap(s.words) < nw {
		s.words = make([]uint64, nw)
	} else {
		s.words = s.words[:nw]
		clear(s.words)
	}
	s.n = n
}

// Rank returns the number of members of s strictly less than i. Together
// with ForEach's ascending order this lets dense side arrays be indexed
// by set membership: the k-th member visited has rank k.
func (s *Set) Rank(i int) int {
	if i <= 0 {
		return 0
	}
	if i > s.n {
		i = s.n
	}
	wi := i / wordBits
	c := 0
	for _, w := range s.words[:wi] {
		c += bits.OnesCount64(w)
	}
	if b := i % wordBits; b != 0 {
		c += bits.OnesCount64(s.words[wi] & (1<<uint(b) - 1))
	}
	return c
}

// Contains reports whether i is a member of s.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Add inserts i into s.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Add(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from s.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Remove(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Clear empties the set.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill makes s the full universe {0..n-1} (the top element of a
// must-analysis lattice).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if r := s.n % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = 1<<uint(r) - 1
	}
}

// Copy overwrites s with the contents of t. The sets must have equal size.
func (s *Set) Copy(t *Set) {
	s.check(t)
	copy(s.words, t.words)
}

// Clone returns a fresh set with the same contents as s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Union sets s = s ∪ t and reports whether s changed.
func (s *Set) Union(t *Set) bool {
	s.check(t)
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersect sets s = s ∩ t.
func (s *Set) Intersect(t *Set) {
	s.check(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// Subtract sets s = s − t.
func (s *Set) Subtract(t *Set) {
	s.check(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and t contain exactly the same members.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range t.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls f for every member in ascending order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// Members returns the elements in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{a b c}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// CountRange returns the number of members of s in [lo, hi). Together
// with Rank it supports incremental rank cursors: for ascending queries
// g0 < g1, Rank(g1) = Rank(g0) + CountRange(g0, g1), which turns a
// sequence of rank lookups into one overall pass over the words.
func (s *Set) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return 0
	}
	lw, hw := lo/wordBits, hi/wordBits
	loMask := ^uint64(0) << uint(lo%wordBits)
	if lw == hw {
		hiMask := uint64(1)<<uint(hi%wordBits) - 1
		return bits.OnesCount64(s.words[lw] & loMask & hiMask)
	}
	c := bits.OnesCount64(s.words[lw] & loMask)
	for i := lw + 1; i < hw; i++ {
		c += bits.OnesCount64(s.words[i])
	}
	if r := hi % wordBits; r != 0 {
		c += bits.OnesCount64(s.words[hw] & (1<<uint(r) - 1))
	}
	return c
}

// Slab carves many equally-sized Sets out of a single backing array. A
// dataflow problem over nb blocks needs O(nb) sets of one universe size;
// allocating them individually is the dominant allocation cost of the
// analysis, while a slab costs two allocations — and zero once it is
// reused, because Reset reshapes the existing backing in place. Sets
// handed out by a slab remain valid until the next Reset; they must not
// be retained beyond it. The zero value is an empty slab ready for Reset.
type Slab struct {
	sets  []Set
	words []uint64
}

// NewSlab returns a slab of count empty sets, each over a universe of n
// elements.
func NewSlab(count, n int) *Slab {
	sl := &Slab{}
	sl.Reset(count, n)
	return sl
}

// Reset reshapes the slab to count empty sets of universe n each,
// reusing the backing storage whenever capacity allows.
func (sl *Slab) Reset(count, n int) {
	if count < 0 || n < 0 {
		panic("bitset: negative slab shape")
	}
	per := (n + wordBits - 1) / wordBits
	total := count * per
	if cap(sl.words) < total {
		sl.words = make([]uint64, total)
	} else {
		sl.words = sl.words[:total]
		clear(sl.words)
	}
	if cap(sl.sets) < count {
		sl.sets = make([]Set, count)
	} else {
		sl.sets = sl.sets[:count]
	}
	for i := range sl.sets {
		sl.sets[i] = Set{words: sl.words[i*per : (i+1)*per : (i+1)*per], n: n}
	}
}

// Set returns the i-th set of the slab.
func (sl *Slab) Set(i int) *Set { return &sl.sets[i] }

// Count returns the number of sets the slab currently holds.
func (sl *Slab) Count() int { return len(sl.sets) }

func (s *Set) check(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: size mismatch %d vs %d", s.n, t.n))
	}
}

// Matrix is a lower-triangular bit matrix recording a symmetric relation
// over n elements. This is the adjacency representation the paper's
// coloring implementation uses instead of a hash table ("We use a
// lower-triangular bit matrix ... to record the adjacency relation of the
// interference graph", §3).
type Matrix struct {
	bits []uint64
	n    int
}

// NewMatrix returns an empty symmetric relation over n elements.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		panic("bitset: negative matrix size")
	}
	// Row i has i+1 entries (lower triangle including the diagonal).
	total := n * (n + 1) / 2
	return &Matrix{bits: make([]uint64, (total+wordBits-1)/wordBits), n: n}
}

func (m *Matrix) index(i, j int) int {
	if i < j {
		i, j = j, i
	}
	if i >= m.n || j < 0 {
		panic(fmt.Sprintf("bitset: matrix index (%d,%d) out of range n=%d", i, j, m.n))
	}
	return i*(i+1)/2 + j
}

// Set records the symmetric pair (i, j).
func (m *Matrix) Set(i, j int) {
	k := m.index(i, j)
	m.bits[k/wordBits] |= 1 << uint(k%wordBits)
}

// Has reports whether the pair (i, j) has been recorded.
func (m *Matrix) Has(i, j int) bool {
	k := m.index(i, j)
	return m.bits[k/wordBits]&(1<<uint(k%wordBits)) != 0
}

// Count returns the number of recorded pairs (counting (i,i) once).
func (m *Matrix) Count() int {
	c := 0
	for _, w := range m.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every recorded pair.
func (m *Matrix) Reset() {
	for i := range m.bits {
		m.bits[i] = 0
	}
}
