// Package bitset provides dense bit vectors sized for dataflow analysis.
//
// The allocators and dataflow solvers in this repository manipulate sets of
// temporaries whose universe size is known up front, so a fixed-width dense
// representation is both the fastest and the simplest choice. The API is
// deliberately small: the operations below are exactly the ones the
// iterative bit-vector dataflow of Traub et al. §2.4 needs (union,
// difference, copy, equality) plus the set operations liveness analysis
// needs.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit vector. The zero value is an empty set of capacity 0;
// use New to create a set with a fixed universe size.
type Set struct {
	words []uint64
	n     int // universe size in bits
}

// New returns an empty set over a universe of n elements (0..n-1).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the universe size the set was created with.
func (s *Set) Len() int { return s.n }

// Contains reports whether i is a member of s.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Add inserts i into s.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Add(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from s.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Remove(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Clear empties the set.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Copy overwrites s with the contents of t. The sets must have equal size.
func (s *Set) Copy(t *Set) {
	s.check(t)
	copy(s.words, t.words)
}

// Clone returns a fresh set with the same contents as s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Union sets s = s ∪ t and reports whether s changed.
func (s *Set) Union(t *Set) bool {
	s.check(t)
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersect sets s = s ∩ t.
func (s *Set) Intersect(t *Set) {
	s.check(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// Subtract sets s = s − t.
func (s *Set) Subtract(t *Set) {
	s.check(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and t contain exactly the same members.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range t.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls f for every member in ascending order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// Members returns the elements in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{a b c}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) check(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: size mismatch %d vs %d", s.n, t.n))
	}
}

// Matrix is a lower-triangular bit matrix recording a symmetric relation
// over n elements. This is the adjacency representation the paper's
// coloring implementation uses instead of a hash table ("We use a
// lower-triangular bit matrix ... to record the adjacency relation of the
// interference graph", §3).
type Matrix struct {
	bits []uint64
	n    int
}

// NewMatrix returns an empty symmetric relation over n elements.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		panic("bitset: negative matrix size")
	}
	// Row i has i+1 entries (lower triangle including the diagonal).
	total := n * (n + 1) / 2
	return &Matrix{bits: make([]uint64, (total+wordBits-1)/wordBits), n: n}
}

func (m *Matrix) index(i, j int) int {
	if i < j {
		i, j = j, i
	}
	if i >= m.n || j < 0 {
		panic(fmt.Sprintf("bitset: matrix index (%d,%d) out of range n=%d", i, j, m.n))
	}
	return i*(i+1)/2 + j
}

// Set records the symmetric pair (i, j).
func (m *Matrix) Set(i, j int) {
	k := m.index(i, j)
	m.bits[k/wordBits] |= 1 << uint(k%wordBits)
}

// Has reports whether the pair (i, j) has been recorded.
func (m *Matrix) Has(i, j int) bool {
	k := m.index(i, j)
	return m.bits[k/wordBits]&(1<<uint(k%wordBits)) != 0
}

// Count returns the number of recorded pairs (counting (i,i) once).
func (m *Matrix) Count() int {
	c := 0
	for _, w := range m.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every recorded pair.
func (m *Matrix) Reset() {
	for i := range m.bits {
		m.bits[i] = 0
	}
}
