package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("not empty after Clear")
	}
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(100) {
		t.Fatal("Contains out of range should be false")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	New(4).Add(4)
}

func TestUnionSubtractIntersect(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}
	u := a.Clone()
	if !u.Union(b) {
		t.Fatal("Union reported no change")
	}
	if u.Union(b) {
		t.Fatal("second Union reported change")
	}
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if u.Contains(i) != want {
			t.Fatalf("union Contains(%d) = %v, want %v", i, u.Contains(i), want)
		}
	}
	d := a.Clone()
	d.Subtract(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if d.Contains(i) != want {
			t.Fatalf("diff Contains(%d) = %v, want %v", i, d.Contains(i), want)
		}
	}
	x := a.Clone()
	x.Intersect(b)
	for i := 0; i < 100; i++ {
		want := i%6 == 0
		if x.Contains(i) != want {
			t.Fatalf("intersect Contains(%d) = %v, want %v", i, x.Contains(i), want)
		}
	}
}

func TestEqualCopyClone(t *testing.T) {
	a := New(70)
	a.Add(3)
	a.Add(69)
	b := New(70)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.Copy(a)
	if !a.Equal(b) {
		t.Fatal("Copy did not produce equal set")
	}
	c := a.Clone()
	c.Remove(3)
	if a.Equal(c) {
		t.Fatal("Clone aliases original")
	}
	if a.Equal(New(71)) {
		t.Fatal("different-size sets reported equal")
	}
}

func TestForEachMembersOrder(t *testing.T) {
	s := New(200)
	want := []int{5, 64, 65, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if s.String() != "{5 64 65 128 199}" {
		t.Fatalf("String = %q", s.String())
	}
}

// Property: set operations agree with a map-based model.
func TestQuickAgainstModel(t *testing.T) {
	f := func(adds []uint8, removes []uint8) bool {
		s := New(256)
		model := map[int]bool{}
		for _, a := range adds {
			s.Add(int(a))
			model[int(a)] = true
		}
		for _, r := range removes {
			s.Remove(int(r))
			delete(model, int(r))
		}
		if s.Count() != len(model) {
			return false
		}
		for i := 0; i < 256; i++ {
			if s.Contains(i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and idempotent; subtract then union
// restores a superset relationship.
func TestQuickAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randSet := func() *Set {
		s := New(128)
		for i := 0; i < 40; i++ {
			s.Add(rng.Intn(128))
		}
		return s
	}
	for iter := 0; iter < 200; iter++ {
		a, b := randSet(), randSet()
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		if !ab.Equal(ba) {
			t.Fatal("union not commutative")
		}
		ab2 := ab.Clone()
		ab2.Union(b)
		if !ab2.Equal(ab) {
			t.Fatal("union not idempotent")
		}
		d := a.Clone()
		d.Subtract(b)
		d.Intersect(b)
		if !d.Empty() {
			t.Fatal("(a-b) ∩ b not empty")
		}
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(50)
	pairs := [][2]int{{0, 0}, {1, 0}, {49, 48}, {10, 20}, {20, 10}, {33, 33}}
	for _, p := range pairs {
		m.Set(p[0], p[1])
	}
	if !m.Has(0, 0) || !m.Has(0, 1) || !m.Has(48, 49) || !m.Has(20, 10) || !m.Has(10, 20) {
		t.Fatal("Has missing recorded pair")
	}
	if m.Has(5, 6) {
		t.Fatal("Has reports unrecorded pair")
	}
	// {0,0},{1,0},{49,48},{10,20} (dup),{33,33} => 5 distinct cells
	if m.Count() != 5 {
		t.Fatalf("Count = %d, want 5", m.Count())
	}
	m.Reset()
	if m.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestMatrixSymmetryQuick(t *testing.T) {
	f := func(a, b uint8) bool {
		m := NewMatrix(256)
		m.Set(int(a), int(b))
		return m.Has(int(b), int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
