package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("not empty after Clear")
	}
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(100) {
		t.Fatal("Contains out of range should be false")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	New(4).Add(4)
}

func TestUnionSubtractIntersect(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}
	u := a.Clone()
	if !u.Union(b) {
		t.Fatal("Union reported no change")
	}
	if u.Union(b) {
		t.Fatal("second Union reported change")
	}
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if u.Contains(i) != want {
			t.Fatalf("union Contains(%d) = %v, want %v", i, u.Contains(i), want)
		}
	}
	d := a.Clone()
	d.Subtract(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if d.Contains(i) != want {
			t.Fatalf("diff Contains(%d) = %v, want %v", i, d.Contains(i), want)
		}
	}
	x := a.Clone()
	x.Intersect(b)
	for i := 0; i < 100; i++ {
		want := i%6 == 0
		if x.Contains(i) != want {
			t.Fatalf("intersect Contains(%d) = %v, want %v", i, x.Contains(i), want)
		}
	}
}

func TestEqualCopyClone(t *testing.T) {
	a := New(70)
	a.Add(3)
	a.Add(69)
	b := New(70)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.Copy(a)
	if !a.Equal(b) {
		t.Fatal("Copy did not produce equal set")
	}
	c := a.Clone()
	c.Remove(3)
	if a.Equal(c) {
		t.Fatal("Clone aliases original")
	}
	if a.Equal(New(71)) {
		t.Fatal("different-size sets reported equal")
	}
}

func TestForEachMembersOrder(t *testing.T) {
	s := New(200)
	want := []int{5, 64, 65, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if s.String() != "{5 64 65 128 199}" {
		t.Fatalf("String = %q", s.String())
	}
}

// TestQuickAgainstModel checks the property that set operations agree
// with a map-based model.
func TestQuickAgainstModel(t *testing.T) {
	f := func(adds []uint8, removes []uint8) bool {
		s := New(256)
		model := map[int]bool{}
		for _, a := range adds {
			s.Add(int(a))
			model[int(a)] = true
		}
		for _, r := range removes {
			s.Remove(int(r))
			delete(model, int(r))
		}
		if s.Count() != len(model) {
			return false
		}
		for i := 0; i < 256; i++ {
			if s.Contains(i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlgebra checks that union is commutative and idempotent, and
// that subtract then union restores a superset relationship.
func TestQuickAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randSet := func() *Set {
		s := New(128)
		for i := 0; i < 40; i++ {
			s.Add(rng.Intn(128))
		}
		return s
	}
	for iter := 0; iter < 200; iter++ {
		a, b := randSet(), randSet()
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		if !ab.Equal(ba) {
			t.Fatal("union not commutative")
		}
		ab2 := ab.Clone()
		ab2.Union(b)
		if !ab2.Equal(ab) {
			t.Fatal("union not idempotent")
		}
		d := a.Clone()
		d.Subtract(b)
		d.Intersect(b)
		if !d.Empty() {
			t.Fatal("(a-b) ∩ b not empty")
		}
	}
}

func TestFillWordBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("Fill(n=%d): Count = %d", n, s.Count())
		}
		if n > 0 && !s.Contains(n-1) {
			t.Errorf("Fill(n=%d): missing %d", n, n-1)
		}
		if s.Contains(n) {
			t.Errorf("Fill(n=%d): contains out-of-universe %d", n, n)
		}
	}
}

func TestRankWordBoundaries(t *testing.T) {
	s := New(130)
	members := []int{0, 5, 63, 64, 65, 127, 128, 129}
	for _, i := range members {
		s.Add(i)
	}
	for q := 0; q <= 131; q++ {
		want := 0
		for _, m := range members {
			if m < q {
				want++
			}
		}
		if got := s.Rank(q); got != want {
			t.Fatalf("Rank(%d) = %d, want %d", q, got, want)
		}
	}
	if got := s.Rank(-3); got != 0 {
		t.Fatalf("Rank(-3) = %d", got)
	}
}

func TestRankMatchesForEachOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				s.Add(i)
			}
		}
		k := 0
		s.ForEach(func(i int) {
			if got := s.Rank(i); got != k {
				t.Fatalf("n=%d: member %d visited at position %d but Rank=%d", n, i, k, got)
			}
			k++
		})
	}
}

func TestCountRangeAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		s := New(n)
		members := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				s.Add(i)
				members[i] = true
			}
		}
		for q := 0; q < 30; q++ {
			lo := rng.Intn(n+4) - 2
			hi := rng.Intn(n+4) - 2
			want := 0
			for m := range members {
				if m >= lo && m < hi {
					want++
				}
			}
			if got := s.CountRange(lo, hi); got != want {
				t.Fatalf("n=%d CountRange(%d,%d) = %d, want %d", n, lo, hi, got, want)
			}
		}
		// The incremental-rank identity the resolve cursor relies on.
		prevGi, prevRank := 0, 0
		s.ForEach(func(i int) {
			r := prevRank + s.CountRange(prevGi, i)
			if r != s.Rank(i) {
				t.Fatalf("n=%d cursor rank %d != Rank(%d)=%d", n, r, i, s.Rank(i))
			}
			prevGi, prevRank = i, r
		})
	}
}

// TestResetReuse pins the growth/reuse contract the pooled scratch
// arenas depend on: Reset reshapes in place when capacity allows and
// never leaks members from the previous shape.
func TestResetReuse(t *testing.T) {
	s := New(64)
	s.Add(0)
	s.Add(63)
	s.Reset(10)
	if s.Len() != 10 || !s.Empty() {
		t.Fatalf("after Reset(10): Len=%d Empty=%v", s.Len(), s.Empty())
	}
	s.Add(9)
	// Growing within the same word capacity must not resurrect bit 63.
	s.Reset(64)
	if !s.Empty() {
		t.Fatalf("after Reset(64): stale members %v", s.Members())
	}
	// Growing beyond capacity allocates fresh zeroed words.
	s.Add(1)
	s.Reset(300)
	if s.Len() != 300 || !s.Empty() {
		t.Fatalf("after Reset(300): Len=%d Empty=%v", s.Len(), s.Empty())
	}
	s.Add(299)
	if !s.Contains(299) || s.Count() != 1 {
		t.Fatal("set unusable after growth")
	}
	// Shrinking to the empty universe is legal.
	s.Reset(0)
	if s.Len() != 0 || !s.Empty() {
		t.Fatal("Reset(0) broken")
	}
}

func TestSlabIndependentSets(t *testing.T) {
	sl := NewSlab(3, 65) // 65 forces a two-word stride
	if sl.Count() != 3 {
		t.Fatalf("Count = %d", sl.Count())
	}
	sl.Set(0).Add(64)
	sl.Set(1).Add(0)
	if sl.Set(2).Count() != 0 {
		t.Fatal("neighbor set polluted")
	}
	if !sl.Set(0).Contains(64) || sl.Set(0).Count() != 1 {
		t.Fatal("set 0 lost its member")
	}
	if sl.Set(1).Contains(64) {
		t.Fatal("adjacent words shared between sets")
	}
	// Sets from a slab interoperate with standalone sets.
	other := New(65)
	other.Add(64)
	if !sl.Set(0).Equal(other) {
		t.Fatal("slab set not equal to equivalent standalone set")
	}

	// Reset reshapes and clears; reuse must not leak previous members.
	sl.Reset(5, 64)
	for i := 0; i < 5; i++ {
		if !sl.Set(i).Empty() || sl.Set(i).Len() != 64 {
			t.Fatalf("set %d not reset: %v", i, sl.Set(i).Members())
		}
	}
	// Zero-universe and zero-count shapes are legal.
	sl.Reset(0, 64)
	if sl.Count() != 0 {
		t.Fatal("Reset(0, 64) kept sets")
	}
	sl.Reset(2, 0)
	if sl.Count() != 2 || sl.Set(1).Len() != 0 {
		t.Fatal("Reset(2, 0) broken")
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(50)
	pairs := [][2]int{{0, 0}, {1, 0}, {49, 48}, {10, 20}, {20, 10}, {33, 33}}
	for _, p := range pairs {
		m.Set(p[0], p[1])
	}
	if !m.Has(0, 0) || !m.Has(0, 1) || !m.Has(48, 49) || !m.Has(20, 10) || !m.Has(10, 20) {
		t.Fatal("Has missing recorded pair")
	}
	if m.Has(5, 6) {
		t.Fatal("Has reports unrecorded pair")
	}
	// {0,0},{1,0},{49,48},{10,20} (dup),{33,33} => 5 distinct cells
	if m.Count() != 5 {
		t.Fatalf("Count = %d, want 5", m.Count())
	}
	m.Reset()
	if m.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestMatrixSymmetryQuick(t *testing.T) {
	f := func(a, b uint8) bool {
		m := NewMatrix(256)
		m.Set(int(a), int(b))
		return m.Has(int(b), int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
