package scratch

import "testing"

func TestGrowReusesCapacity(t *testing.T) {
	buf := make([]int, 0, 16)
	buf = append(buf, 1, 2, 3)

	grown := Grow(buf, 8)
	if len(grown) != 8 {
		t.Fatalf("len = %d, want 8", len(grown))
	}
	if &grown[0] != &buf[0] {
		t.Fatal("Grow reallocated despite sufficient capacity")
	}
	// Grow does NOT clear: the surviving prefix is still visible, which
	// is the documented contract (callers fully reinitialize).
	if grown[0] != 1 || grown[1] != 2 || grown[2] != 3 {
		t.Fatalf("prefix clobbered: %v", grown[:3])
	}

	big := Grow(grown, 64)
	if len(big) != 64 || cap(big) < 64 {
		t.Fatalf("len/cap = %d/%d", len(big), cap(big))
	}
	if cap(grown) >= 64 {
		t.Fatal("test premise broken: expected a reallocation")
	}

	// Shrinking reuses in place.
	small := Grow(big, 2)
	if len(small) != 2 || &small[0] != &big[0] {
		t.Fatal("shrink did not reuse the backing array")
	}
}

func TestGrowZeroAndEmpty(t *testing.T) {
	var nilBuf []string
	out := Grow(nilBuf, 0)
	if len(out) != 0 {
		t.Fatalf("len = %d", len(out))
	}
	out = Grow(nilBuf, 3)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
}

func TestGrowClearedClearsWholeCapacity(t *testing.T) {
	type holder struct{ p *int }
	v := 42
	buf := make([]holder, 8, 8)
	for i := range buf {
		buf[i] = holder{p: &v}
	}

	// Resize down to 2: the tail beyond len must ALSO be cleared, or the
	// pooled buffer would pin &v until the next workload of size 8.
	out := GrowCleared(buf, 2)
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
	if &out[0] != &buf[0] {
		t.Fatal("GrowCleared reallocated despite sufficient capacity")
	}
	for i := 0; i < 2; i++ {
		if out[i].p != nil {
			t.Fatalf("element %d not cleared", i)
		}
	}
	full := out[:cap(out)]
	for i := range full {
		if full[i].p != nil {
			t.Fatalf("capacity tail element %d still pins its pointer", i)
		}
	}
}

func TestGrowClearedReallocates(t *testing.T) {
	buf := make([]int, 2, 2)
	buf[0], buf[1] = 7, 8
	out := GrowCleared(buf, 5)
	if len(out) != 5 {
		t.Fatalf("len = %d", len(out))
	}
	for i, x := range out {
		if x != 0 {
			t.Fatalf("fresh element %d = %d", i, x)
		}
	}
	// The original buffer is untouched on the reallocation path.
	if buf[0] != 7 || buf[1] != 8 {
		t.Fatalf("source buffer clobbered: %v", buf)
	}
}
