// Package scratch holds the capacity-reuse helpers every pooled arena
// in this repository is built on. Two variants exist because pooled
// buffers fall into two classes: value buffers the caller fully
// reinitializes (Grow), and pointer-bearing buffers whose capacity tail
// would otherwise pin objects from the largest workload ever seen for
// the lifetime of the pool (GrowCleared).
package scratch

// Grow returns buf resized to n, reusing its backing array when
// capacity allows. Elements are NOT cleared: callers must initialize
// all n entries before reading them. Use for buffers of plain values.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// GrowCleared returns buf resized to n with its ENTIRE capacity zeroed,
// not just [:n]: the tail beyond n would otherwise pin maps, slices and
// pointers from the largest workload ever seen for as long as the
// pooled buffer lives. Use for buffers whose element type reaches other
// objects.
func GrowCleared[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	full := buf[:cap(buf)]
	clear(full)
	return full[:n]
}
