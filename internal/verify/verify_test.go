package verify

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
)

// hand-build a tiny "allocated" procedure with Orig annotations.
func handProc(mach *target.Machine) (*ir.Proc, ir.Temp, target.Reg, target.Reg) {
	p := ir.NewProc("main")
	x := p.NewTemp(target.ClassInt, "x")
	r1 := mach.Reg(target.ClassInt, 1)
	r2 := mach.Reg(target.ClassInt, 2)
	blk := p.NewBlock("entry")
	blk.Instrs = []ir.Instr{
		// x ← 5 (original def, allocated to r1)
		{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(r1)}, Uses: []ir.Operand{ir.ImmOp(5)},
			OrigDefs: []ir.Temp{x}, OrigUses: []ir.Temp{ir.NoTemp}},
		// use of x from r1 (correct)
		{Op: ir.Add, Defs: []ir.Operand{ir.RegOp(r2)}, Uses: []ir.Operand{ir.RegOp(r1), ir.ImmOp(1)},
			OrigDefs: []ir.Temp{ir.NoTemp}, OrigUses: []ir.Temp{x, ir.NoTemp}},
		{Op: ir.Ret},
	}
	return p, x, r1, r2
}

func TestAcceptsCorrect(t *testing.T) {
	mach := target.Tiny(6, 3)
	p, _, _, _ := handProc(mach)
	if err := Verify(p, mach); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsWrongRegister(t *testing.T) {
	mach := target.Tiny(6, 3)
	p, _, _, r2 := handProc(mach)
	// Redirect the use to r2, which holds nothing.
	p.Blocks[0].Instrs[1].Uses[0] = ir.RegOp(r2)
	if err := Verify(p, mach); err == nil {
		t.Fatal("wrong-register use accepted")
	}
}

func TestRejectsValueLostAcrossCall(t *testing.T) {
	mach := target.Tiny(6, 3)
	p, x, r1, _ := handProc(mach)
	// Insert a call between def and use: r1 is caller-saved on Tiny, so
	// the value is lost and the use must be rejected.
	if !mach.CallerSaved(r1) {
		t.Skip("register layout changed")
	}
	blk := p.Blocks[0]
	call := ir.Instr{Op: ir.Call, Uses: []ir.Operand{ir.SymOp("getc")},
		Defs: []ir.Operand{ir.RegOp(mach.RetReg(target.ClassInt))}}
	blk.Instrs = []ir.Instr{blk.Instrs[0], call, blk.Instrs[1], blk.Instrs[2]}
	if err := Verify(p, mach); err == nil {
		t.Fatal("caller-saved value use across call accepted")
	}
	_ = x
}

func TestSpillRoundTripAccepted(t *testing.T) {
	mach := target.Tiny(6, 3)
	p, x, r1, r2 := handProc(mach)
	slot := p.NewSlot()
	blk := p.Blocks[0]
	callee := mach.CalleeSavedRegs(target.ClassInt)
	_ = callee
	// def x in r1; store to slot; call; reload into r2; use from r2.
	blk.Instrs = []ir.Instr{
		blk.Instrs[0],
		{Op: ir.SpillSt, Uses: []ir.Operand{ir.RegOp(r1), ir.SlotOp(slot, x)}},
		{Op: ir.Call, Uses: []ir.Operand{ir.SymOp("getc")},
			Defs: []ir.Operand{ir.RegOp(mach.RetReg(target.ClassInt))}},
		{Op: ir.SpillLd, Defs: []ir.Operand{ir.RegOp(r2)}, Uses: []ir.Operand{ir.SlotOp(slot, x)}},
		{Op: ir.Add, Defs: []ir.Operand{ir.RegOp(r1)}, Uses: []ir.Operand{ir.RegOp(r2), ir.ImmOp(1)},
			OrigDefs: []ir.Temp{ir.NoTemp}, OrigUses: []ir.Temp{x, ir.NoTemp}},
		{Op: ir.Ret},
	}
	if err := Verify(p, mach); err != nil {
		t.Fatalf("valid spill round trip rejected: %v", err)
	}
	// Drop the store: the reload now yields the stale initial value, but
	// x was defined in between — must be rejected.
	blk.Instrs = append(blk.Instrs[:1], blk.Instrs[2:]...)
	if err := Verify(p, mach); err == nil {
		t.Fatal("missing spill store accepted")
	}
}

// TestMaybeUndefinedUseExempt pins the zero-initialized-temp rule: a use
// whose def executes only on one branch of a diamond reads the VM's zero
// temp file on the other, so the verifier must accept it — while a use
// of a temp defined on every path keeps full location checking.
func TestMaybeUndefinedUseExempt(t *testing.T) {
	mach := target.Tiny(6, 3)
	p := ir.NewProc("main")
	x := p.NewTemp(target.ClassInt, "x")
	r1 := mach.Reg(target.ClassInt, 1)
	r3 := mach.Reg(target.ClassInt, 3)

	entry := p.NewBlock("entry")
	thenB := p.NewBlock("then")
	join := p.NewBlock("join")
	entry.Instrs = []ir.Instr{
		{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(r3)}, Uses: []ir.Operand{ir.ImmOp(0)}},
		{Op: ir.Br, Uses: []ir.Operand{ir.RegOp(r3)}},
	}
	ir.AddEdge(entry, thenB)
	ir.AddEdge(entry, join)
	// x is defined only on the then-path.
	thenB.Instrs = []ir.Instr{
		{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(r1)}, Uses: []ir.Operand{ir.ImmOp(7)},
			OrigDefs: []ir.Temp{x}, OrigUses: []ir.Temp{ir.NoTemp}},
		{Op: ir.Jmp},
	}
	ir.AddEdge(thenB, join)
	// join uses x from r1: along the fall-through path x is undefined
	// (reads zero in the original program), so this must be accepted.
	join.Instrs = []ir.Instr{
		{Op: ir.Add, Defs: []ir.Operand{ir.RegOp(r3)}, Uses: []ir.Operand{ir.RegOp(r1), ir.ImmOp(0)},
			OrigDefs: []ir.Temp{ir.NoTemp}, OrigUses: []ir.Temp{x, ir.NoTemp}},
		{Op: ir.Ret},
	}
	if err := Verify(p, mach); err != nil {
		t.Fatalf("maybe-undefined use rejected: %v", err)
	}

	// Define x on the fall-through path too (into a different register,
	// with no resolution move): now x is must-defined at the use and the
	// disagreement is a real error again.
	r2 := mach.Reg(target.ClassInt, 2)
	split := p.NewBlock("split")
	entry.Succs[1] = split
	for i, q := range join.Preds {
		if q == entry {
			join.Preds[i] = split
		}
	}
	split.Preds = []*ir.Block{entry}
	split.Succs = []*ir.Block{join}
	split.Instrs = []ir.Instr{
		{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(r2)}, Uses: []ir.Operand{ir.ImmOp(9)},
			OrigDefs: []ir.Temp{x}, OrigUses: []ir.Temp{ir.NoTemp}},
		{Op: ir.Jmp},
	}
	if err := Verify(p, mach); err == nil {
		t.Fatal("must-defined disagreeing use accepted")
	}
}

// TestMaybeUndefinedStillRejectsAgreedWrongRegister pins the narrowness
// of the zero-init exemption: when every path agrees the read location
// holds a DIFFERENT temporary's value, the defined path is provably
// miscompiled and the use must be rejected even though the temp is
// maybe-undefined.
func TestMaybeUndefinedStillRejectsAgreedWrongRegister(t *testing.T) {
	mach := target.Tiny(6, 3)
	p := ir.NewProc("main")
	x := p.NewTemp(target.ClassInt, "x")
	y := p.NewTemp(target.ClassInt, "y")
	r1 := mach.Reg(target.ClassInt, 1)
	r2 := mach.Reg(target.ClassInt, 2)
	r3 := mach.Reg(target.ClassInt, 3)

	entry := p.NewBlock("entry")
	thenB := p.NewBlock("then")
	join := p.NewBlock("join")
	// y lives in r2 along every path; x (defined only on the then-path)
	// lives in r1.
	entry.Instrs = []ir.Instr{
		{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(r2)}, Uses: []ir.Operand{ir.ImmOp(3)},
			OrigDefs: []ir.Temp{y}, OrigUses: []ir.Temp{ir.NoTemp}},
		{Op: ir.Br, Uses: []ir.Operand{ir.RegOp(r2)}},
	}
	ir.AddEdge(entry, thenB)
	ir.AddEdge(entry, join)
	thenB.Instrs = []ir.Instr{
		{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(r1)}, Uses: []ir.Operand{ir.ImmOp(7)},
			OrigDefs: []ir.Temp{x}, OrigUses: []ir.Temp{ir.NoTemp}},
		{Op: ir.Jmp},
	}
	ir.AddEdge(thenB, join)
	// join reads x from r2 — but r2 holds y on BOTH paths: on the
	// then-path (x defined, live in r1) this reads the wrong value, so
	// the maybe-undefined exemption must not apply.
	join.Instrs = []ir.Instr{
		{Op: ir.Add, Defs: []ir.Operand{ir.RegOp(r3)}, Uses: []ir.Operand{ir.RegOp(r2), ir.ImmOp(0)},
			OrigDefs: []ir.Temp{ir.NoTemp}, OrigUses: []ir.Temp{x, ir.NoTemp}},
		{Op: ir.Ret},
	}
	if err := Verify(p, mach); err == nil {
		t.Fatal("agreed-wrong-register read of maybe-undefined temp accepted")
	}
}

func TestMergeRequiresAgreement(t *testing.T) {
	mach := target.Tiny(6, 3)
	p := ir.NewProc("main")
	x := p.NewTemp(target.ClassInt, "x")
	r1 := mach.Reg(target.ClassInt, 1)
	r2 := mach.Reg(target.ClassInt, 2)
	r3 := mach.Reg(target.ClassInt, 3)

	entry := p.NewBlock("entry")
	a := p.NewBlock("a")
	bb := p.NewBlock("b")
	join := p.NewBlock("join")

	entry.Instrs = []ir.Instr{
		{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(r3)}, Uses: []ir.Operand{ir.ImmOp(0)}},
		{Op: ir.Br, Uses: []ir.Operand{ir.RegOp(r3)}},
	}
	ir.AddEdge(entry, a)
	ir.AddEdge(entry, bb)
	// Path a: x defined into r1. Path b: x defined into r2.
	a.Instrs = []ir.Instr{
		{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(r1)}, Uses: []ir.Operand{ir.ImmOp(1)},
			OrigDefs: []ir.Temp{x}, OrigUses: []ir.Temp{ir.NoTemp}},
		{Op: ir.Jmp},
	}
	ir.AddEdge(a, join)
	bb.Instrs = []ir.Instr{
		{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(r2)}, Uses: []ir.Operand{ir.ImmOp(2)},
			OrigDefs: []ir.Temp{x}, OrigUses: []ir.Temp{ir.NoTemp}},
		{Op: ir.Jmp},
	}
	ir.AddEdge(bb, join)
	// join uses x from r1: only valid along path a — must be rejected.
	join.Instrs = []ir.Instr{
		{Op: ir.Add, Defs: []ir.Operand{ir.RegOp(r3)}, Uses: []ir.Operand{ir.RegOp(r1), ir.ImmOp(0)},
			OrigDefs: []ir.Temp{ir.NoTemp}, OrigUses: []ir.Temp{x, ir.NoTemp}},
		{Op: ir.Ret},
	}
	if err := Verify(p, mach); err == nil {
		t.Fatal("disagreeing join accepted")
	}
	// Fix path b with a resolution move r2→r1: now valid.
	bb.Instrs = []ir.Instr{
		bb.Instrs[0],
		{Op: ir.Mov, Tag: ir.TagResolveMove, Defs: []ir.Operand{ir.RegOp(r1)}, Uses: []ir.Operand{ir.RegOp(r2)}},
		{Op: ir.Jmp},
	}
	if err := Verify(p, mach); err != nil {
		t.Fatalf("resolved join rejected: %v", err)
	}
}
