// Package verify checks that an allocated procedure still computes the
// original program: a forward symbolic dataflow over machine locations
// (registers and spill slots) proves that every rewritten use reads the
// value of the temporary the original instruction named, along every
// path.
//
// The verifier consumes the OrigUses/OrigDefs side tables the allocators
// attach while rewriting. It is intentionally conservative: a use that
// reads a location the analysis cannot prove to hold the right value is
// an error. Calls clobber caller-saved registers, so convention bugs
// (keeping a live value in a caller-saved register across a call) are
// caught statically, complementing the VM's paranoid mode.
//
// One deliberate relaxation models the VM's zero-initialized temporary
// semantics: a use of a temporary that is not defined along every path
// reaching it ("maybe-undefined") is exempt from the location check
// when the location's symbolic content is unknown — i.e. the incoming
// paths disagree about what it holds, which is exactly the shape a
// skippable def produces. In the original program such a read yields
// the temp file's initial zero, so no allocation decision can be
// proven wrong against it — demanding a location proof on the
// structurally-skippable paths would reject correct whole-lifetime
// allocations (coloring, linear scan, two-pass binpacking) of
// generator programs whose defs sit inside loops that always execute
// but could statically be skipped. The exemption stays narrow: if
// every path agrees the location holds a different temporary's value,
// the defined paths are provably miscompiled and the use is still
// rejected, and uses defined along every path are checked exactly as
// before. The residual blind spot is acknowledged: a wrong-location
// read of a maybe-undefined temporary whose location is also unknown
// at the merge (e.g. a dropped resolution move for exactly such a
// temp) is indistinguishable from the legitimate skippable-def shape
// without path-sensitive analysis, and is accepted.
package verify

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/ir"
	"repro/internal/target"
)

// loc is a machine location: a register or a spill slot.
type loc struct {
	isSlot bool
	reg    target.Reg
	slot   int64
}

func regLoc(r target.Reg) loc { return loc{reg: r} }
func slotLoc(s int64) loc     { return loc{isSlot: true, slot: s} }
func (l loc) String() string {
	if l.isSlot {
		return fmt.Sprintf("slot%d", l.slot)
	}
	return fmt.Sprintf("R%d", l.reg)
}

// value is the temporary whose current (original-program) value a
// location holds; noValue means unknown.
const noValue ir.Temp = -2

type state map[loc]ir.Temp

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// meet intersects other into s and reports change.
func (s state) meet(other state) bool {
	changed := false
	for k, v := range s {
		if ov, ok := other[k]; !ok || ov != v {
			delete(s, k)
			changed = true
		}
	}
	return changed
}

// Verify checks the allocated procedure p against the original program
// structure encoded in its OrigUses/OrigDefs annotations.
func Verify(p *ir.Proc, mach *target.Machine) error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("verify: %s: empty procedure", p.Name)
	}

	// Entry state: each temporary's home slot holds its (initial zero)
	// value; everything else is unknown. Slot ownership is recovered
	// from the slot operands themselves.
	entry := make(state)
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			for _, o := range append(b.Instrs[i].Uses, b.Instrs[i].Defs...) {
				if o.Kind == ir.KindSlot && o.Temp != ir.NoTemp {
					entry[slotLoc(o.Imm)] = o.Temp
				}
			}
		}
	}

	// Fixpoint of in-states (decreasing lattice). Blocks are indexed
	// locally so the verifier works on procedures that were never
	// Renumber()ed (e.g. hand-built tests).
	index := make(map[*ir.Block]int, len(p.Blocks))
	for i, b := range p.Blocks {
		index[b] = i
	}
	in := make([]state, len(p.Blocks))
	in[index[p.Entry()]] = entry
	work := []*ir.Block{p.Entry()}
	queued := make([]bool, len(p.Blocks))
	queued[index[p.Entry()]] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		queued[index[b]] = false
		out := in[index[b]].clone()
		transferBlock(p, mach, b, out, nil, nil)
		for _, s := range b.Succs {
			if in[index[s]] == nil {
				in[index[s]] = out.clone()
			} else if !in[index[s]].meet(out) {
				continue
			}
			if !queued[index[s]] {
				queued[index[s]] = true
				work = append(work, s)
			}
		}
	}

	mustIn := mustDefined(p, index)

	// Final pass with checks enabled.
	for _, b := range p.Blocks {
		if in[index[b]] == nil {
			continue // unreachable
		}
		st := in[index[b]].clone()
		must := mustIn[index[b]].Clone()
		var err error
		transferBlock(p, mach, b, st, must, func(e error) {
			if err == nil {
				err = e
			}
		})
		if err != nil {
			return fmt.Errorf("verify: %s: block %s: %w", p.Name, b.Name, err)
		}
	}
	return nil
}

// mustDefined computes, per block, the set of temporaries defined along
// every path from entry to the block's top (a forward intersection
// dataflow over OrigDefs). Uses of temporaries outside this set read the
// VM's zero-initialized temp file in the original program and are exempt
// from location checking; see the package comment.
func mustDefined(p *ir.Proc, index map[*ir.Block]int) []*bitset.Set {
	nt := p.NumTemps()
	nb := len(p.Blocks)
	gen := make([]*bitset.Set, nb)
	mustIn := make([]*bitset.Set, nb)
	for i, b := range p.Blocks {
		g := bitset.New(nt)
		for j := range b.Instrs {
			for _, t := range b.Instrs[j].OrigDefs {
				if t != ir.NoTemp {
					g.Add(int(t))
				}
			}
		}
		gen[i] = g
		mustIn[i] = bitset.New(nt)
		if b != p.Entry() {
			mustIn[i].Fill() // lattice top; entry starts empty
		}
	}
	work := []*ir.Block{p.Entry()}
	queued := make([]bool, nb)
	queued[index[p.Entry()]] = true
	out := bitset.New(nt)
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		bi := index[b]
		queued[bi] = false
		out.Copy(mustIn[bi])
		out.Union(gen[bi])
		for _, s := range b.Succs {
			si := index[s]
			before := mustIn[si].Count()
			mustIn[si].Intersect(out)
			if mustIn[si].Count() != before && !queued[si] {
				queued[si] = true
				work = append(work, s)
			}
		}
	}
	return mustIn
}

// transferBlock interprets one block symbolically, mutating st. When
// check is non-nil, use sites are validated; must then carries the
// must-defined set at the block's top and is updated as defs execute, so
// uses of maybe-undefined temporaries (zero in the VM's temp file) can
// be exempted.
func transferBlock(p *ir.Proc, mach *target.Machine, b *ir.Block, st state, must *bitset.Set, check func(error)) {
	invalidate := func(t ir.Temp) {
		for k, v := range st {
			if v == t {
				delete(st, k)
			}
		}
	}
	locOf := func(o ir.Operand) (loc, bool) {
		switch o.Kind {
		case ir.KindReg:
			return regLoc(o.Reg), true
		case ir.KindSlot:
			return slotLoc(o.Imm), true
		}
		return loc{}, false
	}

	for i := range b.Instrs {
		instr := &b.Instrs[i]

		// Check original uses.
		if check != nil && instr.OrigUses != nil {
			for ui, t := range instr.OrigUses {
				if t == ir.NoTemp {
					continue
				}
				l, ok := locOf(instr.Uses[ui])
				if !ok {
					check(fmt.Errorf("%v: use %d of %s not in a location", instr.Op, ui, p.TempName(t)))
					continue
				}
				if v, ok := st[l]; !ok || v != t {
					if !ok && must != nil && !must.Contains(int(t)) {
						// Maybe-undefined and the location's content is
						// unknown (the paths disagree about it): the
						// original program reads the zero-initialized
						// temp file here, so the location check is
						// waived (see the package comment). If every
						// path instead agrees the location holds a
						// DIFFERENT temporary's value, the defined
						// paths are provably wrong and the error
						// stands.
						continue
					}
					have := "unknown"
					if ok {
						have = p.TempName(v)
					}
					check(fmt.Errorf("%v at pos %d: use of %s reads %v which holds %s",
						instr.Op, instr.Pos, p.TempName(t), l, have))
				}
			}
		}

		// Spill instructions carrying Orig annotations are original
		// instructions of the program being verified: graph coloring's
		// spill rewrite introduces fresh temporaries whose defining
		// loads and storing stores are part of the (already rewritten)
		// program, not allocator data movement.
		spillIsOriginal := (instr.Op == ir.SpillLd && instr.OrigDefs != nil && instr.OrigDefs[0] != ir.NoTemp) ||
			(instr.Op == ir.SpillSt && instr.OrigUses != nil && instr.OrigUses[0] != ir.NoTemp)

		switch {
		case instr.Op == ir.Call:
			// Caller-saved registers die. (Return registers too: the
			// value they carry afterwards belongs to the callee and is
			// claimed by the convention move's original def.)
			for k := range st {
				if !k.isSlot && mach.CallerSaved(k.reg) {
					delete(st, k)
				}
			}
		case (instr.Op == ir.SpillLd || instr.Op == ir.SpillSt) && !spillIsOriginal,
			instr.Op.IsMove() && instr.OrigDefs == nil:
			// Pure data movement inserted by the allocator (or a
			// convention move with no temp def): the destination now
			// holds whatever the source held.
			var src, dst ir.Operand
			if instr.Op == ir.SpillSt {
				src, dst = instr.Uses[0], instr.Uses[1]
			} else {
				src, dst = instr.Uses[0], instr.Defs[0]
			}
			sl, sok := locOf(src)
			dl, dok := locOf(dst)
			if !dok {
				break
			}
			if v, ok := st[sl]; sok && ok {
				st[dl] = v
			} else {
				delete(st, dl)
			}
		case instr.Op == ir.SpillSt && spillIsOriginal:
			// An original store of a fresh spill temporary: the slot
			// now holds that temporary's value (its use was checked
			// above).
			if l, ok := locOf(instr.Uses[1]); ok {
				st[l] = instr.OrigUses[0]
			}
		default:
			// Original computation (or a rewritten original move):
			// original defs produce fresh values of their temporaries.
			for di := range instr.Defs {
				l, ok := locOf(instr.Defs[di])
				var t ir.Temp = ir.NoTemp
				if instr.OrigDefs != nil {
					t = instr.OrigDefs[di]
				}
				if t == ir.NoTemp {
					// A write to machine state not tied to a temp. A
					// move still forwards its source's value.
					if ok {
						if instr.Op.IsMove() {
							if sl, sok := locOf(instr.Uses[0]); sok {
								if v, has := st[sl]; has {
									st[l] = v
									continue
								}
							}
						}
						delete(st, l)
					}
					continue
				}
				invalidate(t)
				if ok {
					st[l] = t
				}
			}
		}

		if must != nil {
			for _, t := range instr.OrigDefs {
				if t != ir.NoTemp {
					must.Add(int(t))
				}
			}
		}
	}
}
