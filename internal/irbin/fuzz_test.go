package irbin_test

import (
	"bytes"
	"testing"

	"repro/internal/ir"
	"repro/internal/irbin"
	"repro/internal/progs"
	"repro/internal/target"
)

// FuzzBinaryRoundTrip feeds arbitrary bytes to the decoder. Any input
// the decoder accepts must reach an encode fixed point (the canonical
// wire form re-encodes byte-for-byte), and any accepted input whose
// program also passes semantic validation must survive the text front
// end: print → parse → print lands on the same text as the decoded
// program prints. The seed corpus covers every generator profile across
// the machine presets, so the interesting region of the format is
// explored from the start.
func FuzzBinaryRoundTrip(f *testing.F) {
	for _, preset := range target.PresetNames() {
		mach, err := target.Preset(preset)
		if err != nil {
			f.Fatal(err)
		}
		for _, profile := range progs.Profiles() {
			cfg, err := progs.ProfileGen(profile, 5)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(irbin.EncodeProgram(progs.Random(mach, cfg)))
		}
	}
	f.Add(irbin.EncodeProgram(progs.BuildWC(target.Alpha(), 1)))
	f.Add([]byte(irbin.Magic))
	f.Add([]byte{})

	arena := irbin.NewArena()
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, n, err := arena.Decode(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted frame with bogus size %d (input %d bytes)", n, len(data))
		}
		enc := irbin.EncodeProgram(prog)
		// Canonical fixed point: decode(enc) must re-encode to enc.
		prog2, _, err := irbin.NewArena().Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical form failed: %v", err)
		}
		if re := irbin.EncodeProgram(prog2); !bytes.Equal(enc, re) {
			t.Fatalf("encode is not a fixed point: %d vs %d bytes", len(enc), len(re))
		}
		// Text parity, for programs the text grammar can express (the
		// semantically valid ones; decode alone guarantees structure,
		// not e.g. terminator shape).
		if ir.ValidateProgram(prog2, nil) != nil {
			return
		}
		text := machlessText(prog2)
		fromText, err := ir.ParseProgramString(text, nil)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\n%s", err, text)
		}
		if got := machlessText(fromText); got != text {
			t.Fatalf("text round trip diverged:\nbinary-side:\n%s\ntext-side:\n%s", text, got)
		}
	})
}
