// Package irbin is the compact binary codec for ir.Program: the wire
// format behind the mmap streaming corpus (internal/corpus), the
// service's application/x-lsra-ir request bodies (internal/serve), and
// the persistent cache tier's binary entry encoding
// (internal/diskcache).
//
// The text form (ir.ParseProgram / ir.Printer) stays the human surface;
// this codec exists because the cold serve path was dominated by text
// parsing, not allocation — the exact bottleneck the paper never had.
// Design points:
//
//   - Versioned, length-prefixed frames: 4-byte magic, a version byte,
//     a uvarint payload length, then the payload. Frames are
//     self-delimiting, so a corpus file or request body can simply
//     concatenate them.
//   - Machine-less: physical registers travel as bare numbers (the
//     binary analogue of the text form's $R<n> spellings), so no
//     machine definition accompanies a program. MemInit is included —
//     the one thing the text form cannot carry.
//   - Zero-copy, arena-backed decode: Decode builds the program inside
//     a reusable Arena (the internal/scratch capacity-reuse machinery)
//     and every string aliases the input buffer (unsafe.String), so a
//     steady-state decode loop performs zero heap allocations. The
//     returned program is only valid until the arena's next Decode and
//     must not outlive the input buffer — programs decoded from an
//     mmap'd corpus must be dropped before the mapping is closed.
//
// Decode validates structure exhaustively (bounds, opcode/tag/kind/
// class ranges, index ranges), never trusting a length field further
// than the bytes that back it; semantic validity (terminator shape,
// register files, main's existence) remains ir.ValidateProgram's job,
// exactly as for the text parser.
package irbin

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"unsafe"

	"repro/internal/ir"
	"repro/internal/scratch"
	"repro/internal/target"
)

// Magic opens every frame.
const Magic = "LSIR"

// Version is the current wire version; Decode rejects others.
const Version = 1

// headerLen is the fixed prefix before the payload-length uvarint.
const headerLen = len(Magic) + 1

// AppendProgram appends prog's binary frame to buf and returns the
// extended slice. Encoding is canonical: MemInit is written in
// ascending address order, so decode→encode reaches a byte-for-byte
// fixed point.
func AppendProgram(buf []byte, prog *ir.Program) []byte {
	buf = append(buf, Magic...)
	buf = append(buf, Version)
	// The payload is built separately so its length can sit between
	// header and body; encode is the cold path, so the extra copy is
	// cheap next to zero-copy decode staying simple.
	payload := appendPayload(nil, prog)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...)
}

// EncodeProgram returns prog's binary frame.
func EncodeProgram(prog *ir.Program) []byte { return AppendProgram(nil, prog) }

func appendPayload(buf []byte, prog *ir.Program) []byte {
	buf = binary.AppendUvarint(buf, uint64(prog.MemWords))
	buf = appendStr(buf, prog.Main)
	addrs := make([]int, 0, len(prog.MemInit))
	for a := range prog.MemInit {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	buf = binary.AppendUvarint(buf, uint64(len(addrs)))
	for _, a := range addrs {
		buf = binary.AppendUvarint(buf, uint64(a))
		buf = binary.AppendVarint(buf, prog.MemInit[a])
	}
	buf = binary.AppendUvarint(buf, uint64(len(prog.Procs)))
	for _, p := range prog.Procs {
		buf = appendProc(buf, p)
	}
	return buf
}

func appendProc(buf []byte, p *ir.Proc) []byte {
	buf = appendStr(buf, p.Name)
	buf = binary.AppendUvarint(buf, uint64(p.NumTemps()))
	for t := 0; t < p.NumTemps(); t++ {
		buf = append(buf, byte(p.TempClass(ir.Temp(t))))
		buf = appendStr(buf, p.TempName(ir.Temp(t)))
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Params)))
	for _, t := range p.Params {
		buf = binary.AppendUvarint(buf, uint64(t))
	}
	buf = binary.AppendUvarint(buf, uint64(p.NumSlots))
	buf = binary.AppendUvarint(buf, uint64(len(p.Blocks)))
	index := make(map[*ir.Block]int, len(p.Blocks))
	for i, b := range p.Blocks {
		index[b] = i
	}
	for _, b := range p.Blocks {
		buf = binary.AppendUvarint(buf, uint64(b.ID))
		buf = appendStr(buf, b.Name)
		buf = binary.AppendUvarint(buf, uint64(len(b.Succs)))
		for _, s := range b.Succs {
			si, ok := index[s]
			if !ok {
				panic(fmt.Sprintf("irbin: block %s has successor outside its proc", b.Name))
			}
			buf = binary.AppendUvarint(buf, uint64(si))
		}
		buf = binary.AppendUvarint(buf, uint64(len(b.Instrs)))
		for i := range b.Instrs {
			buf = appendInstr(buf, &b.Instrs[i])
		}
	}
	return buf
}

func appendInstr(buf []byte, in *ir.Instr) []byte {
	buf = append(buf, byte(in.Op), byte(in.Tag))
	buf = binary.AppendUvarint(buf, uint64(len(in.Defs)))
	for i := range in.Defs {
		buf = appendOperand(buf, &in.Defs[i])
	}
	buf = binary.AppendUvarint(buf, uint64(len(in.Uses)))
	for i := range in.Uses {
		buf = appendOperand(buf, &in.Uses[i])
	}
	return buf
}

func appendOperand(buf []byte, o *ir.Operand) []byte {
	buf = append(buf, byte(o.Kind))
	switch o.Kind {
	case ir.KindNone:
	case ir.KindTemp:
		buf = binary.AppendUvarint(buf, uint64(o.Temp))
	case ir.KindReg:
		// Zigzag: hostile machine presets can surface sentinel registers.
		buf = binary.AppendVarint(buf, int64(o.Reg))
	case ir.KindImm:
		buf = binary.AppendVarint(buf, o.Imm)
	case ir.KindFImm:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.F))
	case ir.KindSlot:
		buf = binary.AppendUvarint(buf, uint64(o.Imm))
		buf = binary.AppendVarint(buf, int64(o.Temp)) // NoTemp = -1
	case ir.KindSym:
		buf = appendStr(buf, o.Sym)
	default:
		panic(fmt.Sprintf("irbin: unencodable operand kind %d", o.Kind))
	}
	return buf
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// FrameSize returns the total byte length of the frame opening data,
// without decoding its payload — enough to walk a stream of
// concatenated frames cheaply.
func FrameSize(data []byte) (int, error) {
	n, _, err := frameBounds(data)
	return n, err
}

// frameBounds validates the frame prefix and returns the total frame
// size and the payload start offset.
func frameBounds(data []byte) (total, payloadStart int, err error) {
	if len(data) < headerLen+1 {
		return 0, 0, fmt.Errorf("irbin: truncated frame header (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return 0, 0, fmt.Errorf("irbin: bad magic %q", data[:len(Magic)])
	}
	if v := data[len(Magic)]; v != Version {
		return 0, 0, fmt.Errorf("irbin: unsupported version %d (have %d)", v, Version)
	}
	plen, n := binary.Uvarint(data[headerLen:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("irbin: bad payload length")
	}
	payloadStart = headerLen + n
	rest := len(data) - payloadStart
	if plen > uint64(rest) {
		return 0, 0, fmt.Errorf("irbin: payload length %d exceeds remaining %d bytes", plen, rest)
	}
	return payloadStart + int(plen), payloadStart, nil
}

// Arena is the reusable decode storage: one backing array per node
// kind, grown to the largest program seen and carved with full-capacity
// sub-slices. A Decode invalidates the arena's previous program. Not
// safe for concurrent use — give each worker its own arena (the corpus
// bench and the service's decoder pool do).
type Arena struct {
	prog    *ir.Program
	procs   []ir.Proc
	blocks  []ir.Block
	bptrs   []*ir.Block
	instrs  []ir.Instr
	ops     []ir.Operand
	params  []ir.Temp
	classes []target.Class
	names   []string
	predCnt []int32
}

// NewArena returns an empty decode arena.
func NewArena() *Arena {
	a := &Arena{prog: ir.NewProgram(0)}
	return a
}

// counts is the pass-1 tally that sizes the arena before building.
type counts struct {
	procs, blocks, instrs, ops, params, temps, succs int
}

// dec is a bounds-checked cursor over one payload.
type dec struct {
	data []byte
	off  int
}

func (d *dec) u8() (byte, error) {
	if d.off >= len(d.data) {
		return 0, fmt.Errorf("irbin: truncated at byte %d", d.off)
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("irbin: bad uvarint at byte %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("irbin: bad varint at byte %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) f64() (float64, error) {
	if d.off+8 > len(d.data) {
		return 0, fmt.Errorf("irbin: truncated float at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return math.Float64frombits(v), nil
}

// strBytes reads a length-prefixed string and returns the raw bytes,
// still aliasing the payload.
func (d *dec) strBytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)-d.off) {
		return nil, fmt.Errorf("irbin: string length %d exceeds remaining input", n)
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// count reads a collection length and sanity-bounds it: every element
// costs at least one payload byte, so a count beyond the remaining
// input is corrupt by construction (and must not size an allocation).
func (d *dec) count(what string) (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(d.data)-d.off) {
		return 0, fmt.Errorf("irbin: %s count %d exceeds remaining input", what, n)
	}
	return int(n), nil
}

// unsafeString views b as a string without copying. Decoded programs
// alias the input buffer through these; the documented lifetime rule
// (program dies before buffer) makes this safe.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// Decode reads one frame from the front of data into the arena and
// returns the program plus the frame's total byte length (so callers
// can walk concatenated frames). The program aliases both the arena
// and data: it is valid until the arena's next Decode, and must not
// outlive the buffer.
func (a *Arena) Decode(data []byte) (*ir.Program, int, error) {
	total, payloadStart, err := frameBounds(data)
	if err != nil {
		return nil, 0, err
	}
	payload := data[payloadStart:total]

	c, err := scan(payload)
	if err != nil {
		return nil, 0, err
	}
	a.grow(c)
	prog, err := a.build(payload, c)
	if err != nil {
		// scan validated everything build reads; reaching here is a
		// codec bug, not an input problem — but fail soft anyway.
		return nil, 0, err
	}
	return prog, total, nil
}

// DecodeProgram is a one-shot convenience over a fresh arena: the
// returned program shares nothing reusable but still aliases data.
func DecodeProgram(data []byte) (*ir.Program, error) {
	prog, _, err := NewArena().Decode(data)
	return prog, err
}

// scan is pass 1: full structural validation plus the node tally that
// sizes the arena. It walks every element (never multiplying
// unvalidated counts), so a hostile length field can at worst make it
// read to the end of the payload.
func scan(payload []byte) (counts, error) {
	var c counts
	d := &dec{data: payload}
	memWords, err := d.uvarint()
	if err != nil {
		return c, err
	}
	if memWords > math.MaxInt32 {
		return c, fmt.Errorf("irbin: absurd memory size %d words", memWords)
	}
	if _, err := d.strBytes(); err != nil { // main
		return c, err
	}
	nMem, err := d.count("meminit")
	if err != nil {
		return c, err
	}
	for i := 0; i < nMem; i++ {
		addr, err := d.uvarint()
		if err != nil {
			return c, err
		}
		if addr >= memWords {
			return c, fmt.Errorf("irbin: meminit address %d outside %d words", addr, memWords)
		}
		if _, err := d.varint(); err != nil {
			return c, err
		}
	}
	nProcs, err := d.count("proc")
	if err != nil {
		return c, err
	}
	c.procs = nProcs
	for pi := 0; pi < nProcs; pi++ {
		if err := scanProc(d, &c); err != nil {
			return c, err
		}
	}
	if d.off != len(payload) {
		return c, fmt.Errorf("irbin: %d trailing payload bytes", len(payload)-d.off)
	}
	return c, nil
}

func scanProc(d *dec, c *counts) error {
	if _, err := d.strBytes(); err != nil { // name
		return err
	}
	nTemps, err := d.count("temp")
	if err != nil {
		return err
	}
	c.temps += nTemps
	for i := 0; i < nTemps; i++ {
		cls, err := d.u8()
		if err != nil {
			return err
		}
		if int(cls) >= target.NumClasses {
			return fmt.Errorf("irbin: bad temp class %d", cls)
		}
		if _, err := d.strBytes(); err != nil {
			return err
		}
	}
	nParams, err := d.count("param")
	if err != nil {
		return err
	}
	c.params += nParams
	for i := 0; i < nParams; i++ {
		t, err := d.uvarint()
		if err != nil {
			return err
		}
		if t >= uint64(nTemps) {
			return fmt.Errorf("irbin: param temp %d outside %d temps", t, nTemps)
		}
	}
	if _, err := d.uvarint(); err != nil { // numSlots
		return err
	}
	nBlocks, err := d.count("block")
	if err != nil {
		return err
	}
	c.blocks += nBlocks
	for bi := 0; bi < nBlocks; bi++ {
		if _, err := d.uvarint(); err != nil { // ID
			return err
		}
		if _, err := d.strBytes(); err != nil { // name
			return err
		}
		nSuccs, err := d.count("successor")
		if err != nil {
			return err
		}
		c.succs += nSuccs
		for si := 0; si < nSuccs; si++ {
			s, err := d.uvarint()
			if err != nil {
				return err
			}
			if s >= uint64(nBlocks) {
				return fmt.Errorf("irbin: successor %d outside %d blocks", s, nBlocks)
			}
		}
		nInstrs, err := d.count("instr")
		if err != nil {
			return err
		}
		c.instrs += nInstrs
		for ii := 0; ii < nInstrs; ii++ {
			if err := scanInstr(d, c, nTemps); err != nil {
				return err
			}
		}
	}
	return nil
}

func scanInstr(d *dec, c *counts, nTemps int) error {
	op, err := d.u8()
	if err != nil {
		return err
	}
	if int(op) >= ir.NumOps {
		return fmt.Errorf("irbin: bad opcode %d", op)
	}
	tag, err := d.u8()
	if err != nil {
		return err
	}
	if int(tag) >= ir.NumTags {
		return fmt.Errorf("irbin: bad tag %d", tag)
	}
	for part := 0; part < 2; part++ {
		n, err := d.count("operand")
		if err != nil {
			return err
		}
		c.ops += n
		for i := 0; i < n; i++ {
			if err := scanOperand(d, nTemps); err != nil {
				return err
			}
		}
	}
	return nil
}

func scanOperand(d *dec, nTemps int) error {
	kind, err := d.u8()
	if err != nil {
		return err
	}
	switch ir.Kind(kind) {
	case ir.KindNone:
		return nil
	case ir.KindTemp:
		t, err := d.uvarint()
		if err != nil {
			return err
		}
		if t >= uint64(nTemps) {
			return fmt.Errorf("irbin: operand temp %d outside %d temps", t, nTemps)
		}
		return nil
	case ir.KindReg:
		r, err := d.varint()
		if err != nil {
			return err
		}
		if r < math.MinInt16 || r > math.MaxInt16 {
			return fmt.Errorf("irbin: register %d outside int16", r)
		}
		return nil
	case ir.KindImm:
		_, err := d.varint()
		return err
	case ir.KindFImm:
		_, err := d.f64()
		return err
	case ir.KindSlot:
		if _, err := d.uvarint(); err != nil {
			return err
		}
		t, err := d.varint()
		if err != nil {
			return err
		}
		if t < int64(ir.NoTemp) || t >= int64(nTemps) {
			return fmt.Errorf("irbin: slot owner %d outside %d temps", t, nTemps)
		}
		return nil
	case ir.KindSym:
		_, err := d.strBytes()
		return err
	}
	return fmt.Errorf("irbin: bad operand kind %d", kind)
}

// grow sizes every arena backing array for the scanned program.
// Pointer-bearing arrays are cleared over their full capacity
// (scratch.GrowCleared) so a small decode cannot leave a large earlier
// input pinned through stale string headers or sub-slices.
func (a *Arena) grow(c counts) {
	a.procs = scratch.GrowCleared(a.procs, c.procs)
	a.blocks = scratch.GrowCleared(a.blocks, c.blocks)
	// Block pointer storage serves three roles: each proc's Blocks
	// slice, every Succs slice, and every Preds slice (one pred per
	// succ edge).
	a.bptrs = scratch.GrowCleared(a.bptrs, c.blocks+2*c.succs)
	a.instrs = scratch.GrowCleared(a.instrs, c.instrs)
	a.ops = scratch.GrowCleared(a.ops, c.ops)
	a.params = scratch.Grow(a.params, c.params)
	a.classes = scratch.Grow(a.classes, c.temps)
	a.names = scratch.GrowCleared(a.names, c.temps)
	a.predCnt = scratch.Grow(a.predCnt, c.blocks)
}

// build is pass 2: construct the program from the validated payload.
func (a *Arena) build(payload []byte, c counts) (*ir.Program, error) {
	d := &dec{data: payload}
	memWords, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	prog := a.prog
	prog.Reset(int(memWords))
	mainB, err := d.strBytes()
	if err != nil {
		return nil, err
	}
	prog.Main = unsafeString(mainB)
	nMem, err := d.count("meminit")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nMem; i++ {
		addr, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		prog.MemInit[int(addr)] = v
	}
	nProcs, err := d.count("proc")
	if err != nil {
		return nil, err
	}
	// Carve cursors into the arena arrays.
	var (
		procOff, blockOff, bptrOff int
		instrOff, opOff            int
		paramOff, tempOff          int
	)
	for pi := 0; pi < nProcs; pi++ {
		p := &a.procs[procOff]
		procOff++
		if err := a.buildProc(d, p, &blockOff, &bptrOff, &instrOff, &opOff, &paramOff, &tempOff); err != nil {
			return nil, err
		}
		if prog.Proc(p.Name) != nil {
			return nil, fmt.Errorf("irbin: duplicate procedure %q", p.Name)
		}
		prog.AddProc(p)
	}
	return prog, nil
}

func (a *Arena) buildProc(d *dec, p *ir.Proc, blockOff, bptrOff, instrOff, opOff, paramOff, tempOff *int) error {
	nameB, err := d.strBytes()
	if err != nil {
		return err
	}
	*p = ir.Proc{Name: unsafeString(nameB)}
	nTemps, err := d.count("temp")
	if err != nil {
		return err
	}
	classes := a.classes[*tempOff : *tempOff+nTemps : *tempOff+nTemps]
	names := a.names[*tempOff : *tempOff+nTemps : *tempOff+nTemps]
	*tempOff += nTemps
	for i := 0; i < nTemps; i++ {
		cls, err := d.u8()
		if err != nil {
			return err
		}
		classes[i] = target.Class(cls)
		nb, err := d.strBytes()
		if err != nil {
			return err
		}
		names[i] = unsafeString(nb)
	}
	p.SetTempTable(classes, names)
	nParams, err := d.count("param")
	if err != nil {
		return err
	}
	params := a.params[*paramOff : *paramOff+nParams : *paramOff+nParams]
	*paramOff += nParams
	for i := 0; i < nParams; i++ {
		t, err := d.uvarint()
		if err != nil {
			return err
		}
		params[i] = ir.Temp(t)
	}
	p.Params = params
	slots, err := d.uvarint()
	if err != nil {
		return err
	}
	p.NumSlots = int(slots)
	nBlocks, err := d.count("block")
	if err != nil {
		return err
	}
	blocks := a.blocks[*blockOff : *blockOff+nBlocks : *blockOff+nBlocks]
	*blockOff += nBlocks
	p.Blocks = a.bptrs[*bptrOff : *bptrOff+nBlocks : *bptrOff+nBlocks]
	*bptrOff += nBlocks
	maxID := -1
	for bi := 0; bi < nBlocks; bi++ {
		b := &blocks[bi]
		p.Blocks[bi] = b
		id, err := d.uvarint()
		if err != nil {
			return err
		}
		nameB, err := d.strBytes()
		if err != nil {
			return err
		}
		// Order doubles as the block's local index until Renumber
		// reassigns it — the pred pass below leans on that.
		*b = ir.Block{ID: int(id), Name: unsafeString(nameB), Order: bi}
		if b.ID > maxID {
			maxID = b.ID
		}
		nSuccs, err := d.count("successor")
		if err != nil {
			return err
		}
		b.Succs = a.bptrs[*bptrOff : *bptrOff : *bptrOff+nSuccs]
		*bptrOff += nSuccs
		for si := 0; si < nSuccs; si++ {
			s, err := d.uvarint()
			if err != nil {
				return err
			}
			b.Succs = append(b.Succs, &blocks[s])
		}
		nInstrs, err := d.count("instr")
		if err != nil {
			return err
		}
		b.Instrs = a.instrs[*instrOff : *instrOff+nInstrs : *instrOff+nInstrs]
		*instrOff += nInstrs
		for ii := 0; ii < nInstrs; ii++ {
			// Pos stays zero, as after a text parse; Renumber assigns
			// the lifetime coordinate system when allocation runs.
			if err := a.buildInstr(d, &b.Instrs[ii], opOff); err != nil {
				return err
			}
		}
	}
	// Wire predecessors: count per block, carve exactly, then fill.
	// Every succ edge contributes one pred, so capacity is exact and
	// the appends below never allocate.
	predCnt := a.predCnt[:nBlocks]
	for i := range predCnt {
		predCnt[i] = 0
	}
	for bi := range blocks {
		for _, s := range blocks[bi].Succs {
			predCnt[s.Order]++
		}
	}
	for bi := range blocks {
		n := int(predCnt[bi])
		blocks[bi].Preds = a.bptrs[*bptrOff : *bptrOff : *bptrOff+n]
		*bptrOff += n
	}
	for bi := range blocks {
		b := &blocks[bi]
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
	p.SetNextBlockID(maxID + 1)
	return nil
}

func (a *Arena) buildInstr(d *dec, in *ir.Instr, opOff *int) error {
	op, err := d.u8()
	if err != nil {
		return err
	}
	tag, err := d.u8()
	if err != nil {
		return err
	}
	*in = ir.Instr{Op: ir.Op(op), Tag: ir.Tag(tag)}
	for part := 0; part < 2; part++ {
		n, err := d.count("operand")
		if err != nil {
			return err
		}
		ops := a.ops[*opOff : *opOff+n : *opOff+n]
		*opOff += n
		for i := 0; i < n; i++ {
			if err := buildOperand(d, &ops[i]); err != nil {
				return err
			}
		}
		if n == 0 {
			ops = nil
		}
		if part == 0 {
			in.Defs = ops
		} else {
			in.Uses = ops
		}
	}
	return nil
}

func buildOperand(d *dec, o *ir.Operand) error {
	kind, err := d.u8()
	if err != nil {
		return err
	}
	o.Kind = ir.Kind(kind)
	switch o.Kind {
	case ir.KindNone:
		*o = ir.Operand{}
	case ir.KindTemp:
		t, err := d.uvarint()
		if err != nil {
			return err
		}
		*o = ir.Operand{Kind: ir.KindTemp, Temp: ir.Temp(t)}
	case ir.KindReg:
		r, err := d.varint()
		if err != nil {
			return err
		}
		*o = ir.Operand{Kind: ir.KindReg, Reg: target.Reg(r)}
	case ir.KindImm:
		v, err := d.varint()
		if err != nil {
			return err
		}
		*o = ir.Operand{Kind: ir.KindImm, Imm: v}
	case ir.KindFImm:
		f, err := d.f64()
		if err != nil {
			return err
		}
		*o = ir.Operand{Kind: ir.KindFImm, F: f}
	case ir.KindSlot:
		s, err := d.uvarint()
		if err != nil {
			return err
		}
		t, err := d.varint()
		if err != nil {
			return err
		}
		*o = ir.Operand{Kind: ir.KindSlot, Imm: int64(s), Temp: ir.Temp(t)}
	case ir.KindSym:
		b, err := d.strBytes()
		if err != nil {
			return err
		}
		*o = ir.Operand{Kind: ir.KindSym, Sym: unsafeString(b)}
	default:
		return fmt.Errorf("irbin: bad operand kind %d", kind)
	}
	return nil
}
