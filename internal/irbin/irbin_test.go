package irbin_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/irbin"
	"repro/internal/progs"
	"repro/internal/target"
)

func machlessText(prog *ir.Program) string {
	var sb strings.Builder
	(&ir.Printer{}).WriteProgram(&sb, prog)
	return sb.String()
}

// checkRoundTrip pushes prog through encode→decode and asserts the
// decoded program prints identically and re-encodes byte-for-byte.
func checkRoundTrip(t *testing.T, prog *ir.Program) {
	t.Helper()
	enc := irbin.EncodeProgram(prog)
	got, n, err := irbin.NewArena().Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
	}
	if want, have := machlessText(prog), machlessText(got); want != have {
		t.Fatalf("round trip changed program:\nwant:\n%s\nhave:\n%s", want, have)
	}
	if got.MemWords != prog.MemWords {
		t.Fatalf("MemWords %d, want %d", got.MemWords, prog.MemWords)
	}
	if len(got.MemInit) != len(prog.MemInit) {
		t.Fatalf("MemInit has %d entries, want %d", len(got.MemInit), len(prog.MemInit))
	}
	for a, v := range prog.MemInit {
		if got.MemInit[a] != v {
			t.Fatalf("MemInit[%d] = %d, want %d", a, got.MemInit[a], v)
		}
	}
	re := irbin.EncodeProgram(got)
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encode is not a fixed point: %d vs %d bytes", len(enc), len(re))
	}
	if err := ir.ValidateProgram(got, nil); err != nil {
		t.Fatalf("decoded program invalid: %v", err)
	}
}

func TestRoundTripProfiles(t *testing.T) {
	mach := target.Alpha()
	for _, name := range progs.Profiles() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				cfg, err := progs.ProfileGen(name, seed)
				if err != nil {
					t.Fatal(err)
				}
				checkRoundTrip(t, progs.Random(mach, cfg))
			})
		}
	}
}

func TestRoundTripBenchmarks(t *testing.T) {
	mach := target.Alpha()
	for _, b := range progs.Suite() {
		t.Run(b.Name, func(t *testing.T) {
			checkRoundTrip(t, b.Build(mach, 1))
		})
	}
}

// TestRoundTripAllocatedForms covers the operand kinds only allocated
// code carries: physical registers (including the machless $R spelling)
// and spill slots with owners.
func TestRoundTripAllocatedForms(t *testing.T) {
	const text = `program mem=8 main=f
func f(a int) {
entry:
    $R1 = add $R0, 7
    spill.st [slot0:a], $R1
    $R2 = spill.ld [slot0:a]
    $R30 = fldi 2.5
    ret
}
`
	prog, err := ir.ParseProgramString(text, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog.SetMem(3, -42)
	checkRoundTrip(t, prog)
}

func TestTextBinaryParity(t *testing.T) {
	// The same program through both front ends — ParseProgram on the
	// printed text, Decode on the binary frame — must land on the same
	// in-memory form, across every machine preset.
	for _, preset := range target.PresetNames() {
		mach, err := target.Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		for _, profile := range progs.Profiles() {
			t.Run(preset+"/"+profile, func(t *testing.T) {
				cfg, err := progs.ProfileGen(profile, 11)
				if err != nil {
					t.Fatal(err)
				}
				prog := progs.Random(mach, cfg)
				text := machlessText(prog)
				fromText, err := ir.ParseProgramString(text, nil)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				fromBin, err := irbin.DecodeProgram(irbin.EncodeProgram(prog))
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if a, b := machlessText(fromText), machlessText(fromBin); a != b {
					t.Fatalf("text and binary front ends disagree:\ntext:\n%s\nbinary:\n%s", a, b)
				}
				// Byte equality of the two encodings is NOT asserted:
				// the text form carries neither block IDs nor MemInit,
				// so a text round trip legitimately renumbers blocks.
				// The printed form above is the semantic parity claim.
			})
		}
	}
}

// TestArenaReuse decodes alternating large and small programs through
// one arena, checking a small decode is never corrupted by the large
// one's leftovers.
func TestArenaReuse(t *testing.T) {
	mach := target.Alpha()
	big := progs.BuildFpppp(mach, 2)
	cfg := progs.DefaultGen(7)
	small := progs.Random(mach, cfg)
	encBig, encSmall := irbin.EncodeProgram(big), irbin.EncodeProgram(small)
	wantBig, wantSmall := machlessText(big), machlessText(small)
	a := irbin.NewArena()
	for i := 0; i < 4; i++ {
		enc, want := encBig, wantBig
		if i%2 == 1 {
			enc, want = encSmall, wantSmall
		}
		got, _, err := a.Decode(enc)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if have := machlessText(got); have != want {
			t.Fatalf("iter %d: arena reuse corrupted program:\n%s", i, have)
		}
	}
}

func TestFrameStream(t *testing.T) {
	mach := target.Alpha()
	var buf []byte
	var want []string
	for seed := int64(0); seed < 5; seed++ {
		p := progs.Random(mach, progs.DefaultGen(seed))
		buf = irbin.AppendProgram(buf, p)
		want = append(want, machlessText(p))
	}
	a := irbin.NewArena()
	rest := buf
	for i := 0; len(rest) > 0; i++ {
		if n, err := irbin.FrameSize(rest); err != nil || n <= 0 {
			t.Fatalf("frame %d: size %d err %v", i, n, err)
		}
		prog, n, err := a.Decode(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if have := machlessText(prog); have != want[i] {
			t.Fatalf("frame %d decoded wrong program", i)
		}
		rest = rest[n:]
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	prog := progs.Random(target.Alpha(), progs.DefaultGen(3))
	enc := irbin.EncodeProgram(prog)

	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"truncated header", func(b []byte) []byte { return b[:3] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }},
		{"payload length overrun", func(b []byte) []byte { b[5] = 0xff; b[6] = 0xff; return b[:8] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mangled := tc.mangle(bytes.Clone(enc))
			if _, _, err := irbin.NewArena().Decode(mangled); err == nil {
				t.Fatal("decode accepted corrupt input")
			}
		})
	}

	// Every single-byte corruption must either fail decode or still
	// yield a structurally sound program — never panic or overrun.
	for i := range enc {
		for _, delta := range []byte{1, 0x80} {
			mangled := bytes.Clone(enc)
			mangled[i] += delta
			prog, _, err := irbin.NewArena().Decode(mangled)
			if err == nil && prog == nil {
				t.Fatalf("byte %d: nil program without error", i)
			}
		}
	}
}

func TestDecodeRejectsDuplicateProc(t *testing.T) {
	// AddProc panics on duplicate names, so a hostile frame can't be
	// built through the constructor API: encode two procs named f and
	// g, then patch g's name back to f in the wire bytes.
	p, err := ir.ParseProgramString(
		"program mem=0 main=f\nfunc f() {\nentry:\n    ret\n}\nfunc g() {\nentry:\n    ret\n}\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	hostile := irbin.EncodeProgram(p)
	idx := bytes.LastIndex(hostile, []byte{1, 'g'})
	if idx < 0 {
		t.Fatal("could not locate proc name in frame")
	}
	hostile[idx+1] = 'f'
	if _, _, err := irbin.NewArena().Decode(hostile); err == nil {
		t.Fatal("decode accepted duplicate proc name")
	}
}

func BenchmarkDecode(b *testing.B) {
	prog := progs.Random(target.Alpha(), progs.DefaultGen(42))
	enc := irbin.EncodeProgram(prog)
	a := irbin.NewArena()
	if _, _, err := a.Decode(enc); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	prog := progs.Random(target.Alpha(), progs.DefaultGen(42))
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = irbin.AppendProgram(buf[:0], prog)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkParseText(b *testing.B) {
	prog := progs.Random(target.Alpha(), progs.DefaultGen(42))
	text := machlessText(prog)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ir.ParseProgramString(text, nil); err != nil {
			b.Fatal(err)
		}
	}
}
