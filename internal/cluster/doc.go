// Package cluster scales the allocation service (internal/serve) from
// one daemon to a horizontally sharded fleet, keeping the paper's
// allocation-speed thesis intact at cluster scale: requests route by
// consistent hashing so each program's content address lands on the
// node whose cache already holds it, and everything expensive — the
// allocations themselves — is done once and served many times.
//
// The pieces:
//
//   - Ring: a consistent-hash ring over node addresses with virtual
//     nodes. RouteKey hashes a request's (machine, algorithm, program)
//     triple — a stable proxy for the engine's content address that a
//     client can compute without engine internals — and Ring.Sequence
//     yields the owner followed by its successors, which is both the
//     failover order and the replication topology.
//
//   - Client: a cluster-aware front end that keeps a node table,
//     routes each request to its owner, fails over to ring successors
//     on node loss, honors 429 + Retry-After with bounded backoff, and
//     optionally hedges slow requests (a second copy to the successor
//     after HedgeDelay; first answer wins) to cut tail latency.
//
//   - Cluster / Node: an in-process supervisor that runs N serve.Server
//     nodes on real listeners, maintains the ring through node
//     join/leave/drain, and replicates hot cache entries to ring
//     successors (on join a node warms from its successor, on leave it
//     pushes its working set forward, and Replicate runs the same push
//     on a timer) through the serve layer's /cache/export + /cache/seed
//     endpoints. cmd/lsra-cluster wraps it as a binary for local
//     topologies; the tests and lsra-bench -cluster drive it directly.
//
// Nodes stay plain lsra-served daemons — the cluster is coordination-
// free (no consensus, no metadata service): membership is whatever the
// client's node table says, and the cache tiers (in-memory sharded LRU
// plus the optional internal/diskcache persistent tier) make routing
// mistakes merely slow, never wrong.
package cluster
