package cluster

import (
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per member when NewRing is
// given a non-positive one. Client and supervisor must agree on the
// count (both default here) for their rings to route identically.
const DefaultVnodes = 64

// Ring is a consistent-hash ring over node addresses: each member owns
// vnodes points on a 64-bit circle, and a key belongs to the member
// whose point follows the key's hash. Adding or removing one member
// moves only ~1/n of the key space. Safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point // sorted by hash
	nodes  map[string]bool
}

// point is one virtual node.
type point struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (DefaultVnodes when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]bool{}}
}

// hash64 is the ring's key hash.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// pointHash places a member's i-th virtual node. fnv alone correlates
// badly on the near-identical "<node>#<i>" strings (one node can end up
// owning half the circle), so the fnv base is finished with a
// splitmix64 mix to scatter the points.
func pointHash(node string, i int) uint64 {
	x := hash64(node) + uint64(i) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add inserts a member (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the member owning a key hash, or "" on an empty ring.
func (r *Ring) Owner(key uint64) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.searchLocked(key)].node
}

// searchLocked finds the first point at or after key, wrapping.
func (r *Ring) searchLocked(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Sequence returns up to max distinct members in ring order starting at
// the key's owner: the failover order for the key. max <= 0 means every
// member.
func (r *Ring) Sequence(key uint64, max int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.nodes) {
		max = len(r.nodes)
	}
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	for i, n := r.searchLocked(key), 0; n < len(r.points) && len(out) < max; i, n = (i+1)%len(r.points), n+1 {
		if node := r.points[i].node; !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// Successor returns the distinct member that follows node on the ring —
// the node that inherits (most of) its range when it leaves, and
// therefore the replication target for its hot cache entries. Returns
// "" when node is alone or absent. With virtual nodes a leaving
// member's ranges scatter over several members; the successor of its
// first point is the single best target, and cache misses on the rest
// are merely cold, never wrong.
func (r *Ring) Successor(node string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.nodes[node] || len(r.nodes) < 2 {
		return ""
	}
	start := r.searchLocked(pointHash(node, 0))
	for n, i := 0, (start+1)%len(r.points); n < len(r.points); n, i = n+1, (i+1)%len(r.points) {
		if r.points[i].node != node {
			return r.points[i].node
		}
	}
	return ""
}

// RouteKey hashes one allocation request onto the ring's key space: the
// machine spec string, algorithm, and program texts, in order. It is
// the client-computable proxy for the engine's content address — two
// identical requests always route to the same node, so the owner's
// cache sees every repeat.
func RouteKey(machine, algorithm string, programs []string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(machine))
	h.Write([]byte{0})
	h.Write([]byte(algorithm))
	for _, p := range programs {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return h.Sum64()
}
