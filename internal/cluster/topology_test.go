package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// topologyAdmin serves a mutable /topology document the way
// cmd/lsra-cluster's admin endpoint does.
type topologyAdmin struct {
	infos atomic.Value // []NodeInfo
	fail  atomic.Bool  // when set, answer 500 instead
}

func (a *topologyAdmin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if a.fail.Load() {
		http.Error(w, "admin unavailable", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	infos, _ := a.infos.Load().([]NodeInfo)
	_ = json.NewEncoder(w).Encode(infos)
}

func (a *topologyAdmin) set(urls []string) {
	infos := make([]NodeInfo, len(urls))
	for i, u := range urls {
		infos[i] = NodeInfo{Name: "node-" + u, URL: u}
	}
	a.infos.Store(infos)
}

func waitForNodes(t *testing.T, cl *Client, want []string) {
	t.Helper()
	sorted := append([]string(nil), want...)
	sort.Strings(sorted)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		got := cl.Nodes()
		sort.Strings(got)
		if reflect.DeepEqual(got, sorted) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node table never became %v (have %v)", sorted, cl.Nodes())
}

// TestClientTopologyPolling verifies the timer-driven half of the
// SetNodes plumbing: a client created against a stale node table
// converges onto what the admin /topology endpoint publishes — first
// via the immediate priming poll, then again after the table changes.
func TestClientTopologyPolling(t *testing.T) {
	admin := &topologyAdmin{}
	admin.set([]string{"http://a:1", "http://b:2"})
	srv := httptest.NewServer(admin)
	defer srv.Close()

	cl := NewClient(ClientConfig{
		Nodes:            []string{"http://stale:9"},
		TopologyURL:      srv.URL,
		TopologyInterval: 10 * time.Millisecond,
	})
	defer cl.Close()
	waitForNodes(t, cl, []string{"http://a:1", "http://b:2"})

	// A membership change propagates on the next tick.
	admin.set([]string{"http://a:1", "http://c:3"})
	waitForNodes(t, cl, []string{"http://a:1", "http://c:3"})
	if st := cl.Stats(); st.TopologyRefreshes == 0 {
		t.Error("refreshes happened but TopologyRefreshes is 0")
	}
}

// TestClientTopologyRefreshKeepsTableOnFailure pins the safety rule: a
// failing or empty admin response must leave the working ring alone.
func TestClientTopologyRefreshKeepsTableOnFailure(t *testing.T) {
	admin := &topologyAdmin{}
	admin.set(nil) // empty table
	srv := httptest.NewServer(admin)
	defer srv.Close()

	cl := NewClient(ClientConfig{Nodes: []string{"http://keep:1"}})
	cl.cfg.TopologyURL = srv.URL
	cl.refreshTopology() // empty response: rejected
	admin.fail.Store(true)
	cl.refreshTopology() // 500: rejected
	if got := cl.Nodes(); !reflect.DeepEqual(got, []string{"http://keep:1"}) {
		t.Fatalf("node table damaged by failed refreshes: %v", got)
	}
	if st := cl.Stats(); st.TopologyRefreshes != 0 {
		t.Errorf("failed refreshes counted: %d", st.TopologyRefreshes)
	}
}

// TestClientFailoverTriggersRefresh exercises the second half of the
// fix: a streak of failovers kicks an immediate topology poll, so a
// client whose entire node table went stale recovers without waiting
// out the (here: one-hour) timer.
func TestClientFailoverTriggersRefresh(t *testing.T) {
	c := startCluster(t, 2, NodeConfig{})
	admin := &topologyAdmin{}
	admin.fail.Store(true) // priming poll must not rescue the client early
	srv := httptest.NewServer(admin)
	defer srv.Close()

	// Two dead addresses: every attempt fails, each failover bumps the
	// streak, and FailoverRefresh=1 kicks the poller on the first one.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	cl := NewClient(ClientConfig{
		Nodes:            []string{dead.URL, dead.URL + "0"},
		MaxAttempts:      2,
		TopologyURL:      srv.URL,
		TopologyInterval: time.Hour,
		FailoverRefresh:  1,
	})
	defer cl.Close()

	admin.set(c.URLs())
	admin.fail.Store(false)
	job := testJobs(t, 1)[0]
	req := serve.AllocateRequest{Machine: testMachine, Program: job.Text}
	// The first request fails against the dead table but triggers the
	// refresh; once the poller lands the live topology, requests serve.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, err := cl.Allocate(context.Background(), req); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered onto the live topology")
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitForNodes(t, cl, c.URLs())
	if st := cl.Stats(); st.TopologyRefreshes == 0 || st.Failovers == 0 {
		t.Errorf("expected failovers and a triggered refresh, got %+v", st)
	}
}
