package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerStable(t *testing.T) {
	r := NewRing(0)
	r.Add("http://a")
	r.Add("http://b")
	r.Add("http://c")
	for i := 0; i < 100; i++ {
		key := hash64(fmt.Sprintf("key-%d", i))
		first := r.Owner(key)
		if first == "" {
			t.Fatal("empty owner on populated ring")
		}
		if again := r.Owner(key); again != first {
			t.Fatalf("owner not stable: %s then %s", first, again)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	for _, n := range nodes {
		r.Add(n)
	}
	const keys = 4000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(hash64(fmt.Sprintf("key-%d", i)))]++
	}
	// With 64 vnodes the spread should be loose but bounded: every node
	// gets a real share, none dominates.
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys, outside [10%%, 45%%]", n, share*100)
		}
	}
}

func TestRingJoinMovesBoundedShare(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"http://a", "http://b", "http://c"} {
		r.Add(n)
	}
	const keys = 4000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(hash64(fmt.Sprintf("key-%d", i)))
	}
	r.Add("http://d")
	moved, toNew := 0, 0
	for i := range before {
		now := r.Owner(hash64(fmt.Sprintf("key-%d", i)))
		if now != before[i] {
			moved++
			if now == "http://d" {
				toNew++
			}
		}
	}
	if moved != toNew {
		t.Errorf("join moved %d keys but only %d landed on the joiner — keys shuffled between old nodes", moved, toNew)
	}
	// Consistent hashing: a 4th node takes ~1/4 of the space, give or
	// take vnode variance.
	share := float64(moved) / keys
	if share < 0.10 || share > 0.45 {
		t.Errorf("join moved %.1f%% of keys, expected ~25%%", share*100)
	}
}

func TestRingRemoveRestoresOwners(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"http://a", "http://b", "http://c"} {
		r.Add(n)
	}
	const keys = 1000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(hash64(fmt.Sprintf("key-%d", i)))
	}
	r.Add("http://d")
	r.Remove("http://d")
	for i := range before {
		if now := r.Owner(hash64(fmt.Sprintf("key-%d", i))); now != before[i] {
			t.Fatalf("key %d: owner %s before join, %s after join+leave", i, before[i], now)
		}
	}
}

func TestRingSequence(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"http://a", "http://b", "http://c"} {
		r.Add(n)
	}
	key := hash64("some-key")
	seq := r.Sequence(key, 0)
	if len(seq) != 3 {
		t.Fatalf("Sequence(max=0) returned %d nodes, want 3", len(seq))
	}
	if seq[0] != r.Owner(key) {
		t.Errorf("sequence head %s != owner %s", seq[0], r.Owner(key))
	}
	seen := map[string]bool{}
	for _, n := range seq {
		if seen[n] {
			t.Errorf("duplicate node %s in sequence", n)
		}
		seen[n] = true
	}
	if got := r.Sequence(key, 2); len(got) != 2 || got[0] != seq[0] || got[1] != seq[1] {
		t.Errorf("Sequence(max=2) = %v, want prefix of %v", got, seq)
	}
}

func TestRingSuccessor(t *testing.T) {
	r := NewRing(0)
	r.Add("http://a")
	if s := r.Successor("http://a"); s != "" {
		t.Errorf("lone node has successor %q, want none", s)
	}
	if s := r.Successor("http://ghost"); s != "" {
		t.Errorf("absent node has successor %q, want none", s)
	}
	r.Add("http://b")
	if s := r.Successor("http://a"); s != "http://b" {
		t.Errorf("two-node ring: successor(a) = %q, want http://b", s)
	}
	if s := r.Successor("http://b"); s != "http://a" {
		t.Errorf("two-node ring: successor(b) = %q, want http://a", s)
	}
	r.Add("http://c")
	for _, n := range []string{"http://a", "http://b", "http://c"} {
		if s := r.Successor(n); s == "" || s == n {
			t.Errorf("successor(%s) = %q, want a distinct member", n, s)
		}
	}
}

func TestRouteKeyDeterministic(t *testing.T) {
	a := RouteKey("amd64", "linear", []string{"p1", "p2"})
	if b := RouteKey("amd64", "linear", []string{"p1", "p2"}); b != a {
		t.Fatal("RouteKey not deterministic")
	}
	if b := RouteKey("amd64", "graph", []string{"p1", "p2"}); b == a {
		t.Error("algorithm change did not change the route key")
	}
	if b := RouteKey("arm", "linear", []string{"p1", "p2"}); b == a {
		t.Error("machine change did not change the route key")
	}
	if b := RouteKey("amd64", "linear", []string{"p1"}); b == a {
		t.Error("program set change did not change the route key")
	}
}
