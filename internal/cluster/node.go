package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// NodeConfig describes one cluster member.
type NodeConfig struct {
	// Name identifies the node to the supervisor (join/leave/kill);
	// empty derives it from the listen address.
	Name string
	// Addr is the listen address; "127.0.0.1:0" picks a free port.
	Addr string
	// Serve configures the node's allocation service (cache size,
	// workers, persistence directory, ...).
	Serve serve.Config
	// Middleware, when set, wraps the node's handler — the bench and
	// tests use it to inject tail latency or fault conditions.
	Middleware func(http.Handler) http.Handler
}

// Node is one running cluster member: a serve.Server on a real
// listener.
type Node struct {
	Name string
	// URL is the node's base URL (http://host:port) — its ring identity.
	URL string

	srv     *serve.Server
	httpSrv *http.Server
	ln      net.Listener
}

// StartNode builds and starts one node. It is independent of any
// Cluster: a remote deployment runs StartNode-equivalent daemons
// (cmd/lsra-served) per machine and only the node table is shared.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv, err := serve.New(cfg.Serve)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Addr, err)
	}
	var handler http.Handler = srv
	if cfg.Middleware != nil {
		handler = cfg.Middleware(srv)
	}
	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	n := &Node{
		Name:    cfg.Name,
		URL:     "http://" + ln.Addr().String(),
		srv:     srv,
		httpSrv: hs,
		ln:      ln,
	}
	if n.Name == "" {
		n.Name = ln.Addr().String()
	}
	go func() { _ = hs.Serve(ln) }()
	return n, nil
}

// Server exposes the node's allocation service (tests reach its cache
// and metrics through it).
func (n *Node) Server() *serve.Server { return n.srv }

// Drain gracefully stops the node: in-flight requests finish, new ones
// are refused, then the listener closes.
func (n *Node) Drain(ctx context.Context) error {
	if err := n.srv.Shutdown(ctx); err != nil {
		return err
	}
	return n.httpSrv.Shutdown(ctx)
}

// Kill stops the node abruptly — no drain, no replication — the
// node-loss failure mode the failover tests exercise.
func (n *Node) Kill() {
	_ = n.httpSrv.Close()
}

// NodeInfo is one row of a cluster topology.
type NodeInfo struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Successor is the node's replication target on the ring.
	Successor string `json:"successor,omitempty"`
}

// Options tunes a Cluster supervisor.
type Options struct {
	// Vnodes is the ring's virtual-node count (0 = DefaultVnodes; must
	// match the clients').
	Vnodes int
	// HotEntries is how many hottest cache entries move per replication
	// (0 = 64).
	HotEntries int
	// SeedChunk bounds entries per /cache/seed POST so replication
	// stays under the receiver's request-size limit (0 = 16).
	SeedChunk int
	// HTTPClient overrides the transport used for replication calls.
	HTTPClient *http.Client
}

// Cluster supervises a set of in-process nodes: it owns the ring,
// implements join/leave with hot-cache-entry replication, and a
// Replicate sweep that keeps each node's working set mirrored on its
// successor so abrupt node loss still fails over warm.
type Cluster struct {
	opts Options
	http *http.Client

	mu    sync.Mutex
	ring  *Ring
	nodes map[string]*Node // by name
}

// NewCluster returns an empty supervisor.
func NewCluster(opts Options) *Cluster {
	if opts.HotEntries <= 0 {
		opts.HotEntries = 64
	}
	if opts.SeedChunk <= 0 {
		opts.SeedChunk = 16
	}
	c := &Cluster{
		opts:  opts,
		http:  opts.HTTPClient,
		ring:  NewRing(opts.Vnodes),
		nodes: map[string]*Node{},
	}
	if c.http == nil {
		c.http = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Join starts a node, adds it to the ring, and warms it from its ring
// successor — the member that owned (most of) its key range until now —
// by pulling the successor's hottest entries into the new node's cache.
func (c *Cluster) Join(cfg NodeConfig) (*Node, error) {
	n, err := StartNode(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, dup := c.nodes[n.Name]; dup {
		c.mu.Unlock()
		n.Kill()
		return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
	}
	c.nodes[n.Name] = n
	c.ring.Add(n.URL)
	succ := c.ring.Successor(n.URL)
	c.mu.Unlock()
	if succ != "" {
		// Warm the joiner; a replication failure leaves it cold, not
		// broken.
		_, _ = c.replicate(succ, n.URL)
	}
	return n, nil
}

// Leave drains a node out of the cluster: its hot cache entries are
// pushed to its ring successor first (so the working set survives the
// departure), it is removed from the ring, then drained and stopped.
func (c *Cluster) Leave(ctx context.Context, name string) error {
	c.mu.Lock()
	n, ok := c.nodes[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no node %q", name)
	}
	succ := c.ring.Successor(n.URL)
	c.mu.Unlock()
	if succ != "" {
		if _, err := c.replicate(n.URL, succ); err != nil {
			return fmt.Errorf("cluster: leave %s: replicate to successor: %w", name, err)
		}
	}
	c.mu.Lock()
	c.ring.Remove(n.URL)
	delete(c.nodes, name)
	c.mu.Unlock()
	return n.Drain(ctx)
}

// Kill removes a node abruptly: no replication, no drain — simulating
// node loss. Whatever Replicate mirrored beforehand is what stays warm.
func (c *Cluster) Kill(name string) {
	c.mu.Lock()
	n, ok := c.nodes[name]
	if ok {
		c.ring.Remove(n.URL)
		delete(c.nodes, name)
	}
	c.mu.Unlock()
	if ok {
		n.Kill()
	}
}

// Node returns a member by name.
func (c *Cluster) Node(name string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// URLs returns the members' base URLs, sorted — the client node table.
func (c *Cluster) URLs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n.URL)
	}
	sort.Strings(out)
	return out
}

// Topology lists the members with their replication successors.
func (c *Cluster) Topology() []NodeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeInfo, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, NodeInfo{Name: n.Name, URL: n.URL, Successor: c.ring.Successor(n.URL)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Client builds a cluster-aware client over the current members; cfg's
// Nodes and Vnodes are filled in.
func (c *Cluster) Client(cfg ClientConfig) *Client {
	cfg.Nodes = c.URLs()
	cfg.Vnodes = c.opts.Vnodes
	return NewClient(cfg)
}

// Replicate runs one replication sweep: every node pushes its hottest
// cache entries to its ring successor. Run it on a timer
// (cmd/lsra-cluster does) so abrupt node loss fails over onto a warm
// successor. Returns the total entries seeded.
func (c *Cluster) Replicate() (int, error) {
	c.mu.Lock()
	type hop struct{ from, to string }
	var hops []hop
	for _, n := range c.nodes {
		if succ := c.ring.Successor(n.URL); succ != "" {
			hops = append(hops, hop{from: n.URL, to: succ})
		}
	}
	c.mu.Unlock()
	sort.Slice(hops, func(i, j int) bool { return hops[i].from < hops[j].from })
	total := 0
	var firstErr error
	for _, h := range hops {
		n, err := c.replicate(h.from, h.to)
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// Shutdown drains every node.
func (c *Cluster) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
		c.ring.Remove(n.URL)
	}
	c.nodes = map[string]*Node{}
	c.mu.Unlock()
	var firstErr error
	for _, n := range nodes {
		if err := n.Drain(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// replicate pulls from's hottest entries and seeds them into to, in
// chunks that respect the receiver's request-size bound. Returns how
// many entries the receiver accepted.
func (c *Cluster) replicate(from, to string) (int, error) {
	resp, err := c.http.Get(fmt.Sprintf("%s/cache/export?n=%d", from, c.opts.HotEntries))
	if err != nil {
		return 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("export from %s: status %d", from, resp.StatusCode)
	}
	var exp serve.CacheExportResponse
	if err := json.Unmarshal(raw, &exp); err != nil {
		return 0, fmt.Errorf("export from %s: %w", from, err)
	}
	seeded := 0
	for start := 0; start < len(exp.Entries); start += c.opts.SeedChunk {
		end := start + c.opts.SeedChunk
		if end > len(exp.Entries) {
			end = len(exp.Entries)
		}
		body, err := json.Marshal(&serve.CacheSeedRequest{Entries: exp.Entries[start:end]})
		if err != nil {
			return seeded, err
		}
		sresp, err := c.http.Post(to+"/cache/seed", "application/json", bytes.NewReader(body))
		if err != nil {
			return seeded, err
		}
		sraw, err := io.ReadAll(sresp.Body)
		sresp.Body.Close()
		if err != nil {
			return seeded, err
		}
		if sresp.StatusCode != http.StatusOK {
			return seeded, fmt.Errorf("seed to %s: status %d", to, sresp.StatusCode)
		}
		var sr serve.CacheSeedResponse
		if err := json.Unmarshal(sraw, &sr); err != nil {
			return seeded, err
		}
		seeded += sr.Seeded
	}
	return seeded, nil
}
