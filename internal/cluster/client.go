package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// ClientConfig tunes a cluster Client. Only Nodes is required.
type ClientConfig struct {
	// Nodes are the node base URLs (http://host:port). SetNodes updates
	// the table later (join/leave).
	Nodes []string
	// Vnodes is the ring's virtual-node count; it must match the
	// cluster's (0 = DefaultVnodes, which the supervisor also uses).
	Vnodes int
	// MaxAttempts bounds how many distinct nodes one request may try,
	// owner included (0 = 3, clamped to the node count).
	MaxAttempts int
	// HedgeDelay, when positive, sends a second copy of a still-pending
	// request to the next node on the ring after this long; the first
	// answer wins. Cuts tail latency at the cost of duplicate work on
	// the slow tail.
	HedgeDelay time.Duration
	// Max429Retries bounds how often one node attempt re-sends after a
	// 429, honoring Retry-After each time (0 = 2).
	Max429Retries int
	// MaxRetryAfter caps the honored Retry-After sleep, so a hostile or
	// confused server cannot park the client (0 = 2s).
	MaxRetryAfter time.Duration
	// DownCooldown is how long a node that failed a request is skipped
	// in routing before being tried again (0 = 3s).
	DownCooldown time.Duration
	// HTTPClient overrides the transport (nil = a client with a 60s
	// overall timeout).
	HTTPClient *http.Client
	// TopologyURL, when set, is a cluster admin /topology endpoint (see
	// cmd/lsra-cluster) the client polls for the live node table; every
	// successful poll feeds SetNodes, so joins and leaves propagate
	// without restarting the client.
	TopologyURL string
	// TopologyInterval is the poll period (0 = 15s). Meaningful only
	// with TopologyURL.
	TopologyInterval time.Duration
	// FailoverRefresh triggers an immediate topology poll after this
	// many consecutive failovers without an intervening first-attempt
	// success — the signature of routing against a stale node table
	// (0 = 3). Meaningful only with TopologyURL.
	FailoverRefresh int
}

// ClientStats counts a Client's routing behavior.
type ClientStats struct {
	// Requests counts Allocate calls; Failovers attempts moved to a
	// successor after a node failed; Hedges hedge copies sent; HedgeWins
	// hedge copies that answered first; Retries429 re-sends after a
	// 429 + Retry-After; Errors requests that exhausted every candidate.
	Requests   uint64 `json:"requests"`
	Failovers  uint64 `json:"failovers"`
	Hedges     uint64 `json:"hedges"`
	HedgeWins  uint64 `json:"hedge_wins"`
	Retries429 uint64 `json:"retries_429"`
	Errors     uint64 `json:"errors"`
	// TopologyRefreshes counts successful /topology polls that replaced
	// the node table (timer-driven and failover-triggered alike).
	TopologyRefreshes uint64 `json:"topology_refreshes"`
}

// Client is the cluster-aware allocation client: consistent-hash
// routing with failover, bounded 429 backoff, and optional hedged
// requests. Safe for concurrent use.
type Client struct {
	cfg  ClientConfig
	ring *Ring
	http *http.Client

	healthMu sync.Mutex
	downTil  map[string]time.Time

	requests, failovers  atomic.Uint64
	hedges, hedgeWins    atomic.Uint64
	retries429, errorsCt atomic.Uint64

	// Topology refresh loop state (nil/inert when TopologyURL is unset).
	refreshC    chan struct{} // non-blocking kick: poll now
	stopC       chan struct{}
	stopOnce    sync.Once
	pollerDone  chan struct{}
	consecFails atomic.Uint64 // consecutive failovers since the last owner hit
	refreshes   atomic.Uint64
}

// NewClient builds a Client over the given nodes.
func NewClient(cfg ClientConfig) *Client {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Max429Retries <= 0 {
		cfg.Max429Retries = 2
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 2 * time.Second
	}
	if cfg.DownCooldown <= 0 {
		cfg.DownCooldown = 3 * time.Second
	}
	c := &Client{
		cfg:     cfg,
		ring:    NewRing(cfg.Vnodes),
		http:    cfg.HTTPClient,
		downTil: map[string]time.Time{},
	}
	if c.http == nil {
		c.http = &http.Client{Timeout: 60 * time.Second}
	}
	for _, n := range cfg.Nodes {
		c.ring.Add(n)
	}
	if cfg.TopologyURL != "" {
		if c.cfg.TopologyInterval <= 0 {
			c.cfg.TopologyInterval = 15 * time.Second
		}
		if c.cfg.FailoverRefresh <= 0 {
			c.cfg.FailoverRefresh = 3
		}
		c.refreshC = make(chan struct{}, 1)
		c.stopC = make(chan struct{})
		c.pollerDone = make(chan struct{})
		go c.pollTopology()
	}
	return c
}

// Close stops the topology poller, if one is running. The client stays
// usable for requests afterwards (its node table just stops tracking
// the cluster). Safe to call multiple times; a no-op without a
// TopologyURL.
func (c *Client) Close() {
	if c.stopC == nil {
		return
	}
	c.stopOnce.Do(func() { close(c.stopC) })
	<-c.pollerDone
}

// pollTopology keeps the node table synchronized with the cluster's
// admin /topology endpoint: a timer covers the steady state, and a
// non-blocking kick from the failover path (see race) covers the
// moment routing goes visibly stale.
func (c *Client) pollTopology() {
	defer close(c.pollerDone)
	// Prime immediately: a client created while nodes are joining should
	// not wait a full interval for its first true table.
	c.refreshTopology()
	t := time.NewTicker(c.cfg.TopologyInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.refreshTopology()
		case <-c.refreshC:
			c.refreshTopology()
		case <-c.stopC:
			return
		}
	}
}

// refreshTopology fetches the admin topology once and swaps in the node
// table. Failures leave the current table untouched — a flaky admin
// endpoint must not amputate a working ring — and an empty table is
// treated as a failure for the same reason.
func (c *Client) refreshTopology() {
	resp, err := c.http.Get(c.cfg.TopologyURL)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var infos []NodeInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&infos); err != nil {
		return
	}
	nodes := make([]string, 0, len(infos))
	for _, ni := range infos {
		if ni.URL != "" {
			nodes = append(nodes, ni.URL)
		}
	}
	if len(nodes) == 0 {
		return
	}
	c.SetNodes(nodes)
	c.refreshes.Add(1)
}

// kickRefresh requests an immediate topology poll (non-blocking: a
// pending kick is as good as two).
func (c *Client) kickRefresh() {
	if c.refreshC == nil {
		return
	}
	select {
	case c.refreshC <- struct{}{}:
	default:
	}
}

// SetNodes replaces the node table (the join/leave hook).
func (c *Client) SetNodes(nodes []string) {
	want := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		want[n] = true
		c.ring.Add(n)
	}
	for _, n := range c.ring.Nodes() {
		if !want[n] {
			c.ring.Remove(n)
		}
	}
}

// Nodes returns the current node table.
func (c *Client) Nodes() []string { return c.ring.Nodes() }

// Stats samples the client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Requests:          c.requests.Load(),
		Failovers:         c.failovers.Load(),
		Hedges:            c.hedges.Load(),
		HedgeWins:         c.hedgeWins.Load(),
		Retries429:        c.retries429.Load(),
		Errors:            c.errorsCt.Load(),
		TopologyRefreshes: c.refreshes.Load(),
	}
}

// markDown records a node failure; the node is skipped in routing until
// the cooldown passes (it stays a last-resort candidate).
func (c *Client) markDown(node string) {
	c.healthMu.Lock()
	c.downTil[node] = time.Now().Add(c.cfg.DownCooldown)
	c.healthMu.Unlock()
}

// markUp clears a node's down state after a success.
func (c *Client) markUp(node string) {
	c.healthMu.Lock()
	delete(c.downTil, node)
	c.healthMu.Unlock()
}

// candidates returns the failover sequence for key: the owner and its
// successors, healthy nodes first, cooling-down nodes demoted to the
// tail rather than dropped (when everything is marked down, trying is
// still better than failing).
func (c *Client) candidates(key uint64) []string {
	seq := c.ring.Sequence(key, c.cfg.MaxAttempts)
	now := time.Now()
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	healthy := make([]string, 0, len(seq))
	var cooling []string
	for _, n := range seq {
		if til, ok := c.downTil[n]; ok && now.Before(til) {
			cooling = append(cooling, n)
		} else {
			healthy = append(healthy, n)
		}
	}
	return append(healthy, cooling...)
}

// Allocate routes one request to its owning node, failing over to ring
// successors on node failure and hedging per ClientConfig. It returns
// the decoded response and the node that served it.
func (c *Client) Allocate(ctx context.Context, req serve.AllocateRequest) (*serve.AllocateResponse, string, error) {
	c.requests.Add(1)
	texts := req.Programs
	if req.Program != "" {
		texts = []string{req.Program}
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, "", err
	}
	seq := c.candidates(RouteKey(req.Machine, req.Algorithm, texts))
	if len(seq) == 0 {
		c.errorsCt.Add(1)
		return nil, "", fmt.Errorf("cluster: no nodes")
	}
	resp, node, err := c.race(ctx, seq, body)
	if err != nil {
		c.errorsCt.Add(1)
		return nil, "", err
	}
	return resp, node, nil
}

// attemptResult is one node attempt's outcome.
type attemptResult struct {
	idx    int
	hedged bool
	resp   *serve.AllocateResponse
	err    error
}

// race runs the staggered-failover protocol over the candidate
// sequence: the owner is tried immediately; a failure starts the next
// candidate at once (failover); with hedging enabled, a candidate that
// is merely slow gets company after HedgeDelay. The first success wins
// and cancels the rest.
func (c *Client) race(ctx context.Context, seq []string, body []byte) (*serve.AllocateResponse, string, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptResult, len(seq))
	next, inflight := 0, 0
	launch := func(hedged bool) {
		idx := next
		next++
		inflight++
		go func() {
			resp, err := c.attempt(ctx, seq[idx], body)
			results <- attemptResult{idx: idx, hedged: hedged, resp: resp, err: err}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if c.cfg.HedgeDelay > 0 && next < len(seq) {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for {
		select {
		case res := <-results:
			inflight--
			if res.err == nil {
				if res.hedged {
					c.hedgeWins.Add(1)
				}
				if res.idx == 0 {
					// The ring owner answered: routing is healthy, so the
					// consecutive-failover streak ends here.
					c.consecFails.Store(0)
				}
				c.markUp(seq[res.idx])
				return res.resp, seq[res.idx], nil
			}
			lastErr = fmt.Errorf("node %s: %w", seq[res.idx], res.err)
			if ctx.Err() != nil {
				return nil, "", lastErr
			}
			c.markDown(seq[res.idx])
			if next < len(seq) {
				c.failovers.Add(1)
				// A streak of failovers with no owner success means the
				// node table no longer matches the cluster: pull a fresh
				// topology instead of burning attempts on ghosts.
				if n := c.consecFails.Add(1); c.cfg.FailoverRefresh > 0 && n >= uint64(c.cfg.FailoverRefresh) {
					c.consecFails.Store(0)
					c.kickRefresh()
				}
				launch(false)
			} else if inflight == 0 {
				return nil, "", lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(seq) {
				c.hedges.Add(1)
				launch(true)
			}
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
}

// attempt posts the request to one node, honoring 429 + Retry-After
// with bounded backoff: the server's explicit please-wait is respected
// (capped at MaxRetryAfter) up to Max429Retries times before the
// attempt counts as failed.
func (c *Client) attempt(ctx context.Context, node string, body []byte) (*serve.AllocateResponse, error) {
	for retry := 0; ; retry++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/allocate", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(hreq)
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var out serve.AllocateResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				return nil, fmt.Errorf("bad response body: %w", err)
			}
			return &out, nil
		case resp.StatusCode == http.StatusTooManyRequests && retry < c.cfg.Max429Retries:
			c.retries429.Add(1)
			if err := sleepCtx(ctx, retryAfter(resp, c.cfg.MaxRetryAfter)); err != nil {
				return nil, err
			}
			continue
		default:
			var e serve.ErrorResponse
			if json.Unmarshal(raw, &e) == nil && e.Error != "" {
				return nil, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
			}
			return nil, fmt.Errorf("status %d", resp.StatusCode)
		}
	}
}

// retryAfter reads a 429's Retry-After seconds, bounded by limit (which
// is also the fallback when the header is missing or unparsable).
func retryAfter(resp *http.Response, limit time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			d := time.Duration(secs) * time.Second
			if d > limit {
				return limit
			}
			return d
		}
	}
	return limit
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
