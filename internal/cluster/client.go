package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ir"
	"repro/internal/irbin"
	"repro/internal/serve"
	"repro/internal/target"
)

// ClientConfig tunes a cluster Client. Only Nodes is required.
type ClientConfig struct {
	// Nodes are the node base URLs (http://host:port). SetNodes updates
	// the table later (join/leave).
	Nodes []string
	// Vnodes is the ring's virtual-node count; it must match the
	// cluster's (0 = DefaultVnodes, which the supervisor also uses).
	Vnodes int
	// MaxAttempts bounds how many distinct nodes one request may try,
	// owner included (0 = 3, clamped to the node count).
	MaxAttempts int
	// HedgeDelay, when positive, sends a second copy of a still-pending
	// request to the next node on the ring after this long; the first
	// answer wins. Cuts tail latency at the cost of duplicate work on
	// the slow tail.
	HedgeDelay time.Duration
	// Max429Retries bounds how often one node attempt re-sends after a
	// 429, honoring Retry-After each time (0 = 2).
	Max429Retries int
	// MaxRetryAfter caps the honored Retry-After sleep, so a hostile or
	// confused server cannot park the client (0 = 2s).
	MaxRetryAfter time.Duration
	// DownCooldown is how long a node that failed a request is skipped
	// in routing before being tried again (0 = 3s).
	DownCooldown time.Duration
	// HTTPClient overrides the transport (nil = a client with a 60s
	// overall timeout).
	HTTPClient *http.Client
	// TopologyURL, when set, is a cluster admin /topology endpoint (see
	// cmd/lsra-cluster) the client polls for the live node table; every
	// successful poll feeds SetNodes, so joins and leaves propagate
	// without restarting the client.
	TopologyURL string
	// TopologyInterval is the poll period (0 = 15s). Meaningful only
	// with TopologyURL.
	TopologyInterval time.Duration
	// FailoverRefresh triggers an immediate topology poll after this
	// many consecutive failovers without an intervening first-attempt
	// success — the signature of routing against a stale node table
	// (0 = 3). Meaningful only with TopologyURL.
	FailoverRefresh int
	// DisableBinary forces every request onto the JSON wire form. By
	// default the client parses request programs locally and posts
	// application/x-lsra-ir bodies (see serve.ContentTypeBinaryIR),
	// which skips the server's text parser; nodes that answer 415 are
	// remembered as JSON-only and never sent binary again.
	DisableBinary bool
}

// ClientStats counts a Client's routing behavior.
type ClientStats struct {
	// Requests counts Allocate calls; Failovers attempts moved to a
	// successor after a node failed; Hedges hedge copies sent; HedgeWins
	// hedge copies that answered first; Retries429 re-sends after a
	// 429 + Retry-After; Errors requests that exhausted every candidate.
	Requests   uint64 `json:"requests"`
	Failovers  uint64 `json:"failovers"`
	Hedges     uint64 `json:"hedges"`
	HedgeWins  uint64 `json:"hedge_wins"`
	Retries429 uint64 `json:"retries_429"`
	Errors     uint64 `json:"errors"`
	// TopologyRefreshes counts successful /topology polls that replaced
	// the node table (timer-driven and failover-triggered alike).
	TopologyRefreshes uint64 `json:"topology_refreshes"`
	// BinaryRequests counts node attempts posted in the binary wire
	// form (application/x-lsra-ir); JSONFallbacks counts 415 answers
	// that demoted a node to JSON for the client's lifetime.
	BinaryRequests uint64 `json:"binary_requests"`
	JSONFallbacks  uint64 `json:"json_fallbacks"`
}

// Client is the cluster-aware allocation client: consistent-hash
// routing with failover, bounded 429 backoff, and optional hedged
// requests. Safe for concurrent use.
type Client struct {
	cfg  ClientConfig
	ring *Ring
	http *http.Client

	healthMu sync.Mutex
	downTil  map[string]time.Time
	jsonOnly map[string]bool // nodes that answered 415 to a binary post

	// machCache memoizes target.Parse per machine spec so the binary
	// encoder does not re-derive the machine on every request.
	machMu    sync.Mutex
	machCache map[string]*target.Machine

	requests, failovers   atomic.Uint64
	hedges, hedgeWins     atomic.Uint64
	retries429, errorsCt  atomic.Uint64
	binaryReqs, jsonFalls atomic.Uint64

	// Topology refresh loop state (nil/inert when TopologyURL is unset).
	refreshC    chan struct{} // non-blocking kick: poll now
	stopC       chan struct{}
	stopOnce    sync.Once
	pollerDone  chan struct{}
	consecFails atomic.Uint64 // consecutive failovers since the last owner hit
	refreshes   atomic.Uint64
}

// NewClient builds a Client over the given nodes.
func NewClient(cfg ClientConfig) *Client {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Max429Retries <= 0 {
		cfg.Max429Retries = 2
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 2 * time.Second
	}
	if cfg.DownCooldown <= 0 {
		cfg.DownCooldown = 3 * time.Second
	}
	c := &Client{
		cfg:       cfg,
		ring:      NewRing(cfg.Vnodes),
		http:      cfg.HTTPClient,
		downTil:   map[string]time.Time{},
		jsonOnly:  map[string]bool{},
		machCache: map[string]*target.Machine{},
	}
	if c.http == nil {
		c.http = &http.Client{Timeout: 60 * time.Second}
	}
	for _, n := range cfg.Nodes {
		c.ring.Add(n)
	}
	if cfg.TopologyURL != "" {
		if c.cfg.TopologyInterval <= 0 {
			c.cfg.TopologyInterval = 15 * time.Second
		}
		if c.cfg.FailoverRefresh <= 0 {
			c.cfg.FailoverRefresh = 3
		}
		c.refreshC = make(chan struct{}, 1)
		c.stopC = make(chan struct{})
		c.pollerDone = make(chan struct{})
		go c.pollTopology()
	}
	return c
}

// Close stops the topology poller, if one is running. The client stays
// usable for requests afterwards (its node table just stops tracking
// the cluster). Safe to call multiple times; a no-op without a
// TopologyURL.
func (c *Client) Close() {
	if c.stopC == nil {
		return
	}
	c.stopOnce.Do(func() { close(c.stopC) })
	<-c.pollerDone
}

// pollTopology keeps the node table synchronized with the cluster's
// admin /topology endpoint: a timer covers the steady state, and a
// non-blocking kick from the failover path (see race) covers the
// moment routing goes visibly stale.
func (c *Client) pollTopology() {
	defer close(c.pollerDone)
	// Prime immediately: a client created while nodes are joining should
	// not wait a full interval for its first true table.
	c.refreshTopology()
	t := time.NewTicker(c.cfg.TopologyInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.refreshTopology()
		case <-c.refreshC:
			c.refreshTopology()
		case <-c.stopC:
			return
		}
	}
}

// refreshTopology fetches the admin topology once and swaps in the node
// table. Failures leave the current table untouched — a flaky admin
// endpoint must not amputate a working ring — and an empty table is
// treated as a failure for the same reason.
func (c *Client) refreshTopology() {
	resp, err := c.http.Get(c.cfg.TopologyURL)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var infos []NodeInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&infos); err != nil {
		return
	}
	nodes := make([]string, 0, len(infos))
	for _, ni := range infos {
		if ni.URL != "" {
			nodes = append(nodes, ni.URL)
		}
	}
	if len(nodes) == 0 {
		return
	}
	c.SetNodes(nodes)
	c.refreshes.Add(1)
}

// kickRefresh requests an immediate topology poll (non-blocking: a
// pending kick is as good as two).
func (c *Client) kickRefresh() {
	if c.refreshC == nil {
		return
	}
	select {
	case c.refreshC <- struct{}{}:
	default:
	}
}

// SetNodes replaces the node table (the join/leave hook).
func (c *Client) SetNodes(nodes []string) {
	want := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		want[n] = true
		c.ring.Add(n)
	}
	for _, n := range c.ring.Nodes() {
		if !want[n] {
			c.ring.Remove(n)
		}
	}
}

// Nodes returns the current node table.
func (c *Client) Nodes() []string { return c.ring.Nodes() }

// Stats samples the client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Requests:          c.requests.Load(),
		Failovers:         c.failovers.Load(),
		Hedges:            c.hedges.Load(),
		HedgeWins:         c.hedgeWins.Load(),
		Retries429:        c.retries429.Load(),
		Errors:            c.errorsCt.Load(),
		TopologyRefreshes: c.refreshes.Load(),
		BinaryRequests:    c.binaryReqs.Load(),
		JSONFallbacks:     c.jsonFalls.Load(),
	}
}

// markDown records a node failure; the node is skipped in routing until
// the cooldown passes (it stays a last-resort candidate).
func (c *Client) markDown(node string) {
	c.healthMu.Lock()
	c.downTil[node] = time.Now().Add(c.cfg.DownCooldown)
	c.healthMu.Unlock()
}

// markUp clears a node's down state after a success.
func (c *Client) markUp(node string) {
	c.healthMu.Lock()
	delete(c.downTil, node)
	c.healthMu.Unlock()
}

// candidates returns the failover sequence for key: the owner and its
// successors, healthy nodes first, cooling-down nodes demoted to the
// tail rather than dropped (when everything is marked down, trying is
// still better than failing).
func (c *Client) candidates(key uint64) []string {
	seq := c.ring.Sequence(key, c.cfg.MaxAttempts)
	now := time.Now()
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	healthy := make([]string, 0, len(seq))
	var cooling []string
	for _, n := range seq {
		if til, ok := c.downTil[n]; ok && now.Before(til) {
			cooling = append(cooling, n)
		} else {
			healthy = append(healthy, n)
		}
	}
	return append(healthy, cooling...)
}

// payload is one request in both wire forms. The JSON body is always
// present; the binary body (plus the query string that carries what
// JSON carries inline) exists only when the client could parse every
// program locally, and an attempt falls back to the JSON form when the
// node is remembered as JSON-only or answers 415.
type payload struct {
	json   []byte
	binary []byte // nil: JSON only
	query  string // "?machine=...&algorithm=..." for the binary form
}

// machine memoizes target.Parse per spec.
func (c *Client) machine(spec string) (*target.Machine, error) {
	c.machMu.Lock()
	defer c.machMu.Unlock()
	if m, ok := c.machCache[spec]; ok {
		return m, nil
	}
	m, err := target.Parse(spec)
	if err != nil {
		return nil, err
	}
	c.machCache[spec] = m
	return m, nil
}

// encodeBinary builds the application/x-lsra-ir form of a request:
// concatenated irbin frames plus the query parameters the binary arm
// of POST /allocate reads instead of a JSON envelope. Any parse
// failure returns nil — the server's text parser is the authority on
// malformed programs, so such requests travel as JSON and get the
// server's error verbatim.
func (c *Client) encodeBinary(req *serve.AllocateRequest, texts []string) ([]byte, string) {
	mach, err := c.machine(req.Machine)
	if err != nil {
		return nil, ""
	}
	var body []byte
	for _, text := range texts {
		prog, err := ir.ParseProgramString(text, mach)
		if err != nil {
			return nil, ""
		}
		body = irbin.AppendProgram(body, prog)
	}
	q := url.Values{}
	q.Set("machine", req.Machine)
	if req.Algorithm != "" {
		q.Set("algorithm", req.Algorithm)
	}
	if req.Priority != "" {
		q.Set("priority", req.Priority)
	}
	return body, "?" + q.Encode()
}

// Allocate routes one request to its owning node, failing over to ring
// successors on node failure and hedging per ClientConfig. It returns
// the decoded response and the node that served it. Unless
// DisableBinary is set, programs the client can parse locally are
// posted in the binary wire form (application/x-lsra-ir), skipping the
// server's text parser; a node that answers 415 — an older build
// without the binary arm — is remembered as JSON-only and the attempt
// repeats as JSON immediately.
func (c *Client) Allocate(ctx context.Context, req serve.AllocateRequest) (*serve.AllocateResponse, string, error) {
	c.requests.Add(1)
	texts := req.Programs
	if req.Program != "" {
		texts = []string{req.Program}
	}
	var p payload
	var err error
	p.json, err = json.Marshal(&req)
	if err != nil {
		return nil, "", err
	}
	if !c.cfg.DisableBinary {
		p.binary, p.query = c.encodeBinary(&req, texts)
	}
	seq := c.candidates(RouteKey(req.Machine, req.Algorithm, texts))
	if len(seq) == 0 {
		c.errorsCt.Add(1)
		return nil, "", fmt.Errorf("cluster: no nodes")
	}
	resp, node, err := c.race(ctx, seq, p)
	if err != nil {
		c.errorsCt.Add(1)
		return nil, "", err
	}
	return resp, node, nil
}

// attemptResult is one node attempt's outcome.
type attemptResult struct {
	idx    int
	hedged bool
	resp   *serve.AllocateResponse
	err    error
}

// race runs the staggered-failover protocol over the candidate
// sequence: the owner is tried immediately; a failure starts the next
// candidate at once (failover); with hedging enabled, a candidate that
// is merely slow gets company after HedgeDelay. The first success wins
// and cancels the rest.
func (c *Client) race(ctx context.Context, seq []string, p payload) (*serve.AllocateResponse, string, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptResult, len(seq))
	next, inflight := 0, 0
	launch := func(hedged bool) {
		idx := next
		next++
		inflight++
		go func() {
			resp, err := c.attempt(ctx, seq[idx], p)
			results <- attemptResult{idx: idx, hedged: hedged, resp: resp, err: err}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if c.cfg.HedgeDelay > 0 && next < len(seq) {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for {
		select {
		case res := <-results:
			inflight--
			if res.err == nil {
				if res.hedged {
					c.hedgeWins.Add(1)
				}
				if res.idx == 0 {
					// The ring owner answered: routing is healthy, so the
					// consecutive-failover streak ends here.
					c.consecFails.Store(0)
				}
				c.markUp(seq[res.idx])
				return res.resp, seq[res.idx], nil
			}
			lastErr = fmt.Errorf("node %s: %w", seq[res.idx], res.err)
			if ctx.Err() != nil {
				return nil, "", lastErr
			}
			c.markDown(seq[res.idx])
			if next < len(seq) {
				c.failovers.Add(1)
				// A streak of failovers with no owner success means the
				// node table no longer matches the cluster: pull a fresh
				// topology instead of burning attempts on ghosts.
				if n := c.consecFails.Add(1); c.cfg.FailoverRefresh > 0 && n >= uint64(c.cfg.FailoverRefresh) {
					c.consecFails.Store(0)
					c.kickRefresh()
				}
				launch(false)
			} else if inflight == 0 {
				return nil, "", lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(seq) {
				c.hedges.Add(1)
				launch(true)
			}
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
}

// nodeJSONOnly reports whether a node has been demoted to the JSON
// wire form by an earlier 415.
func (c *Client) nodeJSONOnly(node string) bool {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	return c.jsonOnly[node]
}

// markJSONOnly remembers, for the client's lifetime, that a node does
// not speak the binary wire form.
func (c *Client) markJSONOnly(node string) {
	c.healthMu.Lock()
	c.jsonOnly[node] = true
	c.healthMu.Unlock()
}

// attempt posts the request to one node, honoring 429 + Retry-After
// with bounded backoff: the server's explicit please-wait is respected
// (capped at MaxRetryAfter) up to Max429Retries times before the
// attempt counts as failed. When the payload carries a binary form and
// the node is not known to be JSON-only, the binary form goes first; a
// 415 demotes the node and re-sends the same request as JSON without
// consuming a 429 retry.
func (c *Client) attempt(ctx context.Context, node string, p payload) (*serve.AllocateResponse, error) {
	useBinary := p.binary != nil && !c.nodeJSONOnly(node)
	retries := 0
	for {
		body, endpoint, ctype := p.json, node+"/allocate", "application/json"
		if useBinary {
			body, endpoint, ctype = p.binary, node+"/allocate"+p.query, serve.ContentTypeBinaryIR
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", ctype)
		if useBinary {
			c.binaryReqs.Add(1)
		}
		resp, err := c.http.Do(hreq)
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var out serve.AllocateResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				return nil, fmt.Errorf("bad response body: %w", err)
			}
			return &out, nil
		case resp.StatusCode == http.StatusUnsupportedMediaType && useBinary:
			// An older node without the binary arm. Remember that and
			// repeat this attempt as JSON — the request itself is fine.
			c.jsonFalls.Add(1)
			c.markJSONOnly(node)
			useBinary = false
			continue
		case resp.StatusCode == http.StatusTooManyRequests && retries < c.cfg.Max429Retries:
			retries++
			c.retries429.Add(1)
			if err := sleepCtx(ctx, retryAfter(resp, c.cfg.MaxRetryAfter)); err != nil {
				return nil, err
			}
			continue
		default:
			var e serve.ErrorResponse
			if json.Unmarshal(raw, &e) == nil && e.Error != "" {
				return nil, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
			}
			return nil, fmt.Errorf("status %d", resp.StatusCode)
		}
	}
}

// retryAfter reads a 429's Retry-After seconds, bounded by limit (which
// is also the fallback when the header is missing or unparsable).
func retryAfter(resp *http.Response, limit time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			d := time.Duration(secs) * time.Second
			if d > limit {
				return limit
			}
			return d
		}
	}
	return limit
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
