package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/target"
)

const testMachine = "tiny:6,4"

// testJobs builds a deterministic workload in wire form.
func testJobs(t *testing.T, n int) []experiments.LoadJob {
	t.Helper()
	mach, err := target.Parse(testMachine)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := experiments.Workload(mach, []string{"default"}, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// startCluster joins n identically configured nodes.
func startCluster(t *testing.T, n int, node NodeConfig) *Cluster {
	t.Helper()
	c := NewCluster(Options{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	for i := 0; i < n; i++ {
		cfg := node
		cfg.Name = "node-" + strconv.Itoa(i)
		if _, err := c.Join(cfg); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// mirrorRing rebuilds the routing ring a client would hold, so tests
// can predict owners and failover order.
func mirrorRing(urls []string) *Ring {
	r := NewRing(0)
	for _, u := range urls {
		r.Add(u)
	}
	return r
}

func jobKey(j experiments.LoadJob) uint64 {
	return RouteKey(testMachine, "", []string{j.Text})
}

func allocJob(t *testing.T, cl *Client, j experiments.LoadJob) (*serve.AllocateResponse, string) {
	t.Helper()
	resp, node, err := cl.Allocate(context.Background(), serve.AllocateRequest{Machine: testMachine, Program: j.Text})
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("%d results, want 1", len(resp.Results))
	}
	return resp, node
}

// TestClusterFailoverZeroLoss kills one of three nodes mid-stream and
// requires every request to complete via failover — the acceptance
// criterion for node loss.
func TestClusterFailoverZeroLoss(t *testing.T) {
	c := startCluster(t, 3, NodeConfig{})
	cl := c.Client(ClientConfig{MaxAttempts: 3, DownCooldown: 200 * time.Millisecond})

	jobs := testJobs(t, 48)
	// Warm pass so the kill hits a cluster under steady state.
	for _, j := range jobs[:6] {
		allocJob(t, cl, j)
	}

	victim := c.Node("node-1")
	if victim == nil {
		t.Fatal("no node-1")
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	const workers = 6
	feed := make(chan experiments.LoadJob)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range feed {
				_, _, err := cl.Allocate(context.Background(), serve.AllocateRequest{Machine: testMachine, Program: j.Text})
				if err != nil {
					errs <- err
				}
			}
		}()
	}
	killed := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond) // mid-stream, not before it
		c.Kill("node-1")
		close(killed)
	}()
	for _, j := range jobs {
		feed <- j
	}
	close(feed)
	wg.Wait()
	<-killed
	close(errs)
	for err := range errs {
		t.Errorf("request lost: %v", err)
	}
	if st := cl.Stats(); st.Failovers == 0 {
		t.Log("note: no failovers recorded (victim owned none of the stream)")
	}
}

// TestClusterReplicationWarmFailover checks that a hot entry replicated
// to the ring successor still hits warm after its owner dies.
func TestClusterReplicationWarmFailover(t *testing.T) {
	c := startCluster(t, 3, NodeConfig{})
	cl := c.Client(ClientConfig{MaxAttempts: 3, DownCooldown: 100 * time.Millisecond})
	ring := mirrorRing(c.URLs())

	// Find a job whose first failover target is also its owner's
	// replication successor — that is the pair replication protects.
	jobs := testJobs(t, 64)
	var job *experiments.LoadJob
	for i := range jobs {
		seq := ring.Sequence(jobKey(jobs[i]), 2)
		if len(seq) == 2 && ring.Successor(seq[0]) == seq[1] {
			job = &jobs[i]
			break
		}
	}
	if job == nil {
		t.Fatal("no job routed owner→successor in 64 seeds; vnode layout changed?")
	}
	seq := ring.Sequence(jobKey(*job), 2)

	// Populate the owner's cache, then replicate hot entries forward.
	if _, node := allocJob(t, cl, *job); node != seq[0] {
		t.Fatalf("served by %s, want owner %s", node, seq[0])
	}
	if n, err := c.Replicate(); err != nil {
		t.Fatalf("replicate: %v", err)
	} else if n == 0 {
		t.Fatal("replication moved zero entries")
	}

	// Kill the owner; the retry must land on the successor and hit warm.
	var victimName string
	for _, info := range c.Topology() {
		if info.URL == seq[0] {
			victimName = info.Name
		}
	}
	c.Kill(victimName)
	resp, node := allocJob(t, cl, *job)
	if node != seq[1] {
		t.Fatalf("failover served by %s, want successor %s", node, seq[1])
	}
	if !resp.Results[0].Cached {
		t.Error("failover request missed the replicated cache entry (cold)")
	}
}

// TestClusterJoinLeaveStableRouting checks consistent hashing end to
// end: a join moves keys only onto the joiner, and a leave restores the
// original owners.
func TestClusterJoinLeaveStableRouting(t *testing.T) {
	c := startCluster(t, 2, NodeConfig{})
	cl := c.Client(ClientConfig{MaxAttempts: 2})

	jobs := testJobs(t, 10)
	before := make([]string, len(jobs))
	for i, j := range jobs {
		_, before[i] = allocJob(t, cl, j)
	}

	joiner, err := c.Join(NodeConfig{Name: "node-2"})
	if err != nil {
		t.Fatal(err)
	}
	cl.SetNodes(c.URLs())
	for i, j := range jobs {
		_, node := allocJob(t, cl, j)
		if node != before[i] && node != joiner.URL {
			t.Errorf("job %d moved %s → %s, not to the joiner %s", i, before[i], node, joiner.URL)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Leave(ctx, "node-2"); err != nil {
		t.Fatal(err)
	}
	cl.SetNodes(c.URLs())
	for i, j := range jobs {
		if _, node := allocJob(t, cl, j); node != before[i] {
			t.Errorf("job %d owner after join+leave = %s, want original %s", i, node, before[i])
		}
	}
}

// TestClusterJoinWarmsFromSuccessor checks that a joining node inherits
// hot entries, so keys that move to it can hit warm immediately.
func TestClusterJoinWarmsFromSuccessor(t *testing.T) {
	c := startCluster(t, 1, NodeConfig{})
	cl := c.Client(ClientConfig{})
	jobs := testJobs(t, 8)
	for _, j := range jobs {
		allocJob(t, cl, j)
	}

	joiner, err := c.Join(NodeConfig{Name: "node-1"})
	if err != nil {
		t.Fatal(err)
	}
	cl.SetNodes(c.URLs())
	ring := mirrorRing(c.URLs())
	warmed := false
	for _, j := range jobs {
		if ring.Owner(jobKey(j)) != joiner.URL {
			continue
		}
		resp, node := allocJob(t, cl, j)
		if node != joiner.URL {
			t.Fatalf("served by %s, want joiner", node)
		}
		if resp.Results[0].Cached {
			warmed = true
		}
	}
	if !warmed {
		t.Error("no key that moved to the joiner hit its warmed cache")
	}
}

// TestClusterHedgedRequests parks one node behind injected latency and
// checks that a hedged request wins from the successor instead of
// waiting out the slow owner.
func TestClusterHedgedRequests(t *testing.T) {
	const stall = 400 * time.Millisecond
	c := NewCluster(Options{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	slow, err := c.Join(NodeConfig{Name: "slow", Middleware: func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/allocate" {
				time.Sleep(stall)
			}
			next.ServeHTTP(w, r)
		})
	}})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := c.Join(NodeConfig{Name: "fast"})
	if err != nil {
		t.Fatal(err)
	}

	cl := c.Client(ClientConfig{MaxAttempts: 2, HedgeDelay: 20 * time.Millisecond})
	ring := mirrorRing(c.URLs())
	jobs := testJobs(t, 64)
	var job *experiments.LoadJob
	for i := range jobs {
		if ring.Owner(jobKey(jobs[i])) == slow.URL {
			job = &jobs[i]
			break
		}
	}
	if job == nil {
		t.Fatal("no job owned by the slow node in 64 seeds")
	}

	_, node := allocJob(t, cl, *job)
	if node != fast.URL {
		t.Fatalf("served by %s, want the hedged fast node %s", node, fast.URL)
	}
	st := cl.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Errorf("stats = %+v, want at least one hedge and one hedge win", st)
	}
}

// Test429RetryAfterHonored checks the bounded-backoff contract: the
// client sleeps per Retry-After (capped) and re-sends instead of
// failing, up to the retry budget.
func Test429RetryAfterHonored(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "busy"})
			return
		}
		_ = json.NewEncoder(w).Encode(serve.AllocateResponse{Results: []serve.AllocatedProgram{{}}})
	}))
	t.Cleanup(ts.Close)

	cl := NewClient(ClientConfig{
		Nodes:         []string{ts.URL},
		Max429Retries: 2,
		MaxRetryAfter: 60 * time.Millisecond, // cap the 1s header
	})
	start := time.Now()
	_, _, err := cl.Allocate(context.Background(), serve.AllocateRequest{Machine: testMachine, Program: "x"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("allocate failed despite retry budget: %v", err)
	}
	if st := cl.Stats(); st.Retries429 != 2 {
		t.Errorf("Retries429 = %d, want 2", st.Retries429)
	}
	if elapsed < 100*time.Millisecond {
		t.Errorf("elapsed %v: backoff not honored (want >= 2 × 60ms cap, minus scheduling slop)", elapsed)
	}
	if elapsed > 1500*time.Millisecond {
		t.Errorf("elapsed %v: Retry-After cap not applied (raw header was 1s × 2)", elapsed)
	}
}

// Test429BudgetExhausted checks that a node that never stops saying 429
// eventually counts as failed rather than retried forever.
func Test429BudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "busy"})
	}))
	t.Cleanup(ts.Close)
	cl := NewClient(ClientConfig{Nodes: []string{ts.URL}, Max429Retries: 1, MaxRetryAfter: time.Millisecond})
	if _, _, err := cl.Allocate(context.Background(), serve.AllocateRequest{Machine: testMachine, Program: "x"}); err == nil {
		t.Fatal("allocate succeeded against a permanently saturated node")
	}
	if st := cl.Stats(); st.Errors != 1 {
		t.Errorf("Errors = %d, want 1", st.Errors)
	}
}
