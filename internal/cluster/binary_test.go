package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestBinaryTransportRoundTrip drives the default (binary) wire form
// against live serve nodes and checks the answers are byte-identical
// to the JSON form on the same cluster — the two arms share the engine,
// so any drift is a codec bug. Concurrent clients keep the test
// meaningful under -race.
func TestBinaryTransportRoundTrip(t *testing.T) {
	c := startCluster(t, 2, NodeConfig{})
	bin := c.Client(ClientConfig{MaxAttempts: 2})
	txt := c.Client(ClientConfig{MaxAttempts: 2, DisableBinary: true})

	jobs := testJobs(t, 12)
	var wg sync.WaitGroup
	out := make([]string, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, text string) {
			defer wg.Done()
			resp, _, err := bin.Allocate(context.Background(), serve.AllocateRequest{Machine: testMachine, Program: text})
			if err != nil {
				t.Errorf("binary allocate %d: %v", i, err)
				return
			}
			if len(resp.Results) != 1 || resp.Results[0].Program == "" {
				t.Errorf("binary allocate %d: empty result", i)
				return
			}
			out[i] = resp.Results[0].Program
		}(i, j.Text)
	}
	wg.Wait()

	for i, j := range jobs {
		resp, _, err := txt.Allocate(context.Background(), serve.AllocateRequest{Machine: testMachine, Program: j.Text})
		if err != nil {
			t.Fatalf("json allocate %d: %v", i, err)
		}
		if got := resp.Results[0].Program; got != out[i] {
			t.Fatalf("program %d: binary and JSON wire forms disagree:\nbinary:\n%s\njson:\n%s", i, out[i], got)
		}
	}

	bs, ts := bin.Stats(), txt.Stats()
	if bs.BinaryRequests == 0 {
		t.Fatalf("binary client sent no binary requests: %+v", bs)
	}
	if bs.JSONFallbacks != 0 {
		t.Fatalf("binary client fell back against a binary-capable node: %+v", bs)
	}
	if ts.BinaryRequests != 0 {
		t.Fatalf("DisableBinary client sent binary requests: %+v", ts)
	}
}

// TestBinaryFallbackOn415 simulates an older node without the binary
// arm: the first binary post gets 415, the client demotes the node to
// JSON for its lifetime and repeats the same request as JSON, and
// later requests skip binary entirely.
func TestBinaryFallbackOn415(t *testing.T) {
	var mu sync.Mutex
	var binaryPosts, jsonPosts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if strings.HasPrefix(r.Header.Get("Content-Type"), serve.ContentTypeBinaryIR) {
			binaryPosts++
			w.WriteHeader(http.StatusUnsupportedMediaType)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "unsupported media type"})
			return
		}
		jsonPosts++
		var req serve.AllocateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(serve.AllocateResponse{
			Machine: req.Machine,
			Results: []serve.AllocatedProgram{{Program: "ok"}},
		})
	}))
	defer ts.Close()

	cl := NewClient(ClientConfig{Nodes: []string{ts.URL}, DownCooldown: time.Millisecond})
	job := testJobs(t, 1)[0]
	req := serve.AllocateRequest{Machine: testMachine, Program: job.Text}

	for i := 0; i < 3; i++ {
		resp, _, err := cl.Allocate(context.Background(), req)
		if err != nil {
			t.Fatalf("allocate %d: %v", i, err)
		}
		if resp.Results[0].Program != "ok" {
			t.Fatalf("allocate %d: unexpected result %q", i, resp.Results[0].Program)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if binaryPosts != 1 {
		t.Fatalf("%d binary posts, want exactly 1 (node demoted after the 415)", binaryPosts)
	}
	if jsonPosts != 3 {
		t.Fatalf("%d JSON posts, want 3", jsonPosts)
	}
	st := cl.Stats()
	if st.JSONFallbacks != 1 || st.BinaryRequests != 1 {
		t.Fatalf("stats: %+v, want 1 binary request and 1 fallback", st)
	}
	if st.Errors != 0 || st.Failovers != 0 {
		t.Fatalf("415 fallback must not count as node failure: %+v", st)
	}
}

// TestBinaryUnparsableFallsBackToJSON: a program the client cannot
// parse travels as JSON so the server's parser reports the error, and
// no binary request is attempted for it.
func TestBinaryUnparsableFallsBackToJSON(t *testing.T) {
	c := startCluster(t, 1, NodeConfig{})
	cl := c.Client(ClientConfig{})
	_, _, err := cl.Allocate(context.Background(), serve.AllocateRequest{Machine: testMachine, Program: "this is not a program"})
	if err == nil {
		t.Fatal("expected a server-side parse error")
	}
	if !strings.Contains(err.Error(), "status 400") {
		t.Fatalf("want the server's 400, got: %v", err)
	}
	if st := cl.Stats(); st.BinaryRequests != 0 {
		t.Fatalf("unparsable program was sent as binary: %+v", st)
	}
}
