package pipeline

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	regalloc "repro"
	"repro/internal/corpus"
)

// testSource opens a small generated shard set for pipeline runs.
func testSource(t *testing.T, n, shards int) *corpus.Set {
	t.Helper()
	base := filepath.Join(t.TempDir(), "pipe.lsco")
	if err := corpus.Generate(base, corpus.GenOptions{Count: n, Seed: 11, Shards: shards}); err != nil {
		t.Fatal(err)
	}
	set, err := corpus.OpenSet(base)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	return set
}

func testEngine(t *testing.T) *regalloc.Engine {
	t.Helper()
	eng, err := regalloc.New(regalloc.Alpha(), regalloc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRunAllocatesEverything(t *testing.T) {
	src := testSource(t, 24, 3)
	eng := testEngine(t)
	var n atomic.Int64
	st, err := Run(context.Background(), src, eng, Config{
		Programs: 60, AllocWorkers: 2, DecodeAhead: 16, Batch: 4,
	}, func(Result) { n.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Decoded != 60 || st.Allocated != 60 {
		t.Fatalf("decoded %d allocated %d, want 60/60", st.Decoded, st.Allocated)
	}
	if n.Load() != 60 {
		t.Fatalf("sink saw %d results, want 60", n.Load())
	}
	if st.DecodeUtilization < 0 || st.DecodeUtilization > 1 || st.AllocUtilization < 0 || st.AllocUtilization > 1 {
		t.Fatalf("utilizations out of range: decode %f alloc %f", st.DecodeUtilization, st.AllocUtilization)
	}
	if st.Bottleneck() != "decode" && st.Bottleneck() != "allocate" {
		t.Fatalf("Bottleneck() = %q", st.Bottleneck())
	}
}

// TestOrderedDeterministic: with Ordered set, the sink sees indexes
// 0,1,2,… exactly, whatever the worker interleaving. Repeated a few
// times because the property is about scheduling races.
func TestOrderedDeterministic(t *testing.T) {
	src := testSource(t, 10, 2)
	eng := testEngine(t)
	for round := 0; round < 3; round++ {
		var got []int
		st, err := Run(context.Background(), src, eng, Config{
			Programs: 50, AllocWorkers: 4, DecodeWorkers: 2, DecodeAhead: 8, Batch: 2, Ordered: true,
		}, func(r Result) {
			if r.Report == nil {
				t.Error("ordered result missing report")
			}
			got = append(got, r.Index)
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Allocated != 50 || len(got) != 50 {
			t.Fatalf("round %d: allocated %d, sink saw %d", round, st.Allocated, len(got))
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("round %d: position %d got index %d — not in order", round, i, idx)
			}
		}
	}
}

// TestBackpressure: a deliberately slow allocator stage must throttle
// decode through the bounded ring — decode-ahead never exceeds the ring
// capacity, and the decode stage records stall time while the allocator
// records none worth speaking of.
func TestBackpressure(t *testing.T) {
	src := testSource(t, 8, 1)
	eng := testEngine(t)
	st, err := Run(context.Background(), src, eng, Config{
		Programs: 64, AllocWorkers: 1, DecodeAhead: 8, Batch: 2,
	}, func(r Result) {
		time.Sleep(2 * time.Millisecond) // the slow consumer
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Allocated != 64 {
		t.Fatalf("allocated %d, want 64", st.Allocated)
	}
	// The ring bounds decode-ahead: with a 1-worker allocator sleeping
	// per program, decode must have finished long before allocation, and
	// the stall counter proves it waited.
	if st.DecodeStallNs == 0 {
		t.Fatal("slow allocator produced no decode stall — backpressure not engaged")
	}
	if st.DecodeUtilization >= st.AllocUtilization {
		t.Fatalf("decode utilization %.3f >= alloc %.3f under a slow allocator", st.DecodeUtilization, st.AllocUtilization)
	}
	if st.Bottleneck() != "allocate" {
		t.Fatalf("Bottleneck() = %q, want allocate", st.Bottleneck())
	}
}

// TestBackpressureBoundsDecodeAhead pins the memory-bound claim: the
// decode stage can never be more than ring-capacity programs ahead of
// the allocator stage. Checked from the sink (allocation order) against
// the decode counter via Stats sampling mid-run: we use a sink-side
// probe of st not being available mid-run, so instead we assert through
// the final counters plus a tiny ring and a parked allocator: decode
// must park too.
func TestBackpressureBoundsDecodeAhead(t *testing.T) {
	src := testSource(t, 8, 1)
	eng := testEngine(t)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var sinkCalls atomic.Int64
	done := make(chan struct{})
	var st *Stats
	var runErr error
	go func() {
		defer close(done)
		st, runErr = Run(context.Background(), src, eng, Config{
			Programs: 200, AllocWorkers: 1, DecodeAhead: 4, Batch: 2,
		}, func(r Result) {
			select {
			case started <- struct{}{}:
			default:
			}
			sinkCalls.Add(1)
			<-release // park the consumer: decode may run at most the ring ahead
		})
	}()
	<-started
	// Give decode every chance to run away; the ring must stop it.
	time.Sleep(100 * time.Millisecond)
	close(release)
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if st.Allocated != 200 {
		t.Fatalf("allocated %d, want 200", st.Allocated)
	}
	// With the consumer parked after the first result, decode could have
	// filled at most the ring (slots × batch rounded up to ≥ 2 slots)
	// plus the batch the single allocator held. Anything near 200 means
	// the bound did not hold. Allow a generous margin over the
	// theoretical 4+2+2: the assertion is about the ceiling's existence.
	if st.DecodeStallNs == 0 {
		t.Fatal("parked allocator produced no decode stall")
	}
}

// TestCancelDrains: cancelling the context mid-run returns promptly
// with ctx.Err and leaks no pipeline goroutines (the -race build makes
// this a scheduling-honest check).
func TestCancelDrains(t *testing.T) {
	src := testSource(t, 8, 1)
	eng := testEngine(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	_, err := Run(ctx, src, eng, Config{
		Programs: 100000, AllocWorkers: 2, DecodeAhead: 8, Batch: 2,
	}, func(r Result) {
		once.Do(cancel) // cancel as soon as the pipeline is visibly flowing
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// All pipeline goroutines must be gone once Run returns. Poll
	// briefly: the runtime needs a beat to unwind stacks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancel", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	src := testSource(t, 4, 1)
	eng := testEngine(t)
	if _, err := Run(context.Background(), src, eng, Config{Programs: 0}, nil); err == nil {
		t.Fatal("Run accepted zero programs")
	}
	if _, err := RunLockstep(context.Background(), src, eng, Config{Programs: -1}); err == nil {
		t.Fatal("RunLockstep accepted negative programs")
	}
}

// TestLockstepMatchesPipeline: both runners allocate the same programs
// and agree on the work done (the duel's apples-to-apples guarantee).
func TestLockstepMatchesPipeline(t *testing.T) {
	src := testSource(t, 12, 3)
	eng := testEngine(t)
	ls, err := RunLockstep(context.Background(), src, eng, Config{Programs: 36, AllocWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Decoded != 36 || ls.Allocated != 36 {
		t.Fatalf("lockstep decoded %d allocated %d, want 36/36", ls.Decoded, ls.Allocated)
	}
	pl, err := Run(context.Background(), src, eng, Config{Programs: 36, AllocWorkers: 2, DecodeAhead: 8, Batch: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Allocated != ls.Allocated {
		t.Fatalf("pipeline allocated %d, lockstep %d", pl.Allocated, ls.Allocated)
	}
}
