// Package pipeline overlaps binary-IR decode with register allocation:
// the decode-ahead stage of the corpus throughput ladder. The lockstep
// loop of the original ladder alternates decode and allocation in one
// goroutine, so each phase idles while the other runs and the two
// working sets evict each other; here decode workers run ahead of the
// allocator workers through a bounded ring of reusable slots:
//
//	source ─▶ decode workers ─▶ [filled ring] ─▶ allocator workers ─▶ sink
//	             ▲                                      │
//	             └───────────── [free ring] ◀───────────┘
//
// A slot owns a batch of decode arenas, so the per-program channel cost
// is amortized across the batch and the steady state allocates nothing.
// The slot count bounds decode-ahead: when allocators fall behind, the
// free ring empties and decode workers block — backpressure, measured.
// Every stage records busy and stall nanoseconds, so a run proves which
// side saturates instead of leaving it to folklore: with the free ring
// always empty the bottleneck is allocation; with the filled ring
// always empty it is decode.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	regalloc "repro"
	"repro/internal/ir"
	"repro/internal/irbin"
)

// Source is a random-access frame store: corpus.Reader and corpus.Set
// both satisfy it. Frame(i) must be valid for concurrent calls.
type Source interface {
	Count() int
	Frame(i int) []byte
}

// Config tunes one Run.
type Config struct {
	// Programs is the total number of decodes (cycling the source when
	// larger than Source.Count). Required.
	Programs int
	// DecodeWorkers is the decode-stage parallelism (0 = 1; decode is
	// rarely the bottleneck, and one worker keeps ahead of several
	// allocators).
	DecodeWorkers int
	// AllocWorkers is the allocation-stage parallelism (0 = GOMAXPROCS).
	AllocWorkers int
	// DecodeAhead bounds the decoded programs in flight — ring slots ×
	// batch (0 = 2×Batch per allocator worker). Bigger absorbs longer
	// allocation stalls; memory — and GC scan work — grows with it (one
	// warm decode arena per in-flight program), which is why the default
	// scales with the consumers rather than being a flat high-water mark.
	DecodeAhead int
	// Batch is the programs per ring slot (0 = 64). Channel operations
	// are paid once per slot, not per program.
	Batch int
	// Ordered delivers results to the sink in global index order (a
	// reorder buffer on the result side); unordered sinks are called
	// concurrently from allocator workers as slots complete.
	Ordered bool
}

// Result is one allocated program's outcome, delivered to the sink.
type Result struct {
	// Index is the global pipeline index (0 ≤ Index < Config.Programs);
	// the decoded source program was Index mod Source.Count().
	Index int
	// Report is the engine's allocation report for the program.
	Report *regalloc.Report
}

// Stats is one Run's measurement. The stall/busy splits attribute the
// wall time: a stage's stall is time spent blocked on its input ring.
type Stats struct {
	Programs      int   `json:"programs"`
	DecodeWorkers int   `json:"decode_workers"`
	AllocWorkers  int   `json:"alloc_workers"`
	DecodeAhead   int   `json:"decode_ahead"`
	Batch         int   `json:"batch"`
	WallNs        int64 `json:"wall_ns"`
	// Decoded and Allocated count programs through each stage (equal
	// after a clean run; they diverge on error or cancellation).
	Decoded   uint64 `json:"decoded"`
	Allocated uint64 `json:"allocated"`
	// DecodeBusyNs is cumulative decode time across decode workers;
	// DecodeStallNs cumulative time those workers spent waiting for a
	// free slot (allocators behind — backpressure). AllocBusyNs and
	// AllocStallNs are the allocator-side mirror: stall is waiting for
	// a filled slot (decode behind).
	DecodeBusyNs  int64 `json:"decode_busy_ns"`
	DecodeStallNs int64 `json:"decode_stall_ns"`
	AllocBusyNs   int64 `json:"alloc_busy_ns"`
	AllocStallNs  int64 `json:"alloc_stall_ns"`
	// DecodeUtilization and AllocUtilization are busy/(busy+stall) per
	// stage: the saturation proof. ≈1 for the bottleneck stage, low for
	// the stage that waits.
	DecodeUtilization float64 `json:"decode_utilization"`
	AllocUtilization  float64 `json:"alloc_utilization"`
	// AvgRingOccupancy is the mean filled-ring depth observed at each
	// allocator receive, in slots: near capacity means decode runs
	// comfortably ahead, near zero means allocators are starved.
	AvgRingOccupancy float64 `json:"avg_ring_occupancy"`
	ProgramsPerSec   float64 `json:"programs_per_sec"`
}

// Bottleneck names the saturated stage: the one with the higher
// utilization.
func (s *Stats) Bottleneck() string {
	if s.DecodeUtilization > s.AllocUtilization {
		return "decode"
	}
	return "allocate"
}

// warmFrame picks the largest of the source's first frames: decoding
// it grows an arena to (near) its high-water capacity in one step, the
// pre-timer warmup both runners use. Decode errors during warmup are
// ignored — the real decode loop reports them with an index attached.
func warmFrame(src Source) []byte {
	n := min(src.Count(), 256)
	best := src.Frame(0)
	for i := 1; i < n; i++ {
		if f := src.Frame(i); len(f) > len(best) {
			best = f
		}
	}
	return best
}

// slot is one ring entry: a batch of decoded programs, each pinned in
// its own arena so the batch survives until the allocator stage is
// done with it. Slots cycle free → filled → free; arenas keep their
// high-water capacity, so a warmed ring decodes without allocating.
type slot struct {
	arenas  []*irbin.Arena
	progs   []*ir.Program
	indexes []int
	n       int // programs in this batch
}

// Run streams cfg.Programs decodes from src through the decode-ahead
// ring into eng, calling sink (when non-nil) once per program. It
// returns when every program is through, the context is cancelled, or
// a stage fails; in every case all pipeline goroutines have exited by
// the time Run returns.
func Run(ctx context.Context, src Source, eng *regalloc.Engine, cfg Config, sink func(Result)) (*Stats, error) {
	if src.Count() == 0 {
		return nil, errors.New("pipeline: empty source")
	}
	if cfg.Programs <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive program count %d", cfg.Programs)
	}
	if cfg.DecodeWorkers <= 0 {
		cfg.DecodeWorkers = 1
	}
	if cfg.AllocWorkers <= 0 {
		cfg.AllocWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.DecodeAhead <= 0 {
		cfg.DecodeAhead = 2 * cfg.Batch * cfg.AllocWorkers
	}
	if cfg.Batch > cfg.DecodeAhead {
		cfg.Batch = cfg.DecodeAhead
	}
	nslots := cfg.DecodeAhead / cfg.Batch
	if nslots < 2 {
		nslots = 2
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Both rings hold every slot, so sends never block: a decode worker
	// can only stall receiving from free, an allocator only receiving
	// from filled. That makes the stall counters exact attributions.
	// Every arena is warmed to near its steady-state footprint before
	// the clock starts, so the ring decodes without allocating from the
	// first slot instead of paying DecodeAhead cold growths mid-run.
	warm := warmFrame(src)
	free := make(chan *slot, nslots)
	filled := make(chan *slot, nslots)
	for i := 0; i < nslots; i++ {
		s := &slot{
			arenas:  make([]*irbin.Arena, cfg.Batch),
			progs:   make([]*ir.Program, cfg.Batch),
			indexes: make([]int, cfg.Batch),
		}
		for j := range s.arenas {
			s.arenas[j] = irbin.NewArena()
			s.arenas[j].Decode(warm)
		}
		free <- s
	}

	st := &Stats{
		Programs:      cfg.Programs,
		DecodeWorkers: cfg.DecodeWorkers,
		AllocWorkers:  cfg.AllocWorkers,
		DecodeAhead:   nslots * cfg.Batch,
		Batch:         cfg.Batch,
	}
	var (
		decoded, allocated           atomic.Uint64
		decodeBusy, decodeStall      atomic.Int64
		allocBusy, allocStall        atomic.Int64
		occupancySum, occupancyCount atomic.Int64
		nextBatch                    atomic.Int64
		runErr                       error
		errOnce                      sync.Once
	)
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
		cancel()
	}
	numBatches := (cfg.Programs + cfg.Batch - 1) / cfg.Batch

	// Settle the heap goal now that the ring is live: without this, the
	// warmup's allocations spend the headroom of whatever goal predated
	// the ring, and the collector's catch-up cycle lands inside the
	// measured region — charged to the pipeline instead of to setup.
	runtime.GC()
	start := time.Now()

	// Decode stage.
	var decodeWG sync.WaitGroup
	for w := 0; w < cfg.DecodeWorkers; w++ {
		decodeWG.Add(1)
		go func() {
			defer decodeWG.Done()
			for {
				b := int(nextBatch.Add(1) - 1)
				if b >= numBatches {
					return
				}
				t0 := time.Now()
				var s *slot
				select {
				case s = <-free:
				case <-ctx.Done():
					return
				}
				decodeStall.Add(time.Since(t0).Nanoseconds())
				t1 := time.Now()
				lo := b * cfg.Batch
				hi := min(lo+cfg.Batch, cfg.Programs)
				s.n = hi - lo
				for j := 0; j < s.n; j++ {
					idx := lo + j
					prog, _, err := s.arenas[j].Decode(src.Frame(idx % src.Count()))
					if err != nil {
						fail(fmt.Errorf("pipeline: decode program %d: %w", idx, err))
						return
					}
					s.progs[j] = prog
					s.indexes[j] = idx
				}
				decoded.Add(uint64(s.n))
				decodeBusy.Add(time.Since(t1).Nanoseconds())
				select {
				case filled <- s:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	// Close the filled ring once every decode worker is done, so
	// allocator workers drain the tail and exit.
	closerDone := make(chan struct{})
	go func() {
		defer close(closerDone)
		decodeWG.Wait()
		close(filled)
	}()

	// Result delivery. Unordered: sink runs on allocator workers.
	// Ordered: allocator workers ship completed batches to a collector
	// that releases them in batch (hence global-index) order.
	var deliver func(batchIdx int, results []Result)
	var collectorWG sync.WaitGroup
	type orderedBatch struct {
		idx     int
		results []Result
	}
	var orderedC chan orderedBatch
	if sink != nil && cfg.Ordered {
		orderedC = make(chan orderedBatch, nslots)
		collectorWG.Add(1)
		go func() {
			defer collectorWG.Done()
			pending := make(map[int][]Result)
			next := 0
			for ob := range orderedC {
				pending[ob.idx] = ob.results
				for rs, ok := pending[next]; ok; rs, ok = pending[next] {
					delete(pending, next)
					next++
					for _, r := range rs {
						sink(r)
					}
				}
			}
		}()
		deliver = func(batchIdx int, results []Result) {
			select {
			case orderedC <- orderedBatch{batchIdx, results}:
			case <-ctx.Done():
			}
		}
	} else if sink != nil {
		deliver = func(_ int, results []Result) {
			for _, r := range results {
				sink(r)
			}
		}
	}

	// Allocation stage.
	var allocWG sync.WaitGroup
	for w := 0; w < cfg.AllocWorkers; w++ {
		allocWG.Add(1)
		go func() {
			defer allocWG.Done()
			for {
				t0 := time.Now()
				var s *slot
				var ok bool
				select {
				case s, ok = <-filled:
				case <-ctx.Done():
					return
				}
				allocStall.Add(time.Since(t0).Nanoseconds())
				if !ok {
					return
				}
				occupancySum.Add(int64(len(filled)))
				occupancyCount.Add(1)
				t1 := time.Now()
				var results []Result
				if deliver != nil {
					results = make([]Result, 0, s.n)
				}
				batchIdx := s.indexes[0] / cfg.Batch
				failed := false
				for j := 0; j < s.n; j++ {
					_, rep, err := eng.AllocateProgram(ctx, s.progs[j])
					if err != nil {
						if ctx.Err() == nil {
							fail(fmt.Errorf("pipeline: allocate program %d: %w", s.indexes[j], err))
						}
						failed = true
						break
					}
					if deliver != nil {
						results = append(results, Result{Index: s.indexes[j], Report: rep})
					}
				}
				if !failed {
					allocated.Add(uint64(s.n))
				}
				allocBusy.Add(time.Since(t1).Nanoseconds())
				// Recycle before delivering: the reports do not alias the
				// arenas, and a waiting decode worker should not idle on
				// sink latency.
				select {
				case free <- s:
				case <-ctx.Done():
					return
				}
				if failed {
					return
				}
				if deliver != nil {
					deliver(batchIdx, results)
				}
			}
		}()
	}

	allocWG.Wait()
	<-closerDone
	if orderedC != nil {
		close(orderedC)
	}
	collectorWG.Wait()
	st.WallNs = time.Since(start).Nanoseconds()

	st.Decoded = decoded.Load()
	st.Allocated = allocated.Load()
	st.DecodeBusyNs = decodeBusy.Load()
	st.DecodeStallNs = decodeStall.Load()
	st.AllocBusyNs = allocBusy.Load()
	st.AllocStallNs = allocStall.Load()
	if d := st.DecodeBusyNs + st.DecodeStallNs; d > 0 {
		st.DecodeUtilization = float64(st.DecodeBusyNs) / float64(d)
	}
	if d := st.AllocBusyNs + st.AllocStallNs; d > 0 {
		st.AllocUtilization = float64(st.AllocBusyNs) / float64(d)
	}
	if n := occupancyCount.Load(); n > 0 {
		st.AvgRingOccupancy = float64(occupancySum.Load()) / float64(n)
	}
	if s := float64(st.WallNs) / 1e9; s > 0 {
		st.ProgramsPerSec = float64(st.Allocated) / s
	}

	if runErr != nil {
		return st, runErr
	}
	if err := ctx.Err(); err != nil {
		return st, err
	}
	return st, nil
}

// RunLockstep is the pre-pipeline ladder loop, kept as the duel
// baseline: AllocWorkers workers each decode and allocate alternately
// in one goroutine, one arena per worker, no ring between the phases.
// Identical input and engine as Run, so the two Stats are directly
// comparable (lockstep has no stalls — each worker's decode time is
// exactly its allocator's wait).
func RunLockstep(ctx context.Context, src Source, eng *regalloc.Engine, cfg Config) (*Stats, error) {
	if src.Count() == 0 {
		return nil, errors.New("pipeline: empty source")
	}
	if cfg.Programs <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive program count %d", cfg.Programs)
	}
	if cfg.AllocWorkers <= 0 {
		cfg.AllocWorkers = runtime.GOMAXPROCS(0)
	}
	st := &Stats{Programs: cfg.Programs, AllocWorkers: cfg.AllocWorkers}
	var (
		decoded, allocated    atomic.Uint64
		decodeBusy, allocBusy atomic.Int64
		runErr                error
		errOnce               sync.Once
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Same pre-timer arena warmup as Run, so the duel compares pipeline
	// structure, not who paid for arena growth.
	warm := warmFrame(src)
	arenas := make([]*irbin.Arena, cfg.AllocWorkers)
	for w := range arenas {
		arenas[w] = irbin.NewArena()
		arenas[w].Decode(warm)
	}
	// Same post-warmup heap-goal settling as Run.
	runtime.GC()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.AllocWorkers; w++ {
		lo := cfg.Programs * w / cfg.AllocWorkers
		hi := cfg.Programs * (w + 1) / cfg.AllocWorkers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			arena := arenas[w]
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				prog, _, err := arena.Decode(src.Frame(i % src.Count()))
				if err != nil {
					errOnce.Do(func() { runErr = fmt.Errorf("pipeline: decode program %d: %w", i, err) })
					cancel()
					return
				}
				decoded.Add(1)
				t1 := time.Now()
				decodeBusy.Add(t1.Sub(t0).Nanoseconds())
				if _, _, err := eng.AllocateProgram(ctx, prog); err != nil {
					if ctx.Err() == nil {
						errOnce.Do(func() { runErr = fmt.Errorf("pipeline: allocate program %d: %w", i, err) })
					}
					cancel()
					return
				}
				allocated.Add(1)
				allocBusy.Add(time.Since(t1).Nanoseconds())
			}
		}(w, lo, hi)
	}
	wg.Wait()
	st.WallNs = time.Since(start).Nanoseconds()
	st.Decoded = decoded.Load()
	st.Allocated = allocated.Load()
	st.DecodeBusyNs = decodeBusy.Load()
	st.AllocBusyNs = allocBusy.Load()
	// In lockstep each phase is "utilized" only while the other idles:
	// report each phase's share of worker time, the apples-to-apples
	// contrast with the pipelined utilizations.
	if d := st.DecodeBusyNs + st.AllocBusyNs; d > 0 {
		st.DecodeUtilization = float64(st.DecodeBusyNs) / float64(d)
		st.AllocUtilization = float64(st.AllocBusyNs) / float64(d)
	}
	if s := float64(st.WallNs) / 1e9; s > 0 {
		st.ProgramsPerSec = float64(st.Allocated) / s
	}
	if runErr != nil {
		return st, runErr
	}
	if err := ctx.Err(); err != nil {
		return st, err
	}
	return st, nil
}
