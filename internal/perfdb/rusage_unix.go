//go:build unix

package perfdb

import (
	"runtime"
	"syscall"
)

// readRusage fills the OS-accounting half of a Resources snapshot from
// getrusage(RUSAGE_SELF). ru_maxrss is kilobytes on Linux and most BSDs
// but bytes on Darwin.
func readRusage(r *Resources) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return
	}
	scale := int64(1024)
	if runtime.GOOS == "darwin" {
		scale = 1
	}
	r.MaxRSSBytes = int64(ru.Maxrss) * scale
	r.UserCPUNs = timevalNs(ru.Utime)
	r.SysCPUNs = timevalNs(ru.Stime)
}

func timevalNs(tv syscall.Timeval) int64 {
	return int64(tv.Sec)*1e9 + int64(tv.Usec)*1e3
}
