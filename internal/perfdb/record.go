// Package perfdb is the continuous performance observatory: an
// append-only, file-backed time-series store for benchmark runs, the
// series extraction that turns one `lsra-bench -all -json` document into
// named metric series, resource attribution (rusage + GC) for the bench
// driver, and the HTTP daemon (cmd/lsra-perfd) that ingests runs and
// renders the trajectory as a self-contained HTML dashboard.
//
// The repo's committed BENCH_*.json snapshots are point-in-time; perfdb
// gives them a time axis. One Record per bench invocation, keyed by
// commit SHA + UTC timestamp + host fingerprint, with every number the
// run produced flattened into named series (phase.scan.ns,
// alloc.fpppp.wall_ns, serve_cold_ns, rusage.max_rss_bytes, ...), so a
// slow regression spread across several PRs shows up as a trend, and
// changepoint flagging (internal/perfdb/stats, the same Mann-Whitney
// machinery as cmd/benchguard) marks where a regime shifted.
package perfdb

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// SchemaVersion is the current bench-record schema. Version 0 is the
// pre-observatory BENCH_*.json shape (no meta stamp); Open/Extract keep
// reading it via the fallback path so the committed history stays
// ingestible.
const SchemaVersion = 1

// Meta identifies one benchmark run: which commit, when, on what.
type Meta struct {
	SchemaVersion int `json:"schema_version"`
	// Commit is the git SHA the run measured (best-effort: empty when
	// the tree had no git available).
	Commit string `json:"commit,omitempty"`
	// Time is the run's UTC timestamp.
	Time time.Time `json:"time_utc"`
	// GoVersion is runtime.Version() of the bench binary.
	GoVersion string `json:"go_version,omitempty"`
	// Host is a coarse machine fingerprint (goos/goarch/hostname/ncpu):
	// enough to separate laptop runs from CI runners when reading a
	// trend, deliberately not enough to deanonymize anything.
	Host string `json:"host,omitempty"`
}

// Stamp returns the Meta for a run happening now on this process.
func Stamp(commit string) *Meta {
	host, _ := os.Hostname()
	return &Meta{
		SchemaVersion: SchemaVersion,
		Commit:        commit,
		Time:          time.Now().UTC().Truncate(time.Second),
		GoVersion:     runtime.Version(),
		Host:          fmt.Sprintf("%s/%s/%s/%dcpu", runtime.GOOS, runtime.GOARCH, host, runtime.NumCPU()),
	}
}

// Record is one stored observation: a run's identity plus every metric
// it produced as a flat map of named series.
type Record struct {
	Meta
	// Source names where the record came from: the ingested file's base
	// name for backfills, "ingest" for live POSTs.
	Source string `json:"source,omitempty"`
	// Series maps metric name to value. Names are dot-paths grouping
	// related metrics (phase.scan.ns, alloc.fpppp.wall_ns,
	// quality.eqntott.instr_ratio); the serve headline metrics keep
	// their historical flat names (serve_cold_ns, serve_warm_ns).
	Series map[string]float64 `json:"series"`
}

// Key is the record's dedup identity: ingesting the same run twice
// (every CI run re-backfills the committed BENCH_*.json seeds) must not
// duplicate points.
func (r *Record) Key() string {
	return fmt.Sprintf("%s|%d|%s|%s", r.Commit, r.Time.UnixNano(), r.Host, r.Source)
}

// Point is one (time, value) observation of one metric, carrying enough
// identity to act on: the commit that produced it and the record source.
type Point struct {
	Time   time.Time `json:"time_utc"`
	Commit string    `json:"commit,omitempty"`
	Source string    `json:"source,omitempty"`
	Value  float64   `json:"value"`
}
