package perfdb

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// Store is the append-only, file-backed time-series store: one JSON
// record per line (JSONL). Append-only is the whole durability story —
// a crash mid-write can only ever damage the final line, so Open repairs
// exactly that case (truncating a partial tail record) and refuses
// anything worse. Records arrive in whatever order CI, backfills and
// laptops produce them; queries sort by run timestamp, so out-of-order
// ingest is normal, not an error.
type Store struct {
	mu   sync.Mutex
	path string
	recs []Record
	keys map[string]bool
}

// Open loads (or creates) the store at path. A truncated tail record —
// the one failure mode an append-only log can self-inflict — is cut off
// and reported via the returned repair count; corruption followed by
// further valid records means something other than a torn append wrote
// the file, and that is an error, not something to silently eat.
func Open(path string) (*Store, int, error) {
	s := &Store{path: path, keys: map[string]bool{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	offset := 0 // byte offset of the first undamaged-so-far line
	corruptAt := -1
	for _, line := range bytes.Split(data, []byte("\n")) {
		lineLen := len(line) + 1 // the split consumed the newline
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			offset += lineLen
			continue
		}
		var rec Record
		if err := json.Unmarshal(trimmed, &rec); err != nil {
			if corruptAt < 0 {
				corruptAt = offset
			}
			offset += lineLen
			continue
		}
		if corruptAt >= 0 {
			return nil, 0, fmt.Errorf("perfdb: %s: corrupt record at byte %d followed by valid data (not a torn tail; refusing to repair)", path, corruptAt)
		}
		s.insert(rec)
		offset += lineLen
	}
	repaired := 0
	if corruptAt >= 0 {
		if err := os.Truncate(path, int64(corruptAt)); err != nil {
			return nil, 0, fmt.Errorf("perfdb: %s: truncating torn tail at byte %d: %w", path, corruptAt, err)
		}
		repaired = 1
	}
	return s, repaired, nil
}

// insert adds rec to the in-memory view if its key is new.
func (s *Store) insert(rec Record) bool {
	k := rec.Key()
	if s.keys[k] {
		return false
	}
	s.keys[k] = true
	s.recs = append(s.recs, rec)
	return true
}

// Append durably adds one record. Re-appending a record with the same
// key (commit+time+host+source) is a no-op returning false, which makes
// backfilling the committed seeds idempotent across CI runs.
func (s *Store) Append(rec *Record) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.keys[rec.Key()] {
		return false, nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return false, err
	}
	f, err := os.OpenFile(s.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return false, err
	}
	w := bufio.NewWriter(f)
	w.Write(line)
	w.WriteByte('\n')
	if err := w.Flush(); err != nil {
		f.Close()
		return false, err
	}
	if err := f.Close(); err != nil {
		return false, err
	}
	s.insert(*rec)
	return true, nil
}

// Len reports the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns every record sorted by run time (ties broken by
// commit then source, so the order is deterministic under out-of-order
// ingest). The slice is a copy; the Series maps are shared and must be
// treated as read-only.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Record(nil), s.recs...)
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].Commit != out[j].Commit {
			return out[i].Commit < out[j].Commit
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// Series returns the time-ordered points of one metric; records that
// never measured it contribute nothing.
func (s *Store) Series(metric string) []Point {
	var pts []Point
	for _, rec := range s.Records() {
		if v, ok := rec.Series[metric]; ok {
			pts = append(pts, Point{Time: rec.Time, Commit: rec.Commit, Source: rec.Source, Value: v})
		}
	}
	return pts
}

// Metrics returns every series name in the store with its point count,
// sorted by name.
func (s *Store) Metrics() []MetricInfo {
	counts := map[string]int{}
	for _, rec := range s.Records() {
		for name := range rec.Series {
			counts[name]++
		}
	}
	out := make([]MetricInfo, 0, len(counts))
	for name, n := range counts {
		out = append(out, MetricInfo{Name: name, Points: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MetricInfo summarizes one series for listings.
type MetricInfo struct {
	Name   string `json:"name"`
	Points int    `json:"points"`
}

// CommitInfo summarizes one stored run for the /commits endpoint.
type CommitInfo struct {
	Commit        string    `json:"commit,omitempty"`
	Time          time.Time `json:"time_utc"`
	SchemaVersion int       `json:"schema_version"`
	GoVersion     string    `json:"go_version,omitempty"`
	Host          string    `json:"host,omitempty"`
	Source        string    `json:"source,omitempty"`
	SeriesCount   int       `json:"series_count"`
}

// Commits lists the stored runs in time order.
func (s *Store) Commits() []CommitInfo {
	recs := s.Records()
	out := make([]CommitInfo, 0, len(recs))
	for _, r := range recs {
		out = append(out, CommitInfo{
			Commit:        r.Commit,
			Time:          r.Time,
			SchemaVersion: r.Meta.SchemaVersion,
			GoVersion:     r.GoVersion,
			Host:          r.Host,
			Source:        r.Source,
			SeriesCount:   len(r.Series),
		})
	}
	return out
}
