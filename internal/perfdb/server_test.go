package perfdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newTestServer returns an httptest server over a fresh store.
func newTestServer(t *testing.T) (*httptest.Server, *Store) {
	t.Helper()
	store, _, err := Open(filepath.Join(t.TempDir(), "perfdb.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store))
	t.Cleanup(ts.Close)
	return ts, store
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

// TestServerIngestQueryDashboard is the end-to-end smoke test: POST two
// stamped bench documents, query the series back, list the commits, and
// check the dashboard renders the trajectory.
func TestServerIngestQueryDashboard(t *testing.T) {
	ts, store := newTestServer(t)
	base := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	for i, cold := range []float64{2.9e6, 1.5e6} {
		doc := stampedDoc(t, fmt.Sprintf("commit%d", i), base.Add(time.Duration(i)*time.Hour), cold, 49000+float64(i))
		resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Added       bool   `json:"added"`
			Commit      string `json:"commit"`
			SeriesCount int    `json:"series_count"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || !got.Added || got.SeriesCount == 0 {
			t.Fatalf("ingest %d: status=%d body=%+v", i, resp.StatusCode, got)
		}
	}
	if store.Len() != 2 {
		t.Fatalf("store len = %d, want 2", store.Len())
	}

	// Series query returns both points, time-ordered.
	var series struct {
		Metric string  `json:"metric"`
		Points []Point `json:"points"`
	}
	if resp := getJSON(t, ts.URL+"/series?metric=serve_cold_ns", &series); resp.StatusCode != 200 {
		t.Fatalf("series status %d", resp.StatusCode)
	}
	if len(series.Points) != 2 || series.Points[0].Value != 2.9e6 || series.Points[1].Value != 1.5e6 {
		t.Fatalf("serve_cold_ns points = %+v", series.Points)
	}

	// Unknown metric is a 404; bare /series lists metric names.
	if resp := getJSON(t, ts.URL+"/series?metric=nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown metric status %d, want 404", resp.StatusCode)
	}
	var list struct {
		Metrics []MetricInfo `json:"metrics"`
	}
	getJSON(t, ts.URL+"/series", &list)
	if len(list.Metrics) == 0 {
		t.Fatal("metric listing empty")
	}

	// Commits are in time order with both runs.
	var commits struct {
		Commits []CommitInfo `json:"commits"`
	}
	getJSON(t, ts.URL+"/commits", &commits)
	if len(commits.Commits) != 2 || commits.Commits[0].Commit != "commit0" {
		t.Fatalf("commits = %+v", commits.Commits)
	}

	// Regressions endpoint answers (too few points to flag anything).
	var regs struct {
		Regressions []Regression `json:"regressions"`
	}
	if resp := getJSON(t, ts.URL+"/regressions", &regs); resp.StatusCode != 200 {
		t.Fatalf("regressions status %d", resp.StatusCode)
	}
	if len(regs.Regressions) != 0 {
		t.Fatalf("2-point store flagged regressions: %+v", regs.Regressions)
	}

	// Dashboard renders the series with sparklines and the run span.
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	page := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("dashboard content-type = %q", ct)
	}
	for _, want := range []string{
		"lsra perf observatory", "2 runs", "serve_cold_ns", "phase.scan.ns",
		"rusage.max_rss_bytes", `<svg class="spark"`, "<polyline", "<title>",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(page, "<script") {
		t.Error("dashboard must be self-contained: no scripts")
	}
	if strings.Contains(page, "http://") || strings.Contains(page, "https://") {
		t.Error("dashboard must not reference external assets")
	}
}

// TestServerFlagsRegression feeds a long series with a clean step and
// expects /regressions (and the dashboard) to flag it.
func TestServerFlagsRegression(t *testing.T) {
	ts, store := newTestServer(t)
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	values := []float64{100, 101, 99, 100, 102, 98, 150, 151, 149, 150, 152, 148}
	for i, v := range values {
		rec := testRecord(fmt.Sprintf("c%02d", i), base.Add(time.Duration(i)*time.Hour),
			map[string]float64{"phase.scan.ns": v * 1000})
		if _, err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	var regs struct {
		Regressions []Regression `json:"regressions"`
	}
	getJSON(t, ts.URL+"/regressions", &regs)
	if len(regs.Regressions) != 1 {
		t.Fatalf("regressions = %+v, want one", regs.Regressions)
	}
	r := regs.Regressions[0]
	if r.Metric != "phase.scan.ns" || r.Commit != "c06" || r.Delta < 0.4 {
		t.Errorf("flagged regression = %+v", r)
	}
	// The dashboard marks the flagged series.
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "⚠") {
		t.Error("dashboard does not mark the flagged changepoint")
	}
	// Parameter validation.
	if resp := getJSON(t, ts.URL+"/regressions?window=x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window status %d, want 400", resp.StatusCode)
	}
}

// TestServerIngestUnstamped pins the v0 ingest path: a document without
// a meta stamp is accepted with arrival-time identity.
func TestServerIngestUnstamped(t *testing.T) {
	ts, store := newTestServer(t)
	doc := `{"serve":{"cold_ns_per_program":1000,"warm_ns_per_program":500,"speedup":2,"cache_hit_rate":1}}`
	resp, err := http.Post(ts.URL+"/ingest?source=adhoc", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || store.Len() != 1 {
		t.Fatalf("unstamped ingest: status=%d len=%d", resp.StatusCode, store.Len())
	}
	rec := store.Records()[0]
	if rec.SchemaVersion != 0 || rec.Source != "adhoc" || rec.Time.IsZero() {
		t.Fatalf("unstamped record = %+v", rec.Meta)
	}
	// A document with nothing extractable is a 400, not a silent empty record.
	resp, err = http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty doc status = %d, want 400", resp.StatusCode)
	}
}
