package perfdb

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/perfdb/stats"
)

// maxIngestBytes bounds one POST /ingest body; a full -all -json
// document is ~100 KB, so 32 MiB is generous without being a DoS vector.
const maxIngestBytes = 32 << 20

// Server is the lsra-perfd HTTP surface over one Store:
//
//	POST /ingest        store one lsra-bench -json document
//	GET  /series        list metrics; ?metric=NAME returns its points
//	GET  /commits       stored runs in time order
//	GET  /regressions   changepoint flags across every series
//	GET  /healthz       liveness
//	GET  /              self-contained HTML dashboard
//
// All responses are JSON except the dashboard. The zero Regression
// parameters are the benchguard defaults, overridable per request.
type Server struct {
	store *Store
	mux   *http.ServeMux
}

// NewServer wraps store in the HTTP API.
func NewServer(store *Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /series", s.handleSeries)
	s.mux.HandleFunc("GET /commits", s.handleCommits)
	s.mux.HandleFunc("GET /regressions", s.handleRegressions)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("GET /{$}", s.handleDashboard)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleIngest accepts one lsra-bench -json document. Unstamped (v0)
// documents are accepted with the request arrival time as identity, so
// ad-hoc `lsra-bench -all -json | curl -d@- /ingest` pipelines work even
// from trees without git.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxIngestBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxIngestBytes)
		return
	}
	fallback := Meta{Time: time.Now().UTC().Truncate(time.Second)}
	rec, err := Extract(body, fallback)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	rec.Source = r.URL.Query().Get("source")
	if rec.Source == "" {
		rec.Source = "ingest"
	}
	added, err := s.store.Append(rec)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "append: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"added":          added,
		"commit":         rec.Commit,
		"time_utc":       rec.Time,
		"schema_version": rec.Meta.SchemaVersion,
		"series_count":   len(rec.Series),
	})
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	metric := r.URL.Query().Get("metric")
	if metric == "" {
		writeJSON(w, http.StatusOK, map[string]any{"metrics": s.store.Metrics()})
		return
	}
	pts := s.store.Series(metric)
	if len(pts) == 0 {
		writeErr(w, http.StatusNotFound, "no points for metric %q", metric)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"metric": metric, "points": pts})
}

func (s *Server) handleCommits(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"commits": s.store.Commits()})
}

// Regression is one flagged changepoint of one metric: the series'
// median shifted by Delta at Commit/Time, with Mann-Whitney p-value P
// over Window points each side.
type Regression struct {
	Metric       string    `json:"metric"`
	Time         time.Time `json:"time_utc"`
	Commit       string    `json:"commit,omitempty"`
	BeforeMedian float64   `json:"before_median"`
	AfterMedian  float64   `json:"after_median"`
	// Delta is the relative median shift; a jump off a zero baseline has
	// no finite relative delta, so it is reported as FromZero with Delta
	// zeroed (JSON cannot carry ±Inf).
	Delta    float64 `json:"delta"`
	FromZero bool    `json:"from_zero,omitempty"`
	P        float64 `json:"p"`
	Window   int     `json:"window"`
}

// regressionParams are the changepoint knobs with benchguard-aligned
// defaults: window 4 is the smallest with Mann-Whitney power at α=0.05,
// threshold 0.10 matches the allocs/op gate.
type regressionParams struct {
	window    int
	alpha     float64
	threshold float64
}

func parseRegressionParams(r *http.Request) (regressionParams, error) {
	p := regressionParams{window: 4, alpha: 0.05, threshold: 0.10}
	q := r.URL.Query()
	var err error
	if v := q.Get("window"); v != "" {
		if p.window, err = strconv.Atoi(v); err != nil || p.window < 2 {
			return p, fmt.Errorf("bad window %q", v)
		}
	}
	if v := q.Get("alpha"); v != "" {
		if p.alpha, err = strconv.ParseFloat(v, 64); err != nil || p.alpha <= 0 || p.alpha >= 1 {
			return p, fmt.Errorf("bad alpha %q", v)
		}
	}
	if v := q.Get("threshold"); v != "" {
		if p.threshold, err = strconv.ParseFloat(v, 64); err != nil || p.threshold < 0 {
			return p, fmt.Errorf("bad threshold %q", v)
		}
	}
	return p, nil
}

// regressions runs the changepoint detector over every stored series.
func (s *Server) regressions(p regressionParams) []Regression {
	out := []Regression{}
	for _, mi := range s.store.Metrics() {
		pts := s.store.Series(mi.Name)
		xs := make([]float64, len(pts))
		for i, pt := range pts {
			xs[i] = pt.Value
		}
		for _, cp := range stats.Changepoints(xs, p.window, p.alpha, p.threshold) {
			at := pts[cp.Index]
			reg := Regression{
				Metric:       mi.Name,
				Time:         at.Time,
				Commit:       at.Commit,
				BeforeMedian: cp.BeforeMedian,
				AfterMedian:  cp.AfterMedian,
				Delta:        cp.Delta,
				P:            cp.P,
				Window:       p.window,
			}
			if math.IsInf(reg.Delta, 0) {
				reg.FromZero, reg.Delta = true, 0
			}
			out = append(out, reg)
		}
	}
	return out
}

func (s *Server) handleRegressions(w http.ResponseWriter, r *http.Request) {
	p, err := parseRegressionParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	regs := s.regressions(p)
	writeJSON(w, http.StatusOK, map[string]any{
		"window": p.window, "alpha": p.alpha, "threshold": p.threshold,
		"regressions": regs,
	})
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	s.RenderDashboard(w)
}
