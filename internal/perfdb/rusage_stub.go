//go:build !unix

package perfdb

// readRusage is a no-op where getrusage is unavailable: the rusage
// fields of Resources stay zero and only the GC half is populated.
func readRusage(*Resources) {}
