package perfdb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testRecord(commit string, t time.Time, series map[string]float64) *Record {
	return &Record{
		Meta: Meta{
			SchemaVersion: SchemaVersion,
			Commit:        commit,
			Time:          t,
			GoVersion:     "go1.24.0",
			Host:          "linux/amd64/test/8cpu",
		},
		Source: "test",
		Series: series,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perfdb.jsonl")
	s, repaired, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 0 || s.Len() != 0 {
		t.Fatalf("fresh store: repaired=%d len=%d", repaired, s.Len())
	}
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		rec := testRecord(fmt.Sprintf("c%d", i), base.Add(time.Duration(i)*time.Hour),
			map[string]float64{"phase.scan.ns": float64(100 + i), "alloc.total.wall_ns": float64(1000 * (i + 1))})
		added, err := s.Append(rec)
		if err != nil || !added {
			t.Fatalf("append %d: added=%v err=%v", i, added, err)
		}
	}

	// Re-appending an identical record is an idempotent no-op.
	dup := testRecord("c0", base, map[string]float64{"phase.scan.ns": 100})
	if added, err := s.Append(dup); err != nil || added {
		t.Fatalf("duplicate append: added=%v err=%v", added, err)
	}
	if s.Len() != 3 {
		t.Fatalf("len after dup = %d, want 3", s.Len())
	}

	// Reopen and query: everything survives the file round-trip.
	s2, repaired, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 0 || s2.Len() != 3 {
		t.Fatalf("reopen: repaired=%d len=%d", repaired, s2.Len())
	}
	pts := s2.Series("phase.scan.ns")
	if len(pts) != 3 {
		t.Fatalf("series points = %d, want 3", len(pts))
	}
	for i, p := range pts {
		if p.Value != float64(100+i) || p.Commit != fmt.Sprintf("c%d", i) {
			t.Errorf("point %d = %+v", i, p)
		}
	}
	if got := s2.Metrics(); len(got) != 2 || got[0].Name != "alloc.total.wall_ns" || got[0].Points != 3 {
		t.Errorf("metrics = %+v", got)
	}
	if commits := s2.Commits(); len(commits) != 3 || commits[0].Commit != "c0" || commits[0].SeriesCount != 2 {
		t.Errorf("commits = %+v", commits)
	}
}

func TestStoreCorruptTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perfdb.jsonl")
	s, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 2; i++ {
		if _, err := s.Append(testRecord(fmt.Sprintf("c%d", i), base.Add(time.Duration(i)*time.Hour),
			map[string]float64{"m": float64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a torn append: half a JSON record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"schema_version":1,"commit":"c2","time_`)
	f.Close()

	s2, repaired, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if repaired != 1 {
		t.Errorf("repaired = %d, want 1", repaired)
	}
	if s2.Len() != 2 {
		t.Fatalf("len after repair = %d, want 2", s2.Len())
	}
	// The repair truncated the torn bytes: appending works and a third
	// reopen sees clean data.
	if _, err := s2.Append(testRecord("c2", base.Add(2*time.Hour), map[string]float64{"m": 2})); err != nil {
		t.Fatal(err)
	}
	s3, repaired, err := Open(path)
	if err != nil || repaired != 0 || s3.Len() != 3 {
		t.Fatalf("reopen after repair+append: len=%d repaired=%d err=%v", s3.Len(), repaired, err)
	}
}

func TestStoreRefusesMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perfdb.jsonl")
	s, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 2; i++ {
		if _, err := s.Append(testRecord(fmt.Sprintf("c%d", i), base.Add(time.Duration(i)*time.Hour),
			map[string]float64{"m": float64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Mangle the FIRST record: valid data follows, so this is not a torn
	// tail and must not be silently repaired away.
	data[2] = 0
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
}

func TestStoreOutOfOrderIngest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perfdb.jsonl")
	s, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	// Ingest newest-first: a backfill after live records does exactly this.
	for _, i := range []int{3, 0, 2, 1} {
		if _, err := s.Append(testRecord(fmt.Sprintf("c%d", i), base.Add(time.Duration(i)*time.Hour),
			map[string]float64{"m": float64(i * 10)})); err != nil {
			t.Fatal(err)
		}
	}
	check := func(st *Store) {
		t.Helper()
		pts := st.Series("m")
		if len(pts) != 4 {
			t.Fatalf("points = %d, want 4", len(pts))
		}
		for i, p := range pts {
			if p.Value != float64(i*10) {
				t.Fatalf("series not time-ordered: %+v", pts)
			}
		}
		if commits := st.Commits(); commits[0].Commit != "c0" || commits[3].Commit != "c3" {
			t.Fatalf("commits not time-ordered: %+v", commits)
		}
	}
	check(s)
	// Ordering is a query property, not a file property: reopen keeps it.
	s2, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	check(s2)
}
