package perfdb

import (
	"encoding/json"
	"fmt"
	"sort"
)

// benchDoc is perfdb's read-side view of one `lsra-bench -json`
// document. It deliberately redeclares only the fields the observatory
// flattens into series (cmd/lsra-bench owns the full write-side shape);
// unknown fields are ignored, so the two can evolve independently as
// long as names stay stable.
type benchDoc struct {
	Meta      *Meta      `json:"meta"`
	Resources *Resources `json:"resources"`
	Table1    []struct {
		Benchmark  string
		InstrRatio float64
	} `json:"table1"`
	Table2 []struct {
		Benchmark   string
		BinpackPct  float64
		ColoringPct float64
	} `json:"table2"`
	Sweep []struct {
		Machine   string  `json:"machine"`
		Allocator string  `json:"allocator"`
		SpillPct  float64 `json:"spill_pct"`
	} `json:"sweep"`
	Allocation []struct {
		Benchmark string     `json:"benchmark"`
		Resources *Resources `json:"resources"`
		Report    *struct {
			Totals struct {
				SpilledTemps int64
			} `json:"totals"`
			PhaseStats []struct {
				Phase  string `json:"phase"`
				Ns     int64  `json:"ns"`
				Allocs uint64 `json:"allocs"`
			} `json:"phase_stats"`
			HeapAllocs uint64 `json:"heap_allocs"`
			HeapBytes  uint64 `json:"heap_bytes"`
			WallTimeNs int64  `json:"wall_time_ns"`
		} `json:"report"`
	} `json:"allocation"`
	Serve *struct {
		ColdNsPerProgram int64   `json:"cold_ns_per_program"`
		WarmNsPerProgram int64   `json:"warm_ns_per_program"`
		Speedup          float64 `json:"speedup"`
		CacheHitRate     float64 `json:"cache_hit_rate"`
	} `json:"serve"`
	Corpus *struct {
		CorpusPrograms int `json:"corpus_programs"`
		Shards         int `json:"shards"`
		Rungs          []struct {
			Programs         int     `json:"programs"`
			ProgramsPerSec   float64 `json:"programs_per_sec"`
			MBPerSec         float64 `json:"mb_per_sec"`
			AllocsPerProgram float64 `json:"allocs_per_program"`
		} `json:"rungs"`
		Alloc *struct {
			NsPerProgram int64   `json:"ns_per_program"`
			DecodeShare  float64 `json:"decode_share"`
		} `json:"alloc"`
		Pipeline *struct {
			Lockstep  *pipelineStats `json:"lockstep"`
			Pipelined *pipelineStats `json:"pipelined"`
			Speedup   float64        `json:"speedup"`
		} `json:"pipeline"`
		ServeDuel *struct {
			ColdTextNsPerProgram   int64   `json:"cold_text_ns_per_program"`
			ColdBinaryNsPerProgram int64   `json:"cold_binary_ns_per_program"`
			Speedup                float64 `json:"speedup"`
		} `json:"serve_duel"`
	} `json:"corpus"`
	Quality *struct {
		Points     int `json:"points"`
		Eligible   int `json:"eligible"`
		Errors     int `json:"errors"`
		Violations int `json:"violations"`
		Summary    map[string]struct {
			GeomeanGap float64 `json:"geomean_gap"`
			MaxGap     float64 `json:"max_gap"`
			SpillOps   int64   `json:"spill_ops"`
		} `json:"summary"`
	} `json:"quality"`
	Cluster *struct {
		ColdNsPerRequest    int64   `json:"cold_ns_per_request"`
		WarmNsPerRequest    int64   `json:"warm_ns_per_request"`
		BinaryNsPerRequest  int64   `json:"binary_ns_per_request"`
		JSONNsPerRequest    int64   `json:"json_ns_per_request"`
		BinarySpeedup       float64 `json:"binary_speedup"`
		JSONFallbacks       uint64  `json:"json_fallbacks"`
		WarmHitRate         float64 `json:"warm_hit_rate"`
		UnhedgedP99Ns       int64   `json:"unhedged_p99_ns"`
		HedgedP99Ns         int64   `json:"hedged_p99_ns"`
		HedgeWins           uint64  `json:"hedge_wins"`
		TailSpeedupP99      float64 `json:"tail_speedup_p99"`
		PersistAdmitted     uint64  `json:"persist_admitted"`
		PersistRejectedCost uint64  `json:"persist_rejected_cost"`
		RestartWarmHitRate  float64 `json:"restart_warm_hit_rate"`
	} `json:"cluster"`
}

// pipelineStats is the extractable subset of internal/pipeline.Stats
// (one side of the corpus section's lockstep-vs-pipelined duel).
type pipelineStats struct {
	ProgramsPerSec    float64 `json:"programs_per_sec"`
	DecodeUtilization float64 `json:"decode_utilization"`
	AllocUtilization  float64 `json:"alloc_utilization"`
	DecodeStallNs     int64   `json:"decode_stall_ns"`
	AllocStallNs      int64   `json:"alloc_stall_ns"`
	AvgRingOccupancy  float64 `json:"avg_ring_occupancy"`
}

// Extract flattens one lsra-bench JSON document into a Record. Stamped
// (schema_version ≥ 1) documents carry their own Meta; v0 documents —
// the committed BENCH_2.json / BENCH_5.json predate the observatory —
// fall back to the caller-provided identity (typically git metadata of
// the file itself) with SchemaVersion left at 0 so readers can tell a
// seed point from a live one.
func Extract(data []byte, fallback Meta) (*Record, error) {
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("perfdb: parse bench document: %w", err)
	}
	rec := &Record{Series: map[string]float64{}}
	if doc.Meta != nil {
		rec.Meta = *doc.Meta
	} else {
		rec.Meta = fallback
		rec.Meta.SchemaVersion = 0
	}
	rec.Time = rec.Time.UTC()

	put := func(name string, v float64) { rec.Series[name] = v }

	// Quality: the paper's code-quality axis, longitudinally.
	for _, r := range doc.Table1 {
		put("quality."+r.Benchmark+".instr_ratio", r.InstrRatio)
	}
	for _, r := range doc.Table2 {
		put("quality."+r.Benchmark+".spill_pct.binpack", r.BinpackPct)
		put("quality."+r.Benchmark+".spill_pct.coloring", r.ColoringPct)
	}
	for _, p := range doc.Sweep {
		put("sweep."+p.Machine+"."+p.Allocator+".spill_pct", p.SpillPct)
	}

	// Speed: per-benchmark engine reports, with per-phase ns/allocs
	// accumulated across the suite, plus per-benchmark resource deltas.
	phaseNs := map[string]float64{}
	phaseAllocs := map[string]float64{}
	var totalWall, totalAllocs, totalSpilled float64
	for _, a := range doc.Allocation {
		if a.Report == nil {
			continue
		}
		b := a.Benchmark
		put("alloc."+b+".wall_ns", float64(a.Report.WallTimeNs))
		put("alloc."+b+".heap_allocs", float64(a.Report.HeapAllocs))
		put("alloc."+b+".spilled", float64(a.Report.Totals.SpilledTemps))
		totalWall += float64(a.Report.WallTimeNs)
		totalAllocs += float64(a.Report.HeapAllocs)
		totalSpilled += float64(a.Report.Totals.SpilledTemps)
		for _, ps := range a.Report.PhaseStats {
			phaseNs[ps.Phase] += float64(ps.Ns)
			phaseAllocs[ps.Phase] += float64(ps.Allocs)
		}
		if a.Resources != nil {
			putResources(put, "alloc."+b+".", a.Resources)
		}
	}
	if len(doc.Allocation) > 0 {
		put("alloc.total.wall_ns", totalWall)
		put("alloc.total.heap_allocs", totalAllocs)
		put("alloc.total.spilled", totalSpilled)
	}
	for phase, ns := range phaseNs {
		put("phase."+phase+".ns", ns)
	}
	for phase, n := range phaseAllocs {
		if n > 0 {
			put("phase."+phase+".allocs", n)
		}
	}

	// Serving: the content-addressed cache headline. Flat historical
	// names — these are the metrics people grep for.
	if s := doc.Serve; s != nil {
		put("serve_cold_ns", float64(s.ColdNsPerProgram))
		put("serve_warm_ns", float64(s.WarmNsPerProgram))
		put("serve_speedup", s.Speedup)
		put("serve_cache_hit_rate", s.CacheHitRate)
	}

	// Binary-codec corpus ladder: decode throughput per rung (keyed by a
	// compact rung name — 100000 → "100k", 1000000 → "1m"), the
	// decode+allocate pipeline rate, and the cold-serve wire-format duel.
	if c := doc.Corpus; c != nil {
		for _, r := range c.Rungs {
			name := rungName(r.Programs)
			put("corpus_programs_per_sec_"+name, r.ProgramsPerSec)
			put("corpus_mb_per_sec_"+name, r.MBPerSec)
			put("corpus_allocs_per_program_"+name, r.AllocsPerProgram)
		}
		if a := c.Alloc; a != nil {
			put("corpus_alloc_ns", float64(a.NsPerProgram))
			put("corpus_decode_share", a.DecodeShare)
		}
		if d := c.ServeDuel; d != nil {
			put("serve_cold_text_ns", float64(d.ColdTextNsPerProgram))
			put("serve_cold_binary_ns", float64(d.ColdBinaryNsPerProgram))
			put("serve_binary_speedup", d.Speedup)
		}
		if c.Shards > 0 {
			put("corpus_shard_count", float64(c.Shards))
		}
		// Decode-ahead pipeline duel: the pipelined side's throughput and
		// stage health, with the lockstep baseline for the same input.
		if p := c.Pipeline; p != nil {
			put("pipeline_speedup", p.Speedup)
			if ls := p.Lockstep; ls != nil {
				put("pipeline_lockstep_programs_per_sec", ls.ProgramsPerSec)
			}
			if ps := p.Pipelined; ps != nil {
				put("pipeline_programs_per_sec", ps.ProgramsPerSec)
				put("pipeline_decode_utilization", ps.DecodeUtilization)
				put("pipeline_alloc_utilization", ps.AllocUtilization)
				put("pipeline_decode_stall_ns", float64(ps.DecodeStallNs))
				put("pipeline_alloc_stall_ns", float64(ps.AllocStallNs))
				put("pipeline_ring_occupancy", ps.AvgRingOccupancy)
			}
		}
	}

	// Quality frontier: each allocator's spill-traffic gap against the
	// oracle's proven optimum, plus the grid's health counters. A
	// quality regression (a geomean creeping up, an envelope violation
	// count going nonzero) trends on the dashboard exactly like a speed
	// regression.
	if q := doc.Quality; q != nil {
		put("quality_points_total", float64(q.Points))
		put("quality_points_eligible", float64(q.Eligible))
		put("quality_envelope_violations", float64(q.Violations+q.Errors))
		for name, s := range q.Summary {
			put("quality_gap_"+name, s.GeomeanGap)
			put("quality_gap_max_"+name, s.MaxGap)
			put("quality_spill_ops_"+name, float64(s.SpillOps))
		}
	}

	// Sharded cluster: routing/caching steady state, the hedged-request
	// tail, and the persistent tier's admission + restart behavior.
	if cs := doc.Cluster; cs != nil {
		put("cluster_cold_ns", float64(cs.ColdNsPerRequest))
		put("cluster_warm_ns", float64(cs.WarmNsPerRequest))
		put("cluster_warm_hit_rate", cs.WarmHitRate)
		put("cluster_unhedged_p99_ns", float64(cs.UnhedgedP99Ns))
		put("cluster_hedged_p99_ns", float64(cs.HedgedP99Ns))
		put("cluster_hedge_wins", float64(cs.HedgeWins))
		put("cluster_tail_speedup_p99", cs.TailSpeedupP99)
		put("cluster_persist_admitted", float64(cs.PersistAdmitted))
		put("cluster_persist_rejected_cost", float64(cs.PersistRejectedCost))
		put("cluster_restart_warm_hit_rate", cs.RestartWarmHitRate)
		// Binary wire-form duel (absent in documents that predate it).
		if cs.BinaryNsPerRequest > 0 {
			put("cluster_binary_ns", float64(cs.BinaryNsPerRequest))
			put("cluster_json_ns", float64(cs.JSONNsPerRequest))
			put("cluster_binary_speedup", cs.BinarySpeedup)
			put("cluster_json_fallbacks", float64(cs.JSONFallbacks))
		}
	}

	// Process-wide resource attribution (v1 records only).
	if doc.Resources != nil {
		putResources(put, "rusage.", doc.Resources)
	}

	if len(rec.Series) == 0 {
		return nil, fmt.Errorf("perfdb: bench document contains no extractable series")
	}
	return rec, nil
}

// rungName compresses a rung size into the series-key suffix: whole
// millions as "<n>m", whole thousands as "<n>k", anything else verbatim.
func rungName(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dm", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// putResources flattens a Resources snapshot under a series prefix; the
// GC counters get their own sub-prefix so gc cost reads as its own group
// on the dashboard.
func putResources(put func(string, float64), prefix string, r *Resources) {
	if r.MaxRSSBytes > 0 {
		put(prefix+"max_rss_bytes", float64(r.MaxRSSBytes))
	}
	put(prefix+"user_cpu_ns", float64(r.UserCPUNs))
	put(prefix+"sys_cpu_ns", float64(r.SysCPUNs))
	put(prefix+"gc.cycles", float64(r.GCCycles))
	put(prefix+"gc.cpu_ns", float64(r.GCCPUNs))
	put(prefix+"gc.heap_alloc_bytes", float64(r.HeapAllocBytes))
}

// MetricNames returns the sorted series names of a record — handy for
// tests and the /commits endpoint's series_count.
func (r *Record) MetricNames() []string {
	names := make([]string, 0, len(r.Series))
	for n := range r.Series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
