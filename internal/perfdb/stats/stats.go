// Package stats holds the small statistical toolbox shared by the
// benchmark-regression gate (cmd/benchguard) and the perf observatory
// (internal/perfdb): medians, the two-sided Mann-Whitney U test, and a
// sliding-window changepoint detector built on it.
//
// The package exists so the CI gate and the longitudinal dashboard flag
// regressions with the *same* arithmetic — a run that trips the gate is
// exactly a run the observatory would mark as a changepoint, and vice
// versa. Keep it dependency-free; both importers are leaf binaries.
package stats

import (
	"math"
	"sort"
)

// Median returns the middle of a sorted copy of xs, NaN when empty.
func Median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MannWhitneyP returns the two-sided p-value of the Mann-Whitney U test
// for samples a vs b, using the normal approximation with tie correction
// and a continuity correction. For the small sample counts CI uses
// (-count 6, observatory windows of 4–8) the approximation is
// conservative enough for gating; exactness matters less than the
// median-delta threshold it is combined with.
func MannWhitneyP(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 1
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Rank with midranks for ties, accumulating the tie correction.
	ranks := make([]float64, len(all))
	tieCorr := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average 1-based rank of the tied run
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieCorr += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.fromA {
			r1 += ranks[i]
		}
	}
	u1 := r1 - n1*(n1+1)/2
	mu := n1 * n2 / 2
	n := n1 + n2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieCorr/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations identical: no evidence of a difference.
		return 1
	}
	z := (u1 - mu) / math.Sqrt(sigma2)
	if z > 0 {
		z = z - 0.5/math.Sqrt(sigma2) // continuity correction
	} else if z < 0 {
		z = z + 0.5/math.Sqrt(sigma2)
	}
	p := 2 * (1 - normCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return p
}

func normCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// Changepoint marks a split in a time-ordered series where the windows
// on either side differ both significantly (Mann-Whitney) and
// substantially (relative median delta beyond a threshold).
type Changepoint struct {
	// Index is the first point of the "after" regime: the series shifted
	// between Index-1 and Index.
	Index int
	// BeforeMedian and AfterMedian are the window medians either side of
	// the split.
	BeforeMedian, AfterMedian float64
	// Delta is (after-before)/before; +Inf when the before median is
	// zero and the after median is not (a from-zero jump is always
	// substantial — a zero baseline is a hard-won floor).
	Delta float64
	// P is the two-sided Mann-Whitney p-value of the split.
	P float64
}

// Changepoints scans a time-ordered series with a sliding split: at each
// index i it compares the window points before i against the window
// after (inclusive), flagging splits where p < alpha and |Delta| >
// threshold. Overlapping candidate splits are collapsed to the locally
// strongest one (smallest p, largest |Delta| on ties) so one regime
// shift reports one changepoint, not window-many. The window is clamped
// to half the series length; series shorter than four points can never
// reach significance and return nil.
func Changepoints(xs []float64, window int, alpha, threshold float64) []Changepoint {
	if window < 1 {
		window = 1
	}
	if half := len(xs) / 2; window > half {
		window = half
	}
	if window < 2 {
		return nil // Mann-Whitney on 1-point windows has no power
	}
	var cands []Changepoint
	for i := window; i+window <= len(xs); i++ {
		before, after := xs[i-window:i], xs[i:i+window]
		p := MannWhitneyP(before, after)
		if p >= alpha {
			continue
		}
		bm, am := Median(before), Median(after)
		var delta float64
		switch {
		case bm != 0:
			delta = (am - bm) / math.Abs(bm)
		case am != 0:
			delta = math.Inf(sign(am))
		}
		if math.Abs(delta) <= threshold {
			continue
		}
		cands = append(cands, Changepoint{Index: i, BeforeMedian: bm, AfterMedian: am, Delta: delta, P: p})
	}
	return suppressNeighbors(cands, window)
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// suppressNeighbors keeps, within every run of candidates closer than
// window to each other, only the strongest split.
func suppressNeighbors(cands []Changepoint, window int) []Changepoint {
	var out []Changepoint
	for i := 0; i < len(cands); {
		best := cands[i]
		j := i + 1
		for j < len(cands) && cands[j].Index-cands[j-1].Index < window {
			if stronger(cands[j], best) {
				best = cands[j]
			}
			j++
		}
		out = append(out, best)
		i = j
	}
	return out
}

func stronger(a, b Changepoint) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	return math.Abs(a.Delta) > math.Abs(b.Delta)
}
