package stats

import (
	"math"
	"testing"
)

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("median of empty not NaN")
	}
}

func TestMannWhitney(t *testing.T) {
	// Clearly separated samples: significant.
	a := []float64{100, 101, 99, 100, 102, 98}
	b := []float64{150, 151, 149, 150, 152, 148}
	if p := MannWhitneyP(a, b); p >= 0.05 {
		t.Fatalf("separated samples p = %v, want < 0.05", p)
	}
	// Identical samples: no evidence.
	if p := MannWhitneyP(a, a); p < 0.5 {
		t.Fatalf("identical samples p = %v, want ~1", p)
	}
	// Heavily overlapping samples: not significant.
	c := []float64{100, 103, 97, 101, 99, 102}
	d := []float64{101, 98, 104, 100, 102, 99}
	if p := MannWhitneyP(c, d); p < 0.05 {
		t.Fatalf("overlapping samples p = %v, want >= 0.05", p)
	}
	// Degenerate inputs must not panic or claim significance.
	if p := MannWhitneyP(nil, b); p != 1 {
		t.Fatalf("empty sample p = %v", p)
	}
	if p := MannWhitneyP([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Fatalf("all-ties p = %v", p)
	}
}

// TestZeroBaselineRegression pins the from-zero rule: a benchmark whose
// baseline hit 0 allocs/op must trip the gate when allocations return,
// even though no relative delta exists.
func TestZeroBaselineRegression(t *testing.T) {
	zero := []float64{0, 0, 0, 0, 0, 0}
	back := []float64{10000, 10001, 9999, 10000, 10002, 9998}
	if p := MannWhitneyP(zero, back); p >= 0.05 {
		t.Fatalf("from-zero jump not significant: p=%v", p)
	}
	// Still-zero stays quiet.
	if p := MannWhitneyP(zero, zero); p < 0.5 {
		t.Fatalf("all-zero vs all-zero p=%v", p)
	}
}

func TestChangepointsFlagsStep(t *testing.T) {
	// Flat at ~100 then a clean step to ~150 at index 6.
	xs := []float64{100, 101, 99, 100, 102, 98, 150, 151, 149, 150, 152, 148}
	cps := Changepoints(xs, 4, 0.05, 0.10)
	if len(cps) != 1 {
		t.Fatalf("changepoints = %+v, want exactly one", cps)
	}
	cp := cps[0]
	if cp.Index != 6 {
		t.Errorf("Index = %d, want 6", cp.Index)
	}
	if cp.BeforeMedian != 99.5 || cp.AfterMedian != 150 {
		t.Errorf("medians = %v -> %v, want 99.5 -> 150", cp.BeforeMedian, cp.AfterMedian)
	}
	if cp.Delta < 0.45 || cp.Delta > 0.55 {
		t.Errorf("Delta = %v, want ~0.5", cp.Delta)
	}
	if cp.P >= 0.05 {
		t.Errorf("P = %v, want < 0.05", cp.P)
	}
}

func TestChangepointsQuietCases(t *testing.T) {
	// A flat noisy series has no changepoints.
	flat := []float64{100, 103, 97, 101, 99, 102, 101, 98, 104, 100, 102, 99}
	if cps := Changepoints(flat, 4, 0.05, 0.10); len(cps) != 0 {
		t.Fatalf("flat series flagged: %+v", cps)
	}
	// A substantial but sub-threshold drift stays quiet.
	drift := []float64{100, 101, 99, 100, 102, 98, 104, 105, 103, 104, 106, 102}
	if cps := Changepoints(drift, 4, 0.05, 0.10); len(cps) != 0 {
		t.Fatalf("sub-threshold drift flagged: %+v", cps)
	}
	// Too-short series (the two-point backfill seed) can never flag.
	if cps := Changepoints([]float64{1, 100}, 4, 0.05, 0.10); cps != nil {
		t.Fatalf("2-point series flagged: %+v", cps)
	}
	if cps := Changepoints(nil, 4, 0.05, 0.10); cps != nil {
		t.Fatalf("empty series flagged: %+v", cps)
	}
}

func TestChangepointsFromZero(t *testing.T) {
	// allocs/op leaving a zero floor: no relative delta exists, but the
	// split must still be flagged (+Inf delta beats any threshold).
	xs := []float64{0, 0, 0, 0, 0, 7000, 7001, 6999, 7000, 7002}
	cps := Changepoints(xs, 4, 0.05, 0.10)
	if len(cps) != 1 {
		t.Fatalf("changepoints = %+v, want one", cps)
	}
	if !math.IsInf(cps[0].Delta, 1) {
		t.Errorf("Delta = %v, want +Inf", cps[0].Delta)
	}
}

func TestChangepointsWindowClamp(t *testing.T) {
	// Window larger than half the series clamps rather than scanning
	// nothing: 8 points with window 16 behaves like window 4.
	xs := []float64{100, 101, 99, 100, 150, 151, 149, 150}
	cps := Changepoints(xs, 16, 0.05, 0.10)
	if len(cps) != 1 || cps[0].Index != 4 {
		t.Fatalf("clamped changepoints = %+v, want one at index 4", cps)
	}
}
