package perfdb

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// stampedDoc builds a minimal v1 lsra-bench document for tests.
func stampedDoc(t *testing.T, commit string, at time.Time, serveCold, scanNs float64) []byte {
	t.Helper()
	doc := map[string]any{
		"meta": Meta{SchemaVersion: SchemaVersion, Commit: commit, Time: at, GoVersion: "go1.24.0", Host: "linux/amd64/test/8cpu"},
		"allocation": []map[string]any{{
			"benchmark": "wc",
			"resources": Resources{MaxRSSBytes: 32 << 20, UserCPUNs: 5e6, SysCPUNs: 1e6, GCCycles: 2, GCCPUNs: 1e5, HeapAllocBytes: 4096},
			"report": map[string]any{
				"totals":       map[string]any{"SpilledTemps": 3},
				"phase_stats":  []map[string]any{{"phase": "scan", "ns": scanNs, "allocs": 7}},
				"heap_allocs":  358,
				"wall_time_ns": 236367,
			},
		}},
		"serve": map[string]any{
			"cold_ns_per_program": serveCold,
			"warm_ns_per_program": serveCold / 2,
			"speedup":             2.0,
			"cache_hit_rate":      0.99,
		},
		"corpus": map[string]any{
			"corpus_programs": 20000,
			"shards":          16,
			"rungs": []map[string]any{
				{"programs": 100000, "programs_per_sec": 51000.0, "mb_per_sec": 142.0, "allocs_per_program": 0.0},
				{"programs": 1000000, "programs_per_sec": 52000.0, "mb_per_sec": 145.0, "allocs_per_program": 0.0},
			},
			"alloc":      map[string]any{"ns_per_program": 1.9e6, "decode_share": 0.011},
			"serve_duel": map[string]any{"cold_text_ns_per_program": 2.4e6, "cold_binary_ns_per_program": 1.6e6, "speedup": 1.5},
			"pipeline": map[string]any{
				"lockstep": map[string]any{"programs_per_sec": 600.0},
				"pipelined": map[string]any{
					"programs_per_sec": 630.0, "decode_utilization": 0.016, "alloc_utilization": 0.99,
					"decode_stall_ns": 1.7e9, "alloc_stall_ns": 4.2e6, "avg_ring_occupancy": 14.7,
				},
				"speedup": 1.05,
			},
		},
		"cluster": map[string]any{
			"cold_ns_per_request":   3.1e6,
			"warm_ns_per_request":   1.6e6,
			"warm_hit_rate":         1.0,
			"unhedged_p99_ns":       2.9e7,
			"hedged_p99_ns":         1.1e7,
			"hedge_wins":            12,
			"tail_speedup_p99":      2.6,
			"persist_admitted":      6,
			"persist_rejected_cost": 10,
			"restart_warm_hit_rate": 1.0,
			"binary_ns_per_request": 1.2e6,
			"json_ns_per_request":   1.5e6,
			"binary_speedup":        1.25,
			"json_fallbacks":        0,
		},
		"quality": map[string]any{
			"points":     168,
			"eligible":   49,
			"errors":     0,
			"violations": 0,
			"summary": map[string]any{
				"binpack": map[string]any{"geomean_gap": 2.602, "max_gap": 632.0, "spill_ops": 95752},
				"oracle":  map[string]any{"geomean_gap": 1.0, "max_gap": 1.0, "spill_ops": 34414},
			},
		},
		"resources": Resources{MaxRSSBytes: 64 << 20, UserCPUNs: 9e6, SysCPUNs: 2e6, GCCycles: 5, GCCPUNs: 3e5, HeapAllocBytes: 1 << 20},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestExtractStampedDocument(t *testing.T) {
	at := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	rec, err := Extract(stampedDoc(t, "abc123", at, 2.9e6, 49000), Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SchemaVersion != SchemaVersion || rec.Commit != "abc123" || !rec.Time.Equal(at) {
		t.Fatalf("meta = %+v", rec.Meta)
	}
	want := map[string]float64{
		"serve_cold_ns":                      2.9e6,
		"serve_warm_ns":                      1.45e6,
		"serve_speedup":                      2.0,
		"serve_cache_hit_rate":               0.99,
		"corpus_programs_per_sec_100k":       51000,
		"corpus_mb_per_sec_100k":             142,
		"corpus_allocs_per_program_1m":       0,
		"corpus_programs_per_sec_1m":         52000,
		"corpus_alloc_ns":                    1.9e6,
		"corpus_decode_share":                0.011,
		"corpus_shard_count":                 16,
		"pipeline_speedup":                   1.05,
		"pipeline_lockstep_programs_per_sec": 600,
		"pipeline_programs_per_sec":          630,
		"pipeline_decode_utilization":        0.016,
		"pipeline_alloc_utilization":         0.99,
		"pipeline_decode_stall_ns":           1.7e9,
		"pipeline_alloc_stall_ns":            4.2e6,
		"pipeline_ring_occupancy":            14.7,
		"serve_cold_text_ns":                 2.4e6,
		"serve_cold_binary_ns":               1.6e6,
		"serve_binary_speedup":               1.5,
		"cluster_cold_ns":                    3.1e6,
		"cluster_warm_ns":                    1.6e6,
		"cluster_warm_hit_rate":              1.0,
		"cluster_unhedged_p99_ns":            2.9e7,
		"cluster_hedged_p99_ns":              1.1e7,
		"cluster_hedge_wins":                 12,
		"cluster_tail_speedup_p99":           2.6,
		"cluster_persist_admitted":           6,
		"cluster_persist_rejected_cost":      10,
		"cluster_restart_warm_hit_rate":      1.0,
		"cluster_binary_ns":                  1.2e6,
		"cluster_json_ns":                    1.5e6,
		"cluster_binary_speedup":             1.25,
		"cluster_json_fallbacks":             0,
		"quality_points_total":               168,
		"quality_points_eligible":            49,
		"quality_envelope_violations":        0,
		"quality_gap_binpack":                2.602,
		"quality_gap_max_binpack":            632,
		"quality_spill_ops_binpack":          95752,
		"quality_gap_oracle":                 1.0,
		"quality_gap_max_oracle":             1.0,
		"quality_spill_ops_oracle":           34414,
		"phase.scan.ns":                      49000,
		"phase.scan.allocs":                  7,
		"alloc.wc.wall_ns":                   236367,
		"alloc.wc.heap_allocs":               358,
		"alloc.wc.spilled":                   3,
		"alloc.wc.max_rss_bytes":             32 << 20,
		"alloc.wc.user_cpu_ns":               5e6,
		"alloc.total.wall_ns":                236367,
		"rusage.max_rss_bytes":               64 << 20,
		"rusage.user_cpu_ns":                 9e6,
		"rusage.sys_cpu_ns":                  2e6,
		"rusage.gc.cycles":                   5,
		"rusage.gc.heap_alloc_bytes":         1 << 20,
	}
	for name, v := range want {
		if got, ok := rec.Series[name]; !ok || got != v {
			t.Errorf("series[%q] = %v (present=%v), want %v", name, got, ok, v)
		}
	}
}

// TestExtractV0Fallback pins the compatibility guarantee: the committed
// pre-observatory snapshots (BENCH_2.json here, read from the repo root)
// stay ingestible, taking their identity from the caller's fallback.
func TestExtractV0Fallback(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_2.json")
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 7, 29, 14, 38, 32, 0, time.UTC)
	rec, err := Extract(data, Meta{Commit: "seedsha", Time: at})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SchemaVersion != 0 {
		t.Errorf("v0 fallback schema_version = %d, want 0", rec.SchemaVersion)
	}
	if rec.Commit != "seedsha" || !rec.Time.Equal(at) {
		t.Errorf("fallback identity not applied: %+v", rec.Meta)
	}
	// The historical document must yield the headline series.
	for _, name := range []string{"phase.scan.ns", "alloc.total.wall_ns", "quality.fpppp.instr_ratio"} {
		if _, ok := rec.Series[name]; !ok {
			t.Errorf("v0 extraction missing %q (have %d series)", name, len(rec.Series))
		}
	}
	// And none of the v1-only resource series.
	if _, ok := rec.Series["rusage.max_rss_bytes"]; ok {
		t.Error("v0 document grew rusage series from nowhere")
	}
}

func TestExtractRejectsEmptyAndGarbage(t *testing.T) {
	if _, err := Extract([]byte(`{}`), Meta{}); err == nil {
		t.Error("empty document accepted")
	}
	if _, err := Extract([]byte(`not json`), Meta{}); err == nil {
		t.Error("garbage accepted")
	}
}
