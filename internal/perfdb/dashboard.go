package perfdb

import (
	"fmt"
	"html"
	"io"
	"math"
	"sort"
	"strings"
)

// The dashboard is one self-contained HTML page: inline CSS, inline SVG
// sparklines rendered server-side, zero external assets and zero
// JavaScript, so the CI-artifact copy opens identically offline. Colors
// follow a validated light/dark token pair (single data series → one
// categorical hue; status colors reserved for regression flags, always
// paired with a text label, never color alone); values wear text tokens,
// the colored mark beside them carries identity.

const (
	sparkW   = 220
	sparkH   = 36
	sparkPad = 3.0
)

// headlineMetrics are the stat-tile row, in display order; only those
// present in the store render.
var headlineMetrics = []string{
	"serve_cold_ns",
	"serve_warm_ns",
	"serve_cache_hit_rate",
	"alloc.total.wall_ns",
	"alloc.total.heap_allocs",
	"rusage.max_rss_bytes",
}

// RenderDashboard writes the dashboard for the server's store; it is
// shared by GET / and the -render flag of cmd/lsra-perfd.
func (s *Server) RenderDashboard(w io.Writer) {
	recs := s.store.Records()
	metrics := s.store.Metrics()
	regs := s.regressions(regressionParams{window: 4, alpha: 0.05, threshold: 0.10})
	regged := map[string][]Regression{}
	for _, r := range regs {
		regged[r.Metric] = append(regged[r.Metric], r)
	}

	var b strings.Builder
	b.WriteString(dashboardHead)

	// Header.
	span := "no runs yet — POST /ingest or lsra-perfd -backfill"
	if len(recs) > 0 {
		first, last := recs[0], recs[len(recs)-1]
		span = fmt.Sprintf("%d runs · %s → %s", len(recs),
			first.Time.Format("2006-01-02"), last.Time.Format("2006-01-02"))
		if c := shortCommit(last.Commit); c != "" {
			span += " · latest " + c
		}
	}
	fmt.Fprintf(&b, `<header><h1>lsra perf observatory</h1><p class="sub">%s · %d series</p></header>`,
		html.EscapeString(span), len(metrics))

	// Stat tiles.
	var tiles []string
	for _, name := range headlineMetrics {
		pts := s.store.Series(name)
		if len(pts) == 0 {
			continue
		}
		tiles = append(tiles, s.statTile(name, pts))
	}
	if len(tiles) > 0 {
		b.WriteString(`<section class="tiles">`)
		for _, t := range tiles {
			b.WriteString(t)
		}
		b.WriteString(`</section>`)
	}

	// Regression flags.
	b.WriteString(`<section><h2>Changepoints</h2>`)
	if len(regs) == 0 {
		b.WriteString(`<p class="sub">No changepoints flagged (Mann-Whitney, window 4, α 0.05, threshold 10%). Short series — fewer than 8 points — cannot reach significance yet.</p>`)
	} else {
		b.WriteString(`<table><thead><tr><th>metric</th><th>at</th><th class="num">before</th><th class="num">after</th><th class="num">Δ</th><th class="num">p</th></tr></thead><tbody>`)
		for _, r := range regs {
			delta := fmt.Sprintf("%+.1f%%", 100*r.Delta)
			if r.FromZero {
				delta = "from zero"
			}
			fmt.Fprintf(&b,
				`<tr><td>%s</td><td>%s %s</td><td class="num">%s</td><td class="num">%s</td><td class="num"><span class="flag">⚠ %s</span></td><td class="num">%.3f</td></tr>`,
				html.EscapeString(r.Metric),
				html.EscapeString(shortCommit(r.Commit)), r.Time.Format("2006-01-02"),
				fmtValue(r.Metric, r.BeforeMedian), fmtValue(r.Metric, r.AfterMedian),
				html.EscapeString(delta), r.P)
		}
		b.WriteString(`</tbody></table>`)
	}
	b.WriteString(`</section>`)

	// Per-group metric tables with sparklines.
	for _, g := range groupMetrics(metrics) {
		fmt.Fprintf(&b, `<section><h2>%s</h2><table><thead><tr><th>metric</th><th>trend</th><th class="num">latest</th><th class="num">Δ first→last</th><th class="num">n</th></tr></thead><tbody>`,
			html.EscapeString(g.title))
		for _, name := range g.metrics {
			pts := s.store.Series(name)
			if len(pts) == 0 {
				continue
			}
			last := pts[len(pts)-1].Value
			flagged := len(regged[name]) > 0
			rowName := html.EscapeString(name)
			if flagged {
				rowName += ` <span class="flag">⚠</span>`
			}
			fmt.Fprintf(&b, `<tr><td>%s</td><td>%s</td><td class="num">%s</td><td class="num">%s</td><td class="num">%d</td></tr>`,
				rowName,
				sparkline(name, pts, regged[name]),
				fmtValue(name, last),
				deltaSpan(name, pts[0].Value, last),
				len(pts))
		}
		b.WriteString(`</tbody></table></section>`)
	}

	b.WriteString(`<footer class="sub">append-only store · GET /series?metric=… · GET /commits · GET /regressions · POST /ingest</footer></main></body></html>`)
	io.WriteString(w, b.String())
}

// statTile renders one headline tile: label, latest value, delta vs the
// previous run (sign carried by glyph and text, color as reinforcement).
func (s *Server) statTile(name string, pts []Point) string {
	last := pts[len(pts)-1].Value
	delta := ""
	if len(pts) > 1 {
		delta = deltaSpan(name, pts[len(pts)-2].Value, last)
	}
	return fmt.Sprintf(`<div class="tile"><div class="label">%s</div><div class="value">%s</div><div class="delta">%s</div>%s</div>`,
		html.EscapeString(name), fmtValue(name, last), delta, sparkline(name, pts, nil))
}

// deltaSpan renders a relative change with direction-aware good/bad
// coloring: lower is better for every cost metric (ns, bytes, allocs,
// spill); higher is better for speedup and hit-rate.
func deltaSpan(metric string, from, to float64) string {
	if from == to {
		return `<span class="sub">±0%</span>`
	}
	var pct string
	if from == 0 {
		pct = "from zero"
	} else {
		pct = fmt.Sprintf("%+.1f%%", 100*(to-from)/math.Abs(from))
	}
	up := to > from
	glyph := "▼"
	if up {
		glyph = "▲"
	}
	higherIsBetter := strings.Contains(metric, "speedup") || strings.Contains(metric, "hit_rate")
	class := "bad"
	if up == higherIsBetter {
		class = "good"
	}
	return fmt.Sprintf(`<span class="%s">%s %s</span>`, class, glyph, html.EscapeString(pct))
}

// sparkline renders one series as an inline SVG: a 2px polyline, a
// filled endpoint dot, ring markers on flagged changepoints, and an
// invisible ≥8px hover target per point whose <title> is the native
// tooltip (commit · date · value).
func sparkline(metric string, pts []Point, regs []Regression) string {
	if len(pts) == 0 {
		return ""
	}
	lo, hi := pts[0].Value, pts[0].Value
	for _, p := range pts {
		lo, hi = math.Min(lo, p.Value), math.Max(hi, p.Value)
	}
	x := func(i int) float64 {
		if len(pts) == 1 {
			return sparkW / 2
		}
		return sparkPad + float64(i)*(sparkW-2*sparkPad)/float64(len(pts)-1)
	}
	y := func(v float64) float64 {
		if hi == lo {
			return sparkH / 2
		}
		return sparkPad + (hi-v)*(sparkH-2*sparkPad)/(hi-lo)
	}
	flagged := map[int]bool{}
	for _, r := range regs {
		for i, p := range pts {
			if p.Time.Equal(r.Time) && p.Commit == r.Commit {
				flagged[i] = true
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="%s trend">`,
		sparkW, sparkH, sparkW, sparkH, html.EscapeString(metric))
	if len(pts) > 1 {
		var poly strings.Builder
		for i, p := range pts {
			if i > 0 {
				poly.WriteByte(' ')
			}
			fmt.Fprintf(&poly, "%.1f,%.1f", x(i), y(p.Value))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="var(--series-1)" stroke-width="2" stroke-linecap="round" stroke-linejoin="round"/>`, poly.String())
	}
	for i := range pts {
		if flagged[i] {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="none" stroke="var(--critical)" stroke-width="2"/>`, x(i), y(pts[i].Value))
		}
	}
	fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="var(--series-1)"/>`, x(len(pts)-1), y(pts[len(pts)-1].Value))
	// Hover layer: transparent targets bigger than the 2px mark.
	for i, p := range pts {
		label := p.Time.Format("2006-01-02 15:04")
		if c := shortCommit(p.Commit); c != "" {
			label = c + " · " + label
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="8" fill="transparent"><title>%s · %s</title></circle>`,
			x(i), y(p.Value), html.EscapeString(label), fmtValue(metric, p.Value))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// metricGroup is one dashboard section: the metrics sharing a first
// dot-segment (or the flat serve_* family).
type metricGroup struct {
	title   string
	metrics []string
}

// groupOrder pins the narrative: serving headline, then where time goes,
// then what it costs, then what the code quality is.
var groupOrder = []string{"serve", "phase", "alloc", "rusage", "gc", "quality", "sweep"}

func groupMetrics(metrics []MetricInfo) []metricGroup {
	byKey := map[string][]string{}
	for _, mi := range metrics {
		key := mi.Name
		if i := strings.IndexByte(key, '.'); i >= 0 {
			key = key[:i]
		} else if strings.HasPrefix(key, "serve_") {
			key = "serve"
		}
		byKey[key] = append(byKey[key], mi.Name)
	}
	var groups []metricGroup
	seen := map[string]bool{}
	add := func(key string) {
		if names := byKey[key]; len(names) > 0 && !seen[key] {
			seen[key] = true
			sort.Strings(names)
			groups = append(groups, metricGroup{title: key, metrics: names})
		}
	}
	for _, key := range groupOrder {
		add(key)
	}
	var rest []string
	for key := range byKey {
		if !seen[key] {
			rest = append(rest, key)
		}
	}
	sort.Strings(rest)
	for _, key := range rest {
		add(key)
	}
	return groups
}

func shortCommit(c string) string {
	if len(c) > 10 {
		return c[:10]
	}
	return c
}

// fmtValue renders a metric value with a unit inferred from its name:
// nanosecond series as human durations, byte series as binary sizes,
// rates as percentages, everything else as a plain number.
func fmtValue(metric string, v float64) string {
	switch {
	case strings.HasSuffix(metric, "_ns") || strings.HasSuffix(metric, ".ns"):
		return fmtNs(v)
	case strings.HasSuffix(metric, "_bytes"):
		return fmtBytes(v)
	case strings.HasSuffix(metric, "_rate") || strings.HasSuffix(metric, "_pct") || strings.Contains(metric, "spill_pct"):
		if strings.Contains(metric, "rate") {
			return fmt.Sprintf("%.1f%%", 100*v)
		}
		return fmt.Sprintf("%.2f%%", v)
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func fmtNs(ns float64) string {
	abs := math.Abs(ns)
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.2f s", ns/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2f ms", ns/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.1f µs", ns/1e3)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}

func fmtBytes(b float64) string {
	abs := math.Abs(b)
	switch {
	case abs >= 1<<30:
		return fmt.Sprintf("%.2f GiB", b/(1<<30))
	case abs >= 1<<20:
		return fmt.Sprintf("%.1f MiB", b/(1<<20))
	case abs >= 1<<10:
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// dashboardHead is the document shell: color tokens for both modes
// (dark selected from the same ramps, not auto-flipped), recessive
// chrome, tabular figures only where columns must align.
const dashboardHead = `<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>lsra perf observatory</title>
<style>
:root {
  color-scheme: light;
  --page:      #f9f9f7;
  --surface:   #fcfcfb;
  --ink:       #0b0b0b;
  --ink-2:     #52514e;
  --muted:     #898781;
  --grid:      #e1e0d9;
  --border:    rgba(11,11,11,0.10);
  --series-1:  #2a78d6;
  --critical:  #d03b3b;
  --good-text: #006300;
  --bad-text:  #a32c2c;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page:      #0d0d0d;
    --surface:   #1a1a19;
    --ink:       #ffffff;
    --ink-2:     #c3c2b7;
    --muted:     #898781;
    --grid:      #2c2c2a;
    --border:    rgba(255,255,255,0.10);
    --series-1:  #3987e5;
    --critical:  #d03b3b;
    --good-text: #0ca30c;
    --bad-text:  #e66767;
  }
}
* { box-sizing: border-box; }
body { margin: 0; background: var(--page); color: var(--ink);
       font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 980px; margin: 0 auto; padding: 24px 20px 48px; }
header h1 { font-size: 20px; margin: 0 0 2px; }
.sub { color: var(--ink-2); font-size: 13px; margin: 0; }
section { margin-top: 28px; }
h2 { font-size: 15px; margin: 0 0 10px; color: var(--ink); }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-top: 20px; }
.tile { background: var(--surface); border: 1px solid var(--border); border-radius: 8px;
        padding: 12px 14px 8px; min-width: 200px; flex: 1 1 200px; }
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 24px; margin: 2px 0; }
.tile .delta { font-size: 12px; min-height: 1.2em; }
table { width: 100%; border-collapse: collapse; background: var(--surface);
        border: 1px solid var(--border); border-radius: 8px; overflow: hidden; }
th, td { text-align: left; padding: 6px 10px; border-bottom: 1px solid var(--grid);
         font-size: 13px; vertical-align: middle; }
th { color: var(--muted); font-weight: 500; }
tbody tr:last-child td { border-bottom: none; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.spark { display: block; }
.good { color: var(--good-text); }
.bad { color: var(--bad-text); }
.flag { color: var(--critical); font-weight: 600; }
footer { margin-top: 36px; }
</style></head><body><main>
`
