package perfdb

import "runtime/metrics"

// Resources is a point-in-time resource snapshot of the bench process:
// OS-level accounting from getrusage (max RSS, user/system CPU) plus GC
// accounting from runtime/metrics. Benchmark drivers snapshot before and
// after a section and store the Sub delta, so every stored point
// attributes cost to a phase *and* a resource — a regression that moves
// sys_cpu_ns but not user_cpu_ns reads very differently from one that
// moves gc_cpu_ns.
type Resources struct {
	// MaxRSSBytes is the process high-water resident set size. It is a
	// monotone high-water mark, not a rate: Sub keeps the endpoint value
	// rather than differencing it.
	MaxRSSBytes int64 `json:"max_rss_bytes"`
	// UserCPUNs and SysCPUNs are cumulative CPU time in user and kernel
	// mode (all threads).
	UserCPUNs int64 `json:"user_cpu_ns"`
	SysCPUNs  int64 `json:"sys_cpu_ns"`
	// GCCycles is the cumulative completed GC cycle count
	// (/gc/cycles/total); GCCPUNs the estimated cumulative CPU spent in
	// GC (/cpu/classes/gc/total); HeapAllocBytes the cumulative bytes
	// allocated on the heap (/gc/heap/allocs), frees not subtracted.
	GCCycles       uint64 `json:"gc_cycles"`
	GCCPUNs        int64  `json:"gc_cpu_ns"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
}

// gcSampleNames are read in one metrics.Read batch; all three exist
// since go1.20, but each is still guarded against KindBad so a runtime
// that drops one degrades to zero instead of panicking.
var gcSampleNames = []string{
	"/gc/cycles/total:gc-cycles",
	"/cpu/classes/gc/total:cpu-seconds",
	"/gc/heap/allocs:bytes",
}

// ReadResources snapshots the current process. The rusage half is
// platform-gated (rusage_unix.go); elsewhere those fields stay zero and
// the GC half still works.
func ReadResources() Resources {
	var r Resources
	readRusage(&r)
	samples := make([]metrics.Sample, len(gcSampleNames))
	for i, name := range gcSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindUint64 {
		r.GCCycles = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindFloat64 {
		r.GCCPUNs = int64(samples[1].Value.Float64() * 1e9)
	}
	if samples[2].Value.Kind() == metrics.KindUint64 {
		r.HeapAllocBytes = samples[2].Value.Uint64()
	}
	return r
}

// Sub returns the delta from start to r for the cumulative counters;
// MaxRSSBytes keeps r's value, because a high-water mark has no
// meaningful difference (the peak may predate start).
func (r Resources) Sub(start Resources) Resources {
	return Resources{
		MaxRSSBytes:    r.MaxRSSBytes,
		UserCPUNs:      r.UserCPUNs - start.UserCPUNs,
		SysCPUNs:       r.SysCPUNs - start.SysCPUNs,
		GCCycles:       r.GCCycles - start.GCCycles,
		GCCPUNs:        r.GCCPUNs - start.GCCPUNs,
		HeapAllocBytes: r.HeapAllocBytes - start.HeapAllocBytes,
	}
}
