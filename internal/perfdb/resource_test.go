package perfdb

import (
	"runtime"
	"testing"
)

// TestReadResources pins the resource-attribution contract on unix: a
// live process has a nonzero resident set and accumulates user CPU, and
// deltas behave (cumulative counters difference, the RSS high-water mark
// carries through).
func TestReadResources(t *testing.T) {
	start := ReadResources()
	if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
		if start.MaxRSSBytes <= 0 {
			t.Errorf("MaxRSSBytes = %d, want > 0", start.MaxRSSBytes)
		}
		// A test process has spent *some* CPU by the time it runs this.
		if start.UserCPUNs <= 0 && start.SysCPUNs <= 0 {
			t.Errorf("cpu time zero: user=%d sys=%d", start.UserCPUNs, start.SysCPUNs)
		}
	}
	if start.HeapAllocBytes == 0 {
		t.Error("HeapAllocBytes = 0; runtime/metrics read failed")
	}

	// Allocate enough to move the cumulative heap counter, then check
	// the delta arithmetic.
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 1<<16)
	}
	runtime.KeepAlive(sink)
	end := ReadResources()
	d := end.Sub(start)
	if d.HeapAllocBytes < 64*(1<<16) {
		t.Errorf("heap delta = %d, want >= %d", d.HeapAllocBytes, 64*(1<<16))
	}
	if d.MaxRSSBytes != end.MaxRSSBytes {
		t.Errorf("Sub must keep the RSS high-water mark: %d != %d", d.MaxRSSBytes, end.MaxRSSBytes)
	}
	if d.UserCPUNs < 0 || d.SysCPUNs < 0 || d.GCCPUNs < 0 {
		t.Errorf("negative cpu delta: %+v", d)
	}
}
