// Package coloring implements the graph-coloring register allocator the
// paper measures second-chance binpacking against: George and Appel's
// iterated register coalescing (TOPLAS 1996), in the Chaitin–Briggs
// tradition, with the two implementation choices §3 of the paper
// describes:
//
//   - the interference adjacency relation is a lower-triangular bit
//     matrix rather than a hash table, and
//   - liveness is computed once, before allocation, not once per round:
//     spill temporaries are live only within a single block, so global
//     liveness is unaffected by spill-code insertion.
//
// As in the paper, the integer and floating-point files are colored as
// two independent problems ("with coloring, the non-linear costs ... make
// it more efficient to solve the two smaller problems separately").
package coloring

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/alloc"
	"repro/internal/bitset"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/target"
)

// Allocator is the iterated-register-coalescing allocator.
type Allocator struct {
	mach *target.Machine
	// MaxRounds bounds build/color iterations (default 32).
	MaxRounds int

	profileAllocs bool
}

// SetPhaseProfile toggles heap-allocation sampling at phase boundaries;
// the engine calls it on pooled instances under WithPhaseProfile.
func (a *Allocator) SetPhaseProfile(on bool) { a.profileAllocs = on }

// New returns a coloring allocator for the machine.
func New(m *target.Machine) *Allocator { return &Allocator{mach: m, MaxRounds: 32} }

func init() {
	alloc.MustRegister("coloring", func(m *target.Machine) alloc.Allocator { return New(m) })
}

// Name identifies the allocator in reports.
func (a *Allocator) Name() string { return "graph coloring (George-Appel)" }

var _ alloc.Allocator = (*Allocator)(nil)

// Allocate clones p, colors both register files, rewrites the clone and
// returns it with statistics.
func (a *Allocator) Allocate(orig *ir.Proc) (*alloc.Result, error) {
	return a.AllocateOwned(orig.Clone())
}

// AllocateOwned colors a procedure the caller owns: p is rewritten in
// place and must not be used afterwards.
func (a *Allocator) AllocateOwned(p *ir.Proc) (*alloc.Result, error) {
	res := &alloc.Result{Proc: p}
	tm := alloc.NewTimer(a.profileAllocs)
	p.Renumber()
	tm.Mark(&res.Stats, alloc.PhaseOther)
	cfg.ComputeLoopDepths(p)
	tm.Mark(&res.Stats, alloc.PhaseCFG)
	lv := dataflow.Compute(p)
	tm.Mark(&res.Stats, alloc.PhaseDataflow)

	start := time.Now()
	res.Stats.Candidates = p.NumTemps()

	frame := alloc.NewFrame(p)
	usedCallee := make([]bool, a.mach.NumRegs())
	for c := target.Class(0); c < target.NumClasses; c++ {
		g := &colorer{
			mach: a.mach, class: c, proc: p, lv: lv, frame: frame,
			maxRounds: a.MaxRounds,
		}
		if err := g.run(); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name(), p.Name, err)
		}
		res.Stats.InterferenceEdges += g.totalEdges
		res.Stats.Rounds += g.rounds
		for r := range g.usedCallee {
			usedCallee[r] = true
		}
	}
	tm.Mark(&res.Stats, alloc.PhaseScan)
	res.Stats.UsedCalleeSaved = alloc.InsertCalleeSaves(p, a.mach, usedCallee)
	res.Stats.AllocTime = time.Since(start)
	res.Stats.SpilledTemps = frame.NumSpilled()
	p.Renumber()
	res.Stats.Inserted = alloc.CountInserted(p)
	if err := alloc.CheckNoTemps(p); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name(), err)
	}
	tm.Mark(&res.Stats, alloc.PhaseOther)
	return res, nil
}

// colorer colors one register file of one procedure.
type colorer struct {
	mach  *target.Machine
	class target.Class
	proc  *ir.Proc
	lv    *dataflow.Liveness
	frame *alloc.Frame

	maxRounds  int
	rounds     int
	totalEdges int
	usedCallee map[target.Reg]bool

	// replaced marks temporaries eliminated by spill rewriting. Liveness
	// is computed once (per the paper), so the stale live-out sets still
	// name them; build skips them because they no longer exist in the
	// code.
	replaced []bool

	// Node space: 0..K-1 are the allocatable registers of the class
	// (precolored), K.. are this class's temporaries.
	k       int
	regs    []target.Reg // node -> machine register (precolored nodes)
	tempOf  []ir.Temp    // node -> temp (temp nodes)
	nodeOf  []int32      // temp -> node or -1
	n       int          // total nodes
	noSpill []bool       // per temp: spill temporaries are not respilled

	// George-Appel state (rebuilt every round).
	adj       *bitset.Matrix
	adjList   [][]int32
	degree    []int32
	moveList  [][]int32
	alias     []int32
	color     []int32 // node -> color index into allocOrder, -1 = none
	state     []nodeState
	costs     []float64
	selectSt  []int32
	simplify  []int32 // worklists as stacks/sets with state tags
	freezeWl  map[int32]bool
	spillWl   map[int32]bool
	spilled   []int32
	coalesced []int32

	// Moves: mv[i] identifies one move instruction.
	mvSrc, mvDst []int32
	mvState      []moveState
	worklistMv   []int32
	activeMv     map[int32]bool
}

type nodeState uint8

const (
	stInitial nodeState = iota
	stPrecolored
	stSimplifyWl
	stFreezeWl
	stSpillWl
	stSpilled
	stCoalesced
	stColored
	stSelectStack
)

type moveState uint8

const (
	mvWorklist moveState = iota
	mvActive
	mvCoalesced
	mvConstrained
	mvFrozen
)

const inf = int32(math.MaxInt32 / 2)

func (g *colorer) run() error {
	g.usedCallee = make(map[target.Reg]bool)
	g.noSpill = make([]bool, g.proc.NumTemps())
	g.replaced = make([]bool, g.proc.NumTemps())
	for {
		g.rounds++
		if g.rounds > g.maxRounds {
			return fmt.Errorf("coloring did not converge after %d rounds", g.maxRounds)
		}
		g.initRound()
		g.build()
		g.totalEdges += g.adj.Count()
		g.mkWorklists()
		for {
			switch {
			case len(g.simplify) > 0:
				g.doSimplify()
			case len(g.worklistMv) > 0:
				g.doCoalesce()
			case len(g.freezeWl) > 0:
				g.doFreeze()
			case len(g.spillWl) > 0:
				g.selectSpill()
			default:
				goto assign
			}
		}
	assign:
		g.assignColors()
		if len(g.spilled) == 0 {
			g.applyColors()
			return nil
		}
		g.insertSpills()
	}
}

func (g *colorer) initRound() {
	order := g.mach.AllocOrder(g.class)
	g.k = len(order)
	g.regs = order
	nt := g.proc.NumTemps()
	g.nodeOf = make([]int32, nt)
	g.tempOf = g.tempOf[:0]
	for t := 0; t < nt; t++ {
		g.nodeOf[t] = -1
		if g.proc.TempClass(ir.Temp(t)) == g.class {
			g.nodeOf[t] = int32(g.k + len(g.tempOf))
			g.tempOf = append(g.tempOf, ir.Temp(t))
		}
	}
	g.n = g.k + len(g.tempOf)

	g.adj = bitset.NewMatrix(g.n)
	g.adjList = make([][]int32, g.n)
	g.degree = make([]int32, g.n)
	g.moveList = make([][]int32, g.n)
	g.alias = make([]int32, g.n)
	g.color = make([]int32, g.n)
	g.state = make([]nodeState, g.n)
	g.costs = make([]float64, g.n)
	g.selectSt = g.selectSt[:0]
	g.simplify = g.simplify[:0]
	g.freezeWl = make(map[int32]bool)
	g.spillWl = make(map[int32]bool)
	g.spilled = g.spilled[:0]
	g.coalesced = g.coalesced[:0]
	g.mvSrc = g.mvSrc[:0]
	g.mvDst = g.mvDst[:0]
	g.mvState = g.mvState[:0]
	g.worklistMv = g.worklistMv[:0]
	g.activeMv = make(map[int32]bool)

	for i := 0; i < g.n; i++ {
		g.alias[i] = int32(i)
		g.color[i] = -1
		if i < g.k {
			g.state[i] = stPrecolored
			g.degree[i] = inf
			g.color[i] = int32(i)
		}
	}
}

// nodeForOperand maps an operand to a node of this class, or -1.
func (g *colorer) nodeForOperand(o ir.Operand) int32 {
	switch o.Kind {
	case ir.KindTemp:
		if int(o.Temp) < len(g.nodeOf) {
			return g.nodeOf[o.Temp]
		}
	case ir.KindReg:
		if g.mach.RegClass(o.Reg) == g.class && g.mach.Allocatable(o.Reg) {
			for i, r := range g.regs {
				if r == o.Reg {
					return int32(i)
				}
			}
		}
	}
	return -1
}

// build constructs the interference graph and the move worklist with one
// backward pass per block, seeding liveness from the precomputed
// per-block live-out sets (only cross-block temporaries appear there;
// everything else, including spill temporaries from earlier rounds, is
// handled by the in-block scan).
func (g *colorer) build() {
	live := make(map[int32]bool, 64)
	var defs, uses, liveKeys []int32
	callerSaved := g.mach.CallerSavedRegs(g.class)

	for bi := len(g.proc.Blocks) - 1; bi >= 0; bi-- {
		b := g.proc.Blocks[bi]
		for k := range live {
			delete(live, k)
		}
		g.lv.LiveOut[b.Order].ForEach(func(gi int) {
			t := g.lv.Globals[gi]
			if int(t) < len(g.replaced) && g.replaced[t] {
				return
			}
			if nd := g.nodeOf[t]; nd >= 0 {
				live[nd] = true
			}
		})
		weight := math.Pow(10, float64(min(b.Depth, 8)))
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			defs, uses = defs[:0], uses[:0]
			for _, o := range in.Defs {
				if nd := g.nodeForOperand(o); nd >= 0 {
					defs = append(defs, nd)
				}
			}
			for _, o := range in.Uses {
				if nd := g.nodeForOperand(o); nd >= 0 {
					uses = append(uses, nd)
				}
			}
			if in.Op == ir.Call {
				// A call defines every caller-saved register: values
				// live across it must take callee-saved colors.
				for _, r := range callerSaved {
					if nd := g.nodeForOperand(ir.RegOp(r)); nd >= 0 {
						defs = append(defs, nd)
					}
				}
			}
			for _, nd := range defs {
				g.costs[nd] += weight
			}
			for _, nd := range uses {
				g.costs[nd] += weight
			}
			if in.Op.IsMove() && len(uses) == 1 && len(defs) == 1 {
				// Move: source does not interfere with destination.
				delete(live, uses[0])
				m := int32(len(g.mvSrc))
				g.mvSrc = append(g.mvSrc, uses[0])
				g.mvDst = append(g.mvDst, defs[0])
				g.mvState = append(g.mvState, mvWorklist)
				g.worklistMv = append(g.worklistMv, m)
				g.moveList[uses[0]] = append(g.moveList[uses[0]], m)
				if defs[0] != uses[0] {
					g.moveList[defs[0]] = append(g.moveList[defs[0]], m)
				}
			}
			for _, d := range defs {
				live[d] = true
			}
			// Materialize the live set in sorted order so the adjacency
			// lists — and therefore worklist evolution and color choice —
			// do not depend on map iteration order: allocation must be a
			// deterministic function of its input.
			liveKeys = liveKeys[:0]
			for l := range live {
				liveKeys = append(liveKeys, l)
			}
			slices.Sort(liveKeys)
			for _, d := range defs {
				for _, l := range liveKeys {
					g.addEdge(l, d)
				}
			}
			for _, d := range defs {
				delete(live, d)
			}
			for _, u := range uses {
				live[u] = true
			}
		}
	}
}

func (g *colorer) addEdge(u, v int32) {
	if u == v || g.adj.Has(int(u), int(v)) {
		return
	}
	g.adj.Set(int(u), int(v))
	if g.state[u] != stPrecolored {
		g.adjList[u] = append(g.adjList[u], v)
		g.degree[u]++
	}
	if g.state[v] != stPrecolored {
		g.adjList[v] = append(g.adjList[v], u)
		g.degree[v]++
	}
}

func (g *colorer) mkWorklists() {
	for nd := int32(g.k); nd < int32(g.n); nd++ {
		switch {
		case g.degree[nd] >= int32(g.k):
			g.state[nd] = stSpillWl
			g.spillWl[nd] = true
		case g.moveRelated(nd):
			g.state[nd] = stFreezeWl
			g.freezeWl[nd] = true
		default:
			g.state[nd] = stSimplifyWl
			g.simplify = append(g.simplify, nd)
		}
	}
}

func (g *colorer) nodeMoves(nd int32) []int32 {
	var out []int32
	for _, m := range g.moveList[nd] {
		if g.mvState[m] == mvActive || g.mvState[m] == mvWorklist {
			out = append(out, m)
		}
	}
	return out
}

func (g *colorer) moveRelated(nd int32) bool {
	for _, m := range g.moveList[nd] {
		if g.mvState[m] == mvActive || g.mvState[m] == mvWorklist {
			return true
		}
	}
	return false
}

// adjacent yields current neighbors: adjList minus select stack and
// coalesced nodes.
func (g *colorer) adjacent(nd int32, f func(int32)) {
	for _, w := range g.adjList[nd] {
		if g.state[w] != stSelectStack && g.state[w] != stCoalesced {
			f(w)
		}
	}
}

func (g *colorer) doSimplify() {
	nd := g.simplify[len(g.simplify)-1]
	g.simplify = g.simplify[:len(g.simplify)-1]
	if g.state[nd] != stSimplifyWl {
		return // stale entry: the node was coalesced or moved since
	}
	g.state[nd] = stSelectStack
	g.selectSt = append(g.selectSt, nd)
	g.adjacent(nd, func(w int32) { g.decrementDegree(w) })
}

func (g *colorer) decrementDegree(nd int32) {
	if g.state[nd] == stPrecolored {
		return
	}
	d := g.degree[nd]
	g.degree[nd] = d - 1
	if d == int32(g.k) {
		// nd just became low-degree: its moves (and its neighbors')
		// become retryable.
		g.enableMoves(nd)
		g.adjacent(nd, func(w int32) { g.enableMoves(w) })
		if g.state[nd] == stSpillWl {
			delete(g.spillWl, nd)
			if g.moveRelated(nd) {
				g.state[nd] = stFreezeWl
				g.freezeWl[nd] = true
			} else {
				g.state[nd] = stSimplifyWl
				g.simplify = append(g.simplify, nd)
			}
		}
	}
}

func (g *colorer) enableMoves(nd int32) {
	for _, m := range g.moveList[nd] {
		if g.mvState[m] == mvActive {
			g.mvState[m] = mvWorklist
			delete(g.activeMv, m)
			g.worklistMv = append(g.worklistMv, m)
		}
	}
}

func (g *colorer) getAlias(nd int32) int32 {
	for g.state[nd] == stCoalesced {
		nd = g.alias[nd]
	}
	return nd
}

func (g *colorer) addWorkList(nd int32) {
	if g.state[nd] != stPrecolored && !g.moveRelated(nd) && g.degree[nd] < int32(g.k) {
		if g.state[nd] == stFreezeWl {
			delete(g.freezeWl, nd)
		}
		g.state[nd] = stSimplifyWl
		g.simplify = append(g.simplify, nd)
	}
}

// ok is George's test for coalescing with a precolored node.
func (g *colorer) ok(t, r int32) bool {
	return g.degree[t] < int32(g.k) || g.state[t] == stPrecolored || g.adj.Has(int(t), int(r))
}

// conservative is Briggs's test.
func (g *colorer) conservative(u, v int32) bool {
	cnt := 0
	seen := map[int32]bool{}
	count := func(w int32) {
		if !seen[w] {
			seen[w] = true
			if g.degree[w] >= int32(g.k) {
				cnt++
			}
		}
	}
	g.adjacent(u, count)
	g.adjacent(v, count)
	return cnt < g.k
}

func (g *colorer) doCoalesce() {
	m := g.worklistMv[len(g.worklistMv)-1]
	g.worklistMv = g.worklistMv[:len(g.worklistMv)-1]
	if g.mvState[m] != mvWorklist {
		return
	}
	x := g.getAlias(g.mvSrc[m])
	y := g.getAlias(g.mvDst[m])
	u, v := x, y
	if g.state[y] == stPrecolored {
		u, v = y, x
	}
	switch {
	case u == v:
		g.mvState[m] = mvCoalesced
		g.addWorkList(u)
	case g.state[v] == stPrecolored || g.adj.Has(int(u), int(v)):
		g.mvState[m] = mvConstrained
		g.addWorkList(u)
		g.addWorkList(v)
	case (g.state[u] == stPrecolored && g.allAdjOK(v, u)) ||
		(g.state[u] != stPrecolored && g.conservative(u, v)):
		g.mvState[m] = mvCoalesced
		g.combine(u, v)
		g.addWorkList(u)
	default:
		g.mvState[m] = mvActive
		g.activeMv[m] = true
	}
}

func (g *colorer) allAdjOK(v, u int32) bool {
	ok := true
	g.adjacent(v, func(t int32) {
		if !g.ok(t, u) {
			ok = false
		}
	})
	return ok
}

func (g *colorer) combine(u, v int32) {
	switch g.state[v] {
	case stFreezeWl:
		delete(g.freezeWl, v)
	case stSpillWl:
		delete(g.spillWl, v)
	}
	g.state[v] = stCoalesced
	g.coalesced = append(g.coalesced, v)
	g.alias[v] = u
	g.moveList[u] = append(g.moveList[u], g.moveList[v]...)
	g.costs[u] += g.costs[v]
	g.adjacent(v, func(t int32) {
		g.addEdge(t, u)
		g.decrementDegree(t)
	})
	if g.degree[u] >= int32(g.k) && g.state[u] == stFreezeWl {
		delete(g.freezeWl, u)
		g.state[u] = stSpillWl
		g.spillWl[u] = true
	}
}

func (g *colorer) doFreeze() {
	// Freeze the lowest-numbered candidate rather than an arbitrary map
	// element, keeping the whole allocation deterministic.
	var nd int32 = -1
	for w := range g.freezeWl {
		if nd < 0 || w < nd {
			nd = w
		}
	}
	delete(g.freezeWl, nd)
	g.state[nd] = stSimplifyWl
	g.simplify = append(g.simplify, nd)
	g.freezeMoves(nd)
}

func (g *colorer) freezeMoves(u int32) {
	for _, m := range g.nodeMoves(u) {
		x, y := g.mvSrc[m], g.mvDst[m]
		v := g.getAlias(y)
		if v == g.getAlias(u) {
			v = g.getAlias(x)
		}
		if g.mvState[m] == mvActive {
			delete(g.activeMv, m)
		}
		g.mvState[m] = mvFrozen
		if g.state[v] == stFreezeWl && !g.moveRelated(v) && g.degree[v] < int32(g.k) {
			delete(g.freezeWl, v)
			g.state[v] = stSimplifyWl
			g.simplify = append(g.simplify, v)
		}
	}
}

// selectSpill picks the cheapest spill candidate: occurrence weight
// divided by current degree (the classic Chaitin metric the paper's
// experimental setup uses, with loop-depth-weighted occurrence counts).
// Spill temporaries from earlier rounds are avoided.
func (g *colorer) selectSpill() {
	var best int32 = -1
	bestCost := math.Inf(1)
	bestNoSpill := true
	for nd := range g.spillWl {
		t := g.tempOf[nd-int32(g.k)]
		ns := g.noSpill[t]
		cost := g.costs[nd] / float64(g.degree[nd])
		// Break exact-cost ties by node id so the choice does not
		// depend on map iteration order.
		if (bestNoSpill && !ns) ||
			(ns == bestNoSpill && (cost < bestCost || (cost == bestCost && (best < 0 || nd < best)))) {
			best, bestCost, bestNoSpill = nd, cost, ns
		}
	}
	delete(g.spillWl, best)
	g.state[best] = stSimplifyWl
	g.simplify = append(g.simplify, best)
	g.freezeMoves(best)
}

func (g *colorer) assignColors() {
	taken := make([]bool, g.k)
	for len(g.selectSt) > 0 {
		nd := g.selectSt[len(g.selectSt)-1]
		g.selectSt = g.selectSt[:len(g.selectSt)-1]
		for i := range taken {
			taken[i] = false
		}
		for _, w := range g.adjList[nd] {
			wa := g.getAlias(w)
			if g.state[wa] == stColored || g.state[wa] == stPrecolored {
				taken[g.color[wa]] = true
			}
		}
		picked := int32(-1)
		for i := 0; i < g.k; i++ {
			if !taken[i] {
				picked = int32(i)
				break
			}
		}
		if picked < 0 {
			g.state[nd] = stSpilled
			g.spilled = append(g.spilled, nd)
			continue
		}
		g.state[nd] = stColored
		g.color[nd] = picked
	}
	for _, v := range g.coalesced {
		a := g.getAlias(v)
		if g.state[a] == stColored || g.state[a] == stPrecolored {
			g.state[v] = stColored
			g.color[v] = g.color[a]
		} else {
			// Alias spilled: the coalesced node spills with it.
			g.state[v] = stSpilled
			g.spilled = append(g.spilled, v)
		}
	}
}

// insertSpills rewrites each spilled temporary with a fresh temporary per
// reference plus a load before each use and a store after each def (the
// classic spill-everywhere rewrite; the new temporaries are block-local).
func (g *colorer) insertSpills() {
	spilledTemp := make(map[ir.Temp]bool, len(g.spilled))
	for _, nd := range g.spilled {
		t := g.tempOf[nd-int32(g.k)]
		spilledTemp[t] = true
		g.replaced[t] = true
	}
	for _, b := range g.proc.Blocks {
		out := make([]ir.Instr, 0, len(b.Instrs))
		for i := range b.Instrs {
			in := b.Instrs[i]
			fresh := map[ir.Temp]ir.Temp{}
			repl := func(t ir.Temp) ir.Temp {
				nt, ok := fresh[t]
				if !ok {
					nt = g.proc.NewTemp(g.proc.TempClass(t), g.proc.TempName(t)+".s")
					g.noSpill = append(g.noSpill, true)
					g.replaced = append(g.replaced, false)
					fresh[t] = nt
				}
				return nt
			}
			var post []ir.Instr
			clonedUses := false
			for ui := range in.Uses {
				o := in.Uses[ui]
				if o.Kind != ir.KindTemp || !spilledTemp[o.Temp] {
					continue
				}
				_, already := fresh[o.Temp]
				nt := repl(o.Temp)
				if !already {
					// One load per spilled temp per instruction, even
					// with repeated uses.
					out = append(out, ir.Instr{
						Op:   ir.SpillLd,
						Tag:  ir.TagScanLoad,
						Pos:  in.Pos,
						Defs: []ir.Operand{ir.TempOp(nt)},
						Uses: []ir.Operand{ir.SlotOp(g.frame.SlotOf(o.Temp), o.Temp)},
					})
				}
				if !clonedUses {
					in.Uses = append([]ir.Operand(nil), in.Uses...)
					clonedUses = true
				}
				in.Uses[ui] = ir.TempOp(nt)
			}
			clonedDefs := false
			for di := range in.Defs {
				o := in.Defs[di]
				if o.Kind != ir.KindTemp || !spilledTemp[o.Temp] {
					continue
				}
				// A def reuses the use's fresh temp within the same
				// instruction (read-modify-write) but still stores.
				nt := repl(o.Temp)
				if !clonedDefs {
					in.Defs = append([]ir.Operand(nil), in.Defs...)
					clonedDefs = true
				}
				in.Defs[di] = ir.TempOp(nt)
				post = append(post, ir.Instr{
					Op:   ir.SpillSt,
					Tag:  ir.TagScanStore,
					Pos:  in.Pos,
					Uses: []ir.Operand{ir.TempOp(nt), ir.SlotOp(g.frame.SlotOf(o.Temp), o.Temp)},
				})
			}
			out = append(out, in)
			out = append(out, post...)
		}
		b.Instrs = out
	}
}

// applyColors rewrites temp operands of this class to their registers and
// deletes moves that coalescing made redundant.
func (g *colorer) applyColors() {
	for _, b := range g.proc.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			rewrote := false
			for ui := range in.Uses {
				o := in.Uses[ui]
				if o.Kind != ir.KindTemp || g.nodeOf[o.Temp] < 0 {
					continue
				}
				if !rewrote {
					in.Uses = append([]ir.Operand(nil), in.Uses...)
					if in.OrigUses == nil {
						in.OrigUses = make([]ir.Temp, len(in.Uses))
						for k := range in.OrigUses {
							in.OrigUses[k] = ir.NoTemp
						}
					}
				}
				rewrote = true
				in.Uses[ui] = ir.RegOp(g.regOfNode(g.nodeOf[o.Temp]))
				in.OrigUses[ui] = o.Temp
			}
			rewroteDef := false
			for di := range in.Defs {
				o := in.Defs[di]
				if o.Kind != ir.KindTemp || g.nodeOf[o.Temp] < 0 {
					continue
				}
				if !rewroteDef {
					in.Defs = append([]ir.Operand(nil), in.Defs...)
					if in.OrigDefs == nil {
						in.OrigDefs = make([]ir.Temp, len(in.Defs))
						for k := range in.OrigDefs {
							in.OrigDefs[k] = ir.NoTemp
						}
					}
				}
				rewroteDef = true
				in.Defs[di] = ir.RegOp(g.regOfNode(g.nodeOf[o.Temp]))
				in.OrigDefs[di] = o.Temp
			}
			// Coalesced moves are now self-moves. The peephole pass that
			// follows allocation in the experimental pipeline (§3)
			// deletes them; they are kept here so the verifier still
			// sees the definition point each one represents.
			out = append(out, in)
		}
		b.Instrs = out
	}
}

func (g *colorer) regOfNode(nd int32) target.Reg {
	a := g.getAlias(nd)
	c := g.color[a]
	if c < 0 {
		panic(fmt.Sprintf("coloring: node %d (temp %s) has no color",
			nd, g.proc.TempName(g.tempOf[nd-int32(g.k)])))
	}
	r := g.regs[c]
	if !g.mach.CallerSaved(r) {
		g.usedCallee[r] = true
	}
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
