package coloring

import (
	"bytes"
	"testing"

	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/target"
	"repro/internal/vm"
)

// buildTestProg mirrors the core package's smoke workload: a loop with a
// diamond, a call, and a configurable number of accumulators, printing a
// checksum.
func buildTestProg(mach *target.Machine, accs int, iters int64) *ir.Program {
	b := ir.NewBuilder(mach, 64)
	pb := b.NewProc("main")

	n := pb.IntTemp("n")
	i := pb.IntTemp("i")
	pb.Ldi(n, iters)
	pb.Ldi(i, 0)
	sums := make([]ir.Temp, accs)
	for k := range sums {
		sums[k] = pb.IntTemp("")
		pb.Ldi(sums[k], int64(k))
	}

	head := pb.Block("head")
	body := pb.Block("body")
	then := pb.Block("then")
	els := pb.Block("els")
	join := pb.Block("join")
	exit := pb.Block("exit")

	pb.Jmp(head)

	pb.StartBlock(head)
	c := pb.IntTemp("c")
	pb.Op2(ir.CmpLT, c, ir.TempOp(i), ir.TempOp(n))
	pb.Br(ir.TempOp(c), body, exit)

	pb.StartBlock(body)
	for k := range sums {
		pb.Op2(ir.Add, sums[k], ir.TempOp(sums[k]), ir.TempOp(i))
	}
	parity := pb.IntTemp("parity")
	pb.Op2(ir.And, parity, ir.TempOp(i), ir.ImmOp(1))
	pb.Br(ir.TempOp(parity), then, els)

	pb.StartBlock(then)
	pb.Op2(ir.Add, sums[0], ir.TempOp(sums[0]), ir.ImmOp(7))
	pb.Jmp(join)

	pb.StartBlock(els)
	pb.Op2(ir.Sub, sums[0], ir.TempOp(sums[0]), ir.ImmOp(3))
	pb.Jmp(join)

	pb.StartBlock(join)
	ch := pb.IntTemp("ch")
	pb.Call("getc", ch)
	pb.Op2(ir.Add, sums[0], ir.TempOp(sums[0]), ir.TempOp(ch))
	pb.Op2(ir.Add, i, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(head)

	pb.StartBlock(exit)
	total := pb.IntTemp("total")
	pb.Ldi(total, 0)
	for k := range sums {
		pb.Op2(ir.Xor, total, ir.TempOp(total), ir.TempOp(sums[k]))
		pb.Op2(ir.Add, total, ir.TempOp(total), ir.TempOp(sums[k]))
	}
	pb.Call("puti", ir.NoTemp, ir.TempOp(total))
	pb.Ret(total)
	return b.Prog
}

func TestColoringSmoke(t *testing.T) {
	input := []byte("input bytes for the coloring smoke test....")
	for _, tc := range []struct {
		name string
		mach *target.Machine
		accs int
	}{
		{"alpha_light", target.Alpha(), 4},
		{"alpha_heavy", target.Alpha(), 30},
		{"tiny6_3", target.Tiny(6, 3), 8},
		{"tiny4_2", target.Tiny(4, 2), 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := buildTestProg(tc.mach, tc.accs, 13)
			if err := ir.ValidateProgram(prog, tc.mach); err != nil {
				t.Fatalf("input invalid: %v", err)
			}
			want, err := vm.Run(prog, vm.Config{Mach: tc.mach, Input: input})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			res, err := New(tc.mach).Allocate(prog.Proc("main"))
			if err != nil {
				t.Fatalf("allocate: %v", err)
			}
			opt.Peephole(res.Proc)
			if err := ir.ValidateAllocated(res.Proc, tc.mach); err != nil {
				t.Fatalf("allocated invalid: %v\n%s", err, ir.ProcString(res.Proc))
			}
			allocd := ir.NewProgram(prog.MemWords)
			allocd.AddProc(res.Proc)
			got, err := vm.Run(allocd, vm.Config{Mach: tc.mach, Input: input, Paranoid: true})
			if err != nil {
				pr := &ir.Printer{Mach: tc.mach, Tags: true}
				var sb bytes.Buffer
				pr.WriteProc(&sb, res.Proc)
				t.Fatalf("allocated run: %v\n%s", err, sb.String())
			}
			if !bytes.Equal(want.Output, got.Output) || want.RetValue != got.RetValue {
				pr := &ir.Printer{Mach: tc.mach, Tags: true}
				var sb bytes.Buffer
				pr.WriteProc(&sb, res.Proc)
				t.Fatalf("mismatch: want %q/%d got %q/%d\n%s",
					want.Output, want.RetValue, got.Output, got.RetValue, sb.String())
			}
		})
	}
}

// TestCoalescingRemovesParamMoves checks that iterated coalescing deletes
// the convention moves (the property George/Appel report and the paper
// leans on when explaining the move-count gap in Table 1).
func TestCoalescingRemovesParamMoves(t *testing.T) {
	mach := target.Alpha()
	b := ir.NewBuilder(mach, 16)
	pb := b.NewProc("f", target.ClassInt, target.ClassInt)
	x, y := pb.P.Params[0], pb.P.Params[1]
	z := pb.IntTemp("z")
	pb.Op2(ir.Add, z, ir.TempOp(x), ir.TempOp(y))
	pb.Ret(z)

	res, err := New(mach).Allocate(pb.P)
	if err != nil {
		t.Fatal(err)
	}
	opt.Peephole(res.Proc) // deletes the self-moves coalescing left behind
	moves := 0
	for _, blk := range res.Proc.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op.IsMove() {
				moves++
			}
		}
	}
	if moves != 0 {
		t.Fatalf("expected all convention moves coalesced away, found %d:\n%s",
			moves, ir.ProcString(res.Proc))
	}
}
