package linearscan

import (
	"bytes"
	"testing"

	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/progs"
	"repro/internal/target"
	"repro/internal/verify"
	"repro/internal/vm"
)

func TestPolettoOnRandomPrograms(t *testing.T) {
	for _, mach := range []*target.Machine{target.Alpha(), target.Tiny(8, 5)} {
		for seed := int64(20); seed < 28; seed++ {
			prog := progs.Random(mach, progs.DefaultGen(seed))
			input := []byte("linear-scan-test-input")
			want, err := vm.Run(prog, vm.Config{Mach: mach, Input: input})
			if err != nil {
				t.Fatal(err)
			}
			allocd := ir.NewProgram(prog.MemWords)
			for a, v := range prog.MemInit {
				allocd.SetMem(a, v)
			}
			for _, p := range prog.Procs {
				res, err := New(mach).Allocate(p)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := verify.Verify(res.Proc, mach); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				opt.Peephole(res.Proc)
				allocd.AddProc(res.Proc)
			}
			got, err := vm.Run(allocd, vm.Config{Mach: mach, Input: input, Paranoid: true})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !bytes.Equal(want.Output, got.Output) || want.RetValue != got.RetValue {
				t.Fatalf("seed %d on %s: mismatch", seed, mach.Name)
			}
		}
	}
}

// TestNoHolesExploited distinguishes Poletto linear scan from the
// binpacking allocators: two temporaries whose flat intervals overlap
// must get different registers even when one would fit in the other's
// lifetime hole.
func TestNoHolesExploited(t *testing.T) {
	mach := target.Tiny(8, 3)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	// long: defined, long hole, then redefined and used.
	long := pb.IntTemp("long")
	short := pb.IntTemp("short")
	u := pb.IntTemp("u")
	pb.Ldi(long, 1)
	pb.Op2(ir.Add, u, ir.TempOp(long), ir.ImmOp(0)) // last use before hole
	pb.Ldi(short, 5)                                // short lives inside long's hole
	pb.Op2(ir.Add, u, ir.TempOp(u), ir.TempOp(short))
	pb.Ldi(long, 2) // hole ends (write)
	pb.Op2(ir.Add, u, ir.TempOp(u), ir.TempOp(long))
	pb.Ret(u)

	res, err := New(mach).Allocate(pb.P)
	if err != nil {
		t.Fatal(err)
	}
	// Recover assignments from rewritten operands via OrigUses.
	regOf := map[string]target.Reg{}
	for _, blk := range res.Proc.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			for ui, ot := range in.OrigUses {
				if ot != ir.NoTemp && in.Uses[ui].Kind == ir.KindReg {
					regOf[res.Proc.TempName(ot)] = in.Uses[ui].Reg
				}
			}
		}
	}
	if regOf["long"] == regOf["short"] {
		t.Fatalf("Poletto linear scan must not share a register through a hole: %v", regOf)
	}
}

func TestSuiteUnderLinearScan(t *testing.T) {
	mach := target.Alpha()
	for _, name := range []string{"eqntott", "wc", "sort"} {
		bench := progs.Named(name)
		prog := bench.Build(mach, 1)
		var input []byte
		if bench.Input != nil {
			input = bench.Input(1)
		}
		want, err := vm.Run(prog, vm.Config{Mach: mach, Input: input})
		if err != nil {
			t.Fatal(err)
		}
		allocd := ir.NewProgram(prog.MemWords)
		for a, v := range prog.MemInit {
			allocd.SetMem(a, v)
		}
		for _, p := range prog.Procs {
			res, err := New(mach).Allocate(p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			opt.Peephole(res.Proc)
			allocd.AddProc(res.Proc)
		}
		got, err := vm.Run(allocd, vm.Config{Mach: mach, Input: input, Paranoid: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(want.Output, got.Output) {
			t.Fatalf("%s output mismatch", name)
		}
	}
}
