// Package linearscan implements the original linear-scan allocator of
// Poletto, Engler and Kaashoek's `tcc` system, which §4 of the paper
// describes as related work: "scans a sorted list of the lifetimes and at
// each step considers how many lifetimes are currently active ... When
// there are too many active lifetimes to fit, the longest active lifetime
// is spilled to memory ... No attempt is made to take advantage of
// lifetime holes or to allocate partial lifetimes."
//
// Lifetimes here are flat [start, end] intervals (holes ignored), whole
// lifetimes go to a register or to memory, and references to
// memory-resident temporaries run through reserved scratch registers. An
// interval that spans a call site or a convention reference of a register
// is excluded from that register, which keeps the allocator correct in
// the presence of the calling convention.
package linearscan

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/alloc"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/target"
)

// Allocator is the Poletto-style linear-scan allocator.
type Allocator struct {
	mach          *target.Machine
	profileAllocs bool
}

// SetPhaseProfile toggles heap-allocation sampling at phase boundaries;
// the engine calls it on pooled instances under WithPhaseProfile.
func (a *Allocator) SetPhaseProfile(on bool) { a.profileAllocs = on }

// New returns a linear-scan allocator for the machine.
func New(m *target.Machine) *Allocator { return &Allocator{mach: m} }

func init() {
	alloc.MustRegister("linearscan", func(m *target.Machine) alloc.Allocator { return New(m) })
}

// Name identifies the allocator in reports.
func (a *Allocator) Name() string { return "linear scan (Poletto)" }

var _ alloc.Allocator = (*Allocator)(nil)

type span struct {
	temp       ir.Temp
	start, end int32
	reg        target.Reg
}

// Allocate clones p, assigns whole flat intervals to registers with the
// furthest-end spill heuristic, rewrites, and returns statistics.
func (a *Allocator) Allocate(orig *ir.Proc) (*alloc.Result, error) {
	return a.AllocateOwned(orig.Clone())
}

// AllocateOwned allocates a procedure the caller owns: p is rewritten in
// place and must not be used afterwards.
func (a *Allocator) AllocateOwned(p *ir.Proc) (*alloc.Result, error) {
	res := &alloc.Result{Proc: p}
	tm := alloc.NewTimer(a.profileAllocs)
	p.Renumber()
	tm.Mark(&res.Stats, alloc.PhaseOther)
	cfg.ComputeLoopDepths(p)
	tm.Mark(&res.Stats, alloc.PhaseCFG)
	lv := dataflow.Compute(p)
	tm.Mark(&res.Stats, alloc.PhaseDataflow)

	start := time.Now()
	lt := lifetime.Compute(p, lv)
	rb := lifetime.ComputeRegBusy(p, a.mach)
	tm.Mark(&res.Stats, alloc.PhaseLifetime)

	res.Stats.Candidates = p.NumTemps()

	scratch := alloc.PickScratch(a.mach)
	reserved := map[target.Reg]bool{
		scratch.Int[0]: true, scratch.Int[1]: true,
		scratch.Float[0]: true, scratch.Float[1]: true,
	}

	var spans []*span
	for _, iv := range lt.Intervals {
		if iv.Empty() {
			continue
		}
		spans = append(spans, &span{temp: iv.Temp, start: iv.Start(), end: iv.End(), reg: target.NoReg})
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start < spans[j].start })

	asn := alloc.NewAssignment(p)
	usedCallee := make([]bool, a.mach.NumRegs())

	// One active list per class, sorted by increasing end.
	var active [target.NumClasses][]*span
	expire := func(c target.Class, pos int32) {
		act := active[c]
		i := 0
		for i < len(act) && act[i].end < pos {
			i++
		}
		active[c] = act[i:]
	}
	insertActive := func(c target.Class, s *span) {
		act := active[c]
		i := sort.Search(len(act), func(i int) bool { return act[i].end > s.end })
		act = append(act, nil)
		copy(act[i+1:], act[i:])
		act[i] = s
		active[c] = act
	}

	for _, s := range spans {
		c := p.TempClass(s.temp)
		expire(c, s.start)
		// Pick a free register whose hard constraints permit the whole
		// flat interval.
		inUse := make(map[target.Reg]bool, len(active[c]))
		for _, as := range active[c] {
			if as.reg != target.NoReg {
				inUse[as.reg] = true
			}
		}
		for _, r := range a.mach.AllocOrder(c) {
			if reserved[r] || inUse[r] || !rb.FreeThrough(r, s.start, s.end) {
				continue
			}
			s.reg = r
			break
		}
		if s.reg == target.NoReg {
			// Poletto's heuristic: spill the interval that ends last —
			// the current one, or the active one with the furthest end.
			act := active[c]
			if n := len(act); n > 0 && act[n-1].end > s.end {
				victim := act[n-1]
				if victimFits(rb, victim.reg, s) {
					s.reg = victim.reg
					asn.Reg[victim.temp] = target.NoReg
					victim.reg = target.NoReg
					active[c] = act[:n-1]
				}
			}
		}
		if s.reg != target.NoReg {
			asn.Reg[s.temp] = s.reg
			if !a.mach.CallerSaved(s.reg) {
				usedCallee[s.reg] = true
			}
			insertActive(c, s)
		}
	}

	tm.Mark(&res.Stats, alloc.PhaseScan)
	frame := alloc.NewFrame(p)
	alloc.RewriteAssigned(p, a.mach, asn, frame, scratch, usedCallee)
	tm.Mark(&res.Stats, alloc.PhaseMoves)
	res.Stats.UsedCalleeSaved = alloc.InsertCalleeSaves(p, a.mach, usedCallee)
	res.Stats.AllocTime = time.Since(start)
	res.Stats.SpilledTemps = frame.NumSpilled()
	p.Renumber()
	res.Stats.Inserted = alloc.CountInserted(p)
	if err := alloc.CheckNoTemps(p); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name(), err)
	}
	tm.Mark(&res.Stats, alloc.PhaseOther)
	return res, nil
}

// victimFits reports whether the victim's register may hold the new span
// under the hard constraints.
func victimFits(rb *lifetime.RegBusy, r target.Reg, s *span) bool {
	return r != target.NoReg && rb.FreeThrough(r, s.start, s.end)
}
