package diskcache

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strings"

	regalloc "repro"
	"repro/internal/ir"
	"repro/internal/irbin"
)

// Entry is the wire form of one cached allocation: the disk tier's
// on-disk record and the payload of the cluster's replication endpoints
// (GET /cache/export, POST /cache/seed in internal/serve). The program
// travels in its machine-independent textual form, so no machine
// definition accompanies it; the key already content-addresses machine
// and configuration.
type Entry struct {
	// Key is the content address (regalloc.CacheKey) the entry is
	// stored under.
	Key string `json:"key"`
	// Program is the allocated program printed by a machless
	// ir.Printer ($R<n> register spellings); ir.ParseProgram with a nil
	// machine reads it back.
	Program string `json:"program"`
	// MemInit is the program's initial nonzero memory words, which the
	// textual form does not carry.
	MemInit map[int]int64 `json:"mem_init,omitempty"`
	// Report is the original allocation's report; its PhaseStats are
	// what cost-aware admission prices a future miss at.
	Report *regalloc.Report `json:"report"`
}

// Encode renders one cache entry in wire form.
func Encode(key regalloc.CacheKey, e *regalloc.CachedAllocation) ([]byte, error) {
	if e == nil || e.Program == nil || e.Report == nil {
		return nil, fmt.Errorf("diskcache: encode: incomplete entry")
	}
	var sb strings.Builder
	(&ir.Printer{}).WriteProgram(&sb, e.Program)
	w := Entry{Key: string(key), Program: sb.String(), Report: e.Report}
	if len(e.Program.MemInit) > 0 {
		w.MemInit = e.Program.MemInit
	}
	return json.Marshal(&w)
}

// binaryMagic opens the binary wire form (EncodeBinary). It shares the
// LS* family with the codec ("LSIR") and corpus ("LSCO") magics, and —
// like them — can never be confused with the JSON form, whose first
// byte is '{'.
const binaryMagic = "LSDE"

// EncodeBinary renders one cache entry in the binary wire form:
//
//	"LSDE" | uvarint keyLen | key | irbin frame | JSON report
//
// The program travels as an internal/irbin frame instead of printed
// text, skipping both the printer here and the text parser on decode.
// The frame is self-delimiting, so the report simply occupies the rest
// of the buffer. The frame also carries MemWords and MemInit, which the
// textual form cannot.
func EncodeBinary(key regalloc.CacheKey, e *regalloc.CachedAllocation) ([]byte, error) {
	if e == nil || e.Program == nil || e.Report == nil {
		return nil, fmt.Errorf("diskcache: encode: incomplete entry")
	}
	buf := make([]byte, 0, 1024)
	buf = append(buf, binaryMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = irbin.AppendProgram(buf, e.Program)
	rep, err := json.Marshal(e.Report)
	if err != nil {
		return nil, fmt.Errorf("diskcache: encode report: %w", err)
	}
	return append(buf, rep...), nil
}

// Decode parses a wire-form entry back into a cache key and entry,
// sniffing the format: entries opening with the binary magic decode
// through the binary path, everything else through JSON. One tier can
// therefore hold a mix of both forms — switching Config.Binary never
// invalidates an existing cache directory.
func Decode(data []byte) (regalloc.CacheKey, *regalloc.CachedAllocation, error) {
	if len(data) >= len(binaryMagic) && string(data[:len(binaryMagic)]) == binaryMagic {
		return decodeBinary(data[len(binaryMagic):])
	}
	var w Entry
	if err := json.Unmarshal(data, &w); err != nil {
		return "", nil, fmt.Errorf("diskcache: decode: %w", err)
	}
	return w.Materialize()
}

func decodeBinary(data []byte) (regalloc.CacheKey, *regalloc.CachedAllocation, error) {
	keyLen, n := binary.Uvarint(data)
	if n <= 0 || keyLen == 0 || keyLen > uint64(len(data)-n) {
		return "", nil, fmt.Errorf("diskcache: decode: bad binary key length")
	}
	key := string(data[n : n+int(keyLen)])
	rest := data[n+int(keyLen):]
	// The decoded program aliases data zero-copy; data is this entry's
	// private read buffer and lives exactly as long as the program, so
	// the aliasing is invisible to callers.
	prog, frameLen, err := irbin.NewArena().Decode(rest)
	if err != nil {
		return "", nil, fmt.Errorf("diskcache: decode program: %w", err)
	}
	var rep regalloc.Report
	if err := json.Unmarshal(rest[frameLen:], &rep); err != nil {
		return "", nil, fmt.Errorf("diskcache: decode report: %w", err)
	}
	return regalloc.CacheKey(key), &regalloc.CachedAllocation{Program: prog, Report: &rep}, nil
}

// Materialize turns an already-unmarshalled wire entry into a cache key
// and entry, parsing the program text.
func (w *Entry) Materialize() (regalloc.CacheKey, *regalloc.CachedAllocation, error) {
	if w.Key == "" || w.Report == nil {
		return "", nil, fmt.Errorf("diskcache: decode: missing key or report")
	}
	prog, err := ir.ParseProgramString(w.Program, nil)
	if err != nil {
		return "", nil, fmt.Errorf("diskcache: decode program: %w", err)
	}
	for a, v := range w.MemInit {
		if a >= 0 && a < prog.MemWords {
			prog.MemInit[a] = v
		}
	}
	return regalloc.CacheKey(w.Key), &regalloc.CachedAllocation{Program: prog, Report: w.Report}, nil
}
