package diskcache

import (
	"encoding/json"
	"fmt"
	"strings"

	regalloc "repro"
	"repro/internal/ir"
)

// Entry is the wire form of one cached allocation: the disk tier's
// on-disk record and the payload of the cluster's replication endpoints
// (GET /cache/export, POST /cache/seed in internal/serve). The program
// travels in its machine-independent textual form, so no machine
// definition accompanies it; the key already content-addresses machine
// and configuration.
type Entry struct {
	// Key is the content address (regalloc.CacheKey) the entry is
	// stored under.
	Key string `json:"key"`
	// Program is the allocated program printed by a machless
	// ir.Printer ($R<n> register spellings); ir.ParseProgram with a nil
	// machine reads it back.
	Program string `json:"program"`
	// MemInit is the program's initial nonzero memory words, which the
	// textual form does not carry.
	MemInit map[int]int64 `json:"mem_init,omitempty"`
	// Report is the original allocation's report; its PhaseStats are
	// what cost-aware admission prices a future miss at.
	Report *regalloc.Report `json:"report"`
}

// Encode renders one cache entry in wire form.
func Encode(key regalloc.CacheKey, e *regalloc.CachedAllocation) ([]byte, error) {
	if e == nil || e.Program == nil || e.Report == nil {
		return nil, fmt.Errorf("diskcache: encode: incomplete entry")
	}
	var sb strings.Builder
	(&ir.Printer{}).WriteProgram(&sb, e.Program)
	w := Entry{Key: string(key), Program: sb.String(), Report: e.Report}
	if len(e.Program.MemInit) > 0 {
		w.MemInit = e.Program.MemInit
	}
	return json.Marshal(&w)
}

// Decode parses a wire-form entry back into a cache key and entry.
func Decode(data []byte) (regalloc.CacheKey, *regalloc.CachedAllocation, error) {
	var w Entry
	if err := json.Unmarshal(data, &w); err != nil {
		return "", nil, fmt.Errorf("diskcache: decode: %w", err)
	}
	return w.Materialize()
}

// Materialize turns an already-unmarshalled wire entry into a cache key
// and entry, parsing the program text.
func (w *Entry) Materialize() (regalloc.CacheKey, *regalloc.CachedAllocation, error) {
	if w.Key == "" || w.Report == nil {
		return "", nil, fmt.Errorf("diskcache: decode: missing key or report")
	}
	prog, err := ir.ParseProgramString(w.Program, nil)
	if err != nil {
		return "", nil, fmt.Errorf("diskcache: decode program: %w", err)
	}
	for a, v := range w.MemInit {
		if a >= 0 && a < prog.MemWords {
			prog.MemInit[a] = v
		}
	}
	return regalloc.CacheKey(w.Key), &regalloc.CachedAllocation{Program: prog, Report: w.Report}, nil
}
