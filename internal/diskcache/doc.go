// Package diskcache is the persistent tier of the allocation result
// cache: a disk-backed regalloc.ResultCache whose entries survive
// daemon restarts, so a node rejoins a cluster with its expensive
// allocations already warm.
//
// Entries are stored one file per content address under a directory
// (<sha256-hex>.entry), written atomically (temp file + rename) in the
// wire format shared with cluster replication: the allocated program in
// its machine-independent textual form ($R<n> registers, parsed back
// with a nil machine), the program's initial memory image, and the full
// allocation Report. Open scans the directory, so a restart recovers
// every previously admitted entry; a file that fails to decode is
// deleted and counted, never fatal.
//
// Admission is cost-aware, the economics the paper's speed thesis
// implies: persisting a result only pays when redoing the allocation
// costs more than serializing and reloading it. Put measures the actual
// encode time of each candidate entry and admits it only when the
// allocation work recorded in its Report (the summed PhaseStats
// nanoseconds, i.e. what a future miss would have to re-spend) exceeds
// Config.CostFactor times that serialization cost. Cheap programs stay
// memory-only; hard ones — exactly the allocate-once/serve-many cases
// the combinatorial-allocation literature worries about — go to disk.
//
// Compose with the in-memory cache via regalloc.NewTieredCache; the
// serving daemon does this when started with -persist (see
// internal/serve and docs/OPERATIONS.md).
package diskcache
