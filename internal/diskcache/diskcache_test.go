package diskcache

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	regalloc "repro"
	"repro/internal/progs"
)

// testEntry runs one real allocation and returns its content address
// and cache entry, exactly as the engine would hand them to a cache.
func testEntry(t *testing.T, seed int64) (regalloc.CacheKey, *regalloc.CachedAllocation) {
	t.Helper()
	m := regalloc.Tiny(6, 4)
	eng, err := regalloc.New(m, regalloc.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	prog := progs.Random(m, progs.DefaultGen(seed))
	prog.SetMem(3, 42)
	key := eng.CacheKey(prog)
	out, rep, err := eng.AllocateProgram(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	return key, &regalloc.CachedAllocation{Program: out, Report: rep}
}

func TestWireRoundTrip(t *testing.T) {
	key, entry := testEntry(t, 7)
	data, err := Encode(key, entry)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Errorf("key %s round-tripped to %s", key, gotKey)
	}
	if got.Report.Algorithm != entry.Report.Algorithm {
		t.Errorf("report algorithm %q → %q", entry.Report.Algorithm, got.Report.Algorithm)
	}
	if got.Program.MemInit[3] != 42 {
		t.Errorf("MemInit lost: %v", got.Program.MemInit)
	}
	// The allocated program must survive the machless wire form
	// instruction for instruction. The first re-encode may differ only
	// by dropped printer annotations (loop-depth comments), so assert
	// the fixpoint: encode(decode(x)) is stable from the first trip on.
	again, err := Encode(gotKey, got)
	if err != nil {
		t.Fatal(err)
	}
	_, got2, err := Decode(again)
	if err != nil {
		t.Fatal(err)
	}
	final, err := Encode(gotKey, got2)
	if err != nil {
		t.Fatal(err)
	}
	if string(final) != string(again) {
		t.Error("wire form is not a round-trip fixpoint")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "{", `{"key":""}`, `{"key":"sha256:ab","program":"@#$%","report":{}}`} {
		if _, _, err := Decode([]byte(bad)); err == nil {
			t.Errorf("Decode(%q) succeeded", bad)
		}
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	key, entry := testEntry(t, 11)

	c1, err := Open(Config{Dir: dir, CostFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(key, entry)
	if _, ok := c1.Get(key); !ok {
		t.Fatal("entry not readable from the tier that wrote it")
	}

	// A "restart": a second Cache over the same directory must serve the
	// entry warm.
	c2, err := Open(Config{Dir: dir, CostFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("entry did not survive reopen")
	}
	if got.Report.Algorithm != entry.Report.Algorithm {
		t.Errorf("reopened entry algorithm %q, want %q", got.Report.Algorithm, entry.Report.Algorithm)
	}
	if st := c2.Stats(); st.Entries != 1 || st.Hits != 1 {
		t.Errorf("stats after reopen+hit = %+v, want 1 entry, 1 hit", st)
	}
}

func TestCostAwareAdmission(t *testing.T) {
	key, entry := testEntry(t, 13)

	// An impossible bar rejects everything.
	picky, err := Open(Config{Dir: t.TempDir(), CostFactor: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	picky.Put(key, entry)
	if _, ok := picky.Get(key); ok {
		t.Error("entry admitted past a 1e12× cost bar")
	}
	adm := picky.Admission()
	if adm.RejectedCost != 1 || adm.Admitted != 0 {
		t.Errorf("admission = %+v, want 1 rejection, 0 admissions", adm)
	}
	if adm.LastWorkNs <= 0 || adm.LastSerNs <= 0 {
		t.Errorf("admission comparison sides not recorded: %+v", adm)
	}

	// A negative factor admits everything, however cheap.
	eager, err := Open(Config{Dir: t.TempDir(), CostFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	eager.Put(key, entry)
	if _, ok := eager.Get(key); !ok {
		t.Error("CostFactor<0 did not admit the entry")
	}
	if adm := eager.Admission(); adm.Admitted != 1 {
		t.Errorf("admission = %+v, want 1 admission", adm)
	}
}

func TestCorruptEntryDropped(t *testing.T) {
	dir := t.TempDir()
	key, entry := testEntry(t, 17)
	c1, err := Open(Config{Dir: dir, CostFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(key, entry)

	// Tear the file, then reopen: the scan must drop it, not serve it.
	files, err := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
	if err != nil || len(files) != 1 {
		t.Fatalf("entry files = %v (err %v), want exactly one", files, err)
	}
	if err := os.WriteFile(files[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(Config{Dir: dir, CostFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key); ok {
		t.Fatal("corrupt entry served")
	}
	if adm := c2.Admission(); adm.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", adm.Corrupt)
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Error("corrupt entry file not removed")
	}
}

func TestEvictionBound(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir, MaxEntries: 2, CostFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	var keys []regalloc.CacheKey
	for seed := int64(20); seed < 23; seed++ {
		key, entry := testEntry(t, seed)
		c.Put(key, entry)
		keys = append(keys, key)
		time.Sleep(2 * time.Millisecond) // distinct mtimes for the reopen check
	}
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries after 1 eviction", st)
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
	if len(files) != 2 {
		t.Errorf("%d entry files on disk, want 2", len(files))
	}

	// Reopen with a tighter bound: recovery must evict the stalest file.
	c2, err := Open(Config{Dir: dir, MaxEntries: 1, CostFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Entries != 1 {
		t.Errorf("entries after bounded reopen = %d, want 1", st.Entries)
	}
	if _, ok := c2.Get(keys[2]); !ok {
		t.Error("most recently written entry evicted by recovery, want the stalest")
	}
}

func TestEntryFileNames(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir, CostFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	key, entry := testEntry(t, 29)
	c.Put(key, entry)
	files, _ := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
	if len(files) != 1 {
		t.Fatalf("%d entry files, want 1", len(files))
	}
	// Content-addressed name: the key's hex digest.
	_, hex, _ := strings.Cut(string(key), ":")
	if want := hex + entrySuffix; filepath.Base(files[0]) != want {
		t.Errorf("entry file %s, want %s", filepath.Base(files[0]), want)
	}
}
