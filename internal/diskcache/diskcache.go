package diskcache

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	regalloc "repro"
)

// Config tunes a Cache. Only Dir is required.
type Config struct {
	// Dir is the directory holding the entry files; it is created if
	// missing.
	Dir string
	// MaxEntries bounds the tier; least-recently-used entries (their
	// files) are deleted beyond it (0 = DefaultMaxEntries).
	MaxEntries int
	// CostFactor is the admission bar: an entry is persisted only when
	// its Report records at least CostFactor× as much allocation work
	// as serializing the entry costs (measured per Put). 0 selects
	// DefaultCostFactor; negative admits everything (useful in tests
	// and for replication-seeded nodes).
	CostFactor float64
	// Binary selects the binary entry encoding (EncodeBinary) for new
	// writes: the program travels as an internal/irbin frame instead of
	// printed text, so reads skip the text parser. Decoding sniffs the
	// format per entry, so flipping this flag never invalidates an
	// existing directory — old entries are simply rewritten in the new
	// form as they are re-admitted.
	Binary bool
}

// DefaultMaxEntries bounds the tier when Config.MaxEntries is 0.
const DefaultMaxEntries = 65536

// DefaultCostFactor is the admission bar when Config.CostFactor is 0:
// the allocation must cost at least twice its serialization (the write
// now plus roughly one read later) before persisting it pays.
const DefaultCostFactor = 2.0

// AdmissionStats reports the cost-aware admission behavior of a Cache.
type AdmissionStats struct {
	// Admitted counts Puts written to disk; RejectedCost counts Puts
	// declined because the allocation was cheaper than the admission
	// bar; Corrupt counts on-disk entries dropped because they failed
	// to decode.
	Admitted     uint64 `json:"admitted"`
	RejectedCost uint64 `json:"rejected_cost"`
	Corrupt      uint64 `json:"corrupt"`
	// LastWorkNs / LastSerNs are the most recent Put's recorded
	// allocation work and measured serialization cost — the two sides
	// of the admission comparison, exposed for observability.
	LastWorkNs int64 `json:"last_work_ns"`
	LastSerNs  int64 `json:"last_ser_ns"`
}

// Cache is the disk-backed ResultCache tier. Construct with Open; safe
// for concurrent use.
type Cache struct {
	cfg Config

	mu    sync.Mutex
	index map[regalloc.CacheKey]*list.Element
	lru   *list.List // front = most recently used; values are *fileEnt

	hits, misses, evicted       atomic.Uint64
	admitted, rejected, corrupt atomic.Uint64
	lastWorkNs, lastSerNs       atomic.Int64
}

// fileEnt is one index node.
type fileEnt struct {
	key  regalloc.CacheKey
	path string
}

// Open scans dir (creating it if needed) and returns the tier with
// every decodable previous entry indexed, most recently modified first.
func Open(cfg Config) (*Cache, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("diskcache: Open: empty directory")
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.CostFactor == 0 {
		cfg.CostFactor = DefaultCostFactor
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	c := &Cache{
		cfg:   cfg,
		index: make(map[regalloc.CacheKey]*list.Element),
		lru:   list.New(),
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	type found struct {
		path  string
		key   regalloc.CacheKey
		mtime time.Time
	}
	var files []found
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), entrySuffix) {
			continue
		}
		path := filepath.Join(cfg.Dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		key, _, err := Decode(data)
		if err != nil {
			// A torn write or stray file: drop it rather than serve it.
			c.corrupt.Add(1)
			_ = os.Remove(path)
			continue
		}
		info, err := de.Info()
		mt := time.Time{}
		if err == nil {
			mt = info.ModTime()
		}
		files = append(files, found{path: path, key: key, mtime: mt})
	}
	// Most recently written first, so the recovered LRU order
	// approximates the pre-restart one and eviction starts from the
	// stalest entries.
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.After(files[j].mtime) })
	for _, f := range files {
		if _, dup := c.index[f.key]; dup {
			_ = os.Remove(f.path)
			continue
		}
		c.index[f.key] = c.lru.PushBack(&fileEnt{key: f.key, path: f.path})
	}
	c.evictLocked()
	return c, nil
}

const entrySuffix = ".entry"

// path maps a key onto its entry file: the hex digest when the key is
// a well-formed content address, else a fresh sha256 of the key text.
func (c *Cache) path(key regalloc.CacheKey) string {
	name := string(key)
	if _, hex, ok := strings.Cut(name, ":"); ok && hex != "" && !strings.ContainsAny(hex, "/.") {
		name = hex
	} else {
		name = fmt.Sprintf("%x", sha256.Sum256([]byte(key)))
	}
	return filepath.Join(c.cfg.Dir, name+entrySuffix)
}

// Get implements ResultCache. Each hit reads and decodes the entry file
// afresh — the returned entry is private to the caller by construction,
// and the memory tier in front of this one makes repeat reads rare.
func (c *Cache) Get(key regalloc.CacheKey) (*regalloc.CachedAllocation, bool) {
	c.mu.Lock()
	el, ok := c.index[key]
	var path string
	if ok {
		path = el.Value.(*fileEnt).path
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		// Concurrently evicted, or the file vanished underneath us:
		// either way it is a miss, and the index entry must go.
		c.dropIndex(key)
		c.misses.Add(1)
		return nil, false
	}
	_, entry, err := Decode(data)
	if err != nil {
		c.corrupt.Add(1)
		c.dropIndex(key)
		_ = os.Remove(path)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return entry, true
}

// Put implements ResultCache with cost-aware admission: the entry is
// serialized (its cost measured), and written only when the recorded
// allocation work clears CostFactor× that serialization cost.
func (c *Cache) Put(key regalloc.CacheKey, e *regalloc.CachedAllocation) {
	start := time.Now()
	var data []byte
	var err error
	if c.cfg.Binary {
		data, err = EncodeBinary(key, e)
	} else {
		data, err = Encode(key, e)
	}
	serNs := time.Since(start).Nanoseconds()
	if err != nil {
		return
	}
	work := allocWorkNs(e.Report)
	c.lastWorkNs.Store(work)
	c.lastSerNs.Store(serNs)
	if c.cfg.CostFactor >= 0 && float64(work) < c.cfg.CostFactor*float64(serNs) {
		c.rejected.Add(1)
		return
	}
	path := c.path(key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return
	}
	c.admitted.Add(1)
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
	} else {
		c.index[key] = c.lru.PushFront(&fileEnt{key: key, path: path})
	}
	c.evictLocked()
	c.mu.Unlock()
}

// evictLocked deletes least-recently-used entry files beyond the bound.
func (c *Cache) evictLocked() {
	for c.lru.Len() > c.cfg.MaxEntries {
		back := c.lru.Back()
		fe := back.Value.(*fileEnt)
		c.lru.Remove(back)
		delete(c.index, fe.key)
		_ = os.Remove(fe.path)
		c.evicted.Add(1)
	}
}

// dropIndex removes a key from the index (its file is already gone or
// being removed by the caller).
func (c *Cache) dropIndex(key regalloc.CacheKey) {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.Remove(el)
		delete(c.index, key)
	}
	c.mu.Unlock()
}

// Stats implements ResultCache.
func (c *Cache) Stats() regalloc.CacheStats {
	c.mu.Lock()
	entries := c.lru.Len()
	c.mu.Unlock()
	return regalloc.CacheStats{
		Entries:   entries,
		Capacity:  c.cfg.MaxEntries,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicted.Load(),
	}
}

// Admission reports the tier's cost-aware admission counters.
func (c *Cache) Admission() AdmissionStats {
	return AdmissionStats{
		Admitted:     c.admitted.Load(),
		RejectedCost: c.rejected.Load(),
		Corrupt:      c.corrupt.Load(),
		LastWorkNs:   c.lastWorkNs.Load(),
		LastSerNs:    c.lastSerNs.Load(),
	}
}

// allocWorkNs prices a future miss on this entry: the summed per-phase
// pipeline time its Report recorded, falling back to the batch wall
// time when phase stats are absent.
func allocWorkNs(rep *regalloc.Report) int64 {
	var total int64
	for _, ps := range rep.PhaseStats {
		total += ps.Ns
	}
	if total == 0 {
		total = rep.WallTime.Nanoseconds()
	}
	return total
}
