package diskcache

import (
	"strings"
	"testing"

	regalloc "repro"
	"repro/internal/ir"
)

func TestBinaryWireRoundTrip(t *testing.T) {
	key, entry := testEntry(t, 19)
	data, err := EncodeBinary(key, entry)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), binaryMagic) {
		t.Fatalf("binary entry does not open with %q", binaryMagic)
	}
	gotKey, got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Errorf("key %s round-tripped to %s", key, gotKey)
	}
	if got.Report.Algorithm != entry.Report.Algorithm {
		t.Errorf("report algorithm %q → %q", entry.Report.Algorithm, got.Report.Algorithm)
	}
	if got.Program.MemInit[3] != 42 {
		t.Errorf("MemInit lost: %v", got.Program.MemInit)
	}
	// Program equality at the printed level against the JSON form: both
	// wire encodings must materialize the same program.
	jsonData, err := Encode(key, entry)
	if err != nil {
		t.Fatal(err)
	}
	_, fromJSON, err := Decode(jsonData)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	(&ir.Printer{}).WriteProgram(&a, got.Program)
	(&ir.Printer{}).WriteProgram(&b, fromJSON.Program)
	if a.String() != b.String() {
		t.Errorf("binary and JSON wire forms materialize different programs:\nbinary:\n%s\njson:\n%s", a.String(), b.String())
	}
}

func TestBinaryDecodeRejectsGarbage(t *testing.T) {
	key, entry := testEntry(t, 23)
	data, err := EncodeBinary(key, entry)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{
		[]byte(binaryMagic),
		[]byte(binaryMagic + "\x05abc"),                 // key overruns buffer
		data[:len(data)/2],                              // truncated mid-frame or mid-report
		append(append([]byte{}, data...), "garbage"...), // trailing junk breaks the report JSON
	} {
		if _, _, err := Decode(bad); err == nil {
			t.Errorf("Decode(%q...) succeeded", bad[:min(len(bad), 12)])
		}
	}
}

// TestBinaryTierMixedFormats flips Config.Binary on a directory already
// holding JSON entries: both generations must stay readable, and new
// writes must come out binary.
func TestBinaryTierMixedFormats(t *testing.T) {
	dir := t.TempDir()
	keyJSON, entryJSON := testEntry(t, 29)
	c, err := Open(Config{Dir: dir, CostFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(keyJSON, entryJSON)

	c2, err := Open(Config{Dir: dir, CostFactor: -1, Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(keyJSON); !ok {
		t.Fatal("binary-configured tier lost a JSON entry")
	}
	keyBin, entryBin := testEntry(t, 31)
	c2.Put(keyBin, entryBin)
	if _, ok := c2.Get(keyBin); !ok {
		t.Fatal("binary entry unreadable after Put")
	}

	// And back again: a JSON-configured reopen still reads both.
	c3, err := Open(Config{Dir: dir, CostFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{string(keyJSON), string(keyBin)} {
		if _, ok := c3.Get(regalloc.CacheKey(k)); !ok {
			t.Fatalf("entry %s unreadable after format flip-flop", k)
		}
	}
}
