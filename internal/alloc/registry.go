package alloc

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/target"
)

// Factory constructs a fresh allocator for a machine. Factories must be
// cheap: the engine calls them once per worker, and implementations are
// free to keep per-instance scratch state that is reused across
// Allocate calls (instances are never shared between goroutines).
type Factory func(m *target.Machine) Allocator

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register adds a named allocator factory to the global registry. The
// built-in allocators self-register under "binpack", "twopass",
// "coloring", "linearscan" and "oracle"; external packages may add
// their own.
// Registering an empty name, a nil factory, or a name that is already
// taken is an error.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("alloc: Register: empty allocator name")
	}
	if f == nil {
		return fmt.Errorf("alloc: Register %q: nil factory", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("alloc: Register %q: already registered", name)
	}
	registry[name] = f
	return nil
}

// MustRegister is Register, panicking on error. The built-in allocators
// use it from init.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// Names returns every registered allocator name, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
