package alloc

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
)

func TestFrameAssignsStableSlots(t *testing.T) {
	p := ir.NewProc("main")
	a := p.NewTemp(target.ClassInt, "a")
	b := p.NewTemp(target.ClassFloat, "b")
	f := NewFrame(p)
	if f.HasSlot(a) {
		t.Fatal("slot exists before first use")
	}
	s1 := f.SlotOf(a)
	s2 := f.SlotOf(b)
	if s1 == s2 {
		t.Fatal("distinct temps share a slot")
	}
	if f.SlotOf(a) != s1 {
		t.Fatal("slot not stable")
	}
	if f.NumSpilled() != 2 || p.NumSlots != 2 {
		t.Fatalf("NumSpilled=%d NumSlots=%d", f.NumSpilled(), p.NumSlots)
	}
}

func TestInsertCalleeSaves(t *testing.T) {
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	z := pb.IntTemp("z")
	pb.Ldi(z, 0)
	exit2 := pb.Block("exit2")
	c := pb.IntTemp("c")
	pb.Op2(ir.CmpLT, c, ir.TempOp(z), ir.ImmOp(1))
	exit1 := pb.Block("exit1")
	pb.Br(ir.TempOp(c), exit1, exit2)
	pb.StartBlock(exit1)
	pb.Ret(z)
	pb.StartBlock(exit2)
	pb.Ret(z)

	callee := mach.CalleeSavedRegs(target.ClassInt)
	used := make([]bool, mach.NumRegs())
	used[callee[0]], used[callee[1]] = true, true
	n := InsertCalleeSaves(pb.P, mach, used)
	if n != 2 {
		t.Fatalf("inserted %d saves, want 2", n)
	}
	// Two saves in the prologue.
	saves := 0
	for i := range pb.P.Entry().Instrs {
		if pb.P.Entry().Instrs[i].Tag == ir.TagSave {
			saves++
		}
	}
	if saves != 2 {
		t.Fatalf("prologue saves = %d", saves)
	}
	// Two restores before each of the two rets.
	restores := 0
	for _, blk := range pb.P.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Tag == ir.TagRestore {
				restores++
			}
		}
	}
	if restores != 4 {
		t.Fatalf("restores = %d, want 4 (2 per return)", restores)
	}
	if err := ir.ValidateAllocated(pb.P, mach); err != nil {
		t.Fatal(err)
	}
}

func TestCheckNoTemps(t *testing.T) {
	p := ir.NewProc("main")
	x := p.NewTemp(target.ClassInt, "x")
	blk := p.NewBlock("entry")
	blk.Instrs = []ir.Instr{
		{Op: ir.Ldi, Defs: []ir.Operand{ir.TempOp(x)}, Uses: []ir.Operand{ir.ImmOp(1)}},
		{Op: ir.Ret},
	}
	if err := CheckNoTemps(p); err == nil {
		t.Fatal("leftover temp not detected")
	}
	blk.Instrs[0].Defs[0] = ir.RegOp(0)
	if err := CheckNoTemps(p); err != nil {
		t.Fatalf("false positive: %v", err)
	}
}

func TestPickScratch(t *testing.T) {
	for _, m := range []*target.Machine{target.Alpha(), target.Tiny(4, 2), target.Tiny(3, 2)} {
		s := PickScratch(m)
		for _, r := range []target.Reg{s.Int[0], s.Int[1]} {
			if m.RegClass(r) != target.ClassInt {
				t.Fatalf("%s: int scratch has wrong class", m.Name)
			}
		}
		for _, r := range []target.Reg{s.Float[0], s.Float[1]} {
			if m.RegClass(r) != target.ClassFloat {
				t.Fatalf("%s: float scratch has wrong class", m.Name)
			}
		}
	}
}

func TestStatsTotalSpillCode(t *testing.T) {
	var s Stats
	s.Inserted[ir.TagScanLoad] = 3
	s.Inserted[ir.TagResolveStore] = 2
	s.Inserted[ir.TagSave] = 5 // excluded
	if got := s.TotalSpillCode(); got != 5 {
		t.Fatalf("TotalSpillCode = %d, want 5", got)
	}
}
