// Phase instrumentation: every stage of the allocation pipeline is timed
// with nanosecond resolution, and — when profiling is enabled — annotated
// with heap-allocation deltas sampled from runtime/metrics. The engine
// aggregates these samples into the PhaseStats section of its Report,
// lsra-bench surfaces them in its JSON output, and bench_test.go exports
// them as custom go-test benchmark metrics, which is what lets the CI
// bench job catch a regression in one phase even when the total hides it.
package alloc

import (
	"runtime/metrics"
	"time"
)

// Phase names one stage of the allocation pipeline.
type Phase uint8

const (
	// PhaseCFG is control-flow analysis: loop nesting depths.
	PhaseCFG Phase = iota
	// PhaseDataflow is global liveness analysis.
	PhaseDataflow
	// PhaseLifetime is interval construction: temporary lifetimes,
	// holes, reference tables and register busy segments.
	PhaseLifetime
	// PhaseScan is the allocator core: the binpacking scan, the
	// two-pass packing, coloring rounds, or the linear sweep.
	PhaseScan
	// PhaseMoves is post-scan data movement: edge resolution and the
	// consistency dataflow (§2.4), or a baseline's rewrite pass.
	PhaseMoves
	// PhaseOpt is the bracketing optimizations the engine runs: DCE
	// before allocation, peephole and store forwarding after.
	PhaseOpt
	// PhaseVerify is the symbolic allocation verifier.
	PhaseVerify
	// PhaseOther is everything else the pipeline spends time on:
	// cloning, renumbering, validation, statistics.
	PhaseOther

	// NumPhases is the number of Phase values, for counter arrays.
	NumPhases = int(PhaseOther) + 1
)

var phaseNames = [NumPhases]string{
	"cfg", "dataflow", "lifetime", "scan", "moves", "opt", "verify", "other",
}

// String returns the phase's report name.
func (ph Phase) String() string {
	if int(ph) >= NumPhases {
		return "unknown"
	}
	return phaseNames[ph]
}

// PhaseNames lists every phase in declaration order, matching the
// indices of PhaseTimes.
func PhaseNames() []string { return phaseNames[:] }

// PhaseSample accumulates one phase's cost: wall time and, when alloc
// profiling is on, heap allocation deltas attributed to the phase.
type PhaseSample struct {
	Ns     int64  `json:"ns"`
	Allocs uint64 `json:"allocs,omitempty"`
	Bytes  uint64 `json:"bytes,omitempty"`
}

// PhaseTimes indexes PhaseSamples by Phase.
type PhaseTimes [NumPhases]PhaseSample

// Add accumulates another run's phase samples into pt.
func (pt *PhaseTimes) Add(o PhaseTimes) {
	for i := range pt {
		pt[i].Ns += o[i].Ns
		pt[i].Allocs += o[i].Allocs
		pt[i].Bytes += o[i].Bytes
	}
}

// TotalNs returns the summed wall time of every phase.
func (pt *PhaseTimes) TotalNs() int64 {
	var n int64
	for i := range pt {
		n += pt[i].Ns
	}
	return n
}

// Timer attributes wall time (and optionally heap allocation) to phases:
// construct it when a pipeline starts and call Mark at each phase
// boundary; the interval since the previous mark is charged to the named
// phase. Alloc sampling reads two runtime/metrics counters per mark —
// cheap, but not free, so it is opt-in (Options.ProfileAllocs /
// regalloc.WithPhaseProfile); plain timing costs one time.Now per mark
// and is always on. A Timer belongs to one goroutine. Note that heap
// counters are process-global: samples taken while other goroutines
// allocate attribute their traffic too, so alloc profiles are only exact
// under -parallelism 1.
type Timer struct {
	sampleAllocs bool
	last         time.Time
	lastAllocs   uint64
	lastBytes    uint64
	samples      [2]metrics.Sample
}

// NewTimer starts a phase timer. sampleAllocs enables per-phase heap
// allocation deltas.
func NewTimer(sampleAllocs bool) Timer {
	t := Timer{sampleAllocs: sampleAllocs}
	if sampleAllocs {
		t.samples[0].Name = "/gc/heap/allocs:objects"
		t.samples[1].Name = "/gc/heap/allocs:bytes"
		t.lastAllocs, t.lastBytes = t.readHeap()
	}
	t.last = time.Now()
	return t
}

// Mark charges the interval since the previous mark (or construction) to
// phase ph in st.
func (t *Timer) Mark(st *Stats, ph Phase) {
	now := time.Now()
	st.Phases[ph].Ns += now.Sub(t.last).Nanoseconds()
	t.last = now
	if t.sampleAllocs {
		allocs, bytes := t.readHeap()
		st.Phases[ph].Allocs += allocs - t.lastAllocs
		st.Phases[ph].Bytes += bytes - t.lastBytes
		t.lastAllocs, t.lastBytes = allocs, bytes
		t.last = time.Now() // exclude the sampling cost itself
	}
}

// Skip advances the timer without charging the elapsed interval to any
// phase. Callers use it around spans another component accounts for
// itself (the engine skips the allocator core, which runs its own
// timer).
func (t *Timer) Skip() {
	if t.sampleAllocs {
		t.lastAllocs, t.lastBytes = t.readHeap()
	}
	t.last = time.Now()
}

func (t *Timer) readHeap() (allocs, bytes uint64) {
	metrics.Read(t.samples[:])
	return t.samples[0].Value.Uint64(), t.samples[1].Value.Uint64()
}

// HeapCounters returns the process's cumulative heap allocation counters
// (objects, bytes). The engine samples them around a batch so Reports
// carry an approximate allocs-per-batch figure without per-phase
// profiling enabled.
func HeapCounters() (allocs, bytes uint64) {
	var s [2]metrics.Sample
	s[0].Name = "/gc/heap/allocs:objects"
	s[1].Name = "/gc/heap/allocs:bytes"
	metrics.Read(s[:])
	return s[0].Value.Uint64(), s[1].Value.Uint64()
}
