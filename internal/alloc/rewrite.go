package alloc

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/target"
)

// Assignment records a whole-lifetime allocation decision per temporary:
// a fixed register, or memory (the classic two-pass model the paper
// contrasts with second-chance allocation: "assigns a whole lifetime to
// either memory or register", §3.1).
type Assignment struct {
	// Reg maps each temp to its register, or target.NoReg for memory.
	Reg []target.Reg
}

// NewAssignment returns an all-memory assignment for p.
func NewAssignment(p *ir.Proc) *Assignment {
	a := &Assignment{Reg: make([]target.Reg, p.NumTemps())}
	for i := range a.Reg {
		a.Reg[i] = target.NoReg
	}
	return a
}

// ScratchRegs are the per-class registers reserved for references to
// memory-resident temporaries. The paper models such references as point
// lifetimes that always receive a register during allocation; reserving
// two scratch registers per file is the standard engineering equivalent
// (documented deviation in DESIGN.md) and affects only the baseline
// allocators.
type ScratchRegs struct {
	Int   [2]target.Reg
	Float [2]target.Reg
}

// PickScratch chooses scratch registers for the machine: the two highest
// caller-saved registers of each file (falling back to any allocatable
// register on very small machines).
func PickScratch(mach *target.Machine) ScratchRegs {
	var s ScratchRegs
	pick := func(c target.Class) [2]target.Reg {
		regs := mach.CallerSavedRegs(c)
		if len(regs) < 2 {
			regs = mach.AllocOrder(c)
		}
		if len(regs) == 0 {
			panic(fmt.Sprintf("alloc: no allocatable %v registers", c))
		}
		if len(regs) == 1 {
			return [2]target.Reg{regs[0], regs[0]}
		}
		return [2]target.Reg{regs[len(regs)-1], regs[len(regs)-2]}
	}
	s.Int = pick(target.ClassInt)
	s.Float = pick(target.ClassFloat)
	return s
}

// RewriteAssigned rewrites p in place according to a whole-lifetime
// assignment. References to memory-resident temporaries load into / store
// from scratch registers around each instruction (tags TagScanLoad /
// TagScanStore). Callee-saved registers used by the rewrite are recorded
// in usedCallee (indexed by register number) so the caller can insert
// saves.
func RewriteAssigned(p *ir.Proc, mach *target.Machine, asn *Assignment, frame *Frame, scratch ScratchRegs, usedCallee []bool) {
	noteUse := func(r target.Reg) {
		if !mach.CallerSaved(r) {
			usedCallee[r] = true
		}
	}
	for _, b := range p.Blocks {
		out := make([]ir.Instr, 0, len(b.Instrs))
		for i := range b.Instrs {
			in := b.Instrs[i]
			var post []ir.Instr
			nextScratch := map[target.Class]int{}
			scratchFor := func(c target.Class) target.Reg {
				idx := nextScratch[c]
				nextScratch[c] = idx + 1
				var pair [2]target.Reg
				if c == target.ClassInt {
					pair = scratch.Int
				} else {
					pair = scratch.Float
				}
				if idx >= 2 {
					panic(fmt.Sprintf("alloc: instruction %v needs more than two %v scratch registers", in.Op, c))
				}
				return pair[idx]
			}
			if n := len(in.Uses); n > 0 {
				origUses := make([]ir.Temp, n)
				uses := make([]ir.Operand, n)
				copy(uses, in.Uses)
				for ui := range uses {
					origUses[ui] = ir.NoTemp
					if uses[ui].Kind != ir.KindTemp {
						continue
					}
					t := uses[ui].Temp
					origUses[ui] = t
					if r := asn.Reg[t]; r != target.NoReg {
						uses[ui] = ir.RegOp(r)
						noteUse(r)
						continue
					}
					c := p.TempClass(t)
					r := scratchFor(c)
					out = append(out, ir.Instr{
						Op:   ir.SpillLd,
						Tag:  ir.TagScanLoad,
						Pos:  in.Pos,
						Defs: []ir.Operand{ir.RegOp(r)},
						Uses: []ir.Operand{ir.SlotOp(frame.SlotOf(t), t)},
					})
					uses[ui] = ir.RegOp(r)
				}
				in.Uses = uses
				in.OrigUses = origUses
			}
			if n := len(in.Defs); n > 0 {
				origDefs := make([]ir.Temp, n)
				defs := make([]ir.Operand, n)
				copy(defs, in.Defs)
				for di := range defs {
					origDefs[di] = ir.NoTemp
					if defs[di].Kind != ir.KindTemp {
						continue
					}
					t := defs[di].Temp
					origDefs[di] = t
					if r := asn.Reg[t]; r != target.NoReg {
						defs[di] = ir.RegOp(r)
						noteUse(r)
						continue
					}
					c := p.TempClass(t)
					// Destinations may reuse a use scratch: sources are
					// read before the destination is written.
					var pair [2]target.Reg
					if c == target.ClassInt {
						pair = scratch.Int
					} else {
						pair = scratch.Float
					}
					r := pair[0]
					defs[di] = ir.RegOp(r)
					post = append(post, ir.Instr{
						Op:   ir.SpillSt,
						Tag:  ir.TagScanStore,
						Pos:  in.Pos,
						Uses: []ir.Operand{ir.RegOp(r), ir.SlotOp(frame.SlotOf(t), t)},
					})
				}
				in.Defs = defs
				in.OrigDefs = origDefs
			}
			out = append(out, in)
			out = append(out, post...)
		}
		b.Instrs = out
	}
}
