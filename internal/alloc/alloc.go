// Package alloc holds the plumbing shared by every register allocator in
// this repository: spill frames, result/statistics types, the common
// Allocator interface, and callee-saved save/restore insertion.
package alloc

import (
	"fmt"
	"time"

	"repro/internal/ir"
	"repro/internal/scratch"
	"repro/internal/target"
)

// Allocator is a register allocation algorithm. Allocate must not mutate
// its input: implementations clone the procedure, rewrite the clone so
// that no temporary operands remain, and report statistics.
type Allocator interface {
	Name() string
	Allocate(p *ir.Proc) (*Result, error)
}

// OwnedAllocator is implemented by allocators that can consume a
// procedure the caller owns outright: AllocateOwned rewrites p in place
// (p must not be used afterwards) and skips the defensive clone that
// Allocate performs. The engine uses it so a procedure is cloned exactly
// once per pipeline run instead of once per pass.
type OwnedAllocator interface {
	AllocateOwned(p *ir.Proc) (*Result, error)
}

// PhaseProfiler is implemented by allocators that can annotate their
// per-phase timings with heap-allocation deltas. The engine calls
// SetPhaseProfile(true) on every pooled instance when it was built with
// phase profiling enabled; allocators that do not implement it simply
// report timings with zero alloc counters.
type PhaseProfiler interface {
	SetPhaseProfile(on bool)
}

// Result is a finished allocation.
type Result struct {
	// Proc is the rewritten procedure: every temp operand replaced by a
	// physical register, spill and resolution code inserted, and
	// callee-saved saves/restores in place.
	Proc *ir.Proc
	// Stats describes the allocation.
	Stats Stats
}

// Stats reports what an allocation did. Static counts are instruction
// counts in the rewritten code; dynamic counts come from the VM.
type Stats struct {
	// Candidates is the number of register candidates (temporaries).
	Candidates int
	// Inserted counts allocator-inserted instructions per spill tag.
	Inserted [ir.NumTags]int
	// SpilledTemps counts temporaries that ever lived in memory.
	SpilledTemps int
	// UsedCalleeSaved counts callee-saved registers the allocation used.
	UsedCalleeSaved int
	// AllocTime is the wall-clock time of the allocator core (the
	// quantity Table 3 of the paper reports; shared setup such as CFG
	// construction, liveness and loop analysis is excluded, as in §3.2).
	AllocTime time.Duration

	// Phases breaks the pipeline's wall time (and, under profiling,
	// heap allocations) down by stage; see Phase for the stages.
	Phases PhaseTimes `json:"phases"`

	// Coloring-specific: interference graph size summed over rounds and
	// the number of build/color rounds (Table 3 reports edges "over all
	// coloring iterations").
	InterferenceEdges int
	Rounds            int
}

// Add accumulates another allocation's statistics into s (used for
// program-level aggregate reports).
func (s *Stats) Add(o Stats) {
	s.Candidates += o.Candidates
	s.SpilledTemps += o.SpilledTemps
	s.UsedCalleeSaved += o.UsedCalleeSaved
	s.AllocTime += o.AllocTime
	s.Phases.Add(o.Phases)
	s.InterferenceEdges += o.InterferenceEdges
	s.Rounds += o.Rounds
	for i, c := range o.Inserted {
		s.Inserted[i] += c
	}
}

// TotalSpillCode returns the number of inserted spill instructions,
// excluding callee-save prologue/epilogue code.
func (s *Stats) TotalSpillCode() int {
	n := 0
	for tag, c := range s.Inserted {
		switch ir.Tag(tag) {
		case ir.TagScanLoad, ir.TagScanStore, ir.TagScanMove,
			ir.TagResolveLoad, ir.TagResolveStore, ir.TagResolveMove:
			n += c
		}
	}
	return n
}

// CountInserted tallies allocator-inserted instructions by tag.
func CountInserted(p *ir.Proc) [ir.NumTags]int {
	var counts [ir.NumTags]int
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			counts[b.Instrs[i].Tag]++
		}
	}
	return counts
}

// Frame assigns spill slots lazily, one home slot per temporary
// (§2.3: every spilled temporary has a fixed memory home).
type Frame struct {
	proc   *ir.Proc
	slotOf []int
}

// NewFrame returns an empty frame for p.
func NewFrame(p *ir.Proc) *Frame {
	f := &Frame{}
	f.Reset(p)
	return f
}

// Reset re-targets f at p with no slots assigned, reusing the backing
// array when capacity allows. Pooled allocator scratch resets one frame
// per allocation instead of allocating a fresh one.
func (f *Frame) Reset(p *ir.Proc) {
	f.proc = p
	f.slotOf = scratch.Grow(f.slotOf, p.NumTemps())
	for i := range f.slotOf {
		f.slotOf[i] = -1
	}
}

// Release drops the frame's procedure reference once allocation is
// done. A pooled frame would otherwise pin the last rewritten
// procedure (and its arena-backed clone) until the next Reset.
func (f *Frame) Release() { f.proc = nil }

// SlotOf returns t's home slot, allocating it on first use.
func (f *Frame) SlotOf(t ir.Temp) int {
	if f.slotOf[t] < 0 {
		f.slotOf[t] = f.proc.NewSlot()
	}
	return f.slotOf[t]
}

// HasSlot reports whether t ever received a home slot.
func (f *Frame) HasSlot(t ir.Temp) bool { return f.slotOf[t] >= 0 }

// NumSpilled counts temporaries with a home slot.
func (f *Frame) NumSpilled() int {
	n := 0
	for _, s := range f.slotOf {
		if s >= 0 {
			n++
		}
	}
	return n
}

// InsertCalleeSaves inserts prologue saves and pre-return restores for
// every used callee-saved register and returns how many were used. used
// is indexed by register number (a dense RegSet; allocators keep one in
// their pooled scratch instead of a per-run map). Both allocators need
// this: using a callee-saved register obligates the procedure to
// preserve its value.
func InsertCalleeSaves(p *ir.Proc, mach *target.Machine, used []bool) int {
	var regs []target.Reg
	for c := target.Class(0); c < target.NumClasses; c++ {
		for _, r := range mach.CalleeSavedRegs(c) {
			if used[r] {
				regs = append(regs, r)
			}
		}
	}
	if len(regs) == 0 {
		return 0
	}
	slots := make(map[target.Reg]int, len(regs))
	for _, r := range regs {
		slots[r] = p.NewSlot()
	}
	entry := p.Entry()
	pro := make([]ir.Instr, 0, len(regs)+len(entry.Instrs))
	for _, r := range regs {
		pro = append(pro, ir.Instr{
			Op:   ir.SpillSt,
			Tag:  ir.TagSave,
			Uses: []ir.Operand{ir.RegOp(r), ir.SlotOp(slots[r], ir.NoTemp)},
		})
	}
	entry.Instrs = append(pro, entry.Instrs...)
	for _, b := range p.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.Ret {
			continue
		}
		body := b.Instrs[:len(b.Instrs)-1]
		tail := make([]ir.Instr, 0, len(regs)+1)
		for _, r := range regs {
			tail = append(tail, ir.Instr{
				Op:   ir.SpillLd,
				Tag:  ir.TagRestore,
				Defs: []ir.Operand{ir.RegOp(r)},
				Uses: []ir.Operand{ir.SlotOp(slots[r], ir.NoTemp)},
			})
		}
		tail = append(tail, *t)
		b.Instrs = append(body, tail...)
	}
	return len(regs)
}

// CheckNoTemps verifies that allocation rewrote every temp operand.
func CheckNoTemps(p *ir.Proc) error {
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, o := range in.Uses {
				if o.Kind == ir.KindTemp {
					return fmt.Errorf("proc %s: block %s: %v still uses temp %s",
						p.Name, b.Name, in.Op, p.TempName(o.Temp))
				}
			}
			for _, o := range in.Defs {
				if o.Kind == ir.KindTemp {
					return fmt.Errorf("proc %s: block %s: %v still defines temp %s",
						p.Name, b.Name, in.Op, p.TempName(o.Temp))
				}
			}
		}
	}
	return nil
}

// Elapsed is a tiny helper for timing allocator cores.
func Elapsed(start time.Time) time.Duration { return time.Since(start) }
