package conform

import (
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/target"
	"repro/internal/vm"
)

// TestFullGrid is the conformance matrix: every registered allocator ×
// every machine preset × every generator profile × multiple seeds, with
// zero tolerated divergences. This is the empirical form of the paper's
// implicit claim that all four allocators are semantics-preserving on
// arbitrary machine and program shapes.
func TestFullGrid(t *testing.T) {
	nSeeds := 3
	if testing.Short() {
		nSeeds = 1
	}
	g := DefaultGrid(1, nSeeds)
	if len(g.Allocators) < 4 {
		t.Fatalf("only %d allocators registered: %v", len(g.Allocators), g.Allocators)
	}
	if len(g.Machines) < 4 {
		t.Fatalf("only %d machine presets: %v", len(g.Machines), g.Machines)
	}
	if len(g.Profiles) < 6 {
		t.Fatalf("only %d generator profiles: %v", len(g.Profiles), g.Profiles)
	}
	rep := Run(g, Options{}, false)
	if rep.Cells != len(g.Allocators)*len(g.Machines)*len(g.Profiles)*nSeeds {
		t.Fatalf("ran %d cells, expected the full product", rep.Cells)
	}
	for _, d := range rep.Divergences {
		t.Errorf("divergence at %s: %s: %s (min stmts %d)", d.Cell, d.Kind, d.Detail, d.MinStmts)
	}
	if rep.Passed != rep.Cells {
		t.Fatalf("%d/%d cells passed", rep.Passed, rep.Cells)
	}
	// Every allocator must have contributed, and the spill-forcing
	// machines must actually have produced spill traffic somewhere.
	var spillOps int64
	for name, sum := range rep.ByAllocator {
		if sum.Cells == 0 {
			t.Errorf("allocator %s ran no cells", name)
		}
		spillOps += sum.SpillOps
	}
	if spillOps == 0 {
		t.Error("no spill traffic anywhere in the grid: the machine axis is not exercising pressure")
	}
}

// TestCheckCellReportsCounters spot-checks a single high-pressure cell's
// dynamic accounting.
func TestCheckCellReportsCounters(t *testing.T) {
	res := CheckCell(Cell{Allocator: "binpack", Machine: "tiny", Profile: "high-pressure", Seed: 7}, Options{})
	if !res.OK {
		t.Fatalf("cell diverged: %+v", res.Divergence)
	}
	if res.RefInstrs == 0 || res.AllocInstrs == 0 {
		t.Fatalf("missing dynamic counts: %+v", res)
	}
	if res.AllocInstrs < res.RefInstrs {
		// DCE and peephole can shrink the program, but a high-pressure
		// profile on a six-register machine must spill.
		t.Logf("allocated run shorter than reference (%d < %d) — ok, but unusual", res.AllocInstrs, res.RefInstrs)
	}
	if res.SpillOps == 0 {
		t.Error("high-pressure profile on tiny produced no spill traffic")
	}
}

// TestDiffCatchesDivergence feeds Diff hand-built results and checks
// every mismatch kind fires.
func TestDiffCatchesDivergence(t *testing.T) {
	base := func() (*vm.Result, *vm.Result) {
		mk := func() *vm.Result {
			return &vm.Result{
				Output:   []byte("out"),
				RetValue: 7,
				Mem:      []uint64{1, 2, 3},
				Counters: vm.Counters{Total: 10, ByTag: [ir.NumTags]int64{10}},
			}
		}
		return mk(), mk()
	}
	if ref, got := base(); Diff(ref, got) != nil {
		t.Fatal("identical results reported divergent")
	}
	ref, got := base()
	got.Output = []byte("other")
	if mm := Diff(ref, got); mm == nil || mm.Kind != KindOutput {
		t.Errorf("output divergence: %+v", mm)
	}
	ref, got = base()
	got.RetValue = 8
	if mm := Diff(ref, got); mm == nil || mm.Kind != KindRetValue {
		t.Errorf("retval divergence: %+v", mm)
	}
	ref, got = base()
	got.Mem[1] = 99
	if mm := Diff(ref, got); mm == nil || mm.Kind != KindMemory {
		t.Errorf("memory divergence: %+v", mm)
	}
	ref, got = base()
	got.Mem = got.Mem[:2]
	if mm := Diff(ref, got); mm == nil || mm.Kind != KindMemory {
		t.Errorf("memory size divergence: %+v", mm)
	}
	// Counter insanity: untagged work exceeding the reference.
	ref, got = base()
	got.Counters.Total = 20
	got.Counters.ByTag[ir.TagNone] = 20
	if mm := Diff(ref, got); mm == nil || mm.Kind != KindCounters {
		t.Errorf("invented-work divergence: %+v", mm)
	}
	// Tag histogram not summing to the total.
	ref, got = base()
	got.Counters.ByTag[ir.TagNone] = 5
	if mm := Diff(ref, got); mm == nil || mm.Kind != KindCounters {
		t.Errorf("histogram divergence: %+v", mm)
	}
	// Runaway allocated code.
	ref, got = base()
	got.Counters.Total = countersBoundFactor*10 + 2000
	got.Counters.ByTag[ir.TagNone] = 10
	got.Counters.ByTag[ir.TagScanLoad] = got.Counters.Total - 10
	if mm := Diff(ref, got); mm == nil || mm.Kind != KindCounters {
		t.Errorf("runaway divergence: %+v", mm)
	}
}

// TestCheckCatchesMiscompiledProgram plants a real miscompilation — an
// "allocator" output computing the wrong value — and checks the harness
// reports it rather than only testing the happy path.
func TestCheckCatchesMiscompiledProgram(t *testing.T) {
	mach := target.Tiny(6, 4)
	build := func(v int64) *ir.Program {
		b := ir.NewBuilder(mach, 8)
		pb := b.NewProc("main")
		x := pb.IntTemp("x")
		pb.Ldi(x, v)
		pb.St(ir.TempOp(x), ir.ImmOp(0), 3)
		pb.Call("puti", ir.NoTemp, ir.TempOp(x))
		pb.Ret(x)
		return b.Prog
	}
	ref := build(41)
	// A structurally valid "allocation" of the wrong source program: the
	// conformance check must flag it even though it verifies in isolation.
	wrong, _, err := Allocate(build(42), mach, "binpack")
	if err != nil {
		t.Fatal(err)
	}
	_, _, mm := Exec(ref, wrong, mach, nil, 0)
	if mm == nil {
		t.Fatal("miscompiled program passed conformance")
	}
	if mm.Kind != KindOutput {
		t.Fatalf("mismatch kind = %s, want %s first (output precedes retval/memory)", mm.Kind, KindOutput)
	}
}

// TestFailFastAndShrink checks the driver plumbing on a grid that is
// guaranteed to fail: an unknown allocator name in every cell.
func TestFailFastAndShrink(t *testing.T) {
	g := Grid{
		Allocators: []string{"no-such-allocator"},
		Machines:   []string{"tiny"},
		Profiles:   []string{"default", "straightline"},
		Seeds:      []int64{1, 2, 3},
	}
	rep := Run(g, Options{FailFast: true, Parallelism: 1}, true)
	if len(rep.Divergences) == 0 {
		t.Fatal("bogus allocator produced no divergence")
	}
	if rep.Passed+rep.Skipped+len(rep.Divergences) != rep.Cells {
		t.Fatalf("cells %d, passed %d, skipped %d, divergent %d don't add up",
			rep.Cells, rep.Passed, rep.Skipped, len(rep.Divergences))
	}
	if rep.Passed != 0 {
		t.Fatalf("%d unexecuted cells reported as passing", rep.Passed)
	}
	if len(rep.Results) != rep.Cells {
		t.Fatalf("keepCells kept %d of %d results", len(rep.Results), rep.Cells)
	}
	if got := rep.Divergences[0]; got.Kind != KindConfigError || !strings.Contains(got.Detail, "no-such-allocator") {
		t.Fatalf("divergence = %+v", got)
	}
	if rep.Divergences[0].MinStmts != 0 {
		t.Fatalf("config error was shrunk: min_stmts = %d", rep.Divergences[0].MinStmts)
	}
	// FailFast with one worker must leave later cells unscheduled, and
	// they must be reported as skipped, not passing.
	if rep.Skipped == 0 {
		t.Error("fail-fast did not skip any cells")
	}
	for _, r := range rep.Results {
		if r.Skipped && (r.OK || r.Divergence != nil || r.RefInstrs != 0) {
			t.Fatalf("skipped cell carries results: %+v", r)
		}
	}
}

// TestMachineFor covers the tiny:<i>,<f> escape hatch on the machine
// axis.
func TestMachineFor(t *testing.T) {
	m, err := machineFor("tiny:5,3")
	if err != nil || m.NumRegs() != 8 {
		t.Fatalf("machineFor(tiny:5,3) = %v, %v", m, err)
	}
	if _, err := machineFor("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := machineFor("bogus"); err == nil {
		t.Fatal("bogus machine accepted")
	}
}

// TestGridOrderDeterministic pins the cell enumeration order the JSON
// reports and seeds rely on.
func TestGridOrderDeterministic(t *testing.T) {
	g := Grid{Allocators: []string{"a", "b"}, Machines: []string{"m"}, Profiles: []string{"p", "q"}, Seeds: []int64{1, 2}}
	cells := g.Cells()
	want := []string{"a/m/p/seed=1", "a/m/p/seed=2", "a/m/q/seed=1", "a/m/q/seed=2",
		"b/m/p/seed=1", "b/m/p/seed=2", "b/m/q/seed=1", "b/m/q/seed=2"}
	if len(cells) != len(want) {
		t.Fatalf("%d cells", len(cells))
	}
	for i := range want {
		if cells[i].String() != want[i] {
			t.Fatalf("cell %d = %s, want %s", i, cells[i], want[i])
		}
	}
}

// TestAllocateRejectsUnknown keeps the registry error path honest.
func TestAllocateRejectsUnknown(t *testing.T) {
	mach := target.Tiny(6, 4)
	prog := progs.Random(mach, progs.DefaultGen(1))
	if _, _, err := Allocate(prog, mach, "nope"); err == nil {
		t.Fatal("unknown allocator accepted")
	}
	if _, ok := alloc.Lookup("binpack"); !ok {
		t.Fatal("binpack not registered")
	}
}
