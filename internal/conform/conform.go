// Package conform is the differential conformance harness: it treats
// register allocation as a semantics-preserving model transformation and
// checks the claim empirically. Every program is executed on the VM
// twice — before allocation (temporary semantics, the "infinite register
// machine" of §2.2) and after allocation under an allocator, with
// caller-saved registers poisoned at every call — and the two executions
// must agree on all observable behavior: intrinsic output, return value,
// the final global-memory image, and sane dynamic counters.
//
// The grid driver in grid.go sweeps allocator × machine × workload
// profile × seed and reports each divergence as a minimized,
// reproducible cell.
package conform

import (
	"bytes"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/target"
	"repro/internal/vm"
)

// Mismatch kinds, ordered roughly by how early in the pipeline the
// failure occurred.
const (
	KindConfigError = "config-error" // the cell itself is unresolvable (bad allocator/machine/profile name)
	KindAllocError  = "alloc-error"  // the allocation pipeline itself failed
	KindExecError   = "exec-error"   // one of the two executions trapped
	KindOutput      = "output"       // intrinsic output streams differ
	KindRetValue    = "retval"       // return values differ
	KindMemory      = "memory"       // final global-memory images differ
	KindCounters    = "counters"     // dynamic counters are insane
	// KindQuality marks a quality-envelope violation: the cell executed
	// correctly but an allocator's spill traffic broke a configured
	// allocator-vs-allocator or allocator-vs-oracle bound (quality.go).
	KindQuality = "quality-envelope"
)

// Mismatch describes one observable divergence between the reference and
// allocated executions. A nil *Mismatch means the executions conform.
type Mismatch struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

func (m *Mismatch) Error() string { return fmt.Sprintf("conform: %s: %s", m.Kind, m.Detail) }

// countersBoundFactor bounds the allocated execution's total dynamic
// instruction count as a multiple of the reference count. Allocation
// overhead (spill, resolution, callee-save traffic) is real but bounded;
// a blowup past this factor means the allocator emitted runaway code
// even if it happens to compute the right answer.
const countersBoundFactor = 64

// Diff compares a reference (pre-allocation) execution against an
// allocated one and returns the first observable divergence, or nil.
//
// Besides the equality checks on output, return value and memory, it
// applies the counter sanity rules: allocation must not create original
// program work (the allocated run's untagged instruction count cannot
// exceed the reference total — DCE and peephole only remove), spill
// overhead must be attributed to spill tags (never negative by
// construction, but the tag histogram must sum to the total), and the
// total dynamic count must stay within countersBoundFactor of the
// reference.
func Diff(ref, got *vm.Result) *Mismatch {
	if !bytes.Equal(ref.Output, got.Output) {
		return &Mismatch{Kind: KindOutput, Detail: fmt.Sprintf(
			"reference wrote %q, allocated wrote %q", clip(ref.Output), clip(got.Output))}
	}
	if ref.RetValue != got.RetValue {
		return &Mismatch{Kind: KindRetValue, Detail: fmt.Sprintf(
			"reference returned %d, allocated returned %d", ref.RetValue, got.RetValue)}
	}
	if len(ref.Mem) != len(got.Mem) {
		return &Mismatch{Kind: KindMemory, Detail: fmt.Sprintf(
			"memory sizes differ: %d vs %d words", len(ref.Mem), len(got.Mem))}
	}
	for i := range ref.Mem {
		if ref.Mem[i] != got.Mem[i] {
			return &Mismatch{Kind: KindMemory, Detail: fmt.Sprintf(
				"mem[%d] = %#x in reference, %#x allocated", i, ref.Mem[i], got.Mem[i])}
		}
	}
	return diffCounters(&ref.Counters, &got.Counters)
}

func diffCounters(ref, got *vm.Counters) *Mismatch {
	if orig := got.ByTag[ir.TagNone]; orig > ref.Total {
		return &Mismatch{Kind: KindCounters, Detail: fmt.Sprintf(
			"allocated run executed %d untagged instructions, reference only %d (allocation invented program work)",
			orig, ref.Total)}
	}
	var tagSum int64
	for _, n := range got.ByTag {
		if n < 0 {
			return &Mismatch{Kind: KindCounters, Detail: fmt.Sprintf("negative tag counter: %v", got.ByTag)}
		}
		tagSum += n
	}
	if tagSum != got.Total {
		return &Mismatch{Kind: KindCounters, Detail: fmt.Sprintf(
			"tag histogram sums to %d, total is %d", tagSum, got.Total)}
	}
	if got.SpillOverhead() < 0 || got.SaveRestoreOverhead() < 0 {
		return &Mismatch{Kind: KindCounters, Detail: fmt.Sprintf(
			"negative overhead: spill %d, save/restore %d", got.SpillOverhead(), got.SaveRestoreOverhead())}
	}
	if got.Total > countersBoundFactor*ref.Total+1024 {
		return &Mismatch{Kind: KindCounters, Detail: fmt.Sprintf(
			"allocated run executed %d instructions for a reference of %d (past the %d× sanity bound)",
			got.Total, ref.Total, countersBoundFactor)}
	}
	return nil
}

func clip(b []byte) []byte {
	const max = 96
	if len(b) > max {
		return b[:max]
	}
	return b
}

// Exec runs the reference program (plain temp semantics) and the
// allocated program (paranoid mode: caller-saved registers poisoned
// after every call) on the VM and diffs the results. The reference run
// is returned even when the allocated run diverges, for reporting.
func Exec(ref, allocated *ir.Program, mach *target.Machine, input []byte, maxSteps int64) (refRes, gotRes *vm.Result, mm *Mismatch) {
	refRes, err := vm.Run(ref, vm.Config{Mach: mach, Input: input, MaxSteps: maxSteps})
	if err != nil {
		return nil, nil, &Mismatch{Kind: KindExecError, Detail: fmt.Sprintf("reference execution: %v", err)}
	}
	gotRes, err = vm.Run(allocated, vm.Config{Mach: mach, Input: input, MaxSteps: maxSteps, Paranoid: true})
	if err != nil {
		return refRes, nil, &Mismatch{Kind: KindExecError, Detail: fmt.Sprintf("allocated execution: %v", err)}
	}
	return refRes, gotRes, Diff(refRes, gotRes)
}

// Allocate runs the paper's pipeline — experiments.PipelineChecked with
// both oracles on (DCE, allocate, verify, peephole, structural
// validation), so the harness certifies exactly the pass ordering the
// benchmarks measure — over every procedure of prog with a fresh
// instance of the named allocator. The input program is not modified.
func Allocate(prog *ir.Program, mach *target.Machine, allocator string) (*ir.Program, alloc.Stats, error) {
	f, ok := alloc.Lookup(allocator)
	if !ok {
		return nil, alloc.Stats{}, fmt.Errorf("conform: unknown allocator %q (have %v)", allocator, alloc.Names())
	}
	return experiments.PipelineChecked(prog, mach, f(mach), experiments.PipelineChecks{Verify: true, Validate: true})
}

// Check allocates prog under the named allocator and differentially
// executes it against the unallocated original. It returns the mismatch
// (nil when conforming) plus both execution results for reporting.
func Check(prog *ir.Program, mach *target.Machine, allocator string, input []byte, maxSteps int64) (refRes, gotRes *vm.Result, mm *Mismatch) {
	allocated, _, err := Allocate(prog, mach, allocator)
	if err != nil {
		return nil, nil, &Mismatch{Kind: KindAllocError, Detail: err.Error()}
	}
	return Exec(prog, allocated, mach, input, maxSteps)
}
