package conform

import (
	"testing"
)

// TestQualityPointMeasures checks one measured point end to end: every
// allocator is measured, the counter decomposition is internally
// consistent, and on oracle-eligible points the profile-fed oracle's
// measured traffic equals the proven optimum exactly (gap 1.0).
func TestQualityPointMeasures(t *testing.T) {
	allocs := []string{"binpack", "coloring", "linearscan", "oracle", "twopass"}
	o := &QualityOptions{}
	res := checkQualityPoint(QualityPoint{Machine: "tiny", Profile: "default", Seed: 7}, 0, allocs, o)
	if res.Error != nil {
		t.Fatalf("point errored: %s: %s", res.Error.Kind, res.Error.Detail)
	}
	if len(res.Measures) != len(allocs) {
		t.Fatalf("measured %d allocators, want %d: %v", len(res.Measures), len(allocs), res.Measures)
	}
	for name, m := range res.Measures {
		if m.EvictLoads > m.SpillLoads || m.SpillLoads > m.MemOps || m.MemOps > m.SpillOps {
			t.Fatalf("%s: inconsistent decomposition %+v (want evict ≤ loads ≤ mem ≤ ops)", name, m)
		}
	}
	if !res.Eligible {
		t.Fatal("tiny/default/7 should be oracle-eligible under default limits")
	}
	om := res.Measures["oracle"]
	if om.SpillOps != res.Optimum || om.Gap != 1.0 {
		t.Fatalf("oracle exactness broken: measured %d ops (gap %v) against optimum %d",
			om.SpillOps, om.Gap, res.Optimum)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("default envelopes violated: %+v", res.Violations)
	}
}

// TestQualityEnvelopeViolationShrinks drives the failure path: an
// impossible envelope must surface as a KindQuality violation carrying
// a shrink-minimized statement budget.
func TestQualityEnvelopeViolationShrinks(t *testing.T) {
	g := QualityGrid{
		Machines:   []string{"tiny"},
		Profiles:   []string{"high-pressure"},
		Seeds:      []int64{3},
		Allocators: []string{"linearscan"},
	}
	o := QualityOptions{
		Envelopes: []Envelope{{
			// subj > 0×subj − 1 holds for any non-negative count, so
			// every point violates.
			Name: "impossible", Subject: "linearscan", Baseline: "linearscan",
			Metric: MetricSpillOps, Factor: 0, Slack: -1,
		}},
	}
	o.Parallelism = 1
	rep := RunQuality(g, o, true)
	if len(rep.Errors) != 0 {
		t.Fatalf("unexpected errors: %+v", rep.Errors)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("want exactly one violation, got %+v", rep.Violations)
	}
	v := rep.Violations[0]
	if v.Envelope != "impossible" || v.Kind != KindQuality || v.Cell.Allocator != "linearscan" {
		t.Fatalf("malformed violation: %+v", v)
	}
	if v.MinStmts < 1 {
		t.Fatalf("violation was not shrunk: MinStmts = %d", v.MinStmts)
	}
	// The impossible envelope fires at any budget, so shrinking must
	// drive it to the minimum.
	if v.MinStmts != 1 {
		t.Fatalf("shrinker stopped at %d statements; an always-firing envelope shrinks to 1", v.MinStmts)
	}
}

// TestQualityDefaultEnvelopesHold samples the default grid: the shipped
// envelope calibration must hold with margin, the oracle must be exact
// on every eligible point, and the report aggregation must be sane.
func TestQualityDefaultEnvelopesHold(t *testing.T) {
	g := QualityGrid{
		Machines:   []string{"tiny", "x86-8", "wide-64"},
		Profiles:   []string{"default", "high-pressure", "loop-nest"},
		Seeds:      []int64{1, 2},
		Allocators: []string{"binpack", "coloring", "linearscan", "oracle", "twopass"},
	}
	rep := RunQuality(g, QualityOptions{}, false)
	if len(rep.Errors) != 0 {
		t.Fatalf("errors: %+v", rep.Errors)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("default envelopes violated: %+v", rep.Violations)
	}
	if rep.Points != 18 {
		t.Fatalf("want 18 points, got %d", rep.Points)
	}
	if rep.Eligible == 0 {
		t.Fatal("no oracle-eligible points in the sample")
	}
	os, ok := rep.Summary["oracle"]
	if !ok || os.Points != rep.Points {
		t.Fatalf("oracle summary missing or incomplete: %+v", rep.Summary)
	}
	if os.GeomeanGap != 1.0 || os.MaxGap != 1.0 {
		t.Fatalf("oracle gap should be exactly 1.0 everywhere: %+v", os)
	}
	if os.EligiblePoints != rep.Eligible {
		t.Fatalf("oracle eligible points %d != report eligible %d", os.EligiblePoints, rep.Eligible)
	}
}

// TestQualityGridPointsDeterministic pins the enumeration order the
// JSON report and perfdb series rely on.
func TestQualityGridPointsDeterministic(t *testing.T) {
	g := QualityGrid{Machines: []string{"m1", "m2"}, Profiles: []string{"p"}, Seeds: []int64{1, 2}}
	want := []QualityPoint{
		{"m1", "p", 1}, {"m1", "p", 2},
		{"m2", "p", 1}, {"m2", "p", 2},
	}
	got := g.Points()
	if len(got) != len(want) {
		t.Fatalf("got %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestQualityConfigErrors: unresolvable point coordinates become
// config-error results, not panics.
func TestQualityConfigErrors(t *testing.T) {
	for _, g := range []QualityGrid{
		{Machines: []string{"no-such-machine"}, Profiles: []string{"default"}, Seeds: []int64{1}, Allocators: []string{"binpack"}},
		{Machines: []string{"tiny"}, Profiles: []string{"no-such-profile"}, Seeds: []int64{1}, Allocators: []string{"binpack"}},
	} {
		rep := RunQuality(g, QualityOptions{Options: Options{NoShrink: true}}, false)
		if len(rep.Errors) != 1 || rep.Errors[0].Kind != KindConfigError {
			t.Fatalf("grid %+v: want one config-error, got %+v", g, rep.Errors)
		}
	}
}
