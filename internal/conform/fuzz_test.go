package conform

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/target"
)

// fuzzMachines is the machine axis the differential fuzzer cycles
// through: every named preset plus two tiny spill-forcers.
var fuzzMachines = []string{"alpha", "x86-8", "risc-16", "wide-64", "int-heavy", "tiny", "tiny:4,3"}

// fuzzAllocators are the four built-ins, checked on every input.
var fuzzAllocators = []string{"binpack", "twopass", "coloring", "linearscan"}

// fuzzGen decodes the raw fuzz arguments into a bounded GenConfig and
// machine, the shared recipe of FuzzDifferentialAlloc and its plain-test
// harness.
func fuzzGen(seed int64, machSel, intTemps, floatTemps, stmts, depth uint8, calls, memory, helper bool) (*target.Machine, progs.GenConfig) {
	mach, err := target.Parse(fuzzMachines[int(machSel)%len(fuzzMachines)])
	if err != nil {
		// fuzzMachines is a fixed list; an unresolvable entry is a bug in
		// this file, not an interesting fuzz input.
		panic(err)
	}
	cfg := progs.GenConfig{
		Seed:       seed,
		IntTemps:   2 + int(intTemps%27),
		FloatTemps: int(floatTemps % 13),
		Stmts:      1 + int(stmts)%120,
		MaxDepth:   int(depth) % 4,
		Calls:      calls,
		Memory:     memory,
		Helper:     helper,
	}
	return mach, cfg
}

// FuzzDifferentialAlloc decodes arbitrary bytes into a generator
// configuration and machine, builds the program, and conformance-checks
// it across all four allocators: allocate, verify, execute paranoid,
// and diff against the unallocated execution. Any divergence is a
// miscompilation (or harness/VM bug) and fails the fuzz run.
func FuzzDifferentialAlloc(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(10), uint8(4), uint8(40), uint8(2), true, true, true)
	f.Add(int64(7), uint8(5), uint8(0), uint8(0), uint8(80), uint8(0), false, false, false)
	f.Add(int64(42), uint8(1), uint8(26), uint8(12), uint8(119), uint8(3), true, true, false)
	f.Add(int64(-3), uint8(4), uint8(3), uint8(11), uint8(17), uint8(1), true, false, true)
	f.Fuzz(func(t *testing.T, seed int64, machSel, intTemps, floatTemps, stmts, depth uint8, calls, memory, helper bool) {
		mach, cfg := fuzzGen(seed, machSel, intTemps, floatTemps, stmts, depth, calls, memory, helper)
		prog := progs.Random(mach, cfg)
		if err := ir.ValidateProgram(prog, mach); err != nil {
			t.Fatalf("generator emitted an invalid program on %s: %v", mach.Name, err)
		}
		for _, allocator := range fuzzAllocators {
			_, _, mm := Check(prog, mach, allocator, defaultInput, 5_000_000)
			if mm != nil {
				t.Fatalf("%s on %s (seed=%d ints=%d floats=%d stmts=%d depth=%d calls=%v mem=%v helper=%v): %s: %s",
					allocator, mach.Name, cfg.Seed, cfg.IntTemps, cfg.FloatTemps, cfg.Stmts, cfg.MaxDepth,
					cfg.Calls, cfg.Memory, cfg.Helper, mm.Kind, mm.Detail)
			}
		}
	})
}
