package conform

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/alloc"
	"repro/internal/progs"
	"repro/internal/target"
	"repro/internal/vm"
)

// Cell is one point of the conformance grid. The four coordinates fully
// determine the experiment: the cell's program is regenerated from
// (Profile, Seed) on the named machine and allocated with the named
// allocator, so a reported divergence is reproducible from the cell
// alone.
type Cell struct {
	Allocator string `json:"allocator"`
	Machine   string `json:"machine"`
	Profile   string `json:"profile"`
	Seed      int64  `json:"seed"`
}

func (c Cell) String() string {
	return fmt.Sprintf("%s/%s/%s/seed=%d", c.Allocator, c.Machine, c.Profile, c.Seed)
}

// Divergence is one failed cell: the mismatch plus the smallest
// statement budget at which it still reproduces.
type Divergence struct {
	Cell
	Mismatch
	// MinStmts is the smallest GenConfig.Stmts at which the cell still
	// diverges, found by halving the budget; it equals the profile's
	// full budget when no smaller program reproduces the divergence.
	// Zero means shrinking did not run (Options.NoShrink, or the cell
	// failed before a program was generated).
	MinStmts int `json:"min_stmts,omitempty"`
}

// CellResult is the outcome of one conformance cell.
type CellResult struct {
	Cell
	OK bool `json:"ok"`
	// Skipped marks a cell that was never executed because FailFast
	// stopped the grid; OK is false and no counters are reported.
	Skipped bool `json:"skipped,omitempty"`
	// RefInstrs / AllocInstrs are the dynamic instruction counts of the
	// two executions; SpillOps and SaveRestoreOps break the difference
	// down (zero when the cell failed before executing).
	RefInstrs      int64       `json:"ref_instrs,omitempty"`
	AllocInstrs    int64       `json:"alloc_instrs,omitempty"`
	SpillOps       int64       `json:"spill_ops,omitempty"`
	SaveRestoreOps int64       `json:"save_restore_ops,omitempty"`
	Divergence     *Divergence `json:"divergence,omitempty"`
}

// Grid spans the cells to check: the cross product of its four axes.
type Grid struct {
	Allocators []string `json:"allocators"`
	Machines   []string `json:"machines"`
	Profiles   []string `json:"profiles"`
	Seeds      []int64  `json:"seeds"`
}

// DefaultGrid covers every registered allocator, every machine preset,
// and every generator profile over nSeeds consecutive seeds starting at
// seed0.
func DefaultGrid(seed0 int64, nSeeds int) Grid {
	seeds := make([]int64, 0, nSeeds)
	for s := int64(0); s < int64(nSeeds); s++ {
		seeds = append(seeds, seed0+s)
	}
	return Grid{
		Allocators: alloc.Names(),
		Machines:   target.PresetNames(),
		Profiles:   progs.Profiles(),
		Seeds:      seeds,
	}
}

// Cells enumerates the grid in deterministic order (allocator-major,
// seed-minor).
func (g Grid) Cells() []Cell {
	cells := make([]Cell, 0, len(g.Allocators)*len(g.Machines)*len(g.Profiles)*len(g.Seeds))
	for _, a := range g.Allocators {
		for _, m := range g.Machines {
			for _, p := range g.Profiles {
				for _, s := range g.Seeds {
					cells = append(cells, Cell{Allocator: a, Machine: m, Profile: p, Seed: s})
				}
			}
		}
	}
	return cells
}

// Options tunes a grid run.
type Options struct {
	// FailFast stops scheduling new cells after the first divergence.
	FailFast bool
	// Parallelism bounds the worker pool (≤ 0 selects GOMAXPROCS).
	Parallelism int
	// MaxSteps bounds each VM execution (0 means the defaultMaxSteps
	// fuel; grid programs are small, so a tight bound converts allocator
	// -induced runaway loops into exec-error divergences quickly).
	MaxSteps int64
	// NoShrink skips the minimization pass on divergent cells.
	NoShrink bool
	// Input is the byte stream fed to the getc intrinsic (a fixed
	// default keeps cells reproducible without recording it).
	Input []byte
}

const defaultMaxSteps = 20_000_000

// defaultInput is the fixed getc stream every cell consumes.
var defaultInput = []byte("conformance grid input: the quick brown fox jumps over the lazy dog 0123456789")

// AllocatorSummary aggregates the passing cells of one allocator.
type AllocatorSummary struct {
	Cells       int   `json:"cells"`
	Divergent   int   `json:"divergent"`
	RefInstrs   int64 `json:"ref_instrs"`
	AllocInstrs int64 `json:"alloc_instrs"`
	SpillOps    int64 `json:"spill_ops"`
}

// Report is the outcome of a grid run. Cells = Passed + Skipped +
// len(Divergences); Skipped counts cells FailFast left unexecuted.
type Report struct {
	Grid        Grid                        `json:"grid"`
	Cells       int                         `json:"cells"`
	Passed      int                         `json:"passed"`
	Skipped     int                         `json:"skipped,omitempty"`
	Divergences []Divergence                `json:"divergences"`
	ByAllocator map[string]AllocatorSummary `json:"by_allocator"`
	// Results holds every cell in grid order when Run was asked to keep
	// them (cmd/lsra-conform -cells).
	Results []CellResult `json:"results,omitempty"`
}

// Run checks every cell of the grid over a bounded worker pool and
// aggregates the outcome. Results are deterministic and in grid order
// regardless of parallelism. keepCells retains every per-cell result in
// Report.Results (not just divergences).
func Run(g Grid, o Options, keepCells bool) *Report {
	cells := g.Cells()
	results := make([]CellResult, len(cells))

	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		stopped bool
	)
	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = CheckCell(cells[i], o)
				if !results[i].OK && o.FailFast {
					mu.Lock()
					stopped = true
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		mu.Lock()
		stop := stopped
		mu.Unlock()
		if stop {
			results[i] = CellResult{Cell: cells[i], Skipped: true}
			continue
		}
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &Report{
		Grid:        g,
		Cells:       len(cells),
		Divergences: []Divergence{},
		ByAllocator: make(map[string]AllocatorSummary),
	}
	for i := range results {
		r := &results[i]
		sum := rep.ByAllocator[r.Allocator]
		switch {
		case r.Skipped:
			rep.Skipped++
		case r.OK:
			rep.Passed++
			sum.Cells++
			sum.RefInstrs += r.RefInstrs
			sum.AllocInstrs += r.AllocInstrs
			sum.SpillOps += r.SpillOps
		default:
			sum.Cells++
			sum.Divergent++
			rep.Divergences = append(rep.Divergences, *r.Divergence)
		}
		rep.ByAllocator[r.Allocator] = sum
	}
	if keepCells {
		rep.Results = results
	}
	return rep
}

// CheckCell runs one conformance cell end to end.
func CheckCell(c Cell, o Options) CellResult {
	res := CellResult{Cell: c}
	maxSteps := o.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	input := o.Input
	if input == nil {
		input = defaultInput
	}
	mm, refRes, gotRes := checkOnce(c, 0, input, maxSteps)
	if mm == nil {
		res.OK = true
		res.RefInstrs = refRes.Counters.Total
		res.AllocInstrs = gotRes.Counters.Total
		res.SpillOps = gotRes.Counters.SpillOverhead()
		res.SaveRestoreOps = gotRes.Counters.SaveRestoreOverhead()
		return res
	}
	div := &Divergence{Cell: c, Mismatch: *mm}
	// Config errors reproduce at any budget; shrinking them would only
	// claim a bogus one-statement reproduction for a bad cell name.
	if !o.NoShrink && mm.Kind != KindConfigError {
		div.MinStmts = shrink(c, mm.Kind, input, maxSteps)
	}
	res.Divergence = div
	return res
}

// checkOnce builds the cell's program (with an optional statement-budget
// override for shrinking) and checks it. stmts == 0 keeps the profile's
// own budget. Unresolvable cell coordinates — unknown allocator,
// machine or profile names — report KindConfigError before any program
// is generated.
func checkOnce(c Cell, stmts int, input []byte, maxSteps int64) (*Mismatch, *vm.Result, *vm.Result) {
	if _, ok := alloc.Lookup(c.Allocator); !ok {
		return &Mismatch{Kind: KindConfigError, Detail: fmt.Sprintf(
			"unknown allocator %q (have %v)", c.Allocator, alloc.Names())}, nil, nil
	}
	mach, err := machineFor(c.Machine)
	if err != nil {
		return &Mismatch{Kind: KindConfigError, Detail: err.Error()}, nil, nil
	}
	cfg, err := progs.ProfileGen(c.Profile, c.Seed)
	if err != nil {
		return &Mismatch{Kind: KindConfigError, Detail: err.Error()}, nil, nil
	}
	if stmts > 0 {
		cfg.Stmts = stmts
	}
	prog := progs.Random(mach, cfg)
	ref, got, mm := Check(prog, mach, c.Allocator, input, maxSteps)
	return mm, ref, got
}

// machineFor resolves a grid machine name: a preset, or the
// parameterized tiny:<ints>,<floats> form the CLIs accept.
func machineFor(name string) (*target.Machine, error) {
	return target.Parse(name)
}

// shrink minimizes a divergent cell by halving the generator's statement
// budget while the divergence (any divergence of the same kind) still
// reproduces, returning the smallest budget that diverges. The cell
// tuple plus this budget is the minimized reproduction recipe.
func shrink(c Cell, kind string, input []byte, maxSteps int64) int {
	cfg, err := progs.ProfileGen(c.Profile, c.Seed)
	if err != nil {
		return 0
	}
	best := cfg.Stmts
	for s := cfg.Stmts / 2; s >= 1; s /= 2 {
		mm, _, _ := checkOnce(c, s, input, maxSteps)
		if mm == nil || mm.Kind != kind {
			break
		}
		best = s
	}
	return best
}
