package conform

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/alloc"
	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/oracle"
	"repro/internal/progs"
	"repro/internal/target"
	"repro/internal/vm"
)

// quality.go measures the quality frontier: how much dynamic spill
// traffic each allocator pays over the oracle's proven optimum, point
// by point over machine × workload × seed, with pair envelopes —
// configurable allocator-vs-allocator and allocator-vs-oracle bounds —
// enforced exactly like semantic divergences, including shrink-
// minimized reproduction recipes.

// Envelope metric names.
const (
	// MetricSpillOps is vm.Counters.SpillOverhead(): every dynamically
	// executed allocator-inserted load, store and move.
	MetricSpillOps = "spill-ops"
	// MetricSpillLoads counts every allocator-inserted load (scan +
	// resolution).
	MetricSpillLoads = "spill-loads"
	// MetricEvictLoads counts only the scan's eviction reloads
	// (TagScanLoad) — the §2 second-chance claim is specifically that
	// splitting lifetimes means reloading at most once per segment, so
	// the comparison against linear scan must not charge binpacking for
	// its resolution phase (a separate cost the paper reports
	// separately).
	MetricEvictLoads = "evict-loads"
	// MetricMemOps is the dynamic memory traffic: loads + stores from
	// both the scan and resolution, excluding register-to-register
	// shuffle moves. This is the unit the oracle optimum is stated in —
	// a whole-lifetime assignment needs no resolution, so its spill
	// cost is pure memory traffic — making mem-ops the commensurable
	// metric for allocator-vs-oracle envelopes.
	MetricMemOps = "mem-ops"
)

// Envelope is one enforced quality bound: on every measured point,
//
//	metric(Subject) ≤ Factor × metric(Baseline) + Slack
//
// An empty Baseline compares against the oracle's proven optimum (best
// paired with mem-ops, the unit the optimum is stated in) and applies
// only to oracle-eligible points.
type Envelope struct {
	Name     string  `json:"name"`
	Subject  string  `json:"subject"`
	Baseline string  `json:"baseline,omitempty"`
	Metric   string  `json:"metric"`
	Factor   float64 `json:"factor"`
	Slack    int64   `json:"slack"`
}

func (e Envelope) String() string {
	base := e.Baseline
	if base == "" {
		base = "oracle-optimum"
	}
	return fmt.Sprintf("%s: %s(%s) ≤ %g×%s(%s)+%d", e.Name, e.Metric, e.Subject, e.Factor, e.Metric, base, e.Slack)
}

// DefaultEnvelopes are the enforced frontier bounds: the paper's
// second-chance allocator must never reload more than plain linear
// scan, and the whole-lifetime allocators must stay within a measured
// factor of the optimum. Factors and slacks were calibrated against
// the full default grid (see README "Quality frontier"); tightening
// them is how a quality regression becomes a test failure.
func DefaultEnvelopes() []Envelope {
	return []Envelope{
		// §2's headline: second-chance binpacking reloads less than the
		// plain scan, because splitting lifetimes means each spilled
		// value reloads at most once per segment instead of once per
		// use. Measured on eviction reloads only — the resolution phase
		// is a separate cost the paper reports separately. The strict
		// pointwise "never worse" is not a theorem: around calls the
		// second chance can evict and reload values linear scan kept in
		// callee-saved registers (on wide-64 linear scan evicts nothing
		// at all while binpack still pays its call-crossing policy), so
		// the enforced bound carries a small factor and slack; in
		// aggregate over the default grid binpack reloads ~0.56× of
		// linear scan.
		{Name: "second-chance-reloads-vs-linearscan", Subject: "binpack", Baseline: "linearscan",
			Metric: MetricEvictLoads, Factor: 1.3, Slack: 384},
		// Each allocator's dynamic memory traffic vs the model optimum.
		// The slack absorbs zero-optimum points (register-rich machines
		// where a spill-free assignment exists but call-crossing
		// policies still touch memory); the factor bounds the
		// high-pressure cells where the optimum is large.
		{Name: "binpack-vs-oracle", Subject: "binpack", Metric: MetricMemOps, Factor: 4.0, Slack: 1024},
		{Name: "twopass-vs-oracle", Subject: "twopass", Metric: MetricMemOps, Factor: 4.0, Slack: 256},
		{Name: "coloring-vs-oracle", Subject: "coloring", Metric: MetricMemOps, Factor: 2.0, Slack: 64},
		{Name: "linearscan-vs-oracle", Subject: "linearscan", Metric: MetricMemOps, Factor: 4.0, Slack: 512},
	}
}

// QualityPoint is one measured program: machine × workload profile ×
// seed. Unlike a conformance Cell it has no allocator coordinate —
// every allocator is measured on the same program so the comparisons
// are paired.
type QualityPoint struct {
	Machine string `json:"machine"`
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
}

func (p QualityPoint) String() string {
	return fmt.Sprintf("%s/%s/seed=%d", p.Machine, p.Profile, p.Seed)
}

// AllocatorMeasure is one allocator's spill traffic on one point.
type AllocatorMeasure struct {
	SpillOps   int64 `json:"spill_ops"`
	SpillLoads int64 `json:"spill_loads"`
	EvictLoads int64 `json:"evict_loads"`
	MemOps     int64 `json:"mem_ops"`
	// Gap is (MemOps+1)/(Optimum+1) on oracle-eligible points (the +1
	// regularizer keeps zero-spill programs meaningful), 0 elsewhere.
	Gap float64 `json:"gap,omitempty"`
}

// EnvelopeViolation is one broken quality bound, reported exactly like
// a semantic divergence: the offending cell plus the smallest statement
// budget at which the same envelope still breaks.
type EnvelopeViolation struct {
	Envelope string `json:"envelope"`
	Divergence
}

// QualityCellResult is the outcome of measuring one point.
type QualityCellResult struct {
	QualityPoint
	// Eligible marks points where the oracle proved its optimum within
	// the search limits; Optimum is meaningful only then.
	Eligible bool  `json:"eligible"`
	Optimum  int64 `json:"optimum,omitempty"`
	// Measures maps allocator name → its measured traffic.
	Measures map[string]AllocatorMeasure `json:"measures,omitempty"`
	// Error reports a measurement failure (bad coordinates, allocation
	// or execution error, or a semantic mismatch caught in passing).
	Error *Divergence `json:"error,omitempty"`
	// Violations are the envelope bounds this point broke.
	Violations []EnvelopeViolation `json:"violations,omitempty"`
}

// QualityGrid spans the points to measure and the allocators to measure
// on them.
type QualityGrid struct {
	Machines   []string `json:"machines"`
	Profiles   []string `json:"profiles"`
	Seeds      []int64  `json:"seeds"`
	Allocators []string `json:"allocators"`
}

// DefaultQualityGrid measures every registered allocator on every
// machine preset and generator profile over nSeeds seeds from seed0.
func DefaultQualityGrid(seed0 int64, nSeeds int) QualityGrid {
	seeds := make([]int64, 0, nSeeds)
	for s := int64(0); s < int64(nSeeds); s++ {
		seeds = append(seeds, seed0+s)
	}
	return QualityGrid{
		Machines:   target.PresetNames(),
		Profiles:   progs.Profiles(),
		Seeds:      seeds,
		Allocators: alloc.Names(),
	}
}

// Points enumerates the grid in deterministic order.
func (g QualityGrid) Points() []QualityPoint {
	pts := make([]QualityPoint, 0, len(g.Machines)*len(g.Profiles)*len(g.Seeds))
	for _, m := range g.Machines {
		for _, p := range g.Profiles {
			for _, s := range g.Seeds {
				pts = append(pts, QualityPoint{Machine: m, Profile: p, Seed: s})
			}
		}
	}
	return pts
}

// QualityOptions tunes a quality run.
type QualityOptions struct {
	Options
	// Limits bounds the oracle search (zero value → oracle.DefaultLimits).
	Limits oracle.Limits
	// Envelopes are the enforced bounds (nil → DefaultEnvelopes).
	Envelopes []Envelope
}

func (o *QualityOptions) limits() oracle.Limits {
	if o.Limits == (oracle.Limits{}) {
		return oracle.DefaultLimits()
	}
	return o.Limits
}

func (o *QualityOptions) envelopes() []Envelope {
	if o.Envelopes == nil {
		return DefaultEnvelopes()
	}
	return o.Envelopes
}

// QualitySummary aggregates one allocator across a run.
type QualitySummary struct {
	Points         int     `json:"points"`
	EligiblePoints int     `json:"eligible_points"`
	SpillOps       int64   `json:"spill_ops"`
	OptimumSpill   int64   `json:"optimum_spill_ops"`
	GeomeanGap     float64 `json:"geomean_gap"`
	MaxGap         float64 `json:"max_gap"`
}

// QualityReport is the outcome of a quality-grid run.
type QualityReport struct {
	Grid       QualityGrid               `json:"grid"`
	Envelopes  []Envelope                `json:"envelopes"`
	Points     int                       `json:"points"`
	Eligible   int                       `json:"eligible"`
	Errors     []Divergence              `json:"errors"`
	Violations []EnvelopeViolation       `json:"violations"`
	Summary    map[string]QualitySummary `json:"summary"`
	Results    []QualityCellResult       `json:"results,omitempty"`
}

// RunQuality measures every point of the grid over a bounded worker
// pool, evaluates the envelopes, shrink-minimizes violations, and
// aggregates the frontier. Results are deterministic and in grid order.
func RunQuality(g QualityGrid, o QualityOptions, keepResults bool) *QualityReport {
	pts := g.Points()
	results := make([]QualityCellResult, len(pts))

	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		stopped bool
	)
	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = checkQualityPoint(pts[i], 0, g.Allocators, &o)
				if !o.NoShrink {
					for vi := range results[i].Violations {
						v := &results[i].Violations[vi]
						v.MinStmts = shrinkQuality(pts[i], v.Envelope, g.Allocators, &o)
					}
				}
				if o.FailFast && (results[i].Error != nil || len(results[i].Violations) > 0) {
					mu.Lock()
					stopped = true
					mu.Unlock()
				}
			}
		}()
	}
	for i := range pts {
		mu.Lock()
		stop := stopped
		mu.Unlock()
		if stop {
			results[i] = QualityCellResult{QualityPoint: pts[i]}
			continue
		}
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &QualityReport{
		Grid:       g,
		Envelopes:  o.envelopes(),
		Points:     len(pts),
		Errors:     []Divergence{},
		Violations: []EnvelopeViolation{},
		Summary:    make(map[string]QualitySummary),
	}
	type gapAgg struct {
		logSum float64
		n      int
	}
	gaps := make(map[string]*gapAgg)
	for i := range results {
		r := &results[i]
		if r.Error != nil {
			rep.Errors = append(rep.Errors, *r.Error)
			continue
		}
		if r.Eligible {
			rep.Eligible++
		}
		rep.Violations = append(rep.Violations, r.Violations...)
		for name, m := range r.Measures {
			sum := rep.Summary[name]
			sum.Points++
			sum.SpillOps += m.SpillOps
			if r.Eligible {
				sum.EligiblePoints++
				sum.OptimumSpill += r.Optimum
				if m.Gap > sum.MaxGap {
					sum.MaxGap = m.Gap
				}
				ga := gaps[name]
				if ga == nil {
					ga = &gapAgg{}
					gaps[name] = ga
				}
				ga.logSum += math.Log(m.Gap)
				ga.n++
			}
			rep.Summary[name] = sum
		}
	}
	for name, ga := range gaps {
		sum := rep.Summary[name]
		sum.GeomeanGap = math.Exp(ga.logSum / float64(ga.n))
		rep.Summary[name] = sum
	}
	sort.Slice(rep.Violations, func(i, j int) bool {
		if rep.Violations[i].Envelope != rep.Violations[j].Envelope {
			return rep.Violations[i].Envelope < rep.Violations[j].Envelope
		}
		return rep.Violations[i].Cell.String() < rep.Violations[j].Cell.String()
	})
	if keepResults {
		rep.Results = results
	}
	return rep
}

// metricOf selects the envelope metric from a measure.
func metricOf(m AllocatorMeasure, metric string) int64 {
	switch metric {
	case MetricSpillLoads:
		return m.SpillLoads
	case MetricEvictLoads:
		return m.EvictLoads
	case MetricMemOps:
		return m.MemOps
	default:
		return m.SpillOps
	}
}

// checkQualityPoint measures one point: a profiled reference run, the
// oracle optimum, every allocator's spill traffic, and the envelope
// checks. stmts > 0 overrides the profile's statement budget (used by
// shrinking).
func checkQualityPoint(pt QualityPoint, stmts int, allocators []string, o *QualityOptions) QualityCellResult {
	res := QualityCellResult{QualityPoint: pt, Measures: make(map[string]AllocatorMeasure)}
	fail := func(allocator, kind, detail string) QualityCellResult {
		res.Error = &Divergence{
			Cell:     Cell{Allocator: allocator, Machine: pt.Machine, Profile: pt.Profile, Seed: pt.Seed},
			Mismatch: Mismatch{Kind: kind, Detail: detail},
		}
		return res
	}

	maxSteps := o.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	input := o.Input
	if input == nil {
		input = defaultInput
	}

	mach, err := machineFor(pt.Machine)
	if err != nil {
		return fail("", KindConfigError, err.Error())
	}
	cfg, err := progs.ProfileGen(pt.Profile, pt.Seed)
	if err != nil {
		return fail("", KindConfigError, err.Error())
	}
	if stmts > 0 {
		cfg.Stmts = stmts
	}
	prog := progs.Random(mach, cfg)

	pf, ref, err := oracle.CollectProfile(prog, mach, input, maxSteps)
	if err != nil {
		return fail("", KindExecError, fmt.Sprintf("reference execution: %v", err))
	}
	optimum, proven := oracle.OptimalCost(prog, mach, pf, o.limits())
	res.Eligible = proven
	if proven {
		res.Optimum = optimum
	}

	for _, name := range allocators {
		var allocated *ir.Program
		if name == "oracle" {
			// The registry oracle plans with static weights; the quality
			// run feeds it the recorded profile so its measured traffic
			// must land exactly on the proven optimum — a live check of
			// the cost model on every eligible point.
			a := oracle.New(mach)
			a.SetLimits(o.limits())
			a.SetProfile(pf)
			allocated, _, err = experiments.PipelineChecked(prog, mach, a,
				experiments.PipelineChecks{Verify: true, Validate: true})
		} else {
			allocated, _, err = Allocate(prog, mach, name)
		}
		if err != nil {
			return fail(name, KindAllocError, err.Error())
		}
		got, err := vm.Run(allocated, vm.Config{Mach: mach, Input: input, MaxSteps: maxSteps, Paranoid: true})
		if err != nil {
			return fail(name, KindExecError, fmt.Sprintf("allocated execution: %v", err))
		}
		if mm := Diff(ref, got); mm != nil {
			return fail(name, mm.Kind, mm.Detail)
		}
		c := &got.Counters
		m := AllocatorMeasure{
			SpillOps:   c.SpillOverhead(),
			SpillLoads: c.ByTag[ir.TagScanLoad] + c.ByTag[ir.TagResolveLoad],
			EvictLoads: c.ByTag[ir.TagScanLoad],
			MemOps: c.ByTag[ir.TagScanLoad] + c.ByTag[ir.TagScanStore] +
				c.ByTag[ir.TagResolveLoad] + c.ByTag[ir.TagResolveStore],
		}
		if proven {
			m.Gap = float64(m.MemOps+1) / float64(optimum+1)
		}
		res.Measures[name] = m
	}

	violate := func(envName, subject, detail string) {
		res.Violations = append(res.Violations, EnvelopeViolation{
			Envelope: envName,
			Divergence: Divergence{
				Cell:     Cell{Allocator: subject, Machine: pt.Machine, Profile: pt.Profile, Seed: pt.Seed},
				Mismatch: Mismatch{Kind: KindQuality, Detail: detail},
			},
		})
	}

	// Oracle exactness is a hard invariant, not a tunable envelope: on
	// every eligible point the profile-fed oracle's measured traffic
	// must equal its predicted optimum in both directions (above means
	// the rewrite cost more than planned; below means the "optimum"
	// was not one).
	if om, ok := res.Measures["oracle"]; proven && ok && om.SpillOps != optimum {
		violate("oracle-exactness", "oracle", fmt.Sprintf(
			"oracle measured %d spill ops against its own proven optimum %d", om.SpillOps, optimum))
	}

	for _, e := range o.envelopes() {
		sm, ok := res.Measures[e.Subject]
		if !ok {
			continue
		}
		var base int64
		baseName := e.Baseline
		if e.Baseline == "" {
			if !proven {
				continue
			}
			base = optimum
			baseName = "oracle-optimum"
		} else {
			bm, ok := res.Measures[e.Baseline]
			if !ok {
				continue
			}
			base = metricOf(bm, e.Metric)
		}
		subj := metricOf(sm, e.Metric)
		if float64(subj) > e.Factor*float64(base)+float64(e.Slack) {
			violate(e.Name, e.Subject, fmt.Sprintf(
				"%s(%s)=%d exceeds %g×%s(%s)+%d = %g",
				e.Metric, e.Subject, subj, e.Factor, e.Metric, baseName, e.Slack,
				e.Factor*float64(base)+float64(e.Slack)))
		}
	}
	return res
}

// shrinkQuality minimizes a violating point by halving the generator's
// statement budget while the named envelope still breaks, mirroring
// the semantic shrinker: the point plus the returned budget is the
// reproduction recipe.
func shrinkQuality(pt QualityPoint, envelope string, allocators []string, o *QualityOptions) int {
	cfg, err := progs.ProfileGen(pt.Profile, pt.Seed)
	if err != nil {
		return 0
	}
	best := cfg.Stmts
	for s := cfg.Stmts / 2; s >= 1; s /= 2 {
		r := checkQualityPoint(pt, s, allocators, o)
		again := false
		for _, v := range r.Violations {
			if v.Envelope == envelope {
				again = true
				break
			}
		}
		if !again {
			break
		}
		best = s
	}
	return best
}
