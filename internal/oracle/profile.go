package oracle

import (
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/target"
	"repro/internal/vm"
)

// Profile is a recorded block-frequency profile: how many times each
// basic block of each procedure began executing in one reference run
// (vm.Config.CountBlocks). Block and procedure names are stable across
// Clone and dead-code elimination, so a profile recorded on the
// original program weighs the pipeline's cloned, DCE'd procedures
// exactly.
type Profile struct {
	visits map[string]map[string]int64
}

// NewProfile wraps raw visit counts (vm.Result.BlockVisits).
func NewProfile(visits map[string]map[string]int64) *Profile {
	return &Profile{visits: visits}
}

// CollectProfile executes prog once on the VM with block counting and
// returns the profile plus the full reference result (so callers reuse
// the run for differential checks instead of paying for a second one).
func CollectProfile(prog *ir.Program, mach *target.Machine, input []byte, maxSteps int64) (*Profile, *vm.Result, error) {
	res, err := vm.Run(prog, vm.Config{Mach: mach, Input: input, MaxSteps: maxSteps, CountBlocks: true})
	if err != nil {
		return nil, nil, err
	}
	return NewProfile(res.BlockVisits), res, nil
}

// Freq returns the recorded entry count of the named block, and whether
// the procedure appears in the profile at all.
func (pf *Profile) Freq(proc, block string) (int64, bool) {
	pv, ok := pf.visits[proc]
	if !ok {
		return 0, false
	}
	return pv[block], true
}

// FreqFunc returns the block-weight function for one procedure: the
// recorded frequency (0 for blocks the run never reached — spilling a
// temporary only touched by dead blocks is free, and the VM will
// measure it as free). A nil profile yields the static 10^loop-depth
// weights.
func (pf *Profile) FreqFunc(proc string) func(*ir.Block) int64 {
	if pf == nil {
		return StaticFreq
	}
	pv := pf.visits[proc]
	return func(b *ir.Block) int64 { return pv[b.Name] }
}

// OptimalCost computes the proven minimum total dynamic spill overhead
// of prog under the profile, replicating the checked pipeline's pass
// ordering (clone, then dead-code elimination, then allocation) per
// procedure so the optimum is commensurable with what
// experiments.PipelineChecked-allocated programs actually execute.
// proven is false if any procedure's search exceeded lim; the returned
// cost is then only an upper bound (the best incumbent found).
func OptimalCost(prog *ir.Program, mach *target.Machine, pf *Profile, lim Limits) (cost int64, proven bool) {
	proven = true
	for _, p := range prog.Procs {
		in := p.Clone()
		opt.DeadCodeElim(in)
		plan := planProc(in, mach, pf.FreqFunc(p.Name), lim)
		cost += plan.Cost
		if !plan.Proven {
			proven = false
		}
	}
	return cost, proven
}
