package oracle

import (
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/ir"
	"repro/internal/target"
)

// Allocator adapts the branch-and-bound planner to the allocator
// registry. It is registered as "oracle" behind the size guard in
// Limits: procedures past the budgets still allocate correctly (the
// greedy incumbent is a valid whole-lifetime assignment), they just
// lose the optimality proof — so the oracle can sit in the full
// conformance grid without a size carve-out.
type Allocator struct {
	mach          *target.Machine
	lim           Limits
	profile       *Profile
	profileAllocs bool
}

// New returns an oracle allocator with DefaultLimits and static
// 10^loop-depth weights.
func New(m *target.Machine) *Allocator { return &Allocator{mach: m, lim: DefaultLimits()} }

func init() {
	alloc.MustRegister("oracle", func(m *target.Machine) alloc.Allocator { return New(m) })
}

// Name identifies the allocator in reports.
func (a *Allocator) Name() string { return "oracle (branch-and-bound)" }

// SetLimits replaces the search budgets.
func (a *Allocator) SetLimits(lim Limits) { a.lim = lim }

// SetProfile makes subsequent allocations minimize profile-weighted
// dynamic spill cost instead of the static loop-depth estimate. The
// profile must come from a run of the same program, joined by
// procedure and block name; procedures absent from the profile are
// treated as never executed (all weights zero).
func (a *Allocator) SetProfile(pf *Profile) { a.profile = pf }

// SetPhaseProfile toggles heap-allocation sampling at phase boundaries.
func (a *Allocator) SetPhaseProfile(on bool) { a.profileAllocs = on }

var _ alloc.Allocator = (*Allocator)(nil)
var _ alloc.OwnedAllocator = (*Allocator)(nil)

// Allocate clones p and allocates the clone.
func (a *Allocator) Allocate(orig *ir.Proc) (*alloc.Result, error) {
	return a.AllocateOwned(orig.Clone())
}

// AllocateOwned allocates a procedure the caller owns: p is rewritten
// in place and must not be used afterwards.
func (a *Allocator) AllocateOwned(p *ir.Proc) (*alloc.Result, error) {
	res := &alloc.Result{Proc: p}
	tm := alloc.NewTimer(a.profileAllocs)
	start := time.Now()

	plan := planProc(p, a.mach, a.profile.FreqFunc(p.Name), a.lim)
	tm.Mark(&res.Stats, alloc.PhaseScan)

	res.Stats.Candidates = p.NumTemps()
	res.Stats.Rounds = int(plan.Nodes)

	asn := alloc.NewAssignment(p)
	copy(asn.Reg, plan.Assign)
	usedCallee := make([]bool, a.mach.NumRegs())
	frame := alloc.NewFrame(p)
	alloc.RewriteAssigned(p, a.mach, asn, frame, alloc.PickScratch(a.mach), usedCallee)
	tm.Mark(&res.Stats, alloc.PhaseMoves)
	res.Stats.UsedCalleeSaved = alloc.InsertCalleeSaves(p, a.mach, usedCallee)
	res.Stats.AllocTime = time.Since(start)
	res.Stats.SpilledTemps = frame.NumSpilled()
	p.Renumber()
	res.Stats.Inserted = alloc.CountInserted(p)
	if err := alloc.CheckNoTemps(p); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name(), err)
	}
	tm.Mark(&res.Stats, alloc.PhaseOther)
	return res, nil
}
