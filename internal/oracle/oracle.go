// Package oracle implements an exhaustive register allocator: a
// branch-and-bound search over whole-lifetime assignments that provably
// minimizes the dynamic spill cost the VM counts
// (vm.Counters.SpillOverhead()). It exists to measure the other
// allocators, not to compete with them on speed — the conformance
// harness compares every fast allocator's spill traffic against the
// oracle's optimum, turning the paper's quality-vs-speed tradeoff into
// a measured frontier (ROADMAP "quality frontier"; see the
// combinatorial-allocation line in PAPERS.md, and Bouchez/Darte/
// Rastello for why the spill-everywhere problem needs a search).
//
// The model is the paper's two-pass spill-everywhere model (§3.1): each
// temporary lives wholly in one register or wholly in memory, memory
// references run through the reserved scratch registers, and two
// temporaries may share a register when their live segments never
// overlap (lifetime holes, §2.5). Within that model the cost of an
// assignment is separable: a memory-resident temporary costs one
// scan-load per use occurrence and one scan-store per def occurrence,
// each weighted by how often its block executes — exactly the spill
// code alloc.RewriteAssigned emits and the VM tags. The search
// therefore minimizes
//
//	Σ_{t in memory} weight(t),  weight(t) = Σ_refs freq(block(ref))
//
// with freq taken from a recorded execution profile (Profile) or, when
// none is supplied, from static 10^loop-depth weights.
//
// Optimality caveats, stated honestly: the optimum is relative to this
// model — whole lifetimes, the standard two reserved scratch registers
// per file, and segment-overlap interference. Allocators that split
// lifetimes (second-chance binpacking) can occasionally beat it, which
// the quality envelopes absorb with factors ≥ 1.
package oracle

import (
	"math/bits"
	"sort"

	"repro/internal/alloc"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/target"
)

// Limits bounds the search so the oracle stays usable behind the
// allocator registry: procedures past the statement budget skip the
// search entirely, and within it the kernel size and node budget cap
// the exponential worst case.
type Limits struct {
	// MaxInstrs is the per-procedure statement budget: larger
	// procedures are never searched (the registry allocator falls back
	// to the greedy incumbent; quality measurement marks them
	// ineligible unless the kernel is empty).
	MaxInstrs int
	// MaxKernel bounds the number of temporaries that survive
	// kernelization and enter branch-and-bound.
	MaxKernel int
	// MaxNodes bounds the search tree; an exhausted budget keeps the
	// best incumbent but forfeits the optimality proof.
	MaxNodes int64
}

// DefaultLimits are tuned so the full conformance grid stays fast while
// nearly every generated program is proven optimal.
func DefaultLimits() Limits { return Limits{MaxInstrs: 160, MaxKernel: 24, MaxNodes: 200_000} }

// Plan is the outcome of planning one procedure.
type Plan struct {
	// Assign maps each temporary to its register, target.NoReg = memory.
	Assign []target.Reg
	// Cost is the predicted dynamic spill overhead of the assignment
	// under the weights the plan was computed with: for a
	// profile-weighted plan it equals the VM's SpillOverhead() of the
	// rewritten procedure exactly.
	Cost int64
	// Proven reports that the search exhausted the space within Limits,
	// i.e. Cost is the model optimum, not just the best incumbent.
	Proven bool
	// Items counts the undecided temporaries (non-empty lifetime,
	// positive weight, at least one legal register); Kernel counts how
	// many survived kernelization into branch-and-bound.
	Items, Kernel int
	// Nodes is the number of search-tree nodes expanded.
	Nodes int64
}

// StaticFreq is the profile-free block weight: 10^loop-depth, the
// classic static spill heuristic (capped to keep products in int64).
func StaticFreq(b *ir.Block) int64 {
	d := b.Depth
	if d > 9 {
		d = 9
	}
	f := int64(1)
	for i := 0; i < d; i++ {
		f *= 10
	}
	return f
}

// spillWeights computes weight(t) = Σ over every use and def occurrence
// of t of freq(block). Occurrences, not instructions: RewriteAssigned
// emits one scan-load per use operand and one scan-store per def
// operand, so a temporary appearing twice in one instruction pays
// twice.
func spillWeights(p *ir.Proc, freq func(*ir.Block) int64) []int64 {
	w := make([]int64, p.NumTemps())
	for _, b := range p.Blocks {
		f := freq(b)
		if f == 0 {
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, o := range in.Uses {
				if o.Kind == ir.KindTemp {
					w[o.Temp] += f
				}
			}
			for _, o := range in.Defs {
				if o.Kind == ir.KindTemp {
					w[o.Temp] += f
				}
			}
		}
	}
	return w
}

// item is one undecided temporary in the search.
type item struct {
	temp   ir.Temp
	class  target.Class
	weight int64
	segs   []lifetime.Segment
	cands  []target.Reg
	nbhd   []int // indices of same-class items with overlapping segments
}

// overlap reports whether two sorted segment lists share a position —
// the interference criterion: the temporaries are live simultaneously.
func overlap(a, b []lifetime.Segment) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].End < b[j].Start:
			i++
		case b[j].End < a[i].Start:
			j++
		default:
			return true
		}
	}
	return false
}

// planProc computes the minimum-spill-cost whole-lifetime assignment
// for p under the given block-frequency function. p is mutated
// (Renumber, loop depths); callers pass owned clones.
func planProc(p *ir.Proc, mach *target.Machine, freq func(*ir.Block) int64, lim Limits) *Plan {
	p.Renumber()
	cfg.ComputeLoopDepths(p)
	lv := dataflow.Compute(p)
	lt := lifetime.Compute(p, lv)
	rb := lifetime.ComputeRegBusy(p, mach)
	w := spillWeights(p, freq)

	scratch := alloc.PickScratch(mach)
	reserved := map[target.Reg]bool{
		scratch.Int[0]: true, scratch.Int[1]: true,
		scratch.Float[0]: true, scratch.Float[1]: true,
	}

	plan := &Plan{Assign: make([]target.Reg, p.NumTemps())}
	for i := range plan.Assign {
		plan.Assign[i] = target.NoReg
	}

	// Partition the temporaries: forced to memory (no legal register),
	// free to spill (zero weight — memory costs nothing and only
	// relaxes constraints, so an optimal all-memory choice exists), and
	// the undecided rest.
	var live []*item
	for _, iv := range lt.Intervals {
		if iv.Empty() {
			continue
		}
		t := iv.Temp
		c := p.TempClass(t)
		segs := append([]lifetime.Segment(nil), iv.Segments...)
		var cands []target.Reg
		for _, r := range mach.AllocOrder(c) {
			if reserved[r] {
				continue
			}
			ok := true
			for _, s := range segs {
				if !rb.FreeThrough(r, s.Start, s.End) {
					ok = false
					break
				}
			}
			if ok {
				cands = append(cands, r)
			}
		}
		switch {
		case len(cands) == 0:
			plan.Cost += w[t]
		case w[t] == 0:
			// stays in memory at zero cost
		default:
			live = append(live, &item{temp: t, class: c, weight: w[t], segs: segs, cands: cands})
		}
	}
	plan.Items = len(live)

	// Interference graph over the undecided items. Classes never share
	// registers, so only same-class overlaps conflict.
	for i := range live {
		for j := i + 1; j < len(live); j++ {
			if live[i].class == live[j].class && overlap(live[i].segs, live[j].segs) {
				live[i].nbhd = append(live[i].nbhd, j)
				live[j].nbhd = append(live[j].nbhd, i)
			}
		}
	}

	// Kernelization: an item with more candidate registers than
	// remaining conflicting neighbors is always colorable — remove it
	// and color it greedily after the search, in reverse removal order.
	// This leaves only the genuinely contended core for branch-and-
	// bound (on register-rich machines the kernel is usually empty).
	removed := make([]bool, len(live))
	degree := make([]int, len(live))
	for i := range live {
		degree[i] = len(live[i].nbhd)
	}
	var stack []int
	for changed := true; changed; {
		changed = false
		for i := range live {
			if !removed[i] && len(live[i].cands) > degree[i] {
				removed[i] = true
				stack = append(stack, i)
				for _, j := range live[i].nbhd {
					if !removed[j] {
						degree[j]--
					}
				}
				changed = true
			}
		}
	}
	var kernel []int
	for i := range live {
		if !removed[i] {
			kernel = append(kernel, i)
		}
	}
	// Highest weight first: the search decides the expensive
	// temporaries early, so pruning bites soonest.
	sort.SliceStable(kernel, func(a, b int) bool {
		wa, wb := live[kernel[a]].weight, live[kernel[b]].weight
		if wa != wb {
			return wa > wb
		}
		return live[kernel[a]].temp < live[kernel[b]].temp
	})
	plan.Kernel = len(kernel)

	// itemReg is the per-item register decision (NoReg = memory).
	itemReg := make([]target.Reg, len(live))
	for i := range itemReg {
		itemReg[i] = target.NoReg
	}

	kernelCost := searchKernel(live, kernel, itemReg, mach, p, lim, plan)
	plan.Cost += kernelCost

	// Reinsert the kernelized items in reverse removal order; the
	// degree invariant guarantees a free candidate among the registers
	// taken by still-present neighbors.
	for s := len(stack) - 1; s >= 0; s-- {
		i := stack[s]
		used := make(map[target.Reg]bool, len(live[i].nbhd))
		for _, j := range live[i].nbhd {
			if itemReg[j] != target.NoReg {
				used[itemReg[j]] = true
			}
		}
		for _, r := range live[i].cands {
			if !used[r] {
				itemReg[i] = r
				break
			}
		}
		if itemReg[i] == target.NoReg {
			// Unreachable by construction; degrade safely.
			plan.Cost += live[i].weight
			plan.Proven = false
		}
	}

	for i, it := range live {
		plan.Assign[it.temp] = itemReg[i]
	}
	return plan
}

// searchKernel assigns the kernel items, minimizing the spill weight,
// writing the decisions into itemReg and setting plan.Proven/Nodes.
// Returns the kernel's contribution to the cost.
func searchKernel(live []*item, kernel []int, itemReg []target.Reg, mach *target.Machine, p *ir.Proc, lim Limits, plan *Plan) int64 {
	n := len(kernel)
	if n == 0 {
		plan.Proven = true
		return 0
	}

	// Greedy first-fit incumbent in kernel (descending weight) order —
	// a binpack-style packing of intervals into register bins that the
	// search then tries to beat.
	kpos := make(map[int]int, n) // live index -> kernel position
	for ki, i := range kernel {
		kpos[i] = ki
	}
	greedy := func() int64 {
		var cost int64
		for _, i := range kernel {
			used := make(map[target.Reg]bool, len(live[i].nbhd))
			for _, j := range live[i].nbhd {
				if _, inKernel := kpos[j]; inKernel && itemReg[j] != target.NoReg {
					used[itemReg[j]] = true
				}
			}
			itemReg[i] = target.NoReg
			for _, r := range live[i].cands {
				if !used[r] {
					itemReg[i] = r
					break
				}
			}
			if itemReg[i] == target.NoReg {
				cost += live[i].weight
			}
		}
		return cost
	}
	best := greedy()

	eligible := p.NumInstrs() <= lim.MaxInstrs && n <= lim.MaxKernel
	if !eligible {
		plan.Proven = false
		return best
	}

	// Dense register bits: the union of kernel candidates, numbered in
	// allocation-preference order so ascending-bit iteration preserves
	// each machine's AllocOrder.
	bitOf := make(map[target.Reg]int)
	var regOfBit []target.Reg
	for c := target.Class(0); c < target.NumClasses; c++ {
		for _, r := range mach.AllocOrder(c) {
			for _, i := range kernel {
				if live[i].class != c {
					continue
				}
				found := false
				for _, cr := range live[i].cands {
					if cr == r {
						found = true
						break
					}
				}
				if found {
					if _, ok := bitOf[r]; !ok {
						bitOf[r] = len(regOfBit)
						regOfBit = append(regOfBit, r)
					}
					break
				}
			}
		}
	}
	if len(regOfBit) > 64 {
		plan.Proven = false
		return best
	}

	cand := make([]uint64, n)
	wgt := make([]int64, n)
	nbhd := make([][]int, n) // kernel-local forward neighbors
	for ki, i := range kernel {
		for _, r := range live[i].cands {
			cand[ki] |= 1 << bitOf[r]
		}
		wgt[ki] = live[i].weight
		for _, j := range live[i].nbhd {
			if kj, ok := kpos[j]; ok && kj > ki {
				nbhd[ki] = append(nbhd[ki], kj)
			}
		}
	}

	// Register symmetry: two registers whose candidate columns over the
	// kernel are identical are interchangeable while both are unused —
	// trying one of each column class suffices.
	col := make([]int, len(regOfBit))
	colSig := make(map[uint64]int)
	for b := range regOfBit {
		var sig uint64
		for ki := range cand {
			if cand[ki]&(1<<b) != 0 {
				sig |= 1 << ki
			}
		}
		id, ok := colSig[sig]
		if !ok {
			id = len(colSig)
			colSig[sig] = id
		}
		col[b] = id
	}

	banned := make([]uint64, n) // registers taken by assigned neighbors
	as := make([]int8, n)       // current: bit index, -1 memory, -2 undecided
	bestAs := make([]int8, n)   // best complete assignment
	useCount := make([]int, len(regOfBit))
	for ki := range as {
		as[ki] = -2
	}
	// Seed bestAs from the greedy incumbent.
	for ki, i := range kernel {
		if itemReg[i] == target.NoReg {
			bestAs[ki] = -1
		} else {
			bestAs[ki] = int8(bitOf[itemReg[i]])
		}
	}

	memo := make(map[string]int64)
	keyBuf := make([]byte, 0, 8*(n+1))
	stateKey := func(idx int) string {
		keyBuf = keyBuf[:0]
		keyBuf = append(keyBuf, byte(idx))
		for i := idx; i < n; i++ {
			avail := cand[i] &^ banned[i]
			for s := 0; s < 64; s += 8 {
				keyBuf = append(keyBuf, byte(avail>>s))
			}
		}
		return string(keyBuf)
	}

	var undoBuf []int
	aborted := false
	var nodes int64
	var rec func(idx int, cost int64)
	rec = func(idx int, cost int64) {
		if aborted {
			return
		}
		nodes++
		if nodes > lim.MaxNodes {
			aborted = true
			return
		}
		// Forced-memory lower bound over the remaining items.
		lb := int64(0)
		for i := idx; i < n; i++ {
			if cand[i]&^banned[i] == 0 {
				lb += wgt[i]
			}
		}
		if cost+lb >= best {
			return
		}
		if idx == n {
			best = cost
			copy(bestAs, as)
			return
		}
		key := stateKey(idx)
		if prev, ok := memo[key]; ok && prev <= cost {
			return
		}
		memo[key] = cost

		avail := cand[idx] &^ banned[idx]
		var triedCol uint64
		for m := avail; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			if useCount[b] == 0 {
				if triedCol&(1<<col[b]) != 0 {
					continue // symmetric to an unused register already tried
				}
				triedCol |= 1 << col[b]
			}
			as[idx] = int8(b)
			useCount[b]++
			mark := len(undoBuf)
			for _, j := range nbhd[idx] {
				if banned[j]&(1<<b) == 0 {
					banned[j] |= 1 << b
					undoBuf = append(undoBuf, j)
				}
			}
			rec(idx+1, cost)
			for _, j := range undoBuf[mark:] {
				banned[j] &^= 1 << b
			}
			undoBuf = undoBuf[:mark]
			useCount[b]--
			as[idx] = -2
		}
		// Memory branch last: registers are free, memory costs weight.
		as[idx] = -1
		rec(idx+1, cost+wgt[idx])
		as[idx] = -2
	}
	rec(0, 0)
	plan.Nodes = nodes
	plan.Proven = !aborted

	for ki, i := range kernel {
		if bestAs[ki] < 0 {
			itemReg[i] = target.NoReg
		} else {
			itemReg[i] = regOfBit[bestAs[ki]]
		}
	}
	return best
}
