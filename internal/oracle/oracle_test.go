package oracle

import (
	"bytes"
	"testing"

	"repro/internal/alloc"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/progs"
	"repro/internal/target"
	"repro/internal/vm"
)

// bruteItem mirrors the planner's item construction, re-derived
// independently so the brute force does not inherit a construction bug.
type bruteItem struct {
	temp   ir.Temp
	class  target.Class
	weight int64
	segs   []lifetime.Segment
	cands  []target.Reg
}

// bruteForce finds the true minimum spill cost by enumerating every
// whole-lifetime assignment (each temporary: one of its legal
// registers, or memory), with only feasibility filtering. Returns ok =
// false when the space is too large to enumerate.
func bruteForce(p *ir.Proc, mach *target.Machine) (int64, int, bool) {
	p.Renumber()
	cfg.ComputeLoopDepths(p)
	lv := dataflow.Compute(p)
	lt := lifetime.Compute(p, lv)
	rb := lifetime.ComputeRegBusy(p, mach)
	w := spillWeights(p, StaticFreq)

	scratch := alloc.PickScratch(mach)
	reserved := map[target.Reg]bool{
		scratch.Int[0]: true, scratch.Int[1]: true,
		scratch.Float[0]: true, scratch.Float[1]: true,
	}

	var items []bruteItem
	for _, iv := range lt.Intervals {
		if iv.Empty() {
			continue
		}
		it := bruteItem{
			temp:  iv.Temp,
			class: p.TempClass(iv.Temp),
			segs:  append([]lifetime.Segment(nil), iv.Segments...),
		}
		it.weight = w[iv.Temp]
		for _, r := range mach.AllocOrder(it.class) {
			if reserved[r] {
				continue
			}
			ok := true
			for _, s := range it.segs {
				if !rb.FreeThrough(r, s.Start, s.End) {
					ok = false
					break
				}
			}
			if ok {
				it.cands = append(it.cands, r)
			}
		}
		items = append(items, it)
	}
	if len(items) > 14 {
		return 0, len(items), false
	}

	best := int64(1) << 62
	chosen := make([]target.Reg, len(items))
	var nodes int64
	var rec func(i int, cost int64)
	rec = func(i int, cost int64) {
		nodes++
		if cost >= best {
			return
		}
		if i == len(items) {
			best = cost
			return
		}
		it := &items[i]
	next:
		for _, r := range it.cands {
			// Feasible iff no earlier same-class overlapping item
			// holds r.
			for j := 0; j < i; j++ {
				if chosen[j] == r && items[j].class == it.class && overlap(items[j].segs, it.segs) {
					continue next
				}
			}
			chosen[i] = r
			rec(i+1, cost)
		}
		chosen[i] = target.NoReg
		rec(i+1, cost+it.weight)
	}
	rec(0, 0)
	if nodes > 50_000_000 {
		return 0, len(items), false
	}
	return best, len(items), true
}

// TestBruteForceAgreement is the oracle's ground-truth check: on a
// fixture set of tiny random programs the branch-and-bound result must
// equal an exhaustive enumeration's minimum, including all the
// planner's shortcuts (zero-weight spilling, kernelization, symmetry
// breaking, memoization).
func TestBruteForceAgreement(t *testing.T) {
	machines := []*target.Machine{target.Tiny(5, 3), target.Tiny(4, 2), target.Tiny(6, 4)}
	checked, nontrivial := 0, 0
	for _, mach := range machines {
		for seed := int64(1); seed <= 12; seed++ {
			gen := progs.DefaultGen(seed)
			gen.Stmts = 10
			prog := progs.Random(mach, gen)
			for _, p := range prog.Procs {
				want, n, ok := bruteForce(p.Clone(), mach)
				if !ok {
					continue
				}
				plan := planProc(p.Clone(), mach, StaticFreq, DefaultLimits())
				if !plan.Proven {
					t.Fatalf("%s/%s seed %d: tiny fixture not proven (items %d kernel %d nodes %d)",
						mach.Name, p.Name, seed, plan.Items, plan.Kernel, plan.Nodes)
				}
				if plan.Cost != want {
					t.Fatalf("%s/%s seed %d: oracle cost %d, brute force %d (%d items)",
						mach.Name, p.Name, seed, plan.Cost, want, n)
				}
				checked++
				if want > 0 {
					nontrivial++
				}
			}
		}
	}
	if checked < 20 || nontrivial < 5 {
		t.Fatalf("fixture set too weak: %d fixtures checked, %d with nonzero optimum", checked, nontrivial)
	}
}

// TestPredictedCostMatchesVM checks cost-model exactness: the
// profile-weighted optimum predicted by the planner equals the VM's
// measured SpillOverhead of the oracle-allocated program, instruction
// for instruction, through the full checked pipeline (DCE, allocate,
// verify, peephole, validate).
func TestPredictedCostMatchesVM(t *testing.T) {
	input := []byte("oracle exactness input 0123456789")
	machines := []*target.Machine{target.Tiny(6, 4), target.Tiny(5, 3)}
	proven := 0
	for _, mach := range machines {
		for seed := int64(40); seed < 52; seed++ {
			gen := progs.DefaultGen(seed)
			gen.Stmts = 30
			prog := progs.Random(mach, gen)

			pf, ref, err := CollectProfile(prog, mach, input, 20_000_000)
			if err != nil {
				t.Fatalf("%s seed %d: profile: %v", mach.Name, seed, err)
			}
			optimum, ok := OptimalCost(prog, mach, pf, DefaultLimits())
			if !ok {
				continue
			}
			proven++

			a := New(mach)
			a.SetProfile(pf)
			allocd, _, err := experiments.PipelineChecked(prog, mach, a,
				experiments.PipelineChecks{Verify: true, Validate: true})
			if err != nil {
				t.Fatalf("%s seed %d: pipeline: %v", mach.Name, seed, err)
			}
			got, err := vm.Run(allocd, vm.Config{Mach: mach, Input: input, Paranoid: true})
			if err != nil {
				t.Fatalf("%s seed %d: allocated run: %v", mach.Name, seed, err)
			}
			if !bytes.Equal(ref.Output, got.Output) || ref.RetValue != got.RetValue {
				t.Fatalf("%s seed %d: oracle allocation changed program behavior", mach.Name, seed)
			}
			if spill := got.Counters.SpillOverhead(); spill != optimum {
				t.Fatalf("%s seed %d: predicted optimum %d, VM measured %d",
					mach.Name, seed, optimum, spill)
			}
		}
	}
	if proven < 10 {
		t.Fatalf("only %d programs were proven optimal; exactness barely exercised", proven)
	}
}

// TestRegistryOracleConforms drives the oracle through its registry
// name on programs both inside and far beyond the search budget: the
// size guard must degrade to the greedy incumbent, never to an error,
// and the result must still compute the original program.
func TestRegistryOracleConforms(t *testing.T) {
	f, ok := alloc.Lookup("oracle")
	if !ok {
		t.Fatal("oracle is not registered")
	}
	input := []byte("registry oracle input")
	for _, mach := range []*target.Machine{target.Tiny(6, 4), target.Alpha()} {
		for _, stmts := range []int{20, 400} { // 400 blows MaxInstrs per proc
			gen := progs.DefaultGen(7)
			gen.Stmts = stmts
			prog := progs.Random(mach, gen)
			want, err := vm.Run(prog, vm.Config{Mach: mach, Input: input})
			if err != nil {
				t.Fatal(err)
			}
			allocd, _, err := experiments.PipelineChecked(prog, mach, f(mach),
				experiments.PipelineChecks{Verify: true, Validate: true})
			if err != nil {
				t.Fatalf("%s stmts %d: %v", mach.Name, stmts, err)
			}
			got, err := vm.Run(allocd, vm.Config{Mach: mach, Input: input, Paranoid: true})
			if err != nil {
				t.Fatalf("%s stmts %d: %v", mach.Name, stmts, err)
			}
			if !bytes.Equal(want.Output, got.Output) || want.RetValue != got.RetValue {
				t.Fatalf("%s stmts %d: mismatch", mach.Name, stmts)
			}
		}
	}
}

// TestWideMachineKernelizes: on a register-rich machine nothing is
// contended, so kernelization must dissolve the whole problem — proven
// optimal at zero cost without any search.
func TestWideMachineKernelizes(t *testing.T) {
	mach, err := target.Preset("wide-64")
	if err != nil {
		t.Fatal(err)
	}
	gen := progs.DefaultGen(3)
	gen.Stmts = 40
	prog := progs.Random(mach, gen)
	for _, p := range prog.Procs {
		plan := planProc(p.Clone(), mach, StaticFreq, DefaultLimits())
		if plan.Kernel != 0 || !plan.Proven || plan.Cost != 0 || plan.Nodes != 0 {
			t.Fatalf("%s: wide machine should kernelize fully: kernel %d cost %d proven %v nodes %d",
				p.Name, plan.Kernel, plan.Cost, plan.Proven, plan.Nodes)
		}
	}
}

// TestProfileDirectsSpills: a hot loop recorded in the profile must be
// kept in registers at the expense of cold code, and vice versa when
// the profile says the opposite — the planner follows measured
// frequency, not syntax.
func TestProfileDirectsSpills(t *testing.T) {
	mach := target.Tiny(6, 4)
	input := []byte{}
	gen := progs.DefaultGen(11)
	gen.Stmts = 25
	prog := progs.Random(mach, gen)

	pf, _, err := CollectProfile(prog, mach, input, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	dynCost, dynOK := OptimalCost(prog, mach, pf, DefaultLimits())
	if !dynOK {
		t.Skip("fixture not proven under default limits")
	}
	// The profile-weighted optimum can never exceed the measured cost
	// of the static-weight plan (both are feasible points of the same
	// profile-weighted objective).
	var staticCost int64
	for _, p := range prog.Procs {
		in := p.Clone()
		plan := planProc(in, mach, StaticFreq, DefaultLimits())
		// Re-cost the static assignment under dynamic weights.
		in2 := p.Clone()
		in2.Renumber()
		w := spillWeights(in2, pf.FreqFunc(p.Name))
		for t2, r := range plan.Assign {
			if r == target.NoReg && t2 < len(w) {
				staticCost += w[t2]
			}
		}
	}
	if dynCost > staticCost {
		t.Fatalf("profile-weighted optimum %d exceeds static plan's dynamic cost %d", dynCost, staticCost)
	}
}

func TestStaticFreq(t *testing.T) {
	for _, tc := range []struct {
		depth int
		want  int64
	}{{0, 1}, {1, 10}, {3, 1000}, {9, 1_000_000_000}, {15, 1_000_000_000}} {
		if got := StaticFreq(&ir.Block{Depth: tc.depth}); got != tc.want {
			t.Fatalf("StaticFreq(depth=%d) = %d, want %d", tc.depth, got, tc.want)
		}
	}
}
