// Package opt implements the optimization passes that bracket register
// allocation in the paper's experimental pipeline (§3): dead-code
// elimination before allocation, and a peephole pass afterwards that
// deletes moves the allocators collapsed (both allocators rewrite
// coalesced moves into self-moves and leave the deletion to this pass).
// An optional store-to-load forwarding pass implements the local version
// of the load/store sinking the paper sketches as follow-on work (§2.4).
package opt

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/target"
)

// DeadCodeElim removes instructions whose results are never used: a def
// of a temporary not live after the instruction, with no side effects.
// Instructions defining physical registers, stores, calls and terminators
// are always kept. Returns the number of instructions removed.
func DeadCodeElim(p *ir.Proc) int {
	removed := 0
	for {
		p.Renumber()
		lv := dataflow.Compute(p)
		n := removeDead(p, lv)
		removed += n
		if n == 0 {
			return removed
		}
	}
}

func removeDead(p *ir.Proc, lv *dataflow.Liveness) int {
	removed := 0
	var dbuf []ir.Temp
	live := make([]bool, p.NumTemps())
	for _, b := range p.Blocks {
		// Per-block backward liveness over all temps (locals included).
		for i := range live {
			live[i] = false
		}
		lv.LiveOut[b.Order].ForEach(func(gi int) { live[lv.Globals[gi]] = true })

		keep := make([]bool, len(b.Instrs))
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			keep[i] = true
			if isRemovable(in) {
				dbuf = in.DefTemps(dbuf[:0])
				allDead := true
				for _, d := range dbuf {
					if live[d] {
						allDead = false
						break
					}
				}
				if allDead && len(dbuf) > 0 {
					keep[i] = false
					removed++
					continue // a dead instruction's uses do not count
				}
			}
			for _, d := range in.DefTemps(dbuf[:0]) {
				live[d] = false
			}
			for _, u := range in.UseTemps(dbuf[:0]) {
				live[u] = true
			}
		}
		if removed > 0 {
			out := b.Instrs[:0]
			for i := range b.Instrs {
				if keep[i] {
					out = append(out, b.Instrs[i])
				}
			}
			b.Instrs = out
		}
	}
	return removed
}

// isRemovable reports whether the instruction may be deleted when its
// results are dead: pure value computations writing only temporaries.
func isRemovable(in *ir.Instr) bool {
	switch in.Op {
	case ir.St, ir.FSt, ir.SpillSt, ir.Call, ir.Jmp, ir.Br, ir.Ret, ir.Nop:
		return false
	}
	for _, d := range in.Defs {
		if d.Kind != ir.KindTemp {
			return false // writes machine state
		}
	}
	return len(in.Defs) == 1
}

// Peephole deletes self-moves (mov r, r) produced by move coalescing in
// either allocator, and returns the number of instructions removed.
func Peephole(p *ir.Proc) int {
	removed := 0
	for _, b := range p.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op.IsMove() &&
				in.Defs[0].Kind == ir.KindReg && in.Uses[0].Kind == ir.KindReg &&
				in.Defs[0].Reg == in.Uses[0].Reg {
				removed++
				continue
			}
			out = append(out, b.Instrs[i])
		}
		b.Instrs = out
	}
	return removed
}

// ForwardStores performs local store-to-load forwarding on allocated
// code: within a block, a spill load from a slot whose value is known to
// be in a register (because a spill store from that register is still
// valid) becomes a register move; a reload into the same register is
// deleted outright. This is the local version of the post-allocation
// cleanup the paper suggests ("a later code motion pass that tries to
// sink stores and hoist loads until they meet", §2.4). Returns the number
// of instructions rewritten or removed.
func ForwardStores(p *ir.Proc, mach *target.Machine) int {
	changed := 0
	type slotVal struct {
		reg ir.Operand
		ok  bool
	}
	for _, b := range p.Blocks {
		known := map[int64]slotVal{} // slot -> register holding its value
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			switch {
			case in.Op == ir.SpillSt && in.Uses[0].Kind == ir.KindReg:
				known[in.Uses[1].Imm] = slotVal{reg: in.Uses[0], ok: true}
			case in.Op == ir.SpillLd && in.Defs[0].Kind == ir.KindReg:
				slot := in.Uses[0].Imm
				if v, ok := known[slot]; ok && v.ok {
					if v.reg.Reg == in.Defs[0].Reg {
						changed++ // reload of a value already in place
						continue
					}
					op := ir.Mov
					if mach.RegClass(in.Defs[0].Reg) == target.ClassFloat {
						op = ir.FMov
					}
					in = ir.Instr{Op: op, Tag: in.Tag, Pos: in.Pos,
						Defs: in.Defs, Uses: []ir.Operand{v.reg},
						OrigUses: in.OrigUses, OrigDefs: in.OrigDefs}
					changed++
				}
				// The load wrote its destination register: slots
				// mirrored there are stale, and the loaded register now
				// mirrors this slot.
				for s, v := range known {
					if v.reg.Reg == in.Defs[0].Reg {
						delete(known, s)
					}
				}
				known[slot] = slotVal{reg: in.Defs[0], ok: true}
			case in.Op == ir.Call:
				// Calls clobber caller-saved registers; forget
				// everything to stay conservative.
				known = map[int64]slotVal{}
			default:
				// Any def of a register invalidates slots mirrored there.
				for _, d := range in.Defs {
					if d.Kind != ir.KindReg {
						continue
					}
					for s, v := range known {
						if v.reg.Reg == d.Reg {
							delete(known, s)
						}
					}
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return changed
}
