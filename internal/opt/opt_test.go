package opt

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
)

func TestDeadCodeElim(t *testing.T) {
	mach := target.Tiny(6, 3)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	dead := pb.IntTemp("dead")
	dead2 := pb.IntTemp("dead2")
	pb.Ldi(x, 1)
	pb.Ldi(dead2, 9)                                    // only feeds dead
	pb.Op2(ir.Add, dead, ir.TempOp(dead2), ir.ImmOp(1)) // dead
	pb.Op2(ir.Add, x, ir.TempOp(x), ir.ImmOp(1))        // live
	pb.St(ir.TempOp(x), ir.ImmOp(0), 0)                 // side effect: kept
	pb.Ret(x)

	before := pb.P.NumInstrs()
	removed := DeadCodeElim(pb.P)
	if removed != 2 {
		t.Fatalf("removed %d, want 2 (transitively dead chain)", removed)
	}
	if pb.P.NumInstrs() != before-2 {
		t.Fatal("instruction count mismatch")
	}
	if err := ir.Validate(pb.P, mach); err != nil {
		t.Fatal(err)
	}
}

func TestDCEKeepsPhysicalDefsAndCalls(t *testing.T) {
	mach := target.Tiny(6, 3)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Call("getc", x) // call result unused: the call must stay
	y := pb.IntTemp("y")
	pb.Ldi(y, 3)
	pb.Ret(y)
	calls := 0
	DeadCodeElim(pb.P)
	for _, blk := range pb.P.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.Call {
				calls++
			}
		}
	}
	if calls != 2 { // getc + the puti-free Ret path has the ret-move... just getc + none
		// main has one call (getc); Ret emits a convention move, not a call.
		if calls != 1 {
			t.Fatalf("calls after DCE = %d", calls)
		}
	}
}

func TestPeepholeRemovesSelfMoves(t *testing.T) {
	mach := target.Tiny(6, 3)
	p := ir.NewProc("main")
	blk := p.NewBlock("entry")
	r2 := mach.Reg(target.ClassInt, 2)
	r3 := mach.Reg(target.ClassInt, 3)
	blk.Instrs = []ir.Instr{
		{Op: ir.Mov, Defs: []ir.Operand{ir.RegOp(r2)}, Uses: []ir.Operand{ir.RegOp(r2)}},                                                          // self
		{Op: ir.Mov, Defs: []ir.Operand{ir.RegOp(r3)}, Uses: []ir.Operand{ir.RegOp(r2)}},                                                          // real
		{Op: ir.FMov, Defs: []ir.Operand{ir.RegOp(mach.Reg(target.ClassFloat, 1))}, Uses: []ir.Operand{ir.RegOp(mach.Reg(target.ClassFloat, 1))}}, // self
		{Op: ir.Ret},
	}
	if got := Peephole(p); got != 2 {
		t.Fatalf("Peephole removed %d, want 2", got)
	}
	if len(blk.Instrs) != 2 {
		t.Fatalf("left %d instrs", len(blk.Instrs))
	}
}

func TestForwardStoresRewritesReload(t *testing.T) {
	mach := target.Tiny(6, 3)
	p := ir.NewProc("main")
	x := p.NewTemp(target.ClassInt, "x")
	s0 := p.NewSlot()
	blk := p.NewBlock("entry")
	r1 := mach.Reg(target.ClassInt, 1)
	r2 := mach.Reg(target.ClassInt, 2)
	blk.Instrs = []ir.Instr{
		{Op: ir.SpillSt, Uses: []ir.Operand{ir.RegOp(r1), ir.SlotOp(s0, x)}},
		{Op: ir.SpillLd, Defs: []ir.Operand{ir.RegOp(r2)}, Uses: []ir.Operand{ir.SlotOp(s0, x)}},
		{Op: ir.SpillLd, Defs: []ir.Operand{ir.RegOp(r2)}, Uses: []ir.Operand{ir.SlotOp(s0, x)}},
		{Op: ir.Ret},
	}
	changed := ForwardStores(p, mach)
	if changed != 2 {
		t.Fatalf("changed = %d, want 2", changed)
	}
	// First load becomes a move; second (same register already holds the
	// slot) is deleted.
	if blk.Instrs[1].Op != ir.Mov || blk.Instrs[1].Uses[0].Reg != r1 {
		t.Fatalf("first reload not forwarded: %v", blk.Instrs[1].Op)
	}
	if len(blk.Instrs) != 3 {
		t.Fatalf("redundant reload not deleted: %d instrs", len(blk.Instrs))
	}
}

func TestForwardStoresRespectsClobbers(t *testing.T) {
	mach := target.Tiny(6, 3)
	p := ir.NewProc("main")
	x := p.NewTemp(target.ClassInt, "x")
	s0 := p.NewSlot()
	blk := p.NewBlock("entry")
	r1 := mach.Reg(target.ClassInt, 1)
	r2 := mach.Reg(target.ClassInt, 2)
	blk.Instrs = []ir.Instr{
		{Op: ir.SpillSt, Uses: []ir.Operand{ir.RegOp(r1), ir.SlotOp(s0, x)}},
		// r1 overwritten: the slot knowledge must die.
		{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(r1)}, Uses: []ir.Operand{ir.ImmOp(0)}},
		{Op: ir.SpillLd, Defs: []ir.Operand{ir.RegOp(r2)}, Uses: []ir.Operand{ir.SlotOp(s0, x)}},
		{Op: ir.Ret},
	}
	if changed := ForwardStores(p, mach); changed != 0 {
		t.Fatalf("forwarded across a clobber: %d", changed)
	}
	if blk.Instrs[2].Op != ir.SpillLd {
		t.Fatal("load was wrongly rewritten")
	}

	// Same with a call in between.
	blk.Instrs = []ir.Instr{
		{Op: ir.SpillSt, Uses: []ir.Operand{ir.RegOp(r1), ir.SlotOp(s0, x)}},
		{Op: ir.Call, Uses: []ir.Operand{ir.SymOp("getc")}, Defs: []ir.Operand{ir.RegOp(mach.RetReg(target.ClassInt))}},
		{Op: ir.SpillLd, Defs: []ir.Operand{ir.RegOp(r2)}, Uses: []ir.Operand{ir.SlotOp(s0, x)}},
		{Op: ir.Ret},
	}
	if changed := ForwardStores(p, mach); changed != 0 {
		t.Fatalf("forwarded across a call: %d", changed)
	}
}
