package core

import (
	"fmt"
	"math"

	"repro/internal/alloc"
	"repro/internal/bitset"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/moves"
	"repro/internal/scratch"
	"repro/internal/target"
)

// scan carries the state of the single allocate+rewrite pass (§2.3).
type scan struct {
	p    *ir.Proc
	mach *target.Machine
	opts Options
	lv   *dataflow.Liveness
	lt   *lifetime.Table
	rb   *lifetime.RegBusy

	frame      *alloc.Frame
	usedCallee []bool // register → used callee-saved

	// Allocation state, maintained linearly across blocks exactly as the
	// paper's model flows it (Fig. 2 discussion).
	loc        []target.Reg // temp → current register, or NoReg (memory home)
	regOcc     []ir.Temp    // register → occupant temp, or NoTemp
	consistent []bool       // the ARE_CONSISTENT working bit per temp (At)
	consLocal  []bool       // consistency established inside the current block

	pinned     []bool       // registers untouchable while processing one instruction
	pinnedList []target.Reg // registers pinned for the current instruction

	// Per-block records for resolution (§2.4), indexed by Block.Order.
	// topRegs/botRegs hold the register of the k-th live-in/live-out
	// global (in ascending global-index order; NoReg = memory), carved
	// from one pooled arena — the dense replacement for the per-block
	// maps the resolution phase used to allocate.
	topRegs   [][]target.Reg
	botRegs   [][]target.Reg
	savedCons []*bitset.Set // ARE_CONSISTENT snapshot at block bottom (globals)
	wrote     []*bitset.Set // WROTE_TR per block (kill)
	usedC     []*bitset.Set // USED_CONSISTENCY per block (gen)

	wroteCur *bitset.Set
	usedCCur *bitset.Set

	out []ir.Instr // rewrite buffer for the current block
	cur *ir.Block

	ubuf []ir.Temp
	dbuf []ir.Temp

	// origArena backs every instruction's OrigUses/OrigDefs side table.
	// It is retained by the rewritten procedure, so unlike the scratch
	// arrays it is allocated fresh per procedure — but exactly once,
	// instead of twice per instruction.
	origArena []ir.Temp
	origN     int

	consSolver *dataflow.SolverScratch
}

// scanScratch holds the scan's per-temp, per-register and per-block
// working arrays so that repeated allocation on the same Allocator (the
// engine's batch hot path) reuses buffers instead of reallocating them
// for every procedure. The zero value is ready to use. An Allocator that
// shares a scanScratch must not be used from multiple goroutines.
type scanScratch struct {
	frame      alloc.Frame
	loc        []target.Reg
	regOcc     []ir.Temp
	consistent []bool
	consLocal  []bool
	pinned     []bool
	pinnedList []target.Reg
	usedCallee []bool
	topRegs    [][]target.Reg
	botRegs    [][]target.Reg
	topArena   []target.Reg
	botArena   []target.Reg
	blockSets  bitset.Slab
	savedCons  []*bitset.Set
	wrote      []*bitset.Set
	usedC      []*bitset.Set
	wroteCur   bitset.Set
	usedCCur   bitset.Set
	ubuf, dbuf []ir.Temp

	// Resolution-phase (§2.4) working storage.
	consSolver dataflow.SolverScratch
	rblocks    []*ir.Block
	fixes      []edgeFix
	transfers  []moves.Transfer
	busyRegs   []bool
	busyDirty  []target.Reg
}

// grow is scratch.GrowCleared: every scan buffer either reaches other
// objects (arena sub-slices, bitsets) or is cheaper to re-zero than to
// audit, so the clearing variant is used throughout.
func grow[T any](buf []T, n int) []T { return scratch.GrowCleared(buf, n) }

func newScan(p *ir.Proc, mach *target.Machine, opts Options, lv *dataflow.Liveness, lt *lifetime.Table, rb *lifetime.RegBusy, sc *scanScratch) *scan {
	if sc == nil {
		sc = &scanScratch{}
	}
	nb := len(p.Blocks)
	ng := lv.NumGlobals()
	nt := p.NumTemps()
	nr := mach.NumRegs()
	sc.loc = grow(sc.loc, nt)
	sc.regOcc = grow(sc.regOcc, nr)
	sc.consistent = grow(sc.consistent, nt)
	sc.consLocal = grow(sc.consLocal, nt)
	sc.pinned = grow(sc.pinned, nr)
	sc.usedCallee = grow(sc.usedCallee, nr)
	sc.topRegs = grow(sc.topRegs, nb)
	sc.botRegs = grow(sc.botRegs, nb)
	sc.savedCons = grow(sc.savedCons, nb)
	sc.wrote = grow(sc.wrote, nb)
	sc.usedC = grow(sc.usedC, nb)
	sc.frame.Reset(p)

	// One slab allocation backs all per-block consistency sets.
	sc.blockSets.Reset(3*nb, ng)
	for i := 0; i < nb; i++ {
		sc.savedCons[i] = sc.blockSets.Set(i)
		sc.wrote[i] = sc.blockSets.Set(nb + i)
		sc.usedC[i] = sc.blockSets.Set(2*nb + i)
	}
	sc.wroteCur.Reset(ng)
	sc.usedCCur.Reset(ng)

	// Carve the per-block top/bottom location arrays out of two pooled
	// arenas sized by the liveness sets.
	topTotal, botTotal := 0, 0
	for i := 0; i < nb; i++ {
		topTotal += lv.LiveIn[i].Count()
		botTotal += lv.LiveOut[i].Count()
	}
	sc.topArena = grow(sc.topArena, topTotal)
	sc.botArena = grow(sc.botArena, botTotal)
	topOff, botOff := 0, 0
	for i := 0; i < nb; i++ {
		tc, bc := lv.LiveIn[i].Count(), lv.LiveOut[i].Count()
		sc.topRegs[i] = sc.topArena[topOff : topOff+tc : topOff+tc]
		sc.botRegs[i] = sc.botArena[botOff : botOff+bc : botOff+bc]
		topOff += tc
		botOff += bc
	}

	// The Orig side tables are retained by the result: allocate the
	// arena fresh, sized by the total operand count.
	nOps := 0
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			nOps += len(b.Instrs[i].Uses) + len(b.Instrs[i].Defs)
		}
	}

	s := &scan{
		p: p, mach: mach, opts: opts, lv: lv, lt: lt, rb: rb,
		frame:      &sc.frame,
		usedCallee: sc.usedCallee,
		loc:        sc.loc,
		regOcc:     sc.regOcc,
		consistent: sc.consistent,
		consLocal:  sc.consLocal,
		pinned:     sc.pinned,
		pinnedList: sc.pinnedList[:0],
		topRegs:    sc.topRegs,
		botRegs:    sc.botRegs,
		savedCons:  sc.savedCons,
		wrote:      sc.wrote,
		usedC:      sc.usedC,
		wroteCur:   &sc.wroteCur,
		usedCCur:   &sc.usedCCur,
		ubuf:       sc.ubuf[:0],
		dbuf:       sc.dbuf[:0],
		origArena:  make([]ir.Temp, nOps),
		consSolver: &sc.consSolver,
	}
	for i := range s.loc {
		s.loc[i] = target.NoReg
	}
	for i := range s.regOcc {
		s.regOcc[i] = ir.NoTemp
	}
	return s
}

// release hands the scan's (possibly regrown) buffers back to the
// scratch for the next allocation. The rewritten procedure keeps the
// per-block instruction buffers and the orig arena, so those are not
// pooled; everything released here must not be retained by the result.
func (s *scan) release(sc *scanScratch) {
	if sc == nil {
		return
	}
	sc.ubuf, sc.dbuf = s.ubuf, s.dbuf
	sc.pinnedList = s.pinnedList
}

// takeOrig carves an all-NoTemp side table of n entries from the
// per-procedure arena.
func (s *scan) takeOrig(n int) []ir.Temp {
	a := s.origArena[s.origN : s.origN+n : s.origN+n]
	s.origN += n
	for i := range a {
		a[i] = ir.NoTemp
	}
	return a
}

func (s *scan) iv(t ir.Temp) *lifetime.Interval { return s.lt.Intervals[t] }

// run performs the combined allocate/rewrite sweep.
func (s *scan) run() error {
	for _, b := range s.p.Blocks {
		s.cur = b
		s.startBlock(b)
		s.out = make([]ir.Instr, 0, len(b.Instrs)+4)
		for i := range b.Instrs {
			if err := s.instr(&b.Instrs[i]); err != nil {
				return fmt.Errorf("block %s, %v at pos %d: %w", b.Name, b.Instrs[i].Op, b.Instrs[i].Pos, err)
			}
		}
		s.endBlock(b)
		b.Instrs = s.out
	}
	return nil
}

func (s *scan) startBlock(b *ir.Block) {
	s.wroteCur.Clear()
	s.usedCCur.Clear()
	for i := range s.consLocal {
		s.consLocal[i] = false
	}
	if s.opts.StrictLinear {
		// §2.6: conservatively reinitialize the working ARE_CONSISTENT
		// vector with the intersection of the saved vectors of all
		// predecessors; an unprocessed predecessor (still empty) clears
		// everything.
		for gi, t := range s.lv.Globals {
			val := len(b.Preds) > 0
			for _, pred := range b.Preds {
				if !s.savedCons[pred.Order].Contains(gi) {
					val = false
					break
				}
			}
			s.consistent[t] = val
		}
	}
	top := s.topRegs[b.Order]
	k := 0
	s.lv.LiveIn[b.Order].ForEach(func(gi int) {
		top[k] = s.loc[s.lv.Globals[gi]]
		k++
	})
}

func (s *scan) endBlock(b *ir.Block) {
	bot := s.botRegs[b.Order]
	k := 0
	s.lv.LiveOut[b.Order].ForEach(func(gi int) {
		bot[k] = s.loc[s.lv.Globals[gi]]
		k++
	})

	sc := s.savedCons[b.Order]
	for gi, t := range s.lv.Globals {
		// A temporary in memory is trivially consistent (its home is
		// authoritative); one in a register carries its At bit.
		if s.loc[t] == target.NoReg || s.consistent[t] {
			sc.Add(gi)
		}
	}

	if !s.opts.StrictLinear {
		// Soundness refinement (documented in DESIGN.md): a live-out
		// temporary whose register is believed consistent only by
		// linear inheritance may have that belief consumed by edge
		// resolution (store suppression) at this block's outgoing
		// edges. Record it in the GEN set so the dataflow demands real
		// consistency on entry, exactly as for in-block inhibitions.
		s.lv.LiveOut[b.Order].ForEach(func(gi int) {
			t := s.lv.Globals[gi]
			if s.loc[t] != target.NoReg && s.consistent[t] && !s.consLocal[t] && !s.wroteCur.Contains(gi) {
				s.usedCCur.Add(gi)
			}
		})
	}
	s.wrote[b.Order].Copy(s.wroteCur)
	s.usedC[b.Order].Copy(s.usedCCur)
}

// pin marks r untouchable for the rest of the current instruction.
func (s *scan) pin(r target.Reg) {
	if !s.pinned[r] {
		s.pinned[r] = true
		s.pinnedList = append(s.pinnedList, r)
	}
}

// unpinAll releases every register pinned for the current instruction.
func (s *scan) unpinAll() {
	for _, r := range s.pinnedList {
		s.pinned[r] = false
	}
	s.pinnedList = s.pinnedList[:0]
}

// instr allocates and rewrites a single instruction. The procedure is
// the allocator's private copy, so operands are rewritten in place and
// the Orig side tables come from the per-procedure arena — the
// instruction costs no allocations of its own.
func (s *scan) instr(in *ir.Instr) error {
	pos := in.Pos

	// Expire register holes (§2.5): any temporary squatting in a
	// register that a convention needs at this point is evicted first
	// (this is where temporaries leave caller-saved registers at calls).
	for r := range s.regOcc {
		if t := s.regOcc[r]; t != ir.NoTemp && s.rb.BusyAt(target.Reg(r), pos) {
			s.evict(t, pos)
		}
	}

	// Record use/def temps before any in-place rewriting, and pin the
	// registers of temporaries this instruction references so one
	// operand's reload cannot evict another operand.
	s.ubuf = in.UseTemps(s.ubuf[:0])
	s.dbuf = in.DefTemps(s.dbuf[:0])
	isMove := in.Op.IsMove()
	for _, t := range s.ubuf {
		if r := s.loc[t]; r != target.NoReg {
			s.pin(r)
		}
	}

	ni := *in
	if len(ni.Uses) > 0 {
		ni.OrigUses = s.takeOrig(len(ni.Uses))
	}
	if len(ni.Defs) > 0 {
		ni.OrigDefs = s.takeOrig(len(ni.Defs))
	}

	// Uses: every temporary read here must be in a register now.
	for ui := range ni.Uses {
		if ni.Uses[ui].Kind != ir.KindTemp {
			continue
		}
		t := ni.Uses[ui].Temp
		r, err := s.ensure(t, pos, true)
		if err != nil {
			s.unpinAll()
			return err
		}
		s.pin(r)
		ni.Uses[ui] = ir.RegOp(r)
		ni.OrigUses[ui] = t
	}

	// Free temporaries whose lifetime ends at this instruction before
	// processing definitions, so a destination can reuse the register of
	// a dying source. Unpinning the freed register lets the destination
	// take it over (sources are read before the destination is written).
	for _, t := range s.ubuf {
		if r := s.loc[t]; r != target.NoReg && s.deadAfter(t, pos) {
			s.free(t)
			s.pinned[r] = false
		}
	}

	// §2.5 move optimization: try to give the move's destination the
	// source's register when the source is done with it.
	movedDef := false
	if s.opts.MoveOpt && isMove && len(ni.Defs) == 1 && ni.Defs[0].Kind == ir.KindTemp {
		movedDef = s.tryMoveOpt(&ni, pos)
	}

	// Defs.
	if !movedDef {
		for di := range ni.Defs {
			if ni.Defs[di].Kind != ir.KindTemp {
				continue
			}
			d := ni.Defs[di].Temp
			r := s.loc[d]
			if r == target.NoReg {
				var err error
				r, err = s.ensure(d, pos, false)
				if err != nil {
					s.unpinAll()
					return err
				}
			}
			s.pin(r)
			s.markWrite(d)
			ni.Defs[di] = ir.RegOp(r)
			ni.OrigDefs[di] = d
		}
	}

	s.out = append(s.out, ni)

	// Free dying definitions (dead stores keep a point lifetime).
	for _, d := range s.dbuf {
		if s.loc[d] != target.NoReg && s.deadAfter(d, pos) {
			s.free(d)
		}
	}
	s.unpinAll()
	return nil
}

// deadAfter reports whether t has no further need of a value after pos.
// End() alone is not enough at a block's final position: a temporary live
// around a back edge ends its last linear segment exactly there while its
// value is still needed by an earlier (in layout order) block, so the
// block's live-out set has the final word.
func (s *scan) deadAfter(t ir.Temp, pos int32) bool {
	if s.iv(t).End() > pos {
		return false
	}
	if gi := s.lv.GlobalIndex(t); gi >= 0 && s.lv.LiveOut[s.cur.Order].Contains(gi) {
		return false
	}
	return true
}

// tryMoveOpt implements the §2.5 coalescing check: "once we have assigned
// a register to the source of a move instruction, we check to see if that
// register has a hole starting immediately after the move's source use
// and if the lifetime of the move's destination temporary fits within
// this hole." On success the destination operand is rewritten to the
// source register and the resulting self-move is left for the peephole
// pass to delete, as in the paper. ni's use operand has already been
// rewritten, so the original source temp (if any) is read back from the
// OrigUses side table.
func (s *scan) tryMoveOpt(ni *ir.Instr, pos int32) bool {
	d := ni.Defs[0].Temp
	if s.loc[d] != target.NoReg {
		return false // destination already placed; normal path
	}
	div := s.iv(d)
	if div.Empty() {
		return false
	}
	dEnd := div.End()

	var rs target.Reg
	if t := ni.OrigUses[0]; t != ir.NoTemp {
		rs = ni.Uses[0].Reg // register the use was rewritten to
		if occ := s.regOcc[rs]; occ != ir.NoTemp {
			// The source must be finished with the register for d's
			// whole lifetime: dead, or in a hole covering [pos+1,dEnd].
			if occ != t {
				return false
			}
			if s.liveWithin(t, pos+1, dEnd) {
				return false
			}
		}
	} else if ni.Uses[0].Kind == ir.KindReg {
		// Parameter-style move from a convention register: usable when
		// the register's own hole after this use covers d's lifetime.
		rs = ni.Uses[0].Reg
		if s.regOcc[rs] != ir.NoTemp {
			return false
		}
	} else {
		return false
	}
	if !s.sufficientFrom(rs, d, pos+1) {
		return false
	}
	// Displace the parked source, if any: it is in a hole over d's whole
	// lifetime, so dropping it costs nothing (next reference is a write).
	if occ := s.regOcc[rs]; occ != ir.NoTemp {
		s.loc[occ] = target.NoReg
		s.consistent[occ] = false
		s.consLocal[occ] = false
	}
	s.regOcc[rs] = d
	s.loc[d] = rs
	s.noteReg(rs)
	s.markWrite(d)
	ni.Defs[0] = ir.RegOp(rs)
	ni.OrigDefs[0] = d
	return true
}

// liveWithin reports whether t has any live position in [from, to].
func (s *scan) liveWithin(t ir.Temp, from, to int32) bool {
	iv := s.iv(t)
	for _, seg := range iv.Segments {
		if seg.End >= from && seg.Start <= to {
			return true
		}
	}
	return false
}

// ensure places t in a register at pos, reloading from its memory home if
// withLoad and the value lives in memory (this is the second chance:
// "when encountering a later reference to this spilled temporary u, we
// must find it a register", §2.3).
func (s *scan) ensure(t ir.Temp, pos int32, withLoad bool) (target.Reg, error) {
	if r := s.loc[t]; r != target.NoReg {
		return r, nil
	}
	r, ok := s.findFree(s.p.TempClass(t), t, pos, false)
	if !ok {
		victim := s.chooseVictim(s.p.TempClass(t), pos)
		if victim == ir.NoTemp {
			return target.NoReg, fmt.Errorf("no register available for %s (all pinned)", s.p.TempName(t))
		}
		r = s.loc[victim]
		s.evict(victim, pos)
	}
	s.regOcc[r] = t
	s.loc[t] = r
	s.noteReg(r)
	if withLoad {
		s.out = append(s.out, ir.Instr{
			Op:   ir.SpillLd,
			Tag:  ir.TagScanLoad,
			Pos:  pos,
			Defs: []ir.Operand{ir.RegOp(r)},
			Uses: []ir.Operand{ir.SlotOp(s.frame.SlotOf(t), t)},
		})
		s.consistent[t] = true
		s.consLocal[t] = true
	} else {
		s.consistent[t] = false
		s.consLocal[t] = false
	}
	return r, nil
}

func (s *scan) noteReg(r target.Reg) {
	if !s.mach.CallerSaved(r) {
		s.usedCallee[r] = true
	}
}

// sufficientFrom reports whether register r is free over every live
// position the value of t may still need: t's live segments clipped to
// [from, End]. The paper's fitting rule is "a hole big enough to contain
// the entire lifetime" (§2.2); positions must be taken from the lifetime
// segments, not merely from [from, End] in linear order, because a value
// live around a back edge re-traverses earlier positions of its own
// segment (e.g. a loop-carried counter must not adopt a caller-saved
// register whose hole ends at the loop's call site even when that call
// lies at a smaller linear position).
func (s *scan) sufficientFrom(r target.Reg, t ir.Temp, from int32) bool {
	iv := s.iv(t)
	if iv.Empty() {
		return true
	}
	for _, seg := range iv.Segments {
		if seg.End < from {
			continue
		}
		lo := seg.Start
		if lo < from {
			lo = from
		}
		if !s.rb.FreeThrough(r, lo, seg.End) {
			return false
		}
	}
	return true
}

// fitStart returns the first position the hole-sufficiency test must
// cover for t when allocating at pos: the start of the live segment
// containing pos (any of whose positions a loop may revisit), or pos
// itself when pos falls in a lifetime hole.
func (s *scan) fitStart(t ir.Temp, pos int32) int32 {
	for _, seg := range s.iv(t).Segments {
		if seg.Start <= pos && pos <= seg.End {
			return seg.Start
		}
	}
	return pos
}

// findFree picks a free register for t at pos: the smallest sufficient
// hole (sufficiency judged over t's remaining live segments), else —
// unless sufficientOnly — the largest insufficient one (§2.2, §2.5).
// Ties among sufficient holes prefer a register that costs nothing extra
// (an already-used callee-saved over a fresh one).
func (s *scan) findFree(c target.Class, t ir.Temp, pos int32, sufficientOnly bool) (target.Reg, bool) {
	from := s.fitStart(t, pos)
	bestSuff := target.NoReg
	bestSuffNext := int32(math.MaxInt32)
	bestSuffFresh := false
	bestInsuff := target.NoReg
	bestInsuffNext := int32(-1)
	for _, r := range s.mach.AllocOrder(c) {
		if s.pinned[r] || s.regOcc[r] != ir.NoTemp || s.rb.BusyAt(r, pos) {
			continue
		}
		nb := s.rb.NextBusy(r, pos)
		if s.sufficientFrom(r, t, from) {
			fresh := !s.mach.CallerSaved(r) && !s.usedCallee[r]
			if nb < bestSuffNext || (nb == bestSuffNext && bestSuffFresh && !fresh) {
				bestSuff, bestSuffNext, bestSuffFresh = r, nb, fresh
			}
		} else if nb > bestInsuffNext {
			bestInsuff, bestInsuffNext = r, nb
		}
	}
	if bestSuff != target.NoReg {
		return bestSuff, true
	}
	if !sufficientOnly && bestInsuff != target.NoReg {
		return bestInsuff, true
	}
	return target.NoReg, false
}

// chooseVictim selects the lowest-priority occupant of a class-c register
// for eviction: priority compares "the distance to each temporary's next
// reference, weighted by the depth of the loop it occurs in" (§2.3). Ties
// prefer victims that need no spill store.
func (s *scan) chooseVictim(c target.Class, pos int32) ir.Temp {
	best := ir.NoTemp
	bestPrio := math.Inf(1)
	bestStore := true
	for _, r := range s.mach.AllocOrder(c) {
		u := s.regOcc[r]
		if u == ir.NoTemp || s.pinned[r] {
			continue
		}
		prio, needsStore := s.victimPriority(u, pos)
		if prio < bestPrio || (prio == bestPrio && bestStore && !needsStore) {
			best, bestPrio, bestStore = u, prio, needsStore
		}
	}
	return best
}

func (s *scan) victimPriority(u ir.Temp, pos int32) (prio float64, needsStore bool) {
	iv := s.iv(u)
	live := iv.LiveAt(pos)
	needsStore = live && !s.consistent[u]
	ref := iv.NextRefAfter(pos)
	if ref == nil {
		return math.Inf(-1), false // past its last reference: free win
	}
	dist := float64(ref.Pos - pos)
	if dist <= 0 {
		dist = 0.5
	}
	weight := 1.0
	if s.opts.Heuristic == HeuristicWeighted {
		d := ref.Depth
		if d > 8 {
			d = 8
		}
		weight = math.Pow(10, float64(d))
	}
	return weight / dist, needsStore
}

// free releases t's register at the end of its lifetime.
func (s *scan) free(t ir.Temp) {
	r := s.loc[t]
	if r == target.NoReg {
		return
	}
	s.regOcc[r] = ir.NoTemp
	s.loc[t] = target.NoReg
	s.consistent[t] = false
	s.consLocal[t] = false
}

// markWrite records a write to t's register: memory and register diverge
// (clears At, sets Wt).
func (s *scan) markWrite(t ir.Temp) {
	s.consistent[t] = false
	s.consLocal[t] = false
	if gi := s.lv.GlobalIndex(t); gi >= 0 {
		s.wroteCur.Add(gi)
	}
}

// evict removes u from its register (§2.3): silently if the value is dead
// here (lifetime hole — the next reference must be a write) or if the
// memory home is already consistent; otherwise with an early-second-chance
// move (§2.5) when a suitable free register exists, else with a spill
// store. The spill point splits u's lifetime: rewrites made so far stand,
// and only future references are affected.
func (s *scan) evict(u ir.Temp, pos int32) {
	r := s.loc[u]
	if r == target.NoReg {
		return
	}
	s.regOcc[r] = ir.NoTemp
	s.loc[u] = target.NoReg

	iv := s.iv(u)
	if !iv.LiveAt(pos) {
		// In a lifetime hole (or past the end): "a store is not needed
		// since the next reference will overwrite the current value".
		s.consistent[u] = false
		s.consLocal[u] = false
		return
	}
	if s.consistent[u] {
		// Inhibit the store. If the consistency we relied on was not
		// established in this block, the dataflow must guarantee it
		// along every path: set Ut (§2.4).
		if gi := s.lv.GlobalIndex(u); gi >= 0 && !s.consLocal[u] && !s.wroteCur.Contains(gi) {
			s.usedCCur.Add(gi)
		}
		return
	}
	if s.opts.EarlySecondChance {
		// "It might be true at this point that some other register rs
		// now contains a hole that could contain t's remaining
		// lifetime" — move instead of store+load (§2.5). The vacated
		// register itself is pinned: it is spoken for (a convention
		// needs it, or the eviction's requester takes it).
		wasPinned := s.pinned[r]
		s.pinned[r] = true
		rs, ok := s.findFree(s.p.TempClass(u), u, pos, true)
		s.pinned[r] = wasPinned
		if ok {
			op := ir.Mov
			if s.p.TempClass(u) == target.ClassFloat {
				op = ir.FMov
			}
			s.out = append(s.out, ir.Instr{
				Op:   op,
				Tag:  ir.TagScanMove,
				Pos:  pos,
				Defs: []ir.Operand{ir.RegOp(rs)},
				Uses: []ir.Operand{ir.RegOp(r)},
			})
			s.regOcc[rs] = u
			s.loc[u] = rs
			s.noteReg(rs)
			return
		}
	}
	s.out = append(s.out, ir.Instr{
		Op:   ir.SpillSt,
		Tag:  ir.TagScanStore,
		Pos:  pos,
		Uses: []ir.Operand{ir.RegOp(r), ir.SlotOp(s.frame.SlotOf(u), u)},
	})
	s.consistent[u] = true
	s.consLocal[u] = true
}
