package core

import (
	"bytes"
	"testing"

	"repro/internal/alloc"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/target"
	"repro/internal/vm"
)

// buildLoopProg builds a program with a loop, a branch diamond, a call in
// the loop, and enough integer temporaries to force spilling on small
// machines: it accumulates several running sums over the loop counter and
// prints a checksum.
func buildLoopProg(mach *target.Machine, accs int, iters int64) *ir.Program {
	b := ir.NewBuilder(mach, 64)
	pb := b.NewProc("main")

	n := pb.IntTemp("n")
	i := pb.IntTemp("i")
	pb.Ldi(n, iters)
	pb.Ldi(i, 0)
	sums := make([]ir.Temp, accs)
	for k := range sums {
		sums[k] = pb.IntTemp("")
		pb.Ldi(sums[k], int64(k))
	}

	head := pb.Block("head")
	body := pb.Block("body")
	then := pb.Block("then")
	els := pb.Block("els")
	join := pb.Block("join")
	exit := pb.Block("exit")

	pb.Jmp(head)

	pb.StartBlock(head)
	c := pb.IntTemp("c")
	pb.Op2(ir.CmpLT, c, ir.TempOp(i), ir.TempOp(n))
	pb.Br(ir.TempOp(c), body, exit)

	pb.StartBlock(body)
	for k := range sums {
		pb.Op2(ir.Add, sums[k], ir.TempOp(sums[k]), ir.TempOp(i))
	}
	parity := pb.IntTemp("parity")
	pb.Op2(ir.And, parity, ir.TempOp(i), ir.ImmOp(1))
	pb.Br(ir.TempOp(parity), then, els)

	pb.StartBlock(then)
	pb.Op2(ir.Add, sums[0], ir.TempOp(sums[0]), ir.ImmOp(7))
	pb.Jmp(join)

	pb.StartBlock(els)
	pb.Op2(ir.Sub, sums[0], ir.TempOp(sums[0]), ir.ImmOp(3))
	pb.Jmp(join)

	pb.StartBlock(join)
	ch := pb.IntTemp("ch")
	pb.Call("getc", ch) // clobbers caller-saved registers
	pb.Op2(ir.Add, sums[1%accs], ir.TempOp(sums[1%accs]), ir.TempOp(ch))
	pb.Op2(ir.Add, i, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(head)

	pb.StartBlock(exit)
	total := pb.IntTemp("total")
	pb.Ldi(total, 0)
	for k := range sums {
		pb.Op2(ir.Xor, total, ir.TempOp(total), ir.TempOp(sums[k]))
		pb.Op2(ir.Add, total, ir.TempOp(total), ir.TempOp(sums[k]))
	}
	pb.Call("puti", ir.NoTemp, ir.TempOp(total))
	pb.Ret(total)
	return b.Prog
}

func runBoth(t *testing.T, mach *target.Machine, prog *ir.Program, a alloc.Allocator, input []byte) {
	t.Helper()
	if err := ir.ValidateProgram(prog, mach); err != nil {
		t.Fatalf("input program invalid: %v", err)
	}
	want, err := vm.Run(prog, vm.Config{Mach: mach, Input: input})
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}

	allocd := ir.NewProgram(prog.MemWords)
	allocd.Main = prog.Main
	for a2, v := range prog.MemInit {
		allocd.SetMem(a2, v)
	}
	for _, p := range prog.Procs {
		res, err := a.Allocate(p)
		if err != nil {
			t.Fatalf("allocate %s: %v", p.Name, err)
		}
		opt.Peephole(res.Proc)
		if err := ir.ValidateAllocated(res.Proc, mach); err != nil {
			t.Fatalf("allocated %s invalid: %v\n%s", p.Name, err, ir.ProcString(res.Proc))
		}
		allocd.AddProc(res.Proc)
	}
	got, err := vm.Run(allocd, vm.Config{Mach: mach, Input: input, Paranoid: true})
	if err != nil {
		pr := &ir.Printer{Mach: mach, Tags: true}
		var sb bytes.Buffer
		pr.WriteProc(&sb, allocd.Proc(prog.Main))
		t.Fatalf("allocated run failed: %v\n%s", err, sb.String())
	}
	if !bytes.Equal(want.Output, got.Output) || want.RetValue != got.RetValue {
		pr := &ir.Printer{Mach: mach, Tags: true}
		var sb bytes.Buffer
		pr.WriteProc(&sb, allocd.Proc(prog.Main))
		t.Fatalf("output mismatch:\nwant %q ret %d\ngot  %q ret %d\n%s",
			want.Output, want.RetValue, got.Output, got.RetValue, sb.String())
	}
}

func TestSmokeSecondChance(t *testing.T) {
	input := []byte("hello world, this is input for the vm smoke test")
	for _, tc := range []struct {
		name string
		mach *target.Machine
		accs int
	}{
		{"alpha_light", target.Alpha(), 4},
		{"alpha_heavy", target.Alpha(), 30},
		{"tiny6_3", target.Tiny(6, 3), 8},
		{"tiny4_2", target.Tiny(4, 2), 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := buildLoopProg(tc.mach, tc.accs, 13)
			runBoth(t, tc.mach, prog, NewDefault(tc.mach), input)
		})
	}
}

func TestSmokeTwoPass(t *testing.T) {
	input := []byte("abcdefgh")
	opts := DefaultOptions()
	opts.SecondChance = false
	for _, tc := range []struct {
		name string
		mach *target.Machine
		accs int
	}{
		{"alpha", target.Alpha(), 12},
		{"tiny8_4", target.Tiny(8, 4), 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := buildLoopProg(tc.mach, tc.accs, 9)
			runBoth(t, tc.mach, prog, New(tc.mach, opts), input)
		})
	}
}

func TestSmokeOptionVariants(t *testing.T) {
	input := []byte("variant-test-input")
	mach := target.Tiny(6, 3)
	variants := map[string]Options{
		"no_moveopt":     {SecondChance: true, EarlySecondChance: true},
		"no_early":       {SecondChance: true, MoveOpt: true},
		"strict_linear":  {SecondChance: true, MoveOpt: true, EarlySecondChance: true, StrictLinear: true},
		"plain_distance": {SecondChance: true, MoveOpt: true, EarlySecondChance: true, Heuristic: HeuristicPlainDistance},
		"bare":           {SecondChance: true},
	}
	for name, o := range variants {
		t.Run(name, func(t *testing.T) {
			prog := buildLoopProg(mach, 10, 11)
			runBoth(t, mach, prog, New(mach, o), input)
		})
	}
}
