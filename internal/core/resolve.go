package core

import (
	"repro/internal/bitset"
	"repro/internal/ir"
	"repro/internal/moves"
	"repro/internal/target"
)

// edgeFix is one CFG edge's repair code, collected before mutation.
type edgeFix struct {
	pred, succ *ir.Block
	code       []ir.Instr
}

// resolve repairs the linear-order allocation assumptions across every CFG
// edge (§2.4). For each edge p→s and each temporary live into s it
// compares the location recorded at p's bottom with the one assumed at
// s's top and emits stores, loads and moves — sequenced as a parallel
// copy so register swaps come out in a semantically correct order. It
// also runs the USED_CONSISTENCY dataflow and inserts the stores required
// where a path reaches a point that exploited register/memory consistency
// the path does not provide. sc supplies the pooled working storage.
func (s *scan) resolve(sc *scanScratch) {
	ng := s.lv.NumGlobals()

	var usedCIn []*bitset.Set
	if !s.opts.StrictLinear && ng > 0 {
		// The solver scratch is distinct from the one liveness came
		// from: LiveIn/LiveOut stay valid while this solve runs.
		usedCIn, _ = s.consSolver.Solve(s.p.Blocks, ng,
			func(b *ir.Block) *bitset.Set { return s.usedC[b.Order] },
			func(b *ir.Block) *bitset.Set { return s.wrote[b.Order] })
	}

	fixes := sc.fixes[:0]
	if cap(sc.busyRegs) < s.mach.NumRegs() {
		sc.busyRegs = make([]bool, s.mach.NumRegs())
	}

	// Collect all repairs before mutating the CFG (edge splitting would
	// otherwise disturb iteration and positions).
	blocks := append(sc.rblocks[:0], s.p.Blocks...)
	sc.rblocks = blocks
	for _, pb := range blocks {
		for _, sb := range pb.Succs {
			code := s.resolveEdge(pb, sb, usedCIn, sc)
			if len(code) > 0 {
				fixes = append(fixes, edgeFix{pred: pb, succ: sb, code: code})
			}
		}
	}
	for _, f := range fixes {
		switch {
		case len(f.pred.Succs) == 1:
			// Place at the bottom of the predecessor, before its
			// (single-target, operand-free) terminator.
			n := len(f.pred.Instrs)
			instrs := make([]ir.Instr, 0, n+len(f.code))
			instrs = append(instrs, f.pred.Instrs[:n-1]...)
			instrs = append(instrs, f.code...)
			instrs = append(instrs, f.pred.Instrs[n-1])
			f.pred.Instrs = instrs
		case len(f.succ.Preds) == 1:
			f.succ.Instrs = append(f.code, f.succ.Instrs...)
		default:
			// Critical edge: split it to get a safe home for the code.
			nb := s.p.SplitEdge(f.pred, f.succ)
			nb.Instrs = append(f.code, nb.Instrs...)
			nb.Depth = f.succ.Depth
			if f.pred.Depth < nb.Depth {
				nb.Depth = f.pred.Depth
			}
		}
	}
	// Return the fix list and block snapshot to the scratch with their
	// references dropped, so the pooled backing does not retain the
	// procedure's repair code or blocks (and through them the whole
	// rewritten procedure's arenas).
	for i := range fixes {
		fixes[i] = edgeFix{}
	}
	sc.fixes = fixes[:0]
	clear(blocks)
	sc.rblocks = blocks[:0]
}

// resolveEdge computes the repair code for one edge. Locations at the
// predecessor's bottom and the successor's top come from the dense
// botRegs/topRegs arrays: the k-th live-in global of a block (ascending
// global index) is the k-th entry, and membership rank recovers the
// position for point lookups.
func (s *scan) resolveEdge(pb, sb *ir.Block, usedCIn []*bitset.Set, sc *scanScratch) []ir.Instr {
	bot := s.botRegs[pb.Order]
	top := s.topRegs[sb.Order]
	outP := s.lv.LiveOut[pb.Order]
	consP := s.savedCons[pb.Order]

	ts := sc.transfers[:0]
	busyRegs := sc.busyRegs
	busyDirty := sc.busyDirty[:0]
	markBusy := func(r target.Reg) {
		if !busyRegs[r] {
			busyRegs[r] = true
			busyDirty = append(busyDirty, r)
		}
	}

	k := 0 // rank of gi in LiveIn[sb]
	// Rank cursor over LiveOut[pb]: ForEach ascends, so each lookup
	// advances incrementally instead of rescanning the words (a full
	// Rank per temp would make dense edges quadratic in the universe).
	prevGi, prevRank := 0, 0
	s.lv.LiveIn[sb.Order].ForEach(func(gi int) {
		ls := top[k]
		k++
		t := s.lv.Globals[gi]
		cls := s.p.TempClass(t)
		lp := target.NoReg
		if outP.Contains(gi) {
			r := prevRank + outP.CountRange(prevGi, gi)
			prevGi, prevRank = gi, r
			lp = bot[r]
		}
		inRegP := lp != target.NoReg
		inRegS := ls != target.NoReg
		if inRegP {
			markBusy(lp)
		}
		if inRegS {
			markBusy(ls)
		}
		needCons := usedCIn != nil && usedCIn[sb.Order].Contains(gi)
		consAtP := consP.Contains(gi)

		switch {
		case inRegP && inRegS:
			if lp != ls {
				// "If the temporary was in two different registers
				// across the edge, we insert a move instruction."
				ts = append(ts, moves.Transfer{Temp: t, Class: cls,
					Src: moves.RegLoc(lp), Dst: moves.RegLoc(ls)})
			}
			if needCons && !consAtP {
				ts = append(ts, moves.Transfer{Temp: t, Class: cls,
					Src: moves.RegLoc(lp), Dst: moves.SlotLoc(s.frame.SlotOf(t))})
			}
		case inRegP && !inRegS:
			// Register → memory: "we insert a store instruction (but
			// only if a temporary's allocated register and memory home
			// are inconsistent)."
			if !consAtP {
				ts = append(ts, moves.Transfer{Temp: t, Class: cls,
					Src: moves.RegLoc(lp), Dst: moves.SlotLoc(s.frame.SlotOf(t))})
			}
		case !inRegP && inRegS:
			// Memory → register: load.
			ts = append(ts, moves.Transfer{Temp: t, Class: cls,
				Src: moves.SlotLoc(s.frame.SlotOf(t)), Dst: moves.RegLoc(ls)})
		}
	})
	sc.transfers = ts
	unmark := func() {
		for _, r := range busyDirty {
			busyRegs[r] = false
		}
		sc.busyDirty = busyDirty[:0]
	}
	if len(ts) == 0 {
		unmark()
		return nil
	}

	// The repair code runs on the edge: before sb's first original
	// instruction (top or split placement) or before pb's Jmp (bottom
	// placement). A scratch register for cycle breaking must be dead
	// there: not holding any live-in value on either side and not
	// hard-busy at the boundary.
	boundaryPos := pb.Instrs[len(pb.Instrs)-1].Pos
	if len(sb.Instrs) > 0 {
		boundaryPos = sb.Instrs[0].Pos
	}
	scratch := func(c target.Class) (target.Reg, bool) {
		for _, r := range s.mach.AllocOrder(c) {
			if busyRegs[r] || s.rb.BusyAt(r, boundaryPos) {
				continue
			}
			if !s.mach.CallerSaved(r) && !s.usedCallee[r] {
				continue // a fresh callee-saved register would need an unplanned save
			}
			return r, true
		}
		return target.NoReg, false
	}
	code := moves.Sequence(ts, scratch, func(t ir.Temp) int { return s.frame.SlotOf(t) },
		moves.Tags{Load: ir.TagResolveLoad, Store: ir.TagResolveStore, Move: ir.TagResolveMove})
	unmark()
	return code
}
