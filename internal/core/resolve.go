package core

import (
	"repro/internal/bitset"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/moves"
	"repro/internal/target"
)

// resolve repairs the linear-order allocation assumptions across every CFG
// edge (§2.4). For each edge p→s and each temporary live into s it
// compares the location recorded at p's bottom with the one assumed at
// s's top and emits stores, loads and moves — sequenced as a parallel
// copy so register swaps come out in a semantically correct order. It
// also runs the USED_CONSISTENCY dataflow and inserts the stores required
// where a path reaches a point that exploited register/memory consistency
// the path does not provide.
func (s *scan) resolve() {
	ng := s.lv.NumGlobals()

	var usedCIn []*bitset.Set
	if !s.opts.StrictLinear && ng > 0 {
		usedCIn, _ = dataflow.SolveBackwardUnion(s.p.Blocks, ng,
			func(b *ir.Block) *bitset.Set { return s.usedC[b.Order] },
			func(b *ir.Block) *bitset.Set { return s.wrote[b.Order] })
	}

	type edgeFix struct {
		pred, succ *ir.Block
		code       []ir.Instr
	}
	var fixes []edgeFix

	// Collect all repairs before mutating the CFG (edge splitting would
	// otherwise disturb iteration and positions).
	blocks := append([]*ir.Block(nil), s.p.Blocks...)
	for _, pb := range blocks {
		for _, sb := range pb.Succs {
			code := s.resolveEdge(pb, sb, usedCIn)
			if len(code) > 0 {
				fixes = append(fixes, edgeFix{pred: pb, succ: sb, code: code})
			}
		}
	}

	for _, f := range fixes {
		switch {
		case len(f.pred.Succs) == 1:
			// Place at the bottom of the predecessor, before its
			// (single-target, operand-free) terminator.
			n := len(f.pred.Instrs)
			instrs := make([]ir.Instr, 0, n+len(f.code))
			instrs = append(instrs, f.pred.Instrs[:n-1]...)
			instrs = append(instrs, f.code...)
			instrs = append(instrs, f.pred.Instrs[n-1])
			f.pred.Instrs = instrs
		case len(f.succ.Preds) == 1:
			f.succ.Instrs = append(f.code, f.succ.Instrs...)
		default:
			// Critical edge: split it to get a safe home for the code.
			nb := s.p.SplitEdge(f.pred, f.succ)
			nb.Instrs = append(f.code, nb.Instrs...)
			nb.Depth = f.succ.Depth
			if f.pred.Depth < nb.Depth {
				nb.Depth = f.pred.Depth
			}
		}
	}
}

// resolveEdge computes the repair code for one edge.
func (s *scan) resolveEdge(pb, sb *ir.Block, usedCIn []*bitset.Set) []ir.Instr {
	bot := s.botLoc[pb.Order]
	top := s.topLoc[sb.Order]
	consP := s.savedCons[pb.Order]

	var ts []moves.Transfer
	busyRegs := make(map[target.Reg]bool)

	s.lv.LiveIn[sb.Order].ForEach(func(gi int) {
		t := s.lv.Globals[gi]
		cls := s.p.TempClass(t)
		lp, inRegP := bot[t]
		ls, inRegS := top[t]
		if inRegP {
			busyRegs[lp] = true
		}
		if inRegS {
			busyRegs[ls] = true
		}
		needCons := usedCIn != nil && usedCIn[sb.Order].Contains(gi)
		consAtP := consP.Contains(gi)

		switch {
		case inRegP && inRegS:
			if lp != ls {
				// "If the temporary was in two different registers
				// across the edge, we insert a move instruction."
				ts = append(ts, moves.Transfer{Temp: t, Class: cls,
					Src: moves.RegLoc(lp), Dst: moves.RegLoc(ls)})
			}
			if needCons && !consAtP {
				ts = append(ts, moves.Transfer{Temp: t, Class: cls,
					Src: moves.RegLoc(lp), Dst: moves.SlotLoc(s.frame.SlotOf(t))})
			}
		case inRegP && !inRegS:
			// Register → memory: "we insert a store instruction (but
			// only if a temporary's allocated register and memory home
			// are inconsistent)."
			if !consAtP {
				ts = append(ts, moves.Transfer{Temp: t, Class: cls,
					Src: moves.RegLoc(lp), Dst: moves.SlotLoc(s.frame.SlotOf(t))})
			}
		case !inRegP && inRegS:
			// Memory → register: load.
			ts = append(ts, moves.Transfer{Temp: t, Class: cls,
				Src: moves.SlotLoc(s.frame.SlotOf(t)), Dst: moves.RegLoc(ls)})
		}
	})
	if len(ts) == 0 {
		return nil
	}

	// The repair code runs on the edge: before sb's first original
	// instruction (top or split placement) or before pb's Jmp (bottom
	// placement). A scratch register for cycle breaking must be dead
	// there: not holding any live-in value on either side and not
	// hard-busy at the boundary.
	boundaryPos := pb.Instrs[len(pb.Instrs)-1].Pos
	if len(sb.Instrs) > 0 {
		boundaryPos = sb.Instrs[0].Pos
	}
	scratch := func(c target.Class) (target.Reg, bool) {
		for _, r := range s.mach.AllocOrder(c) {
			if busyRegs[r] || s.rb.BusyAt(r, boundaryPos) {
				continue
			}
			if !s.mach.CallerSaved(r) && !s.usedCallee[r] {
				continue // a fresh callee-saved register would need an unplanned save
			}
			return r, true
		}
		return target.NoReg, false
	}
	return moves.Sequence(ts, scratch, func(t ir.Temp) int { return s.frame.SlotOf(t) },
		moves.Tags{Load: ir.TagResolveLoad, Store: ir.TagResolveStore, Move: ir.TagResolveMove})
}
