package core

import (
	"repro/internal/alloc"
	"repro/internal/target"
)

// The binpacking family self-registers both of its variants: the
// paper-configured second-chance allocator and the traditional two-pass
// ablation of §3.1.
func init() {
	alloc.MustRegister("binpack", func(m *target.Machine) alloc.Allocator {
		return NewDefault(m)
	})
	alloc.MustRegister("twopass", func(m *target.Machine) alloc.Allocator {
		o := DefaultOptions()
		o.SecondChance = false
		return New(m, o)
	})
}
