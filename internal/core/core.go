// Package core implements second-chance binpacking, the register
// allocation algorithm of Traub, Holloway and Smith (PLDI 1998).
//
// The allocator walks the linearized procedure once, allocating registers
// and rewriting operands in the same pass (§2.3). A temporary evicted to
// memory is not doomed: its lifetime is split at the spill point and the
// next reference optimistically receives a fresh register — a second (or
// third, ...) chance. Register/memory consistency is tracked so spill
// stores are emitted only when the memory home is stale, and a resolution
// pass over CFG edges (§2.4) repairs the mismatches the linear-order
// fiction introduces, backed by the USED_CONSISTENCY / WROTE_TR /
// ARE_CONSISTENT bit-vector dataflow for stores whose omission relied on
// non-local consistency.
//
// The same package hosts the traditional two-pass binpacking model the
// paper measures against in §3.1 (whole lifetime in a register or in
// memory, still exploiting lifetime holes), selected with
// Options.SecondChance=false.
package core

import (
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/target"
)

// HeuristicKind selects the eviction priority function.
type HeuristicKind uint8

const (
	// HeuristicWeighted is the paper's heuristic (§2.3): priority is the
	// loop-depth weight of the temporary's next reference divided by the
	// distance to it; the lowest-priority temporary is evicted. Ties
	// prefer victims that need no spill store.
	HeuristicWeighted HeuristicKind = iota
	// HeuristicPlainDistance ignores loop depth: evict the temporary
	// whose next reference is farthest (the heuristic of Poletto's
	// linear scan, as an ablation).
	HeuristicPlainDistance
)

// Options configure the allocator. DefaultOptions matches the paper's
// configuration.
type Options struct {
	// SecondChance enables single-pass allocate+rewrite with lifetime
	// splitting. When false, the allocator runs the traditional
	// two-pass binpacking of §3.1: each lifetime is wholly in a
	// register or wholly in memory (holes are still exploited).
	SecondChance bool
	// MoveOpt enables §2.5 move coalescing during the scan: a move's
	// destination is assigned the source's register when the
	// destination's lifetime fits in the hole that opens after the
	// source's use (this is what eliminates the Alpha parameter moves).
	MoveOpt bool
	// EarlySecondChance enables §2.5 eviction moves: when a register
	// hole expires (e.g. at a call) and eviction would cost a store,
	// move the value to a free register whose hole covers the remaining
	// lifetime instead.
	EarlySecondChance bool
	// StrictLinear replaces the iterative consistency dataflow with the
	// conservative per-block initialization of §2.6 (intersection of
	// predecessor ARE_CONSISTENT vectors), making the allocator strictly
	// linear at the cost of some extra stores.
	StrictLinear bool
	// Heuristic selects the eviction priority function.
	Heuristic HeuristicKind
	// ProfileAllocs annotates the per-phase timings in Stats.Phases
	// with heap-allocation deltas (runtime/metrics reads at every phase
	// boundary). Off by default: timings are always collected, but
	// allocation sampling costs two counter reads per phase.
	ProfileAllocs bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		SecondChance:      true,
		MoveOpt:           true,
		EarlySecondChance: true,
	}
}

// Allocator is the binpacking register allocator. It keeps per-instance
// scratch buffers — for liveness, lifetime construction, and the scan
// itself — that are reused across Allocate calls, so one Allocator must
// not run concurrent allocations; use one instance per goroutine (the
// engine's worker pool does exactly that). In steady state, repeated
// allocation through one instance performs near-zero heap allocation
// beyond the rewritten procedure itself.
type Allocator struct {
	mach    *target.Machine
	opts    Options
	scratch scanScratch
	df      dataflow.Scratch
	ltsc    lifetime.Scratch
	rbsc    lifetime.RegScratch
}

// New returns an allocator for the machine with the given options.
func New(m *target.Machine, opts Options) *Allocator {
	return &Allocator{mach: m, opts: opts}
}

// NewDefault returns the paper-configured second-chance allocator.
func NewDefault(m *target.Machine) *Allocator { return New(m, DefaultOptions()) }

// Name identifies the allocator in reports.
func (a *Allocator) Name() string {
	if !a.opts.SecondChance {
		return "two-pass binpacking"
	}
	return "second-chance binpacking"
}

var (
	_ alloc.Allocator      = (*Allocator)(nil)
	_ alloc.OwnedAllocator = (*Allocator)(nil)
	_ alloc.PhaseProfiler  = (*Allocator)(nil)
)

// SetPhaseProfile toggles heap-allocation sampling at phase boundaries
// (Options.ProfileAllocs); the engine calls it on pooled instances.
func (a *Allocator) SetPhaseProfile(on bool) { a.opts.ProfileAllocs = on }

// Allocate clones p, allocates registers, rewrites the clone, and returns
// it with statistics. The input procedure is not modified.
func (a *Allocator) Allocate(orig *ir.Proc) (*alloc.Result, error) {
	return a.AllocateOwned(orig.Clone())
}

// AllocateOwned allocates registers for a procedure the caller owns: p
// is rewritten in place (and must not be used afterwards). The engine
// uses this path so each procedure is cloned exactly once per pipeline
// run.
func (a *Allocator) AllocateOwned(p *ir.Proc) (*alloc.Result, error) {
	res := &alloc.Result{Proc: p}
	st := &res.Stats
	tm := alloc.NewTimer(a.opts.ProfileAllocs)

	p.Renumber()
	tm.Mark(st, alloc.PhaseOther)
	// Shared setup (the paper excludes this from allocation timing:
	// CFG construction, loop analysis and liveness are common to both
	// allocators, §3.2).
	cfg.ComputeLoopDepths(p)
	tm.Mark(st, alloc.PhaseCFG)
	lv := a.df.Compute(p)
	tm.Mark(st, alloc.PhaseDataflow)

	start := time.Now()
	lt := a.ltsc.Compute(p, lv)
	rb := a.rbsc.Compute(p, a.mach)
	tm.Mark(st, alloc.PhaseLifetime)

	st.Candidates = p.NumTemps()

	var frame *alloc.Frame
	var usedCallee []bool
	if a.opts.SecondChance {
		s := newScan(p, a.mach, a.opts, lv, lt, rb, &a.scratch)
		if err := s.run(); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name(), p.Name, err)
		}
		tm.Mark(st, alloc.PhaseScan)
		s.resolve(&a.scratch)
		s.release(&a.scratch)
		tm.Mark(st, alloc.PhaseMoves)
		frame = s.frame
		usedCallee = s.usedCallee
	} else {
		var err error
		frame, usedCallee, err = a.twoPass(p, lt, rb)
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name(), p.Name, err)
		}
		tm.Mark(st, alloc.PhaseScan)
	}
	st.UsedCalleeSaved = alloc.InsertCalleeSaves(p, a.mach, usedCallee)
	st.AllocTime = time.Since(start)
	st.SpilledTemps = frame.NumSpilled()
	frame.Release() // the pooled frame must not pin p past this run
	p.Renumber()
	st.Inserted = alloc.CountInserted(p)
	if err := alloc.CheckNoTemps(p); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name(), err)
	}
	tm.Mark(st, alloc.PhaseOther)
	return res, nil
}
