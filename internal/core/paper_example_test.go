package core

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
	"repro/internal/vm"
)

// TestFigure2Resolution reproduces the paper's Figure 2: a diamond with
// five integer lifetimes but only two registers. T1 is defined in B1,
// spilled in B2 (which holds three competing lifetimes), and used in B3
// and B4. The allocator must insert an eviction store on the B2 path, a
// second-chance reload in B3 (in a different register), and resolution
// code on the edges so both join paths agree — which the VM then
// validates by producing the same result as the unallocated program.
func TestFigure2Resolution(t *testing.T) {
	// Two allocatable integer registers, as in the figure. (A third
	// integer register exists but is reserved for parameters by the
	// convention; we keep all five temporaries away from calls.)
	mach := target.MustNew(target.Config{
		Name: "fig2", NumInt: 2, NumFloat: 1,
		CallerSavedInt:   []int{0, 1},
		CallerSavedFloat: []int{0},
		IntParams:        []int{1},
		FloatParams:      []int{0},
		IntRet:           0,
		FloatRet:         0,
	})
	b := ir.NewBuilder(mach, 16)
	pb := b.NewProc("main")

	t1 := pb.IntTemp("T1")
	b2 := pb.Block("B2")
	b3 := pb.Block("B3")
	b4 := pb.Block("B4")

	// B1: i1: T1 ← 11 ; i2: .. ← T1
	pb.Ldi(t1, 11)
	cond := pb.IntTemp("cond")
	pb.Op2(ir.CmpLT, cond, ir.TempOp(t1), ir.ImmOp(100)) // uses T1 (i2)
	pb.Br(ir.TempOp(cond), b2, b3)

	// B2: three short lifetimes force T1 out of its register.
	pb.StartBlock(b2)
	a := pb.IntTemp("a")
	bb := pb.IntTemp("b")
	cc := pb.IntTemp("c")
	pb.Ldi(a, 1)
	pb.Ldi(bb, 2)
	pb.Ldi(cc, 3)
	pb.Op2(ir.Add, a, ir.TempOp(a), ir.TempOp(bb))
	pb.Op2(ir.Add, a, ir.TempOp(a), ir.TempOp(cc))
	pb.St(ir.TempOp(a), ir.ImmOp(0), 0)
	pb.Jmp(b4)

	// B3: i3: .. ← T1 ; i4: T1 ← ..
	pb.StartBlock(b3)
	d := pb.IntTemp("d")
	pb.Op2(ir.Add, d, ir.TempOp(t1), ir.ImmOp(5)) // i3 reads T1
	pb.St(ir.TempOp(d), ir.ImmOp(1), 0)
	pb.Ldi(t1, 77) // i4 writes T1
	pb.Jmp(b4)

	// B4: uses T1 from both paths.
	pb.StartBlock(b4)
	out := pb.IntTemp("out")
	pb.Op2(ir.Add, out, ir.TempOp(t1), ir.ImmOp(1000))
	pb.Ret(out)

	want, err := vm.Run(b.Prog, vm.Config{Mach: mach})
	if err != nil {
		t.Fatal(err)
	}

	res, err := NewDefault(mach).Allocate(pb.P)
	if err != nil {
		t.Fatalf("allocate: %v\n%s", err, ir.ProcString(pb.P))
	}

	// The allocation must have spilled T1 (three competing lifetimes in
	// B2, two registers) and used second-chance machinery: at least one
	// eviction store and, on some path, resolution code.
	var evictStores, reloads, resolveOps int
	for _, blk := range res.Proc.Blocks {
		for i := range blk.Instrs {
			switch blk.Instrs[i].Tag {
			case ir.TagScanStore:
				evictStores++
			case ir.TagScanLoad:
				reloads++
			case ir.TagResolveLoad, ir.TagResolveStore, ir.TagResolveMove:
				resolveOps++
			}
		}
	}
	if evictStores == 0 {
		t.Errorf("expected an eviction store (i5 in the figure), found none:\n%s", ir.ProcString(res.Proc))
	}
	if reloads+resolveOps == 0 {
		t.Errorf("expected second-chance reloads or resolution code:\n%s", ir.ProcString(res.Proc))
	}

	allocd := ir.NewProgram(b.Prog.MemWords)
	allocd.AddProc(res.Proc)
	got, err := vm.Run(allocd, vm.Config{Mach: mach, Paranoid: true})
	if err != nil {
		t.Fatalf("allocated run: %v\n%s", err, ir.ProcString(res.Proc))
	}
	if got.RetValue != want.RetValue {
		t.Fatalf("ret = %d, want %d\n%s", got.RetValue, want.RetValue, ir.ProcString(res.Proc))
	}
}

// TestConsistencySuppressesStores checks §2.3's store-inhibition: a value
// reloaded from memory and then evicted again without an intervening
// write must not be stored a second time.
func TestConsistencySuppressesStores(t *testing.T) {
	mach := target.Tiny(4, 2)
	b := ir.NewBuilder(mach, 16)
	pb := b.NewProc("main")

	// x is written once, then repeatedly read while heavy pressure
	// cycles it through memory; only one store of x should ever appear.
	x := pb.IntTemp("x")
	pb.Ldi(x, 42)
	acc := pb.IntTemp("acc")
	pb.Ldi(acc, 0)
	for i := 0; i < 4; i++ {
		// Pressure burst: three fresh simultaneously-live values.
		p1 := pb.IntTemp("")
		p2 := pb.IntTemp("")
		p3 := pb.IntTemp("")
		pb.Ldi(p1, int64(i))
		pb.Ldi(p2, int64(i+1))
		pb.Ldi(p3, int64(i+2))
		pb.Op2(ir.Add, p1, ir.TempOp(p1), ir.TempOp(p2))
		pb.Op2(ir.Add, p1, ir.TempOp(p1), ir.TempOp(p3))
		pb.Op2(ir.Add, acc, ir.TempOp(acc), ir.TempOp(p1))
		// Read x (never written again).
		pb.Op2(ir.Add, acc, ir.TempOp(acc), ir.TempOp(x))
	}
	pb.Ret(acc)

	res, err := NewDefault(mach).Allocate(pb.P)
	if err != nil {
		t.Fatal(err)
	}
	storesOfX := 0
	for _, blk := range res.Proc.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op == ir.SpillSt && in.Uses[1].Kind == ir.KindSlot &&
				in.Uses[1].Temp != ir.NoTemp && res.Proc.TempName(in.Uses[1].Temp) == "x" {
				storesOfX++
			}
		}
	}
	if storesOfX > 1 {
		t.Fatalf("x stored %d times; consistency should suppress repeats:\n%s",
			storesOfX, ir.ProcString(res.Proc))
	}
}

// TestMoveOptCoalescesParamMove checks §2.5: the convention move from a
// parameter register is eliminated when the parameter's lifetime fits
// the register's hole.
func TestMoveOptCoalescesParamMove(t *testing.T) {
	mach := target.Alpha()
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("f", target.ClassInt)
	x := pb.P.Params[0]
	y := pb.IntTemp("y")
	pb.Op2(ir.Add, y, ir.TempOp(x), ir.ImmOp(1))
	pb.Ret(y)

	res, err := NewDefault(mach).Allocate(pb.P)
	if err != nil {
		t.Fatal(err)
	}
	// The param move must have become a self-move (deleted by peephole).
	selfMoves := 0
	for _, blk := range res.Proc.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op.IsMove() && in.Uses[0].Kind == ir.KindReg && in.Defs[0].Kind == ir.KindReg &&
				in.Uses[0].Reg == in.Defs[0].Reg {
				selfMoves++
			}
		}
	}
	if selfMoves == 0 {
		t.Fatalf("param move not coalesced:\n%s", ir.ProcString(res.Proc))
	}

	// Without the optimization the move must remain a real move.
	o := DefaultOptions()
	o.MoveOpt = false
	res2, err := New(mach, o).Allocate(pb.P)
	if err != nil {
		t.Fatal(err)
	}
	realMoves := 0
	for _, blk := range res2.Proc.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op.IsMove() && in.Uses[0].Kind == ir.KindReg && in.Defs[0].Kind == ir.KindReg &&
				in.Uses[0].Reg != in.Defs[0].Reg {
				realMoves++
			}
		}
	}
	if realMoves == 0 {
		t.Fatal("expected a real convention move without MoveOpt")
	}
}
