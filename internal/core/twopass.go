package core

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/target"
)

// twoPass implements traditional binpacking for the §3.1 ablation: "a
// version of our allocator that assigns a whole lifetime to either memory
// or register. This implementation still takes advantage of lifetime
// holes during allocation."
//
// Pass 1 walks lifetimes in order of their first live position and packs
// each whole lifetime into a register whose free space (its own holes
// minus already-packed lifetimes) contains every live segment; a lifetime
// that fits nowhere lives in memory. Pass 2 rewrites the code, routing
// references to memory-resident temporaries through reserved scratch
// registers (the standard engineering stand-in for the paper's
// always-allocated point lifetimes; see DESIGN.md).
func (a *Allocator) twoPass(p *ir.Proc, lt *lifetime.Table, rb *lifetime.RegBusy) (*alloc.Frame, []bool, error) {
	scratch := alloc.PickScratch(a.mach)
	reserved := map[target.Reg]bool{
		scratch.Int[0]: true, scratch.Int[1]: true,
		scratch.Float[0]: true, scratch.Float[1]: true,
	}

	asn := alloc.NewAssignment(p)
	packed := make([][]*lifetime.Interval, a.mach.NumRegs())

	var order []*lifetime.Interval
	for _, iv := range lt.Intervals {
		if !iv.Empty() {
			order = append(order, iv)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Start() != order[j].Start() {
			return order[i].Start() < order[j].Start()
		}
		return order[i].End() > order[j].End() // longer lifetimes first on ties
	})

	usedCallee := grow(a.scratch.usedCallee, a.mach.NumRegs())
	a.scratch.usedCallee = usedCallee
	for _, iv := range order {
		cls := p.TempClass(iv.Temp)
		for _, r := range a.mach.AllocOrder(cls) {
			if reserved[r] {
				continue
			}
			if !regFits(rb, r, iv) || !packFits(packed[r], iv) {
				continue
			}
			asn.Reg[iv.Temp] = r
			packed[r] = append(packed[r], iv)
			if !a.mach.CallerSaved(r) {
				usedCallee[r] = true
			}
			break
		}
	}

	a.scratch.frame.Reset(p)
	frame := &a.scratch.frame
	alloc.RewriteAssigned(p, a.mach, asn, frame, scratch, usedCallee)
	return frame, usedCallee, nil
}

// regFits reports whether every live segment of iv avoids the register's
// hard-busy points (convention references and, for caller-saved
// registers, call clobbers). This is what shuts temporaries that are live
// across calls out of the caller-saved file under two-pass binpacking —
// the effect behind the paper's wc result.
func regFits(rb *lifetime.RegBusy, r target.Reg, iv *lifetime.Interval) bool {
	for _, seg := range iv.Segments {
		if !rb.FreeThrough(r, seg.Start, seg.End) {
			return false
		}
	}
	return true
}

// packFits reports whether iv's segments are disjoint from every lifetime
// already packed into the register — lifetimes may nest into one
// another's holes (§2.2).
func packFits(assigned []*lifetime.Interval, iv *lifetime.Interval) bool {
	for _, other := range assigned {
		if segmentsOverlap(iv.Segments, other.Segments) {
			return false
		}
	}
	return true
}

func segmentsOverlap(a, b []lifetime.Segment) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].End < b[j].Start {
			i++
		} else if b[j].End < a[i].Start {
			j++
		} else {
			return true
		}
	}
	return false
}
