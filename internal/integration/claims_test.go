package integration

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/progs"
	"repro/internal/target"
)

// These tests pin the paper's qualitative claims so that refactoring the
// allocators cannot silently regress the reproduction. They run the
// actual experiment harness at reduced scale.

// TestClaimQualityNearColoring — Table 1's headline — binpacking's
// dynamic instruction counts stay close to coloring's on the non-fpppp
// suite (the paper's ratios range 1.000–1.131 there).
func TestClaimQualityNearColoring(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	mach := target.Alpha()
	rows, err := experiments.Table1(mach, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Benchmark == "fpppp" {
			continue // documented deviation (EXPERIMENTS.md)
		}
		if r.InstrRatio > 1.25 || r.InstrRatio < 0.85 {
			t.Errorf("%s: binpack/coloring ratio %.3f outside the near-parity band",
				r.Benchmark, r.InstrRatio)
		}
	}
}

// TestClaimSpillFreeBenchmarks — Table 2 — the benchmarks the paper
// reports as spill-free stay spill-free under both allocators (wc is
// near-zero in our phase-structured variant).
func TestClaimSpillFreeBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	mach := target.Alpha()
	rows, err := experiments.Table2(mach, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		b := progs.Named(r.Benchmark)
		if !b.SpillFree || r.Benchmark == "wc" {
			continue
		}
		if r.BinpackSpill != 0 {
			t.Errorf("%s: binpack spill %d, expected none", r.Benchmark, r.BinpackSpill)
		}
		if r.ColoringSpill != 0 {
			t.Errorf("%s: coloring spill %d, expected none", r.Benchmark, r.ColoringSpill)
		}
	}
}

// TestClaimTwoPassCollapsesOnWC — §3.1 — two-pass binpacking is far worse
// on wc (paper: +38%; we accept 1.2–1.6×) and identical on eqntott.
func TestClaimTwoPassCollapsesOnWC(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	mach := target.Alpha()
	rows, err := experiments.Ablations(mach, []string{"wc", "eqntott"}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench, variant string) *experiments.AblationRow {
		for i := range rows {
			if rows[i].Benchmark == bench && rows[i].Variant == variant {
				return &rows[i]
			}
		}
		t.Fatalf("missing row %s/%s", bench, variant)
		return nil
	}
	wc := get("wc", "two-pass (§3.1)")
	if wc.RatioToPaper < 1.2 || wc.RatioToPaper > 1.6 {
		t.Errorf("wc two-pass ratio %.3f outside [1.2,1.6] (paper: 1.38)", wc.RatioToPaper)
	}
	eq := get("eqntott", "two-pass (§3.1)")
	if eq.RatioToPaper != 1.0 {
		t.Errorf("eqntott two-pass ratio %.3f, want exactly 1.0", eq.RatioToPaper)
	}
}

// TestClaimEarlySecondChanceMatters — §2.5 — removing early second chance
// must hurt wc substantially (the phase transition becomes stores plus
// per-iteration reloads).
func TestClaimEarlySecondChanceMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	mach := target.Alpha()
	rows, err := experiments.Ablations(mach, []string{"wc"}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Variant == "no early second chance (§2.5)" && r.RatioToPaper < 1.2 {
			t.Errorf("disabling early second chance only costs %.3f× on wc", r.RatioToPaper)
		}
	}
}

// TestClaimMoveOptMatters — §2.5 — removing move optimization must hurt
// the call-intensive li workload (parameter moves survive).
func TestClaimMoveOptMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	mach := target.Alpha()
	rows, err := experiments.Ablations(mach, []string{"li"}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Variant == "no move optimization (§2.5)" && r.RatioToPaper < 1.05 {
			t.Errorf("disabling move optimization only costs %.3f× on li", r.RatioToPaper)
		}
	}
}

// TestClaimColoringDegradesOnLargeModules — Table 3 — coloring's
// allocation time grows far faster than binpacking's between the small
// and the large module.
func TestClaimColoringDegradesOnLargeModules(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment harness")
	}
	mach := target.Alpha()
	small := progs.BuildModule(mach, "small", 4, 250, 1)
	large := progs.BuildModule(mach, "large", 1, 5000, 2)

	timeFor := func(mod *progs.Module, coloring bool) float64 {
		var total float64
		a := experiments.Binpack(mach)
		if coloring {
			a = experiments.GraphColoring(mach)
		}
		for _, p := range mod.Prog.Procs {
			if p.Name == "main" {
				continue
			}
			res, err := a.Allocate(p)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Stats.AllocTime.Seconds()
		}
		return total
	}
	gcGrowth := timeFor(large, true) / timeFor(small, true)
	bpGrowth := timeFor(large, false) / timeFor(small, false)
	if gcGrowth < 2*bpGrowth {
		t.Errorf("coloring growth %.1f× not clearly worse than binpacking growth %.1f×",
			gcGrowth, bpGrowth)
	}
}

// TestClaimColoringHasNoResolveCode — Figure 3's structural property —
// coloring never emits resolution-tagged instructions; only the linear
// allocator needs edge repair.
func TestClaimColoringHasNoResolveCode(t *testing.T) {
	mach := target.Alpha()
	for _, name := range experiments.Figure3Benchmarks {
		b := progs.Named(name)
		c, _, err := experiments.RunBench(b, mach, 1, experiments.GraphColoring(mach))
		if err != nil {
			t.Fatal(err)
		}
		if c.ByTag[4]+c.ByTag[5]+c.ByTag[6] != 0 { // resolve load/store/move
			t.Errorf("%s: coloring produced resolution code", name)
		}
	}
}
