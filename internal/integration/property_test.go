package integration

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/lifetime"
	"repro/internal/progs"
	"repro/internal/target"
)

// Property tests over random programs for the analysis substrate: these
// are the invariants the allocators rely on.

// TestPropertyLifetimeInvariants — for random programs, every temporary's
// interval has sorted disjoint segments, every reference falls on a live
// position inside the lifetime, and holes are exactly the dead gaps.
func TestPropertyLifetimeInvariants(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		mach := target.Alpha()
		prog := progs.Random(mach, progs.DefaultGen(seed))
		for _, p := range prog.Procs {
			p.Renumber()
			lv := dataflow.Compute(p)
			lt := lifetime.Compute(p, lv)
			for _, iv := range lt.Intervals {
				for i := range iv.Segments {
					s := iv.Segments[i]
					if s.Start > s.End {
						t.Fatalf("seed %d: inverted segment %v", seed, iv)
					}
					if i > 0 && s.Start <= iv.Segments[i-1].End+1 {
						t.Fatalf("seed %d: unmerged adjacent segments %v", seed, iv)
					}
				}
				for _, ref := range iv.Refs {
					if !iv.LiveAt(ref.Pos) {
						t.Fatalf("seed %d: reference at dead position %d of %v", seed, ref.Pos, iv)
					}
				}
				if iv.Empty() {
					continue
				}
				// LiveAt and InHoleAt partition [Start, End].
				for pos := iv.Start(); pos <= iv.End(); pos++ {
					live, hole := iv.LiveAt(pos), iv.InHoleAt(pos)
					if live == hole {
						t.Fatalf("seed %d: pos %d of %v is live=%v hole=%v", seed, pos, iv, live, hole)
					}
				}
			}
		}
	}
}

// TestPropertyLivenessConsistency — the per-position view derived from
// lifetimes agrees with block-boundary liveness: a global temporary in
// LiveIn(b) must be live at b's first position, and one in LiveOut(b)
// live at b's last position. (The converse need not hold: a definition
// at the boundary position starts a segment without boundary liveness.)
func TestPropertyLivenessConsistency(t *testing.T) {
	for seed := int64(300); seed < 320; seed++ {
		mach := target.Tiny(8, 5)
		prog := progs.Random(mach, progs.DefaultGen(seed))
		for _, p := range prog.Procs {
			p.Renumber()
			lv := dataflow.Compute(p)
			lt := lifetime.Compute(p, lv)
			for _, b := range p.Blocks {
				if len(b.Instrs) == 0 {
					continue
				}
				first := b.Instrs[0].Pos
				last := b.Instrs[len(b.Instrs)-1].Pos
				for gi, tmp := range lv.Globals {
					iv := lt.Intervals[tmp]
					if lv.LiveIn[b.Order].Contains(gi) && !iv.LiveAt(first) {
						t.Fatalf("seed %d: %s liveIn(%s) but interval dead at %d",
							seed, p.TempName(tmp), b.Name, first)
					}
					if lv.LiveOut[b.Order].Contains(gi) && !iv.LiveAt(last) {
						t.Fatalf("seed %d: %s liveOut(%s) but interval dead at %d",
							seed, p.TempName(tmp), b.Name, last)
					}
				}
			}
		}
	}
}

// TestPropertyRegBusyConservative — every explicit physical-register
// operand position is busy in the RegBusy table, and callee-saved
// registers are never busy.
func TestPropertyRegBusyConservative(t *testing.T) {
	for seed := int64(400); seed < 415; seed++ {
		mach := target.Alpha()
		prog := progs.Random(mach, progs.DefaultGen(seed))
		for _, p := range prog.Procs {
			p.Renumber()
			rb := lifetime.ComputeRegBusy(p, mach)
			for _, b := range p.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					for _, o := range in.Uses {
						if o.Kind == 2 { // KindReg
							if !rb.BusyAt(o.Reg, in.Pos) {
								t.Fatalf("seed %d: reg use at %d not busy", seed, in.Pos)
							}
						}
					}
					for _, o := range in.Defs {
						if o.Kind == 2 {
							if !rb.BusyAt(o.Reg, in.Pos) {
								t.Fatalf("seed %d: reg def at %d not busy", seed, in.Pos)
							}
						}
					}
				}
			}
			nPos := int32(p.NumInstrs())
			for _, r := range mach.CalleeSavedRegs(target.ClassInt) {
				for pos := int32(0); pos < nPos; pos++ {
					if rb.BusyAt(r, pos) {
						t.Fatalf("seed %d: callee-saved busy at %d", seed, pos)
					}
				}
			}
		}
	}
}

// TestPropertyAllocationIdempotentStats — allocating the same procedure
// twice yields identical static spill counts (the allocators are
// deterministic).
func TestPropertyAllocationIdempotentStats(t *testing.T) {
	mach := target.Tiny(6, 4)
	for seed := int64(500); seed < 512; seed++ {
		prog := progs.Random(mach, progs.DefaultGen(seed))
		for name, a := range allocators(mach) {
			r1, err1 := a.Allocate(prog.Proc("main"))
			r2, err2 := a.Allocate(prog.Proc("main"))
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d %s: %v/%v", seed, name, err1, err2)
			}
			if r1.Stats.Inserted != r2.Stats.Inserted {
				t.Fatalf("seed %d %s: nondeterministic spill counts:\n%v\n%v",
					seed, name, r1.Stats.Inserted, r2.Stats.Inserted)
			}
			if r1.Proc.NumInstrs() != r2.Proc.NumInstrs() {
				t.Fatalf("seed %d %s: nondeterministic instruction count", seed, name)
			}
		}
	}
}
