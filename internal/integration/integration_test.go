// End-to-end allocator runs over the benchmark suite and random
// programs; see doc.go for the package overview.

package integration

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/linearscan"
	"repro/internal/opt"
	"repro/internal/progs"
	"repro/internal/target"
	"repro/internal/verify"
	"repro/internal/vm"
)

// allocators returns the contenders for a machine.
func allocators(mach *target.Machine) map[string]alloc.Allocator {
	twoPass := core.DefaultOptions()
	twoPass.SecondChance = false
	strict := core.DefaultOptions()
	strict.StrictLinear = true
	return map[string]alloc.Allocator{
		"binpack":        core.NewDefault(mach),
		"binpack-strict": core.New(mach, strict),
		"twopass":        core.New(mach, twoPass),
		"coloring":       coloring.New(mach),
		"linearscan":     linearscan.New(mach),
	}
}

// allocateProgram runs one allocator over every procedure of prog,
// verifying each result, and returns the allocated program.
func allocateProgram(t *testing.T, mach *target.Machine, a alloc.Allocator, prog *ir.Program) *ir.Program {
	t.Helper()
	out := ir.NewProgram(prog.MemWords)
	out.Main = prog.Main
	for addr, v := range prog.MemInit {
		out.SetMem(addr, v)
	}
	for _, p := range prog.Procs {
		res, err := a.Allocate(p)
		if err != nil {
			t.Fatalf("%s: allocate %s: %v", a.Name(), p.Name, err)
		}
		if err := verify.Verify(res.Proc, mach); err != nil {
			t.Fatalf("%s: %v\n%s", a.Name(), err, dump(mach, res.Proc))
		}
		opt.Peephole(res.Proc)
		if err := ir.ValidateAllocated(res.Proc, mach); err != nil {
			t.Fatalf("%s: invalid output for %s: %v", a.Name(), p.Name, err)
		}
		out.AddProc(res.Proc)
	}
	return out
}

func dump(mach *target.Machine, p *ir.Proc) string {
	var sb bytes.Buffer
	pr := &ir.Printer{Mach: mach, Tags: true, Positions: true}
	pr.WriteProc(&sb, p)
	return sb.String()
}

// checkEquivalent runs both programs and compares outputs.
func checkEquivalent(t *testing.T, mach *target.Machine, name string, orig, allocd *ir.Program, input []byte) {
	t.Helper()
	want, err := vm.Run(orig, vm.Config{Mach: mach, Input: input})
	if err != nil {
		t.Fatalf("%s: reference run: %v", name, err)
	}
	got, err := vm.Run(allocd, vm.Config{Mach: mach, Input: input, Paranoid: true})
	if err != nil {
		t.Fatalf("%s: allocated run: %v\n%s", name, err, dump(mach, allocd.Proc(allocd.Main)))
	}
	if !bytes.Equal(want.Output, got.Output) || want.RetValue != got.RetValue {
		t.Fatalf("%s: output mismatch\nwant %q ret=%d\ngot  %q ret=%d\n%s",
			name, want.Output, want.RetValue, got.Output, got.RetValue,
			dump(mach, allocd.Proc(allocd.Main)))
	}
}

// TestSuiteAllAllocators runs every paper benchmark at test scale under
// every allocator on the Alpha-like machine and a small machine.
func TestSuiteAllAllocators(t *testing.T) {
	machines := map[string]*target.Machine{
		"alpha":   target.Alpha(),
		"tiny8_6": target.Tiny(8, 6),
	}
	for _, b := range progs.Suite() {
		for mname, mach := range machines {
			prog := b.Build(mach, 2)
			if err := ir.ValidateProgram(prog, mach); err != nil {
				t.Fatalf("%s: invalid input program: %v", b.Name, err)
			}
			var input []byte
			if b.Input != nil {
				input = b.Input(2)
			}
			for aname, a := range allocators(mach) {
				t.Run(fmt.Sprintf("%s/%s/%s", b.Name, mname, aname), func(t *testing.T) {
					allocd := allocateProgram(t, mach, a, prog)
					checkEquivalent(t, mach, b.Name, prog, allocd, input)
				})
			}
		}
	}
}

// TestRandomPrograms is the main property test: seeded random programs
// must behave identically before and after allocation, for every
// allocator, on machines from comfortable to starved.
func TestRandomPrograms(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	machines := []*target.Machine{
		target.Alpha(),
		target.Tiny(10, 6),
		target.Tiny(6, 4),
		target.Tiny(5, 3),
	}
	for seed := 0; seed < seeds; seed++ {
		cfg := progs.DefaultGen(int64(seed))
		// Vary the shape with the seed.
		cfg.IntTemps = 6 + seed%10
		cfg.FloatTemps = 3 + seed%5
		cfg.Stmts = 30 + (seed*13)%80
		cfg.Helper = seed%3 != 0
		cfg.Calls = seed%5 != 4
		mach := machines[seed%len(machines)]
		prog := progs.Random(mach, cfg)
		if err := ir.ValidateProgram(prog, mach); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		input := []byte(fmt.Sprintf("random-input-%d-abcdefghijklmnop", seed))
		for aname, a := range allocators(mach) {
			t.Run(fmt.Sprintf("seed%d/%s", seed, aname), func(t *testing.T) {
				allocd := allocateProgram(t, mach, a, prog)
				checkEquivalent(t, mach, fmt.Sprintf("seed%d", seed), prog, allocd, input)
			})
		}
	}
}

// TestOptionMatrixRandom exercises the binpacking option space (move
// optimization, early second chance, strict linear, heuristics) against
// random programs.
func TestOptionMatrixRandom(t *testing.T) {
	mach := target.Tiny(7, 5)
	variants := map[string]core.Options{
		"paper":     core.DefaultOptions(),
		"bare":      {SecondChance: true},
		"no_move":   {SecondChance: true, EarlySecondChance: true},
		"no_early":  {SecondChance: true, MoveOpt: true},
		"strict":    {SecondChance: true, MoveOpt: true, EarlySecondChance: true, StrictLinear: true},
		"plaindist": {SecondChance: true, MoveOpt: true, EarlySecondChance: true, Heuristic: core.HeuristicPlainDistance},
	}
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 100; seed < 100+seeds; seed++ {
		cfg := progs.DefaultGen(int64(seed))
		cfg.IntTemps = 10
		cfg.FloatTemps = 5
		prog := progs.Random(mach, cfg)
		input := []byte("option-matrix-input-stream")
		for vname, o := range variants {
			t.Run(fmt.Sprintf("seed%d/%s", seed, vname), func(t *testing.T) {
				a := core.New(mach, o)
				allocd := allocateProgram(t, mach, a, prog)
				checkEquivalent(t, mach, vname, prog, allocd, input)
			})
		}
	}
}

// TestForwardStoresPreservesSemantics checks the optional post-allocation
// store-to-load forwarding pass.
func TestForwardStoresPreservesSemantics(t *testing.T) {
	mach := target.Tiny(6, 4)
	for seed := int64(0); seed < 10; seed++ {
		prog := progs.Random(mach, progs.DefaultGen(seed))
		input := []byte("forwarding-test-input")
		a := core.NewDefault(mach)
		allocd := allocateProgram(t, mach, a, prog)
		for _, p := range allocd.Procs {
			opt.ForwardStores(p, mach)
			opt.Peephole(p)
			if err := ir.ValidateAllocated(p, mach); err != nil {
				t.Fatalf("seed %d: after forwarding: %v", seed, err)
			}
		}
		checkEquivalent(t, mach, "forward", prog, allocd, input)
	}
}

// TestVerifierCatchesCorruption injects defects into a correct
// allocation and requires the verifier to reject each one.
func TestVerifierCatchesCorruption(t *testing.T) {
	mach := target.Tiny(6, 4)
	prog := progs.Random(mach, progs.DefaultGen(7))
	res, err := core.NewDefault(mach).Allocate(prog.Proc("main"))
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(res.Proc, mach); err != nil {
		t.Fatalf("clean allocation rejected: %v", err)
	}

	corruptions := 0
	tried := 0
	for bi, b := range res.Proc.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.OrigUses == nil {
				continue
			}
			for ui := range in.Uses {
				if in.OrigUses[ui] == ir.NoTemp || in.Uses[ui].Kind != ir.KindReg {
					continue
				}
				tried++
				if tried%7 != 0 {
					continue // sample a subset to keep the test fast
				}
				// Corrupt: redirect the use to a different register of
				// the same class.
				c := mach.RegClass(in.Uses[ui].Reg)
				var other target.Reg = target.NoReg
				for _, r := range mach.AllocOrder(c) {
					if r != in.Uses[ui].Reg {
						other = r
						break
					}
				}
				old := in.Uses[ui].Reg
				in.Uses[ui].Reg = other
				if err := verify.Verify(res.Proc, mach); err == nil {
					t.Errorf("block %d instr %d: corrupted use not detected", bi, i)
				} else {
					corruptions++
				}
				in.Uses[ui].Reg = old
			}
		}
	}
	if corruptions == 0 {
		t.Fatal("no corruptions exercised")
	}
}

// TestVerifierCatchesDroppedSpillCode deletes allocator-inserted spill
// loads one at a time. The verifier must reject the mutation — or, when
// it accepts, the mutation must be genuinely harmless (a redundant
// reload of a value that never left its register, which happens when an
// eviction was store-suppressed by consistency): the VM output must be
// unchanged. This establishes that verifier acceptance implies
// semantics preservation on this corpus.
func TestVerifierCatchesDroppedSpillCode(t *testing.T) {
	mach := target.Tiny(5, 3)
	prog := progs.Random(mach, progs.DefaultGen(11))
	a := core.NewDefault(mach)
	input := []byte("drop-spill-load-test-input")
	want, err := vm.Run(prog, vm.Config{Mach: mach, Input: input})
	if err != nil {
		t.Fatal(err)
	}

	allocd := allocateProgram(t, mach, a, prog)
	base := allocd.Proc("main")
	dropped, caught, redundant := 0, 0, 0
	for bi := range base.Blocks {
		for i := range base.Blocks[bi].Instrs {
			in := base.Blocks[bi].Instrs[i]
			if in.Tag != ir.TagScanLoad && in.Tag != ir.TagResolveLoad {
				continue
			}
			mut := base.Clone()
			blk := mut.Blocks[bi]
			blk.Instrs = append(append([]ir.Instr(nil), blk.Instrs[:i]...), blk.Instrs[i+1:]...)
			dropped++
			if err := verify.Verify(mut, mach); err != nil {
				caught++
				continue
			}
			// Verifier accepted: the drop must be harmless.
			mp := ir.NewProgram(allocd.MemWords)
			for addr, v := range allocd.MemInit {
				mp.SetMem(addr, v)
			}
			for _, q := range allocd.Procs {
				if q.Name == "main" {
					mp.AddProc(mut)
				} else {
					mp.AddProc(q)
				}
			}
			got, err := vm.Run(mp, vm.Config{Mach: mach, Input: input, Paranoid: true})
			if err != nil || !bytes.Equal(got.Output, want.Output) || got.RetValue != want.RetValue {
				t.Fatalf("block %d instr %d: verifier accepted a semantics-changing drop (err=%v)", bi, i, err)
			}
			redundant++
		}
	}
	if dropped == 0 {
		t.Skip("allocation produced no spill loads to drop")
	}
	t.Logf("dropped %d spill loads: %d caught by verifier, %d proven redundant", dropped, caught, redundant)
	if caught == 0 {
		t.Fatal("verifier caught nothing")
	}
}
