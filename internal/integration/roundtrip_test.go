package integration

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/target"
	"repro/internal/vm"
)

// TestSuitePrintParseRoundTrip prints every suite benchmark, parses it
// back, and checks (a) the printed forms reach a fixed point and (b) the
// reparsed program behaves identically on the VM. This pins the textual
// IR format end to end.
func TestSuitePrintParseRoundTrip(t *testing.T) {
	mach := target.Alpha()
	pr := &ir.Printer{Mach: mach}
	for _, bench := range progs.Suite() {
		t.Run(bench.Name, func(t *testing.T) {
			prog := bench.Build(mach, 1)
			var sb strings.Builder
			pr.WriteProgram(&sb, prog)
			first := sb.String()

			parsed, err := ir.ParseProgram(strings.NewReader(first), mach)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := ir.ValidateProgram(parsed, mach); err != nil {
				t.Fatalf("reparsed program invalid: %v", err)
			}
			var sb2 strings.Builder
			pr.WriteProgram(&sb2, parsed)
			if first != sb2.String() {
				t.Fatal("print→parse→print is not a fixed point")
			}

			// Memory image is not part of the textual form; copy it so
			// behavior can be compared.
			parsed.MemInit = prog.MemInit
			if parsed.MemWords != prog.MemWords {
				t.Fatal("memory size lost in round trip")
			}
			var input []byte
			if bench.Input != nil {
				input = bench.Input(1)
			}
			want, err := vm.Run(prog, vm.Config{Mach: mach, Input: input})
			if err != nil {
				t.Fatal(err)
			}
			got, err := vm.Run(parsed, vm.Config{Mach: mach, Input: input})
			if err != nil {
				t.Fatalf("reparsed run: %v", err)
			}
			if !bytes.Equal(want.Output, got.Output) || want.RetValue != got.RetValue {
				t.Fatal("reparsed program behaves differently")
			}
		})
	}
}

// TestRandomProgramsRoundTrip does the same over seeded random programs,
// and additionally allocates the reparsed program to confirm the parsed
// IR is allocator-grade.
func TestRandomProgramsRoundTrip(t *testing.T) {
	mach := target.Tiny(8, 4)
	pr := &ir.Printer{Mach: mach}
	for seed := int64(600); seed < 612; seed++ {
		prog := progs.Random(mach, progs.DefaultGen(seed))
		var sb strings.Builder
		pr.WriteProgram(&sb, prog)
		parsed, err := ir.ParseProgram(strings.NewReader(sb.String()), mach)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		parsed.MemInit = prog.MemInit
		input := []byte("roundtrip input")
		for name, a := range allocators(mach) {
			allocd := allocateProgram(t, mach, a, parsed)
			checkEquivalent(t, mach, name, prog, allocd, input)
		}
	}
}
