// Package integration ties the whole pipeline together: every allocator
// is run over the paper's benchmark suite and hundreds of random
// programs, and each allocation must (a) pass the symbolic verifier and
// (b) produce bit-identical VM output against the unallocated program,
// with caller-saved registers poisoned at every call. The package holds
// tests only; this file exists so the package documentation lives in a
// non-test file.
package integration
