package lifetime

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/target"
)

// buildFigure1 reproduces the paper's Figure 1: four temporaries over the
// linear order B1 B2 B3 B4, where T1 has a hole spanning B2 (it is dead
// there after its last B2 use and redefined in B3) and T3's whole
// lifetime fits inside it.
func buildFigure1(t *testing.T) (*ir.Proc, map[string]ir.Temp) {
	t.Helper()
	b := ir.NewBuilder(target.Tiny(8, 3), 8)
	pb := b.NewProc("main")
	t1 := pb.IntTemp("T1")
	t2 := pb.IntTemp("T2")
	t3 := pb.IntTemp("T3")
	t4 := pb.IntTemp("T4")
	u := pb.IntTemp("u")

	b2 := pb.Block("B2")
	b3 := pb.Block("B3")
	b4 := pb.Block("B4")

	// B1: T2 ← .. ; T1 ← .. ; br
	pb.Ldi(t2, 2)
	pb.Ldi(t1, 1)
	c := pb.IntTemp("c")
	pb.Op2(ir.CmpLT, c, ir.TempOp(t2), ir.ImmOp(5))
	pb.Br(ir.TempOp(c), b2, b3)

	// B2: .. ← T1 ; T3 ← T2 ; T4 ← .. ; .. ← T3
	pb.StartBlock(b2)
	pb.Op2(ir.Add, u, ir.TempOp(t1), ir.ImmOp(0))
	pb.Mov(t3, ir.TempOp(t2))
	pb.Ldi(t4, 4)
	pb.Op2(ir.Add, u, ir.TempOp(t3), ir.TempOp(u))
	pb.Jmp(b4)

	// B3: T1 ← .. ; T4 ← .. ; .. ← T1
	pb.StartBlock(b3)
	pb.Ldi(t1, 10)
	pb.Ldi(t4, 40)
	pb.Op2(ir.Add, u, ir.TempOp(t1), ir.ImmOp(2))
	pb.Jmp(b4)

	// B4: .. ← T4 ; T4 ← .. ; .. ← T4
	pb.StartBlock(b4)
	v := pb.IntTemp("v")
	pb.Op2(ir.Add, v, ir.TempOp(t4), ir.TempOp(u))
	pb.Ldi(t4, 7)
	pb.Op2(ir.Add, v, ir.TempOp(v), ir.TempOp(t4))
	pb.Ret(v)

	pb.P.Renumber()
	return pb.P, map[string]ir.Temp{"T1": t1, "T2": t2, "T3": t3, "T4": t4}
}

func TestFigure1Holes(t *testing.T) {
	p, temps := buildFigure1(t)
	lv := dataflow.Compute(p)
	lt := Compute(p, lv)

	t1 := lt.Intervals[temps["T1"]]
	// T1 is live in B1..B2's first use, dead through the rest of B2
	// (it is redefined on the B3 path), live again in B3: a hole.
	if len(t1.Segments) < 2 {
		t.Fatalf("T1 should have a lifetime hole, segments: %v", t1)
	}
	t3 := lt.Intervals[temps["T3"]]
	if len(t3.Segments) != 1 {
		t.Fatalf("T3 should be one contiguous segment: %v", t3)
	}
	// T3's lifetime must fit entirely inside T1's hole (the paper's
	// point: "temporary T3 fits entirely in T1's lifetime hole").
	holeStart := t1.Segments[0].End
	holeEnd := t1.Segments[1].Start
	if !(t3.Start() > holeStart && t3.End() < holeEnd) {
		t.Fatalf("T3 %v does not fit in T1's hole (%d,%d)", t3, holeStart, holeEnd)
	}
	if !t1.InHoleAt(t3.Start()) {
		t.Fatal("InHoleAt must report T1 in a hole at T3's start")
	}
	// T4 has two separate values in B2/B3 and a redefinition in B4: the
	// block boundary creates a hole in the linear view.
	t4 := lt.Intervals[temps["T4"]]
	if len(t4.Segments) < 2 {
		t.Fatalf("T4 should have a hole: %v", t4)
	}
}

func TestIntervalInvariants(t *testing.T) {
	p, _ := buildFigure1(t)
	lv := dataflow.Compute(p)
	lt := Compute(p, lv)
	for _, iv := range lt.Intervals {
		for i := 0; i < len(iv.Segments); i++ {
			if iv.Segments[i].Start > iv.Segments[i].End {
				t.Fatalf("inverted segment in %v", iv)
			}
			if i > 0 && iv.Segments[i].Start <= iv.Segments[i-1].End+1 {
				t.Fatalf("segments not disjoint/merged in %v", iv)
			}
		}
		// Every reference lies inside the lifetime and at a live point
		// (a def may start a segment; a use always lies within one).
		for _, ref := range iv.Refs {
			if ref.Pos < iv.Start() || ref.Pos > iv.End() {
				t.Fatalf("ref at %d outside lifetime %v", ref.Pos, iv)
			}
			if !iv.LiveAt(ref.Pos) {
				t.Fatalf("ref at %d not at a live position of %v", ref.Pos, iv)
			}
		}
		// Refs sorted.
		for i := 1; i < len(iv.Refs); i++ {
			if iv.Refs[i-1].Pos >= iv.Refs[i].Pos {
				t.Fatalf("refs unsorted in %v", iv)
			}
		}
	}
}

func TestNextRefQueries(t *testing.T) {
	p, temps := buildFigure1(t)
	lv := dataflow.Compute(p)
	lt := Compute(p, lv)
	t4 := lt.Intervals[temps["T4"]]
	first := t4.Refs[0]
	if got := t4.NextRef(0); got == nil || got.Pos != first.Pos {
		t.Fatal("NextRef(0) wrong")
	}
	if got := t4.NextRefAfter(first.Pos); got == nil || got.Pos <= first.Pos {
		t.Fatal("NextRefAfter must be strictly after")
	}
	last := t4.Refs[len(t4.Refs)-1]
	if t4.NextRefAfter(last.Pos) != nil {
		t.Fatal("NextRefAfter(last) must be nil")
	}
}

func TestRegBusy(t *testing.T) {
	mach := target.Alpha()
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main", target.ClassInt)
	x := pb.P.Params[0]
	r := pb.IntTemp("r")
	pb.Call("f", r, ir.TempOp(x))
	pb.Ret(r)
	pb.P.Renumber()
	rb := ComputeRegBusy(pb.P, mach)

	// Find the call position.
	var callPos int32 = -1
	for _, blk := range pb.P.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.Call {
				callPos = blk.Instrs[i].Pos
			}
		}
	}
	if callPos < 0 {
		t.Fatal("no call")
	}
	// Every caller-saved register is busy at the call.
	for _, reg := range mach.CallerSavedRegs(target.ClassInt) {
		if !rb.BusyAt(reg, callPos) {
			t.Fatalf("caller-saved %s not busy at call", mach.RegName(reg))
		}
	}
	// Callee-saved registers are never busy.
	for _, reg := range mach.CalleeSavedRegs(target.ClassInt) {
		for pos := int32(0); pos < int32(pb.P.NumInstrs()); pos++ {
			if rb.BusyAt(reg, pos) {
				t.Fatalf("callee-saved %s busy at %d", mach.RegName(reg), pos)
			}
		}
	}
	// The first int parameter register is busy from entry (position 0)
	// up to its use by the convention move.
	a0 := mach.ParamRegs(target.ClassInt)[0]
	if !rb.BusyAt(a0, 0) {
		t.Fatal("param register must be busy at entry")
	}
	// And free again somewhere between the param move and the arg setup.
	if rb.FreeThrough(a0, 0, callPos) {
		t.Fatal("param register cannot be free through the call")
	}
	if nb := rb.NextBusy(a0, callPos+1); nb <= callPos {
		t.Fatal("NextBusy went backwards")
	}
}

func TestLiveAtAndEmpty(t *testing.T) {
	iv := &Interval{Temp: 0, Segments: []Segment{{2, 5}, {9, 12}}}
	for pos, want := range map[int32]bool{1: false, 2: true, 5: true, 6: false, 8: false, 9: true, 12: true, 13: false} {
		if iv.LiveAt(pos) != want {
			t.Fatalf("LiveAt(%d) = %v", pos, !want)
		}
	}
	if !iv.InHoleAt(7) || iv.InHoleAt(3) || iv.InHoleAt(0) || iv.InHoleAt(14) {
		t.Fatal("InHoleAt wrong")
	}
	empty := &Interval{Temp: 1}
	if !empty.Empty() || empty.InHoleAt(3) {
		t.Fatal("empty interval misbehaves")
	}
}
