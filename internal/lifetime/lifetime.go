// Package lifetime computes temporary lifetimes, lifetime holes, and
// reference tables in the linear (layout) position space, plus the busy
// intervals of physical registers.
//
// These are the §2.1–§2.2 concepts of the paper: a temporary's lifetime
// runs from the first position where it is live in the static linear
// order to the last, and may contain holes — sub-intervals "during which
// no useful value is maintained". Liveness at each position is the
// CFG-accurate dataflow fact; only the ordering is linear. Registers are
// "bins" whose own availability is described the same way: a register is
// free exactly inside its lifetime holes, which are bounded by explicit
// physical-register references (calling-convention moves, call argument
// and return registers) and by call sites clobbering caller-saved
// registers (§2.5).
package lifetime

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/scratch"
	"repro/internal/target"
)

// Segment is a maximal run of positions [Start, End] (inclusive) where a
// temporary is live.
type Segment struct {
	Start, End int32
}

// Ref is one reference to a temporary.
type Ref struct {
	Pos   int32
	Use   bool // the instruction reads the temporary
	Def   bool // the instruction writes it
	Depth int32
}

// Interval is the lifetime of one temporary: its live segments (sorted,
// disjoint, maximal) and its references (sorted by position).
type Interval struct {
	Temp     ir.Temp
	Segments []Segment
	Refs     []Ref
}

// Empty reports whether the temporary is never live (dead or unused).
func (iv *Interval) Empty() bool { return len(iv.Segments) == 0 }

// Start returns the first live position.
func (iv *Interval) Start() int32 { return iv.Segments[0].Start }

// End returns the last live position.
func (iv *Interval) End() int32 { return iv.Segments[len(iv.Segments)-1].End }

// LiveAt reports whether the temporary is live at pos.
func (iv *Interval) LiveAt(pos int32) bool {
	i := sort.Search(len(iv.Segments), func(i int) bool { return iv.Segments[i].End >= pos })
	return i < len(iv.Segments) && iv.Segments[i].Start <= pos
}

// InHoleAt reports whether pos falls in a lifetime hole: inside the
// overall lifetime but between live segments. A temporary evicted while
// in a hole needs no spill store — its next reference must be a write
// (§2.3).
func (iv *Interval) InHoleAt(pos int32) bool {
	if iv.Empty() {
		return false
	}
	return pos > iv.Start() && pos < iv.End() && !iv.LiveAt(pos)
}

// NextRefIdx returns the index of the first reference at or after pos, or
// len(Refs).
func (iv *Interval) NextRefIdx(pos int32) int {
	return sort.Search(len(iv.Refs), func(i int) bool { return iv.Refs[i].Pos >= pos })
}

// NextRef returns the first reference at or after pos, or nil.
func (iv *Interval) NextRef(pos int32) *Ref {
	i := iv.NextRefIdx(pos)
	if i >= len(iv.Refs) {
		return nil
	}
	return &iv.Refs[i]
}

// NextRefAfter returns the first reference strictly after pos, or nil.
func (iv *Interval) NextRefAfter(pos int32) *Ref {
	i := sort.Search(len(iv.Refs), func(i int) bool { return iv.Refs[i].Pos > pos })
	if i >= len(iv.Refs) {
		return nil
	}
	return &iv.Refs[i]
}

// String renders the interval for diagnostics, e.g. "[3,9] hole(5,7)".
func (iv *Interval) String() string {
	if iv.Empty() {
		return "[]"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%d,%d]", iv.Start(), iv.End())
	for i := 0; i+1 < len(iv.Segments); i++ {
		fmt.Fprintf(&sb, " hole(%d,%d)", iv.Segments[i].End, iv.Segments[i+1].Start)
	}
	return sb.String()
}

// Table holds every temporary's interval, indexed by temp.
type Table struct {
	Intervals []*Interval
	// NumPos is the total number of positions (instructions).
	NumPos int
}

// Scratch holds the reusable working storage of lifetime analysis. The
// interval table a Compute returns is owned by the scratch: per-interval
// segment and reference arrays keep their capacity across calls, so
// repeated analyses on one allocator instance (the engine's batch hot
// path) build thousand-candidate tables without allocating. The zero
// value is ready to use; one scratch serves one goroutine, and a
// returned Table is valid until the next Compute on the same scratch.
type Scratch struct {
	tab        Table
	backing    []Interval
	openEnd    []int32
	ubuf, dbuf []ir.Temp
}

// Compute builds the lifetime table with a single reverse pass over the
// linearized procedure, as §2.1 describes. The procedure must be
// Renumber()ed and lv must be its liveness.
func Compute(p *ir.Proc, lv *dataflow.Liveness) *Table {
	return new(Scratch).Compute(p, lv)
}

// Compute builds the lifetime table into the scratch's pooled storage.
func (sc *Scratch) Compute(p *ir.Proc, lv *dataflow.Liveness) *Table {
	nt := p.NumTemps()
	tab := &sc.tab
	tab.NumPos = p.NumInstrs()
	// One backing array instead of one allocation per interval, reused
	// across calls: intervals beyond nt keep their (stale) contents so
	// their Segments/Refs capacity survives for the next large
	// procedure — deliberately trading bounded retention for
	// steady-state zero allocation, the opposite of the throwaway path.
	if cap(sc.backing) < nt {
		sc.backing = make([]Interval, nt)
	} else {
		sc.backing = sc.backing[:nt]
	}
	if cap(tab.Intervals) < nt {
		tab.Intervals = make([]*Interval, nt)
	} else {
		tab.Intervals = tab.Intervals[:nt]
	}
	for t := 0; t < nt; t++ {
		iv := &sc.backing[t]
		iv.Temp = ir.Temp(t)
		iv.Segments = iv.Segments[:0]
		iv.Refs = iv.Refs[:0]
		tab.Intervals[t] = iv
	}

	// openEnd[t] >= 0 means a live segment of t is open, ending (in
	// forward terms) at that position.
	openEnd := scratch.Grow(sc.openEnd, nt)
	sc.openEnd = openEnd
	for i := range openEnd {
		openEnd[i] = -1
	}
	// Segments are appended in reverse order and reversed at the end.
	ubuf, dbuf := sc.ubuf, sc.dbuf

	for bi := len(p.Blocks) - 1; bi >= 0; bi-- {
		b := p.Blocks[bi]
		if len(b.Instrs) == 0 {
			continue
		}
		blockStart := b.Instrs[0].Pos
		blockEnd := b.Instrs[len(b.Instrs)-1].Pos

		// Open a segment for everything live out of the block.
		lv.LiveOut[b.Order].ForEach(func(gi int) {
			t := lv.Globals[gi]
			openEnd[t] = blockEnd
		})

		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			pos := in.Pos
			// Defs close the segment (the value is born here).
			dbuf = in.DefTemps(dbuf[:0])
			for _, t := range dbuf {
				iv := tab.Intervals[t]
				if openEnd[t] >= 0 {
					appendSegRev(iv, Segment{pos, openEnd[t]})
					openEnd[t] = -1
				} else {
					// Dead def: the value is never read. Keep a
					// point segment so the allocator still has a
					// register to write into.
					appendSegRev(iv, Segment{pos, pos})
				}
			}
			// Uses open a segment ending here.
			ubuf = in.UseTemps(ubuf[:0])
			for _, t := range ubuf {
				if openEnd[t] < 0 {
					openEnd[t] = pos
				}
			}
		}

		// Close segments still open at block top. Whether the segment
		// continues into the linearly previous block is decided when
		// that block opens segments for its live-out set; adjacent
		// segments merge in appendSegRev.
		for t := 0; t < nt; t++ {
			if openEnd[t] >= 0 {
				appendSegRev(tab.Intervals[t], Segment{blockStart, openEnd[t]})
				openEnd[t] = -1
			}
		}
	}

	// Segments were collected in reverse; restore forward order.
	for _, iv := range tab.Intervals {
		for i, j := 0, len(iv.Segments)-1; i < j; i, j = i+1, j-1 {
			iv.Segments[i], iv.Segments[j] = iv.Segments[j], iv.Segments[i]
		}
	}

	// Reference table, forward.
	for _, b := range p.Blocks {
		depth := int32(b.Depth)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			pos := in.Pos
			ubuf = in.UseTemps(ubuf[:0])
			dbuf = in.DefTemps(dbuf[:0])
			for _, t := range ubuf {
				addRef(tab.Intervals[t], pos, true, false, depth)
			}
			for _, t := range dbuf {
				addRef(tab.Intervals[t], pos, false, true, depth)
			}
		}
	}
	sc.ubuf, sc.dbuf = ubuf, dbuf
	return tab
}

// appendSegRev appends a segment during the reverse sweep, merging with
// the previously appended (later-in-program) segment when they touch or
// overlap.
func appendSegRev(iv *Interval, s Segment) {
	if n := len(iv.Segments); n > 0 {
		prev := &iv.Segments[n-1] // later in program order
		if prev.Start <= s.End+1 {
			if s.Start < prev.Start {
				prev.Start = s.Start
			}
			if s.End > prev.End {
				prev.End = s.End
			}
			return
		}
	}
	iv.Segments = append(iv.Segments, s)
}

func addRef(iv *Interval, pos int32, use, def bool, depth int32) {
	if n := len(iv.Refs); n > 0 && iv.Refs[n-1].Pos == pos {
		iv.Refs[n-1].Use = iv.Refs[n-1].Use || use
		iv.Refs[n-1].Def = iv.Refs[n-1].Def || def
		return
	}
	iv.Refs = append(iv.Refs, Ref{Pos: pos, Use: use, Def: def, Depth: depth})
}

// RegBusy records, per physical register, the sorted positions where the
// register is unavailable to the allocator: explicit convention
// references and (for caller-saved registers) call sites. The complement
// of these intervals is the register's lifetime holes in the sense of
// §2.5.
type RegBusy struct {
	mach *target.Machine
	segs [][]Segment // indexed by Reg
}

// RegScratch holds the reusable working storage of ComputeRegBusy. As
// with Scratch, the RegBusy a Compute returns is owned by the scratch
// and valid until the next Compute on it; per-register segment arrays
// keep their capacity across calls. The zero value is ready to use.
type RegScratch struct {
	rb          RegBusy
	callerSaved []target.Reg
	openEnd     []int32
	ubuf, dbuf  []target.Reg
}

// ComputeRegBusy scans the procedure once and builds the busy table.
// Physical registers are block-local (validated builder invariant), so a
// per-block backward scan suffices; parameter registers in the entry
// block are busy from the block top.
func ComputeRegBusy(p *ir.Proc, mach *target.Machine) *RegBusy {
	return new(RegScratch).Compute(p, mach)
}

// Compute builds the busy table into the scratch's pooled storage.
func (sc *RegScratch) Compute(p *ir.Proc, mach *target.Machine) *RegBusy {
	rb := &sc.rb
	rb.mach = mach
	nr := mach.NumRegs()
	if cap(rb.segs) < nr {
		rb.segs = make([][]Segment, nr)
	} else {
		rb.segs = rb.segs[:nr]
	}
	for r := range rb.segs {
		rb.segs[r] = rb.segs[r][:0]
	}
	callerSaved := sc.callerSaved[:0]
	for c := target.Class(0); c < target.NumClasses; c++ {
		callerSaved = append(callerSaved, mach.CallerSavedRegs(c)...)
	}
	sc.callerSaved = callerSaved
	openEnd := scratch.Grow(sc.openEnd, nr)
	sc.openEnd = openEnd
	ubuf, dbuf := sc.ubuf, sc.dbuf

	for bi := len(p.Blocks) - 1; bi >= 0; bi-- {
		b := p.Blocks[bi]
		for i := range openEnd {
			openEnd[i] = -1
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			pos := in.Pos
			if in.Op == ir.Call {
				// A call clobbers every caller-saved register: each is
				// busy at exactly the call position, ending any hole a
				// temporary might be squatting in (§2.5: "When a
				// register's lifetime hole expires ... we evict").
				for _, r := range callerSaved {
					if openEnd[r] < 0 {
						rb.addRev(r, Segment{pos, pos})
					}
				}
			}
			dbuf = in.DefRegs(dbuf[:0])
			for _, r := range dbuf {
				if openEnd[r] >= 0 {
					rb.addRev(r, Segment{pos, openEnd[r]})
					openEnd[r] = -1
				} else {
					rb.addRev(r, Segment{pos, pos})
				}
			}
			ubuf = in.UseRegs(ubuf[:0])
			for _, r := range ubuf {
				if openEnd[r] < 0 {
					openEnd[r] = pos
				}
			}
		}
		for r := range openEnd {
			if openEnd[r] >= 0 {
				// Live into block top: only legal for parameter
				// registers in the entry block.
				rb.addRev(target.Reg(r), Segment{b.Instrs[0].Pos, openEnd[r]})
				openEnd[r] = -1
			}
		}
	}
	for r := range rb.segs {
		s := rb.segs[r]
		for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
			s[i], s[j] = s[j], s[i]
		}
	}
	sc.ubuf, sc.dbuf = ubuf, dbuf
	return rb
}

func (rb *RegBusy) addRev(r target.Reg, s Segment) {
	segs := rb.segs[r]
	if n := len(segs); n > 0 {
		prev := &segs[n-1]
		if prev.Start <= s.End+1 {
			if s.Start < prev.Start {
				prev.Start = s.Start
			}
			if s.End > prev.End {
				prev.End = s.End
			}
			return
		}
	}
	rb.segs[r] = append(segs, s)
}

// BusyAt reports whether r is unavailable at pos.
func (rb *RegBusy) BusyAt(r target.Reg, pos int32) bool {
	segs := rb.segs[r]
	i := sort.Search(len(segs), func(i int) bool { return segs[i].End >= pos })
	return i < len(segs) && segs[i].Start <= pos
}

// NextBusy returns the first busy position of r at or after pos, or a
// value greater than any position if r stays free.
func (rb *RegBusy) NextBusy(r target.Reg, pos int32) int32 {
	segs := rb.segs[r]
	i := sort.Search(len(segs), func(i int) bool { return segs[i].End >= pos })
	if i >= len(segs) {
		return int32(1) << 30
	}
	if segs[i].Start <= pos {
		return pos // busy right now
	}
	return segs[i].Start
}

// FreeThrough reports whether r has no busy position in [from, to].
func (rb *RegBusy) FreeThrough(r target.Reg, from, to int32) bool {
	return rb.NextBusy(r, from) > to
}
