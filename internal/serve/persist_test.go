package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestPersistTierSurvivesRestart allocates against a daemon with a
// disk-backed tier, "restarts" it (a fresh Server over the same
// directory, so the in-memory tier starts cold), and requires the
// repeat request to hit warm from disk.
func TestPersistTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{PersistDir: dir, PersistCostFactor: -1}
	text := workloadText(t, "tiny:6,4", 21)

	_, ts1 := newTestServer(t, cfg)
	var out AllocateResponse
	post(t, ts1.URL, AllocateRequest{Machine: "tiny:6,4", Program: text}, http.StatusOK, &out)
	if out.Results[0].Cached {
		t.Fatal("first allocation reported a cache hit")
	}
	m := getMetrics(t, ts1.URL)
	if m.Persist == nil {
		t.Fatal("no persist section in metrics despite PersistDir")
	}
	if m.Persist.Admission.Admitted != 1 {
		t.Fatalf("admitted = %d, want 1", m.Persist.Admission.Admitted)
	}
	ts1.Close()

	_, ts2 := newTestServer(t, cfg)
	post(t, ts2.URL, AllocateRequest{Machine: "tiny:6,4", Program: text}, http.StatusOK, &out)
	if !out.Results[0].Cached {
		t.Fatal("repeat request after restart was cold; persistent tier did not serve it")
	}
	m = getMetrics(t, ts2.URL)
	if m.Persist.Hits != 1 {
		t.Errorf("persist hits = %d, want 1", m.Persist.Hits)
	}
}

// TestPersistCostAwareAdmission checks that an impossible admission bar
// keeps cheap allocations out of the disk tier while the in-memory tier
// still serves them.
func TestPersistCostAwareAdmission(t *testing.T) {
	cfg := Config{PersistDir: t.TempDir(), PersistCostFactor: 1e12}
	_, ts := newTestServer(t, cfg)
	text := workloadText(t, "tiny:6,4", 22)

	var out AllocateResponse
	post(t, ts.URL, AllocateRequest{Machine: "tiny:6,4", Program: text}, http.StatusOK, &out)
	m := getMetrics(t, ts.URL)
	if m.Persist.Admission.RejectedCost != 1 || m.Persist.Admission.Admitted != 0 {
		t.Errorf("admission = %+v, want 1 cost rejection", m.Persist.Admission)
	}
	// The memory tier still hits.
	post(t, ts.URL, AllocateRequest{Machine: "tiny:6,4", Program: text}, http.StatusOK, &out)
	if !out.Results[0].Cached {
		t.Error("memory tier missed a repeat the disk tier declined")
	}
}

func TestPersistRequiresCaching(t *testing.T) {
	if _, err := New(Config{CacheEntries: -1, PersistDir: t.TempDir()}); err == nil {
		t.Fatal("New accepted PersistDir with caching disabled")
	}
}

// TestCacheExportSeed moves a hot entry between two daemons through the
// peering endpoints and requires the receiver to serve it warm.
func TestCacheExportSeed(t *testing.T) {
	_, src := newTestServer(t, Config{})
	_, dst := newTestServer(t, Config{})
	text := workloadText(t, "tiny:6,4", 23)

	var out AllocateResponse
	post(t, src.URL, AllocateRequest{Machine: "tiny:6,4", Program: text}, http.StatusOK, &out)

	resp, err := http.Get(src.URL + "/cache/export?n=8")
	if err != nil {
		t.Fatal(err)
	}
	var exp CacheExportResponse
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(exp.Entries) != 1 {
		t.Fatalf("exported %d entries, want 1", len(exp.Entries))
	}

	body, _ := json.Marshal(&CacheSeedRequest{Entries: exp.Entries})
	sresp, err := http.Post(dst.URL+"/cache/seed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var seeded CacheSeedResponse
	if err := json.NewDecoder(sresp.Body).Decode(&seeded); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK || seeded.Seeded != 1 || seeded.Rejected != 0 {
		t.Fatalf("seed: status %d, %+v; want 200 with 1 seeded", sresp.StatusCode, seeded)
	}

	post(t, dst.URL, AllocateRequest{Machine: "tiny:6,4", Program: text}, http.StatusOK, &out)
	if !out.Results[0].Cached {
		t.Error("seeded entry did not serve the repeat request warm")
	}
	if m := getMetrics(t, dst.URL); m.Peering.Seeded != 1 {
		t.Errorf("peering.seeded = %d, want 1", m.Peering.Seeded)
	}
	if m := getMetrics(t, src.URL); m.Peering.Exported != 1 {
		t.Errorf("peering.exported = %d, want 1", m.Peering.Exported)
	}
}

// TestCacheSeedRejectsGarbage checks that undecodable entries are
// counted, not installed, and that a cacheless daemon refuses seeding.
func TestCacheSeedRejectsGarbage(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(&CacheSeedRequest{Entries: []json.RawMessage{json.RawMessage(`{"key":""}`)}})
	resp, err := http.Post(ts.URL+"/cache/seed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var seeded CacheSeedResponse
	if err := json.NewDecoder(resp.Body).Decode(&seeded); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if seeded.Rejected != 1 || seeded.Seeded != 0 {
		t.Errorf("seed of garbage = %+v, want 1 rejection", seeded)
	}

	_, nocache := newTestServer(t, Config{CacheEntries: -1})
	resp, err = http.Post(nocache.URL+"/cache/seed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("seed to cacheless daemon: status %d, want 409", resp.StatusCode)
	}
}
