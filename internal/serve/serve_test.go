package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/target"
)

// newTestServer builds a Server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Verify = true // tests always verify
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one AllocateRequest and decodes the response into out (a
// pointer) when the status matches wantCode.
func post(t *testing.T, url string, req AllocateRequest, wantCode int, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/allocate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status %d, want %d (error: %s)", resp.StatusCode, wantCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func getMetrics(t *testing.T, url string) Metrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func phaseNs(m Metrics) int64 {
	var total int64
	for _, p := range m.Phases {
		total += p.Ns
	}
	return total
}

// workloadText returns one deterministic program in wire form.
func workloadText(t *testing.T, machine string, seed int64) string {
	t.Helper()
	mach, err := target.Parse(machine)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := experiments.Workload(mach, []string{"default"}, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	return jobs[0].Text
}

func TestAllocateRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	text := workloadText(t, "tiny:6,4", 3)

	var out AllocateResponse
	post(t, ts.URL, AllocateRequest{Machine: "tiny:6,4", Program: text}, http.StatusOK, &out)
	if len(out.Results) != 1 {
		t.Fatalf("%d results, want 1", len(out.Results))
	}
	res := out.Results[0]
	if res.Cached {
		t.Error("first request reported a cache hit")
	}
	if res.Report == nil || res.Report.Totals.Candidates == 0 {
		t.Error("missing allocation report")
	}
	if !strings.HasPrefix(res.Key, "sha256:") {
		t.Errorf("key %q is not a content address", res.Key)
	}
	// The response program must be well-formed allocated IR: it parses,
	// and contains no temporaries (every operand is a register or slot).
	mach, err := target.Parse("tiny:6,4")
	if err != nil {
		t.Fatal(err)
	}
	allocated, err := ir.ParseProgramString(res.Program, mach)
	if err != nil {
		t.Fatalf("response program does not parse: %v", err)
	}
	if err := ir.ValidateAllocated(allocated.Proc("main"), mach); err != nil {
		t.Errorf("response program is not validly allocated: %v", err)
	}
}

// TestCacheHitLoadTest is the end-to-end service load test: a repeated
// program must be served from the cache under concurrent batched
// requests with ZERO allocator phase work (the cumulative phase-time
// metric does not move on the hit path), and cache entries must be
// isolated from response-side mutation by construction (each response
// is an independent serialization).
func TestCacheHitLoadTest(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	text := workloadText(t, "x86-8", 17)
	req := AllocateRequest{Machine: "x86-8", Program: text}

	// Seed the cache (miss path).
	var first AllocateResponse
	post(t, ts.URL, req, http.StatusOK, &first)
	m1 := getMetrics(t, ts.URL)
	if m1.Programs != 1 || m1.CachedPrograms != 0 {
		t.Fatalf("after miss: programs=%d cached=%d", m1.Programs, m1.CachedPrograms)
	}
	missPhases := phaseNs(m1)
	if missPhases == 0 {
		t.Fatal("miss path recorded no phase work")
	}

	// Hammer the same program concurrently, batched two programs per
	// request.
	const clients, rounds = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			breq := AllocateRequest{Machine: "x86-8", Programs: []string{text, text}}
			body, _ := json.Marshal(&breq)
			for r := 0; r < rounds; r++ {
				resp, err := http.Post(ts.URL+"/allocate", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out AllocateResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				for _, res := range out.Results {
					if !res.Cached {
						errs <- fmt.Errorf("repeated program missed the cache")
						return
					}
					if res.Program != first.Results[0].Program {
						errs <- fmt.Errorf("cached result diverged from the original allocation")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m2 := getMetrics(t, ts.URL)
	// The headline assertion: the hit path performed zero allocator
	// phase work — the cumulative phase counters are byte-for-byte
	// where the single miss left them.
	if got := phaseNs(m2); got != missPhases {
		t.Errorf("phase work grew on the cache-hit path: %d ns -> %d ns", missPhases, got)
	}
	wantPrograms := uint64(1 + clients*rounds*2)
	if m2.Programs != wantPrograms || m2.CachedPrograms != wantPrograms-1 {
		t.Errorf("programs=%d cached=%d, want %d/%d", m2.Programs, m2.CachedPrograms, wantPrograms, wantPrograms-1)
	}
	if m2.Cache == nil || m2.Cache.Hits == 0 || m2.Cache.HitRate == 0 {
		t.Error("cache metrics missing or zero after hits")
	}
	if s.Cache().Stats().Entries != 1 {
		t.Errorf("cache entries = %d, want 1", s.Cache().Stats().Entries)
	}
}

func TestMixedWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	mach, err := target.Parse("risc-16")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := experiments.Workload(mach, []string{"call-heavy", "loop-nest", "straightline"}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two passes over the workload: first misses, second hits.
	for pass := 0; pass < 2; pass++ {
		var wg sync.WaitGroup
		for _, job := range jobs {
			wg.Add(1)
			go func(text string) {
				defer wg.Done()
				var out AllocateResponse
				post(t, ts.URL, AllocateRequest{Machine: "risc-16", Program: text}, http.StatusOK, &out)
			}(job.Text)
		}
		wg.Wait()
	}
	m := getMetrics(t, ts.URL)
	n := uint64(len(jobs))
	if m.Programs != 2*n {
		t.Errorf("programs = %d, want %d", m.Programs, 2*n)
	}
	if m.CachedPrograms != n {
		t.Errorf("cached programs = %d, want %d (second pass should hit)", m.CachedPrograms, n)
	}
}

func TestBackpressure429(t *testing.T) {
	// One worker, no queue: a second concurrent request must bounce
	// with 429 + Retry-After.
	s, err := New(Config{Workers: 1, QueueDepth: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Fill the worker and the queue slot by occupying admission slots
	// directly (deterministic, no timing games).
	s.slots <- struct{}{}
	s.slots <- struct{}{}
	defer func() { <-s.slots; <-s.slots }()

	text := workloadText(t, "tiny:6,4", 5)
	body, _ := json.Marshal(&AllocateRequest{Machine: "tiny:6,4", Program: text})
	resp, err := http.Post(ts.URL+"/allocate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	m := getMetrics(t, ts.URL)
	if m.Requests.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", m.Requests.Rejected)
	}
	if m.Queue.Capacity != 1 || m.Queue.Workers != 1 {
		t.Errorf("queue metrics = %+v", m.Queue)
	}
}

func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	text := workloadText(t, "alpha", 9)

	// In-flight traffic while we shut down: every request must either
	// complete (200) or be refused as draining (503) — never dropped.
	var wg sync.WaitGroup
	codes := make(chan int, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(&AllocateRequest{Machine: "alpha", Program: text})
			resp, err := http.Post(ts.URL+"/allocate", "application/json", bytes.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			defer resp.Body.Close()
			var sink json.RawMessage
			_ = json.NewDecoder(resp.Body).Decode(&sink)
			codes <- resp.StatusCode
		}()
	}
	time.Sleep(time.Millisecond) // let a few requests admit
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Errorf("request finished with %d during drain, want 200 or 503", code)
		}
	}

	// After drain: healthz reports draining, allocations are refused.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	post(t, ts.URL, AllocateRequest{Machine: "alpha", Program: text}, http.StatusServiceUnavailable, nil)
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	text := workloadText(t, "tiny:6,4", 1)
	cases := []struct {
		name string
		req  AllocateRequest
	}{
		{"empty", AllocateRequest{Machine: "tiny:6,4"}},
		{"unknown machine", AllocateRequest{Machine: "no-such-machine", Program: text}},
		{"unknown algorithm", AllocateRequest{Machine: "tiny:6,4", Algorithm: "magic", Program: text}},
		{"unparsable program", AllocateRequest{Machine: "tiny:6,4", Program: "this is not IR"}},
		{"both program and programs", AllocateRequest{Machine: "tiny:6,4", Program: text, Programs: []string{text}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			post(t, ts.URL, tc.req, http.StatusBadRequest, nil)
		})
	}
	// Method checks.
	resp, err := http.Get(ts.URL + "/allocate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /allocate: %d, want 405", resp.StatusCode)
	}
}

func TestAlgorithmRestriction(t *testing.T) {
	_, ts := newTestServer(t, Config{Algorithms: []string{"binpack"}})
	text := workloadText(t, "tiny:6,4", 2)
	post(t, ts.URL, AllocateRequest{Machine: "tiny:6,4", Algorithm: "coloring", Program: text}, http.StatusBadRequest, nil)
	var out AllocateResponse
	post(t, ts.URL, AllocateRequest{Machine: "tiny:6,4", Algorithm: "binpack", Program: text}, http.StatusOK, &out)

	if _, err := New(Config{Algorithms: []string{"bogus"}}); err == nil {
		t.Error("New accepted an unknown algorithm restriction")
	}
}

func TestEngineTableBounded(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxEngines: 2})
	text := workloadText(t, "tiny:6,4", 4)
	// Sweep more machine shapes than the bound; the table must not
	// grow past it (a client cycling specs cannot OOM the daemon).
	for _, machine := range []string{"tiny:6,4", "tiny:7,4", "tiny:8,4", "tiny:9,4"} {
		mach, err := target.Parse(machine)
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := experiments.Workload(mach, []string{"straightline"}, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		var out AllocateResponse
		post(t, ts.URL, AllocateRequest{Machine: machine, Program: jobs[0].Text}, http.StatusOK, &out)
	}
	s.mu.Lock()
	n := len(s.engines)
	s.mu.Unlock()
	if n > 2 {
		t.Errorf("engine table grew to %d entries, bound is 2", n)
	}
	// Alias spellings of one machine share an engine: "tiny" the
	// preset and "tiny:6,4" resolve to the same Spec.
	s2, ts2 := newTestServer(t, Config{})
	for _, machine := range []string{"tiny:6,4", "tiny"} {
		var out AllocateResponse
		post(t, ts2.URL, AllocateRequest{Machine: machine, Program: text}, http.StatusOK, &out)
	}
	s2.mu.Lock()
	n2 := len(s2.engines)
	s2.mu.Unlock()
	if n2 != 1 {
		t.Errorf("alias machine spellings built %d engines, want 1 (keyed by canonical Spec)", n2)
	}
}

func TestConfigEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc configDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Machines) == 0 || len(doc.Algorithms) == 0 {
		t.Errorf("config = %+v, want populated machines and algorithms", doc)
	}
	if !doc.Verify {
		t.Error("config should report verification on")
	}
}
