package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/irbin"
	"repro/internal/target"
)

// postBinary sends concatenated irbin frames to /allocate under the
// binary content type.
func postBinary(t *testing.T, url string, query string, frames []byte, wantCode int, out any) {
	t.Helper()
	resp, err := http.Post(url+"/allocate?"+query, ContentTypeBinaryIR, bytes.NewReader(frames))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status %d, want %d (error: %s)", resp.StatusCode, wantCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAllocateBinaryConformance proves the binary arm of /allocate is
// observationally identical to the text arm: the same program sent both
// ways yields the same content-address key, the same allocated program
// text, and the same report shape.
func TestAllocateBinaryConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const machine = "tiny:6,4"
	text := workloadText(t, machine, 3)

	var fromText AllocateResponse
	post(t, ts.URL, AllocateRequest{Machine: machine, Program: text}, http.StatusOK, &fromText)

	mach0, err := target.Parse(machine)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.ParseProgramString(text, mach0)
	if err != nil {
		t.Fatal(err)
	}
	var fromBin AllocateResponse
	postBinary(t, ts.URL, "machine="+machine, irbin.EncodeProgram(prog), http.StatusOK, &fromBin)

	if len(fromBin.Results) != 1 {
		t.Fatalf("%d results, want 1", len(fromBin.Results))
	}
	tr, br := fromText.Results[0], fromBin.Results[0]
	if br.Key != tr.Key {
		t.Errorf("binary key %s != text key %s: the two front ends hit different cache lines", br.Key, tr.Key)
	}
	if br.Program != tr.Program {
		t.Errorf("binary and text arms allocated differently:\ntext:\n%s\nbinary:\n%s", tr.Program, br.Program)
	}
	if !br.Cached {
		t.Error("binary request after identical text request missed the cache")
	}
	if br.Report == nil {
		t.Error("binary response missing report")
	}

	// Allocated output must still be valid, independently of the duel.
	mach, err := target.Parse(machine)
	if err != nil {
		t.Fatal(err)
	}
	allocated, err := ir.ParseProgramString(br.Program, mach)
	if err != nil {
		t.Fatalf("binary response program does not parse: %v", err)
	}
	if err := ir.ValidateAllocated(allocated.Proc("main"), mach); err != nil {
		t.Errorf("binary response not validly allocated: %v", err)
	}
}

func TestAllocateBinaryBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const machine = "tiny:8,4"
	mach, err := target.Parse(machine)
	if err != nil {
		t.Fatal(err)
	}
	var frames []byte
	var want []string
	for seed := int64(1); seed <= 3; seed++ {
		text := workloadText(t, machine, seed)
		prog, err := ir.ParseProgramString(text, mach)
		if err != nil {
			t.Fatal(err)
		}
		frames = irbin.AppendProgram(frames, prog)
		want = append(want, text)
	}
	var out AllocateResponse
	postBinary(t, ts.URL, "machine="+machine+"&priority=batch", frames, http.StatusOK, &out)
	if len(out.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(out.Results), len(want))
	}
	seen := map[string]bool{}
	for i, res := range out.Results {
		if !strings.HasPrefix(res.Key, "sha256:") {
			t.Errorf("result %d key %q is not a content address", i, res.Key)
		}
		if seen[res.Key] {
			t.Errorf("result %d repeats key %s", i, res.Key)
		}
		seen[res.Key] = true
	}
}

func TestAllocateBinaryRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mach, err := target.Parse("tiny:6,4")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.ParseProgramString(workloadText(t, "tiny:6,4", 1), mach)
	if err != nil {
		t.Fatal(err)
	}
	valid := irbin.EncodeProgram(prog)

	// Empty body.
	postBinary(t, ts.URL, "machine=tiny:6,4", nil, http.StatusBadRequest, nil)
	// Garbage bytes.
	postBinary(t, ts.URL, "machine=tiny:6,4", []byte("garbage"), http.StatusBadRequest, nil)
	// Truncated frame.
	postBinary(t, ts.URL, "machine=tiny:6,4", valid[:len(valid)-4], http.StatusBadRequest, nil)
	// Trailing garbage after a valid frame.
	postBinary(t, ts.URL, "machine=tiny:6,4", append(bytes.Clone(valid), 'x'), http.StatusBadRequest, nil)
	// Missing machine.
	postBinary(t, ts.URL, "", valid, http.StatusBadRequest, nil)
	// Bad priority.
	postBinary(t, ts.URL, "machine=tiny:6,4&priority=bogus", valid, http.StatusBadRequest, nil)
}
