package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want Priority
		ok   bool
	}{
		{"", PriorityInteractive, true},
		{"interactive", PriorityInteractive, true},
		{"batch", PriorityBatch, true},
		{"urgent", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePriority(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParsePriority(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestBadPriorityRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	text := workloadText(t, "tiny:6,4", 3)
	post(t, ts.URL, AllocateRequest{Machine: "tiny:6,4", Program: text, Priority: "urgent"}, http.StatusBadRequest, nil)
}

// waitWaiting polls the scheduler until the given class has n waiters.
func waitWaiting(t *testing.T, p *prioSched, pr Priority, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, waiting := p.snapshot()
		if waiting[pr] == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("class %s never reached %d waiters", pr, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPrioSchedInteractiveFirst checks preemption in the admission
// queue: with the single worker busy and a batch request already
// waiting, a later interactive request still runs first.
func TestPrioSchedInteractiveFirst(t *testing.T) {
	p := newPrioSched(1)
	if err := p.acquire(context.Background(), PriorityInteractive); err != nil {
		t.Fatal(err)
	}

	order := make(chan Priority, 2)
	run := func(pr Priority) {
		if err := p.acquire(context.Background(), pr); err != nil {
			t.Errorf("acquire(%s): %v", pr, err)
			return
		}
		order <- pr
		p.release()
	}
	go run(PriorityBatch)
	waitWaiting(t, p, PriorityBatch, 1)
	go run(PriorityInteractive)
	waitWaiting(t, p, PriorityInteractive, 1)

	p.release() // free the worker: the interactive waiter must win
	if first := <-order; first != PriorityInteractive {
		t.Fatalf("first scheduled class = %s, want interactive", first)
	}
	if second := <-order; second != PriorityBatch {
		t.Fatalf("second scheduled class = %s, want batch", second)
	}
	if running, _ := p.snapshot(); running != 0 {
		t.Errorf("running = %d after all released, want 0", running)
	}
}

// TestPrioSchedCancelWhileQueued checks that a waiter that gives up
// neither leaks a slot nor loses one granted in the race with cancel.
func TestPrioSchedCancelWhileQueued(t *testing.T) {
	p := newPrioSched(1)
	if err := p.acquire(context.Background(), PriorityInteractive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.acquire(ctx, PriorityBatch) }()
	waitWaiting(t, p, PriorityBatch, 1)
	cancel()
	if err := <-errc; err == nil {
		// The race went grant-first: acquire succeeded despite cancel,
		// and the caller owns a slot it must release.
		p.release()
	}
	p.release()
	// Both slots are back: two fresh acquires must succeed immediately.
	if err := p.acquire(context.Background(), PriorityBatch); err != nil {
		t.Fatal(err)
	}
	if running, waiting := p.snapshot(); running != 1 || waiting[PriorityBatch] != 0 {
		t.Errorf("running=%d waiting=%v, want 1 running, none waiting", running, waiting)
	}
}

// TestQueueMetricsSplit checks the per-class queue depths in /metrics.
func TestQueueMetricsSplit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	text := workloadText(t, "tiny:6,4", 9)

	// Park the lone worker.
	if err := s.sched.acquire(context.Background(), PriorityInteractive); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(&AllocateRequest{Machine: "tiny:6,4", Program: text, Priority: "batch"})
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/allocate", "application/json", bytes.NewReader(body))
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitWaiting(t, s.sched, PriorityBatch, 1)
	m := getMetrics(t, ts.URL)
	if m.Queue.Batch != 1 || m.Queue.Interactive != 0 || m.Queue.Depth != 1 {
		t.Errorf("queue metrics = %+v, want 1 batch waiter", m.Queue)
	}
	s.sched.release() // let the parked request run
	<-done
}
