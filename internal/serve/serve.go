// Package serve implements the allocation service behind cmd/lsra-served:
// a long-lived HTTP/JSON front end over the regalloc Engine, built for
// the paper's thesis that allocation speed is a product feature. The
// daemon amortizes what batch compilation cannot — pooled allocator
// scratch arenas stay warm across requests, and a sharded
// content-addressed result cache (regalloc.ResultCache) short-circuits
// repeated programs entirely — while bounded admission control sheds
// load explicitly (429 + Retry-After) instead of queueing without limit.
//
// Endpoints:
//
//	POST /allocate      allocate one program or a batch (AllocateRequest)
//	GET  /metrics       service counters, queue depth, cache and phase stats
//	GET  /healthz       liveness; reports "draining" during shutdown
//	GET  /config        accepted machines, algorithms and limits
//	GET  /cache/export  hottest cache entries in wire form (replication)
//	POST /cache/seed    install wire-form entries into the cache
//
// Requests carry a priority class ("interactive", the default, or
// "batch"): when every worker is busy, waiting interactive requests are
// always scheduled before waiting batch requests, so latency-sensitive
// traffic preempts bulk traffic in the admission queue. With
// Config.PersistDir set, the result cache gains a disk-backed
// persistent tier (internal/diskcache) behind the in-memory one: warm
// entries survive a restart, and cost-aware admission keeps cheap
// allocations from paying the serialization tax. The export/seed pair
// is what the cluster layer (internal/cluster) uses to replicate hot
// entries between nodes on join, leave and on a timer.
//
// The server is an http.Handler, so it embeds in tests (httptest) and
// custom daemons alike; ListenAndServe and Shutdown add the production
// lifecycle, including graceful drain on SIGTERM (cmd/lsra-served wires
// the signal).
package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	regalloc "repro"
	"repro/internal/alloc"
	"repro/internal/diskcache"
	"repro/internal/ir"
	"repro/internal/irbin"
	"repro/internal/target"
)

// Config tunes a Server. The zero value serves every registered
// algorithm on every machine preset with a default-sized cache and
// admission queue.
type Config struct {
	// Algorithms restricts the allocators served; empty means every
	// registered one.
	Algorithms []string
	// CacheEntries bounds the content-addressed result cache: 0 selects
	// regalloc.DefaultCacheEntries, negative disables caching.
	CacheEntries int
	// CacheShards is the cache's lock-shard count (0 = default).
	CacheShards int
	// Workers bounds concurrently executing allocation requests
	// (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting behind the workers; a full
	// queue rejects with 429 + Retry-After (0 = 4 × Workers).
	QueueDepth int
	// Parallelism is each engine's per-program procedure fan-out. The
	// default 1 keeps requests the unit of parallelism, which maximizes
	// throughput under concurrent load.
	Parallelism int
	// Verify runs the symbolic allocation verifier on every result.
	Verify bool
	// PhaseProfile samples per-phase heap allocations (see
	// regalloc.WithPhaseProfile).
	PhaseProfile bool
	// MaxRequestBytes bounds a request body (0 = 8 MiB).
	MaxRequestBytes int64
	// MaxEngines bounds the lazily built engine table (one engine per
	// distinct machine × algorithm, keyed by the machine's canonical
	// Spec). Least-recently-used engines are dropped beyond the bound —
	// only their warm scratch arenas are lost (0 = 64).
	MaxEngines int
	// PersistDir, when set, backs the result cache with a disk tier in
	// this directory (internal/diskcache): entries survive restarts and
	// are admitted cost-aware. Requires caching (CacheEntries >= 0).
	PersistDir string
	// PersistEntries bounds the disk tier (0 = diskcache default).
	PersistEntries int
	// PersistCostFactor is the disk tier's admission bar (0 = diskcache
	// default; negative admits everything).
	PersistCostFactor float64
	// PersistBinary selects the disk tier's binary entry encoding
	// (programs stored as internal/irbin frames instead of printed
	// text). Reads sniff the format per entry, so this is safe to flip
	// on an existing directory.
	PersistBinary bool
}

// Priority is a request's scheduling class.
type Priority uint8

const (
	// PriorityInteractive is the default class: latency-sensitive
	// traffic, always scheduled before waiting batch work.
	PriorityInteractive Priority = iota
	// PriorityBatch marks bulk traffic that yields to interactive
	// requests whenever workers are contended.
	PriorityBatch

	numPriorities
)

// String returns the wire spelling of the class.
func (p Priority) String() string {
	if p == PriorityBatch {
		return "batch"
	}
	return "interactive"
}

// ParsePriority reads a request's priority field; empty selects
// interactive.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "interactive":
		return PriorityInteractive, nil
	case "batch":
		return PriorityBatch, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want interactive or batch)", s)
}

// AllocateRequest is the POST /allocate body. Exactly one of Program or
// Programs must be set; Programs allocates a batch under a single
// admission slot.
type AllocateRequest struct {
	// Machine is a machine spec: a preset name or "tiny:<ints>,<floats>".
	Machine string `json:"machine"`
	// Algorithm is a registry name; empty selects "binpack".
	Algorithm string `json:"algorithm,omitempty"`
	// Program is one program in the textual IR form (ir.ParseProgram).
	Program string `json:"program,omitempty"`
	// Programs is a batch of programs allocated in order.
	Programs []string `json:"programs,omitempty"`
	// Priority is the scheduling class: "interactive" (default) or
	// "batch". Interactive requests preempt batch in the worker queue.
	Priority string `json:"priority,omitempty"`
}

// AllocatedProgram is one program's slice of an AllocateResponse.
type AllocatedProgram struct {
	// Key is the content address of the request (program + machine +
	// configuration).
	Key string `json:"key"`
	// Cached reports whether the result came from the cache without any
	// allocator phase running.
	Cached bool `json:"cached"`
	// Program is the allocated program, printed with machine register
	// names (re-parseable).
	Program string `json:"program"`
	// Report is the engine's allocation report (the original
	// allocation's report on a cache hit).
	Report *regalloc.Report `json:"report"`
}

// AllocateResponse is the POST /allocate reply.
type AllocateResponse struct {
	Machine   string             `json:"machine"`
	Algorithm string             `json:"algorithm"`
	Results   []AllocatedProgram `json:"results"`
	// ElapsedNs is the server-side wall time of the whole request,
	// queueing included.
	ElapsedNs int64 `json:"elapsed_ns"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Metrics is the GET /metrics document.
type Metrics struct {
	UptimeNs int64          `json:"uptime_ns"`
	Requests RequestMetrics `json:"requests"`
	Queue    QueueMetrics   `json:"queue"`
	// Cache is present when caching is enabled (the in-memory tier when
	// a persistent tier is also configured).
	Cache *CacheMetrics `json:"cache,omitempty"`
	// Persist is present when the disk-backed tier is configured: its
	// own hit/miss/entry counters plus cost-aware admission stats.
	Persist *PersistMetrics `json:"persist,omitempty"`
	// Peering counts cache entries moved through /cache/export and
	// /cache/seed (cluster replication traffic).
	Peering PeeringMetrics `json:"peering"`
	// Programs counts allocated programs (cache hits included);
	// CachedPrograms the subset served from the cache; Procs the
	// procedures allocated by actual pipeline runs.
	Programs       uint64 `json:"programs"`
	CachedPrograms uint64 `json:"cached_programs"`
	Procs          uint64 `json:"procs"`
	// Phases aggregates per-phase pipeline cost across every non-cached
	// allocation since startup. Cache hits contribute nothing here —
	// that is the hit path's whole point.
	Phases []regalloc.PhaseStat `json:"phases,omitempty"`
	// AllocWallNs sums the engine-reported wall time of non-cached
	// allocations.
	AllocWallNs int64 `json:"alloc_wall_ns"`
	// Heap reports the process's cumulative heap-allocation counters
	// (runtime/metrics).
	Heap HeapMetrics `json:"heap"`
}

// RequestMetrics counts /allocate request outcomes (the other
// endpoints are unmetered reads). Total = OK + Errors + Rejected +
// Draining + Cancelled.
type RequestMetrics struct {
	Total     uint64 `json:"total"`
	OK        uint64 `json:"ok"`
	Errors    uint64 `json:"errors"`
	Rejected  uint64 `json:"rejected"`  // 429: admission queue full
	Draining  uint64 `json:"draining"`  // 503: received during drain
	Cancelled uint64 `json:"cancelled"` // 499: client went away first
}

// statusClientClosedRequest is nginx's conventional status for a
// request its client abandoned; no client sees it, but it keeps access
// logs and tests honest.
const statusClientClosedRequest = 499

// QueueMetrics describes the admission state at sampling time.
type QueueMetrics struct {
	// Depth is the number of admitted requests waiting for a worker;
	// Executing the number currently allocating.
	Depth     int `json:"depth"`
	Executing int `json:"executing"`
	// Interactive and Batch split Depth by priority class; interactive
	// waiters are always scheduled first.
	Interactive int `json:"interactive"`
	Batch       int `json:"batch"`
	// Capacity is Depth's bound, Workers Executing's.
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
}

// CacheMetrics is the cache section of Metrics.
type CacheMetrics struct {
	regalloc.CacheStats
	HitRate float64 `json:"hit_rate"`
}

// PersistMetrics is the disk-tier section of Metrics.
type PersistMetrics struct {
	regalloc.CacheStats
	HitRate   float64                  `json:"hit_rate"`
	Admission diskcache.AdmissionStats `json:"admission"`
}

// PeeringMetrics counts replication traffic through the cache
// export/seed endpoints.
type PeeringMetrics struct {
	// Exported counts entries served by /cache/export; Seeded entries
	// installed by /cache/seed; SeedRejected seed payloads that failed
	// to decode.
	Exported     uint64 `json:"exported"`
	Seeded       uint64 `json:"seeded"`
	SeedRejected uint64 `json:"seed_rejected"`
}

// HeapMetrics is the process heap-allocation section of Metrics.
type HeapMetrics struct {
	Allocs uint64 `json:"allocs"`
	Bytes  uint64 `json:"bytes"`
}

// engineKey identifies one lazily built engine. The machine component
// is the canonical Spec, not the raw request string, so spec aliases
// ("tiny:6,4" under any name resolving to the same machine) share one
// engine.
type engineKey struct {
	machineSpec string
	algorithm   string
}

// engineEntry is one engine-table LRU node.
type engineEntry struct {
	key engineKey
	eng *regalloc.Engine
}

// Server is the allocation service. Construct with New; it serves HTTP
// as an http.Handler and drains gracefully through Shutdown.
type Server struct {
	cfg   Config
	cache regalloc.ResultCache
	disk  *diskcache.Cache // nil unless PersistDir is set
	mux   *http.ServeMux
	start time.Time

	mu        sync.Mutex
	engines   map[engineKey]*list.Element
	engineLRU *list.List // front = most recently used

	slots chan struct{} // admission: executing + queued
	sched *prioSched    // executing, priority-ordered handoff

	// drainMu orders admission against Shutdown: draining flips and
	// wg.Add both happen under it, so wg.Wait (called after the flip)
	// can never race an Add from a request it did not see.
	drainMu  sync.Mutex
	draining bool
	wg       sync.WaitGroup

	httpMu  sync.Mutex
	httpSrv *http.Server

	reqTotal, reqOK, reqErrors     atomic.Uint64
	reqRejected, reqDraining       atomic.Uint64
	reqCancelled                   atomic.Uint64
	programs, cachedPrograms       atomic.Uint64
	procs                          atomic.Uint64
	allocWallNs                    atomic.Int64
	exported, seeded, seedRejected atomic.Uint64

	phaseMu sync.Mutex
	phases  alloc.PhaseTimes
}

// New builds a Server from cfg, normalizing zero fields to their
// documented defaults.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 8 << 20
	}
	for _, a := range cfg.Algorithms {
		ok := false
		for _, have := range regalloc.Algorithms() {
			if a == have {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("serve: unknown algorithm %q (have %v)", a, regalloc.Algorithms())
		}
	}
	if cfg.MaxEngines <= 0 {
		cfg.MaxEngines = 64
	}
	s := &Server{
		cfg:       cfg,
		engines:   make(map[engineKey]*list.Element),
		engineLRU: list.New(),
		slots:     make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		sched:     newPrioSched(cfg.Workers),
		start:     time.Now(),
	}
	if cfg.CacheEntries >= 0 {
		mem := regalloc.NewShardedCache(cfg.CacheEntries, cfg.CacheShards)
		if cfg.PersistDir != "" {
			disk, err := diskcache.Open(diskcache.Config{
				Dir:        cfg.PersistDir,
				MaxEntries: cfg.PersistEntries,
				CostFactor: cfg.PersistCostFactor,
				Binary:     cfg.PersistBinary,
			})
			if err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			s.disk = disk
			s.cache = regalloc.NewTieredCache(mem, disk)
		} else {
			s.cache = mem
		}
	} else if cfg.PersistDir != "" {
		return nil, fmt.Errorf("serve: PersistDir requires caching (CacheEntries >= 0)")
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/allocate", s.handleAllocate)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/config", s.handleConfig)
	s.mux.HandleFunc("/cache/export", s.handleCacheExport)
	s.mux.HandleFunc("/cache/seed", s.handleCacheSeed)
	return s, nil
}

// prioSched hands the worker slots out in strict priority order: a
// freed slot goes to the longest-waiting interactive request if any is
// queued, else to the longest-waiting batch request. Slots are handed
// over directly (the releaser wakes exactly one waiter without
// decrementing the running count), so priority is enforced at every
// handoff, not just on arrival.
type prioSched struct {
	mu      sync.Mutex
	workers int
	running int
	waiters [numPriorities]list.List // of chan struct{}, FIFO per class
}

func newPrioSched(workers int) *prioSched {
	return &prioSched{workers: workers}
}

// acquire blocks until a worker slot is granted or ctx is done.
func (p *prioSched) acquire(ctx context.Context, pr Priority) error {
	p.mu.Lock()
	if p.running < p.workers {
		p.running++
		p.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	el := p.waiters[pr].PushBack(ch)
	p.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		select {
		case <-ch:
			// Granted between ctx.Done and taking the lock: we own a
			// slot nobody will use — pass it on.
			p.mu.Unlock()
			p.release()
		default:
			p.waiters[pr].Remove(el)
			p.mu.Unlock()
		}
		return ctx.Err()
	}
}

// release frees a worker slot, handing it to the highest-priority
// waiter if any.
func (p *prioSched) release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := Priority(0); c < numPriorities; c++ {
		if el := p.waiters[c].Front(); el != nil {
			p.waiters[c].Remove(el)
			close(el.Value.(chan struct{})) // slot handed over; running unchanged
			return
		}
	}
	p.running--
}

// snapshot samples the scheduler for /metrics.
func (p *prioSched) snapshot() (running int, waiting [numPriorities]int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	running = p.running
	for c := range p.waiters {
		waiting[c] = p.waiters[c].Len()
	}
	return
}

// Cache returns the server's result cache (nil when disabled).
func (s *Server) Cache() regalloc.ResultCache { return s.cache }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ListenAndServe runs the service on addr until Shutdown (which returns
// http.ErrServerClosed here) or a listener error. The server carries
// read/idle timeouts so slow-loris connections cannot pin resources
// indefinitely.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.ListenAndServe()
}

// Shutdown drains the server: new requests are refused with 503, every
// admitted request runs to completion (bounded by ctx), and the HTTP
// listener (if ListenAndServe is running) closes. Safe to call without
// a listener, e.g. under httptest.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with requests in flight: %w", ctx.Err())
	}
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		return srv.Shutdown(ctx)
	}
	return nil
}

// engine returns (building on first use) the engine for one
// machine/algorithm pair. Engines are kept in an LRU table bounded by
// Config.MaxEngines: each holds a pooled allocator whose scratch
// arenas stay warm across requests, and evicting one only forfeits
// that warmth.
func (s *Server) engine(machine, algorithm string) (*regalloc.Engine, *regalloc.Machine, error) {
	if algorithm == "" {
		algorithm = regalloc.SecondChance.Name()
	}
	if len(s.cfg.Algorithms) > 0 {
		ok := false
		for _, a := range s.cfg.Algorithms {
			if a == algorithm {
				ok = true
				break
			}
		}
		if !ok {
			return nil, nil, fmt.Errorf("algorithm %q not served (have %v)", algorithm, s.cfg.Algorithms)
		}
	}
	// Parse outside the lock (hostile specs are rejected here, bounded
	// by target.MaxTinyRegs) and key the table by the machine's
	// canonical Spec so alias spellings cannot multiply engines.
	mach, err := regalloc.ParseMachine(machine)
	if err != nil {
		return nil, nil, err
	}
	key := engineKey{machineSpec: mach.Spec(), algorithm: algorithm}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.engines[key]; ok {
		s.engineLRU.MoveToFront(el)
		e := el.Value.(*engineEntry).eng
		return e, e.Machine(), nil
	}
	opts := []regalloc.Option{
		regalloc.WithAlgorithm(algorithm),
		regalloc.WithParallelism(s.cfg.Parallelism),
		regalloc.WithVerify(s.cfg.Verify),
		regalloc.WithPhaseProfile(s.cfg.PhaseProfile),
	}
	if s.cache != nil {
		opts = append(opts, regalloc.WithCache(s.cache))
	}
	e, err := regalloc.New(mach, opts...)
	if err != nil {
		return nil, nil, err
	}
	s.engines[key] = s.engineLRU.PushFront(&engineEntry{key: key, eng: e})
	// Bound the table: a client sweeping distinct machine specs must
	// not grow server memory without limit. Evicting an engine only
	// discards its warm scratch arenas.
	for s.engineLRU.Len() > s.cfg.MaxEngines {
		back := s.engineLRU.Back()
		s.engineLRU.Remove(back)
		delete(s.engines, back.Value.(*engineEntry).key)
	}
	return e, mach, nil
}

// admitResult is admit's outcome.
type admitResult uint8

const (
	admitted      admitResult = iota
	admitFull                 // queue at capacity: 429
	admitDraining             // server shutting down: 503
)

// admit reserves an admission slot. Taking the slot and wg.Add happen
// under drainMu, so Shutdown's wg.Wait can never interleave with an
// Add it has not observed (sync.WaitGroup forbids Add concurrent with
// Wait at counter zero).
func (s *Server) admit() admitResult {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return admitDraining
	}
	select {
	case s.slots <- struct{}{}:
		s.wg.Add(1)
		return admitted
	default:
		return admitFull
	}
}

// release returns an admission slot.
func (s *Server) release() {
	<-s.slots
	s.wg.Done()
}

// isDraining reports whether Shutdown has started.
func (s *Server) isDraining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// ContentTypeBinaryIR selects the binary request form on POST
// /allocate: the body is one or more concatenated internal/irbin
// frames (self-delimiting, so no envelope is needed), with machine,
// algorithm and priority carried as query parameters. The text parser
// is skipped entirely — this is the wire form the corpus ladder and
// high-throughput clients use.
const ContentTypeBinaryIR = "application/x-lsra-ir"

// arenaPool holds per-request binary decode arenas. An arena retains
// the capacity of the largest program it has decoded, so a warmed pool
// serves steady-state binary traffic without decode allocations.
var arenaPool = sync.Pool{New: func() any { return irbin.NewArena() }}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, ContentTypeBinaryIR) {
		s.handleAllocateBinary(w, r)
		return
	}
	start := time.Now()
	// Read the whole body before taking an admission slot: the read
	// proceeds at the client's pace (bounded by MaxRequestBytes and the
	// listener's ReadTimeout), and a slow uploader must not park itself
	// inside the admission window holding a slot.
	var req AllocateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		// Over-limit is a distinct, retryable-after-splitting condition:
		// tell the client 413, not 400.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxRequestBytes))
			return
		}
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	texts := req.Programs
	if req.Program != "" {
		if len(texts) > 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("set either program or programs, not both"))
			return
		}
		texts = []string{req.Program}
	}
	if len(texts) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("no program in request"))
		return
	}
	prio, err := ParsePriority(req.Priority)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	switch s.admit() {
	case admitDraining:
		s.reqDraining.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server is draining"})
		return
	case admitFull:
		s.reqRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "admission queue full; retry later"})
		return
	case admitted:
	}
	defer s.release()

	eng, mach, err := s.engine(req.Machine, req.Algorithm)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	// Wait (queued) for an execution slot; the admission bound above
	// caps how many requests can be waiting here, and the scheduler
	// hands freed slots to interactive waiters before batch ones. A
	// client that gives up while queued releases its slot instead of
	// occupying a worker with work nobody will read.
	if err := s.sched.acquire(r.Context(), prio); err != nil {
		s.reqCancelled.Add(1)
		writeJSON(w, statusClientClosedRequest, ErrorResponse{Error: "client went away while queued"})
		return
	}
	defer s.sched.release()

	resp := AllocateResponse{Machine: req.Machine, Algorithm: eng.Algorithm()}
	for i, text := range texts {
		prog, err := ir.ParseProgramString(text, mach)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("program %d: %w", i, err))
			return
		}
		if err := ir.ValidateProgram(prog, mach); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("program %d: %w", i, err))
			return
		}
		out, rep, key, err := eng.AllocateCachedKey(r.Context(), prog)
		if err != nil {
			// A cancelled client is not a server error: classify it
			// apart so the error-rate metric stays meaningful.
			if r.Context().Err() != nil {
				s.reqCancelled.Add(1)
				writeJSON(w, statusClientClosedRequest, ErrorResponse{Error: "client went away mid-allocation"})
				return
			}
			s.fail(w, http.StatusInternalServerError, fmt.Errorf("program %d: %w", i, err))
			return
		}
		s.account(rep)
		var sb strings.Builder
		(&ir.Printer{Mach: mach}).WriteProgram(&sb, out)
		resp.Results = append(resp.Results, AllocatedProgram{
			Key:     string(key),
			Cached:  rep.Cached,
			Program: sb.String(),
			Report:  rep,
		})
	}
	resp.ElapsedNs = time.Since(start).Nanoseconds()
	s.reqOK.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleAllocateBinary is the Content-Type: application/x-lsra-ir arm
// of POST /allocate. It mirrors the text arm's admission and
// scheduling exactly; only the program front end differs — frames
// decode zero-copy into a pooled arena instead of running the text
// parser. The decoded program aliases the request body and the arena,
// which is safe because the engine clones procedures before rewriting
// and the response carries printed text.
func (s *Server) handleAllocateBinary(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	q := r.URL.Query()
	prio, err := ParsePriority(q.Get("priority"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxRequestBytes))
			return
		}
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(body) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("no program in request"))
		return
	}

	switch s.admit() {
	case admitDraining:
		s.reqDraining.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server is draining"})
		return
	case admitFull:
		s.reqRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "admission queue full; retry later"})
		return
	case admitted:
	}
	defer s.release()

	eng, mach, err := s.engine(q.Get("machine"), q.Get("algorithm"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	if err := s.sched.acquire(r.Context(), prio); err != nil {
		s.reqCancelled.Add(1)
		writeJSON(w, statusClientClosedRequest, ErrorResponse{Error: "client went away while queued"})
		return
	}
	defer s.sched.release()

	arena := arenaPool.Get().(*irbin.Arena)
	defer arenaPool.Put(arena)
	resp := AllocateResponse{Machine: q.Get("machine"), Algorithm: eng.Algorithm()}
	rest := body
	for i := 0; len(rest) > 0; i++ {
		prog, n, err := arena.Decode(rest)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("program %d: %w", i, err))
			return
		}
		rest = rest[n:]
		if err := ir.ValidateProgram(prog, mach); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("program %d: %w", i, err))
			return
		}
		out, rep, key, err := eng.AllocateCachedKey(r.Context(), prog)
		if err != nil {
			if r.Context().Err() != nil {
				s.reqCancelled.Add(1)
				writeJSON(w, statusClientClosedRequest, ErrorResponse{Error: "client went away mid-allocation"})
				return
			}
			s.fail(w, http.StatusInternalServerError, fmt.Errorf("program %d: %w", i, err))
			return
		}
		s.account(rep)
		var sb strings.Builder
		(&ir.Printer{Mach: mach}).WriteProgram(&sb, out)
		resp.Results = append(resp.Results, AllocatedProgram{
			Key:     string(key),
			Cached:  rep.Cached,
			Program: sb.String(),
			Report:  rep,
		})
	}
	resp.ElapsedNs = time.Since(start).Nanoseconds()
	s.reqOK.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// account folds one allocation report into the service metrics. Cache
// hits count as served programs but contribute no phase work: the
// entire point of the hit path is that no pipeline phase ran.
func (s *Server) account(rep *regalloc.Report) {
	s.programs.Add(1)
	if rep.Cached {
		s.cachedPrograms.Add(1)
		return
	}
	s.procs.Add(uint64(len(rep.Procs)))
	s.allocWallNs.Add(rep.WallTime.Nanoseconds())
	s.phaseMu.Lock()
	s.phases.Add(rep.Totals.Phases)
	s.phaseMu.Unlock()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		// Not via fail(): RequestMetrics meters /allocate only, and a
		// stray POST here must not skew its error rate.
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

// Metrics samples the service counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		UptimeNs: time.Since(s.start).Nanoseconds(),
		Requests: RequestMetrics{
			Total:     s.reqTotal.Load(),
			OK:        s.reqOK.Load(),
			Errors:    s.reqErrors.Load(),
			Rejected:  s.reqRejected.Load(),
			Draining:  s.reqDraining.Load(),
			Cancelled: s.reqCancelled.Load(),
		},
		Programs:       s.programs.Load(),
		CachedPrograms: s.cachedPrograms.Load(),
		Procs:          s.procs.Load(),
		AllocWallNs:    s.allocWallNs.Load(),
		Peering: PeeringMetrics{
			Exported:     s.exported.Load(),
			Seeded:       s.seeded.Load(),
			SeedRejected: s.seedRejected.Load(),
		},
	}
	running, waiting := s.sched.snapshot()
	m.Queue = QueueMetrics{
		Depth:       waiting[PriorityInteractive] + waiting[PriorityBatch],
		Executing:   running,
		Interactive: waiting[PriorityInteractive],
		Batch:       waiting[PriorityBatch],
		Capacity:    s.cfg.QueueDepth,
		Workers:     s.cfg.Workers,
	}
	if s.cache != nil {
		st := s.cache.Stats()
		if tc, ok := s.cache.(*regalloc.TieredCache); ok {
			st, _ = tc.TierStats()
		}
		m.Cache = &CacheMetrics{CacheStats: st, HitRate: st.HitRate()}
	}
	if s.disk != nil {
		st := s.disk.Stats()
		m.Persist = &PersistMetrics{CacheStats: st, HitRate: st.HitRate(), Admission: s.disk.Admission()}
	}
	s.phaseMu.Lock()
	pt := s.phases
	s.phaseMu.Unlock()
	total := pt.TotalNs()
	for i := range pt {
		ps := regalloc.PhaseStat{
			Phase:  alloc.Phase(i).String(),
			Ns:     pt[i].Ns,
			Allocs: pt[i].Allocs,
			Bytes:  pt[i].Bytes,
		}
		if total > 0 {
			ps.Share = float64(pt[i].Ns) / float64(total)
		}
		m.Phases = append(m.Phases, ps)
	}
	allocs, bytes := alloc.HeapCounters()
	m.Heap = HeapMetrics{Allocs: allocs, Bytes: bytes}
	return m
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.isDraining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": status})
}

// CacheExportResponse is the GET /cache/export document: the hottest
// cache entries in wire form (diskcache.Entry), newest first.
type CacheExportResponse struct {
	Entries []json.RawMessage `json:"entries"`
}

// CacheSeedRequest is the POST /cache/seed body: wire-form entries to
// install. CacheSeedResponse reports how many were installed.
type CacheSeedRequest struct {
	Entries []json.RawMessage `json:"entries"`
}

// CacheSeedResponse is the POST /cache/seed reply.
type CacheSeedResponse struct {
	Seeded   int `json:"seeded"`
	Rejected int `json:"rejected"`
}

// handleCacheExport serves the hottest n (default 64) cache entries in
// wire form — the pull side of cluster replication.
func (s *Server) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad n"})
			return
		}
		n = v
	}
	resp := CacheExportResponse{Entries: []json.RawMessage{}}
	if hl, ok := s.cache.(regalloc.HotLister); ok {
		for _, he := range hl.Hottest(n) {
			data, err := diskcache.Encode(he.Key, he.Entry)
			if err != nil {
				continue
			}
			resp.Entries = append(resp.Entries, data)
		}
	}
	s.exported.Add(uint64(len(resp.Entries)))
	writeJSON(w, http.StatusOK, resp)
}

// handleCacheSeed installs wire-form entries into the cache — the push
// side of cluster replication. Entries that fail to decode are counted
// and skipped, never fatal: a partially corrupt replication batch still
// warms what it can.
func (s *Server) handleCacheSeed(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	if s.cache == nil {
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: "caching disabled"})
		return
	}
	var req CacheSeedRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad seed body: %v", err)})
		return
	}
	var resp CacheSeedResponse
	for _, raw := range req.Entries {
		key, entry, err := diskcache.Decode(raw)
		if err != nil {
			resp.Rejected++
			continue
		}
		s.cache.Put(key, entry)
		resp.Seeded++
	}
	s.seeded.Add(uint64(resp.Seeded))
	s.seedRejected.Add(uint64(resp.Rejected))
	writeJSON(w, http.StatusOK, resp)
}

// configDoc is the GET /config document: what the daemon serves.
type configDoc struct {
	Machines     []string `json:"machines"`
	Algorithms   []string `json:"algorithms"`
	Workers      int      `json:"workers"`
	QueueDepth   int      `json:"queue_depth"`
	CacheEntries int      `json:"cache_entries"`
	Verify       bool     `json:"verify"`
	// Priorities lists the accepted scheduling classes; Persist reports
	// whether a disk-backed cache tier is configured.
	Priorities []string `json:"priorities"`
	Persist    bool     `json:"persist"`
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	algos := s.cfg.Algorithms
	if len(algos) == 0 {
		algos = regalloc.Algorithms()
	}
	cacheEntries := 0
	if s.cache != nil {
		cacheEntries = s.cache.Stats().Capacity
	}
	writeJSON(w, http.StatusOK, configDoc{
		Machines:     target.PresetNames(),
		Algorithms:   algos,
		Workers:      s.cfg.Workers,
		QueueDepth:   s.cfg.QueueDepth,
		CacheEntries: cacheEntries,
		Verify:       s.cfg.Verify,
		Priorities:   []string{PriorityInteractive.String(), PriorityBatch.String()},
		Persist:      s.disk != nil,
	})
}

// fail writes a JSON error reply and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.reqErrors.Add(1)
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
