// Package ir defines the intermediate representation the register
// allocators operate on: a load/store three-address code over an explicit
// control-flow graph, in the style of the Machine SUIF CFG library the
// paper builds on.
//
// Register candidates — program variables and compiler temporaries alike —
// are Temps (the paper calls all candidates "temporaries", §2.1). Operands
// may also name physical registers: as on the paper's Alpha backend, the
// calling convention is made explicit by move instructions between
// parameter/return registers and temporaries, and call instructions
// use/define physical registers directly. Allocation replaces every Temp
// operand with a physical register and introduces stack-slot operands for
// spill code.
package ir

import (
	"fmt"

	"repro/internal/target"
)

// Temp names a register candidate. Temps are dense indices into the
// owning Proc's temp tables.
type Temp int32

// NoTemp is the sentinel for "no temporary".
const NoTemp Temp = -1

// Kind discriminates Operand variants.
type Kind uint8

const (
	KindNone Kind = iota
	KindTemp      // a register candidate (pre-allocation)
	KindReg       // a physical register
	KindImm       // an integer immediate
	KindFImm      // a floating-point immediate
	KindSlot      // a stack slot (spill home), introduced by allocation
	KindSym       // a callee symbol for Call
)

// Operand is one use or def position of an instruction.
//
// A KindSlot operand records both the slot index (Imm) and the temporary
// whose spill home it is (Temp); the latter exists for verification and
// diagnostics and has no runtime meaning.
type Operand struct {
	Kind Kind
	Temp Temp       // KindTemp, and owner for KindSlot
	Reg  target.Reg // KindReg
	Imm  int64      // KindImm value, KindSlot index
	F    float64    // KindFImm value
	Sym  string     // KindSym
}

// TempOp returns a temporary operand.
func TempOp(t Temp) Operand { return Operand{Kind: KindTemp, Temp: t} }

// RegOp returns a physical-register operand.
func RegOp(r target.Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp returns an integer immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// FImmOp returns a floating-point immediate operand.
func FImmOp(v float64) Operand { return Operand{Kind: KindFImm, F: v} }

// SlotOp returns a stack-slot operand for slot index s belonging to t.
func SlotOp(s int, t Temp) Operand { return Operand{Kind: KindSlot, Imm: int64(s), Temp: t} }

// SymOp returns a callee-symbol operand.
func SymOp(name string) Operand { return Operand{Kind: KindSym, Sym: name} }

// Op enumerates the instruction set: a compact Alpha-flavored load/store
// architecture. Every value-producing instruction writes exactly one
// destination. Comparison results are integer 0/1. CvtIF/CvtFI and the
// float-compare family cross register files (the Alpha routes such values
// through memory; we model them as single pseudo-instructions, which is
// neutral to allocation since each operand still has a unique file).
type Op uint8

const (
	Nop Op = iota

	// Integer ALU.
	Mov // d ← s
	Ldi // d ← imm
	Add
	Sub
	Mul
	Div // quotient; divide by zero yields 0 (the VM defines it) so programs stay total
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Neg
	Not
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE

	// Floating point.
	FMov
	FLdi
	FAdd
	FSub
	FMul
	FDiv
	FNeg
	FCmpEQ // int d ← float a == float b
	FCmpLT
	FCmpLE
	CvtIF // float d ← int s
	CvtFI // int d ← float s (truncation)

	// Memory: one flat word-addressed global memory.
	Ld  // int d ← mem[base+disp]
	St  // mem[base+disp] ← int s
	FLd // float d ← mem[base+disp]
	FSt // mem[base+disp] ← float s

	// Spill code (introduced by allocation).
	SpillLd // d ← slot
	SpillSt // slot ← s

	// Control flow. Terminators carry no label operands: Jmp transfers
	// to Succs[0]; Br transfers to Succs[0] when its condition is
	// non-zero, else Succs[1]; Ret leaves the procedure.
	Jmp
	Br
	Ret

	// Call invokes Uses[0].Sym. Remaining uses are the physical
	// argument registers; Defs holds the physical return register when
	// the callee produces a value. A call clobbers every caller-saved
	// register (the machine defines the set).
	Call

	numOps
)

// anyClass marks operand positions whose register file is determined by
// the operand itself rather than the opcode (spill code).
const anyClass target.Class = 0xff

type opInfo struct {
	name       string
	uses       []target.Class // expected class per use position; nil = variadic (Call)
	defs       []target.Class
	terminator bool
	immOK      []bool // whether an integer immediate may appear at each use position
}

var ci = target.ClassInt
var cf = target.ClassFloat

var opTable = [numOps]opInfo{
	Nop: {name: "nop"},

	Mov: {name: "mov", uses: []target.Class{ci}, defs: []target.Class{ci}},
	Ldi: {name: "ldi", uses: []target.Class{ci}, defs: []target.Class{ci}, immOK: []bool{true}},
	Add: {name: "add", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	Sub: {name: "sub", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	Mul: {name: "mul", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	Div: {name: "div", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	Rem: {name: "rem", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	And: {name: "and", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	Or:  {name: "or", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	Xor: {name: "xor", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	Shl: {name: "shl", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	Shr: {name: "shr", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	Neg: {name: "neg", uses: []target.Class{ci}, defs: []target.Class{ci}},
	Not: {name: "not", uses: []target.Class{ci}, defs: []target.Class{ci}},

	CmpEQ: {name: "cmpeq", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	CmpNE: {name: "cmpne", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	CmpLT: {name: "cmplt", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	CmpLE: {name: "cmple", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	CmpGT: {name: "cmpgt", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},
	CmpGE: {name: "cmpge", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{false, true}},

	FMov:   {name: "fmov", uses: []target.Class{cf}, defs: []target.Class{cf}},
	FLdi:   {name: "fldi", uses: []target.Class{cf}, defs: []target.Class{cf}, immOK: []bool{true}},
	FAdd:   {name: "fadd", uses: []target.Class{cf, cf}, defs: []target.Class{cf}, immOK: []bool{false, true}},
	FSub:   {name: "fsub", uses: []target.Class{cf, cf}, defs: []target.Class{cf}, immOK: []bool{false, true}},
	FMul:   {name: "fmul", uses: []target.Class{cf, cf}, defs: []target.Class{cf}, immOK: []bool{false, true}},
	FDiv:   {name: "fdiv", uses: []target.Class{cf, cf}, defs: []target.Class{cf}, immOK: []bool{false, true}},
	FNeg:   {name: "fneg", uses: []target.Class{cf}, defs: []target.Class{cf}},
	FCmpEQ: {name: "fcmpeq", uses: []target.Class{cf, cf}, defs: []target.Class{ci}},
	FCmpLT: {name: "fcmplt", uses: []target.Class{cf, cf}, defs: []target.Class{ci}},
	FCmpLE: {name: "fcmple", uses: []target.Class{cf, cf}, defs: []target.Class{ci}},
	CvtIF:  {name: "cvtif", uses: []target.Class{ci}, defs: []target.Class{cf}},
	CvtFI:  {name: "cvtfi", uses: []target.Class{cf}, defs: []target.Class{ci}},

	Ld:  {name: "ld", uses: []target.Class{ci, ci}, defs: []target.Class{ci}, immOK: []bool{true, true}},
	St:  {name: "st", uses: []target.Class{ci, ci, ci}, defs: nil, immOK: []bool{false, true, true}},
	FLd: {name: "fld", uses: []target.Class{ci, ci}, defs: []target.Class{cf}, immOK: []bool{true, true}},
	FSt: {name: "fst", uses: []target.Class{cf, ci, ci}, defs: nil, immOK: []bool{false, true, true}},

	SpillLd: {name: "spill.ld", uses: []target.Class{anyClass}, defs: []target.Class{anyClass}},
	SpillSt: {name: "spill.st", uses: []target.Class{anyClass, anyClass}},

	Jmp:  {name: "jmp", terminator: true},
	Br:   {name: "br", uses: []target.Class{ci}, terminator: true},
	Ret:  {name: "ret", terminator: true},
	Call: {name: "call"},
}

// String returns the mnemonic of op.
func (op Op) String() string {
	if op >= numOps {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool { return opTable[op].terminator }

// IsMove reports whether op is a register-to-register copy within one
// file. Moves are the coalescing candidates for both allocators.
func (op Op) IsMove() bool { return op == Mov || op == FMov }

// Tag classifies allocator-inserted instructions so the VM can attribute
// dynamic spill overhead the way Figure 3 of the paper does.
type Tag uint8

const (
	TagNone        Tag = iota // original program instruction
	TagScanLoad               // "evict load": reload inserted during the linear scan (second chance)
	TagScanStore              // "evict store": spill store inserted during the scan
	TagScanMove               // "evict move": early-second-chance or coalescing move from the scan
	TagResolveLoad            // resolution-phase load (§2.4)
	TagResolveStore
	TagResolveMove
	TagSave    // callee-saved register save in the prologue
	TagRestore // callee-saved register restore before return
	numTags
)

func (t Tag) String() string {
	switch t {
	case TagNone:
		return "orig"
	case TagScanLoad:
		return "evict.load"
	case TagScanStore:
		return "evict.store"
	case TagScanMove:
		return "evict.move"
	case TagResolveLoad:
		return "resolve.load"
	case TagResolveStore:
		return "resolve.store"
	case TagResolveMove:
		return "resolve.move"
	case TagSave:
		return "save"
	case TagRestore:
		return "restore"
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// NumTags is the number of Tag values, for counter arrays.
const NumTags = int(numTags)

// NumOps is the number of Op values. The binary codec (internal/irbin)
// uses it to reject opcodes outside the instruction set at decode time.
const NumOps = int(numOps)

// Instr is one instruction. Uses and Defs follow the per-op conventions
// documented on the Op constants. Pos is the instruction's position in the
// linear (layout) order, assigned by Proc.Renumber; lifetime intervals and
// holes are expressed in this position space.
//
// OrigUses/OrigDefs, when non-nil, run parallel to Uses/Defs and record
// which temporary each rewritten operand originally named. Allocators set
// them during rewriting; the verifier consumes them. Inserted spill code
// leaves them nil.
type Instr struct {
	Op   Op
	Defs []Operand
	Uses []Operand
	Tag  Tag
	Pos  int32

	OrigUses []Temp
	OrigDefs []Temp
}

// NewInstr builds an instruction with the given defs and uses.
func NewInstr(op Op, defs []Operand, uses []Operand) Instr {
	return Instr{Op: op, Defs: defs, Uses: uses}
}

// UseTemps appends the temporaries read by the instruction to buf and
// returns it.
func (in *Instr) UseTemps(buf []Temp) []Temp {
	for i := range in.Uses {
		if in.Uses[i].Kind == KindTemp {
			buf = append(buf, in.Uses[i].Temp)
		}
	}
	return buf
}

// DefTemps appends the temporaries written by the instruction to buf and
// returns it.
func (in *Instr) DefTemps(buf []Temp) []Temp {
	for i := range in.Defs {
		if in.Defs[i].Kind == KindTemp {
			buf = append(buf, in.Defs[i].Temp)
		}
	}
	return buf
}

// UseRegs appends the physical registers explicitly read by the
// instruction to buf and returns it.
func (in *Instr) UseRegs(buf []target.Reg) []target.Reg {
	for i := range in.Uses {
		if in.Uses[i].Kind == KindReg {
			buf = append(buf, in.Uses[i].Reg)
		}
	}
	return buf
}

// DefRegs appends the physical registers explicitly written by the
// instruction to buf and returns it.
func (in *Instr) DefRegs(buf []target.Reg) []target.Reg {
	for i := range in.Defs {
		if in.Defs[i].Kind == KindReg {
			buf = append(buf, in.Defs[i].Reg)
		}
	}
	return buf
}

// IsCall reports whether the instruction is a call.
func (in *Instr) IsCall() bool { return in.Op == Call }

// CalleeName returns the symbol a call targets.
func (in *Instr) CalleeName() string {
	if in.Op != Call || len(in.Uses) == 0 || in.Uses[0].Kind != KindSym {
		return ""
	}
	return in.Uses[0].Sym
}
