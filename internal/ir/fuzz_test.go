package ir

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/target"
)

// fuzzSeedPrograms are textual-IR seeds covering the grammar: every
// operand kind, calls with and without results, diamonds, loops, spill
// code, and multiple procedures. The checked-in corpus under
// testdata/fuzz/FuzzParseProgram extends them with crash regressions.
var fuzzSeedPrograms = []string{
	"program mem=8 main=main\n\nfunc main() {\nentry:\n    x = ldi 5\n    ret\n}\n",
	`program mem=16 main=main

func helper(a int, b int) {
entry:
    r = xor a, b
    t = shl a, 3
    r = add r, t
    $r0 = mov r
    ret
}

func main() {
entry:
    x = ldi 7
    f = fldi 2.5
    g = fmul f, 0.125
    c = cmplt x, 64
    br c, then, else
then:
    $r1 = mov x
    $r2 = mov x
    $r0 = call @helper($r1, $r2)
    y = mov $r0
    jmp join
else:
    y = ldi -3
    jmp join
join:
    i = ldi 0
    jmp head
head:
    lim = cmplt i, 3
    br lim, body, exit
body:
    st y, 0, 4
    y = ld 0, 4
    i = add i, 1
    jmp head
exit:
    z = cvtfi g
    y = add y, z
    $r0 = mov y
    ret
}
`,
	// Allocated-form round trip: registers, slots, spill code, tags.
	`program mem=4 main=main

func main() {
entry:
    $r1 = ldi 9
    spill.st $r1, [slot0:x]
    $r2 = spill.ld [slot0:x]
    $r0 = mov $r2
    ret
}
`,
}

// FuzzParseProgram feeds arbitrary bytes through the textual-IR parser.
// The parser must never panic; and for every input that parses into a
// structurally valid program, print → reparse → print must be a fixed
// point (the canonical form is stable).
func FuzzParseProgram(f *testing.F) {
	for _, s := range fuzzSeedPrograms {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mach := target.Tiny(8, 4)
		prog, err := ParseProgram(bytes.NewReader(data), mach)
		if err != nil {
			return // rejected inputs only need to not crash
		}
		// Printing requires structural validity (a bare "jmp" line has no
		// successor to name); the parser accepts some invalid programs by
		// design — it is not the validator — so gate the round trip.
		if err := ValidateProgram(prog, mach); err != nil {
			return
		}
		pr := &Printer{Mach: mach}
		var s1 strings.Builder
		pr.WriteProgram(&s1, prog)
		prog2, err := ParseProgramString(s1.String(), mach)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\n%s", err, s1.String())
		}
		var s2 strings.Builder
		pr.WriteProgram(&s2, prog2)
		if s1.String() != s2.String() {
			t.Fatalf("print → reparse → print is not a fixed point:\n-- first --\n%s\n-- second --\n%s",
				s1.String(), s2.String())
		}
	})
}

// TestFuzzSeedsRoundTrip runs the seed corpus through the same oracle in
// a plain test, so `go test` exercises it without -fuzz.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	mach := target.Tiny(8, 4)
	for i, s := range fuzzSeedPrograms {
		prog, err := ParseProgramString(s, mach)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if err := ValidateProgram(prog, mach); err != nil {
			t.Fatalf("seed %d invalid: %v", i, err)
		}
		pr := &Printer{Mach: mach}
		var s1 strings.Builder
		pr.WriteProgram(&s1, prog)
		prog2, err := ParseProgramString(s1.String(), mach)
		if err != nil {
			t.Fatalf("seed %d reparse: %v", i, err)
		}
		var s2 strings.Builder
		pr.WriteProgram(&s2, prog2)
		if s1.String() != s2.String() {
			t.Fatalf("seed %d not a fixed point", i)
		}
	}
}

// TestParserRejectsMalformedControlFlow pins the crash fixes the fuzzer
// surfaced: these inputs used to build unprintable IR or panic.
func TestParserRejectsMalformedControlFlow(t *testing.T) {
	mach := target.Tiny(8, 4)
	head := "program mem=4 main=main\nfunc main() {\nentry:\n"
	for _, body := range []string{
		"    jmp\n    ret\n}",  // bare jmp: no successor to print
		"    br\n    ret\n}",   // bare br
		"    call\n    ret\n}", // bare call: FormatInstr indexes Uses[0]
		"    ret 5\n}",         // ret takes no operands
		"    x = call\n    ret\n}",
	} {
		if _, err := ParseProgramString(head+body, mach); err == nil {
			t.Errorf("accepted malformed input:\n%s", body)
		}
	}
	// Duplicate procedure names used to panic in Program.AddProc.
	dup := "program mem=4 main=main\nfunc main() {\nentry:\n    ret\n}\nfunc main() {\nentry:\n    ret\n}\n"
	if _, err := ParseProgramString(dup, mach); err == nil {
		t.Error("duplicate procedure accepted")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate error = %v", err)
	}
}
