package ir

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/target"
)

// Printer renders procedures and programs in a stable textual form. When
// Mach is non-nil physical registers print with their machine names;
// otherwise as R<n>.
type Printer struct {
	Mach *target.Machine
	// Tags, when set, annotates allocator-inserted instructions with
	// their spill classification.
	Tags bool
	// Positions, when set, prefixes instructions with their linear
	// position.
	Positions bool
}

// FormatOperand renders one operand of p.
func (pr *Printer) FormatOperand(p *Proc, o Operand) string {
	switch o.Kind {
	case KindNone:
		return "_"
	case KindTemp:
		return p.TempName(o.Temp)
	case KindReg:
		if pr.Mach != nil {
			return "$" + pr.Mach.RegName(o.Reg)
		}
		return fmt.Sprintf("$R%d", o.Reg)
	case KindImm:
		return fmt.Sprintf("%d", o.Imm)
	case KindFImm:
		return fmt.Sprintf("%g", o.F)
	case KindSlot:
		return fmt.Sprintf("[slot%d:%s]", o.Imm, p.TempName(o.Temp))
	case KindSym:
		return "@" + o.Sym
	}
	return fmt.Sprintf("?kind%d", o.Kind)
}

// FormatInstr renders one instruction of p (without trailing newline).
func (pr *Printer) FormatInstr(p *Proc, b *Block, in *Instr) string {
	var sb strings.Builder
	if pr.Positions {
		fmt.Fprintf(&sb, "%4d: ", in.Pos)
	}
	switch in.Op {
	case Jmp:
		fmt.Fprintf(&sb, "jmp %s", b.Succs[0].Name)
	case Br:
		fmt.Fprintf(&sb, "br %s, %s, %s", pr.FormatOperand(p, in.Uses[0]), b.Succs[0].Name, b.Succs[1].Name)
	case Ret:
		sb.WriteString("ret")
	case Call:
		if len(in.Defs) > 0 {
			fmt.Fprintf(&sb, "%s = ", pr.FormatOperand(p, in.Defs[0]))
		}
		sb.WriteString("call ")
		sb.WriteString(pr.FormatOperand(p, in.Uses[0]))
		sb.WriteByte('(')
		for i, u := range in.Uses[1:] {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(pr.FormatOperand(p, u))
		}
		sb.WriteByte(')')
	default:
		for i, d := range in.Defs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(pr.FormatOperand(p, d))
		}
		if len(in.Defs) > 0 {
			sb.WriteString(" = ")
		}
		sb.WriteString(in.Op.String())
		for i, u := range in.Uses {
			if i == 0 {
				sb.WriteByte(' ')
			} else {
				sb.WriteString(", ")
			}
			sb.WriteString(pr.FormatOperand(p, u))
		}
	}
	if pr.Tags && in.Tag != TagNone {
		fmt.Fprintf(&sb, "  ; %s", in.Tag)
	}
	return sb.String()
}

// WriteProc renders the whole procedure.
func (pr *Printer) WriteProc(w io.Writer, p *Proc) {
	fmt.Fprintf(w, "func %s(", p.Name)
	for i, t := range p.Params {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%s %s", p.TempName(t), p.TempClass(t))
	}
	fmt.Fprintln(w, ") {")
	for _, b := range p.Blocks {
		if b.Depth > 0 {
			fmt.Fprintf(w, "%s:  ; depth=%d\n", b.Name, b.Depth)
		} else {
			fmt.Fprintf(w, "%s:\n", b.Name)
		}
		for i := range b.Instrs {
			fmt.Fprintf(w, "    %s\n", pr.FormatInstr(p, b, &b.Instrs[i]))
		}
	}
	fmt.Fprintln(w, "}")
}

// ProcString renders p with default options.
func ProcString(p *Proc) string {
	var sb strings.Builder
	(&Printer{}).WriteProc(&sb, p)
	return sb.String()
}

// WriteProgram renders every procedure in the program.
func (pr *Printer) WriteProgram(w io.Writer, prog *Program) {
	fmt.Fprintf(w, "program mem=%d main=%s\n", prog.MemWords, prog.Main)
	for _, p := range prog.Procs {
		fmt.Fprintln(w)
		pr.WriteProc(w, p)
	}
}
