package ir

import (
	"fmt"
	"math"

	"repro/internal/target"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }

// Builder constructs Programs against a specific machine. The machine is
// needed because, as in the paper's Alpha backend, the builder lowers the
// calling convention eagerly: parameter values arrive in physical
// registers and are moved into temporaries at the top of each procedure,
// and call sites move arguments into parameter registers (§2.5).
type Builder struct {
	Prog *Program
	Mach *target.Machine
}

// NewBuilder returns a Builder for a fresh program with memWords words of
// global memory.
func NewBuilder(m *target.Machine, memWords int) *Builder {
	return &Builder{Prog: NewProgram(memWords), Mach: m}
}

// ProcBuilder emits instructions into one procedure. Emission targets the
// current block; terminators close it, after which a new block must be
// selected with StartBlock.
type ProcBuilder struct {
	P *Proc
	b *Builder

	cur    *Block
	closed bool
}

// NewProc starts a procedure whose parameters have the given classes.
// The entry block is created and selected, and convention moves from the
// parameter registers into fresh parameter temporaries are emitted.
func (b *Builder) NewProc(name string, paramClasses ...target.Class) *ProcBuilder {
	p := NewProc(name)
	pb := &ProcBuilder{P: p, b: b}
	entry := p.NewBlock("entry")
	pb.cur = entry
	var nextIdx [target.NumClasses]int
	for i, c := range paramClasses {
		regs := b.Mach.ParamRegs(c)
		idx := nextIdx[c]
		if idx >= len(regs) {
			panic(fmt.Sprintf("ir: proc %s: too many %v parameters (max %d)", name, c, len(regs)))
		}
		nextIdx[c]++
		t := p.NewTemp(c, fmt.Sprintf("arg%d", i))
		p.Params = append(p.Params, t)
		op := Mov
		if c == target.ClassFloat {
			op = FMov
		}
		pb.emit(Instr{Op: op, Defs: []Operand{TempOp(t)}, Uses: []Operand{RegOp(regs[idx])}})
	}
	b.Prog.AddProc(p)
	return pb
}

// Temp introduces a fresh temporary.
func (pb *ProcBuilder) Temp(c target.Class, name string) Temp { return pb.P.NewTemp(c, name) }

// IntTemp introduces a fresh integer temporary.
func (pb *ProcBuilder) IntTemp(name string) Temp { return pb.P.NewTemp(target.ClassInt, name) }

// FloatTemp introduces a fresh float temporary.
func (pb *ProcBuilder) FloatTemp(name string) Temp { return pb.P.NewTemp(target.ClassFloat, name) }

// Block creates a new (unselected) block.
func (pb *ProcBuilder) Block(name string) *Block { return pb.P.NewBlock(name) }

// StartBlock makes blk the emission target. The previous block must have
// been closed by a terminator.
func (pb *ProcBuilder) StartBlock(blk *Block) {
	if pb.cur != nil && !pb.closed {
		panic(fmt.Sprintf("ir: proc %s: block %s not terminated before starting %s",
			pb.P.Name, pb.cur.Name, blk.Name))
	}
	pb.cur = blk
	pb.closed = false
}

// Cur returns the current emission block.
func (pb *ProcBuilder) Cur() *Block { return pb.cur }

func (pb *ProcBuilder) emit(in Instr) {
	if pb.cur == nil {
		panic(fmt.Sprintf("ir: proc %s: no current block", pb.P.Name))
	}
	if pb.closed {
		panic(fmt.Sprintf("ir: proc %s: emitting %v into closed block %s", pb.P.Name, in.Op, pb.cur.Name))
	}
	pb.cur.Instrs = append(pb.cur.Instrs, in)
	if in.Op.IsTerminator() {
		pb.closed = true
	}
}

// Emit appends a raw instruction (escape hatch for tests).
func (pb *ProcBuilder) Emit(in Instr) { pb.emit(in) }

// --- straight-line emission helpers -------------------------------------

// Op2 emits a two-source ALU instruction d ← a op b.
func (pb *ProcBuilder) Op2(op Op, d Temp, a, b Operand) {
	pb.emit(Instr{Op: op, Defs: []Operand{TempOp(d)}, Uses: []Operand{a, b}})
}

// Op1 emits a one-source instruction d ← op a.
func (pb *ProcBuilder) Op1(op Op, d Temp, a Operand) {
	pb.emit(Instr{Op: op, Defs: []Operand{TempOp(d)}, Uses: []Operand{a}})
}

// Ldi emits d ← v.
func (pb *ProcBuilder) Ldi(d Temp, v int64) { pb.Op1(Ldi, d, ImmOp(v)) }

// FLdi emits d ← v for a float temporary.
func (pb *ProcBuilder) FLdi(d Temp, v float64) { pb.Op1(FLdi, d, FImmOp(v)) }

// Mov emits d ← s within the integer file. s may be a physical register.
func (pb *ProcBuilder) Mov(d Temp, s Operand) { pb.Op1(Mov, d, s) }

// FMov emits d ← s within the float file.
func (pb *ProcBuilder) FMov(d Temp, s Operand) { pb.Op1(FMov, d, s) }

// Ld emits d ← mem[base+disp].
func (pb *ProcBuilder) Ld(d Temp, base Operand, disp int64) {
	pb.emit(Instr{Op: Ld, Defs: []Operand{TempOp(d)}, Uses: []Operand{base, ImmOp(disp)}})
}

// St emits mem[base+disp] ← src.
func (pb *ProcBuilder) St(src Operand, base Operand, disp int64) {
	pb.emit(Instr{Op: St, Uses: []Operand{src, base, ImmOp(disp)}})
}

// FLd emits float d ← mem[base+disp].
func (pb *ProcBuilder) FLd(d Temp, base Operand, disp int64) {
	pb.emit(Instr{Op: FLd, Defs: []Operand{TempOp(d)}, Uses: []Operand{base, ImmOp(disp)}})
}

// FSt emits mem[base+disp] ← float src.
func (pb *ProcBuilder) FSt(src Operand, base Operand, disp int64) {
	pb.emit(Instr{Op: FSt, Uses: []Operand{src, base, ImmOp(disp)}})
}

// --- control flow --------------------------------------------------------

// Jmp terminates the current block with an unconditional jump.
func (pb *ProcBuilder) Jmp(t *Block) {
	pb.emit(Instr{Op: Jmp})
	AddEdge(pb.cur, t)
}

// Br terminates the current block with a conditional branch: to then when
// cond is non-zero, else to els.
func (pb *ProcBuilder) Br(cond Operand, then, els *Block) {
	pb.emit(Instr{Op: Br, Uses: []Operand{cond}})
	AddEdge(pb.cur, then)
	AddEdge(pb.cur, els)
}

// Ret terminates the current block returning val (NoTemp for void). The
// convention move into the return register is emitted first.
func (pb *ProcBuilder) Ret(val Temp) {
	if val != NoTemp {
		c := pb.P.TempClass(val)
		op := Mov
		if c == target.ClassFloat {
			op = FMov
		}
		pb.emit(Instr{Op: op, Defs: []Operand{RegOp(pb.b.Mach.RetReg(c))}, Uses: []Operand{TempOp(val)}})
	}
	pb.emit(Instr{Op: Ret})
}

// Call emits a call to name, lowering the convention: arguments are moved
// into parameter registers, the call instruction uses those registers and
// defines the return register, and the result (if any) is moved into the
// result temporary. Integer immediates are materialized via Ldi into the
// parameter register move.
func (pb *ProcBuilder) Call(name string, result Temp, args ...Operand) {
	var nextIdx [target.NumClasses]int
	callUses := []Operand{SymOp(name)}
	for _, a := range args {
		var c target.Class
		switch a.Kind {
		case KindTemp:
			c = pb.P.TempClass(a.Temp)
		case KindImm:
			c = target.ClassInt
		case KindFImm:
			c = target.ClassFloat
		default:
			panic(fmt.Sprintf("ir: call %s: bad argument kind %d", name, a.Kind))
		}
		regs := pb.b.Mach.ParamRegs(c)
		idx := nextIdx[c]
		if idx >= len(regs) {
			panic(fmt.Sprintf("ir: call %s: too many %v arguments (max %d)", name, c, len(regs)))
		}
		nextIdx[c]++
		r := regs[idx]
		switch {
		case a.Kind == KindImm:
			pb.emit(Instr{Op: Ldi, Defs: []Operand{RegOp(r)}, Uses: []Operand{a}})
		case a.Kind == KindFImm:
			pb.emit(Instr{Op: FLdi, Defs: []Operand{RegOp(r)}, Uses: []Operand{a}})
		case c == target.ClassFloat:
			pb.emit(Instr{Op: FMov, Defs: []Operand{RegOp(r)}, Uses: []Operand{a}})
		default:
			pb.emit(Instr{Op: Mov, Defs: []Operand{RegOp(r)}, Uses: []Operand{a}})
		}
		callUses = append(callUses, RegOp(r))
	}
	var defs []Operand
	if result != NoTemp {
		defs = []Operand{RegOp(pb.b.Mach.RetReg(pb.P.TempClass(result)))}
	}
	pb.emit(Instr{Op: Call, Defs: defs, Uses: callUses})
	if result != NoTemp {
		c := pb.P.TempClass(result)
		op := Mov
		if c == target.ClassFloat {
			op = FMov
		}
		pb.emit(Instr{Op: op, Defs: []Operand{TempOp(result)}, Uses: []Operand{RegOp(pb.b.Mach.RetReg(c))}})
	}
}
