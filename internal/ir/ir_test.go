package ir

import (
	"strings"
	"testing"

	"repro/internal/target"
)

func buildDiamond(t *testing.T) (*Builder, *ProcBuilder) {
	t.Helper()
	mach := target.Tiny(6, 3)
	b := NewBuilder(mach, 16)
	pb := b.NewProc("f", target.ClassInt)
	x := pb.P.Params[0]
	y := pb.IntTemp("y")
	thenB := pb.Block("then")
	elseB := pb.Block("else")
	join := pb.Block("join")
	c := pb.IntTemp("c")
	pb.Op2(CmpLT, c, TempOp(x), ImmOp(10))
	pb.Br(TempOp(c), thenB, elseB)
	pb.StartBlock(thenB)
	pb.Op2(Add, y, TempOp(x), ImmOp(1))
	pb.Jmp(join)
	pb.StartBlock(elseB)
	pb.Op2(Sub, y, TempOp(x), ImmOp(1))
	pb.Jmp(join)
	pb.StartBlock(join)
	pb.Ret(y)
	return b, pb
}

func TestBuilderProducesValidIR(t *testing.T) {
	b, pb := buildDiamond(t)
	if err := Validate(pb.P, b.Mach); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(pb.P.Blocks); got != 4 {
		t.Fatalf("blocks = %d, want 4", got)
	}
	// Entry has the convention move from the parameter register.
	first := pb.P.Entry().Instrs[0]
	if first.Op != Mov || first.Uses[0].Kind != KindReg {
		t.Fatalf("missing parameter convention move: %v", first.Op)
	}
}

func TestRenumberAssignsSequentialPositions(t *testing.T) {
	_, pb := buildDiamond(t)
	n := pb.P.Renumber()
	if n != pb.P.NumInstrs() {
		t.Fatalf("Renumber returned %d, NumInstrs %d", n, pb.P.NumInstrs())
	}
	want := int32(0)
	for _, blk := range pb.P.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Pos != want {
				t.Fatalf("pos %d, want %d", blk.Instrs[i].Pos, want)
			}
			want++
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	b, pb := buildDiamond(t)
	q := pb.P.Clone()
	q.Blocks[0].Instrs[0].Op = Nop
	q.Blocks[0].Instrs[0].Uses = nil
	if pb.P.Blocks[0].Instrs[0].Op == Nop {
		t.Fatal("Clone shares instruction storage")
	}
	// Cloned CFG must reference cloned blocks only.
	orig := map[*Block]bool{}
	for _, blk := range pb.P.Blocks {
		orig[blk] = true
	}
	for _, blk := range q.Blocks {
		for _, s := range blk.Succs {
			if orig[s] {
				t.Fatal("Clone references original blocks")
			}
		}
	}
	_ = b
}

func TestSplitEdge(t *testing.T) {
	_, pb := buildDiamond(t)
	p := pb.P
	entry := p.Entry()
	thenB := entry.Succs[0]
	nb := p.SplitEdge(entry, thenB)
	if err := Validate(p, nil); err != nil {
		t.Fatalf("after split: %v", err)
	}
	if entry.Succs[0] != nb || nb.Succs[0] != thenB {
		t.Fatal("split edge not wired through new block")
	}
	if nb.Terminator().Op != Jmp {
		t.Fatal("split block must end in jmp")
	}
}

func TestValidateRejectsBadIR(t *testing.T) {
	mach := target.Tiny(6, 3)
	cases := map[string]func(pb *ProcBuilder){
		"terminator mid-block": func(pb *ProcBuilder) {
			p := pb.P
			blk := p.Entry()
			blk.Instrs = append([]Instr{{Op: Ret}}, blk.Instrs...)
		},
		"class mismatch": func(pb *ProcBuilder) {
			f := pb.P.NewTemp(target.ClassFloat, "f")
			blk := pb.P.Entry()
			bad := Instr{Op: Add, Defs: []Operand{TempOp(f)}, Uses: []Operand{TempOp(f), ImmOp(1)}}
			blk.Instrs = append([]Instr{bad}, blk.Instrs...)
		},
		"imm def": func(pb *ProcBuilder) {
			blk := pb.P.Entry()
			bad := Instr{Op: Mov, Defs: []Operand{ImmOp(1)}, Uses: []Operand{ImmOp(2)}}
			blk.Instrs = append([]Instr{bad}, blk.Instrs...)
		},
	}
	for name, corrupt := range cases {
		b := NewBuilder(mach, 8)
		pb := b.NewProc("main")
		z := pb.IntTemp("z")
		pb.Ldi(z, 0)
		pb.Ret(z)
		corrupt(pb)
		if err := Validate(pb.P, mach); err == nil {
			t.Errorf("%s: validation passed on corrupt IR", name)
		}
	}
}

func TestValidatePhysLiveness(t *testing.T) {
	mach := target.Tiny(6, 3)
	b := NewBuilder(mach, 8)
	pb := b.NewProc("main")
	z := pb.IntTemp("z")
	blk2 := pb.Block("b2")
	pb.Ldi(z, 1)
	pb.Jmp(blk2)
	pb.StartBlock(blk2)
	// Using a physical register never defined in this block makes it
	// live-in: illegal outside the entry.
	pb.Emit(Instr{Op: Mov, Defs: []Operand{TempOp(z)}, Uses: []Operand{RegOp(mach.Reg(target.ClassInt, 2))}})
	pb.Ret(z)
	if err := Validate(pb.P, mach); err == nil {
		t.Fatal("cross-block physical liveness not rejected")
	}
	if err := ValidateAllocated(pb.P, mach); err != nil {
		t.Fatalf("ValidateAllocated should skip the phys-local check: %v", err)
	}
}

func TestPrinterRoundNames(t *testing.T) {
	b, pb := buildDiamond(t)
	var sb strings.Builder
	(&Printer{Mach: b.Mach}).WriteProc(&sb, pb.P)
	out := sb.String()
	for _, want := range []string{"func f(arg0 int)", "br c, then, else", "jmp join", "ret"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q:\n%s", want, out)
		}
	}
}

func TestCallLowering(t *testing.T) {
	mach := target.Alpha()
	b := NewBuilder(mach, 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	f := pb.FloatTemp("f")
	r := pb.IntTemp("r")
	pb.Ldi(x, 1)
	pb.FLdi(f, 2.0)
	pb.Call("mixed", r, TempOp(x), TempOp(f), ImmOp(7))
	pb.Ret(r)

	var call *Instr
	for i := range pb.P.Entry().Instrs {
		if pb.P.Entry().Instrs[i].Op == Call {
			call = &pb.P.Entry().Instrs[i]
		}
	}
	if call == nil {
		t.Fatal("no call emitted")
	}
	if call.CalleeName() != "mixed" {
		t.Fatalf("callee = %q", call.CalleeName())
	}
	// 3 argument registers: int param 0, float param 0, int param 1.
	if len(call.Uses) != 4 {
		t.Fatalf("call uses = %d, want sym+3 regs", len(call.Uses))
	}
	ip := mach.ParamRegs(target.ClassInt)
	fp := mach.ParamRegs(target.ClassFloat)
	if call.Uses[1].Reg != ip[0] || call.Uses[2].Reg != fp[0] || call.Uses[3].Reg != ip[1] {
		t.Fatal("argument registers assigned out of order")
	}
	if len(call.Defs) != 1 || call.Defs[0].Reg != mach.RetReg(target.ClassInt) {
		t.Fatal("return register wrong")
	}
	if err := ValidateProgram(b.Prog, mach); err != nil {
		t.Fatal(err)
	}
}

func TestOpPredicates(t *testing.T) {
	if !Jmp.IsTerminator() || !Br.IsTerminator() || !Ret.IsTerminator() {
		t.Fatal("terminators misclassified")
	}
	if Add.IsTerminator() || Call.IsTerminator() {
		t.Fatal("non-terminators misclassified")
	}
	if !Mov.IsMove() || !FMov.IsMove() || Add.IsMove() {
		t.Fatal("move predicate wrong")
	}
}

func TestTagStrings(t *testing.T) {
	want := map[Tag]string{
		TagNone: "orig", TagScanLoad: "evict.load", TagScanStore: "evict.store",
		TagScanMove: "evict.move", TagResolveLoad: "resolve.load",
		TagResolveStore: "resolve.store", TagResolveMove: "resolve.move",
		TagSave: "save", TagRestore: "restore",
	}
	for tag, s := range want {
		if tag.String() != s {
			t.Fatalf("Tag(%d).String() = %q, want %q", tag, tag.String(), s)
		}
	}
}
