package ir

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/target"
)

// ParseProgram reads the textual form produced by Printer.WriteProgram
// back into a Program. The accepted grammar (one item per line, "; ..."
// comments stripped):
//
//	program mem=<words> main=<name>
//	func <name>(<param> <class>, ...) {
//	<label>:
//	    <dst> = <op> <src>, <src>
//	    <op> <src>, ...
//	    br <src>, <label>, <label>
//	    jmp <label>
//	    ret
//	    [<dst> = ] call @<sym>(<reg>, ...)
//	}
//
// Operands: temporaries by name, registers as $<name> (using the
// machine's register names), integer and floating literals, and spill
// slots as [slot<N>:<owner>]. Temporary classes are inferred from opcode
// signatures; the paper's pipeline only parses pre-allocation IR but
// allocated code round-trips as well. Positions (Printer.Positions) are
// not accepted.
//
// A nil machine parses the machine-independent form a machless Printer
// emits: registers must be spelled $R<n> and are taken at face value
// (no bound check against a register file). The persistent cache tier
// and cluster replication use this to move allocated programs between
// nodes without shipping machine definitions alongside.
func ParseProgram(r io.Reader, mach *target.Machine) (*Program, error) {
	p := &parser{mach: mach, sc: bufio.NewScanner(r)}
	p.sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	prog, err := p.program()
	if err != nil {
		return nil, fmt.Errorf("line %d: %w", p.lineNo, err)
	}
	return prog, nil
}

// ParseProgramString is ParseProgram over a string.
func ParseProgramString(s string, mach *target.Machine) (*Program, error) {
	return ParseProgram(strings.NewReader(s), mach)
}

type parser struct {
	mach   *target.Machine
	sc     *bufio.Scanner
	lineNo int
	peeked *string

	regByName map[string]target.Reg
}

func (p *parser) next() (string, bool) {
	if p.peeked != nil {
		l := *p.peeked
		p.peeked = nil
		return l, true
	}
	for p.sc.Scan() {
		p.lineNo++
		line := p.sc.Text()
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		return line, true
	}
	return "", false
}

func (p *parser) unread(line string) { p.peeked = &line }

func (p *parser) regNames() map[string]target.Reg {
	if p.regByName == nil {
		if p.mach == nil {
			p.regByName = map[string]target.Reg{}
			return p.regByName
		}
		p.regByName = make(map[string]target.Reg, p.mach.NumRegs())
		for r := 0; r < p.mach.NumRegs(); r++ {
			p.regByName[p.mach.RegName(target.Reg(r))] = target.Reg(r)
			p.regByName[fmt.Sprintf("R%d", r)] = target.Reg(r) // machless printer form
		}
	}
	return p.regByName
}

func (p *parser) program() (*Program, error) {
	head, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("empty input")
	}
	var mem int
	var main string
	if _, err := fmt.Sscanf(head, "program mem=%d main=%s", &mem, &main); err != nil {
		return nil, fmt.Errorf("bad program header %q: %v", head, err)
	}
	prog := NewProgram(mem)
	prog.Main = main
	for {
		line, ok := p.next()
		if !ok {
			break
		}
		if !strings.HasPrefix(line, "func ") {
			return nil, fmt.Errorf("expected func, got %q", line)
		}
		proc, err := p.proc(line)
		if err != nil {
			return nil, err
		}
		if prog.Proc(proc.Name) != nil {
			return nil, fmt.Errorf("duplicate procedure %q", proc.Name)
		}
		prog.AddProc(proc)
	}
	if prog.Proc(prog.Main) == nil {
		return nil, fmt.Errorf("main procedure %q not defined", prog.Main)
	}
	return prog, nil
}

// procState tracks name→temp and label→block resolution for one proc.
type procState struct {
	proc   *Proc
	temps  map[string]Temp
	blocks map[string]*Block
	// pendingEdges are (block, label) pairs wired after all blocks exist.
	pendingEdges []pendingEdge
	maxSlot      int
}

type pendingEdge struct {
	from   *Block
	labels []string
}

func (p *parser) proc(head string) (*Proc, error) {
	open := strings.Index(head, "(")
	closeP := strings.LastIndex(head, ")")
	if open < 0 || closeP < open || !strings.HasSuffix(head, "{") {
		return nil, fmt.Errorf("bad func header %q", head)
	}
	name := strings.TrimSpace(head[len("func "):open])
	st := &procState{
		proc:   NewProc(name),
		temps:  map[string]Temp{},
		blocks: map[string]*Block{},
	}
	// Parameters: "x int, f float".
	params := strings.TrimSpace(head[open+1 : closeP])
	if params != "" {
		for _, piece := range strings.Split(params, ",") {
			fields := strings.Fields(strings.TrimSpace(piece))
			if len(fields) != 2 {
				return nil, fmt.Errorf("bad parameter %q", piece)
			}
			cls := target.ClassInt
			switch fields[1] {
			case "int":
			case "float":
				cls = target.ClassFloat
			default:
				return nil, fmt.Errorf("bad parameter class %q", fields[1])
			}
			t := st.proc.NewTemp(cls, fields[0])
			st.temps[fields[0]] = t
			st.proc.Params = append(st.proc.Params, t)
		}
	}

	var cur *Block
	for {
		line, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("unexpected EOF in func %s", name)
		}
		if line == "}" {
			break
		}
		if label, isLabel := strings.CutSuffix(line, ":"); isLabel && !strings.ContainsAny(label, " \t=") {
			cur = st.block(label)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("instruction before first label: %q", line)
		}
		in, err := p.instr(st, line)
		if err != nil {
			return nil, fmt.Errorf("in %q: %w", line, err)
		}
		cur.Instrs = append(cur.Instrs, in)
	}
	// Wire deferred edges.
	for _, pe := range st.pendingEdges {
		for _, l := range pe.labels {
			to, ok := st.blocks[l]
			if !ok {
				return nil, fmt.Errorf("func %s: undefined label %q", name, l)
			}
			AddEdge(pe.from, to)
		}
	}
	if st.proc.NumSlots < st.maxSlot+1 {
		st.proc.NumSlots = st.maxSlot + 1
	}
	return st.proc, nil
}

func (st *procState) block(label string) *Block {
	if b, ok := st.blocks[label]; ok {
		return b
	}
	b := st.proc.NewBlock(label)
	st.blocks[label] = b
	return b
}

// opByName maps mnemonics back to opcodes.
var opByName = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func (p *parser) instr(st *procState, line string) (Instr, error) {
	cur := st.blocks // for closures
	_ = cur

	// Terminators with labels.
	if rest, ok := strings.CutPrefix(line, "jmp "); ok {
		st.pendingEdges = append(st.pendingEdges,
			pendingEdge{from: lastBlock(st), labels: []string{strings.TrimSpace(rest)}})
		return Instr{Op: Jmp}, nil
	}
	if rest, ok := strings.CutPrefix(line, "br "); ok {
		parts := splitOperands(rest)
		if len(parts) != 3 {
			return Instr{}, fmt.Errorf("br wants cond and two labels")
		}
		cond, err := p.operand(st, parts[0], target.ClassInt, Br, true)
		if err != nil {
			return Instr{}, err
		}
		st.pendingEdges = append(st.pendingEdges,
			pendingEdge{from: lastBlock(st), labels: []string{parts[1], parts[2]}})
		return Instr{Op: Br, Uses: []Operand{cond}}, nil
	}
	if line == "ret" {
		return Instr{Op: Ret}, nil
	}

	// Optional destination.
	var dstTok string
	body := line
	if i := strings.Index(line, " = "); i >= 0 {
		dstTok = strings.TrimSpace(line[:i])
		body = strings.TrimSpace(line[i+3:])
	}

	// Calls.
	if rest, ok := strings.CutPrefix(body, "call "); ok {
		open := strings.Index(rest, "(")
		if open < 0 || !strings.HasSuffix(rest, ")") {
			return Instr{}, fmt.Errorf("bad call syntax")
		}
		sym := strings.TrimSpace(rest[:open])
		sym = strings.TrimPrefix(sym, "@")
		in := Instr{Op: Call, Uses: []Operand{SymOp(sym)}}
		args := strings.TrimSpace(rest[open+1 : len(rest)-1])
		if args != "" {
			for _, a := range splitOperands(args) {
				o, err := p.operand(st, a, anyClass, Call, true)
				if err != nil {
					return Instr{}, err
				}
				if o.Kind != KindReg {
					return Instr{}, fmt.Errorf("call argument %q must be a register", a)
				}
				in.Uses = append(in.Uses, o)
			}
		}
		if dstTok != "" {
			o, err := p.operand(st, dstTok, anyClass, Call, false)
			if err != nil {
				return Instr{}, err
			}
			if o.Kind != KindReg {
				return Instr{}, fmt.Errorf("call result %q must be a register", dstTok)
			}
			in.Defs = []Operand{o}
		}
		return in, nil
	}

	// Regular ops: "<op> <src>, <src>".
	fields := strings.SplitN(body, " ", 2)
	op, ok := opByName[fields[0]]
	if !ok {
		return Instr{}, fmt.Errorf("unknown opcode %q", fields[0])
	}
	// Control flow and calls have dedicated forms above; reaching them
	// here means a malformed line ("jmp" with no label, "call" with no
	// argument list, "ret x") that would build unprintable IR.
	if op == Call || op.IsTerminator() {
		return Instr{}, fmt.Errorf("malformed %s instruction", fields[0])
	}
	info := &opTable[op]
	in := Instr{Op: op}
	if len(fields) > 1 {
		for i, tok := range splitOperands(fields[1]) {
			want := anyClass
			if info.uses != nil && i < len(info.uses) {
				want = info.uses[i]
			}
			o, err := p.operand(st, tok, want, op, true)
			if err != nil {
				return Instr{}, err
			}
			in.Uses = append(in.Uses, o)
		}
	}
	if dstTok != "" {
		want := anyClass
		if len(info.defs) > 0 {
			want = info.defs[0]
		}
		o, err := p.operand(st, dstTok, want, op, false)
		if err != nil {
			return Instr{}, err
		}
		in.Defs = []Operand{o}
	}
	return in, nil
}

// lastBlock returns the block currently being filled (the newest one).
func lastBlock(st *procState) *Block {
	return st.proc.Blocks[len(st.proc.Blocks)-1]
}

func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func (p *parser) operand(st *procState, tok string, want target.Class, op Op, isUse bool) (Operand, error) {
	switch {
	case tok == "_":
		return Operand{}, fmt.Errorf("blank operand not supported")
	case strings.HasPrefix(tok, "$"):
		name := tok[1:]
		r, ok := p.regNames()[name]
		if !ok {
			// Machless parse: accept the machine-independent $R<n> form
			// the machless Printer produces, taking the index at face
			// value. With a machine, its name table is authoritative.
			if p.mach == nil {
				if n, err := strconv.Atoi(strings.TrimPrefix(name, "R")); err == nil && strings.HasPrefix(name, "R") && n >= 0 {
					return RegOp(target.Reg(n)), nil
				}
			}
			return Operand{}, fmt.Errorf("unknown register %q", tok)
		}
		return RegOp(r), nil
	case strings.HasPrefix(tok, "[slot"):
		// [slot<N>:<owner>]
		inner := strings.TrimSuffix(strings.TrimPrefix(tok, "[slot"), "]")
		colon := strings.Index(inner, ":")
		if colon < 0 {
			return Operand{}, fmt.Errorf("bad slot operand %q", tok)
		}
		idx, err := strconv.Atoi(inner[:colon])
		if err != nil {
			return Operand{}, fmt.Errorf("bad slot index in %q", tok)
		}
		if idx > st.maxSlot {
			st.maxSlot = idx
		}
		owner := inner[colon+1:]
		t := NoTemp
		if owner != "<none>" {
			t = st.lookupOrMake(owner, target.ClassInt)
		}
		return SlotOp(idx, t), nil
	case looksNumeric(tok):
		if want == target.ClassFloat || strings.ContainsAny(tok, ".eE") && !strings.HasPrefix(tok, "0x") {
			f, err := strconv.ParseFloat(tok, 64)
			if err == nil {
				if want == target.ClassFloat || op == FLdi {
					return FImmOp(f), nil
				}
			}
		}
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(tok, 64)
			if ferr != nil {
				return Operand{}, fmt.Errorf("bad literal %q", tok)
			}
			return FImmOp(f), nil
		}
		return ImmOp(v), nil
	default:
		cls := target.ClassInt
		if want == target.ClassFloat {
			cls = target.ClassFloat
		}
		return TempOp(st.lookupOrMake(tok, cls)), nil
	}
}

func (st *procState) lookupOrMake(name string, cls target.Class) Temp {
	if t, ok := st.temps[name]; ok {
		return t
	}
	t := st.proc.NewTemp(cls, name)
	st.temps[name] = t
	return t
}

func looksNumeric(tok string) bool {
	if tok == "" {
		return false
	}
	c := tok[0]
	return c == '-' || c == '+' || (c >= '0' && c <= '9')
}
