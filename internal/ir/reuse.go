package ir

import "repro/internal/target"

// This file holds the wholesale-installation hooks the binary codec
// (internal/irbin) builds on. The normal construction API (NewProgram,
// NewProc, NewTemp, NewBlock) allocates as it goes; a decoder that
// replays millions of programs through one reusable arena instead
// installs fully-built tables in place. Nothing here is useful to
// hand-written builders — prefer the constructor API everywhere else.

// Reset clears the program in place for reuse, keeping the backing
// storage of its proc list and maps so a decode loop reaches a steady
// state with no allocations. The program afterwards is equivalent to
// NewProgram(memWords) except that Main is empty rather than "main":
// a decoder always sets Main explicitly.
func (pr *Program) Reset(memWords int) {
	pr.Procs = pr.Procs[:0]
	if pr.byName == nil {
		pr.byName = make(map[string]*Proc)
	} else {
		clear(pr.byName)
	}
	if pr.MemInit == nil {
		pr.MemInit = make(map[int]int64)
	} else {
		clear(pr.MemInit)
	}
	pr.MemWords = memWords
	pr.Main = ""
}

// SetTempTable installs the temp tables wholesale, aliasing (not
// copying) the given slices: classes[t] and names[t] become the class
// and diagnostic name of Temp t. The slices must run parallel; the
// caller must not mutate them while the proc is alive.
func (p *Proc) SetTempTable(classes []target.Class, names []string) {
	if len(classes) != len(names) {
		panic("ir: SetTempTable: classes and names must run parallel")
	}
	p.tempClass = classes
	p.tempName = names
}

// SetNextBlockID sets the ID NewBlock assigns next. A decoder that
// installs blocks directly (bypassing NewBlock) must leave the counter
// past every installed ID, or later SplitEdge calls would mint
// duplicate block IDs.
func (p *Proc) SetNextBlockID(n int) { p.nextBlockID = n }
