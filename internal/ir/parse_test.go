package ir

import (
	"strings"
	"testing"

	"repro/internal/target"
)

func printProgram(prog *Program, mach *target.Machine) string {
	var sb strings.Builder
	(&Printer{Mach: mach}).WriteProgram(&sb, prog)
	return sb.String()
}

func TestParseSimpleProgram(t *testing.T) {
	mach := target.Tiny(6, 3)
	src := `
program mem=16 main=main

func main() {
entry:
    x = ldi 7
    y = mul x, 6
    c = cmplt y, 100
    br c, small, big
small:
    y = add y, 1
    jmp done
big:
    y = sub y, 1
    jmp done
done:
    $r0 = mov y
    ret
}
`
	prog, err := ParseProgramString(src, mach)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProgram(prog, mach); err != nil {
		t.Fatal(err)
	}
	p := prog.Proc("main")
	if len(p.Blocks) != 4 {
		t.Fatalf("blocks = %d", len(p.Blocks))
	}
	entry := p.Entry()
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %d", len(entry.Succs))
	}
	if entry.Succs[0].Name != "small" || entry.Succs[1].Name != "big" {
		t.Fatal("branch targets wired wrong")
	}
}

func TestParseCallAndFloats(t *testing.T) {
	mach := target.Alpha()
	src := `
program mem=8 main=main

func helper(a int, f float) {
entry:
    g = fadd f, 0.5
    r = cvtfi g
    r = add r, a
    $r0 = mov r
    ret
}

func main() {
entry:
    $r1 = ldi 3
    $f1 = fldi 2.25
    $r0 = call @helper($r1, $f1)
    out = mov $r0
    $r0 = mov out
    ret
}
`
	prog, err := ParseProgramString(src, mach)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProgram(prog, mach); err != nil {
		t.Fatal(err)
	}
	h := prog.Proc("helper")
	if len(h.Params) != 2 {
		t.Fatalf("params = %d", len(h.Params))
	}
	if h.TempClass(h.Params[1]) != target.ClassFloat {
		t.Fatal("float param class lost")
	}
}

func TestParseErrors(t *testing.T) {
	mach := target.Tiny(6, 3)
	cases := map[string]string{
		"bad header":   "programme mem=8 main=main\n",
		"no main":      "program mem=8 main=main\n\nfunc f() {\nentry:\n    ret\n}\n",
		"bad label":    "program mem=8 main=main\n\nfunc main() {\nentry:\n    jmp nowhere\n}\n",
		"bad opcode":   "program mem=8 main=main\n\nfunc main() {\nentry:\n    x = frobnicate y\n    ret\n}\n",
		"bad register": "program mem=8 main=main\n\nfunc main() {\nentry:\n    x = mov $zz9\n    ret\n}\n",
	}
	for name, src := range cases {
		if _, err := ParseProgramString(src, mach); err == nil {
			t.Errorf("%s: parse accepted invalid input", name)
		}
	}
}

// TestRoundTrip prints a built program, parses it back, prints again, and
// requires a fixed point — the printer and parser agree on the grammar.
func TestRoundTrip(t *testing.T) {
	mach := target.Tiny(8, 4)
	b := NewBuilder(mach, 32)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	f := pb.FloatTemp("f")
	acc := pb.IntTemp("acc")
	pb.Ldi(x, 5)
	pb.FLdi(f, 1.5)
	pb.Ldi(acc, 0)

	head := pb.Block("head")
	body := pb.Block("body")
	exit := pb.Block("exit")
	pb.Jmp(head)
	pb.StartBlock(head)
	c := pb.IntTemp("c")
	pb.Op2(CmpGT, c, TempOp(x), ImmOp(0))
	pb.Br(TempOp(c), body, exit)
	pb.StartBlock(body)
	pb.Op2(FMul, f, TempOp(f), FImmOp(1.25))
	fi := pb.IntTemp("fi")
	pb.Op1(CvtFI, fi, TempOp(f))
	pb.Op2(Add, acc, TempOp(acc), TempOp(fi))
	pb.St(TempOp(acc), ImmOp(0), 3)
	pb.Ld(fi, ImmOp(0), 3)
	pb.Call("getc", fi)
	pb.Op2(Sub, x, TempOp(x), ImmOp(1))
	pb.Jmp(head)
	pb.StartBlock(exit)
	pb.Ret(acc)

	first := printProgram(b.Prog, mach)
	parsed, err := ParseProgramString(first, mach)
	if err != nil {
		t.Fatalf("parse of printed program failed: %v\n%s", err, first)
	}
	second := printProgram(parsed, mach)
	if first != second {
		t.Fatalf("round trip not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if err := ValidateProgram(parsed, mach); err != nil {
		t.Fatal(err)
	}
}
