package ir

import (
	"fmt"

	"repro/internal/target"
)

// Validate checks structural invariants of a procedure:
//
//   - every block ends with exactly one terminator and has none earlier;
//   - successor/predecessor lists are mutually consistent and match the
//     terminator's arity (Br: 2, Jmp: 1, Ret: 0);
//   - operand counts and register files match each opcode's signature;
//   - temporaries are in range;
//   - physical registers are never live across block boundaries except
//     for parameter registers into the entry block (the builder invariant
//     the allocators rely on when modeling register lifetime holes).
//
// If mach is non-nil, register classes of physical operands are also
// checked.
//
// The block-local-registers invariant holds only for pre-allocation IR
// (allocated code keeps values in registers across blocks by design); use
// ValidateAllocated for allocator output.
func Validate(p *Proc, mach *target.Machine) error {
	return validate(p, mach, true)
}

// ValidateAllocated checks the structural invariants that still hold
// after register allocation (everything except register block-locality).
func ValidateAllocated(p *Proc, mach *target.Machine) error {
	return validate(p, mach, false)
}

func validate(p *Proc, mach *target.Machine, physLocal bool) error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("proc %s: no blocks", p.Name)
	}
	for _, b := range p.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("proc %s: block %s is empty", p.Name, b.Name)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return fmt.Errorf("proc %s: block %s does not end in a terminator", p.Name, b.Name)
				}
				return fmt.Errorf("proc %s: block %s has terminator %v mid-block", p.Name, b.Name, in.Op)
			}
			if err := checkInstr(p, mach, in); err != nil {
				return fmt.Errorf("proc %s: block %s: %v: %v", p.Name, b.Name, in.Op, err)
			}
		}
		wantSuccs := -1
		switch b.Terminator().Op {
		case Jmp:
			wantSuccs = 1
		case Br:
			wantSuccs = 2
		case Ret:
			wantSuccs = 0
		}
		if wantSuccs >= 0 && len(b.Succs) != wantSuccs {
			return fmt.Errorf("proc %s: block %s: terminator %v wants %d successors, has %d",
				p.Name, b.Name, b.Terminator().Op, wantSuccs, len(b.Succs))
		}
		for _, s := range b.Succs {
			if !blockHasPred(s, b) {
				return fmt.Errorf("proc %s: edge %s->%s missing from %s.Preds", p.Name, b.Name, s.Name, s.Name)
			}
		}
		for _, q := range b.Preds {
			if !blockHasSucc(q, b) {
				return fmt.Errorf("proc %s: pred edge %s->%s missing from %s.Succs", p.Name, q.Name, b.Name, q.Name)
			}
		}
	}
	if mach != nil && physLocal {
		if err := checkPhysLiveness(p, mach); err != nil {
			return err
		}
	}
	return nil
}

func blockHasPred(b, q *Block) bool {
	for _, x := range b.Preds {
		if x == q {
			return true
		}
	}
	return false
}

func blockHasSucc(b, s *Block) bool {
	for _, x := range b.Succs {
		if x == s {
			return true
		}
	}
	return false
}

func checkInstr(p *Proc, mach *target.Machine, in *Instr) error {
	if in.Op >= numOps {
		return fmt.Errorf("bad opcode %d", in.Op)
	}
	info := &opTable[in.Op]
	if in.Op == Call {
		if len(in.Uses) == 0 || in.Uses[0].Kind != KindSym {
			return fmt.Errorf("call without symbol")
		}
		for _, u := range in.Uses[1:] {
			if u.Kind != KindReg {
				return fmt.Errorf("call argument operand must be a physical register")
			}
		}
		if len(in.Defs) > 1 {
			return fmt.Errorf("call with %d defs", len(in.Defs))
		}
		if len(in.Defs) == 1 && in.Defs[0].Kind != KindReg {
			return fmt.Errorf("call result operand must be a physical register")
		}
		return nil
	}
	if info.uses != nil && len(in.Uses) != len(info.uses) {
		return fmt.Errorf("want %d uses, have %d", len(info.uses), len(in.Uses))
	}
	if len(in.Defs) != len(info.defs) {
		return fmt.Errorf("want %d defs, have %d", len(info.defs), len(in.Defs))
	}
	for i := range in.Uses {
		var want target.Class = anyClass
		if info.uses != nil {
			want = info.uses[i]
		}
		immOK := info.immOK != nil && i < len(info.immOK) && info.immOK[i]
		if err := checkOperand(p, mach, in.Uses[i], want, immOK, in.Op); err != nil {
			return fmt.Errorf("use %d: %v", i, err)
		}
	}
	for i := range in.Defs {
		if in.Defs[i].Kind == KindImm || in.Defs[i].Kind == KindFImm {
			return fmt.Errorf("def %d: immediate cannot be defined", i)
		}
		if err := checkOperand(p, mach, in.Defs[i], info.defs[i], false, in.Op); err != nil {
			return fmt.Errorf("def %d: %v", i, err)
		}
	}
	return nil
}

func checkOperand(p *Proc, mach *target.Machine, o Operand, want target.Class, immOK bool, op Op) error {
	switch o.Kind {
	case KindTemp:
		if o.Temp < 0 || int(o.Temp) >= p.NumTemps() {
			return fmt.Errorf("temp %d out of range", o.Temp)
		}
		if want != anyClass && p.TempClass(o.Temp) != want {
			return fmt.Errorf("temp %s has class %v, want %v", p.TempName(o.Temp), p.TempClass(o.Temp), want)
		}
	case KindReg:
		if mach != nil {
			if int(o.Reg) < 0 || int(o.Reg) >= mach.NumRegs() {
				return fmt.Errorf("register %d out of range", o.Reg)
			}
			if want != anyClass && mach.RegClass(o.Reg) != want {
				return fmt.Errorf("register %s has class %v, want %v", mach.RegName(o.Reg), mach.RegClass(o.Reg), want)
			}
		}
	case KindImm:
		if op == Ldi || op == Ld || op == St || op == FLd || op == FSt {
			return nil // displacement/immediate positions
		}
		if !immOK {
			return fmt.Errorf("immediate not allowed here")
		}
	case KindFImm:
		if op != FLdi && !immOK {
			return fmt.Errorf("float immediate not allowed here")
		}
	case KindSlot:
		if op != SpillLd && op != SpillSt {
			return fmt.Errorf("slot operand outside spill code")
		}
		if o.Imm < 0 || int(o.Imm) >= p.NumSlots {
			return fmt.Errorf("slot %d out of range [0,%d)", o.Imm, p.NumSlots)
		}
	case KindSym:
		return fmt.Errorf("symbol operand outside call")
	default:
		return fmt.Errorf("bad operand kind %d", o.Kind)
	}
	return nil
}

// checkPhysLiveness verifies physical registers are block-local: a
// backward scan per block must not leave any physical register live into
// the block top, except parameter registers in the entry block.
func checkPhysLiveness(p *Proc, mach *target.Machine) error {
	paramOK := make(map[target.Reg]bool)
	for c := target.Class(0); c < target.NumClasses; c++ {
		for _, r := range mach.ParamRegs(c) {
			paramOK[r] = true
		}
	}
	var ubuf, dbuf []target.Reg
	for _, b := range p.Blocks {
		live := make(map[target.Reg]bool)
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			dbuf = in.DefRegs(dbuf[:0])
			for _, r := range dbuf {
				delete(live, r)
			}
			ubuf = in.UseRegs(ubuf[:0])
			for _, r := range ubuf {
				live[r] = true
			}
		}
		for r := range live {
			if b == p.Entry() && paramOK[r] {
				continue
			}
			return fmt.Errorf("proc %s: physical register %s live into block %s (must be block-local)",
				p.Name, mach.RegName(r), b.Name)
		}
	}
	return nil
}

// ValidateProgram validates every procedure and checks call targets that
// refer to program procedures have matching arity (calls to unknown
// symbols are treated as intrinsics and skipped).
func ValidateProgram(prog *Program, mach *target.Machine) error {
	if prog.Proc(prog.Main) == nil {
		return fmt.Errorf("program: main procedure %q not found", prog.Main)
	}
	for _, p := range prog.Procs {
		if err := Validate(p, mach); err != nil {
			return err
		}
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != Call {
					continue
				}
				callee := prog.Proc(in.CalleeName())
				if callee == nil {
					continue // intrinsic
				}
				if got, want := len(in.Uses)-1, len(callee.Params); got != want {
					return fmt.Errorf("proc %s: call to %s passes %d args, callee takes %d",
						p.Name, callee.Name, got, want)
				}
			}
		}
	}
	return nil
}
