package ir

import (
	"fmt"

	"repro/internal/target"
)

// Block is a basic block: a straight-line instruction sequence ending in a
// single terminator. Successor order is significant: Br takes Succs[0]
// when its condition is non-zero and Succs[1] otherwise; Jmp takes
// Succs[0].
type Block struct {
	ID     int
	Name   string
	Instrs []Instr
	Succs  []*Block
	Preds  []*Block

	// Order is the block's index in the layout (linear) order, assigned
	// by Proc.Renumber. Depth is the loop nesting depth, assigned by
	// cfg.ComputeLoopDepths; the spill heuristics weight references by
	// it, as both allocators in the paper do.
	Order int
	Depth int
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Body returns the instructions before the terminator.
func (b *Block) Body() []Instr {
	if t := b.Terminator(); t != nil {
		return b.Instrs[:len(b.Instrs)-1]
	}
	return b.Instrs
}

func (b *Block) String() string {
	if b == nil {
		return "<nil-block>"
	}
	return b.Name
}

// Proc is one procedure: a CFG plus the temp tables. Blocks[0] is the
// entry block, and the slice order is the layout (linear) order the scan
// follows.
type Proc struct {
	Name   string
	Blocks []*Block

	// Params lists the formal parameter temporaries in order. The
	// builder emits the convention moves from parameter registers.
	Params []Temp

	tempClass []target.Class
	tempName  []string

	// NumSlots is the number of stack slots the frame needs after
	// allocation (spill homes plus callee-save slots).
	NumSlots int

	nextBlockID int
}

// NewProc returns an empty procedure.
func NewProc(name string) *Proc {
	return &Proc{Name: name}
}

// NewTemp introduces a fresh temporary of class c with a diagnostic name.
// An empty name is replaced by "tN".
func (p *Proc) NewTemp(c target.Class, name string) Temp {
	t := Temp(len(p.tempClass))
	if name == "" {
		name = fmt.Sprintf("t%d", t)
	}
	p.tempClass = append(p.tempClass, c)
	p.tempName = append(p.tempName, name)
	return t
}

// NumTemps returns the number of temporaries created so far.
func (p *Proc) NumTemps() int { return len(p.tempClass) }

// TempClass returns the register file t belongs to.
func (p *Proc) TempClass(t Temp) target.Class { return p.tempClass[t] }

// TempName returns the diagnostic name of t.
func (p *Proc) TempName(t Temp) string {
	if t == NoTemp {
		return "<none>"
	}
	return p.tempName[t]
}

// NewBlock appends a fresh empty block to the layout order.
func (p *Proc) NewBlock(name string) *Block {
	b := &Block{ID: p.nextBlockID, Name: name}
	if name == "" {
		b.Name = fmt.Sprintf("b%d", b.ID)
	}
	p.nextBlockID++
	p.Blocks = append(p.Blocks, b)
	return b
}

// Entry returns the entry block.
func (p *Proc) Entry() *Block {
	if len(p.Blocks) == 0 {
		return nil
	}
	return p.Blocks[0]
}

// AddEdge records a CFG edge from b to s, appending to b.Succs and
// s.Preds. Terminator construction uses it; prefer the builder API.
func AddEdge(b, s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// Renumber assigns Block.Order in layout order and Instr.Pos sequentially
// across the whole procedure, and returns the total instruction count.
// Positions are the coordinate system for lifetimes and holes.
func (p *Proc) Renumber() int {
	pos := int32(0)
	for i, b := range p.Blocks {
		b.Order = i
		for j := range b.Instrs {
			b.Instrs[j].Pos = pos
			pos++
		}
	}
	return int(pos)
}

// NumInstrs returns the total instruction count.
func (p *Proc) NumInstrs() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// SplitEdge breaks the edge from pred to succ by inserting a fresh block
// containing only a Jmp to succ, and returns the new block. The paper's
// resolution phase splits critical edges to get a safe location for
// resolution code (§2.4, footnote 1). The new block is appended to the
// layout order; callers that depend on positions must Renumber afterwards.
func (p *Proc) SplitEdge(pred, succ *Block) *Block {
	nb := p.NewBlock(fmt.Sprintf("split_%s_%s", pred.Name, succ.Name))
	nb.Instrs = []Instr{{Op: Jmp}}
	nb.Succs = []*Block{succ}
	nb.Preds = []*Block{pred}
	replaced := false
	for i, s := range pred.Succs {
		if s == succ && !replaced {
			pred.Succs[i] = nb
			replaced = true
		}
	}
	if !replaced {
		panic(fmt.Sprintf("ir: SplitEdge(%s,%s): no such edge", pred.Name, succ.Name))
	}
	replaced = false
	for i, q := range succ.Preds {
		if q == pred && !replaced {
			succ.Preds[i] = nb
			replaced = true
		}
	}
	if !replaced {
		panic(fmt.Sprintf("ir: SplitEdge(%s,%s): succ missing pred", pred.Name, succ.Name))
	}
	return nb
}

// NewSlot reserves a fresh stack slot and returns its index.
func (p *Proc) NewSlot() int {
	s := p.NumSlots
	p.NumSlots++
	return s
}

// Clone returns a deep copy of the procedure. Allocators clone before
// rewriting so that several allocators can be compared on the same input.
//
// The copy is arena-backed: every instruction, operand and orig-temp
// entry of the clone lives in one backing array per kind, sized by a
// counting pre-pass, so a clone costs a handful of allocations instead
// of several per instruction. All sub-slices are carved with full
// capacity (three-index slicing), so appending to any of them — a block
// growing spill code, an operand list being extended — copies out
// instead of clobbering a neighbor.
func (p *Proc) Clone() *Proc {
	q := &Proc{
		Name:        p.Name,
		Params:      append([]Temp(nil), p.Params...),
		tempClass:   append([]target.Class(nil), p.tempClass...),
		tempName:    append([]string(nil), p.tempName...),
		NumSlots:    p.NumSlots,
		nextBlockID: p.nextBlockID,
	}
	nInstr, nOps, nOrig := 0, 0, 0
	for _, b := range p.Blocks {
		nInstr += len(b.Instrs)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			nOps += len(in.Defs) + len(in.Uses)
			nOrig += len(in.OrigDefs) + len(in.OrigUses)
		}
	}
	instrs := make([]Instr, 0, nInstr)
	ops := make([]Operand, 0, nOps)
	origs := make([]Temp, 0, nOrig)
	takeOps := func(src []Operand) []Operand {
		if src == nil {
			return nil
		}
		start := len(ops)
		ops = append(ops, src...)
		return ops[start:len(ops):len(ops)]
	}
	takeOrigs := func(src []Temp) []Temp {
		if src == nil {
			return nil
		}
		start := len(origs)
		origs = append(origs, src...)
		return origs[start:len(origs):len(origs)]
	}

	old2new := make(map[*Block]*Block, len(p.Blocks))
	q.Blocks = make([]*Block, 0, len(p.Blocks))
	blocks := make([]Block, len(p.Blocks))
	for bi, b := range p.Blocks {
		nb := &blocks[bi]
		nb.ID = b.ID
		nb.Name = b.Name
		nb.Order = b.Order
		nb.Depth = b.Depth
		start := len(instrs)
		instrs = append(instrs, b.Instrs...)
		nb.Instrs = instrs[start:len(instrs):len(instrs)]
		for i := range nb.Instrs {
			ni := &nb.Instrs[i]
			ni.Defs = takeOps(ni.Defs)
			ni.Uses = takeOps(ni.Uses)
			ni.OrigUses = takeOrigs(ni.OrigUses)
			ni.OrigDefs = takeOrigs(ni.OrigDefs)
		}
		old2new[b] = nb
		q.Blocks = append(q.Blocks, nb)
	}
	for _, b := range p.Blocks {
		nb := old2new[b]
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, old2new[s])
		}
		for _, pr := range b.Preds {
			nb.Preds = append(nb.Preds, old2new[pr])
		}
	}
	return q
}

// Program is a set of procedures plus the global memory image and the
// entry procedure name.
type Program struct {
	Procs  []*Proc
	byName map[string]*Proc

	// MemWords is the size of global memory in 64-bit words; MemInit
	// holds initial nonzero words.
	MemWords int
	MemInit  map[int]int64

	Main string
}

// NewProgram returns an empty program with memWords words of zeroed
// global memory.
func NewProgram(memWords int) *Program {
	return &Program{
		byName:   make(map[string]*Proc),
		MemWords: memWords,
		MemInit:  make(map[int]int64),
		Main:     "main",
	}
}

// AddProc registers a procedure.
func (pr *Program) AddProc(p *Proc) {
	if _, dup := pr.byName[p.Name]; dup {
		panic(fmt.Sprintf("ir: duplicate procedure %q", p.Name))
	}
	pr.Procs = append(pr.Procs, p)
	pr.byName[p.Name] = p
}

// Proc returns the procedure with the given name, or nil.
func (pr *Program) Proc(name string) *Proc { return pr.byName[name] }

// SetMem sets an initial memory word.
func (pr *Program) SetMem(addr int, v int64) {
	if addr < 0 || addr >= pr.MemWords {
		panic(fmt.Sprintf("ir: SetMem(%d) outside memory of %d words", addr, pr.MemWords))
	}
	pr.MemInit[addr] = v
}

// SetMemF sets an initial memory word to the bit pattern of a float.
func (pr *Program) SetMemF(addr int, v float64) {
	pr.SetMem(addr, int64(floatBits(v)))
}

// Clone deep-copies the program (procedures and memory image).
func (pr *Program) Clone() *Program {
	q := NewProgram(pr.MemWords)
	q.Main = pr.Main
	for a, v := range pr.MemInit {
		q.MemInit[a] = v
	}
	for _, p := range pr.Procs {
		q.AddProc(p.Clone())
	}
	return q
}
