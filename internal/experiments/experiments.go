// Package experiments regenerates every table and figure of the paper's
// evaluation (§3): Table 1 (dynamic instruction counts and run times),
// Table 2 (spill-code percentages), Figure 3 (spill-code composition),
// Table 3 (allocation times vs. candidate counts), and the §3.1/§2.5/§2.6
// ablations. cmd/lsra-bench prints them; bench_test.go measures them.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"

	// Registry side effects: "coloring" and "linearscan" register here.
	_ "repro/internal/coloring"
	"repro/internal/ir"
	_ "repro/internal/linearscan"
	"repro/internal/opt"
	"repro/internal/progs"
	"repro/internal/target"
	"repro/internal/verify"
	"repro/internal/vm"
)

// Pipeline applies the paper's pass ordering around one allocator: DCE,
// allocate, peephole. It returns the allocated program and aggregate
// allocation statistics.
func Pipeline(prog *ir.Program, mach *target.Machine, a alloc.Allocator) (*ir.Program, alloc.Stats, error) {
	return PipelineChecked(prog, mach, a, PipelineChecks{})
}

// PipelineChecks selects the correctness oracles PipelineChecked runs
// around the paper's pass ordering. The zero value runs none (the
// benchmark configuration, where oracle cost would pollute timings).
type PipelineChecks struct {
	// Verify runs the symbolic allocation verifier on each procedure
	// right after allocation.
	Verify bool
	// Validate runs ir.ValidateAllocated on each procedure after the
	// peephole pass.
	Validate bool
}

// PipelineChecked is Pipeline with optional per-procedure oracles. It
// is THE pass ordering of the reproduction — the conformance harness
// certifies exactly the pipeline the benchmarks measure by sharing this
// function.
func PipelineChecked(prog *ir.Program, mach *target.Machine, a alloc.Allocator, checks PipelineChecks) (*ir.Program, alloc.Stats, error) {
	out := ir.NewProgram(prog.MemWords)
	out.Main = prog.Main
	for addr, v := range prog.MemInit {
		out.SetMem(addr, v)
	}
	var agg alloc.Stats
	for _, p := range prog.Procs {
		in := p.Clone()
		opt.DeadCodeElim(in)
		res, err := a.Allocate(in)
		if err != nil {
			return nil, agg, fmt.Errorf("%s: %s: %w", a.Name(), p.Name, err)
		}
		if checks.Verify {
			if err := verify.Verify(res.Proc, mach); err != nil {
				return nil, agg, fmt.Errorf("%s: %s: verifier: %w", a.Name(), p.Name, err)
			}
		}
		opt.Peephole(res.Proc)
		if checks.Validate {
			if err := ir.ValidateAllocated(res.Proc, mach); err != nil {
				return nil, agg, fmt.Errorf("%s: %s: invalid output: %w", a.Name(), p.Name, err)
			}
		}
		agg.Add(res.Stats)
		out.AddProc(res.Proc)
	}
	return out, agg, nil
}

// RunBench builds one suite benchmark at the given scale, allocates it
// with the allocator, executes it, and returns the dynamic counters.
func RunBench(b *progs.Benchmark, mach *target.Machine, scale int, a alloc.Allocator) (vm.Counters, alloc.Stats, error) {
	prog := b.Build(mach, scale)
	allocd, stats, err := Pipeline(prog, mach, a)
	if err != nil {
		return vm.Counters{}, stats, err
	}
	var input []byte
	if b.Input != nil {
		input = b.Input(scale)
	}
	res, err := vm.Run(allocd, vm.Config{Mach: mach, Input: input})
	if err != nil {
		return vm.Counters{}, stats, fmt.Errorf("%s under %s: %w", b.Name, a.Name(), err)
	}
	return res.Counters, stats, nil
}

// Resolve returns a fresh allocator by registry name — the experiment
// harness selects algorithms by string, like the CLIs.
func Resolve(name string, mach *target.Machine) (alloc.Allocator, error) {
	f, ok := alloc.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown allocator %q (have %v)", name, alloc.Names())
	}
	return f(mach), nil
}

// mustResolve is Resolve for the built-in names, which are always
// registered.
func mustResolve(name string, mach *target.Machine) alloc.Allocator {
	a, err := Resolve(name, mach)
	if err != nil {
		panic(err)
	}
	return a
}

// Binpack returns the paper-configured second-chance allocator.
func Binpack(mach *target.Machine) alloc.Allocator { return mustResolve("binpack", mach) }

// TwoPass returns the traditional two-pass binpacking allocator.
func TwoPass(mach *target.Machine) alloc.Allocator { return mustResolve("twopass", mach) }

// GraphColoring returns the George–Appel allocator.
func GraphColoring(mach *target.Machine) alloc.Allocator { return mustResolve("coloring", mach) }

// Table1Row compares dynamic instruction counts and simulated cycles for
// one benchmark (larger ratios mean poorer binpacking code, as in the
// paper).
type Table1Row struct {
	Benchmark                     string
	BinpackInstrs, ColoringInstrs int64
	InstrRatio                    float64
	BinpackCycles, ColoringCycles int64
	CycleRatio                    float64
}

// Table1 regenerates Table 1 over the whole suite.
func Table1(mach *target.Machine, scaleMul float64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, b := range progs.Suite() {
		scale := scaled(b.DefaultScale, scaleMul)
		cb, _, err := RunBench(b, mach, scale, Binpack(mach))
		if err != nil {
			return nil, err
		}
		cg, _, err := RunBench(b, mach, scale, GraphColoring(mach))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Benchmark:      b.Name,
			BinpackInstrs:  cb.Total,
			ColoringInstrs: cg.Total,
			InstrRatio:     ratio(cb.Total, cg.Total),
			BinpackCycles:  cb.Cycles,
			ColoringCycles: cg.Cycles,
			CycleRatio:     ratio(cb.Cycles, cg.Cycles),
		})
	}
	return rows, nil
}

// Table2Row reports the percentage of dynamic instructions that are
// allocator-inserted spill code.
type Table2Row struct {
	Benchmark                   string
	BinpackPct, ColoringPct     float64
	BinpackSpill, ColoringSpill int64
}

// Table2 regenerates Table 2.
func Table2(mach *target.Machine, scaleMul float64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, b := range progs.Suite() {
		scale := scaled(b.DefaultScale, scaleMul)
		cb, _, err := RunBench(b, mach, scale, Binpack(mach))
		if err != nil {
			return nil, err
		}
		cg, _, err := RunBench(b, mach, scale, GraphColoring(mach))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Benchmark:     b.Name,
			BinpackSpill:  cb.SpillOverhead(),
			ColoringSpill: cg.SpillOverhead(),
			BinpackPct:    pct(cb.SpillOverhead(), cb.Total),
			ColoringPct:   pct(cg.SpillOverhead(), cg.Total),
		})
	}
	return rows, nil
}

// Figure3Row is the spill-code composition of one benchmark under one
// allocator, normalized to the binpacking total for that benchmark (the
// y-axis of Figure 3). Scheme is "b" (binpacking) or "c" (coloring), as
// in the figure's labels.
type Figure3Row struct {
	Benchmark string
	Scheme    string
	// Dynamic counts.
	EvictLoads, EvictStores, EvictMoves       int64
	ResolveLoads, ResolveStores, ResolveMoves int64
	// Normalized to the binpacking total spill count.
	Normalized float64
}

// Figure3Benchmarks are the spill-heavy benchmarks the figure plots.
var Figure3Benchmarks = []string{"doduc", "eqntott", "espresso", "fpppp", "sort", "m88ksim"}

// Figure3 regenerates the spill composition data behind Figure 3.
func Figure3(mach *target.Machine, scaleMul float64) ([]Figure3Row, error) {
	var rows []Figure3Row
	for _, name := range Figure3Benchmarks {
		b := progs.Named(name)
		scale := scaled(b.DefaultScale, scaleMul)
		cb, _, err := RunBench(b, mach, scale, Binpack(mach))
		if err != nil {
			return nil, err
		}
		cg, _, err := RunBench(b, mach, scale, GraphColoring(mach))
		if err != nil {
			return nil, err
		}
		base := cb.SpillOverhead()
		mk := func(scheme string, c vm.Counters) Figure3Row {
			return Figure3Row{
				Benchmark:     name,
				Scheme:        scheme,
				EvictLoads:    c.ByTag[ir.TagScanLoad],
				EvictStores:   c.ByTag[ir.TagScanStore],
				EvictMoves:    c.ByTag[ir.TagScanMove],
				ResolveLoads:  c.ByTag[ir.TagResolveLoad],
				ResolveStores: c.ByTag[ir.TagResolveStore],
				ResolveMoves:  c.ByTag[ir.TagResolveMove],
				Normalized:    ratio(c.SpillOverhead(), base),
			}
		}
		rows = append(rows, mk("b", cb), mk("c", cg))
	}
	return rows, nil
}

// Table3Row compares allocation (compile) time on one module.
type Table3Row struct {
	Module            string
	Candidates        int // average per procedure
	InterferenceEdges int // average per procedure, over all rounds
	ColoringTime      time.Duration
	BinpackTime       time.Duration
}

// Table3 regenerates Table 3: allocation-core wall-clock time for both
// allocators on modules of increasing candidate counts. Times cover only
// the allocator cores (setup excluded), as in §3.2; each measurement is
// the best of five runs, as in the paper.
func Table3(mach *target.Machine) ([]Table3Row, error) {
	var rows []Table3Row
	for _, mod := range progs.Table3Modules(mach) {
		row := Table3Row{Module: mod.Name}
		nprocs := 0
		for _, p := range mod.Prog.Procs {
			if p.Name != "main" {
				nprocs++
			}
		}
		best := func(a alloc.Allocator) (time.Duration, alloc.Stats, error) {
			var bestT time.Duration
			var stats alloc.Stats
			for rep := 0; rep < 5; rep++ {
				var total time.Duration
				var agg alloc.Stats
				for _, p := range mod.Prog.Procs {
					if p.Name == "main" {
						continue
					}
					res, err := a.Allocate(p)
					if err != nil {
						return 0, agg, err
					}
					total += res.Stats.AllocTime
					agg.Candidates += res.Stats.Candidates
					agg.InterferenceEdges += res.Stats.InterferenceEdges
				}
				if rep == 0 || total < bestT {
					bestT = total
				}
				stats = agg
			}
			return bestT, stats, nil
		}
		gcT, gcStats, err := best(GraphColoring(mach))
		if err != nil {
			return nil, err
		}
		bpT, _, err := best(Binpack(mach))
		if err != nil {
			return nil, err
		}
		row.ColoringTime = gcT
		row.BinpackTime = bpT
		row.Candidates = gcStats.Candidates / nprocs
		row.InterferenceEdges = gcStats.InterferenceEdges / nprocs
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationRow compares dynamic instruction counts of binpacking variants
// on one benchmark.
type AblationRow struct {
	Benchmark string
	Variant   string
	Instrs    int64
	Spill     int64
	// RatioToPaper is Instrs divided by the paper-configured
	// second-chance count for the same benchmark.
	RatioToPaper float64
}

// Ablations runs the §3.1 two-pass comparison plus the §2.5/§2.6 feature
// ablations over the named benchmarks.
func Ablations(mach *target.Machine, names []string, scaleMul float64) ([]AblationRow, error) {
	variants := []struct {
		name string
		mk   func() alloc.Allocator
	}{
		{"second-chance (paper)", func() alloc.Allocator { return core.NewDefault(mach) }},
		{"two-pass (§3.1)", func() alloc.Allocator { return TwoPass(mach) }},
		{"no move optimization (§2.5)", func() alloc.Allocator {
			o := core.DefaultOptions()
			o.MoveOpt = false
			return core.New(mach, o)
		}},
		{"no early second chance (§2.5)", func() alloc.Allocator {
			o := core.DefaultOptions()
			o.EarlySecondChance = false
			return core.New(mach, o)
		}},
		{"strict linear consistency (§2.6)", func() alloc.Allocator {
			o := core.DefaultOptions()
			o.StrictLinear = true
			return core.New(mach, o)
		}},
		{"unweighted distance heuristic", func() alloc.Allocator {
			o := core.DefaultOptions()
			o.Heuristic = core.HeuristicPlainDistance
			return core.New(mach, o)
		}},
	}
	var rows []AblationRow
	for _, name := range names {
		b := progs.Named(name)
		if b == nil {
			return nil, fmt.Errorf("no benchmark %q", name)
		}
		scale := scaled(b.DefaultScale, scaleMul)
		var base int64
		for _, v := range variants {
			c, _, err := RunBench(b, mach, scale, v.mk())
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = c.Total
			}
			rows = append(rows, AblationRow{
				Benchmark:    name,
				Variant:      v.name,
				Instrs:       c.Total,
				Spill:        c.SpillOverhead(),
				RatioToPaper: ratio(c.Total, base),
			})
		}
	}
	return rows, nil
}

// SweepPoint is one (machine, allocator) measurement of the
// registers-vs-quality curve: how much dynamic overhead an allocator
// pays for a benchmark as the register file shrinks or skews.
type SweepPoint struct {
	// Machine is the machine spec as passed to RegisterSweep ("x86-8",
	// "tiny:4,3"), so every row is reproducible by feeding it back into
	// target.Parse / lsra-conform -machines.
	Machine   string  `json:"machine"`
	IntRegs   int     `json:"int_regs"`   // allocatable integer registers
	FloatRegs int     `json:"float_regs"` // allocatable float registers
	Allocator string  `json:"allocator"`
	Instrs    int64   `json:"instrs"`
	Cycles    int64   `json:"cycles"`
	Spill     int64   `json:"spill"`
	SpillPct  float64 `json:"spill_pct"`
	// RatioToWidest is Instrs normalized to the same allocator's count
	// on the first (widest) machine of the sweep — the y-axis of the
	// curve.
	RatioToWidest float64 `json:"ratio_to_widest"`
}

// RegisterSweep reproduces the paper's registers-vs-quality relationship
// across machine shapes: it runs one benchmark at a scale multiplier on
// every named machine (target presets or "tiny:<ints>,<floats>") under
// every named allocator and reports dynamic instruction counts and spill
// percentages, normalized per allocator to the first machine listed.
// Order machines widest-first so RatioToWidest reads as degradation.
func RegisterSweep(machines, allocators []string, benchName string, scaleMul float64) ([]SweepPoint, error) {
	b := progs.Named(benchName)
	if b == nil {
		return nil, fmt.Errorf("experiments: no benchmark %q", benchName)
	}
	var points []SweepPoint
	base := make(map[string]int64, len(allocators))
	for _, mname := range machines {
		mach, err := machineByName(mname)
		if err != nil {
			return nil, err
		}
		for _, aname := range allocators {
			a, err := Resolve(aname, mach)
			if err != nil {
				return nil, err
			}
			scale := scaled(b.DefaultScale, scaleMul)
			c, _, err := RunBench(b, mach, scale, a)
			if err != nil {
				return nil, fmt.Errorf("sweep %s on %s: %w", aname, mach.Name, err)
			}
			if _, ok := base[aname]; !ok {
				base[aname] = c.Total
			}
			points = append(points, SweepPoint{
				Machine:       mname,
				IntRegs:       len(mach.AllocOrder(target.ClassInt)),
				FloatRegs:     len(mach.AllocOrder(target.ClassFloat)),
				Allocator:     aname,
				Instrs:        c.Total,
				Cycles:        c.Cycles,
				Spill:         c.SpillOverhead(),
				SpillPct:      pct(c.SpillOverhead(), c.Total),
				RatioToWidest: ratio(c.Total, base[aname]),
			})
		}
	}
	return points, nil
}

// SweepMachines is the default machine axis of RegisterSweep: the
// presets plus a descending tiny ladder, widest first.
func SweepMachines() []string {
	return []string{"wide-64", "alpha", "risc-16", "int-heavy", "x86-8", "tiny:8,6", "tiny:6,4", "tiny:4,3"}
}

// machineByName resolves a sweep machine name: a preset or the
// parameterized tiny form.
func machineByName(name string) (*target.Machine, error) {
	return target.Parse(name)
}

func scaled(def int, mul float64) int {
	s := int(float64(def) * mul)
	if s < 1 {
		s = 1
	}
	return s
}

func ratio(a, b int64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 0
	}
	return float64(a) / float64(b)
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// NewBinpack builds a binpacking allocator with explicit options (used by
// the ablation benchmarks).
func NewBinpack(mach *target.Machine, o core.Options) alloc.Allocator { return core.New(mach, o) }

// BinpackOptionsNoMoveOpt is the paper configuration minus §2.5 move
// coalescing.
func BinpackOptionsNoMoveOpt() core.Options {
	o := core.DefaultOptions()
	o.MoveOpt = false
	return o
}

// BinpackOptionsNoESC is the paper configuration minus §2.5 early second
// chance.
func BinpackOptionsNoESC() core.Options {
	o := core.DefaultOptions()
	o.EarlySecondChance = false
	return o
}

// BinpackOptionsStrictLinear is the §2.6 strictly-linear configuration.
func BinpackOptionsStrictLinear() core.Options {
	o := core.DefaultOptions()
	o.StrictLinear = true
	return o
}
