package experiments

import (
	"testing"

	"repro/internal/target"
)

func TestClusterWorkloadShape(t *testing.T) {
	mach := target.Tiny(6, 4)
	const hotN, hotRepeats, coldN = 4, 3, 5
	stream, err := ClusterWorkload(mach, 1, hotN, hotRepeats, coldN)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != hotN*hotRepeats+coldN {
		t.Fatalf("stream length %d, want %d", len(stream), hotN*hotRepeats+coldN)
	}

	hotCounts := map[string]int{}
	coldSeen := map[string]bool{}
	interactive, batch := 0, 0
	for _, j := range stream {
		if j.Hot {
			hotCounts[j.Text]++
		} else {
			if coldSeen[j.Text] {
				t.Error("cold job repeated in the stream")
			}
			coldSeen[j.Text] = true
		}
		switch j.Priority {
		case "interactive":
			interactive++
		case "batch":
			batch++
		default:
			t.Fatalf("job has priority %q", j.Priority)
		}
	}
	if len(hotCounts) != hotN {
		t.Errorf("%d distinct hot programs, want %d", len(hotCounts), hotN)
	}
	for text, n := range hotCounts {
		if n != hotRepeats {
			t.Errorf("hot program repeated %d times, want %d (%.40q...)", n, hotRepeats, text)
		}
	}
	if len(coldSeen) != coldN {
		t.Errorf("%d distinct cold programs, want %d", len(coldSeen), coldN)
	}
	if interactive == 0 || batch == 0 {
		t.Errorf("priorities not mixed: %d interactive, %d batch", interactive, batch)
	}

	// Hot and cold seed ranges must not collide.
	for _, j := range stream {
		if j.Hot && hotCounts[j.Text] == 0 {
			t.Error("hot job text missing from hot set")
		}
		if !j.Hot && hotCounts[j.Text] > 0 {
			t.Error("cold job text collides with the hot set")
		}
	}

	// Determinism: a rebuild is identical.
	again, err := ClusterWorkload(mach, 1, hotN, hotRepeats, coldN)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stream {
		if stream[i].Text != again[i].Text || stream[i].Priority != again[i].Priority || stream[i].Hot != again[i].Hot {
			t.Fatalf("stream position %d differs across rebuilds", i)
		}
	}
}

func TestClusterWorkloadBadShape(t *testing.T) {
	mach := target.Tiny(6, 4)
	if _, err := ClusterWorkload(mach, 1, -1, 1, 0); err == nil {
		t.Error("negative hotN accepted")
	}
	if _, err := ClusterWorkload(mach, 1, 1, 0, 0); err == nil {
		t.Error("zero hotRepeats accepted")
	}
}
