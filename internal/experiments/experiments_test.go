package experiments

import (
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/target"
)

// TestStatsAddAggregation pins the aggregation arithmetic the experiment
// harness (and the engine's Report.Totals) is built on.
func TestStatsAddAggregation(t *testing.T) {
	a := alloc.Stats{
		Candidates: 3, SpilledTemps: 1, UsedCalleeSaved: 2,
		AllocTime: 5 * time.Millisecond, InterferenceEdges: 7, Rounds: 1,
	}
	a.Inserted[ir.TagScanLoad] = 4
	b := alloc.Stats{
		Candidates: 10, SpilledTemps: 2, UsedCalleeSaved: 1,
		AllocTime: time.Millisecond, InterferenceEdges: 3, Rounds: 2,
	}
	b.Inserted[ir.TagScanLoad] = 1
	b.Inserted[ir.TagResolveMove] = 6

	sum := a
	sum.Add(b)
	if sum.Candidates != 13 || sum.SpilledTemps != 3 || sum.UsedCalleeSaved != 3 {
		t.Fatalf("scalar fields: %+v", sum)
	}
	if sum.AllocTime != 6*time.Millisecond {
		t.Fatalf("AllocTime = %v", sum.AllocTime)
	}
	if sum.InterferenceEdges != 10 || sum.Rounds != 3 {
		t.Fatalf("coloring fields: %+v", sum)
	}
	if sum.Inserted[ir.TagScanLoad] != 5 || sum.Inserted[ir.TagResolveMove] != 6 {
		t.Fatalf("Inserted: %v", sum.Inserted)
	}
	if sum.TotalSpillCode() != 11 {
		t.Fatalf("TotalSpillCode = %d", sum.TotalSpillCode())
	}
}

// TestPipelineAggregatesPerProcStats checks Pipeline's aggregate equals
// the sum of per-procedure allocations.
func TestPipelineAggregatesPerProcStats(t *testing.T) {
	mach := target.Tiny(6, 4)
	prog := progs.Random(mach, progs.DefaultGen(5))
	_, agg, err := Pipeline(prog, mach, Binpack(mach))
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, p := range prog.Procs {
		q := p.Clone()
		want += q.NumTemps()
	}
	// DCE may remove temps from the candidate count, so only sanity
	// bounds hold exactly; candidates must be positive and bounded by
	// the raw temp count.
	if agg.Candidates <= 0 || agg.Candidates > want {
		t.Fatalf("aggregate candidates %d outside (0,%d]", agg.Candidates, want)
	}
	if agg.AllocTime <= 0 {
		t.Fatal("aggregate AllocTime not accumulated")
	}
}

// TestRegisterSweep runs the quality curve on a narrow ladder and checks
// its normalization and monotonic-pressure properties.
func TestRegisterSweep(t *testing.T) {
	machines := []string{"wide-64", "x86-8", "tiny:4,3"}
	allocators := []string{"binpack", "coloring"}
	points, err := RegisterSweep(machines, allocators, "eqntott", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(machines)*len(allocators) {
		t.Fatalf("%d points, want %d", len(points), len(machines)*len(allocators))
	}
	byAlloc := map[string][]SweepPoint{}
	for _, p := range points {
		byAlloc[p.Allocator] = append(byAlloc[p.Allocator], p)
	}
	for name, ps := range byAlloc {
		if ps[0].Machine != "wide-64" || ps[0].RatioToWidest != 1 {
			t.Fatalf("%s: first point not normalized: %+v", name, ps[0])
		}
		if ps[0].Spill != 0 {
			t.Errorf("%s spills on wide-64: %+v", name, ps[0])
		}
		last := ps[len(ps)-1]
		// Machine records the parseable input spec, not the display name.
		if last.Machine != "tiny:4,3" {
			t.Fatalf("%s: sweep order broken: %+v", name, last)
		}
		if last.Spill == 0 || last.RatioToWidest <= 1 {
			t.Errorf("%s pays no overhead on a 4-register machine: %+v", name, last)
		}
		if last.IntRegs != 4 || last.FloatRegs != 3 {
			t.Errorf("%s: register counts wrong: %+v", name, last)
		}
	}
	if _, err := RegisterSweep(machines, allocators, "no-such-bench", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := RegisterSweep([]string{"bogus"}, allocators, "wc", 1); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := RegisterSweep(machines, []string{"bogus"}, "wc", 1); err == nil {
		t.Error("unknown allocator accepted")
	}
}

// TestSweepMachinesResolve keeps the default machine axis resolvable and
// widest-first.
func TestSweepMachinesResolve(t *testing.T) {
	names := SweepMachines()
	if len(names) < 5 {
		t.Fatalf("sweep axis too short: %v", names)
	}
	prev := 1 << 30
	for _, n := range names {
		m, err := machineByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		total := len(m.AllocOrder(target.ClassInt)) + len(m.AllocOrder(target.ClassFloat))
		if total > prev {
			t.Errorf("sweep axis not widest-first: %s has %d allocatable regs after %d", n, total, prev)
		}
		prev = total
	}
}

// TestAblationsSmall exercises the ablation table on one benchmark at a
// tiny scale (the §3.1/§2.5 comparison driver).
func TestAblationsSmall(t *testing.T) {
	rows, err := Ablations(target.Alpha(), []string{"wc"}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d ablation rows, want 6 variants", len(rows))
	}
	if rows[0].RatioToPaper != 1 {
		t.Fatalf("paper row not the baseline: %+v", rows[0])
	}
	for _, r := range rows {
		if r.Instrs <= 0 {
			t.Errorf("variant %q executed nothing", r.Variant)
		}
	}
}
