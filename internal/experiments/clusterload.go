package experiments

import (
	"fmt"

	"repro/internal/target"
)

// ClusterJob is one request of a cluster load: a LoadJob plus the
// scheduling class it is submitted under. Hot jobs repeat across the
// request stream (cache-hit candidates on whichever node owns them);
// cold jobs appear once.
type ClusterJob struct {
	LoadJob
	// Priority is the request's scheduling class ("interactive" or
	// "batch") as posted to the service.
	Priority string
	// Hot marks a job drawn from the repeating hot set.
	Hot bool
}

// ClusterWorkload builds a deterministic request stream for cluster
// load tests: a hot set of hotN distinct programs replayed hotRepeats
// times each, interleaved round-robin with coldN distinct cold programs
// seen exactly once. Interactive and batch priorities alternate
// deterministically (even stream positions interactive, odd batch), so
// the stream exercises the per-class admission queue as well as the
// cache tiers. The stream is identical across runs for a given
// (machine, seed0), making before/after benchmark comparisons
// meaningful.
func ClusterWorkload(mach *target.Machine, seed0 int64, hotN, hotRepeats, coldN int) ([]ClusterJob, error) {
	if hotN < 0 || hotRepeats < 1 || coldN < 0 {
		return nil, fmt.Errorf("experiments: cluster workload: bad shape (hotN=%d, hotRepeats=%d, coldN=%d)", hotN, hotRepeats, coldN)
	}
	hot, err := Workload(mach, []string{"default"}, seed0, hotN)
	if err != nil {
		return nil, err
	}
	// Cold seeds start far past the hot range so the sets never overlap.
	cold, err := Workload(mach, []string{"default"}, seed0+int64(hotN)+1_000_000, coldN)
	if err != nil {
		return nil, err
	}

	total := hotN*hotRepeats + coldN
	stream := make([]ClusterJob, 0, total)
	hi, ci := 0, 0
	for len(stream) < total {
		// Interleave: hot jobs dominate the stream in proportion to
		// their share, cycling through the hot set so repeats are
		// spread out rather than back to back.
		if hi < hotN*hotRepeats && (ci >= coldN || hi*(coldN) <= ci*(hotN*hotRepeats)) {
			stream = append(stream, ClusterJob{LoadJob: hot[hi%hotN], Hot: true})
			hi++
		} else {
			stream = append(stream, ClusterJob{LoadJob: cold[ci], Hot: false})
			ci++
		}
	}
	for i := range stream {
		if i%2 == 0 {
			stream[i].Priority = "interactive"
		} else {
			stream[i].Priority = "batch"
		}
	}
	return stream, nil
}
